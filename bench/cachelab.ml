(* Cache-policy sweep: the offline evaluator's grid as a bench target,
   printing request and byte hit rates for every policy over a Zipf
   stream at several cache sizes.  FLASH_BENCH_FAST shrinks the trace. *)

let fast = Sys.getenv_opt "FLASH_BENCH_FAST" <> None

let run () =
  let files = if fast then 500 else 4000 in
  let requests = if fast then 10_000 else 200_000 in
  let fileset =
    Workload.Fileset.generate (Workload.Fileset.cs_like ~files ~seed:7)
  in
  let trace = Workload.Trace.generate fileset ~length:requests ~alpha:1.0 ~seed:7 in
  let footprint = Workload.Trace.footprint_bytes trace in
  let total_bytes =
    let s = ref 0 in
    for i = 0 to Workload.Trace.length trace - 1 do
      s := !s + Workload.Trace.request_size trace i
    done;
    !s
  in
  Format.printf
    "@.Cache-policy sweep: %d requests over %d files (%.1f MB footprint)@."
    requests files
    (float_of_int footprint /. 1048576.);
  Format.printf "%-6s %10s %10s %10s@." "policy" "size" "hit-rate" "byte-hit";
  List.iter
    (fun policy ->
      List.iter
        (fun pct ->
          let capacity = max 1 (footprint * pct / 100) in
          let store =
            Flash_cache.Store.create ~policy ~name:"bench" ~capacity ()
          in
          let byte_hits = ref 0 in
          for i = 0 to Workload.Trace.length trace - 1 do
            let path = Workload.Trace.request_path trace i in
            let size = Workload.Trace.request_size trace i in
            match Flash_cache.Store.find store path with
            | Some () -> byte_hits := !byte_hits + size
            | None ->
                ignore (Flash_cache.Store.add store path () ~weight:(max 1 size))
          done;
          Format.printf "%-6s %9d%% %9.2f%% %9.2f%%@."
            (Flash_cache.Policy.name policy)
            pct
            (100.
            *. float_of_int (Flash_cache.Store.hits store)
            /. float_of_int requests)
            (100. *. float_of_int !byte_hits /. float_of_int total_bytes))
        [ 5; 25 ])
    Flash_cache.Policy.all
