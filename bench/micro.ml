(* Bechamel microbenchmarks of the request-path primitives (not a paper
   figure; supporting data for the cost model in Os_profile). *)

open Bechamel
open Toolkit

let request_buf =
  "GET /d0_3/d1_3/f001234.html HTTP/1.1\r\nHost: sim.example\r\nUser-Agent: loadgen\r\nConnection: keep-alive\r\n\r\n"

let bench_parse =
  Test.make ~name:"http.request.parse"
    (Staged.stage (fun () -> ignore (Http.Request.parse request_buf)))

let bench_header_aligned =
  Test.make ~name:"http.response.header(align=32)"
    (Staged.stage (fun () ->
         ignore
           (Http.Response.header ~status:Http.Status.Ok
              ~content_type:"text/html" ~content_length:8192 ~align:32 ())))

let bench_header_unaligned =
  Test.make ~name:"http.response.header(raw)"
    (Staged.stage (fun () ->
         ignore
           (Http.Response.header ~status:Http.Status.Ok
              ~content_type:"text/html" ~content_length:8192 ())))

let bench_lru =
  let lru = Flash_util.Lru.create ~capacity:1024 () in
  for i = 0 to 1023 do
    Flash_util.Lru.add lru i i ~weight:1
  done;
  let counter = ref 0 in
  Test.make ~name:"lru.find+add"
    (Staged.stage (fun () ->
         incr counter;
         let k = !counter land 2047 in
         ignore (Flash_util.Lru.find lru k);
         Flash_util.Lru.add lru k k ~weight:1))

let bench_zipf =
  let zipf = Workload.Zipf.create ~n:10_000 ~alpha:1.0 in
  let rng = Sim.Rng.create ~seed:99 in
  Test.make ~name:"zipf.sample"
    (Staged.stage (fun () -> ignore (Workload.Zipf.sample zipf rng)))

let bench_buffer_cache =
  let memory =
    Simos.Memory.create ~total_bytes:(1024 * 8192) ~min_cache_bytes:8192
  in
  let cache = Simos.Buffer_cache.create ~memory ~page_size:8192 in
  let counter = ref 0 in
  Test.make ~name:"buffer_cache.touch"
    (Staged.stage (fun () ->
         incr counter;
         ignore
           (Simos.Buffer_cache.touch cache
              (Simos.Buffer_cache.File_page
                 { inode = 1; page = !counter land 2047 }))))

let bench_normalize =
  Test.make ~name:"request.normalize_path"
    (Staged.stage (fun () ->
         ignore (Http.Request.normalize_path "/a/b/../c/./d/page.html")))

(* Timer wheel under steady-state churn: one schedule + one advance per
   run against a wheel already carrying 1k pending timers — the shape
   the live server's idle timers produce. *)
let bench_timer_wheel =
  let wheel = Evio.Timer_wheel.create ~now:0. () in
  let now = ref 0. in
  for i = 0 to 999 do
    ignore (Evio.Timer_wheel.schedule wheel ~at:(float_of_int i /. 100.) i)
  done;
  Test.make ~name:"evio.timer_wheel.schedule+advance"
    (Staged.stage (fun () ->
         now := !now +. 0.001;
         ignore (Evio.Timer_wheel.schedule wheel ~at:(!now +. 10.) 0);
         ignore (Evio.Timer_wheel.advance wheel ~now:!now)))

let tests =
  Test.make_grouped ~name:"micro"
    [
      bench_parse;
      bench_header_aligned;
      bench_header_unaligned;
      bench_lru;
      bench_zipf;
      bench_buffer_cache;
      bench_normalize;
      bench_timer_wheel;
    ]

let run () =
  (* The figure sims leave a large heap behind; compact so GC noise does
     not pollute the measurements when running after them. *)
  Gc.compact ();
  Format.printf
    "@.============================================================@.";
  Format.printf "Microbenchmarks (Bechamel; ns/run via OLS on monotonic clock)@.";
  Format.printf
    "============================================================@.";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg [ instance ] tests in
  let results = Analyze.all ols instance raw in
  let rows = Hashtbl.fold (fun name result acc -> (name, result) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> String.compare a b) rows in
  Format.printf "%-40s %12s@." "benchmark" "ns/run";
  List.iter
    (fun (name, result) ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Format.printf "%-40s %12.1f@." name est
      | Some _ | None -> Format.printf "%-40s %12s@." name "n/a")
    rows
