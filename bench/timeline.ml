(* Timeline export: trace one disk-bound request through the simulator
   under SPED and AMPED and emit Chrome trace-event JSON for each —
   the same format the live server's /server-trace serves.  Loaded in
   Perfetto, the two files show the architectural difference directly:
   under AMPED the disk-read span sits on the "helper" track while the
   main loop stays free; under SPED it sits on the main-loop track,
   which is exactly the stall.

     dune exec bench/main.exe -- timeline
     # writes timeline_sped.json and timeline_amped.json *)

let request_path files =
  (* The largest file: several chunks of cold reads, a clearly visible
     disk phase. *)
  let best = ref files.(0) in
  Array.iter
    (fun (f : Simos.Fs.file) ->
      if f.Simos.Fs.size > !best.Simos.Fs.size then best := f)
    files;
  !best.Simos.Fs.path

let run_one (config : Flash.Config.t) ~out =
  let engine = Sim.Engine.create ~seed:11 () in
  let profile = Simos.Os_profile.freebsd in
  let kernel = Simos.Kernel.create engine profile in
  let fileset =
    Workload.Fileset.generate (Workload.Fileset.cs_like ~files:64 ~seed:3)
  in
  let files = Workload.Fileset.install fileset (Simos.Kernel.fs kernel) in
  let srv = Flash.Server.start kernel { config with Flash.Config.trace = true } in
  (* No prewarm: the request must go to (simulated) disk. *)
  let path = request_path files in
  let net = Simos.Kernel.net kernel in
  ignore
    (Sim.Proc.spawn engine ~name:"client" (fun () ->
         let c =
           Simos.Net.connect net
             ~link_rate:profile.Simos.Os_profile.lan_rate
             ~rtt:profile.Simos.Os_profile.rtt
         in
         Simos.Net.client_send c
           ("GET " ^ path ^ " HTTP/1.0\r\nHost: sim.example\r\n\r\n");
         (match Simos.Net.client_await_response c with `Ok | `Closed -> ());
         Simos.Net.client_close c));
  ignore (Sim.Engine.run ~until:30. engine);
  match Flash.Server.tracer srv with
  | None -> Format.printf "  %s: tracing disabled?!@." config.Flash.Config.label
  | Some tracer ->
      List.iter
        (fun data -> Format.printf "  %s@." (Obs.Trace.summary data))
        (Obs.Trace.snapshot tracer);
      let oc = open_out out in
      output_string oc (Obs.Trace.to_chrome_json tracer);
      output_char oc '\n';
      close_out oc;
      Format.printf "  wrote %s (load it in Perfetto)@." out

let run () =
  Format.printf "@.== Timeline: one disk-bound request, SPED vs AMPED ==@.";
  Format.printf "SPED (disk read stalls the main loop):@.";
  run_one Flash.Config.flash_sped ~out:"timeline_sped.json";
  Format.printf "AMPED (disk read on a helper; loop stays free):@.";
  run_one Flash.Config.flash ~out:"timeline_amped.json"
