(* Benchmark driver: regenerates every figure of the paper's evaluation
   plus microbenchmarks.

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- fig9    # one figure
     FLASH_BENCH_FAST=1 dune exec ...    # abbreviated sweep (CI) *)

(* Microbenchmarks run first: the figure sims leave a large heap that
   would distort them. *)
let all : (string * (unit -> unit)) list =
  [
    ("micro", Micro.run);
    ("fig6", Figures.fig6);
    ("fig7", Figures.fig7);
    ("fig8", Figures.fig8);
    ("fig9", Figures.fig9);
    ("fig10", Figures.fig10);
    ("fig11", Figures.fig11);
    ("fig12", Figures.fig12);
    ("ablate", Ablate.run);
    ("timeline", Timeline.run);
    ("cachelab", Cachelab.run);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map fst all
  in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun name ->
      match List.assoc_opt name all with
      | Some f ->
          let t = Unix.gettimeofday () in
          f ();
          Format.printf "@.[%s took %.1fs]@." name (Unix.gettimeofday () -. t)
      | None ->
          Format.eprintf "unknown bench %S; available: %s@." name
            (String.concat ", " (List.map fst all));
          exit 2)
    requested;
  Format.printf "@.Total wall time: %.1fs@." (Unix.gettimeofday () -. t0)
