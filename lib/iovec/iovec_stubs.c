/* writev(2) over Bigarray-backed slices.
 *
 * The OCaml side hands us an array of slice records { buf; off; len }
 * where buf is a char Bigarray.  Bigarray data lives outside the OCaml
 * heap, so the base pointers collected while holding the runtime lock
 * stay valid after it is released for the syscall.
 */

#include <caml/mlvalues.h>
#include <caml/memory.h>
#include <caml/fail.h>
#include <caml/bigarray.h>
#include <caml/threads.h>

#ifdef _WIN32

CAMLprim value flash_iovec_available(value unit)
{
  (void) unit;
  return Val_false;
}

CAMLprim value flash_iovec_writev(value vfd, value vslices, value vn)
{
  (void) vfd; (void) vslices; (void) vn;
  caml_failwith("Iovec.writev: not available on this platform");
}

#else

#include <caml/unixsupport.h>
#include <sys/uio.h>
#include <limits.h>
#include <errno.h>

/* Kept well under every platform's IOV_MAX; the OCaml side gathers at
 * most this many slices per call. */
#define FLASH_IOV_CAP 64

CAMLprim value flash_iovec_available(value unit)
{
  (void) unit;
  return Val_true;
}

CAMLprim value flash_iovec_writev(value vfd, value vslices, value vn)
{
  CAMLparam3(vfd, vslices, vn);
  struct iovec iov[FLASH_IOV_CAP];
  long n = Long_val(vn);
  long i;
  ssize_t ret;
  int fd = Int_val(vfd);

  if (n < 0) n = 0;
  if ((uintnat) n > Wosize_val(vslices)) n = Wosize_val(vslices);
  if (n > FLASH_IOV_CAP) n = FLASH_IOV_CAP;
#ifdef IOV_MAX
  if (n > IOV_MAX) n = IOV_MAX;
#endif
  for (i = 0; i < n; i++) {
    value s = Field(vslices, i); /* { buf : bigstring; off : int; len : int } */
    iov[i].iov_base = (char *) Caml_ba_data_val(Field(s, 0)) + Long_val(Field(s, 1));
    iov[i].iov_len = Long_val(Field(s, 2));
  }
  caml_release_runtime_system();
  ret = writev(fd, iov, (int) n);
  caml_acquire_runtime_system();
  if (ret == -1) caml_uerror("writev", Nothing);
  CAMLreturn(Val_long(ret));
}

#endif
