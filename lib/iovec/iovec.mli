(** Gather writes over off-heap buffers — the live server's zero-copy
    send primitive (paper §5.5).

    A {!slice} points into a {!bigstring} (a char Bigarray: stable,
    off-heap storage, which is also what [Unix.map_file] returns), so a
    response can be described as [header slice; body slice] and handed
    to the kernel in a single [writev(2)] without concatenating — and,
    for mmap-backed bodies, without ever copying the payload through
    userspace.

    Two send paths are exposed and selectable at run time:
    - {!writev}: the C stub over [writev(2)] (available when
      {!have_writev});
    - {!writev_copy}: a portable pure-OCaml fallback that copies the
      slices into a scratch buffer and issues one scalar [Unix.write] —
      the measured baseline the gather path is compared against. *)

type bigstring =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

(** A window into a buffer.  [off]/[len] are advanced in place as bytes
    drain, so a partial write resumes without re-slicing. *)
type slice = { buf : bigstring; mutable off : int; mutable len : int }

(** [true] when the [writev(2)] C stub is usable on this platform. *)
val have_writev : bool

(** Most slices a single {!writev} call will submit; longer gathers are
    sent over several calls. *)
val max_iovecs : int

val create : int -> bigstring

(** Copying conversions (each counts as a userspace copy to callers that
    track them). *)
val of_string : string -> bigstring

val of_bytes : Bytes.t -> len:int -> bigstring

(** [sub_string buf ~off ~len] copies a window out (tests, diagnostics). *)
val sub_string : bigstring -> off:int -> len:int -> string

(** Fresh slice over [buf]; default the whole buffer.
    @raise Invalid_argument on out-of-range windows. *)
val slice : ?off:int -> ?len:int -> bigstring -> slice

(** Remaining bytes across an array of slices. *)
val total_length : slice array -> int

(** Consume [n] bytes from the front of [slices], advancing offsets in
    place (the partial-write resumption step). *)
val advance : slice array -> int -> unit

(** Gather-write the slices to [fd] in one [writev(2)]; returns bytes
    written.  Raises [Unix.Unix_error] exactly like [Unix.write]
    (EAGAIN/EWOULDBLOCK on a drained non-blocking socket).
    @raise Failure when {!have_writev} is false. *)
val writev : Unix.file_descr -> slice array -> int

(** Portable fallback: copy the slices into [scratch] (up to its
    capacity) and issue one scalar [Unix.write].  Returns
    [(bytes_written, bytes_copied)]; a caller sees a partial write as
    [bytes_written < bytes_copied]. *)
val writev_copy : scratch:Bytes.t -> Unix.file_descr -> slice array -> int * int
