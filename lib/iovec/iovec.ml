type bigstring =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type slice = { buf : bigstring; mutable off : int; mutable len : int }

external stub_available : unit -> bool = "flash_iovec_available"

external stub_writev : Unix.file_descr -> slice array -> int -> int
  = "flash_iovec_writev"

let have_writev = stub_available ()
let max_iovecs = 64

let create n = Bigarray.Array1.create Bigarray.char Bigarray.c_layout n

let of_string s =
  let n = String.length s in
  let buf = create n in
  for i = 0 to n - 1 do
    Bigarray.Array1.unsafe_set buf i (String.unsafe_get s i)
  done;
  buf

let of_bytes b ~len =
  if len < 0 || len > Bytes.length b then invalid_arg "Iovec.of_bytes";
  let buf = create len in
  for i = 0 to len - 1 do
    Bigarray.Array1.unsafe_set buf i (Bytes.unsafe_get b i)
  done;
  buf

let sub_string buf ~off ~len =
  if off < 0 || len < 0 || off + len > Bigarray.Array1.dim buf then
    invalid_arg "Iovec.sub_string";
  String.init len (fun i -> Bigarray.Array1.unsafe_get buf (off + i))

let slice ?(off = 0) ?len buf =
  let dim = Bigarray.Array1.dim buf in
  let len = match len with Some l -> l | None -> dim - off in
  if off < 0 || len < 0 || off + len > dim then invalid_arg "Iovec.slice";
  { buf; off; len }

let total_length slices =
  Array.fold_left (fun acc s -> acc + s.len) 0 slices

let advance slices n =
  if n < 0 then invalid_arg "Iovec.advance: negative count";
  let left = ref n in
  Array.iter
    (fun s ->
      if !left > 0 then begin
        let take = min s.len !left in
        s.off <- s.off + take;
        s.len <- s.len - take;
        left := !left - take
      end)
    slices;
  if !left > 0 then invalid_arg "Iovec.advance: count exceeds slices"

let writev fd slices =
  if not have_writev then failwith "Iovec.writev: not available";
  let n = Array.length slices in
  if n = 0 then 0 else stub_writev fd slices (min n max_iovecs)

let writev_copy ~scratch fd slices =
  let cap = Bytes.length scratch in
  let filled = ref 0 in
  Array.iter
    (fun s ->
      if !filled < cap && s.len > 0 then begin
        let take = min s.len (cap - !filled) in
        for i = 0 to take - 1 do
          Bytes.unsafe_set scratch (!filled + i)
            (Bigarray.Array1.unsafe_get s.buf (s.off + i))
        done;
        filled := !filled + take
      end)
    slices;
  if !filled = 0 then (0, 0)
  else
    let n = Unix.write fd scratch 0 !filled in
    (n, !filled)
