(** Response header cache (§5.3): inode → rendered HTTP response header.

    The header is derived from the file, so the cache needs no separate
    invalidation: an entry is valid only while the file's mtime matches
    what it was rendered against; a changed mtime regenerates it.
    Entries are weighted by header length and replaced via a pluggable
    {!Flash_cache.Policy} (LRU by default). *)

type t

val create :
  ?policy:Flash_cache.Policy.kind ->
  ?budget:Flash_cache.Budget.t ->
  ?capacity_bytes:int ->
  enabled:bool ->
  unit ->
  t

val enabled : t -> bool

(** [find t file] returns the cached header when present and still valid
    for [file.mtime]. *)
val find : t -> Simos.Fs.file -> string option

val insert : t -> Simos.Fs.file -> string -> unit
val length : t -> int
val hits : t -> int
val misses : t -> int

(** Stale entries dropped because the file changed. *)
val invalidations : t -> int

(** Per-cache counters for status reporting; [None] when disabled. *)
val stats : t -> Flash_cache.Store.stats option
