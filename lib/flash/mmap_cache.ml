type chunk_key = { inode : int; index : int }

type chunk = {
  key : chunk_key;
  bytes : int;
  mutable refcount : int;
}

type t = {
  kernel : Simos.Kernel.t;
  chunk_bytes : int;
  max_bytes : int;
  table : (chunk_key, chunk) Hashtbl.t;
  mutable free : (chunk_key, chunk) Flash_cache.Store.t option;
  mutable mapped : int;
  mutable map_ops : int;
  mutable reuse_hits : int;
  mutable unmap_ops : int;
}

let create ?(policy = Flash_cache.Policy.Lru) ?budget kernel ~chunk_bytes
    ~max_bytes =
  if chunk_bytes <= 0 then invalid_arg "Mmap_cache.create: chunk_bytes <= 0";
  if max_bytes < 0 then invalid_arg "Mmap_cache.create: negative max_bytes";
  let t =
    {
      kernel;
      chunk_bytes;
      max_bytes;
      table = Hashtbl.create 1024;
      free = None;
      mapped = 0;
      map_ops = 0;
      reuse_hits = 0;
      unmap_ops = 0;
    }
  in
  if max_bytes > 0 then begin
    let on_evict _key chunk =
      Hashtbl.remove t.table chunk.key;
      t.mapped <- t.mapped - chunk.bytes;
      t.unmap_ops <- t.unmap_ops + 1;
      Simos.Kernel.munmap t.kernel
    in
    t.free <-
      Some
        (Flash_cache.Store.create ~policy ?budget ~on_evict ~name:"mmap"
           ~capacity:max_bytes ())
  end;
  t

let enabled t = t.free <> None
let chunk_bytes t = t.chunk_bytes
let mapped_bytes t = t.mapped
let map_ops t = t.map_ops
let reuse_hits t = t.reuse_hits
let unmap_ops t = t.unmap_ops

let stats t = Option.map Flash_cache.Store.stats t.free

let chunk_index t ~off = off / t.chunk_bytes

let chunk_extent t (file : Simos.Fs.file) ~index =
  let off = index * t.chunk_bytes in
  if off >= file.Simos.Fs.size then
    invalid_arg "Mmap_cache.chunk_extent: index beyond file";
  (off, min t.chunk_bytes (file.Simos.Fs.size - off))

let fresh_map t key bytes =
  Simos.Kernel.mmap t.kernel;
  t.map_ops <- t.map_ops + 1;
  let chunk = { key; bytes; refcount = 1 } in
  chunk

(* Evict inactive mappings until a new chunk of [bytes] fits the budget
   (or the free list runs dry — active mappings cannot be unmapped). *)
let make_room t free bytes =
  let budget = t.max_bytes in
  let continue = ref true in
  while t.mapped + bytes > budget && !continue do
    continue := Flash_cache.Store.shed free
  done

let acquire t file ~index =
  let _, bytes = chunk_extent t file ~index in
  let key = { inode = file.Simos.Fs.inode; index } in
  match t.free with
  | None -> fresh_map t key bytes
  | Some free -> (
      match Hashtbl.find_opt t.table key with
      | Some chunk ->
          (* Pull an idle mapping back off the free list without the
             evict hook — the mapping stays live. *)
          if chunk.refcount = 0 then
            ignore (Flash_cache.Store.remove free key);
          chunk.refcount <- chunk.refcount + 1;
          t.reuse_hits <- t.reuse_hits + 1;
          chunk
      | None ->
          make_room t free bytes;
          let chunk = fresh_map t key bytes in
          Hashtbl.replace t.table key chunk;
          t.mapped <- t.mapped + bytes;
          chunk)

let release t chunk =
  match t.free with
  | None ->
      t.unmap_ops <- t.unmap_ops + 1;
      Simos.Kernel.munmap t.kernel
  | Some free ->
      if chunk.refcount <= 0 then
        invalid_arg "Mmap_cache.release: chunk not held";
      chunk.refcount <- chunk.refcount - 1;
      if chunk.refcount = 0 then
        (* Lazy unmap: the entry ages out through the free list's
           replacement policy (capacity = max_bytes), not here.  If the
           store rejects it (admission gate), unmap immediately rather
           than leak a mapping the policy no longer tracks. *)
        if not (Flash_cache.Store.add free chunk.key chunk ~weight:chunk.bytes)
        then begin
          Hashtbl.remove t.table chunk.key;
          t.mapped <- t.mapped - chunk.bytes;
          t.unmap_ops <- t.unmap_ops + 1;
          Simos.Kernel.munmap t.kernel
        end
