(** Pathname translation cache (§5.2): requested name → translated file.

    A hit avoids both the per-component translation CPU and — in the
    AMPED architecture — a round trip through a translation helper
    process.  Bounded by entry count; replacement is pluggable via
    {!Flash_cache.Policy} (LRU by default). *)

type t

(** [create ~entries ()] — [entries = 0] yields a disabled cache where
    every lookup misses and [insert] is a no-op. *)
val create :
  ?policy:Flash_cache.Policy.kind ->
  ?budget:Flash_cache.Budget.t ->
  entries:int ->
  unit ->
  t

val enabled : t -> bool
val find : t -> string -> Simos.Fs.file option
val insert : t -> string -> Simos.Fs.file -> unit

(** Forget one translation (file replaced / mtime changed). *)
val invalidate : t -> string -> unit

val length : t -> int
val hits : t -> int
val misses : t -> int

(** Per-cache counters for status reporting; [None] when disabled. *)
val stats : t -> Flash_cache.Store.stats option
