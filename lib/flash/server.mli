(** Server construction: wires a {!Config.t} onto a {!Simos.Kernel.t},
    reserves the architecture's memory footprint, and spawns its
    processes.  This is the public entry point of the library's
    simulated side — the single code base from which all of the paper's
    server variants are instantiated. *)

type t

(** [start kernel config] reserves process/thread footprints (shrinking
    the buffer cache) and spawns the event loops or workers.  They begin
    serving when the engine runs. *)
val start : Simos.Kernel.t -> Config.t -> t

val config : t -> Config.t
val kernel : t -> Simos.Kernel.t

(** The request-lifecycle trace collector (virtual clock), present iff
    the configuration has [trace = true].  Benchmarks export it with
    {!Obs.Trace.to_chrome_json}. *)
val tracer : t -> Obs.Trace.t option

(** Responses fully transmitted so far. *)
val completed : t -> int

(** Non-200 responses. *)
val errors : t -> int

(** AMPED: jobs shipped to helpers / helper processes spawned. *)
val helper_dispatches : t -> int

val helpers_spawned : t -> int

(** Shared cache statistics (SPED/AMPED/MT; MP private caches are not
    aggregated here). *)
val pathname_hits : t -> int

val pathname_misses : t -> int
val header_hits : t -> int
val mmap_reuse_hits : t -> int
val mmap_map_ops : t -> int

(** Memory reserved for this server's processes/threads, bytes. *)
val memory_footprint : t -> int
