type t = {
  store : (string, Simos.Fs.file) Flash_cache.Store.t option;
  (* Disabled caches still count misses so hit-rate math stays total. *)
  mutable disabled_misses : int;
}

let create ?(policy = Flash_cache.Policy.Lru) ?budget ~entries () =
  if entries < 0 then invalid_arg "Pathname_cache.create: negative entries";
  let store =
    if entries = 0 then None
    else
      Some
        (Flash_cache.Store.create ~policy ?budget ~name:"pathname"
           ~capacity:entries ())
  in
  { store; disabled_misses = 0 }

let enabled t = t.store <> None

let find t path =
  match t.store with
  | None ->
      t.disabled_misses <- t.disabled_misses + 1;
      None
  | Some store -> Flash_cache.Store.find store path

let insert t path file =
  match t.store with
  | None -> ()
  | Some store ->
      ignore (Flash_cache.Store.add store path file ~weight:1)

let invalidate t path =
  match t.store with
  | None -> ()
  | Some store -> ignore (Flash_cache.Store.remove store path)

let length t =
  match t.store with None -> 0 | Some store -> Flash_cache.Store.length store

let hits t =
  match t.store with None -> 0 | Some store -> Flash_cache.Store.hits store

let misses t =
  match t.store with
  | None -> t.disabled_misses
  | Some store -> Flash_cache.Store.misses store

let stats t =
  match t.store with
  | None -> None
  | Some store -> Some (Flash_cache.Store.stats store)
