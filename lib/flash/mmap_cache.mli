(** Mapped-file chunk cache (§5.4).

    Files are mapped in chunks (small files use one chunk, large files
    several).  Active chunks are refcounted; released chunks go to a
    free list governed by a pluggable {!Flash_cache.Policy} (LRU by
    default) and are lazily unmapped only when the cache holds too much
    mapped data — saving the map/unmap system calls for frequently
    requested files.  With the cache disabled every acquisition pays a
    fresh [mmap] and every release an immediate [munmap]. *)

type t

type chunk

(** [create kernel ~chunk_bytes ~max_bytes] — [max_bytes = 0] disables
    reuse. *)
val create :
  ?policy:Flash_cache.Policy.kind ->
  ?budget:Flash_cache.Budget.t ->
  Simos.Kernel.t ->
  chunk_bytes:int ->
  max_bytes:int ->
  t

val enabled : t -> bool
val chunk_bytes : t -> int

(** Chunk index covering byte offset [off]. *)
val chunk_index : t -> off:int -> int

(** Byte extent of chunk [index] within [file]: (offset, length). *)
val chunk_extent : t -> Simos.Fs.file -> index:int -> int * int

(** Map (or reuse a mapping of) the chunk.  Charges mmap CPU on a fresh
    mapping; reuse is free.  Must run in process context. *)
val acquire : t -> Simos.Fs.file -> index:int -> chunk

(** Drop a reference; the mapping lingers on the free list (or is
    unmapped immediately when the cache is disabled). *)
val release : t -> chunk -> unit

val mapped_bytes : t -> int
val map_ops : t -> int
val reuse_hits : t -> int
val unmap_ops : t -> int

(** Free-list counters for status reporting; [None] when disabled. *)
val stats : t -> Flash_cache.Store.stats option
