(** Server configuration: the concurrency architecture plus every knob
    the paper's evaluation varies.

    The presets reproduce the paper's §6 setups: Flash-MP and Apache run
    32 processes, Flash-MT 32 threads, the shared caches are large while
    each MP process gets a small private slice, and the Apache/Zeus
    models differ from the Flash presets only in the documented ways
    (Apache: MP without the aggressive optimizations; Zeus: SPED without
    byte-aligned headers, with small-request priority, optionally two
    processes). *)

(** Dynamic-content model (§5.6): per-request application CPU, blocking
    think time (e.g. a database wait), and output size. *)
type cgi = { cgi_cpu : float; cgi_think : float; cgi_bytes : int }

type architecture =
  | Sped  (** single-process event-driven *)
  | Amped  (** event-driven + disk helper processes (Flash) *)
  | Mp  (** one process per concurrent request *)
  | Mt  (** one kernel thread per concurrent request *)

val architecture_name : architecture -> string

type t = {
  label : string;  (** how benches report this server *)
  arch : architecture;
  processes : int;  (** MP worker processes / MT threads / SPED event loops *)
  max_helpers : int;  (** AMPED helper pool bound *)
  pathname_cache_entries : int;  (** 0 disables the cache *)
  header_cache : bool;
  mmap_cache_bytes : int;  (** 0 disables chunk reuse *)
  mmap_chunk_bytes : int;
  align_headers : bool;  (** §5.5 byte-position alignment *)
  small_request_priority : bool;  (** Zeus's observed scheduling bias *)
  extra_request_cpu : float;  (** per-request handicap (Apache model) *)
  double_buffered_io : bool;
      (** read file data into a user buffer before writing (no mmap):
          one extra copy per body byte (Apache model) *)
  residency_heuristic : bool;
      (** replace the mincore test with the §5.7 feedback predictor
          (AMPED only; for systems without mincore/mlock) *)
  cgi : cgi option;
      (** serve /cgi-bin/ paths through persistent application
          processes; [None] rejects them *)
  io_chunk : int;  (** max bytes offered to the socket per send step *)
  index_file : string;
  trace : bool;
      (** record request-lifecycle traces ({!Obs.Trace}) on the virtual
          clock — off by default; benchmarks turn it on to export
          timelines *)
  cache_policy : Flash_cache.Policy.kind;
      (** replacement policy shared by the pathname / header / mmap
          caches (LRU in the paper's configuration) *)
  cache_budget_bytes : int option;
      (** when set, the three caches share one byte budget: overflow in
          any cache sheds from whichever holds the most *)
}

(** Flash: the AMPED server with every optimization on. *)
val flash : t

(** The same code base with the event/helper dispatch replaced (§6). *)
val flash_sped : t

val flash_mp : t
val flash_mt : t

(** AMPED with the §5.7 feedback-based residency predictor instead of
    [mincore]; mispredicted inline accesses block the event loop. *)
val flash_heuristic : t

(** MP reference point without aggressive optimizations. *)
val apache : t

(** SPED reference point; [processes] = 2 mirrors the vendor-advised
    two-process configuration used in the real-workload tests. *)
val zeus : processes:int -> t

(** All six, in the order the paper's figures list them. *)
val all_servers : t list

(** [with_caches t ~pathname ~mmap ~header] switches individual caches
    on/off for the Fig 11 breakdown. *)
val with_caches : t -> pathname:bool -> mmap:bool -> header:bool -> t
