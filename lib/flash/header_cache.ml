type entry = { header : string; mtime : float }

type t = {
  store : (int, entry) Flash_cache.Store.t option;
  mutable disabled_misses : int;
  mutable invalidations : int;
}

let default_capacity_bytes = 16 * 1024 * 1024

let create ?(policy = Flash_cache.Policy.Lru) ?budget
    ?(capacity_bytes = default_capacity_bytes) ~enabled () =
  let store =
    if enabled then
      Some
        (Flash_cache.Store.create ~policy ?budget ~name:"header"
           ~capacity:capacity_bytes ())
    else None
  in
  { store; disabled_misses = 0; invalidations = 0 }

let enabled t = t.store <> None

let find t (file : Simos.Fs.file) =
  match t.store with
  | None ->
      t.disabled_misses <- t.disabled_misses + 1;
      None
  | Some store ->
      let stale = ref false in
      let result =
        Flash_cache.Store.find_validated store file.Simos.Fs.inode
          ~validate:(fun entry ->
            let fresh = entry.mtime = file.Simos.Fs.mtime in
            if not fresh then stale := true;
            fresh)
      in
      if !stale then t.invalidations <- t.invalidations + 1;
      Option.map (fun entry -> entry.header) result

let insert t (file : Simos.Fs.file) header =
  match t.store with
  | None -> ()
  | Some store ->
      ignore
        (Flash_cache.Store.add store file.Simos.Fs.inode
           { header; mtime = file.Simos.Fs.mtime }
           ~weight:(String.length header))

let length t =
  match t.store with None -> 0 | Some store -> Flash_cache.Store.length store

let hits t =
  match t.store with None -> 0 | Some store -> Flash_cache.Store.hits store

let misses t =
  match t.store with
  | None -> t.disabled_misses
  | Some store -> Flash_cache.Store.misses store

let invalidations t = t.invalidations

let stats t =
  match t.store with
  | None -> None
  | Some store -> Some (Flash_cache.Store.stats store)
