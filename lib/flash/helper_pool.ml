type 'a t = {
  kernel : Simos.Kernel.t;
  max : int;
  footprint : int;
  name : string;
  notify : 'a Simos.Pipe.t;
  mutable idle_workers : (unit -> 'a) Simos.Pipe.t list;
  pending : (unit -> 'a) Queue.t;
  max_queued : int option;  (* bound on [pending]; in-flight don't count *)
  mutable spawned : int;
  mutable rejected : int;  (* dispatches refused by the bound *)
  depth : Obs.Gauge.t;  (* queued + in-flight jobs *)
  job_latency : Obs.Histogram.t;  (* dispatch-to-completion, sim seconds *)
}

let create ?max_queued kernel ~max ~footprint ~name =
  if max < 0 then invalid_arg "Helper_pool.create: negative max";
  (match max_queued with
  | Some n when n < 0 -> invalid_arg "Helper_pool.create: max_queued < 0"
  | _ -> ());
  {
    kernel;
    max;
    footprint;
    name;
    notify = Simos.Pipe.create ();
    idle_workers = [];
    pending = Queue.create ();
    max_queued;
    spawned = 0;
    rejected = 0;
    depth = Obs.Gauge.create ();
    job_latency = Obs.Histogram.create ();
  }

let notify_pipe t = t.notify
let spawned t = t.spawned
let idle t = List.length t.idle_workers
let queued t = Queue.length t.pending
let queue_depth t = Obs.Gauge.value t.depth
let queue_depth_hwm t = Obs.Gauge.high_watermark t.depth
let in_flight t = queue_depth t - queued t
let rejected t = t.rejected
let job_latency t = t.job_latency

(* One helper: block on the task pipe, run the job in this process's
   context (disk blocking and CPU land here), notify, repeat.  Between
   jobs it drains the backlog directly. *)
let worker_loop t task_pipe () =
  let rec serve work =
    let result = work () in
    Simos.Kernel.pipe_write t.kernel t.notify result;
    match Queue.take_opt t.pending with
    | Some next -> serve next
    | None ->
        t.idle_workers <- task_pipe :: t.idle_workers;
        serve (Simos.Kernel.pipe_read_blocking t.kernel task_pipe)
  in
  serve (Simos.Kernel.pipe_read_blocking t.kernel task_pipe)

let spawn_worker t =
  let task_pipe = Simos.Pipe.create () in
  Simos.Kernel.fork_charge t.kernel ~footprint:t.footprint;
  t.spawned <- t.spawned + 1;
  let name = Printf.sprintf "%s-helper-%d" t.name t.spawned in
  ignore
    (Sim.Proc.spawn (Simos.Kernel.engine t.kernel) ~name (worker_loop t task_pipe));
  task_pipe

let dispatch t ~work =
  (* Instrument the job at its seam: latency runs from dispatch to the
     helper finishing the work (in simulated time), depth covers queued
     and in-flight jobs alike. *)
  let dispatched_at = Simos.Kernel.now t.kernel in
  let instrumented () =
    let result = work () in
    Obs.Histogram.record t.job_latency
      (Simos.Kernel.now t.kernel -. dispatched_at);
    Obs.Gauge.decr t.depth;
    result
  in
  match t.idle_workers with
  | pipe :: rest ->
      t.idle_workers <- rest;
      Obs.Gauge.incr t.depth;
      Simos.Kernel.pipe_write t.kernel pipe instrumented;
      true
  | [] ->
      if t.spawned < t.max then begin
        let pipe = spawn_worker t in
        Obs.Gauge.incr t.depth;
        Simos.Kernel.pipe_write t.kernel pipe instrumented;
        true
      end
      else begin
        match t.max_queued with
        | Some cap when Queue.length t.pending >= cap ->
            (* Refuse at the door: the caller answers 503 instead of
               letting the backlog grow without bound. *)
            t.rejected <- t.rejected + 1;
            false
        | _ ->
            (* All helpers busy: queue; an IPC send is still paid when a
               helper picks it up, approximate it now. *)
            Obs.Gauge.incr t.depth;
            Simos.Kernel.charge t.kernel
              (Simos.Kernel.profile t.kernel).Simos.Os_profile.ipc_send;
            Queue.push instrumented t.pending;
            true
      end
