type caches = {
  pathname : Pathname_cache.t;
  headers : Header_cache.t;
  mmap : Mmap_cache.t;
}

type t = {
  kernel : Simos.Kernel.t;
  config : Config.t;
  shared_caches : caches;
  cache_mutex : Sim.Sync.Mutex.t option;
  mutable completed : int;
  mutable errors : int;
  mutable helper_dispatches : int;
  residency : Residency.t option;
  cgi : Cgi_pool.t option;
  (* Deferred main-loop actions posted from other processes (CGI
     completions); event loops select on it and run the thunks. *)
  deferred : (unit -> unit) Simos.Pipe.t;
  (* Request-lifecycle traces on the virtual clock, when config.trace. *)
  tracer : Obs.Trace.t option;
}

type response = {
  status : Http.Status.t;
  file : Simos.Fs.file option;
  header : string;
  body_len : int;
  head_only : bool;
  keep : bool;
}

let make_caches_of_kernel kernel (config : Config.t) =
  let policy = config.Config.cache_policy in
  let budget =
    Option.map
      (fun bytes -> Flash_cache.Budget.create ~bytes)
      config.Config.cache_budget_bytes
  in
  {
    pathname =
      Pathname_cache.create ~policy ?budget
        ~entries:config.Config.pathname_cache_entries ();
    headers = Header_cache.create ~policy ?budget ~enabled:config.Config.header_cache ();
    mmap =
      Mmap_cache.create ~policy ?budget kernel
        ~chunk_bytes:config.Config.mmap_chunk_bytes
        ~max_bytes:config.Config.mmap_cache_bytes;
  }

let create kernel (config : Config.t) =
  let residency =
    if config.Config.residency_heuristic && config.Config.arch = Config.Amped
    then begin
      let p = Simos.Kernel.profile kernel in
      let total = p.Simos.Os_profile.ram_bytes in
      Some
        (Residency.create
           ~initial_bytes:(total / 2)
           ~min_bytes:(4 * 1024 * 1024)
           ~max_bytes:total)
    end
    else None
  in
  let cgi =
    match config.Config.cgi with
    | None -> None
    | Some { Config.cgi_cpu; cgi_think; cgi_bytes } ->
        let p = Simos.Kernel.profile kernel in
        Some
          (Cgi_pool.create kernel ~cpu:cgi_cpu ~think:cgi_think
             ~response_bytes:cgi_bytes
             ~footprint:p.Simos.Os_profile.process_footprint)
  in
  {
    kernel;
    config;
    shared_caches = make_caches_of_kernel kernel config;
    cache_mutex =
      (if config.Config.arch = Config.Mt then Some (Sim.Sync.Mutex.create ())
       else None);
    completed = 0;
    errors = 0;
    helper_dispatches = 0;
    residency;
    cgi;
    deferred = Simos.Pipe.create ();
    tracer =
      (if config.Config.trace then
         Some (Obs.Trace.create ~clock:(fun () -> Simos.Kernel.now kernel) ())
       else None);
  }

let make_caches t config = make_caches_of_kernel t.kernel config

let resolve_path t (req : Http.Request.t) =
  let raw = req.Http.Request.path in
  match Http.Request.normalize_path raw with
  | None -> None
  | Some path ->
      (* Normalization strips trailing slashes; the original target tells
         us whether the client asked for a directory. *)
      let wants_index =
        path = "/"
        || (String.length raw > 0 && raw.[String.length raw - 1] = '/')
      in
      if wants_index then
        let base = if path = "/" then "" else path in
        Some (base ^ "/" ^ t.config.Config.index_file)
      else Some path

let profile t = Simos.Kernel.profile t.kernel

let charge_request t ~bytes =
  let p = profile t in
  Simos.Kernel.charge t.kernel
    (p.Simos.Os_profile.request_base
    +. t.config.Config.extra_request_cpu
    +. (float_of_int bytes *. p.Simos.Os_profile.parse_byte))

let charge_lookup t =
  Simos.Kernel.charge t.kernel (profile t).Simos.Os_profile.cache_lookup

let translate_cached t caches path =
  charge_lookup t;
  Pathname_cache.find caches.pathname path

let translate_blocking t caches path =
  match translate_cached t caches path with
  | Some file -> Some file
  | None -> (
      match Simos.Kernel.open_stat t.kernel path with
      | Some file ->
          Pathname_cache.insert caches.pathname path file;
          Some file
      | None -> None)

let align_of t = if t.config.Config.align_headers then Some 32 else None

let header_for t caches (file : Simos.Fs.file) =
  charge_lookup t;
  match Header_cache.find caches.headers file with
  | Some header -> header
  | None ->
      let p = profile t in
      Simos.Kernel.charge t.kernel p.Simos.Os_profile.header_build;
      let header =
        Http.Response.header ~status:Http.Status.Ok
          ~content_type:(Http.Mime.of_path file.Simos.Fs.path)
          ~content_length:file.Simos.Fs.size
          ~last_modified:file.Simos.Fs.mtime
          ~date:(Simos.Kernel.now t.kernel)
          ?align:(align_of t) ()
      in
      Header_cache.insert caches.headers file header;
      header

let ok_response t caches (req : Http.Request.t) file ~keep =
  let header = header_for t caches file in
  {
    status = Http.Status.Ok;
    file = Some file;
    header;
    body_len = file.Simos.Fs.size;
    head_only = req.Http.Request.meth = Http.Request.Head;
    keep;
  }

let error_response t (req : Http.Request.t) status ~keep =
  let p = profile t in
  Simos.Kernel.charge t.kernel p.Simos.Os_profile.header_build;
  let body = Http.Response.error_body status in
  let header =
    Http.Response.header ~status ~content_type:"text/html"
      ~content_length:(String.length body)
      ~date:(Simos.Kernel.now t.kernel)
      ?align:(align_of t) ()
  in
  {
    status;
    file = None;
    header;
    body_len = String.length body;
    head_only = req.Http.Request.meth = Http.Request.Head;
    keep;
  }

(* Dynamic responses are never cached: the body is generated per
   request. *)
let cgi_response t (req : Http.Request.t) ~bytes ~keep =
  let p = profile t in
  Simos.Kernel.charge t.kernel p.Simos.Os_profile.header_build;
  let header =
    Http.Response.header ~status:Http.Status.Ok ~content_type:"text/html"
      ~content_length:bytes
      ~date:(Simos.Kernel.now t.kernel)
      ?align:(align_of t) ()
  in
  {
    status = Http.Status.Ok;
    file = None;
    header;
    body_len = bytes;
    head_only = req.Http.Request.meth = Http.Request.Head;
    keep;
  }

(* Is this a dynamic-content path? *)
let is_cgi_path path =
  String.length path >= 9 && String.sub path 0 9 = "/cgi-bin/"

(* Servers without mmap (the Apache model) copy file data through a
   user buffer before writing: one extra per-byte copy. *)
let charge_body_copy t bytes =
  if t.config.Config.double_buffered_io && bytes > 0 then begin
    let p = profile t in
    Simos.Kernel.charge t.kernel
      (float_of_int bytes *. p.Simos.Os_profile.read_byte)
  end

let misaligned_budget t response =
  if t.config.Config.align_headers then 0
  else begin
    (* Only bytes copied by the same writev as the unpadded header are
       misaligned; later writes start fresh kernel buffers.  The send
       buffer bounds how much one writev can copy. *)
    let p = profile t in
    let first_writev =
      min response.body_len
        (min t.config.Config.io_chunk p.Simos.Os_profile.sndbuf)
    in
    if response.head_only then 0 else first_writev
  end

let finished t response =
  t.completed <- t.completed + 1;
  if response.status <> Http.Status.Ok then t.errors <- t.errors + 1
