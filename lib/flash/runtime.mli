(** Shared per-server state: the cache set, configuration, kernel handle
    and counters.  The four architecture drivers ({!Event_loop} for
    SPED/AMPED, {!Worker} for MP/MT) all process requests through the
    helpers here, keeping the code base common — the property the paper
    relies on when attributing performance differences to architecture
    alone. *)

type caches = {
  pathname : Pathname_cache.t;
  headers : Header_cache.t;
  mmap : Mmap_cache.t;
}

type t = {
  kernel : Simos.Kernel.t;
  config : Config.t;
  shared_caches : caches;
  cache_mutex : Sim.Sync.Mutex.t option;  (** Some _ only for MT *)
  mutable completed : int;  (** responses fully transmitted *)
  mutable errors : int;  (** non-200 responses *)
  mutable helper_dispatches : int;  (** AMPED: jobs sent to helpers *)
  residency : Residency.t option;
      (** the §5.7 predictor, present iff [residency_heuristic] on AMPED *)
  cgi : Cgi_pool.t option;  (** persistent CGI apps, per [config.cgi] *)
  deferred : (unit -> unit) Simos.Pipe.t;
      (** completions posted by other processes for the event loop to run;
          select on its pollable and execute drained thunks *)
  tracer : Obs.Trace.t option;
      (** request-lifecycle traces on the virtual clock, present iff
          [config.trace] — the same {!Obs.Trace} API the live server
          uses, so benchmarks can export simulated timelines *)
}

val create : Simos.Kernel.t -> Config.t -> t

(** A fresh private cache set (per MP worker process). *)
val make_caches : t -> Config.t -> caches

(** Outcome of the translate + header steps, ready for transmission. *)
type response = {
  status : Http.Status.t;
  file : Simos.Fs.file option;  (** [None] for error responses *)
  header : string;
  body_len : int;  (** file size or error body size *)
  head_only : bool;
  keep : bool;
}

(** Map the request target to a filesystem path (index files, dot-segment
    normalization). *)
val resolve_path : t -> Http.Request.t -> string option

(** Charge the per-request base CPU plus any configured handicap, and the
    parse cost for [bytes] of request head. *)
val charge_request : t -> bytes:int -> unit

(** Pathname-cache lookup, charging the probe.  Does not consult the
    filesystem. *)
val translate_cached : t -> caches -> string -> Simos.Fs.file option

(** Full blocking translation: cache probe, then [open]/[stat] through
    the kernel on a miss (inline — this is what stalls SPED on metadata
    misses), inserting the result. *)
val translate_blocking : t -> caches -> string -> Simos.Fs.file option

(** Build (or fetch from cache) the 200 response for [file], plus body
    bookkeeping.  [keep] propagates the client's keep-alive request. *)
val ok_response :
  t -> caches -> Http.Request.t -> Simos.Fs.file -> keep:bool -> response

val error_response : t -> Http.Request.t -> Http.Status.t -> keep:bool -> response

(** Response for a dynamic request whose application produced [bytes]
    of output; never cached. *)
val cgi_response : t -> Http.Request.t -> bytes:int -> keep:bool -> response

(** Does the path name a dynamic document (under /cgi-bin/)? *)
val is_cgi_path : string -> bool

(** Charge the extra user-buffer copy for [bytes] of body data when the
    configuration lacks mmap IO (the Apache model); no-op otherwise. *)
val charge_body_copy : t -> int -> unit

(** Bytes of the first [writev] that pay the misalignment penalty under
    this configuration (0 when headers are aligned). *)
val misaligned_budget : t -> response -> int

(** Account a finished response. *)
val finished : t -> response -> unit
