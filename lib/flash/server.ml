type t = {
  rt : Runtime.t;
  pool : Event_loop.helper_result Helper_pool.t option;
  footprint : int;
}

let footprint_of (p : Simos.Os_profile.t) (config : Config.t) =
  match config.Config.arch with
  | Config.Sped | Config.Amped ->
      config.Config.processes * p.Simos.Os_profile.process_footprint
  | Config.Mp -> config.Config.processes * p.Simos.Os_profile.process_footprint
  | Config.Mt ->
      p.Simos.Os_profile.process_footprint
      + (config.Config.processes * p.Simos.Os_profile.thread_footprint)

let start kernel (config : Config.t) =
  if config.Config.processes < 1 then
    invalid_arg "Server.start: processes < 1";
  let p = Simos.Kernel.profile kernel in
  let rt = Runtime.create kernel config in
  let footprint = footprint_of p config in
  Simos.Memory.reserve (Simos.Kernel.memory kernel) footprint;
  Simos.Buffer_cache.rebalance (Simos.Kernel.cache kernel);
  let engine = Simos.Kernel.engine kernel in
  let pool =
    match config.Config.arch with
    | Config.Amped ->
        Some
          (Helper_pool.create kernel ~max:config.Config.max_helpers
             ~footprint:p.Simos.Os_profile.helper_footprint
             ~name:config.Config.label)
    | Config.Sped | Config.Mp | Config.Mt -> None
  in
  (match config.Config.arch with
  | Config.Sped | Config.Amped ->
      for i = 1 to config.Config.processes do
        let name = Printf.sprintf "%s-loop-%d" config.Config.label i in
        ignore (Sim.Proc.spawn engine ~name (Event_loop.run rt ~pool))
      done
  | Config.Mp ->
      for i = 1 to config.Config.processes do
        let caches = Runtime.make_caches rt config in
        let name = Printf.sprintf "%s-worker-%d" config.Config.label i in
        ignore (Sim.Proc.spawn engine ~name (Worker.run rt caches))
      done
  | Config.Mt ->
      for i = 1 to config.Config.processes do
        let name = Printf.sprintf "%s-thread-%d" config.Config.label i in
        ignore (Sim.Proc.spawn engine ~name (Worker.run rt rt.Runtime.shared_caches))
      done);
  { rt; pool; footprint }

let config t = t.rt.Runtime.config
let kernel t = t.rt.Runtime.kernel
let tracer t = t.rt.Runtime.tracer
let completed t = t.rt.Runtime.completed
let errors t = t.rt.Runtime.errors
let helper_dispatches t = t.rt.Runtime.helper_dispatches

let helpers_spawned t =
  match t.pool with None -> 0 | Some pool -> Helper_pool.spawned pool

let pathname_hits t =
  Pathname_cache.hits t.rt.Runtime.shared_caches.Runtime.pathname

let pathname_misses t =
  Pathname_cache.misses t.rt.Runtime.shared_caches.Runtime.pathname

let header_hits t = Header_cache.hits t.rt.Runtime.shared_caches.Runtime.headers
let mmap_reuse_hits t = Mmap_cache.reuse_hits t.rt.Runtime.shared_caches.Runtime.mmap
let mmap_map_ops t = Mmap_cache.map_ops t.rt.Runtime.shared_caches.Runtime.mmap
let memory_footprint t = t.footprint
