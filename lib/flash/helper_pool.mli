(** AMPED helper process pool.

    Helpers are separate simulated processes that execute potentially
    blocking work (pathname translation, faulting file pages) so the
    event-driven main process never blocks on disk.  They are spawned on
    demand up to a bound, kept in reserve afterwards, and each handles
    one job at a time (§5.1).  Completions return over a pipe the main
    loop multiplexes in [select]. *)

type 'a t

(** [create ?max_queued kernel ~max ~footprint ~name] — [footprint]
    bytes of RAM are reserved per spawned helper (shrinking the buffer
    cache).  [max_queued] bounds the backlog of jobs waiting for a
    helper (in-flight jobs don't count); unbounded by default. *)
val create :
  ?max_queued:int ->
  Simos.Kernel.t ->
  max:int ->
  footprint:int ->
  name:string ->
  'a t

(** [dispatch t ~work] hands [work] to an idle helper (spawning one if
    allowed, queueing otherwise).  [work] runs in the helper's process
    context — its blocking and CPU charges land on the helper — and its
    result is written to the notification pipe.  The caller is charged
    one IPC send.  Must run in process context.  Returns [false] — and
    queues nothing — when every helper is busy and the backlog is at
    [max_queued]. *)
val dispatch : 'a t -> work:(unit -> 'a) -> bool

(** The pipe completions arrive on; poll it in [select] and drain with
    {!Simos.Kernel.pipe_read}. *)
val notify_pipe : 'a t -> 'a Simos.Pipe.t

val spawned : 'a t -> int
val idle : 'a t -> int
val queued : 'a t -> int

(** Jobs dispatched but not yet finished (queued + in-flight). *)
val queue_depth : 'a t -> int

(** Deepest {!queue_depth} has ever been. *)
val queue_depth_hwm : 'a t -> int

(** Jobs a helper is actively running ({!queue_depth} − {!queued}). *)
val in_flight : 'a t -> int

(** Dispatches refused by the [max_queued] bound. *)
val rejected : 'a t -> int

(** Dispatch-to-completion latency histogram in simulated seconds — the
    same {!Obs.Histogram} the live server reports, so simulated and
    live helper figures share a code path. *)
val job_latency : 'a t -> Obs.Histogram.t
