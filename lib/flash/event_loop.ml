type job = {
  resp : Runtime.response;
  j_start : float;  (* virtual time the send began (trace write span) *)
  mutable hdr_sent : int;
  mutable body_sent : int;
  mutable misalign_left : int;
  mutable held : Mmap_cache.chunk option;
  mutable held_index : int;
}

type econn = {
  conn : Simos.Net.conn;
  accepted_at : float;
  mutable rbuf : string;
  mutable state : state;
  mutable alive : bool;
  mutable trace : Obs.Trace.trace option;  (* request in flight *)
  mutable served : int;  (* finished traces on this connection *)
}

and state =
  | Reading
  | Sending of job
  | Wait_translate
  | Wait_pagein of job

(* Helper completions carry the dispatch time so the loop can stitch a
   helper-attributed span covering queue wait + blocking work. *)
type helper_result =
  | Translated of econn * Http.Request.t * string * Simos.Fs.file option * float
  | Paged_in of econn * float

type tag = Accept | Helper | Deferred | Io of econn

(* Diagnostics: one counter per runtime, keyed physically. *)
let live_table : (Runtime.t * int ref) list ref = ref []

let live_counter rt =
  match List.find_opt (fun (r, _) -> r == rt) !live_table with
  | Some (_, c) -> c
  | None ->
      let c = ref 0 in
      live_table := (rt, c) :: !live_table;
      c

let live_connections rt = !(live_counter rt)

(* ------------------------------------------------------------------ *)
(* Tracing (virtual-clock spans; no-ops unless config.trace)            *)
(* ------------------------------------------------------------------ *)

let sim_now rt = Simos.Kernel.now rt.Runtime.kernel

(* Single-threaded simulation: no locking needed around the tracer. *)
let begin_trace rt c (req : Http.Request.t) =
  match rt.Runtime.tracer with
  | None -> ()
  | Some tracer ->
      let label =
        Http.Request.meth_to_string req.Http.Request.meth
        ^ " " ^ req.Http.Request.raw_target
      in
      let tr =
        if c.served = 0 then begin
          let tr = Obs.Trace.start tracer ~at:c.accepted_at ~label () in
          Obs.Trace.add_span tracer ~name:"accept" ~start:c.accepted_at
            ~stop:c.accepted_at tr;
          tr
        end
        else begin
          let tr = Obs.Trace.start tracer ~label () in
          Obs.Trace.instant tracer tr "keepalive-reuse";
          tr
        end
      in
      c.trace <- Some tr

let add_tr_span rt c ?track name ~start ~stop =
  match (rt.Runtime.tracer, c.trace) with
  | Some tracer, Some tr -> Obs.Trace.add_span tracer ?track ~name ~start ~stop tr
  | _ -> ()

let add_tr_instant rt c name =
  match (rt.Runtime.tracer, c.trace) with
  | Some tracer, Some tr -> Obs.Trace.instant tracer tr name
  | _ -> ()

let finish_trace rt c =
  match (rt.Runtime.tracer, c.trace) with
  | Some tracer, Some tr ->
      ignore (Obs.Trace.finish tracer tr);
      c.trace <- None;
      c.served <- c.served + 1
  | _ -> ()

let release_held rt job =
  match job.held with
  | Some chunk ->
      Mmap_cache.release rt.Runtime.shared_caches.Runtime.mmap chunk;
      job.held <- None;
      job.held_index <- -1
  | None -> ()

let job_complete job =
  let body_target = if job.resp.Runtime.head_only then 0 else job.resp.Runtime.body_len in
  job.hdr_sent >= String.length job.resp.Runtime.header
  && job.body_sent >= body_target

let make_job rt resp =
  {
    resp;
    j_start = Simos.Kernel.now rt.Runtime.kernel;
    hdr_sent = 0;
    body_sent = 0;
    misalign_left = Runtime.misaligned_budget rt resp;
    held = None;
    held_index = -1;
  }

let rec close_conn rt live c =
  if c.alive then begin
    (match c.state with
    | Sending job | Wait_pagein job -> release_held rt job
    | Reading | Wait_translate -> ());
    (* A request still in flight gets its trace closed, not lost. *)
    add_tr_instant rt c "close";
    finish_trace rt c;
    c.alive <- false;
    decr live;
    Simos.Kernel.close rt.Runtime.kernel c.conn
  end

(* ------------------------------------------------------------------ *)
(* The send step: runs when the connection's socket is writable.       *)
(* ------------------------------------------------------------------ *)

and do_send rt ~pool live c job =
  let kernel = rt.Runtime.kernel in
  let config = rt.Runtime.config in
  let caches = rt.Runtime.shared_caches in
  let resp = job.resp in
  let hlen = String.length resp.Runtime.header in
  let body_target = if resp.Runtime.head_only then 0 else resp.Runtime.body_len in
  let hdr_remaining = hlen - job.hdr_sent in
  let data_remaining = body_target - job.body_sent in
  (* Decide the data slice for this step and make sure it is mapped and
     resident (architecture-specific). *)
  let proceed step_data =
    Runtime.charge_body_copy rt step_data;
    let want = hdr_remaining + step_data in
    let mis = min job.misalign_left step_data in
    let sent = Simos.Kernel.send kernel c.conn ~len:want ~misaligned_bytes:mis in
    let hdr_part = min sent hdr_remaining in
    job.hdr_sent <- job.hdr_sent + hdr_part;
    let data_part = sent - hdr_part in
    job.body_sent <- job.body_sent + data_part;
    job.misalign_left <- max 0 (job.misalign_left - data_part);
    if job_complete job then begin
      release_held rt job;
      Runtime.finished rt resp;
      Simos.Net.mark_response_done c.conn;
      add_tr_span rt c "write" ~start:job.j_start ~stop:(sim_now rt);
      if resp.Runtime.keep && not (Simos.Net.client_closed c.conn) then begin
        finish_trace rt c;
        c.state <- Reading;
        (* A pipelined request may already be buffered. *)
        try_parse rt ~pool live c
      end
      else close_conn rt live c  (* close_conn finishes the trace *)
    end
  in
  match resp.Runtime.file with
  | None -> proceed (min data_remaining config.Config.io_chunk)
  | Some _ when data_remaining = 0 -> proceed 0
  | Some file ->
      let off = job.body_sent in
      let chunk_b = config.Config.mmap_chunk_bytes in
      let chunk_index = off / chunk_b in
      let chunk_end = min body_target ((chunk_index + 1) * chunk_b) in
      let step_data = min (chunk_end - off) config.Config.io_chunk in
      (* Hold the mapping for the chunk being transmitted. *)
      if job.held_index <> chunk_index then begin
        release_held rt job;
        job.held <- Some (Mmap_cache.acquire caches.Runtime.mmap file ~index:chunk_index);
        job.held_index <- chunk_index
      end;
      (match pool with
      | Some pool ->
          let dispatch_pagein () =
            rt.Runtime.helper_dispatches <- rt.Runtime.helper_dispatches + 1;
            c.state <- Wait_pagein job;
            let enqueued = sim_now rt in
            let admitted =
              Helper_pool.dispatch pool ~work:(fun () ->
                  (* The helper touches the pages in its own mapping,
                     blocking on the disk reads itself. *)
                  Simos.Kernel.page_in kernel file ~off ~len:step_data;
                  let pages =
                    Simos.Fs.pages_in_range (Simos.Kernel.fs kernel) ~off
                      ~len:step_data
                  in
                  Simos.Kernel.charge kernel (float_of_int pages *. 1e-6);
                  Paged_in (c, enqueued))
            in
            if not admitted then begin
              (* Bounded backlog full mid-response: headers are already
                 on the wire, so shedding is no longer possible — fault
                 the pages inline (the SPED pathology, but bounded by
                 the cap rather than an unbounded queue). *)
              let before = sim_now rt in
              Simos.Kernel.page_in kernel file ~off ~len:step_data;
              if sim_now rt > before then
                add_tr_span rt c "disk-read" ~start:before ~stop:(sim_now rt);
              c.state <- Sending job;
              proceed step_data
            end
          in
          (match rt.Runtime.residency with
          | None ->
              (* AMPED: test residency before use; ship misses to a
                 helper.  Transmitting from the mapping references the
                 pages (mincore alone would not). *)
              if Simos.Kernel.mincore kernel file ~off ~len:step_data then begin
                Simos.Kernel.mark_accessed kernel file ~off ~len:step_data;
                proceed step_data
              end
              else dispatch_pagein ()
          | Some predictor ->
              (* S5.7 fallback: no mincore available.  Ranges the
                 predictor believes resident are accessed inline; a wrong
                 belief blocks the whole loop (a page fault) and shrinks
                 the assumed cache size. *)
              if Residency.predict_resident predictor file ~off ~len:step_data
              then begin
                let before = Simos.Kernel.now kernel in
                Simos.Kernel.page_in kernel file ~off ~len:step_data;
                if Simos.Kernel.now kernel > before then begin
                  Residency.note_fault predictor file ~off ~len:step_data;
                  (* Mispredicted: the loop just blocked on disk. *)
                  add_tr_span rt c "disk-read" ~start:before
                    ~stop:(Simos.Kernel.now kernel)
                end
                else Residency.note_correct predictor;
                Residency.note_access predictor file ~off ~len:step_data;
                proceed step_data
              end
              else begin
                Residency.note_access predictor file ~off ~len:step_data;
                dispatch_pagein ()
              end)
      | None ->
          (* SPED/Zeus: the "non-blocking" file read; on a cache miss this
             stalls the entire event loop — the paper's central pathology.
             The disk span lands on the main-loop track. *)
          let before = Simos.Kernel.now kernel in
          Simos.Kernel.page_in kernel file ~off ~len:step_data;
          if Simos.Kernel.now kernel > before then
            add_tr_span rt c "disk-read" ~start:before
              ~stop:(Simos.Kernel.now kernel);
          proceed step_data)

(* ------------------------------------------------------------------ *)
(* Request intake.                                                     *)
(* ------------------------------------------------------------------ *)

and start_send rt ~pool live c resp =
  let job = make_job rt resp in
  c.state <- Sending job;
  if Simos.Pollable.is_ready (Simos.Net.writable c.conn) then
    do_send rt ~pool live c job

and process_request rt ~pool live c (req : Http.Request.t) ~head_bytes =
  begin_trace rt c req;
  let t_parse = sim_now rt in
  Runtime.charge_request rt ~bytes:head_bytes;
  add_tr_span rt c "parse" ~start:t_parse ~stop:(sim_now rt);
  let keep = Http.Request.keep_alive req in
  let caches = rt.Runtime.shared_caches in
  match Runtime.resolve_path rt req with
  | None ->
      start_send rt ~pool live c
        (Runtime.error_response rt req Http.Status.Forbidden ~keep)
  | Some path when Runtime.is_cgi_path path -> (
      (* §5.6: forward to the persistent application process; its
         completion arrives on the deferred pipe like any other IO
         event, so the loop never blocks on dynamic content. *)
      match rt.Runtime.cgi with
      | Some cgi_pool ->
          c.state <- Wait_translate;
          let kernel = rt.Runtime.kernel in
          let enqueued = sim_now rt in
          Cgi_pool.dispatch cgi_pool ~script:path ~on_done:(fun ~bytes ->
              Simos.Kernel.pipe_write kernel rt.Runtime.deferred (fun () ->
                  if c.alive then begin
                    add_tr_span rt c ~track:"cgi-app" "cgi" ~start:enqueued
                      ~stop:(sim_now rt);
                    start_send rt ~pool live c
                      (Runtime.cgi_response rt req ~bytes ~keep)
                  end))
      | None ->
          start_send rt ~pool live c
            (Runtime.error_response rt req Http.Status.Forbidden ~keep))
  | Some path -> (
      let t_translate = sim_now rt in
      match Runtime.translate_cached rt caches path with
      | Some file ->
          add_tr_span rt c "translate" ~start:t_translate ~stop:(sim_now rt);
          start_send rt ~pool live c (Runtime.ok_response rt caches req file ~keep)
      | None -> (
          add_tr_span rt c "translate" ~start:t_translate ~stop:(sim_now rt);
          match pool with
          | Some pool ->
              (* AMPED: uncached translations go to a helper process.
                 A full bounded backlog is answered with an early 503
                 before any disk work is committed. *)
              rt.Runtime.helper_dispatches <- rt.Runtime.helper_dispatches + 1;
              c.state <- Wait_translate;
              let kernel = rt.Runtime.kernel in
              let enqueued = sim_now rt in
              let admitted =
                Helper_pool.dispatch pool ~work:(fun () ->
                    let file = Simos.Kernel.open_stat kernel path in
                    Translated (c, req, path, file, enqueued))
              in
              if not admitted then begin
                c.state <- Reading;
                start_send rt ~pool:(Some pool) live c
                  (Runtime.error_response rt req Http.Status.Service_unavailable
                     ~keep)
              end
          | None -> (
              (* SPED/Zeus: inline translation; metadata misses stall the
                 loop. *)
              let before = sim_now rt in
              match Simos.Kernel.open_stat rt.Runtime.kernel path with
              | Some file ->
                  add_tr_span rt c "translate-disk" ~start:before
                    ~stop:(sim_now rt);
                  Pathname_cache.insert caches.Runtime.pathname path file;
                  start_send rt ~pool live c
                    (Runtime.ok_response rt caches req file ~keep)
              | None ->
                  add_tr_span rt c "translate-disk" ~start:before
                    ~stop:(sim_now rt);
                  start_send rt ~pool live c
                    (Runtime.error_response rt req Http.Status.Not_found ~keep))))

and try_parse rt ~pool live c =
  if c.rbuf <> "" then begin
    match Http.Request.parse c.rbuf with
    | Http.Request.Incomplete -> ()
    | Http.Request.Bad _ ->
        let fake =
          {
            Http.Request.meth = Http.Request.Get;
            raw_target = "/";
            path = "/";
            query = None;
            version = (1, 0);
            headers = [];
          }
        in
        c.rbuf <- "";
        start_send rt ~pool live c
          (Runtime.error_response rt fake Http.Status.Bad_request ~keep:false)
    | Http.Request.Complete (req, consumed) ->
        c.rbuf <-
          String.sub c.rbuf consumed (String.length c.rbuf - consumed);
        process_request rt ~pool live c req ~head_bytes:consumed
  end

let do_read rt ~pool live c =
  match Simos.Kernel.recv rt.Runtime.kernel c.conn ~max_bytes:8192 with
  | `Would_block -> ()
  | `Eof -> close_conn rt live c
  | `Data data ->
      c.rbuf <- c.rbuf ^ data;
      try_parse rt ~pool live c

let apply_helper_result rt ~pool live result =
  match result with
  | Translated (c, req, path, file_opt, enqueued) ->
      if c.alive then begin
        add_tr_span rt c ~track:"helper" "helper-translate" ~start:enqueued
          ~stop:(sim_now rt);
        let caches = rt.Runtime.shared_caches in
        let keep = Http.Request.keep_alive req in
        match file_opt with
        | Some file ->
            Pathname_cache.insert caches.Runtime.pathname path file;
            start_send rt ~pool live c
              (Runtime.ok_response rt caches req file ~keep)
        | None ->
            start_send rt ~pool live c
              (Runtime.error_response rt req Http.Status.Not_found ~keep)
      end
  | Paged_in (c, enqueued) ->
      if c.alive then begin
        (* Queue wait + blocking disk work, on the helper's track. *)
        add_tr_span rt c ~track:"helper" "disk-read" ~start:enqueued
          ~stop:(sim_now rt);
        match c.state with
        | Wait_pagein job ->
            c.state <- Sending job;
            if Simos.Pollable.is_ready (Simos.Net.writable c.conn) then
              do_send rt ~pool live c job
        | Reading | Sending _ | Wait_translate -> ()
      end

(* Zeus gives priority to accepts, reads and small sends; large pending
   transmissions are serviced last.  Flash handles events in arrival
   order. *)
let reorder_small_first ready =
  let remaining = function
    | Io c -> (
        match c.state with
        | Sending job ->
            job.resp.Runtime.body_len - job.body_sent
            + (String.length job.resp.Runtime.header - job.hdr_sent)
        | Reading | Wait_translate | Wait_pagein _ -> -1)
    | Accept | Helper | Deferred -> -1
  in
  List.stable_sort (fun a b -> compare (remaining a) (remaining b)) ready

let run rt ~pool () =
  let kernel = rt.Runtime.kernel in
  let live = live_counter rt in
  let conns = ref [] in
  let handle tag =
    match tag with
    | Accept ->
        let rec accept_all () =
          match Simos.Kernel.accept kernel with
          | Some conn ->
              let c =
                {
                  conn;
                  accepted_at = Simos.Kernel.now kernel;
                  rbuf = "";
                  state = Reading;
                  alive = true;
                  trace = None;
                  served = 0;
                }
              in
              incr live;
              conns := c :: !conns;
              accept_all ()
          | None -> ()
        in
        accept_all ()
    | Helper -> (
        match pool with
        | None -> ()
        | Some pool ->
            let pipe = Helper_pool.notify_pipe pool in
            let rec drain () =
              match Simos.Kernel.pipe_read kernel pipe with
              | Some result ->
                  apply_helper_result rt ~pool:(Some pool) live result;
                  drain ()
              | None -> ()
            in
            drain ())
    | Deferred ->
        let rec drain () =
          match Simos.Kernel.pipe_read kernel rt.Runtime.deferred with
          | Some thunk ->
              thunk ();
              drain ()
          | None -> ()
        in
        drain ()
    | Io c ->
        if c.alive then begin
          match c.state with
          | Reading -> do_read rt ~pool live c
          | Sending job -> do_send rt ~pool live c job
          | Wait_translate | Wait_pagein _ -> ()
        end
  in
  let rec loop () =
    conns := List.filter (fun c -> c.alive) !conns;
    let interests =
      (Accept, Simos.Kernel.listener_pollable kernel)
      :: (Deferred, Simos.Pipe.pollable rt.Runtime.deferred)
      ::
      (match pool with
      | Some p -> [ (Helper, Simos.Pipe.pollable (Helper_pool.notify_pipe p)) ]
      | None -> [])
      @ List.filter_map
          (fun c ->
            match c.state with
            | Reading -> Some (Io c, Simos.Net.readable c.conn)
            | Sending _ -> Some (Io c, Simos.Net.writable c.conn)
            | Wait_translate | Wait_pagein _ -> None)
          !conns
    in
    let ready = Simos.Kernel.select kernel interests in
    let ready =
      if rt.Runtime.config.Config.small_request_priority then
        reorder_small_first ready
      else ready
    in
    List.iter handle ready;
    loop ()
  in
  loop ()
