type architecture = Sped | Amped | Mp | Mt

type cgi = { cgi_cpu : float; cgi_think : float; cgi_bytes : int }

let architecture_name = function
  | Sped -> "SPED"
  | Amped -> "AMPED"
  | Mp -> "MP"
  | Mt -> "MT"

type t = {
  label : string;
  arch : architecture;
  processes : int;
  max_helpers : int;
  pathname_cache_entries : int;
  header_cache : bool;
  mmap_cache_bytes : int;
  mmap_chunk_bytes : int;
  align_headers : bool;
  small_request_priority : bool;
  extra_request_cpu : float;
  double_buffered_io : bool;
  residency_heuristic : bool;
  cgi : cgi option;
  io_chunk : int;
  index_file : string;
  trace : bool;
  cache_policy : Flash_cache.Policy.kind;
  cache_budget_bytes : int option;
}

let mib n = n * 1024 * 1024
let kib n = n * 1024

let flash =
  {
    label = "Flash";
    arch = Amped;
    processes = 1;
    max_helpers = 16;
    pathname_cache_entries = 6000;
    header_cache = true;
    mmap_cache_bytes = mib 100;
    mmap_chunk_bytes = kib 64;
    align_headers = true;
    small_request_priority = false;
    extra_request_cpu = 0.;
    double_buffered_io = false;
    residency_heuristic = false;
    cgi = Some { cgi_cpu = 1e-3; cgi_think = 3e-3; cgi_bytes = 4096 };
    io_chunk = kib 64;
    index_file = "index.html";
    trace = false;
    cache_policy = Flash_cache.Policy.Lru;
    cache_budget_bytes = None;
  }

let flash_sped = { flash with label = "SPED"; arch = Sped; max_helpers = 0 }

(* Flash for operating systems without mincore/mlock: the S5.7
   feedback-based residency predictor replaces the mincore test;
   mispredictions block the event loop like SPED would. *)
let flash_heuristic =
  { flash with label = "Flash-H"; residency_heuristic = true }

(* Each MP process replicates the caches, so each gets a small slice
   (the paper configures MP caches "smaller since they are replicated in
   each process"). *)
let flash_mp =
  {
    flash with
    label = "MP";
    arch = Mp;
    processes = 32;
    max_helpers = 0;
    pathname_cache_entries = 200;
    mmap_cache_bytes = mib 3;
  }

let flash_mt =
  { flash with label = "MT"; arch = Mt; processes = 32; max_helpers = 0 }

let apache =
  {
    flash_mp with
    label = "Apache";
    pathname_cache_entries = 0;
    header_cache = false;
    mmap_cache_bytes = 0;
    align_headers = false;
    (* The paper attributes Apache's gap mostly to missing optimizations;
       a modest per-request handicap stands in for its heavier request
       machinery (logging, per-request pools, config matching). *)
    extra_request_cpu = 120e-6;
    double_buffered_io = true;
    (* Apache 1.3 moves file data in small buffers rather than 64 KB
       mapped chunks: more syscalls per request and, cold, more disk
       operations per large file (no read clustering). *)
    mmap_chunk_bytes = kib 16;
    io_chunk = kib 16;
  }

let zeus ~processes =
  {
    flash_sped with
    label = "Zeus";
    processes;
    align_headers = false;
    small_request_priority = true;
  }

let all_servers =
  [ flash_sped; flash; zeus ~processes:1; flash_mt; flash_mp; apache ]

let with_caches t ~pathname ~mmap ~header =
  {
    t with
    pathname_cache_entries = (if pathname then t.pathname_cache_entries else 0);
    mmap_cache_bytes = (if mmap then t.mmap_cache_bytes else 0);
    header_cache = header;
  }
