type kind = Lru | Slru | Lfu | Gdsf

let all = [ Lru; Slru; Lfu; Gdsf ]

let name = function
  | Lru -> "lru"
  | Slru -> "slru"
  | Lfu -> "lfu"
  | Gdsf -> "gdsf"

let valid_names = String.concat "|" (List.map name all)

let of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "lru" -> Ok Lru
  | "slru" -> Ok Slru
  | "lfu" -> Ok Lfu
  | "gdsf" -> Ok Gdsf
  | other ->
      Error
        (Printf.sprintf "unknown cache policy %S (valid policies: %s)" other
           valid_names)

type 'k impl = {
  insert : 'k -> weight:int -> unit;
  access : 'k -> unit;
  remove : 'k -> unit;
  victim : unit -> 'k option;
  resize : int -> unit;
  clear : unit -> unit;
}

(* ------------------------------------------------------------------ *)
(* Keyed doubly-linked recency list (LRU / SLRU segments)              *)
(* ------------------------------------------------------------------ *)

module Klist = struct
  type 'k node = {
    key : 'k;
    mutable prev : 'k node option;  (* toward MRU *)
    mutable next : 'k node option;  (* toward LRU *)
  }

  type 'k t = {
    tbl : ('k, 'k node) Hashtbl.t;
    mutable mru : 'k node option;
    mutable lru : 'k node option;
  }

  let create () = { tbl = Hashtbl.create 64; mru = None; lru = None }
  let mem t k = Hashtbl.mem t.tbl k

  let unlink t node =
    (match node.prev with
    | Some p -> p.next <- node.next
    | None -> t.mru <- node.next);
    (match node.next with
    | Some n -> n.prev <- node.prev
    | None -> t.lru <- node.prev);
    node.prev <- None;
    node.next <- None

  let push_front t k =
    let node = { key = k; prev = None; next = t.mru } in
    (match t.mru with Some m -> m.prev <- Some node | None -> ());
    t.mru <- Some node;
    if t.lru = None then t.lru <- Some node;
    Hashtbl.replace t.tbl k node

  let touch t k =
    match Hashtbl.find_opt t.tbl k with
    | None -> ()
    | Some node ->
        unlink t node;
        node.next <- t.mru;
        (match t.mru with Some m -> m.prev <- Some node | None -> ());
        t.mru <- Some node;
        if t.lru = None then t.lru <- Some node

  let remove t k =
    match Hashtbl.find_opt t.tbl k with
    | None -> false
    | Some node ->
        unlink t node;
        Hashtbl.remove t.tbl k;
        true

  let tail t = Option.map (fun n -> n.key) t.lru

  let clear t =
    Hashtbl.reset t.tbl;
    t.mru <- None;
    t.lru <- None
end

(* ------------------------------------------------------------------ *)
(* Lazy min-heap of (priority, seq, key) for score-ranked policies     *)
(* ------------------------------------------------------------------ *)

(* Entries are never updated in place: a rescore pushes a fresh record
   and the stale one is skipped at pop time (its priority no longer
   matches the key's current one).  Ties break on push sequence, so
   victim choice is deterministic. *)
module Pheap = struct
  type 'k entry = { pri : float; seq : int; hkey : 'k }
  type 'k t = { mutable a : 'k entry array; mutable len : int }

  let create () = { a = [||]; len = 0 }

  let less x y = x.pri < y.pri || (x.pri = y.pri && x.seq < y.seq)

  let swap t i j =
    let tmp = t.a.(i) in
    t.a.(i) <- t.a.(j);
    t.a.(j) <- tmp

  let push t e =
    if t.len = Array.length t.a then begin
      let cap = max 16 (2 * Array.length t.a) in
      let a = Array.make cap e in
      Array.blit t.a 0 a 0 t.len;
      t.a <- a
    end;
    t.a.(t.len) <- e;
    t.len <- t.len + 1;
    let i = ref (t.len - 1) in
    while !i > 0 && less t.a.(!i) t.a.((!i - 1) / 2) do
      let p = (!i - 1) / 2 in
      swap t !i p;
      i := p
    done

  let pop t =
    if t.len = 0 then None
    else begin
      let top = t.a.(0) in
      t.len <- t.len - 1;
      if t.len > 0 then begin
        t.a.(0) <- t.a.(t.len);
        let i = ref 0 in
        let continue = ref true in
        while !continue do
          let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
          let s = ref !i in
          if l < t.len && less t.a.(l) t.a.(!s) then s := l;
          if r < t.len && less t.a.(r) t.a.(!s) then s := r;
          if !s = !i then continue := false
          else begin
            swap t !s !i;
            i := !s
          end
        done
      end;
      Some top
    end

  let clear t = t.len <- 0
end

(* ------------------------------------------------------------------ *)
(* LRU                                                                 *)
(* ------------------------------------------------------------------ *)

let make_lru () =
  let order = Klist.create () in
  {
    insert = (fun k ~weight:_ -> Klist.push_front order k);
    access = (fun k -> Klist.touch order k);
    remove = (fun k -> ignore (Klist.remove order k));
    victim = (fun () -> Klist.tail order);
    resize = (fun _ -> ());
    clear = (fun () -> Klist.clear order);
  }

(* ------------------------------------------------------------------ *)
(* SLRU: probationary + protected segments                             *)
(* ------------------------------------------------------------------ *)

(* New entries land in probation; only a hit promotes into the
   protected segment (bounded at 4/5 of the capacity by weight,
   overflow demoting back to probation MRU).  Victims come from
   probation first, so a one-touch scan can never displace the
   protected hot set. *)
let slru_protected_num = 4

let slru_protected_den = 5

let make_slru ~capacity () =
  let probation = Klist.create () in
  let protected_ = Klist.create () in
  let weights : ('k, int) Hashtbl.t = Hashtbl.create 64 in
  let protected_cap = ref (capacity / slru_protected_den * slru_protected_num) in
  let protected_weight = ref 0 in
  let weight_of k = Option.value ~default:0 (Hashtbl.find_opt weights k) in
  let demote_overflow () =
    let continue = ref true in
    while !protected_weight > !protected_cap && !continue do
      match Klist.tail protected_ with
      | None -> continue := false
      | Some k ->
          ignore (Klist.remove protected_ k);
          protected_weight := !protected_weight - weight_of k;
          Klist.push_front probation k
    done
  in
  {
    insert =
      (fun k ~weight ->
        Hashtbl.replace weights k weight;
        Klist.push_front probation k);
    access =
      (fun k ->
        if Klist.mem probation k then begin
          ignore (Klist.remove probation k);
          Klist.push_front protected_ k;
          protected_weight := !protected_weight + weight_of k;
          demote_overflow ()
        end
        else Klist.touch protected_ k);
    remove =
      (fun k ->
        if Klist.remove probation k then ()
        else if Klist.remove protected_ k then
          protected_weight := !protected_weight - weight_of k;
        Hashtbl.remove weights k);
    victim =
      (fun () ->
        match Klist.tail probation with
        | Some _ as v -> v
        | None -> Klist.tail protected_);
    resize =
      (fun capacity ->
        protected_cap := capacity / slru_protected_den * slru_protected_num;
        demote_overflow ());
    clear =
      (fun () ->
        Klist.clear probation;
        Klist.clear protected_;
        Hashtbl.reset weights;
        protected_weight := 0);
  }

(* ------------------------------------------------------------------ *)
(* LFU with EMA decay (pcache-style frequency ranking)                 *)
(* ------------------------------------------------------------------ *)

(* Per-access geometric decay [lfu_decay] is folded into a growing
   contribution multiplier instead of sweeping old scores: access [j]
   adds [1/decay^j], so score ratios equal decayed-frequency ratios and
   ordering is preserved without ever touching idle entries.  When the
   multiplier nears overflow every score is renormalised (divided by
   it) and the heap rebuilt — ordering again unchanged. *)
let lfu_decay = 0.999

let lfu_renorm_threshold = 1e100

let make_lfu () =
  let scores : ('k, float) Hashtbl.t = Hashtbl.create 64 in
  let seqs : ('k, int) Hashtbl.t = Hashtbl.create 64 in
  let heap = Pheap.create () in
  let mult = ref 1.0 in
  let seq = ref 0 in
  let push k score =
    incr seq;
    Hashtbl.replace seqs k !seq;
    Pheap.push heap { Pheap.pri = score; seq = !seq; hkey = k }
  in
  let renormalize () =
    let m = !mult in
    mult := 1.0;
    Pheap.clear heap;
    let snapshot = Hashtbl.fold (fun k s acc -> (k, s /. m) :: acc) scores [] in
    List.iter
      (fun (k, s) ->
        Hashtbl.replace scores k s;
        push k s)
      snapshot
  in
  let bump k =
    mult := !mult /. lfu_decay;
    if !mult > lfu_renorm_threshold then renormalize ();
    let score = Option.value ~default:0.0 (Hashtbl.find_opt scores k) +. !mult in
    Hashtbl.replace scores k score;
    push k score
  in
  let rec pop_victim () =
    match Pheap.pop heap with
    | None -> None
    | Some e -> (
        match (Hashtbl.find_opt scores e.Pheap.hkey, Hashtbl.find_opt seqs e.Pheap.hkey) with
        | Some s, Some q when s = e.Pheap.pri && q = e.Pheap.seq ->
            (* Still the key's live record: re-push it (the store may
               not actually evict, e.g. when only peeking) and return. *)
            Pheap.push heap e;
            Some e.Pheap.hkey
        | _ -> pop_victim ())
  in
  {
    insert = (fun k ~weight:_ -> bump k);
    access = (fun k -> bump k);
    remove =
      (fun k ->
        Hashtbl.remove scores k;
        Hashtbl.remove seqs k);
    victim = pop_victim;
    resize = (fun _ -> ());
    clear =
      (fun () ->
        Hashtbl.reset scores;
        Hashtbl.reset seqs;
        Pheap.clear heap;
        mult := 1.0;
        seq := 0);
  }

(* ------------------------------------------------------------------ *)
(* GDSF: Greedy-Dual-Size-Frequency                                    *)
(* ------------------------------------------------------------------ *)

(* Priority [L + freq / size]: small, frequently-hit objects rank high;
   a large one-touch object is the cheapest victim.  [L] inflates to
   each victim's priority, so long-resident entries age relative to
   fresh insertions — the classic web-proxy policy (Cherkasova). *)
let make_gdsf () =
  let pris : ('k, float) Hashtbl.t = Hashtbl.create 64 in
  let seqs : ('k, int) Hashtbl.t = Hashtbl.create 64 in
  let freqs : ('k, int) Hashtbl.t = Hashtbl.create 64 in
  let sizes : ('k, int) Hashtbl.t = Hashtbl.create 64 in
  let heap = Pheap.create () in
  let aging = ref 0.0 in
  let seq = ref 0 in
  let push k pri =
    incr seq;
    Hashtbl.replace seqs k !seq;
    Hashtbl.replace pris k pri;
    Pheap.push heap { Pheap.pri; seq = !seq; hkey = k }
  in
  let rescore k =
    let f = Option.value ~default:0 (Hashtbl.find_opt freqs k) + 1 in
    Hashtbl.replace freqs k f;
    let size = max 1 (Option.value ~default:1 (Hashtbl.find_opt sizes k)) in
    push k (!aging +. (float_of_int f /. float_of_int size))
  in
  let rec pop_victim () =
    match Pheap.pop heap with
    | None -> None
    | Some e -> (
        match (Hashtbl.find_opt pris e.Pheap.hkey, Hashtbl.find_opt seqs e.Pheap.hkey) with
        | Some p, Some q when p = e.Pheap.pri && q = e.Pheap.seq ->
            Pheap.push heap e;
            aging := e.Pheap.pri;
            Some e.Pheap.hkey
        | _ -> pop_victim ())
  in
  {
    insert =
      (fun k ~weight ->
        Hashtbl.replace sizes k weight;
        Hashtbl.remove freqs k;
        rescore k);
    access = rescore;
    remove =
      (fun k ->
        Hashtbl.remove pris k;
        Hashtbl.remove seqs k;
        Hashtbl.remove freqs k;
        Hashtbl.remove sizes k);
    victim = pop_victim;
    resize = (fun _ -> ());
    clear =
      (fun () ->
        Hashtbl.reset pris;
        Hashtbl.reset seqs;
        Hashtbl.reset freqs;
        Hashtbl.reset sizes;
        Pheap.clear heap;
        aging := 0.0;
        seq := 0);
  }

let make kind ~capacity () =
  match kind with
  | Lru -> make_lru ()
  | Slru -> make_slru ~capacity ()
  | Lfu -> make_lfu ()
  | Gdsf -> make_gdsf ()

(* ------------------------------------------------------------------ *)
(* Admission                                                           *)
(* ------------------------------------------------------------------ *)

type admission =
  | Admit_always
  | Admit_min_size of int
  | Admit_freq of float

let admission_name = function
  | Admit_always -> "always"
  | Admit_min_size n -> Printf.sprintf "size:%d" n
  | Admit_freq p -> Printf.sprintf "freq:%g" p

let admission_valid_names = "always|size:BYTES|freq[:PROB]"

let admission_of_string s =
  let s = String.lowercase_ascii (String.trim s) in
  let err () =
    Error
      (Printf.sprintf
         "unknown admission policy %S (valid admission policies: %s)" s
         admission_valid_names)
  in
  match String.index_opt s ':' with
  | None -> (
      match s with
      | "always" -> Ok Admit_always
      | "freq" -> Ok (Admit_freq 0.1)
      | _ -> err ())
  | Some i -> (
      let head = String.sub s 0 i in
      let arg = String.sub s (i + 1) (String.length s - i - 1) in
      match head with
      | "size" | "minsize" | "min-size" -> (
          match int_of_string_opt arg with
          | Some n when n >= 0 -> Ok (Admit_min_size n)
          | _ -> err ())
      | "freq" -> (
          match float_of_string_opt arg with
          | Some p when p >= 0.0 && p <= 1.0 -> Ok (Admit_freq p)
          | _ -> err ())
      | _ -> err ())

type 'k gate = {
  admit : 'k -> weight:int -> bool;
  note_miss : 'k -> unit;
  gate_clear : unit -> unit;
  gate_keys : unit -> 'k list;
}

let no_gate_state =
  {
    admit = (fun _ ~weight:_ -> true);
    note_miss = ignore;
    gate_clear = ignore;
    gate_keys = (fun () -> []);
  }

(* The doorkeeper remembers keys that missed recently.  Bounded by
   periodic reset (a crude sliding window): forgetting everything at
   once only costs a few extra first-timer rejections. *)
let doorkeeper_limit = 65536

(* Deterministic xorshift stream for the probabilistic part: admission
   decisions are reproducible run to run. *)
let make_freq_gate p =
  let seen : ('k, unit) Hashtbl.t = Hashtbl.create 1024 in
  let rng = ref 0x2545F4914F6CDD1D in
  let next_uniform () =
    let x = !rng in
    let x = x lxor (x lsl 13) in
    let x = x lxor (x lsr 7) in
    let x = x lxor (x lsl 17) in
    rng := x;
    float_of_int (x land 0x3FFFFFFF) /. float_of_int 0x40000000
  in
  {
    admit =
      (fun k ~weight:_ -> Hashtbl.mem seen k || next_uniform () < p);
    note_miss =
      (fun k ->
        if Hashtbl.length seen >= doorkeeper_limit then Hashtbl.reset seen;
        Hashtbl.replace seen k ());
    gate_clear = (fun () -> Hashtbl.reset seen);
    gate_keys = (fun () -> Hashtbl.fold (fun k () acc -> k :: acc) seen []);
  }

let make_gate admission () =
  match admission with
  | Admit_always -> no_gate_state
  | Admit_min_size n ->
      { no_gate_state with admit = (fun _ ~weight -> weight >= n) }
  | Admit_freq p -> make_freq_gate p
