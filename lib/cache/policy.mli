(** Cache replacement and admission policies.

    The paper hardwires weighted LRU into every application cache
    (pathname, response-header, mapped-file, and the live file cache).
    This module makes replacement a pluggable policy — the per-entry
    bookkeeping a {!Store} consults to pick eviction victims — plus
    admission gates deciding whether a missed object is worth caching at
    all (in the spirit of pcache's minimum-size and frequency-sampled
    admission for production file servers).

    Implemented replacement policies:
    - [Lru]: classic recency order — the seed behaviour, refactored
      behind the interface.
    - [Slru]: segmented LRU; a probationary segment absorbs one-touch
      objects, hits promote into a protected segment bounded at 4/5 of
      the capacity, so scans cannot flush the hot set.
    - [Lfu]: EMA-decayed frequency ranking (pcache's periodic ranking
      rendered per-access): each access contributes weight that decays
      geometrically, so long-dead popularity ages out.
    - [Gdsf]: Greedy-Dual-Size-Frequency — priority
      [L + frequency / size] with the aging term [L] inflated to each
      eviction victim's priority; keeps small popular objects and evicts
      big one-touch objects first. *)

type kind = Lru | Slru | Lfu | Gdsf

val all : kind list

val name : kind -> string

(** ["lru|slru|lfu|gdsf"] — for error messages and [--help]. *)
val valid_names : string

(** Case-insensitive; [Error] carries a message listing valid names. *)
val of_string : string -> (kind, string) result

(** One policy instance: the mutable replacement state for a single
    store.  Keys tracked here mirror the store's resident set exactly —
    the store calls [insert]/[remove] as entries come and go, [access]
    on hits, and [victim] to pick who dies under pressure. *)
type 'k impl = {
  insert : 'k -> weight:int -> unit;  (** key became resident *)
  access : 'k -> unit;  (** hit on a resident key *)
  remove : 'k -> unit;  (** key leaving (eviction or invalidation) *)
  victim : unit -> 'k option;
      (** next eviction victim (still resident; the store removes it) *)
  resize : int -> unit;  (** capacity changed (SLRU segment bound) *)
  clear : unit -> unit;
}

(** Fresh policy state.  [capacity] is the store's weight capacity
    (SLRU sizes its protected segment from it; others ignore it). *)
val make : kind -> capacity:int -> unit -> 'k impl

(** {1 Admission} *)

type admission =
  | Admit_always
  | Admit_min_size of int
      (** only objects of at least this weight are cacheable — pcache's
          gate for an SSD cache that should hold big files.  Weights
          below the threshold are rejected. *)
  | Admit_freq of float
      (** probabilistic frequency gate: an object missed before (seen by
          the gate's doorkeeper) is admitted outright; a first-timer is
          admitted with this probability (deterministic pseudo-random
          stream), so one-touch objects mostly stay out. *)

val admission_name : admission -> string

(** ["always|size:BYTES|freq[:PROB]"]. *)
val admission_valid_names : string

val admission_of_string : string -> (admission, string) result

type 'k gate = {
  admit : 'k -> weight:int -> bool;
  note_miss : 'k -> unit;
      (** remember a rejected key so its next admission attempt passes
          (the doorkeeper) *)
  gate_clear : unit -> unit;
  gate_keys : unit -> 'k list;
      (** the doorkeeper's remembered rejected keys (unordered; empty
          for gates without one) — demand the cache has seen and turned
          away, which is exactly the signal a predictive warmer wants *)
}

val make_gate : admission -> unit -> 'k gate
