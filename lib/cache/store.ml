type ('k, 'v) entry = {
  value : 'v;
  weight : int;
  (* Per-key access history for the predictive warmer: hit count and a
     logical last-access stamp (the store's own op counter, so the
     record stays deterministic and dependency-free — the miner maps
     stamps to recency with its injected clock). *)
  mutable e_hits : int;
  mutable e_last : int;
}

type stats = {
  name : string;
  policy : string;
  admission : string;
  capacity : int;
  entries : int;
  resident : int;
  hits : int;
  misses : int;
  evictions : int;
  admitted : int;
  rejected : int;
  pinned_entries : int;
  pinned_bytes : int;
}

type key_stat = { ks_hits : int; ks_last : int; ks_weight : int; ks_pinned : bool }

type ('k, 'v) t = {
  sname : string;
  table : ('k, ('k, 'v) entry) Hashtbl.t;
  policy : 'k Policy.impl;
  kind : Policy.kind;
  admission : Policy.admission;
  gate : 'k Policy.gate;
  on_evict : 'k -> 'v -> unit;
  budget : Budget.t option;
  (* Pinned keys live in the table (and keep their weight/budget
     charges) but not in the policy's order, so the victim walk can
     never name them.  key -> pinned weight. *)
  pinned_set : ('k, int) Hashtbl.t;
  mutable pinned_weight : int;
  mutable cap : int;
  mutable total_weight : int;
  mutable op : int;  (* logical clock: bumps on every hit/insert *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable admitted : int;
  mutable rejected : int;
}

let length t = Hashtbl.length t.table
let weight t = t.total_weight
let capacity t = t.cap
let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions
let policy_kind t = t.kind
let pinned_bytes t = t.pinned_weight
let pinned_count t = Hashtbl.length t.pinned_set
let pinned t key = Hashtbl.mem t.pinned_set key

let budget_release t n =
  match t.budget with None -> () | Some b -> Budget.release b n

let tick t =
  t.op <- t.op + 1;
  t.op

(* Drop [key] from every structure; the caller decides counters and
   hooks.  A pinned key is unpinned first — the pinned-bytes figure
   must shrink with the entry, never leak past its removal. *)
let drop t key =
  match Hashtbl.find_opt t.table key with
  | None -> None
  | Some entry ->
      Hashtbl.remove t.table key;
      (match Hashtbl.find_opt t.pinned_set key with
      | Some w ->
          Hashtbl.remove t.pinned_set key;
          t.pinned_weight <- t.pinned_weight - w
      | None -> t.policy.Policy.remove key);
      t.total_weight <- t.total_weight - entry.weight;
      budget_release t entry.weight;
      Some entry

let evict_victim t =
  match t.policy.Policy.victim () with
  | None -> false
  | Some key -> (
      match drop t key with
      | None ->
          (* Policy tracked a key the table lost: inconsistent state,
             treat as nothing to evict rather than loop. *)
          false
      | Some entry ->
          t.evictions <- t.evictions + 1;
          t.on_evict key entry.value;
          true)

(* A store whose every entry is pinned refuses to shed; the budget's
   rebalance falls through to the next member. *)
let shed = evict_victim

(* Keep at least one entry under own-capacity pressure: an oversized
   single entry is admitted alone, matching the seed LRU.  Pinned
   entries never count as evictable, so a hot tier wider than the
   unpinned remainder simply stops the walk. *)
let shrink_to_fit t =
  while t.total_weight > t.cap && Hashtbl.length t.table > 1 && evict_victim t
  do
    ()
  done

let create ?(policy = Policy.Lru) ?(admission = Policy.Admit_always)
    ?(on_evict = fun _ _ -> ()) ?budget ?(name = "cache") ~capacity () =
  if capacity <= 0 then invalid_arg "Store.create: capacity <= 0";
  let t =
    {
      sname = name;
      table = Hashtbl.create 256;
      policy = Policy.make policy ~capacity ();
      kind = policy;
      admission;
      gate = Policy.make_gate admission ();
      on_evict;
      budget;
      pinned_set = Hashtbl.create 16;
      pinned_weight = 0;
      cap = capacity;
      total_weight = 0;
      op = 0;
      hits = 0;
      misses = 0;
      evictions = 0;
      admitted = 0;
      rejected = 0;
    }
  in
  (match budget with
  | None -> ()
  | Some b ->
      Budget.register b ~name
        ~usage:(fun () -> t.total_weight)
        ~shed:(fun () -> shed t));
  t

let find_validated t key ~validate =
  match Hashtbl.find_opt t.table key with
  | None ->
      t.misses <- t.misses + 1;
      None
  | Some entry when validate entry.value ->
      t.hits <- t.hits + 1;
      entry.e_hits <- entry.e_hits + 1;
      entry.e_last <- tick t;
      if not (Hashtbl.mem t.pinned_set key) then t.policy.Policy.access key;
      Some entry.value
  | Some entry ->
      (* Stale: remove through the evict hook so resource accounting
         (mapped-bytes gauges) cannot drift, and count a miss. *)
      ignore (drop t key);
      t.on_evict key entry.value;
      t.misses <- t.misses + 1;
      None

let find t key = find_validated t key ~validate:(fun _ -> true)

let peek t key =
  Option.map (fun e -> e.value) (Hashtbl.find_opt t.table key)

let mem t key = Hashtbl.mem t.table key

let budget_charge t n =
  match t.budget with None -> () | Some b -> Budget.charge b n

let add t key value ~weight =
  if weight < 0 then invalid_arg "Store.add: negative weight";
  match Hashtbl.find_opt t.table key with
  | Some old ->
      (* Replacement re-weighs and refreshes; already-resident keys
         bypass admission.  History carries over — the new value is the
         same logical object. *)
      Hashtbl.replace t.table key
        { value; weight; e_hits = old.e_hits; e_last = tick t };
      t.total_weight <- t.total_weight - old.weight + weight;
      (match Hashtbl.find_opt t.pinned_set key with
      | Some _ ->
          Hashtbl.replace t.pinned_set key weight;
          t.pinned_weight <- t.pinned_weight - old.weight + weight
      | None -> t.policy.Policy.access key);
      budget_release t old.weight;
      budget_charge t weight;
      shrink_to_fit t;
      true
  | None ->
      if not (t.gate.Policy.admit key ~weight) then begin
        (* The doorkeeper remembers rejected keys, so a key rejected as a
           first-timer is admitted on its next miss. *)
        t.gate.Policy.note_miss key;
        t.rejected <- t.rejected + 1;
        false
      end
      else begin
        t.admitted <- t.admitted + 1;
        Hashtbl.replace t.table key { value; weight; e_hits = 0; e_last = tick t };
        t.total_weight <- t.total_weight + weight;
        t.policy.Policy.insert key ~weight;
        budget_charge t weight;
        shrink_to_fit t;
        true
      end

let pin t key =
  match Hashtbl.find_opt t.table key with
  | None -> false
  | Some entry ->
      if not (Hashtbl.mem t.pinned_set key) then begin
        t.policy.Policy.remove key;
        Hashtbl.replace t.pinned_set key entry.weight;
        t.pinned_weight <- t.pinned_weight + entry.weight
      end;
      true

let unpin t key =
  match Hashtbl.find_opt t.pinned_set key with
  | None -> false
  | Some w ->
      Hashtbl.remove t.pinned_set key;
      t.pinned_weight <- t.pinned_weight - w;
      (match Hashtbl.find_opt t.table key with
      | Some entry ->
          t.policy.Policy.insert key ~weight:entry.weight;
          (* Back under policy order means back under capacity
             pressure: the release may leave the store over its cap. *)
          shrink_to_fit t
      | None -> ());
      true

let pinned_keys t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.pinned_set []

let fold_keys t ~init ~f =
  Hashtbl.fold
    (fun key entry acc ->
      f acc key
        {
          ks_hits = entry.e_hits;
          ks_last = entry.e_last;
          ks_weight = entry.weight;
          ks_pinned = Hashtbl.mem t.pinned_set key;
        })
    t.table init

let rejected_keys t = t.gate.Policy.gate_keys ()

let remove ?(evict = false) t key =
  match drop t key with
  | None -> None
  | Some entry ->
      if evict then t.on_evict key entry.value;
      Some entry.value

let set_capacity t cap =
  if cap <= 0 then invalid_arg "Store.set_capacity: capacity <= 0";
  t.cap <- cap;
  t.policy.Policy.resize cap;
  shrink_to_fit t

let iter t ~f = Hashtbl.iter (fun k e -> f k e.value) t.table

let clear t =
  budget_release t t.total_weight;
  Hashtbl.reset t.table;
  Hashtbl.reset t.pinned_set;
  t.pinned_weight <- 0;
  t.policy.Policy.clear ();
  t.gate.Policy.gate_clear ();
  t.total_weight <- 0

let stats t : stats =
  {
    name = t.sname;
    policy = Policy.name t.kind;
    admission = Policy.admission_name t.admission;
    capacity = t.cap;
    entries = Hashtbl.length t.table;
    resident = t.total_weight;
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    admitted = t.admitted;
    rejected = t.rejected;
    pinned_entries = Hashtbl.length t.pinned_set;
    pinned_bytes = t.pinned_weight;
  }
