(** Unified byte budget shared by several caches.

    The paper's Flash sizes each application cache independently
    (pathname entries, header bytes, mapped-file bytes); a tuning
    mistake in one starves the others.  A [Budget.t] pools one byte
    allowance over every registered cache: members charge bytes as
    entries arrive and release them as entries leave, and when the pool
    overflows the budget sheds entries from the member currently
    holding the most bytes — the caches compete for memory the way
    files compete inside a single cache.

    Stores register themselves when created with [~budget] (see
    {!Store.create}); manual registration is only needed for exotic
    members.

    A budget is safe to share across OCaml domains (the sharded
    server's shared [--cache-budget]): accounting is atomic, so
    concurrent charge/release conserve the total and a release never
    over-frees past zero, and rebalance is serialised so concurrent
    overflows don't double-shed.  The member callbacks themselves run
    on whichever domain triggered the rebalance — callers sharing a
    budget across domains must make their [usage]/[shed] paths safe to
    invoke from a foreign domain (the live server does this by sharing
    one cache lock across budget-sharing shards). *)

type t

(** @raise Invalid_argument if [bytes <= 0]. *)
val create : bytes:int -> t

val capacity : t -> int

(** Bytes currently charged across all members. *)
val used : t -> int

val member_names : t -> string list

(** [register t ~name ~usage ~shed] — [usage] reports the member's
    resident bytes; [shed] evicts one victim (through the member's
    normal eviction path, hooks included) and returns [false] when it
    has nothing left to give. *)
val register :
  t -> name:string -> usage:(unit -> int) -> shed:(unit -> bool) -> unit

(** Charge [bytes] to the pool, then shed members (largest first) until
    the pool fits again or nothing more can be shed. *)
val charge : t -> int -> unit

val release : t -> int -> unit

(** Shed until within capacity (normally called by {!charge}). *)
val rebalance : t -> unit
