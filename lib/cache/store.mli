(** The policy-driven cache store behind every Flash cache.

    A weighted key/value map whose replacement order comes from a
    pluggable {!Policy.kind} and whose insertions pass a
    {!Policy.admission} gate.  Counts hits, misses, capacity evictions
    and admission decisions per store, so every cache can report itself
    on [/server-status] and in the offline evaluator without private
    bookkeeping.

    Capacity semantics match the seed's weighted LRU: total weight is
    bounded by [capacity], and a single entry heavier than the whole
    capacity is admitted alone (the store never evicts its last entry
    under its own capacity pressure).  A shared {!Budget.t} adds a
    second, pooled bound across several stores; budget pressure may
    evict a store's last entry. *)

type ('k, 'v) t

type stats = {
  name : string;
  policy : string;
  admission : string;
  capacity : int;
  entries : int;
  resident : int;  (** total weight of resident entries *)
  hits : int;
  misses : int;
  evictions : int;  (** capacity/budget pressure only *)
  admitted : int;
  rejected : int;
  pinned_entries : int;  (** entries currently pinned (hot tier) *)
  pinned_bytes : int;  (** total weight of pinned entries *)
}

(** Per-key access history, the predictive warmer's raw material.
    [ks_last] is a logical stamp from the store's own op counter
    (monotone per store: larger means touched more recently), so
    rankings derived from it are deterministic. *)
type key_stat = {
  ks_hits : int;
  ks_last : int;
  ks_weight : int;
  ks_pinned : bool;
}

(** [create ~capacity ()] — [on_evict] runs for pressure evictions and
    for [remove ~evict:true] (resource cleanup, e.g. unmapping), never
    for plain [remove].  With [~budget] the store also registers in the
    shared pool and charges its weights there.
    @raise Invalid_argument if [capacity <= 0]. *)
val create :
  ?policy:Policy.kind ->
  ?admission:Policy.admission ->
  ?on_evict:('k -> 'v -> unit) ->
  ?budget:Budget.t ->
  ?name:string ->
  capacity:int ->
  unit ->
  ('k, 'v) t

(** Lookup; a hit promotes the entry in the policy's order. *)
val find : ('k, 'v) t -> 'k -> 'v option

(** [find_validated t k ~validate] — a resident entry failing
    [validate] is stale: it is removed through the evict hook and the
    lookup counts as a miss.  How the header and file caches drop
    entries whose backing file changed. *)
val find_validated : ('k, 'v) t -> 'k -> validate:('v -> bool) -> 'v option

(** Lookup without promoting or counting. *)
val peek : ('k, 'v) t -> 'k -> 'v option

val mem : ('k, 'v) t -> 'k -> bool

(** Insert through the admission gate; [false] means rejected (the
    store is unchanged).  Replacing a resident key bypasses admission
    and re-weighs.  @raise Invalid_argument on negative weight. *)
val add : ('k, 'v) t -> 'k -> 'v -> weight:int -> bool

(** Remove without counting as an eviction.  [~evict:true] additionally
    runs the [on_evict] hook — use it wherever the hook releases a
    resource (mapping gauges), so explicit invalidation cannot leak. *)
val remove : ?evict:bool -> ('k, 'v) t -> 'k -> 'v option

(** Evict one victim through the normal eviction path even if it is the
    last entry; [false] when empty.  The budget's shed hook. *)
val shed : ('k, 'v) t -> bool

val length : ('k, 'v) t -> int

(** Total resident weight. *)
val weight : ('k, 'v) t -> int

val capacity : ('k, 'v) t -> int

(** @raise Invalid_argument if [cap <= 0]. *)
val set_capacity : ('k, 'v) t -> int -> unit

val iter : ('k, 'v) t -> f:('k -> 'v -> unit) -> unit

(** {1 Pinned hot tier}

    Pinned entries stay resident: they are removed from the policy's
    replacement order (the victim walk can never name them) but remain
    in the table, counted in {!weight} and charged to the shared
    budget.  A store whose unpinned remainder is empty refuses to
    {!shed}, and the budget's rebalance falls through to its next
    member.  {!remove} (and any eviction path) of a pinned entry unpins
    it first, so the pinned-bytes figure can never leak. *)

(** Pin a resident entry; [false] when the key is not resident.
    Idempotent. *)
val pin : ('k, 'v) t -> 'k -> bool

(** Return a pinned entry to the policy's replacement order (which may
    immediately evict under capacity pressure); [false] when the key
    was not pinned. *)
val unpin : ('k, 'v) t -> 'k -> bool

val pinned : ('k, 'v) t -> 'k -> bool
val pinned_bytes : ('k, 'v) t -> int
val pinned_count : ('k, 'v) t -> int
val pinned_keys : ('k, 'v) t -> 'k list

(** {1 Warming inputs} *)

(** Fold over every resident key's access history. *)
val fold_keys :
  ('k, 'v) t -> init:'a -> f:('a -> 'k -> key_stat -> 'a) -> 'a

(** Keys the admission doorkeeper remembers rejecting (unordered;
    empty without a frequency gate) — demand the cache turned away. *)
val rejected_keys : ('k, 'v) t -> 'k list

val clear : ('k, 'v) t -> unit
val stats : ('k, 'v) t -> stats
val policy_kind : ('k, 'v) t -> Policy.kind
val hits : ('k, 'v) t -> int
val misses : ('k, 'v) t -> int
val evictions : ('k, 'v) t -> int
