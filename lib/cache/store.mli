(** The policy-driven cache store behind every Flash cache.

    A weighted key/value map whose replacement order comes from a
    pluggable {!Policy.kind} and whose insertions pass a
    {!Policy.admission} gate.  Counts hits, misses, capacity evictions
    and admission decisions per store, so every cache can report itself
    on [/server-status] and in the offline evaluator without private
    bookkeeping.

    Capacity semantics match the seed's weighted LRU: total weight is
    bounded by [capacity], and a single entry heavier than the whole
    capacity is admitted alone (the store never evicts its last entry
    under its own capacity pressure).  A shared {!Budget.t} adds a
    second, pooled bound across several stores; budget pressure may
    evict a store's last entry. *)

type ('k, 'v) t

type stats = {
  name : string;
  policy : string;
  admission : string;
  capacity : int;
  entries : int;
  resident : int;  (** total weight of resident entries *)
  hits : int;
  misses : int;
  evictions : int;  (** capacity/budget pressure only *)
  admitted : int;
  rejected : int;
}

(** [create ~capacity ()] — [on_evict] runs for pressure evictions and
    for [remove ~evict:true] (resource cleanup, e.g. unmapping), never
    for plain [remove].  With [~budget] the store also registers in the
    shared pool and charges its weights there.
    @raise Invalid_argument if [capacity <= 0]. *)
val create :
  ?policy:Policy.kind ->
  ?admission:Policy.admission ->
  ?on_evict:('k -> 'v -> unit) ->
  ?budget:Budget.t ->
  ?name:string ->
  capacity:int ->
  unit ->
  ('k, 'v) t

(** Lookup; a hit promotes the entry in the policy's order. *)
val find : ('k, 'v) t -> 'k -> 'v option

(** [find_validated t k ~validate] — a resident entry failing
    [validate] is stale: it is removed through the evict hook and the
    lookup counts as a miss.  How the header and file caches drop
    entries whose backing file changed. *)
val find_validated : ('k, 'v) t -> 'k -> validate:('v -> bool) -> 'v option

(** Lookup without promoting or counting. *)
val peek : ('k, 'v) t -> 'k -> 'v option

val mem : ('k, 'v) t -> 'k -> bool

(** Insert through the admission gate; [false] means rejected (the
    store is unchanged).  Replacing a resident key bypasses admission
    and re-weighs.  @raise Invalid_argument on negative weight. *)
val add : ('k, 'v) t -> 'k -> 'v -> weight:int -> bool

(** Remove without counting as an eviction.  [~evict:true] additionally
    runs the [on_evict] hook — use it wherever the hook releases a
    resource (mapping gauges), so explicit invalidation cannot leak. *)
val remove : ?evict:bool -> ('k, 'v) t -> 'k -> 'v option

(** Evict one victim through the normal eviction path even if it is the
    last entry; [false] when empty.  The budget's shed hook. *)
val shed : ('k, 'v) t -> bool

val length : ('k, 'v) t -> int

(** Total resident weight. *)
val weight : ('k, 'v) t -> int

val capacity : ('k, 'v) t -> int

(** @raise Invalid_argument if [cap <= 0]. *)
val set_capacity : ('k, 'v) t -> int -> unit

val iter : ('k, 'v) t -> f:('k -> 'v -> unit) -> unit
val clear : ('k, 'v) t -> unit
val stats : ('k, 'v) t -> stats
val policy_kind : ('k, 'v) t -> Policy.kind
val hits : ('k, 'v) t -> int
val misses : ('k, 'v) t -> int
val evictions : ('k, 'v) t -> int
