type member = {
  name : string;
  usage : unit -> int;
  shed : unit -> bool;
}

(* Concurrency: a budget may be shared by caches living on different
   domains (the sharded server's --cache-budget).  Accounting is a
   single atomic so charge/release from any domain conserve the total;
   the member list has its own mutex; and [shed_mutex] serialises
   rebalance so two overflowing domains don't both evict for the same
   bytes.  Shed paths call [release] (never [rebalance]), and [release]
   takes no lock, so re-entry from inside a shed cannot deadlock. *)
type t = {
  cap : int;
  used : int Atomic.t;
  mutable members : member list;
  members_mutex : Mutex.t;
  shed_mutex : Mutex.t;
}

let create ~bytes =
  if bytes <= 0 then invalid_arg "Budget.create: bytes <= 0";
  {
    cap = bytes;
    used = Atomic.make 0;
    members = [];
    members_mutex = Mutex.create ();
    shed_mutex = Mutex.create ();
  }

let capacity t = t.cap
let used t = Atomic.get t.used

let member_names t =
  Mutex.lock t.members_mutex;
  let names = List.rev_map (fun m -> m.name) t.members in
  Mutex.unlock t.members_mutex;
  names

let register t ~name ~usage ~shed =
  Mutex.lock t.members_mutex;
  t.members <- { name; usage; shed } :: t.members;
  Mutex.unlock t.members_mutex

(* Shed from the member holding the most bytes; each successful shed
   strictly shrinks [used] (the member's eviction path calls [release]),
   so the loop terminates.  When the fattest member refuses (e.g. down
   to a single pinned entry), fall through to the next.  Only one
   domain rebalances at a time; members are snapshotted outside their
   mutex so a shed callback may register or charge without deadlock. *)
let rebalance t =
  Mutex.lock t.shed_mutex;
  let continue = ref true in
  while Atomic.get t.used > t.cap && !continue do
    Mutex.lock t.members_mutex;
    let members = t.members in
    Mutex.unlock t.members_mutex;
    let by_usage =
      List.sort (fun a b -> compare (b.usage ()) (a.usage ())) members
    in
    continue := List.exists (fun m -> m.shed ()) by_usage
  done;
  Mutex.unlock t.shed_mutex

let charge t bytes =
  ignore (Atomic.fetch_and_add t.used bytes);
  rebalance t

(* Clamp at zero with a CAS loop rather than fetch_and_add: a release
   racing another release must never push the pool negative (that would
   let later charges over-fill), and must never subtract more than is
   actually there. *)
let release t bytes =
  let rec loop () =
    let cur = Atomic.get t.used in
    let next = max 0 (cur - bytes) in
    if not (Atomic.compare_and_set t.used cur next) then loop ()
  in
  if bytes > 0 then loop ()
