type member = {
  name : string;
  usage : unit -> int;
  shed : unit -> bool;
}

type t = {
  cap : int;
  mutable used : int;
  mutable members : member list;
}

let create ~bytes =
  if bytes <= 0 then invalid_arg "Budget.create: bytes <= 0";
  { cap = bytes; used = 0; members = [] }

let capacity t = t.cap
let used t = t.used
let member_names t = List.rev_map (fun m -> m.name) t.members

let register t ~name ~usage ~shed =
  t.members <- { name; usage; shed } :: t.members

(* Shed from the member holding the most bytes; each successful shed
   strictly shrinks [used] (the member's eviction path calls [release]),
   so the loop terminates.  When the fattest member refuses (e.g. down
   to a single pinned entry), fall through to the next. *)
let rebalance t =
  let continue = ref true in
  while t.used > t.cap && !continue do
    let by_usage =
      List.sort
        (fun a b -> compare (b.usage ()) (a.usage ()))
        t.members
    in
    continue := List.exists (fun m -> m.shed ()) by_usage
  done

let charge t bytes =
  t.used <- t.used + bytes;
  rebalance t

let release t bytes = t.used <- max 0 (t.used - bytes)
