(** Admission control and load shedding.

    The guard is the policy layer between accept/parse and the work a
    request costs.  It decides, before the server commits resources,
    whether a peer may open another connection, whether a request may
    run, whether a helper job may queue — and, under SLO pressure,
    which standing work to shed first.  It owns no sockets and no
    timers: the server supplies the mechanism (timer wheel, accept
    loop, helper pool) and asks the guard for verdicts, so the module
    is a pure, clock-injected state machine that unit-tests without a
    server.

    Shed order under pressure is strictly lowest-value first: idle
    keep-alive connections, then new-connection admission, then queued
    (never in-flight) helper work.  An in-flight request is never
    killed by the shedder; only the slow-client defenses (header
    deadline, minimum transfer rate) terminate a connection that is
    mid-request, because such a connection is itself the attack. *)

(** Why a connection, request or job was refused or reaped.  The
    constructor set is closed and each maps to a stable label used on
    [flash_guard_shed_total{reason="..."}]. *)
type reason =
  | Conn_limit  (** per-peer concurrent-connection cap *)
  | Rate_limit  (** per-peer request-rate cap *)
  | Slow_header  (** request header not completed within the deadline *)
  | Slow_client  (** transfer progressed below the minimum byte rate *)
  | Helper_queue  (** bounded helper queue full, or queue admission shed *)
  | Cgi_limit  (** concurrent CGI process cap *)
  | Admission  (** new-connection admission shed under SLO pressure *)
  | Idle_reap  (** idle keep-alive closed under SLO pressure *)

val reason_label : reason -> string
(** Stable snake_case label for metrics ("conn_limit", ...). *)

val all_reasons : reason list
(** Every reason, in label order — used to pre-register metric series
    so the families exist (at 0) before the first shed. *)

(** Escalation ladder driven by the SLO burn sensor.  Each level
    includes every action of the levels below it. *)
type level =
  | Normal  (** no pressure: only the hard limits apply *)
  | Shed_idle  (** reap idle keep-alive connections *)
  | Shed_new  (** also refuse new connections with 503 *)
  | Shed_queue  (** also refuse helper-queue admission with 503 *)

val level_code : level -> int
(** 0, 1, 2, 3 — the value of the [flash_guard_state] gauge. *)

type config = {
  max_conns_per_ip : int option;  (** concurrent connections per peer *)
  max_rps_per_ip : float option;  (** requests/second per peer *)
  rps_window : float;  (** sliding-window length, seconds *)
  header_deadline : float;  (** seconds to finish a request head; 0 = off *)
  min_byte_rate : float;  (** minimum transfer bytes/second; 0 = off *)
  transfer_interval : float;  (** how often transfer progress is checked *)
  max_helper_queue : int option;  (** queued (not in-flight) helper jobs *)
  max_cgi_inflight : int option;  (** concurrent CGI children *)
  slo_shed : bool;  (** enable the SLO-burn shedder (needs --latency-slo) *)
  shed_idle_after : float;  (** under shed: reap keep-alives idle this long *)
  retry_after : int;  (** seconds advertised in Retry-After on 429/503 *)
}

val default_config : config
(** Everything off: no limits, no deadlines, shedder disabled.  A guard
    built from this config is inert ({!enabled} = false). *)

val enabled : config -> bool
(** True iff any defense is configured — the server skips guard
    plumbing entirely otherwise. *)

type t

val create : ?clock:(unit -> float) -> config -> t
(** [clock] defaults to [Unix.gettimeofday]; tests inject a virtual
    one.  Thread-safe: all verdict and accounting calls take an
    internal lock (MT workers share one guard). *)

val config : t -> config

(** {1 Per-peer accounting}

    Peers are keyed by their address string (no port), so every
    connection from one host shares one ledger. *)

type verdict = Admit | Reject of reason

val on_connect : t -> peer:string -> verdict
(** Called at accept.  [Admit] registers the connection against the
    peer's ledger; the caller must pair it with {!on_disconnect}.
    Also enforces {!level} [Shed_new]: under admission shedding every
    new connection is [Reject Admission]. *)

val on_disconnect : t -> peer:string -> unit

val on_request : t -> peer:string -> verdict
(** Called once per parsed request head, before any work.  [Admit]
    charges the request to the peer's sliding rate window. *)

val tracked_peers : t -> int

val sweep : t -> unit
(** Drop ledgers with no live connections and a cold rate window.
    Call periodically (the server's guard tick). *)

(** {1 SLO-driven shedding} *)

val note_pressure : t -> state_code:int -> burn:float -> unit
(** Feed the SLO evaluator's verdict (0 healthy / 1 degraded /
    2 breached, plus the burn fraction).  Degraded maps to
    [Shed_idle]; breached to [Shed_new]; breached with burn beyond
    twice the breach threshold to [Shed_queue].  Only moves the level
    when [slo_shed] is set. *)

val level : t -> level

val queue_admission : t -> verdict
(** [Reject Helper_queue] when the shedder has reached [Shed_queue];
    the bounded-queue check itself lives with the queue. *)

(** {1 Shed bookkeeping} *)

val shed : t -> reason -> unit
(** Count one shed decision (the caller performed the action). *)

val shed_count : t -> reason -> int

val shed_total : t -> int

(** {1 Slow-client policy helpers}

    Pure verdicts over numbers the server measured; keeping the
    comparison here keeps the policy unit-testable. *)

val header_overdue : config -> started:float -> now:float -> bool
val transfer_stalled : config -> bytes_moved:int -> interval:float -> bool
