type reason =
  | Conn_limit
  | Rate_limit
  | Slow_header
  | Slow_client
  | Helper_queue
  | Cgi_limit
  | Admission
  | Idle_reap

let reason_label = function
  | Conn_limit -> "conn_limit"
  | Rate_limit -> "rate_limit"
  | Slow_header -> "slow_header"
  | Slow_client -> "slow_client"
  | Helper_queue -> "helper_queue"
  | Cgi_limit -> "cgi_limit"
  | Admission -> "admission"
  | Idle_reap -> "idle_reap"

let all_reasons =
  [
    Admission;
    Cgi_limit;
    Conn_limit;
    Helper_queue;
    Idle_reap;
    Rate_limit;
    Slow_client;
    Slow_header;
  ]

let reason_index = function
  | Admission -> 0
  | Cgi_limit -> 1
  | Conn_limit -> 2
  | Helper_queue -> 3
  | Idle_reap -> 4
  | Rate_limit -> 5
  | Slow_client -> 6
  | Slow_header -> 7

type level = Normal | Shed_idle | Shed_new | Shed_queue

let level_code = function
  | Normal -> 0
  | Shed_idle -> 1
  | Shed_new -> 2
  | Shed_queue -> 3

type config = {
  max_conns_per_ip : int option;
  max_rps_per_ip : float option;
  rps_window : float;
  header_deadline : float;
  min_byte_rate : float;
  transfer_interval : float;
  max_helper_queue : int option;
  max_cgi_inflight : int option;
  slo_shed : bool;
  shed_idle_after : float;
  retry_after : int;
}

let default_config =
  {
    max_conns_per_ip = None;
    max_rps_per_ip = None;
    rps_window = 1.0;
    header_deadline = 0.;
    min_byte_rate = 0.;
    transfer_interval = 2.0;
    max_helper_queue = None;
    max_cgi_inflight = None;
    slo_shed = false;
    shed_idle_after = 1.0;
    retry_after = 2;
  }

let enabled c =
  c.max_conns_per_ip <> None
  || c.max_rps_per_ip <> None
  || c.header_deadline > 0.
  || c.min_byte_rate > 0.
  || c.max_helper_queue <> None
  || c.max_cgi_inflight <> None
  || c.slo_shed

(* One ledger per peer address.  The request rate is a two-bucket
   sliding-window estimate: the previous window's count, weighted by
   how much of it still overlaps the sliding window ending now, plus
   the current bucket.  O(1) per request, no per-request timestamps. *)
type peer_entry = {
  mutable conns : int;
  mutable cur_start : float;  (* start of the current bucket *)
  mutable cur : int;  (* requests in the current bucket *)
  mutable prev : int;  (* requests in the bucket before it *)
}

type t = {
  cfg : config;
  clock : unit -> float;
  lock : Mutex.t;
  peers : (string, peer_entry) Hashtbl.t;
  sheds : int array;  (* indexed by reason_index *)
  mutable lvl : level;
}

let create ?(clock = Unix.gettimeofday) cfg =
  {
    cfg;
    clock;
    lock = Mutex.create ();
    peers = Hashtbl.create 64;
    sheds = Array.make (List.length all_reasons) 0;
    lvl = Normal;
  }

let config t = t.cfg

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

type verdict = Admit | Reject of reason

let entry t peer now =
  match Hashtbl.find_opt t.peers peer with
  | Some e -> e
  | None ->
      let e = { conns = 0; cur_start = now; cur = 0; prev = 0 } in
      Hashtbl.replace t.peers peer e;
      e

(* Roll the two buckets forward so [e.cur_start] covers [now]. *)
let roll t e now =
  let w = t.cfg.rps_window in
  let elapsed = now -. e.cur_start in
  if elapsed >= 2. *. w then (
    e.prev <- 0;
    e.cur <- 0;
    e.cur_start <- now)
  else if elapsed >= w then (
    e.prev <- e.cur;
    e.cur <- 0;
    e.cur_start <- e.cur_start +. w)

let rate t e now =
  roll t e now;
  let w = t.cfg.rps_window in
  let into = (now -. e.cur_start) /. w in
  let overlap = 1. -. into in
  ((float_of_int e.prev *. overlap) +. float_of_int e.cur) /. w

let shed_locked t r = t.sheds.(reason_index r) <- t.sheds.(reason_index r) + 1

let on_connect t ~peer =
  with_lock t (fun () ->
      if t.lvl = Shed_new || t.lvl = Shed_queue then (
        shed_locked t Admission;
        Reject Admission)
      else
        let now = t.clock () in
        let e = entry t peer now in
        match t.cfg.max_conns_per_ip with
        | Some cap when e.conns >= cap ->
            shed_locked t Conn_limit;
            Reject Conn_limit
        | _ ->
            e.conns <- e.conns + 1;
            Admit)

let on_disconnect t ~peer =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.peers peer with
      | Some e -> if e.conns > 0 then e.conns <- e.conns - 1
      | None -> ())

let on_request t ~peer =
  with_lock t (fun () ->
      let now = t.clock () in
      let e = entry t peer now in
      match t.cfg.max_rps_per_ip with
      | Some cap when rate t e now >= cap ->
          shed_locked t Rate_limit;
          Reject Rate_limit
      | _ ->
          roll t e now;
          e.cur <- e.cur + 1;
          Admit)

let tracked_peers t = with_lock t (fun () -> Hashtbl.length t.peers)

let sweep t =
  with_lock t (fun () ->
      let now = t.clock () in
      let cold = 2. *. t.cfg.rps_window in
      let dead =
        Hashtbl.fold
          (fun peer e acc ->
            if e.conns = 0 && now -. e.cur_start >= cold then peer :: acc
            else acc)
          t.peers []
      in
      List.iter (Hashtbl.remove t.peers) dead)

let note_pressure t ~state_code ~burn =
  with_lock t (fun () ->
      if t.cfg.slo_shed then
        t.lvl <-
          (match state_code with
          | 0 -> Normal
          | 1 -> Shed_idle
          | _ ->
              (* The SLO evaluator breaches at burn >= 3x budget; twice
                 past that again, stop even queueing helper work. *)
              if burn >= 0.5 then Shed_queue else Shed_new))

let level t = with_lock t (fun () -> t.lvl)

let queue_admission t =
  with_lock t (fun () ->
      if t.lvl = Shed_queue then (
        shed_locked t Helper_queue;
        Reject Helper_queue)
      else Admit)

let shed t r = with_lock t (fun () -> shed_locked t r)
let shed_count t r = with_lock t (fun () -> t.sheds.(reason_index r))

let shed_total t =
  with_lock t (fun () -> Array.fold_left ( + ) 0 t.sheds)

let header_overdue c ~started ~now =
  c.header_deadline > 0. && now -. started >= c.header_deadline

let transfer_stalled c ~bytes_moved ~interval =
  c.min_byte_rate > 0. && interval > 0.
  && float_of_int bytes_moved < c.min_byte_rate *. interval
