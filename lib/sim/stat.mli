(** Lightweight measurement helpers used by experiment drivers. *)

(** Log-bucketed quantile estimator ({!Obs.Histogram} re-exported):
    p50/p90/p99/max with relative error bounded by the log base.  The
    live server, [flash-bench] and the simulator all use this one type,
    so simulated and measured latency figures share a code path. *)
module Quantile : module type of Obs.Histogram

module Counter : sig
  type t

  val create : unit -> t
  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
  val reset : t -> unit
end

(** Streaming tally of float observations. *)
module Tally : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val min : t -> float
  val max : t -> float
  val total : t -> float
  val reset : t -> unit
end

(** Fixed-bucket histogram over [\[lo, hi)]. *)
module Histogram : sig
  type t

  val create : lo:float -> hi:float -> buckets:int -> t
  val add : t -> float -> unit
  val count : t -> int

  (** [percentile t p] for [p] in [\[0, 100\]]; bucket midpoint
      approximation.  Returns [nan] when empty. *)
  val percentile : t -> float -> float

  val reset : t -> unit
end
