(* Log-bucketed quantile sketch — the same structure the live server,
   flash-bench and /server-status use, so simulated and measured
   percentiles come from one code path. *)
module Quantile = Obs.Histogram

module Counter = struct
  type t = { mutable v : int }

  let create () = { v = 0 }
  let incr t = t.v <- t.v + 1
  let add t n = t.v <- t.v + n
  let value t = t.v
  let reset t = t.v <- 0
end

module Tally = struct
  type t = {
    mutable count : int;
    mutable total : float;
    mutable min : float;
    mutable max : float;
  }

  let create () = { count = 0; total = 0.; min = infinity; max = neg_infinity }

  let add t x =
    t.count <- t.count + 1;
    t.total <- t.total +. x;
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let count t = t.count
  let total t = t.total
  let mean t = if t.count = 0 then 0. else t.total /. float_of_int t.count
  let min t = t.min
  let max t = t.max

  let reset t =
    t.count <- 0;
    t.total <- 0.;
    t.min <- infinity;
    t.max <- neg_infinity
end

module Histogram = struct
  type t = {
    lo : float;
    hi : float;
    counts : int array;
    mutable total : int;
  }

  let create ~lo ~hi ~buckets =
    if hi <= lo then invalid_arg "Stat.Histogram.create: hi <= lo";
    if buckets <= 0 then invalid_arg "Stat.Histogram.create: buckets <= 0";
    { lo; hi; counts = Array.make buckets 0; total = 0 }

  let add t x =
    let buckets = Array.length t.counts in
    let idx =
      let raw =
        int_of_float (float_of_int buckets *. (x -. t.lo) /. (t.hi -. t.lo))
      in
      if raw < 0 then 0 else if raw >= buckets then buckets - 1 else raw
    in
    t.counts.(idx) <- t.counts.(idx) + 1;
    t.total <- t.total + 1

  let count t = t.total

  let reset t =
    Array.fill t.counts 0 (Array.length t.counts) 0;
    t.total <- 0

  let percentile t p =
    if t.total = 0 then nan
    else begin
      let target = p /. 100. *. float_of_int t.total in
      let buckets = Array.length t.counts in
      let width = (t.hi -. t.lo) /. float_of_int buckets in
      let rec loop i seen =
        if i >= buckets then t.hi
        else begin
          let seen = seen + t.counts.(i) in
          if float_of_int seen >= target then
            t.lo +. (width *. (float_of_int i +. 0.5))
          else loop (i + 1) seen
        end
      in
      loop 0 0
    end
end
