(** Accept-Encoding negotiation (RFC 9110 §12.5.3) for a server whose
    only alternative content coding is gzip. *)

type choice = Gzip | Identity

(** [(coding lowercased, qvalue)] pairs in field order; malformed
    q-values read as 0. *)
val parse : string -> (string * float) list

(** [choose ~gzip_available header] — the coding to serve given the
    request's Accept-Encoding field ([None] = absent → identity).
    Gzip wins when available, acceptable (q > 0 directly or via "*"),
    and not outranked by an explicit identity preference.  A request
    forbidding every coding ("identity;q=0" with nothing else) still
    receives identity, documented in the README protocol matrix. *)
val choose : gzip_available:bool -> string option -> choice
