(* Accept-Encoding content negotiation (RFC 9110 §12.5.3), for a server
   whose only alternative coding is gzip.  Each list member is a coding
   (or "*") with an optional q-value; unlisted codings fall back to "*",
   and identity is additionally acceptable by default when neither it
   nor "*" is mentioned. *)

type choice = Gzip | Identity

let qvalue_of params =
  (* params: substrings after the first ';', e.g. ["q=0.5"]. *)
  let rec scan = function
    | [] -> 1.0
    | p :: rest -> (
        let p = String.trim p in
        let is_q =
          String.length p >= 2
          && (p.[0] = 'q' || p.[0] = 'Q')
          && p.[1] = '='
        in
        if not is_q then scan rest
        else
          match float_of_string_opt (String.sub p 2 (String.length p - 2)) with
          | Some q when q >= 0. && q <= 1. -> q
          | _ -> 0.)
  in
  scan params

let parse value =
  (* [(coding lowercased, q)] in field order. *)
  String.split_on_char ',' value
  |> List.filter_map (fun member ->
         match String.split_on_char ';' (String.trim member) with
         | [] -> None
         | coding :: params ->
             let coding = String.lowercase_ascii (String.trim coding) in
             if coding = "" then None else Some (coding, qvalue_of params))

let q_for codings coding ~default =
  match List.assoc_opt coding codings with
  | Some q -> q
  | None -> (
      match List.assoc_opt "*" codings with Some q -> q | None -> default)

(* [choose ~gzip_available header] picks the coding to serve.  Gzip is
   served when the client made it acceptable (directly or via "*") and
   did not express a strictly higher preference for identity; listing
   gzip without mentioning identity counts as asking for gzip.  A client
   that forbids identity ("identity;q=0") while accepting gzip gets
   gzip; one that forbids everything still gets identity — RFC 9110
   permits responding with an unlisted coding rather than 406, and a
   406 for a static file helps nobody. *)
let choose ~gzip_available header =
  match header with
  | None -> Identity
  | Some value ->
      let codings = parse value in
      let q_gzip = q_for codings "gzip" ~default:0. in
      let q_identity = q_for codings "identity" ~default:0. in
      if gzip_available && q_gzip > 0. && q_gzip >= q_identity then Gzip
      else Identity
