(** Conditional-request evaluation in RFC 9110 §13.2.2 precedence
    order: If-Match → If-Unmodified-Since → If-None-Match →
    If-Modified-Since.  If-Range is evaluated separately by
    {!if_range_permits} because it gates the Range field rather than
    the whole request. *)

type decision = Proceed | Not_modified | Precondition_failed

(** [evaluate ~meth ~header ~etag ~mtime] — decide the request against
    the selected representation's validators.  [header] looks up a
    (lowercased) request-header name.  Unparseable dates make their
    condition vacuous; [Not_modified] is only produced for GET/HEAD
    (other methods fail matched If-None-Match with 412, per the RFC). *)
val evaluate :
  meth:Request.meth ->
  header:(string -> string option) ->
  etag:Etag.t ->
  mtime:float ->
  decision

(** May the Range field be applied?  True with no If-Range; with one,
    only when its validator (entity-tag under strong comparison, date
    under exact match) still names the selected representation. *)
val if_range_permits :
  header:(string -> string option) -> etag:Etag.t -> mtime:float -> bool
