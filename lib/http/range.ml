(* Byte-range requests (RFC 9110 §14).  Parsing is strict: a Range
   field that is syntactically invalid (wrong unit, junk digits,
   last < first) must be ignored entirely — the response is the full
   200 — while a well-formed set whose every member misses the
   representation is 416. *)

type spec =
  | From of int  (* "500-" *)
  | Slice of int * int  (* "500-999", inclusive, first <= last *)
  | Suffix of int  (* "-500": final N bytes *)

type parsed = Invalid | Specs of spec list

type plan =
  | Whole
  | Single of { off : int; len : int }
  | Unsatisfiable

let is_digit = function '0' .. '9' -> true | _ -> false

let int_of_digits s =
  (* int_of_string accepts signs, underscores and hex — none of which
     are valid in a range spec. *)
  if s = "" || not (String.for_all is_digit s) then None
  else int_of_string_opt s

let parse_spec s =
  let s = String.trim s in
  match String.index_opt s '-' with
  | None -> None
  | Some dash -> (
      let first = String.trim (String.sub s 0 dash) in
      let last =
        String.trim (String.sub s (dash + 1) (String.length s - dash - 1))
      in
      match (first, last) with
      | "", "" -> None
      | "", _ -> Option.map (fun k -> Suffix k) (int_of_digits last)
      | _, "" -> Option.map (fun f -> From f) (int_of_digits first)
      | _, _ -> (
          match (int_of_digits first, int_of_digits last) with
          | Some f, Some l when f <= l -> Some (Slice (f, l))
          | _ -> None))

let parse value =
  let value = String.trim value in
  let eq_prefix = String.length value >= 6 && String.sub value 0 6 = "bytes=" in
  if not eq_prefix then Invalid
  else begin
    let rest = String.sub value 6 (String.length value - 6) in
    let parts = String.split_on_char ',' rest in
    let specs = List.map parse_spec parts in
    if List.exists Option.is_none specs || specs = [] then Invalid
    else Specs (List.filter_map Fun.id specs)
  end

(* Resolve one spec against the representation length; [None] means
   this spec does not overlap the representation. *)
let resolve spec ~size =
  match spec with
  | From f -> if f < size then Some (f, size - f) else None
  | Slice (f, l) ->
      if f >= size then None
      else
        let l = min l (size - 1) in
        Some (f, l - f + 1)
  | Suffix k ->
      if k <= 0 || size <= 0 then None
      else
        let len = min k size in
        Some (size - len, len)

(* The server's range policy: one satisfiable range is served as a 206
   body slice; a multi-range set degrades to the full body (multipart
   responses are deliberately unimplemented — see the README protocol
   matrix) unless every member is unsatisfiable, which is a 416. *)
let plan value ~size =
  match parse value with
  | Invalid -> Whole
  | Specs [ spec ] -> (
      match resolve spec ~size with
      | Some (off, len) -> Single { off; len }
      | None -> Unsatisfiable)
  | Specs specs ->
      if List.exists (fun s -> resolve s ~size <> None) specs then Whole
      else Unsatisfiable

(* "bytes first-last/complete" for the 206's Content-Range field and
   "bytes */complete" for the 416's. *)
let content_range ~off ~len ~size =
  Printf.sprintf "bytes %d-%d/%d" off (off + len - 1) size

let content_range_unsatisfied ~size = Printf.sprintf "bytes */%d" size
