(** HTTP response header construction.

    [header] renders the status line and headers through the terminating
    blank line.  With [~align] (Flash's §5.5 optimization), the [Server]
    header is padded so the total header length is a multiple of the
    alignment — keeping the file data that follows it in a [writev]
    cache-line aligned inside the kernel copy. *)

val default_server : string

val header :
  ?version:string ->
  ?server:string ->
  ?content_type:string ->
  ?content_length:int ->
  ?keep_alive:bool ->
  ?date:float ->
  ?last_modified:float ->
  ?extra:(string * string) list ->
  ?align:int ->
  status:Status.t ->
  unit ->
  string

(** Both connection variants of the same header — [(keep_alive,
    close)] — for caches that pre-render a response header per file and
    must serve either kind of client from the one entry. *)
val header_pair :
  ?version:string ->
  ?server:string ->
  ?content_type:string ->
  ?content_length:int ->
  ?date:float ->
  ?last_modified:float ->
  ?extra:(string * string) list ->
  ?align:int ->
  status:Status.t ->
  unit ->
  string * string

(** The [Retry-After] header pair for 429/503 overload responses, as
    a delay in whole seconds — ready for [header]'s [~extra] list.
    @raise Invalid_argument on a negative delay. *)
val retry_after : int -> string * string

(** A minimal HTML error body matching the status. *)
val error_body : Status.t -> string
