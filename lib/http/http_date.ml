(* Howard Hinnant's civil-from-days algorithm. *)
let civil_of_days z =
  let z = z + 719468 in
  let era = (if z >= 0 then z else z - 146096) / 146097 in
  let doe = z - (era * 146097) in
  let yoe = (doe - (doe / 1460) + (doe / 36524) - (doe / 146096)) / 365 in
  let y = yoe + (era * 400) in
  let doy = doe - ((365 * yoe) + (yoe / 4) - (yoe / 100)) in
  let mp = ((5 * doy) + 2) / 153 in
  let d = doy - (((153 * mp) + 2) / 5) + 1 in
  let m = if mp < 10 then mp + 3 else mp - 9 in
  let y = if m <= 2 then y + 1 else y in
  (y, m, d)

let weekday_of_days days = (((days mod 7) + 7) mod 7 + 4) mod 7

let weekday_names = [| "Sun"; "Mon"; "Tue"; "Wed"; "Thu"; "Fri"; "Sat" |]

let weekday_long_names =
  [| "Sunday"; "Monday"; "Tuesday"; "Wednesday";
     "Thursday"; "Friday"; "Saturday" |]

let month_names =
  [| "Jan"; "Feb"; "Mar"; "Apr"; "May"; "Jun";
     "Jul"; "Aug"; "Sep"; "Oct"; "Nov"; "Dec" |]

(* Days from civil date (inverse of civil_of_days; same source). *)
let days_of_civil y m d =
  let y = if m <= 2 then y - 1 else y in
  let era = (if y >= 0 then y else y - 399) / 400 in
  let yoe = y - (era * 400) in
  let mp = if m > 2 then m - 3 else m + 9 in
  let doy = (((153 * mp) + 2) / 5) + d - 1 in
  let doe = (yoe * 365) + (yoe / 4) - (yoe / 100) + doy in
  (era * 146097) + doe - 719468

let month_of_name name =
  let rec scan i =
    if i >= 12 then None
    else if month_names.(i) = name then Some (i + 1)
    else scan (i + 1)
  in
  scan 0

let mem_array a x = Array.exists (String.equal x) a

exception Bad

(* All three RFC 9110 §5.6.7 formats, parsed with a strict cursor so
   trailing garbage is rejected:
     IMF-fixdate  "Sun, 06 Nov 1994 08:49:37 GMT"
     RFC 850      "Sunday, 06-Nov-94 08:49:37 GMT"
     asctime      "Sun Nov  6 08:49:37 1994"
   The grammar is discriminated by the first token: a short weekday
   followed by "," is IMF-fixdate, a long weekday is RFC 850, a short
   weekday followed by a space is asctime.  The weekday itself is
   accepted but otherwise ignored, as the RFC instructs. *)
let parse s =
  let s = String.trim s in
  let n = String.length s in
  let pos = ref 0 in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos else raise Bad
  in
  let expect_str str = String.iter expect str in
  let digit () =
    if !pos < n then
      match s.[!pos] with
      | '0' .. '9' as c ->
          incr pos;
          Char.code c - Char.code '0'
      | _ -> raise Bad
    else raise Bad
  in
  let fixed_int k =
    let rec go acc i = if i = 0 then acc else go ((acc * 10) + digit ()) (i - 1) in
    go 0 k
  in
  let is_alpha = function 'a' .. 'z' | 'A' .. 'Z' -> true | _ -> false in
  let token () =
    let start = !pos in
    while !pos < n && is_alpha s.[!pos] do
      incr pos
    done;
    String.sub s start (!pos - start)
  in
  let month () =
    match month_of_name (token ()) with Some m -> m | None -> raise Bad
  in
  let time () =
    let hh = fixed_int 2 in
    expect ':';
    let mm = fixed_int 2 in
    expect ':';
    let ss = fixed_int 2 in
    (* Leap seconds appear in real Last-Modified values; accept 60. *)
    if hh > 23 || mm > 59 || ss > 60 then raise Bad;
    (hh, mm, ss)
  in
  let finish y m d (hh, mm, ss) =
    if d < 1 || d > 31 then raise Bad;
    if !pos <> n then raise Bad;
    Some
      (float_of_int
         ((days_of_civil y m d * 86400) + (hh * 3600) + (mm * 60) + ss))
  in
  try
    let wd = token () in
    if mem_array weekday_names wd && !pos < n && s.[!pos] = ',' then begin
      (* IMF-fixdate: "Sun, 06 Nov 1994 08:49:37 GMT" *)
      expect ',';
      expect ' ';
      let d = fixed_int 2 in
      expect ' ';
      let m = month () in
      expect ' ';
      let y = fixed_int 4 in
      expect ' ';
      let tm = time () in
      expect_str " GMT";
      finish y m d tm
    end
    else if mem_array weekday_long_names wd then begin
      (* RFC 850: "Sunday, 06-Nov-94 08:49:37 GMT".  Two-digit years
         are pivoted at 70: 70-99 are 19xx, 00-69 are 20xx. *)
      expect ',';
      expect ' ';
      let d = fixed_int 2 in
      expect '-';
      let m = month () in
      expect '-';
      let y2 = fixed_int 2 in
      let y = if y2 >= 70 then 1900 + y2 else 2000 + y2 in
      expect ' ';
      let tm = time () in
      expect_str " GMT";
      finish y m d tm
    end
    else if mem_array weekday_names wd then begin
      (* asctime: "Sun Nov  6 08:49:37 1994" — day is space-padded. *)
      expect ' ';
      let m = month () in
      expect ' ';
      let d =
        if !pos < n && s.[!pos] = ' ' then begin
          incr pos;
          digit ()
        end
        else fixed_int 2
      in
      expect ' ';
      let tm = time () in
      expect ' ';
      let y = fixed_int 4 in
      finish y m d tm
    end
    else None
  with Bad -> None

let split_timestamp ts =
  let total = int_of_float (floor ts) in
  let days = if total >= 0 then total / 86400 else (total - 86399) / 86400 in
  let secs = total - (days * 86400) in
  let year, month, day = civil_of_days days in
  let hh = secs / 3600 in
  let mm = secs mod 3600 / 60 in
  let ss = secs mod 60 in
  (days, year, month, day, hh, mm, ss)

let format ts =
  let days, year, month, day, hh, mm, ss = split_timestamp ts in
  Printf.sprintf "%s, %02d %s %04d %02d:%02d:%02d GMT"
    weekday_names.(weekday_of_days days)
    day
    month_names.(month - 1)
    year hh mm ss

let format_rfc850 ts =
  let days, year, month, day, hh, mm, ss = split_timestamp ts in
  Printf.sprintf "%s, %02d-%s-%02d %02d:%02d:%02d GMT"
    weekday_long_names.(weekday_of_days days)
    day
    month_names.(month - 1)
    (year mod 100) hh mm ss

let format_asctime ts =
  let days, year, month, day, hh, mm, ss = split_timestamp ts in
  Printf.sprintf "%s %s %2d %02d:%02d:%02d %04d"
    weekday_names.(weekday_of_days days)
    month_names.(month - 1)
    day hh mm ss year
