let default_server = "Flash/1.0 (OCaml)"

let render ~version ~server ~content_type ~content_length ~keep_alive ~date
    ~last_modified ~extra ~status =
  let buf = Buffer.create 256 in
  Buffer.add_string buf version;
  Buffer.add_char buf ' ';
  Buffer.add_string buf (Status.line_fragment status);
  Buffer.add_string buf "\r\n";
  Buffer.add_string buf "Server: ";
  Buffer.add_string buf server;
  Buffer.add_string buf "\r\n";
  (match date with
  | Some d ->
      Buffer.add_string buf "Date: ";
      Buffer.add_string buf (Http_date.format d);
      Buffer.add_string buf "\r\n"
  | None -> ());
  (match last_modified with
  | Some d ->
      Buffer.add_string buf "Last-Modified: ";
      Buffer.add_string buf (Http_date.format d);
      Buffer.add_string buf "\r\n"
  | None -> ());
  (match content_type with
  | Some ct ->
      Buffer.add_string buf "Content-Type: ";
      Buffer.add_string buf ct;
      Buffer.add_string buf "\r\n"
  | None -> ());
  (match content_length with
  | Some len ->
      Buffer.add_string buf "Content-Length: ";
      Buffer.add_string buf (string_of_int len);
      Buffer.add_string buf "\r\n"
  | None -> ());
  (match keep_alive with
  | Some true -> Buffer.add_string buf "Connection: keep-alive\r\n"
  | Some false -> Buffer.add_string buf "Connection: close\r\n"
  | None -> ());
  List.iter
    (fun (name, value) ->
      Buffer.add_string buf name;
      Buffer.add_string buf ": ";
      Buffer.add_string buf value;
      Buffer.add_string buf "\r\n")
    extra;
  Buffer.add_string buf "\r\n";
  Buffer.contents buf

let header ?(version = "HTTP/1.0") ?(server = default_server) ?content_type
    ?content_length ?keep_alive ?date ?last_modified ?(extra = []) ?align
    ~status () =
  let base =
    render ~version ~server ~content_type ~content_length ~keep_alive ~date
      ~last_modified ~extra ~status
  in
  match align with
  | None -> base
  | Some a ->
      if a <= 0 then invalid_arg "Response.header: align <= 0";
      let remainder = String.length base mod a in
      if remainder = 0 then base
      else begin
        (* Pad the variable-length Server field (§5.5): the header grows
           by the same number of bytes the field does. *)
        let padding = String.make (a - remainder) ' ' in
        render ~version ~server:(server ^ padding) ~content_type
          ~content_length ~keep_alive ~date ~last_modified ~extra ~status
      end

let header_pair ?version ?server ?content_type ?content_length ?date
    ?last_modified ?extra ?align ~status () =
  let render keep_alive =
    header ?version ?server ?content_type ?content_length ~keep_alive ?date
      ?last_modified ?extra ?align ~status ()
  in
  (render true, render false)

let retry_after seconds =
  if seconds < 0 then invalid_arg "Response.retry_after: negative delay";
  ("Retry-After", string_of_int seconds)

let error_body status =
  Printf.sprintf
    "<html><head><title>%s</title></head><body><h1>%s</h1></body></html>\n"
    (Status.line_fragment status)
    (Status.line_fragment status)
