(** Entity tags (RFC 9110 §8.8.3): rendering, parsing, and the strong
    and weak comparison functions used by the conditional-request
    machinery. *)

type t = { weak : bool; opaque : string  (** without the quotes *) }

(** [make ~mtime ~size ()] renders the server's strong ETag for a
    representation validated by [(mtime, size)] — the file cache's own
    validation key, so tag and cache entry can never disagree.
    [suffix] distinguishes encoded variants (e.g. ["-gz"]). *)
val make : ?suffix:string -> mtime:float -> size:int -> unit -> string

(** Parse a single entity-tag (["\"abc\""] or [W/"abc"]). *)
val parse : string -> t option

val render : t -> string

(** Strong comparison: equal opaque tags, neither weak. *)
val strong_eq : t -> t -> bool

(** Weak comparison: equal opaque tags, weakness ignored. *)
val weak_eq : t -> t -> bool

(** [list_matches ~strong field ~current] — does an If-Match /
    If-None-Match field value (["*"] or an entity-tag list, scanned
    quote-aware since commas may appear inside tags) match the current
    validator under the selected comparison? *)
val list_matches : strong:bool -> string -> current:t -> bool
