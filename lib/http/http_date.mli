(** RFC 1123 date formatting ("Sun, 06 Nov 1994 08:49:37 GMT") from a
    POSIX timestamp, implemented without [Unix] so the library stays
    pure (and usable inside the simulator). *)

val format : float -> string

(** Parse any of the three RFC 9110 §5.6.7 date formats back to a POSIX
    timestamp: IMF-fixdate ("Sun, 06 Nov 1994 08:49:37 GMT"), the
    obsolete RFC 850 form ("Sunday, 06-Nov-94 08:49:37 GMT" — two-digit
    years pivot at 70), and C's asctime ("Sun Nov  6 08:49:37 1994").
    Returns [None] on anything malformed, including trailing garbage
    after an otherwise valid date — conditional requests with
    unparseable dates are simply not conditional. *)
val parse : string -> float option

(** The obsolete formats, rendered for conformance tests (servers must
    parse them; ours only ever emits IMF-fixdate).  [format_rfc850]
    writes a two-digit year, so it only round-trips for 1970-2069. *)
val format_rfc850 : float -> string

val format_asctime : float -> string

(** Calendar conversion exposed for tests: days since 1970-01-01 to
    (year, month 1-12, day 1-31). *)
val civil_of_days : int -> int * int * int

(** Day of week for days since epoch; 0 = Sunday. *)
val weekday_of_days : int -> int
