(** Byte-range requests (RFC 9110 §14).

    A syntactically invalid Range field is ignored (full 200 body); a
    well-formed single range is served as an offset/length slice (206);
    a multi-range set degrades to the full body — multipart/byteranges
    is deliberately unimplemented — unless every member is
    unsatisfiable, which yields 416. *)

type spec =
  | From of int  (** ["500-"] *)
  | Slice of int * int  (** ["500-999"], inclusive, first <= last *)
  | Suffix of int  (** ["-500"]: final N bytes *)

type parsed = Invalid | Specs of spec list

type plan =
  | Whole  (** serve the full representation (no/ignored/multi range) *)
  | Single of { off : int; len : int }  (** 206 body window *)
  | Unsatisfiable  (** 416 *)

val parse : string -> parsed

(** Resolve one spec against the representation length; [None] when the
    spec does not overlap it. *)
val resolve : spec -> size:int -> (int * int) option

(** [plan value ~size]: the server's whole range policy in one step. *)
val plan : string -> size:int -> plan

(** ["bytes first-last/complete"] for a 206's Content-Range. *)
val content_range : off:int -> len:int -> size:int -> string

(** ["bytes */complete"] for a 416's Content-Range. *)
val content_range_unsatisfied : size:int -> string
