(* Conditional-request evaluation, RFC 9110 §13.2.2: the precedence
   order is If-Match, then If-Unmodified-Since (only when If-Match is
   absent), then If-None-Match, then If-Modified-Since (only when
   If-None-Match is absent and the method is GET/HEAD).  If-Range is
   separate — it gates the Range field, evaluated by the caller after
   this returns [Proceed].

   All comparisons run against the selected representation's validators:
   a strong ETag derived from (mtime, size) and the whole-second
   Last-Modified.  Dates that fail to parse make their condition
   vacuous, per the RFC. *)

type decision = Proceed | Not_modified | Precondition_failed

(* HTTP dates have whole-second granularity; file mtimes may not. *)
let unmodified_since ~mtime since = floor mtime <= since
let modified_since ~mtime since = floor mtime > since

let evaluate ~(meth : Request.meth) ~(header : string -> string option)
    ~(etag : Etag.t) ~mtime =
  let get_head = match meth with Request.Get | Request.Head -> true | _ -> false in
  (* Step 1: If-Match (strong comparison). *)
  let step1 =
    match header "if-match" with
    | Some v ->
        if Etag.list_matches ~strong:true v ~current:etag then None
        else Some Precondition_failed
    | None -> (
        (* Step 2: If-Unmodified-Since, only without If-Match. *)
        match header "if-unmodified-since" with
        | Some v -> (
            match Http_date.parse v with
            | Some since when not (unmodified_since ~mtime since) ->
                Some Precondition_failed
            | Some _ | None -> None)
        | None -> None)
  in
  match step1 with
  | Some d -> d
  | None -> (
      (* Step 3: If-None-Match (weak comparison).  When present it
         consumes If-Modified-Since entirely — a non-matching
         If-None-Match proceeds even if the date alone would 304. *)
      match header "if-none-match" with
      | Some v ->
          if Etag.list_matches ~strong:false v ~current:etag then
            if get_head then Not_modified else Precondition_failed
          else Proceed
      | None -> (
          (* Step 4: If-Modified-Since, GET/HEAD only. *)
          if not get_head then Proceed
          else
            match header "if-modified-since" with
            | Some v -> (
                match Http_date.parse v with
                | Some since when not (modified_since ~mtime since) ->
                    Not_modified
                | Some _ | None -> Proceed)
            | None -> Proceed))

(* If-Range (§13.1.5): apply the Range field only when the validator
   still matches the selected representation — an entity-tag under the
   strong comparison, or a date under exact match.  A missing If-Range
   always permits; an unparseable one never does. *)
let if_range_permits ~(header : string -> string option) ~(etag : Etag.t)
    ~mtime =
  match header "if-range" with
  | None -> true
  | Some v -> (
      let v = String.trim v in
      if String.length v > 0 && (v.[0] = '"' || (String.length v >= 2 && v.[0] = 'W' && v.[1] = '/'))
      then
        match Etag.parse v with
        | Some tag -> Etag.strong_eq tag etag
        | None -> false
      else
        match Http_date.parse v with
        | Some date -> floor mtime = date
        | None -> false)
