type t =
  | Ok
  | Partial_content
  | Moved_permanently
  | Not_modified
  | Bad_request
  | Forbidden
  | Not_found
  | Precondition_failed
  | Range_not_satisfiable
  | Request_timeout
  | Too_many_requests
  | Internal_server_error
  | Not_implemented
  | Service_unavailable

let code = function
  | Ok -> 200
  | Partial_content -> 206
  | Moved_permanently -> 301
  | Not_modified -> 304
  | Bad_request -> 400
  | Forbidden -> 403
  | Not_found -> 404
  | Precondition_failed -> 412
  | Range_not_satisfiable -> 416
  | Request_timeout -> 408
  | Too_many_requests -> 429
  | Internal_server_error -> 500
  | Not_implemented -> 501
  | Service_unavailable -> 503

let reason = function
  | Ok -> "OK"
  | Partial_content -> "Partial Content"
  | Moved_permanently -> "Moved Permanently"
  | Not_modified -> "Not Modified"
  | Bad_request -> "Bad Request"
  | Forbidden -> "Forbidden"
  | Not_found -> "Not Found"
  | Precondition_failed -> "Precondition Failed"
  | Range_not_satisfiable -> "Range Not Satisfiable"
  | Request_timeout -> "Request Timeout"
  | Too_many_requests -> "Too Many Requests"
  | Internal_server_error -> "Internal Server Error"
  | Not_implemented -> "Not Implemented"
  | Service_unavailable -> "Service Unavailable"

let line_fragment t = Printf.sprintf "%d %s" (code t) (reason t)
