(** HTTP status codes used by the server. *)

type t =
  | Ok
  | Partial_content
  | Moved_permanently
  | Not_modified
  | Bad_request
  | Forbidden
  | Not_found
  | Precondition_failed
  | Range_not_satisfiable
  | Request_timeout
  | Too_many_requests
  | Internal_server_error
  | Not_implemented
  | Service_unavailable

val code : t -> int
val reason : t -> string

(** ["200 OK"] etc. *)
val line_fragment : t -> string
