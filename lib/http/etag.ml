type t = { weak : bool; opaque : string }

(* The file cache validates entries by (mtime, size); the ETag is that
   validation key rendered as a strong validator, so a cache hit, its
   Last-Modified, and its ETag can never disagree.  Whole seconds only —
   HTTP dates have one-second granularity and the ETag must not be
   stronger than the validator backing it.  Variant representations
   (gzip) append a suffix so each representation has its own tag, as
   RFC 9110 §8.8.3 requires. *)
let make ?(suffix = "") ~mtime ~size () =
  Printf.sprintf "\"%x-%x%s\"" (int_of_float (floor mtime)) size suffix

let render t = if t.weak then "W/\"" ^ t.opaque ^ "\"" else "\"" ^ t.opaque ^ "\""

let parse s =
  let s = String.trim s in
  let weak = String.length s >= 2 && s.[0] = 'W' && s.[1] = '/' in
  let body = if weak then String.sub s 2 (String.length s - 2) else s in
  let n = String.length body in
  if n >= 2 && body.[0] = '"' && body.[n - 1] = '"' then
    let opaque = String.sub body 1 (n - 2) in
    if String.contains opaque '"' then None else Some { weak; opaque }
  else None

let strong_eq a b = (not a.weak) && (not b.weak) && String.equal a.opaque b.opaque
let weak_eq a b = String.equal a.opaque b.opaque

(* Match a current validator against an If-Match / If-None-Match field
   value: "*", or a comma-separated entity-tag list.  Commas are legal
   inside an opaque-tag, so members are scanned quote-aware rather than
   split.  Malformed members end the scan (matches found so far still
   count); [strong] selects the strong comparison (If-Match) over the
   weak one (If-None-Match, If-Range uses [strong_eq] directly). *)
let list_matches ~strong value ~current =
  let n = String.length value in
  let rec skip_ws i =
    if i < n && (value.[i] = ' ' || value.[i] = '\t') then skip_ws (i + 1)
    else i
  in
  let rec member i matched =
    let i = skip_ws i in
    if i >= n then matched
    else if value.[i] = '*' then true
    else begin
      let weak = i + 1 < n && value.[i] = 'W' && value.[i + 1] = '/' in
      let i = if weak then i + 2 else i in
      if i < n && value.[i] = '"' then begin
        match String.index_from_opt value (i + 1) '"' with
        | None -> matched
        | Some close ->
            let tag = { weak; opaque = String.sub value (i + 1) (close - i - 1) } in
            let m =
              if strong then strong_eq tag current else weak_eq tag current
            in
            let j = skip_ws (close + 1) in
            if j < n && value.[j] = ',' then member (j + 1) (matched || m)
            else matched || m
      end
      else matched
    end
  in
  member 0 false
