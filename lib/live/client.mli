(** A small blocking HTTP/1.x client for tests, examples and the load
    generator.  Supports one-shot requests and persistent sessions. *)

type response = {
  status : int;
  headers : (string * string) list;  (** names lowercased *)
  body : string;
}

(** One-shot: connect, request, read the full response, close.
    @raise Failure on malformed responses or connection errors. *)
val get :
  ?meth:string -> ?headers:(string * string) list -> ?src:string ->
  host:string -> port:int -> string -> response

(** Persistent connection for keep-alive interactions. *)
module Session : sig
  type t

  (** [src], when given, binds the connection's source to that local
      address (any [127/8] address works on loopback) — lets tests and
      benchmarks present distinct peer identities to the server's
      per-IP accounting. *)
  val connect : ?src:string -> host:string -> port:int -> unit -> t

  (** Issue a request on the session (HTTP/1.1, keep-alive); [headers]
      are appended after Host and Connection. *)
  val request :
    ?meth:string -> ?headers:(string * string) list -> t -> string -> response

  val close : t -> unit
end
