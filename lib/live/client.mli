(** A small blocking HTTP/1.x client for tests, examples and the load
    generator.  Supports one-shot requests and persistent sessions. *)

type response = {
  status : int;
  headers : (string * string) list;  (** names lowercased *)
  body : string;
}

(** One-shot: connect, request, read the full response, close.
    @raise Failure on malformed responses or connection errors. *)
val get :
  ?meth:string -> ?headers:(string * string) list -> host:string -> port:int ->
  string -> response

(** Persistent connection for keep-alive interactions. *)
module Session : sig
  type t

  val connect : host:string -> port:int -> t

  (** Issue a request on the session (HTTP/1.1, keep-alive); [headers]
      are appended after Host and Connection. *)
  val request :
    ?meth:string -> ?headers:(string * string) list -> t -> string -> response

  val close : t -> unit
end
