(** Disk helpers for the live AMPED server.

    Helpers execute the potentially blocking disk work — [stat] plus
    reading the file (which also warms the OS page cache) — so the main
    select loop never blocks on disk.  Following §3.4, helpers here are
    kernel threads inside the server process: OCaml's threads release
    the runtime lock during blocking syscalls, giving exactly the
    asymmetric structure the paper describes, without the fork/threads
    interaction hazards of child processes.  Completion notifications
    are written to a pipe so the main loop picks them up in [select] —
    like any other IO event.

    The pool is instrumented: a queue-depth gauge (queued plus
    in-flight jobs) and a log-bucketed histogram of dispatch-to-
    completion job latency, both measured with an injectable clock.

    Besides the client queue there is a {e low-priority lane} for
    predictive prefetch ({!dispatch_low}): its jobs run only when no
    client job is waiting, and at most [helpers - 1] workers may be on
    prefetch work at once, so one worker is always free for the next
    client-triggered read.  Low jobs are excluded from the depth gauge
    and latency histogram — those measure the client path the guard
    bounds and the bench asserts on — and are accounted by their own
    counters instead. *)

type result = Found of { size : int; mtime : float } | Missing

(** One finished job, with its span boundaries on the helper's clock:
    [enqueued, started] is queue wait, [started, finished] the blocking
    disk work.  The main loop stitches these into the waiting request's
    trace as helper-attributed spans. *)
type completion = {
  key : int;
  result : result;
  enqueued : float;
  started : float;
  finished : float;
}

type t

(** [create ?clock ?slow_read ?max_queued ~helpers ()] starts the
    pool.  [clock] (default [Unix.gettimeofday]) timestamps jobs for
    the latency histogram.  [slow_read], when given, is invoked in
    helper context with the path before each cold file read — a
    fault-injection seam that simulates slow media (tests use it to
    prove the event loop keeps running while helpers block).
    [max_queued] bounds the number of *queued* (not yet started) jobs;
    a dispatch past the bound is refused so the caller can answer an
    early 503 instead of letting the backlog grow without limit.
    [max_low_queued] (default 64) is the same bound for the
    low-priority prefetch lane. *)
val create :
  ?clock:(unit -> float) ->
  ?slow_read:(string -> unit) ->
  ?max_queued:int ->
  ?max_low_queued:int ->
  helpers:int ->
  unit ->
  t

(** File descriptor the main loop should select for readability. *)
val notify_fd : t -> Unix.file_descr

(** [dispatch t ~key ~path] queues the job; a completion tagged [key]
    will appear on the notify pipe.  Returns [false] — and enqueues
    nothing — when the queued backlog is at [max_queued]. *)
val dispatch : t -> key:int -> path:string -> bool

(** [dispatch_low t ~key ~path] queues a prefetch job on the
    low-priority lane.  It will only be picked up when the client queue
    is drained and a worker can be spared; its completion arrives over
    the same notify pipe (callers use negative keys to tell prefetches
    from client jobs).  Returns [false] when [max_low_queued] jobs are
    already waiting. *)
val dispatch_low : t -> key:int -> path:string -> bool

(** Drain all completions currently readable (non-blocking). *)
val drain : t -> completion list

val dispatched : t -> int

(** Jobs currently queued or running. *)
val queue_depth : t -> int

(** Deepest the queue has ever been. *)
val queue_depth_hwm : t -> int

(** Jobs waiting in the queue, excluding any a worker has started. *)
val queued : t -> int

(** Jobs a worker has popped but not yet completed. *)
val in_flight : t -> int

(** Dispatches refused by the [max_queued] bound. *)
val rejected : t -> int

(** Low-priority jobs accepted by {!dispatch_low}. *)
val low_dispatched : t -> int

(** Low-priority dispatches refused by the [max_low_queued] bound. *)
val low_rejected : t -> int

(** Low-priority jobs whose disk work has finished. *)
val low_completed : t -> int

(** Low-priority jobs queued or running. *)
val low_queued : t -> int

(** Snapshot of the dispatch-to-completion latency histogram
    (seconds). *)
val job_latency : t -> Obs.Histogram.t

val shutdown : t -> unit
