(** Per-connection send queue of iovec slices.

    A response is queued as slices (pre-rendered header, mmap-backed
    body) plus, for files too large to cache, a descriptor streamed in
    chunks.  Partial writes are survived by advancing slice offsets in
    place — bytes already accepted by the kernel are never re-submitted
    and strings are never re-sliced.  The queue is transport-agnostic:
    {!gather} exposes the leading slices for a [writev] (or the copying
    fallback) and {!advance} consumes whatever the write accepted, so
    the same logic is testable without sockets. *)

type item =
  | Slice of Iovec.slice
  | File of { src : Unix.file_descr; mutable remaining : int }
      (** streamed large file: read a chunk, write it, repeat *)

type t

val create : unit -> t
val is_empty : t -> bool

(** Head of the queue, if any (not removed). *)
val head : t -> item option

(** Queue a slice; zero-length slices are dropped. *)
val push_slice : t -> Iovec.slice -> unit

(** Copy a heap string into a fresh off-heap buffer and queue it.
    Returns the number of bytes copied (0 for [""]) so callers can
    charge their copy counters. *)
val push_string : t -> string -> int

val push_file : t -> Unix.file_descr -> len:int -> unit

(** Leading [Slice] items (up to [Iovec.max_iovecs]), stopping at the
    first [File].  The array aliases the queued slices: advancing them
    advances the queue's view. *)
val gather : t -> Iovec.slice array

(** Consume [n] bytes from the leading slices, popping the ones fully
    sent.  [n] must not exceed the gathered length. *)
val advance : t -> int -> unit

(** Remove the head item (used when a [File] finishes). *)
val pop : t -> unit

(** Close any queued file descriptors (connection teardown). *)
val close_files : t -> unit

val clear : t -> unit
