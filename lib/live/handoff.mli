(** Bounded lock-free hand-off ring for accepted connections.

    The sharded server's fallback accept path where [SO_REUSEPORT] is
    unavailable: a single acceptor domain pushes accepted fds and the
    shard domains pop them.  The implementation is Vyukov's bounded
    array queue (full MPMC, used here as SPMC) — no locks, bounded
    occupancy, each element delivered exactly once.

    A full ring rejects the push rather than blocking: the acceptor
    sheds the connection, exactly like the EMFILE path. *)

type 'a t

val create : capacity:int -> 'a t
(** Capacity is rounded up to a power of two, with a minimum of two —
    the slot-sequence scheme cannot distinguish "full" from "pushable"
    with a single slot.
    @raise Invalid_argument if [capacity <= 0]. *)

val capacity : 'a t -> int

val push : 'a t -> 'a -> bool
(** [false] when the ring is full (element not enqueued). *)

val pop : 'a t -> 'a option
(** [None] when the ring is empty. *)

val length : 'a t -> int
(** Approximate occupancy (racy under concurrency, but always within
    [0..capacity]). *)
