type item =
  | Slice of Iovec.slice
  | File of { src : Unix.file_descr; mutable remaining : int }

type t = { q : item Queue.t }

let create () = { q = Queue.create () }
let is_empty t = Queue.is_empty t.q
let head t = Queue.peek_opt t.q

let push_slice t (s : Iovec.slice) =
  if s.Iovec.len > 0 then Queue.push (Slice s) t.q

let push_string t s =
  let n = String.length s in
  if n > 0 then push_slice t (Iovec.slice (Iovec.of_string s));
  n

let push_file t src ~len =
  if len > 0 then Queue.push (File { src; remaining = len }) t.q
  else try Unix.close src with Unix.Unix_error _ -> ()

let gather t =
  let acc = ref [] in
  let count = ref 0 in
  (try
     Queue.iter
       (fun item ->
         match item with
         | Slice s when !count < Iovec.max_iovecs ->
             acc := s :: !acc;
             incr count
         | Slice _ | File _ -> raise Exit)
       t.q
   with Exit -> ());
  Array.of_list (List.rev !acc)

let advance t n =
  let left = ref n in
  while !left > 0 do
    match Queue.peek_opt t.q with
    | Some (Slice s) ->
        let take = min s.Iovec.len !left in
        s.Iovec.off <- s.Iovec.off + take;
        s.Iovec.len <- s.Iovec.len - take;
        left := !left - take;
        if s.Iovec.len = 0 then ignore (Queue.pop t.q)
    | Some (File _) | None ->
        invalid_arg "Sendq.advance: count exceeds gathered slices"
  done;
  (* Drop any slices emptied exactly at the boundary. *)
  let rec trim () =
    match Queue.peek_opt t.q with
    | Some (Slice s) when s.Iovec.len = 0 ->
        ignore (Queue.pop t.q);
        trim ()
    | _ -> ()
  in
  trim ()

let pop t = ignore (Queue.pop t.q)

let close_files t =
  Queue.iter
    (function
      | File { src; _ } -> ( try Unix.close src with Unix.Unix_error _ -> ())
      | Slice _ -> ())
    t.q

let clear t = Queue.clear t.q
