type response = {
  status : int;
  headers : (string * string) list;
  body : string;
}

let read_some fd =
  let buf = Bytes.create 16384 in
  match Unix.read fd buf 0 16384 with
  | 0 -> None
  | n -> Some (Bytes.sub_string buf 0 n)

(* Read one response from [fd], starting from the leftover bytes in
   [buf]; returns the response and the remaining unconsumed bytes (which
   belong to the next pipelined response). *)
let read_response ?(head_request = false) fd buf =
  let rec head_loop () =
    match Http.Response_parser.parse_head !buf with
    | Http.Response_parser.Head (head, consumed) ->
        buf := String.sub !buf consumed (String.length !buf - consumed);
        head
    | Http.Response_parser.Incomplete -> (
        match read_some fd with
        | Some data ->
            buf := !buf ^ data;
            head_loop ()
        | None -> failwith "connection closed before response head")
    | Http.Response_parser.Bad msg -> failwith ("bad response: " ^ msg)
  in
  let head = head_loop () in
  let body =
    match Http.Response_parser.body_framing head ~head_request with
    | Http.Response_parser.No_body -> ""
    | Http.Response_parser.Fixed len ->
        while String.length !buf < len do
          match read_some fd with
          | Some data -> buf := !buf ^ data
          | None -> failwith "connection closed mid-body"
        done;
        let body = String.sub !buf 0 len in
        buf := String.sub !buf len (String.length !buf - len);
        body
    | Http.Response_parser.Until_close ->
        let rec drain () =
          match read_some fd with
          | Some data ->
              buf := !buf ^ data;
              drain ()
          | None -> ()
        in
        drain ();
        let body = !buf in
        buf := "";
        body
  in
  {
    status = head.Http.Response_parser.status;
    headers = head.Http.Response_parser.headers;
    body;
  }

let send_request fd ~meth ~version ~extra_headers path =
  let lines =
    Printf.sprintf "%s %s %s\r\n" meth path version
    :: List.map (fun (k, v) -> Printf.sprintf "%s: %s\r\n" k v) extra_headers
    @ [ "\r\n" ]
  in
  let payload = String.concat "" lines in
  ignore (Unix.write_substring fd payload 0 (String.length payload))

let connect_fd ?src ~host ~port () =
  let addr =
    try Unix.inet_addr_of_string host
    with Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } -> failwith ("no address for " ^ host)
      | { Unix.h_addr_list; _ } -> h_addr_list.(0))
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     (match src with
     | Some s ->
         Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string s, 0))
     | None -> ());
     Unix.connect fd (Unix.ADDR_INET (addr, port))
   with e ->
     Unix.close fd;
     raise e);
  fd

let get ?(meth = "GET") ?(headers = []) ?src ~host ~port path =
  let fd = connect_fd ?src ~host ~port () in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      send_request fd ~meth ~version:"HTTP/1.0"
        ~extra_headers:(("Host", host) :: headers)
        path;
      read_response ~head_request:(meth = "HEAD") fd (ref ""))

module Session = struct
  type t = {
    fd : Unix.file_descr;
    host : string;
    leftover : string ref;  (** bytes of the next response already read *)
    mutable closed : bool;
  }

  let connect ?src ~host ~port () =
    {
      fd = connect_fd ?src ~host ~port ();
      host;
      leftover = ref "";
      closed = false;
    }

  let request ?(meth = "GET") ?(headers = []) t path =
    if t.closed then failwith "Client.Session: closed";
    send_request t.fd ~meth ~version:"HTTP/1.1"
      ~extra_headers:
        ([ ("Host", t.host); ("Connection", "keep-alive") ] @ headers)
      path;
    read_response ~head_request:(meth = "HEAD") t.fd t.leftover

  let close t =
    if not t.closed then begin
      t.closed <- true;
      try Unix.close t.fd with Unix.Unix_error _ -> ()
    end
end
