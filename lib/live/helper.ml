type result = Found of { size : int; mtime : float } | Missing

(* Span boundaries for the job, carried back over the completion
   channel so the main loop can stitch helper-attributed spans into the
   request's trace: queue wait is [enqueued, started], the blocking
   disk work [started, finished]. *)
type completion = {
  key : int;
  result : result;
  enqueued : float;
  started : float;
  finished : float;
}

type job = { key : int; path : string; enqueued : float; low : bool }

type t = {
  queue : job Queue.t;
  lowq : job Queue.t;  (* prefetch lane: served only when [queue] is empty *)
  mutex : Mutex.t;
  cond : Condition.t;
  notify_read : Unix.file_descr;
  notify_write : Unix.file_descr;
  results : (int, completion) Hashtbl.t;  (* guarded by mutex *)
  clock : unit -> float;
  slow_read : (string -> unit) option;
  depth : Obs.Gauge.t;  (* queued + in-flight CLIENT jobs; guarded by mutex *)
  job_latency : Obs.Histogram.t;  (* client dispatch-to-completion; mutex *)
  max_queued : int option;  (* bound on *queued* jobs; in-flight don't count *)
  max_low_queued : int;  (* bound on queued low-priority jobs *)
  low_cap : int;  (* workers allowed on low jobs at once: one stays free *)
  mutable in_flight : int;  (* client jobs popped but not yet completed *)
  mutable low_in_flight : int;
  mutable rejected : int;  (* dispatches refused because the queue was full *)
  mutable stop : bool;
  mutable dispatched : int;
  mutable low_dispatched : int;
  mutable low_rejected : int;
  mutable low_completed : int;
  mutable threads : Thread.t list;
}

(* Touch every page of the file: after this, the main process's own
   mmap+writev will not major-fault.  A fixed 64 KB stride per read
   call; [buf] is the calling worker's reusable scratch, so a stream of
   jobs costs no per-job allocation. *)
let touch_file ?slow_read ~buf path =
  match Unix.stat path with
  | exception Unix.Unix_error _ -> Missing
  | st when st.Unix.st_kind <> Unix.S_REG -> Missing
  | st -> (
      (* The injected media delay models the cold-disk read itself, so it
         runs here — in helper context — never in the caller's. *)
      (match slow_read with Some f -> f path | None -> ());
      match Unix.openfile path [ Unix.O_RDONLY ] 0 with
      | exception Unix.Unix_error _ -> Missing
      | fd ->
          let rec loop () =
            match Unix.read fd buf 0 65536 with
            | 0 -> ()
            | _ -> loop ()
            | exception Unix.Unix_error _ -> ()
          in
          loop ();
          Unix.close fd;
          Found { size = st.Unix.st_size; mtime = st.Unix.st_mtime })

let worker t () =
  let buf = Bytes.create 65536 in
  (* A low job is runnable only when no client job waits and fewer than
     [low_cap] workers are already on prefetch work — so at least one
     worker is always free for the next client-triggered read. *)
  let low_runnable () =
    Queue.is_empty t.queue
    && (not (Queue.is_empty t.lowq))
    && t.low_in_flight < t.low_cap
  in
  let rec loop () =
    Mutex.lock t.mutex;
    while Queue.is_empty t.queue && (not (low_runnable ())) && not t.stop do
      Condition.wait t.cond t.mutex
    done;
    if t.stop then Mutex.unlock t.mutex
    else begin
      let job =
        if not (Queue.is_empty t.queue) then Queue.pop t.queue
        else Queue.pop t.lowq
      in
      if job.low then t.low_in_flight <- t.low_in_flight + 1
      else t.in_flight <- t.in_flight + 1;
      Mutex.unlock t.mutex;
      let started = t.clock () in
      let result = touch_file ?slow_read:t.slow_read ~buf job.path in
      let finished = t.clock () in
      Mutex.lock t.mutex;
      Hashtbl.replace t.results job.key
        { key = job.key; result; enqueued = job.enqueued; started; finished };
      if job.low then begin
        t.low_in_flight <- t.low_in_flight - 1;
        t.low_completed <- t.low_completed + 1;
        (* A low slot just freed up; another worker may be parked. *)
        Condition.signal t.cond
      end
      else begin
        Obs.Histogram.record t.job_latency (finished -. job.enqueued);
        Obs.Gauge.decr t.depth;
        t.in_flight <- t.in_flight - 1
      end;
      Mutex.unlock t.mutex;
      (* Wake the select loop; one byte per completion. *)
      (try ignore (Unix.write t.notify_write (Bytes.of_string "x") 0 1)
       with Unix.Unix_error _ -> ());
      loop ()
    end
  in
  loop ()

let create ?(clock = Unix.gettimeofday) ?slow_read ?max_queued
    ?(max_low_queued = 64) ~helpers () =
  if helpers <= 0 then invalid_arg "Helper.create: helpers <= 0";
  (match max_queued with
  | Some n when n < 0 -> invalid_arg "Helper.create: max_queued < 0"
  | _ -> ());
  if max_low_queued < 0 then invalid_arg "Helper.create: max_low_queued < 0";
  let notify_read, notify_write = Unix.pipe () in
  Unix.set_nonblock notify_read;
  let t =
    {
      queue = Queue.create ();
      lowq = Queue.create ();
      mutex = Mutex.create ();
      cond = Condition.create ();
      notify_read;
      notify_write;
      results = Hashtbl.create 64;
      clock;
      slow_read;
      depth = Obs.Gauge.create ();
      job_latency = Obs.Histogram.create ();
      max_queued;
      max_low_queued;
      low_cap = max 1 (helpers - 1);
      in_flight = 0;
      low_in_flight = 0;
      rejected = 0;
      stop = false;
      dispatched = 0;
      low_dispatched = 0;
      low_rejected = 0;
      low_completed = 0;
      threads = [];
    }
  in
  t.threads <- List.init helpers (fun _ -> Thread.create (worker t) ());
  t

let notify_fd t = t.notify_read

let dispatch t ~key ~path =
  Mutex.lock t.mutex;
  let admitted =
    match t.max_queued with
    | Some cap when Queue.length t.queue >= cap ->
        t.rejected <- t.rejected + 1;
        false
    | _ ->
        Queue.push { key; path; enqueued = t.clock (); low = false } t.queue;
        t.dispatched <- t.dispatched + 1;
        Obs.Gauge.incr t.depth;
        Condition.signal t.cond;
        true
  in
  Mutex.unlock t.mutex;
  admitted

let dispatch_low t ~key ~path =
  Mutex.lock t.mutex;
  let admitted =
    if Queue.length t.lowq >= t.max_low_queued then begin
      t.low_rejected <- t.low_rejected + 1;
      false
    end
    else begin
      Queue.push { key; path; enqueued = t.clock (); low = true } t.lowq;
      t.low_dispatched <- t.low_dispatched + 1;
      Condition.signal t.cond;
      true
    end
  in
  Mutex.unlock t.mutex;
  admitted

let drain t =
  (* Clear wake-up bytes. *)
  let buf = Bytes.create 256 in
  let rec clear () =
    match Unix.read t.notify_read buf 0 256 with
    | n when n > 0 -> clear ()
    | _ -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error _ -> ()
  in
  clear ();
  Mutex.lock t.mutex;
  let out = Hashtbl.fold (fun _key c acc -> c :: acc) t.results [] in
  Hashtbl.reset t.results;
  Mutex.unlock t.mutex;
  out

let dispatched t = t.dispatched

let queue_depth t =
  Mutex.lock t.mutex;
  let d = Obs.Gauge.value t.depth in
  Mutex.unlock t.mutex;
  d

let queue_depth_hwm t =
  Mutex.lock t.mutex;
  let d = Obs.Gauge.high_watermark t.depth in
  Mutex.unlock t.mutex;
  d

let queued t =
  Mutex.lock t.mutex;
  let n = Queue.length t.queue in
  Mutex.unlock t.mutex;
  n

let in_flight t =
  Mutex.lock t.mutex;
  let n = t.in_flight in
  Mutex.unlock t.mutex;
  n

let rejected t =
  Mutex.lock t.mutex;
  let n = t.rejected in
  Mutex.unlock t.mutex;
  n

let low_dispatched t =
  Mutex.lock t.mutex;
  let n = t.low_dispatched in
  Mutex.unlock t.mutex;
  n

let low_rejected t =
  Mutex.lock t.mutex;
  let n = t.low_rejected in
  Mutex.unlock t.mutex;
  n

let low_completed t =
  Mutex.lock t.mutex;
  let n = t.low_completed in
  Mutex.unlock t.mutex;
  n

let low_queued t =
  Mutex.lock t.mutex;
  let n = Queue.length t.lowq + t.low_in_flight in
  Mutex.unlock t.mutex;
  n

let job_latency t =
  Mutex.lock t.mutex;
  let h = Obs.Histogram.copy t.job_latency in
  Mutex.unlock t.mutex;
  h

let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex;
  List.iter Thread.join t.threads;
  (try Unix.close t.notify_read with Unix.Unix_error _ -> ());
  try Unix.close t.notify_write with Unix.Unix_error _ -> ()
