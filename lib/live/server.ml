module Guard = Flash_guard.Guard

type mode = Amped | Sped | Mp of int | Mt of int | Sharded of int

type config = {
  docroot : string;
  port : int;
  mode : mode;
  helpers : int;
  file_cache_bytes : int;
  max_cached_file : int;
  enable_cgi : bool;
  align_headers : bool;
  server_name : string;
  idle_timeout : float;
  access_log : string option;  (* Common Log Format file *)
  access_log_timing : bool;  (* append service time (µs) after CLF fields *)
  status_path : string option;  (* built-in status endpoint; None disables *)
  stall_threshold : float;  (* loop iterations longer than this are stalls *)
  clock : unit -> float;  (* injectable for tests *)
  slow_read : (string -> unit) option;  (* cold-media fault injection *)
  trace : bool;  (* record request-lifecycle spans *)
  trace_capacity : int;  (* completed-trace ring size *)
  trace_path : string option;  (* Chrome trace-event endpoint; None disables *)
  slow_request_ms : float option;  (* log traces slower than this *)
  slow_request_log : string option;  (* slow-request log file; None = stderr *)
  use_writev : bool;  (* gather writes via the C stub vs copying fallback *)
  cache_policy : Flash_cache.Policy.kind;  (* file-cache replacement *)
  cache_admission : Flash_cache.Policy.admission;  (* file-cache admission *)
  cache_budget_bytes : int option;
      (* shared byte budget overlaying the file cache's own capacity *)
  event_backend : Evio.kind;  (* readiness mechanism for every loop *)
  gzip_precompressed : bool;  (* serve fresh [.gz] siblings to gzip clients *)
  gzip_lazy : bool;
      (* build stored-block gzip variants inline on demand and cache
         them beside their origin under the same budget *)
  cgi_timeout : float;  (* kill CGI children streaming longer than this *)
  accept_fault : (unit -> bool) option;
      (* test seam: returning true makes the next accept behave as if
         it failed with EMFILE *)
  metrics_path : string option;  (* Prometheus exposition endpoint *)
  latency_slo : (float * float) option;
      (* (quantile, target ms): evaluate an error-budget burn over the
         flight recorder's windows *)
  recorder_capacity : int;  (* flight-recorder ring size, rollups *)
  recorder_interval : float;  (* rollup window length, seconds *)
  force_handoff : bool;
      (* Sharded: skip the SO_REUSEPORT probe and use the acceptor
         domain + hand-off ring, so tests and benches exercise the
         fallback on platforms that would never take it. *)
  guard : Guard.config;
      (* admission control and load shedding; Guard.default_config is
         fully inert and skips all guard plumbing *)
  access_log_paths : bool;
      (* append the resolved filesystem path after the CLF status/bytes
         fields, making the log machine-minable (pcache's %>s %O %f) *)
  warm : bool;  (* predictive cache warming; false skips all plumbing *)
  warm_interval : float;  (* seconds between mining cycles *)
  warm_budget : float;  (* pinned hot tier <= this fraction of the cache *)
  warm_top_k : int;  (* candidates considered per cycle *)
  warm_log : string option;
      (* access log mined once at startup, so a restarted server warms
         from the previous run's traffic before the first request *)
}

let default_config ~docroot =
  {
    docroot;
    port = 0;
    mode = Amped;
    helpers = 4;
    file_cache_bytes = 32 * 1024 * 1024;
    max_cached_file = 4 * 1024 * 1024;
    enable_cgi = true;
    align_headers = true;
    server_name = Http.Response.default_server;
    idle_timeout = 30.;
    access_log = None;
    access_log_timing = false;
    status_path = Some "/server-status";
    stall_threshold = 0.05;
    clock = Unix.gettimeofday;
    slow_read = None;
    trace = true;
    trace_capacity = 256;
    trace_path = Some "/server-trace";
    slow_request_ms = None;
    slow_request_log = None;
    use_writev = Iovec.have_writev;
    cache_policy = Flash_cache.Policy.Lru;
    cache_admission = Flash_cache.Policy.Admit_always;
    cache_budget_bytes = None;
    (* select is the paper-faithful default; poll/epoll are opt-in
       (or via "auto"). *)
    event_backend = Evio.Select;
    gzip_precompressed = true;
    gzip_lazy = false;
    cgi_timeout = 300.;
    accept_fault = None;
    metrics_path = Some "/metrics";
    latency_slo = None;
    recorder_capacity = 120;
    recorder_interval = 1.0;
    force_handoff = false;
    guard = Guard.default_config;
    access_log_paths = false;
    warm = false;
    warm_interval = 5.;
    warm_budget = 0.25;
    warm_top_k = 64;
    warm_log = None;
  }

type stats = {
  requests : int;
  connections : int;
  errors : int;
  cache_hits : int;
  cache_misses : int;
  helper_jobs : int;
  cache_evictions : int;
  helper_queue_depth : int;
  active_connections : int;
  loop_stalls : int;
  loop_max_stall : float;
  writev_calls : int;
  write_calls : int;
  bytes_copied : int;
  mapped_bytes : int;
  event_backend : string;
  loop_wakeups : int;
  timer_fires : int;
  accept_emfile : int;
}

type conn_state =
  | Reading
  | Waiting_helper of Http.Request.t * string  (* request, full path *)
  | Streaming_cgi of Unix.file_descr * int  (* pipe fd, child pid *)

type conn = {
  fd : Unix.file_descr;
  key : int;
  peer : string;  (* peer address (no port): the guard's ledger key *)
  mutable inbuf : string;
  readbuf : Bytes.t;  (* per-connection scratch, reused across reads *)
  outq : Sendq.t;
  mutable state : conn_state;
  mutable close_after_flush : bool;
  mutable last_active : float;
  mutable req_start : float;  (* parse-complete time of the request in flight *)
  mutable alive : bool;
  accepted_at : float;
  mutable reqs_served : int;  (* finished traces on this connection *)
  (* Readiness interest last pushed to the evio backend (event-loop
     modes); [sync_conn] diffs against these so unchanged fds cost
     nothing. *)
  mutable want_read : bool;
  mutable want_write : bool;
  mutable registered : bool;
  mutable cgi_fd_registered : Unix.file_descr option;
  (* Timer-wheel entries owned by this connection. *)
  mutable idle_timer : timer_ev Evio.Timer_wheel.timer option;
  mutable cgi_timer : timer_ev Evio.Timer_wheel.timer option;
  (* Guard state: the header deadline runs from the first byte of a
     request head to parse completion (the idle timer resets on every
     byte, which is exactly what a slowloris exploits; this one does
     not).  The transfer check compares [sent_bytes] against the mark
     it left last time it fired. *)
  mutable hdr_timer : timer_ev Evio.Timer_wheel.timer option;
  mutable xfer_timer : timer_ev Evio.Timer_wheel.timer option;
  mutable sent_bytes : int;  (* response bytes the kernel accepted *)
  mutable recv_bytes : int;  (* request bytes read off the socket *)
  mutable xfer_mark : int;  (* sent+recv at the last transfer check *)
  (* Tracing state for the request in flight (all None with --no-trace). *)
  mutable trace : Obs.Trace.trace option;
  mutable parse_span : Obs.Trace.span option;
  mutable work_span : Obs.Trace.span option;  (* inline disk read / CGI *)
  mutable write_span : Obs.Trace.span option;
}

(* What the loop's timer wheel fires. *)
and timer_ev =
  | T_idle of conn  (* keep-alive idle-timeout check *)
  | T_cgi of conn  (* CGI wall-clock deadline *)
  | T_resume_accept  (* re-arm the listen fd after EMFILE backoff *)
  | T_rollup  (* close the flight recorder's current window *)
  | T_hdr of conn  (* guard: per-request header deadline *)
  | T_xfer of conn  (* guard: minimum-transfer-rate check *)
  | T_guard_tick  (* guard: SLO shedder + peer-ledger sweep *)
  | T_warm  (* warming: mine, re-pin the hot tier, issue prefetches *)

(* Who a ready file descriptor belongs to. *)
type fd_owner =
  | O_listen
  | O_wake
  | O_helper
  | O_client of conn
  | O_cgi of conn

(* Sharded mode: who this instance is within the shard set.  A shard
   is a full AMPED server (own evio backend, timer wheel, cache,
   helper pool, registry) running its loop on its own domain; the
   coordinator owns the lifecycle and — on platforms without
   SO_REUSEPORT — the single listening socket, handing accepted fds to
   shards over the ring. *)
type role =
  | Standalone
  | Shard_member of { id : int; ring : Unix.file_descr Handoff.t option }
  | Shard_coordinator of { ring : Unix.file_descr Handoff.t option }

(* Predictive-warming state.  [None] unless [config.warm] and the
   instance has a helper pool (AMPED, or a shard member) — the prefetch
   side rides the helpers' low-priority lane, so modes without helpers
   have nothing to warm with.  Touched only from the owning event loop
   (the T_warm handler and completion drain), except the counters,
   which the registry reads. *)
type warm_state = {
  w_miner : Flash_warm.Miner.t;
  w_absorber : Flash_warm.Warm.absorber;
  w_conf : Flash_warm.Warm.config;
  w_pin_budget : int;  (* pinned-tier byte bound (warm_budget * capacity) *)
  mutable w_next_key : int;  (* prefetch job keys: negative, decrementing *)
  w_prefetching : (int, string) Hashtbl.t;  (* in-flight key -> path *)
  (* Paths a prefetch inserted, so later demand hits can be attributed
     to warming.  Bounded: forgetting only loses attribution. *)
  w_warmed : (string, unit) Hashtbl.t;
  w_cycles : Obs.Counter.t;
  w_ranked : Obs.Counter.t;
  w_issued : Obs.Counter.t;
  w_completed : Obs.Counter.t;
  w_failed : Obs.Counter.t;
  w_hits_after : Obs.Counter.t;
}

let warmed_limit = 4096

type t = {
  config : config;
  listen_fd : Unix.file_descr;
  bound_port : int;
  cache : File_cache.t;
  helper : Helper.t option;
  wake_read : Unix.file_descr;
  wake_write : Unix.file_descr;
  (* Event-readiness state for the owning loop (SPED/AMPED main loop;
     the MP parent reuses [evio] for its stats pipe; MP children and MT
     workers build their own backend instances instead — an epoll fd
     must not be shared across forked interest mutators). *)
  evio : Evio.Backend.t;
  wheel : timer_ev Evio.Timer_wheel.t;
  fd_owners : (Unix.file_descr, fd_owner) Hashtbl.t;
  loopstat : Obs.Loopstat.t;
  accept_emfile : Obs.Counter.t;  (* accepts shed on EMFILE/ENFILE *)
  mutable accept_paused : bool;  (* listen interest parked by backoff *)
  mutable accept_backoff : float;  (* current backoff delay, seconds *)
  conns : (int, conn) Hashtbl.t;
  by_helper_key : (int, conn) Hashtbl.t;
  mutable next_key : int;
  mutable stopped : bool;
  mutable loop_thread : Thread.t option;
  mutable children : int list;  (* MP child pids *)
  mutable n_requests : int;
  mutable n_connections : int;
  mutable n_errors : int;
  log_channel : out_channel option;
  (* MP mode: forked children hold copy-on-write stats, so per-request
     events are consolidated in the parent over a pipe (the paper's §4.2
     "information gathering" cost of the MP architecture).  Each event is
     a fixed 9-byte record: a tag byte plus the latency as IEEE-754
     bits. *)
  stats_pipe_read : Unix.file_descr option;
  stats_pipe_write : Unix.file_descr option;
  stats_acc : Buffer.t;  (* partial pipe records between reads *)
  (* Serialises pipe reads + [stats_acc]: the parent loop and [stats]
     callers both drain, and a 9-byte record must not split between
     them. *)
  stats_mutex : Mutex.t;
  (* MT mode: threads share the cache; systhreads interleave at
     allocation points, so cache access is serialized. *)
  cache_mutex : Mutex.t;
  (* Guards the observability state (latency histogram, gauges) where
     several threads record: MT workers, helper completions vs stats
     readers. *)
  obs_mutex : Mutex.t;
  latency : Obs.Histogram.t;  (* per-request latency, seconds *)
  watchdog : Obs.Watchdog.t;  (* event-loop iteration stalls *)
  active : Obs.Gauge.t;  (* currently open connections *)
  (* Request-lifecycle tracing (None with --no-trace): guarded by
     [obs_mutex] wherever several threads can touch it (MT workers, MP
     parent consolidation vs endpoint renders). *)
  tracer : Obs.Trace.t option;
  slow_channel : out_channel option;  (* slow-request log sink *)
  started_at : float;
  mutable worker_threads : Thread.t list;
  (* Send-path accounting (guarded by [obs_mutex] where several threads
     record): gather writes issued, scalar writes issued, and bytes that
     crossed userspace on their way out. *)
  writev_calls : Obs.Counter.t;
  write_calls : Obs.Counter.t;
  bytes_copied : Obs.Counter.t;
  bytes_sent : Obs.Counter.t;  (* response bytes the kernel accepted *)
  (* Responses by status class: slots for 2xx/3xx/4xx/5xx, guarded by
     [obs_mutex]; MP children ship 'S' records so the parent's array is
     the consolidated view. *)
  status_classes : int array;
  (* Copying-fallback staging buffer for the single-threaded event-loop
     modes; MP/MT workers allocate their own per connection. *)
  send_scratch : Bytes.t;
  gather_writes : bool;  (* config.use_writev, gated on stub presence *)
  (* The pid that created this server.  After an MP fork both sides
     hold the same record; parent-only duties (draining the stats pipe,
     summing child gauges) key off it. *)
  owner_pid : int;
  (* The unified metrics registry: every surface (/server-status text
     and JSON, /metrics exposition, programmatic stats) renders from
     one [Registry.collect] walk over these closures. *)
  registry : Obs.Registry.t;
  (* Flight recorder + SLO evaluator.  The recorder's read closure
     captures [t], so it is attached right after construction (before
     MP forks / MT threads, which inherit it).  All recorder access
     goes through [recorder_mutex]: ticks race between workers, status
     reads and dumps. *)
  mutable recorder : Obs.Recorder.t option;
  recorder_mutex : Mutex.t;
  slo : Obs.Slo.t option;
  (* MP parent: last gauge snapshot shipped by each child ('G'
     records), pid -> (active connections, mapped bytes).  Summed at
     snapshot time — never accumulated, so a child's churn cannot
     inflate the consolidated gauge.  Guarded by [stats_mutex] (all
     writes happen inside [consume_stats]). *)
  mp_child_gauges : (int, int * int) Hashtbl.t;
  (* Sharded mode wiring (Standalone otherwise).  [shards] is the full
     shard set, index = shard id, shared by the coordinator and every
     shard so any instance can render the cross-shard views; [coord]
     points every shard back at the coordinator for accept-strategy
     reporting.  Both are fixed right after construction, before any
     domain is spawned. *)
  (* Admission control and shedding.  One instance per server instance
     — per shard in sharded mode, shared by MT workers (it locks
     internally), copy-on-write per MP child.  [None] when the config
     enables nothing, so the unguarded hot path pays no checks. *)
  guard : Guard.t option;
  (* Predictive warming (None when disabled or helperless): miner,
     prefetch bookkeeping and counters — see [warm_state]. *)
  warm : warm_state option;
  mutable cgi_inflight : int;  (* live CGI children (event-loop modes) *)
  role : role;
  mutable shards : t array;
  mutable coord : t option;
  mutable domains : unit Domain.t list;
  accept_strategy : string; (* "reuseport" | "handoff"; "" unsharded *)
  owns_listen : bool; (* does [run_loop] watch + accept on listen_fd *)
  mutable handoff_rr : int; (* round-robin wake cursor, acceptor only *)
  handoff_shed : Obs.Counter.t; (* accepts dropped on a full ring *)
  (* Which lock guards this instance's cache (None = unshared, no lock
     needed): the instance's own [cache_mutex] in MT mode, one mutex
     shared by every shard when a budget spans domains — a foreign
     shard's rebalance may then shed into this cache. *)
  cache_lock : Mutex.t option;
}

let log = Logs.Src.create "flash.live" ~doc:"Flash live server"

module Log = (val Logs.src_log log : Logs.LOG)

let with_cache_lock t f =
  match t.cache_lock with
  | Some m ->
      Mutex.lock m;
      Fun.protect ~finally:(fun () -> Mutex.unlock m) f
  | None -> f ()

let with_obs_lock t f =
  Mutex.lock t.obs_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.obs_mutex) f

(* After an MP fork, parent and children run the same code over copies
   of the same record; parent-only duties key off the creating pid. *)
let is_mp_parent t =
  match t.config.mode with Mp _ -> Unix.getpid () = t.owner_pid | _ -> false

(* ------------------------------------------------------------------ *)
(* The stats pipe protocol (MP consolidation)                          *)
(* ------------------------------------------------------------------ *)

(* One fixed-size record per event.  MP children send these to the
   parent; MT threads and the single-process modes count in place.
   Tags: 'r' finished request, 'e' finished request that errored,
   'c' accepted connection, 'f' accept shed on EMFILE, 'S' response by
   status class (class index in the first payload byte).  The float is
   the request latency in seconds (0 where unused).  9 bytes <
   PIPE_BUF, so writes are atomic. *)
let stats_record ~tag ~latency =
  let b = Bytes.create 9 in
  Bytes.set b 0 tag;
  Bytes.set_int64_le b 1 (Int64.bits_of_float latency);
  b

(* Variable-length trace records ride the same pipe: tag 'T', a u16 LE
   payload length, then a [Obs.Trace.to_binary] record.  Fixed wider
   frames: 'v' send-path counter deltas (tag + four 8-byte LE ints =
   33 bytes), 'G' a child's gauge snapshot (tag + pid + active +
   mapped = 25 bytes) — all under PIPE_BUF, so records never
   interleave. *)
let consume_stats t bytes len =
  Buffer.add_subbytes t.stats_acc bytes 0 len;
  let s = Buffer.contents t.stats_acc in
  let n = String.length s in
  let pos = ref 0 in
  let short = ref false in
  while (not !short) && !pos < n do
    match s.[!pos] with
    | 'c' | 'r' | 'e' ->
        if !pos + 9 <= n then begin
          let latency = Int64.float_of_bits (String.get_int64_le s (!pos + 1)) in
          (match s.[!pos] with
          | 'c' -> t.n_connections <- t.n_connections + 1
          | tag ->
              t.n_requests <- t.n_requests + 1;
              if tag = 'e' then t.n_errors <- t.n_errors + 1;
              with_obs_lock t (fun () -> Obs.Histogram.record t.latency latency));
          pos := !pos + 9
        end
        else short := true
    | 'f' ->
        (* An MP child shed an accept on EMFILE/ENFILE (same 9-byte
           frame as the counting tags; the float is unused). *)
        if !pos + 9 <= n then begin
          Obs.Counter.incr t.accept_emfile;
          pos := !pos + 9
        end
        else short := true
    | 'S' ->
        (* A response counted by status class: the class index rides in
           the first payload byte of the 9-byte frame. *)
        if !pos + 9 <= n then begin
          let cls = Char.code s.[!pos + 1] land 3 in
          with_obs_lock t (fun () ->
              t.status_classes.(cls) <- t.status_classes.(cls) + 1);
          pos := !pos + 9
        end
        else short := true
    | 'v' ->
        (* Send-path counter deltas from an MP child: four 8-byte LE
           ints after the tag. *)
        if !pos + 33 <= n then begin
          let int_at o = Int64.to_int (String.get_int64_le s (!pos + o)) in
          let writev = int_at 1
          and writes = int_at 9
          and copied = int_at 17
          and sent = int_at 25 in
          with_obs_lock t (fun () ->
              Obs.Counter.add t.writev_calls writev;
              Obs.Counter.add t.write_calls writes;
              Obs.Counter.add t.bytes_copied copied;
              Obs.Counter.add t.bytes_sent sent);
          pos := !pos + 33
        end
        else short := true
    | 'G' ->
        (* A child's gauge snapshot: pid, active connections, mapped
           bytes.  Replaced, never accumulated — the consolidated gauge
           is the sum of each child's latest snapshot. *)
        if !pos + 25 <= n then begin
          let int_at o = Int64.to_int (String.get_int64_le s (!pos + o)) in
          Hashtbl.replace t.mp_child_gauges (int_at 1)
            (int_at 9, int_at 17);
          pos := !pos + 25
        end
        else short := true
    | 'T' ->
        if !pos + 3 <= n then begin
          let plen = Char.code s.[!pos + 1] lor (Char.code s.[!pos + 2] lsl 8) in
          if !pos + 3 + plen <= n then begin
            (match Obs.Trace.of_binary s ~pos:(!pos + 3) with
            | Some (data, _) -> (
                match t.tracer with
                | Some tracer ->
                    with_obs_lock t (fun () -> Obs.Trace.ingest tracer data)
                | None -> ())
            | None -> ());
            pos := !pos + 3 + plen
          end
          else short := true
        end
        else short := true
    | _ ->
        (* Unknown tag: resynchronise one byte at a time. *)
        incr pos
  done;
  Buffer.clear t.stats_acc;
  Buffer.add_substring t.stats_acc s !pos (n - !pos)

(* On-demand drain so snapshots are current even between parent-loop
   polls.  Only the MP parent may drain: a forked child inherits the
   read end, and reading there would steal records from the
   consolidating parent. *)
let drain_stats_pipe t =
  match t.stats_pipe_read with
  | Some _ when Unix.getpid () <> t.owner_pid -> ()
  | None -> ()
  | Some r ->
      let buf = Bytes.create 4095 in
      Mutex.lock t.stats_mutex;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.stats_mutex)
        (fun () ->
          let rec loop () =
            match Unix.read r buf 0 4095 with
            | n when n > 0 ->
                consume_stats t buf n;
                loop ()
            | _ -> ()
            | exception Unix.Unix_error _ -> ()
          in
          loop ())

let mp_gauge_sums t =
  Mutex.lock t.stats_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.stats_mutex)
    (fun () ->
      Hashtbl.fold
        (fun _ (a, m) (sa, sm) -> (sa + a, sm + m))
        t.mp_child_gauges (0, 0))

(* Mode-aware gauges: the MP parent sums each child's latest snapshot;
   everywhere else the local instruments are the truth. *)
let active_now t =
  if is_mp_parent t then fst (mp_gauge_sums t)
  else with_obs_lock t (fun () -> Obs.Gauge.value t.active)

let mapped_now t =
  if is_mp_parent t then snd (mp_gauge_sums t)
  else File_cache.mapped_bytes t.cache

(* An MP child pushes its gauge snapshot whenever a gauge moves
   (connection open/close, cache insert).  No-op elsewhere. *)
let mp_ship_gauges t =
  match t.stats_pipe_write with
  | None -> ()
  | Some w ->
      let active = with_obs_lock t (fun () -> Obs.Gauge.value t.active) in
      let mapped = File_cache.mapped_bytes t.cache in
      let b = Bytes.create 25 in
      Bytes.set b 0 'G';
      Bytes.set_int64_le b 1 (Int64.of_int (Unix.getpid ()));
      Bytes.set_int64_le b 9 (Int64.of_int active);
      Bytes.set_int64_le b 17 (Int64.of_int mapped);
      (try ignore (Unix.write w b 0 25) with Unix.Unix_error _ -> ())

(* Count a response by status class (2xx/3xx/4xx/5xx).  MP children
   also ship an 'S' record so the parent's array is the consolidated
   view. *)
let status_class_names = [| "2xx"; "3xx"; "4xx"; "5xx" |]

let count_status t code =
  let cls = Stdlib.min 3 (Stdlib.max 0 ((code / 100) - 2)) in
  with_obs_lock t (fun () ->
      t.status_classes.(cls) <- t.status_classes.(cls) + 1);
  match t.stats_pipe_write with
  | None -> ()
  | Some w ->
      let b = stats_record ~tag:'S' ~latency:0. in
      Bytes.set b 1 (Char.chr cls);
      (try ignore (Unix.write w b 0 9) with Unix.Unix_error _ -> ())

(* ------------------------------------------------------------------ *)
(* Flight recorder plumbing                                            *)
(* ------------------------------------------------------------------ *)

(* All recorder access is serialised: ticks race between request paths,
   loop timers, status reads and dump requests (MT workers share one
   recorder).  The read closure takes [stats_mutex]/[obs_mutex] inside;
   nothing takes [recorder_mutex] while holding those. *)
let with_recorder t f =
  match t.recorder with
  | None -> None
  | Some r ->
      Mutex.lock t.recorder_mutex;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.recorder_mutex)
        (fun () -> Some (f r))

let tick_recorder t = ignore (with_recorder t Obs.Recorder.tick)

(* The recorder's cumulative snapshot: the same counters the registry
   exposes, read under the same locks. *)
let recorder_read t () =
  drain_stats_pipe t;
  let latency = with_obs_lock t (fun () -> Obs.Histogram.copy t.latency) in
  let writev, writes, copied, sent =
    with_obs_lock t (fun () ->
        ( Obs.Counter.value t.writev_calls,
          Obs.Counter.value t.write_calls,
          Obs.Counter.value t.bytes_copied,
          Obs.Counter.value t.bytes_sent ))
  in
  let wait, work =
    (Obs.Loopstat.wait_time t.loopstat, Obs.Loopstat.work_time t.loopstat)
  in
  let cum =
    {
      Obs.Recorder.c_requests = t.n_requests;
      c_bytes = sent;
      c_writev = writev;
      c_write = writes;
      c_copied = copied;
      c_cache_hits = File_cache.hits t.cache;
      c_cache_misses = File_cache.misses t.cache;
      c_errors = t.n_errors;
      c_wait = wait;
      c_work = work;
      c_latency = latency;
    }
  in
  let gauges =
    {
      Obs.Recorder.g_active = active_now t;
      g_helper_queue =
        (match t.helper with Some h -> Helper.queue_depth h | None -> 0);
      g_mapped = mapped_now t;
    }
  in
  (cum, gauges)

(* ------------------------------------------------------------------ *)
(* Request-lifecycle tracing                                           *)
(* ------------------------------------------------------------------ *)

(* All tracer mutations run under the obs mutex: MT workers share the
   collector, and in MP the parent's consolidation thread ingests child
   traces while the endpoint renders.  [f] must not re-enter a locking
   helper (the mutex is not reentrant). *)
let with_tracer t f =
  match t.tracer with
  | None -> ()
  | Some tracer -> with_obs_lock t (fun () -> f tracer)

(* The track a span is attributed to: the Perfetto row it renders on.
   Event-loop modes do request work on the main loop; MP children and MT
   workers each get their own row. *)
let current_track t =
  match t.config.mode with
  | Amped | Sped -> "main-loop"
  | Mp _ -> Printf.sprintf "mp-child-%d" (Unix.getpid ())
  | Mt _ -> Printf.sprintf "mt-worker-%d" (Thread.id (Thread.self ()))
  | Sharded _ -> (
      match t.role with
      | Shard_member { id; _ } -> Printf.sprintf "shard-%d" id
      | Standalone | Shard_coordinator _ -> "main-loop")

(* Open the trace for the next request on this connection as soon as its
   first bytes arrive: the parse span starts here.  The first request's
   trace reaches back to [accept]; later ones mark the keep-alive
   reuse. *)
let ensure_trace t conn =
  with_tracer t (fun tracer ->
      if conn.trace = None then begin
        let track = current_track t in
        let tr =
          if conn.reqs_served = 0 then begin
            let tr = Obs.Trace.start tracer ~at:conn.accepted_at () in
            Obs.Trace.add_span tracer ~track ~name:"accept"
              ~start:conn.accepted_at ~stop:conn.accepted_at tr;
            tr
          end
          else begin
            let tr = Obs.Trace.start tracer () in
            Obs.Trace.instant tracer tr ~track "keepalive-reuse";
            tr
          end
        in
        conn.trace <- Some tr;
        conn.parse_span <- Some (Obs.Trace.begin_span tracer tr ~track "parse")
      end)

let end_parse_span t conn ~label =
  with_tracer t (fun tracer ->
      (match conn.parse_span with
      | Some sp ->
          Obs.Trace.end_span tracer sp;
          conn.parse_span <- None
      | None -> ());
      match conn.trace with
      | Some tr -> Obs.Trace.relabel tr label
      | None -> ())

let begin_work_span t conn name =
  with_tracer t (fun tracer ->
      match conn.trace with
      | Some tr when conn.work_span = None ->
          conn.work_span <-
            Some (Obs.Trace.begin_span tracer tr ~track:(current_track t) name)
      | _ -> ())

let log_slow t (data : Obs.Trace.trace_data) =
  match t.config.slow_request_ms with
  | None -> ()
  | Some ms ->
      if (data.Obs.Trace.t_end -. data.Obs.Trace.t_begin) *. 1000. >= ms then begin
        let line = Obs.Trace.summary data in
        match t.slow_channel with
        | Some oc ->
            output_string oc (line ^ "\n");
            flush oc
        | None -> prerr_endline line
      end

(* Close the in-flight request's trace: response bytes are out (or the
   connection died).  Pushes it into the ring and, past the threshold,
   into the slow-request log. *)
let finish_request_trace ?(closing = false) t conn =
  match t.tracer with
  | None -> ()
  | Some tracer -> (
      match conn.trace with
      | None -> ()
      | Some tr ->
          let data =
            with_obs_lock t (fun () ->
                (match conn.write_span with
                | Some sp -> Obs.Trace.end_span tracer sp
                | None -> ());
                if closing || conn.close_after_flush then
                  Obs.Trace.instant tracer tr ~track:(current_track t) "close";
                Obs.Trace.finish tracer tr)
          in
          conn.trace <- None;
          conn.parse_span <- None;
          conn.work_span <- None;
          conn.write_span <- None;
          conn.reqs_served <- conn.reqs_served + 1;
          log_slow t data)

let log_access ?conn ?path t ~meth ~target ~status ~bytes =
  match t.log_channel with
  | None -> ()
  | Some oc ->
      (* Common Log Format; host is always loopback here.  With
         [access_log_paths], the resolved filesystem path follows the
         status/bytes pair — stable machine-minable fields, like the
         Apache %>s %O %f log pcache mines.  With [access_log_timing],
         the request's service time so far (microseconds, measured from
         its trace start when tracing) is appended last. *)
      let base =
        Printf.sprintf "127.0.0.1 - - [%s] \"%s %s HTTP/1.1\" %d %d"
          (Http.Http_date.format (Unix.gettimeofday ()))
          meth target status bytes
      in
      let base =
        match path with
        | Some p when t.config.access_log_paths -> base ^ " " ^ p
        | _ -> base
      in
      let line =
        if not t.config.access_log_timing then base
        else
          let started =
            match conn with
            | Some c -> (
                match c.trace with
                | Some tr -> Obs.Trace.start_of tr
                | None -> c.req_start)
            | None -> t.config.clock ()
          in
          let us = (t.config.clock () -. started) *. 1e6 in
          Printf.sprintf "%s %d" base (int_of_float (Float.max 0. us))
      in
      output_string oc (line ^ "\n");
      flush oc

(* Latency is measured from parse completion to response generation —
   for AMPED that spans the helper round-trip, for SPED the inline disk
   work, so the architectural difference is visible in the numbers.
   This is also the "response generated" seam for tracing: the work
   span (inline disk read, CGI) ends and the write span begins. *)
let record_latency t conn =
  let dt = t.config.clock () -. conn.req_start in
  with_obs_lock t (fun () -> Obs.Histogram.record t.latency dt);
  with_tracer t (fun tracer ->
      (match conn.work_span with
      | Some sp ->
          Obs.Trace.end_span tracer sp;
          conn.work_span <- None
      | None -> ());
      match conn.trace with
      | Some tr when conn.write_span = None ->
          conn.write_span <-
            Some (Obs.Trace.begin_span tracer tr ~track:(current_track t) "write")
      | _ -> ());
  tick_recorder t

let slow_read_hook t path =
  match t.config.slow_read with Some f -> f path | None -> ()

(* ------------------------------------------------------------------ *)
(* Request resolution                                                  *)
(* ------------------------------------------------------------------ *)

let align_of t = if t.config.align_headers then Some 32 else None

(* Map a request target to a path under the docroot; [Error] carries the
   response status. *)
let resolve _t (req : Http.Request.t) =
  match Http.Request.normalize_path req.Http.Request.path with
  | None -> Error Http.Status.Forbidden
  | Some path ->
      let raw = req.Http.Request.path in
      let wants_index =
        path = "/"
        || (String.length raw > 0 && raw.[String.length raw - 1] = '/')
      in
      let path =
        if wants_index then
          (if path = "/" then "" else path) ^ "/index.html"
        else path
      in
      Ok path

let is_cgi path =
  String.length path >= 9 && String.sub path 0 9 = "/cgi-bin/"

(* The status endpoint is matched on the raw request path, before any
   docroot or CGI resolution, so it can never 403, escape, or collide
   with a docroot file of the same name. *)
let is_status_request t (req : Http.Request.t) =
  match t.config.status_path with
  | None -> false
  | Some sp -> String.equal req.Http.Request.path sp

(* Same raw-path matching as the status endpoint.  With tracing off the
   path is not special: it falls through to docroot resolution (and a
   404 on a standard docroot). *)
let is_trace_request t (req : Http.Request.t) =
  match (t.config.trace_path, t.tracer) with
  | Some tp, Some _ -> String.equal req.Http.Request.path tp
  | _ -> false

(* Same raw-path matching as the status endpoint.  In MP children this
   serves the child-local view (the consolidated one lives in the
   parent, which owns the stats pipe). *)
let is_metrics_request t (req : Http.Request.t) =
  match t.config.metrics_path with
  | None -> false
  | Some mp -> String.equal req.Http.Request.path mp

let trace_body t =
  match t.tracer with
  | None -> {|{"traceEvents":[]}|}
  | Some tracer -> with_obs_lock t (fun () -> Obs.Trace.to_chrome_json tracer)

(* ------------------------------------------------------------------ *)
(* Status rendering                                                    *)
(* ------------------------------------------------------------------ *)

let mode_string = function
  | Amped -> "amped"
  | Sped -> "sped"
  | Mp n -> Printf.sprintf "mp:%d" n
  | Mt n -> Printf.sprintf "mt:%d" n
  | Sharded n -> Printf.sprintf "sharded:%d" n

(* JSON has no NaN/Infinity; empty-histogram percentiles render as 0. *)
let num f = if Float.is_finite f then Printf.sprintf "%.6g" f else "0"
let ms x = if Float.is_finite x then 1000. *. x else 0.

let histogram_json h =
  Printf.sprintf
    {|{"count":%d,"mean":%s,"p50":%s,"p90":%s,"p99":%s,"max":%s}|}
    (Obs.Histogram.count h)
    (num (ms (Obs.Histogram.mean h)))
    (num (ms (Obs.Histogram.percentile h 50.)))
    (num (ms (Obs.Histogram.percentile h 90.)))
    (num (ms (Obs.Histogram.percentile h 99.)))
    (num (ms (Obs.Histogram.max h)))

let histogram_text h =
  Printf.sprintf "count %d, mean %.3f ms, p50 %.3f ms, p90 %.3f ms, p99 %.3f ms, max %.3f ms"
    (Obs.Histogram.count h)
    (ms (Obs.Histogram.mean h))
    (ms (Obs.Histogram.percentile h 50.))
    (ms (Obs.Histogram.percentile h 90.))
    (ms (Obs.Histogram.percentile h 99.))
    (ms (Obs.Histogram.max h))

(* One registry walk feeds every surface: the text page, the JSON view
   and /metrics exposition all render the same [collect] result, so
   they cannot drift.  In an MP child this reports the child's own view
   ([drain_stats_pipe] refuses to drain there — the shared pipe belongs
   to the consolidating parent). *)
let shard_peers t =
  match t.role with
  | Standalone -> None
  | Shard_member _ | Shard_coordinator _ ->
      if Array.length t.shards = 0 then None else Some t.shards

(* Gauges that are not additive across shards: aggregate with max. *)
let gauge_max_name name =
  name = "flash_uptime_seconds" || name = "flash_slo_state"
  || name = "flash_guard_state"

(* The sample lists feeding this instance's render surfaces:
   [(summary, all)].  Unsharded both are this registry's walk.  Sharded
   instances concatenate every shard's walk and prepend the
   summed-at-snapshot aggregate (shard label stripped — the same
   consolidation the MP parent does over its stats pipe, done here at
   collect time): [summary] is the aggregate alone, for the status
   page's by-name lookups; [all] additionally carries every per-shard
   series for /metrics and the metrics listing. *)
let collect_for t =
  match shard_peers t with
  | None ->
      drain_stats_pipe t;
      let samples = Obs.Registry.collect t.registry in
      (samples, samples)
  | Some shards ->
      let per_shard =
        List.concat_map
          (fun sh -> Obs.Registry.collect sh.registry)
          (Array.to_list shards)
      in
      let agg =
        Obs.Registry.aggregate ~gauge_max:gauge_max_name ~drop:"shard"
          per_shard
      in
      (agg, Obs.Registry.sort_samples (agg @ per_shard))

let collect_samples t = snd (collect_for t)

(* Flat (key, rendered-number) pairs for every sample in the walk: the
   "metrics" object of the JSON view and the metrics section of the
   text view print these pairs verbatim — the anchor the no-drift
   regression test holds onto.  Histograms flatten to _count/_sum. *)
let sample_kvs samples =
  let key name suffix labels =
    name ^ suffix
    ^
    match labels with
    | [] -> ""
    | ls ->
        "{"
        ^ String.concat ","
            (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) ls)
        ^ "}"
  in
  List.concat_map
    (fun (s : Obs.Registry.sample) ->
      match s.Obs.Registry.value with
      | Obs.Registry.Counter n ->
          [ (key s.Obs.Registry.name "" s.Obs.Registry.labels, string_of_int n) ]
      | Obs.Registry.Gauge v ->
          [ (key s.Obs.Registry.name "" s.Obs.Registry.labels, num v) ]
      | Obs.Registry.Info ->
          [ (key s.Obs.Registry.name "" s.Obs.Registry.labels, "1") ]
      | Obs.Registry.Hist h ->
          [
            ( key s.Obs.Registry.name "_count" s.Obs.Registry.labels,
              string_of_int (Obs.Histogram.count h) );
            ( key s.Obs.Registry.name "_sum" s.Obs.Registry.labels,
              num (Obs.Histogram.sum h) );
          ])
    samples

(* The sharding block of /server-status, rendered key-for-key in both
   views (the PR 7 no-drift rule): (json string, text lines). *)
let sharding_views t =
  match shard_peers t with
  | None -> ("null", [ "sharding:     none" ])
  | Some shards ->
      let coordv = match t.coord with Some c -> c | None -> t in
      let strategy = coordv.accept_strategy in
      let shed = Obs.Counter.value coordv.handoff_shed in
      let my_shard =
        match t.role with Shard_member { id; _ } -> id | _ -> -1
      in
      let per_shard =
        Array.to_list
          (Array.mapi
             (fun i sh ->
               let active =
                 with_obs_lock sh (fun () -> Obs.Gauge.value sh.active)
               in
               ( i,
                 Evio.Backend.name sh.evio,
                 sh.n_requests,
                 active ))
             shards)
      in
      let json =
        Printf.sprintf
          {|{"domains":%d,"accept":%s,"shard":%d,"handoff_shed":%d,"shards":[%s]}|}
          (Array.length shards) (Obs.Json.str strategy) my_shard shed
          (String.concat ","
             (List.map
                (fun (i, backend, requests, active) ->
                  Printf.sprintf
                    {|{"shard":%d,"backend":%s,"requests":%d,"active":%d}|} i
                    (Obs.Json.str backend) requests active)
                per_shard))
      in
      let text =
        Printf.sprintf
          "sharding:     %d domains, %s accepts, serving shard %d, %d \
           handoff shed"
          (Array.length shards) strategy my_shard shed
        :: List.map
             (fun (i, backend, requests, active) ->
               Printf.sprintf
                 "shard %d:      %s backend, %d requests, %d active" i backend
                 requests active)
             per_shard
      in
      (json, text)

let status_body t ~json =
  let summary, all_samples = collect_for t in
  let samples = summary in
  let iv ?labels name = Obs.Registry.int_value ?labels samples name in
  let fv ?labels name = Obs.Registry.float_value ?labels samples name in
  let hist name =
    match Obs.Registry.hist_value samples name with
    | Some h -> h
    | None -> Obs.Histogram.create ()
  in
  let fl = [ ("cache", "file") ] in
  let latency = hist "flash_request_duration_seconds" in
  let uptime = fv "flash_uptime_seconds" in
  let requests = iv "flash_http_requests_total" in
  let errors = iv "flash_http_errors_total" in
  let connections = iv "flash_connections_total" in
  let active = iv "flash_active_connections" in
  let sv_writev = iv "flash_writev_calls_total" in
  let sv_writes = iv "flash_write_calls_total" in
  let sv_copied = iv "flash_bytes_copied_total" in
  let sv_sent = iv "flash_bytes_sent_total" in
  let cache_hits = iv ~labels:fl "flash_cache_hits_total" in
  let cache_misses = iv ~labels:fl "flash_cache_misses_total" in
  let cache_evictions = iv ~labels:fl "flash_cache_evictions_total" in
  let cache_admitted = iv ~labels:fl "flash_cache_admitted_total" in
  let cache_rejected = iv ~labels:fl "flash_cache_rejected_total" in
  let cache_entries = iv ~labels:fl "flash_cache_entries" in
  let cache_resident = iv ~labels:fl "flash_cache_resident_bytes" in
  let cache_capacity = iv ~labels:fl "flash_cache_capacity_bytes" in
  let mapped = iv "flash_cache_mapped_bytes" in
  let by_class i =
    iv ~labels:[ ("class", status_class_names.(i)) ] "flash_http_responses_total"
  in
  (* Strings the registry does not carry (they cannot drift — they are
     configuration, not measurements). *)
  let cstats = File_cache.stats t.cache in
  let policy_s = cstats.Flash_cache.Store.policy in
  let admission_s = cstats.Flash_cache.Store.admission in
  let send_path_s = if t.gather_writes then "writev" else "copy" in
  let sharding_json, sharding_lines = sharding_views t in
  let kvs = sample_kvs all_samples in
  if json then
    let helper_json =
      match t.helper with
      | None -> "null"
      | Some _ ->
          Printf.sprintf
            {|{"jobs":%d,"queue_depth":%d,"queue_depth_hwm":%d,"queued":%d,"in_flight":%d,"rejected":%d,"job_latency_ms":%s}|}
            (iv "flash_helper_jobs_total")
            (iv "flash_helper_queue_depth")
            (iv "flash_helper_queue_depth_hwm")
            (iv "flash_helper_queued")
            (iv "flash_helper_in_flight")
            (iv "flash_helper_rejected_total")
            (histogram_json (hist "flash_helper_job_duration_seconds"))
    in
    let trace_json =
      match t.tracer with
      | None -> {|{"enabled":false}|}
      | Some _ ->
          Printf.sprintf
            {|{"enabled":true,"completed":%d,"evicted":%d,"capacity":%d}|}
            (iv "flash_traces_completed_total")
            (iv "flash_traces_evicted_total")
            (iv "flash_trace_ring_capacity")
    in
    let health_json =
      match t.slo with
      | None -> "null"
      | Some slo ->
          Printf.sprintf
            {|{"state":%s,"burn":%s,"quantile":%s,"target_ms":%s,"windows":%d}|}
            (Obs.Json.str (Obs.Slo.state_string slo))
            (num (Obs.Slo.burn slo))
            (num (Obs.Slo.quantile slo))
            (num (Obs.Slo.target_ms slo))
            (Obs.Slo.windows slo)
    in
    let file_cache_json =
      Printf.sprintf
        {|{"policy":%s,"admission":%s,"capacity":%d,"entries":%d,"resident_bytes":%d,"hits":%d,"misses":%d,"evictions":%d,"admitted":%d,"rejected":%d}|}
        (Obs.Json.str policy_s) (Obs.Json.str admission_s) cache_capacity
        cache_entries cache_resident cache_hits cache_misses cache_evictions
        cache_admitted cache_rejected
    in
    let guard_json =
      match t.guard with
      | None -> "null"
      | Some guard ->
          Printf.sprintf
            {|{"level":%d,"tracked_peers":%d,"shed_total":%d,"shed":{%s}}|}
            (Guard.level_code (Guard.level guard))
            (Guard.tracked_peers guard) (Guard.shed_total guard)
            (String.concat ","
               (List.map
                  (fun reason ->
                    Printf.sprintf "%s:%d"
                      (Obs.Json.str (Guard.reason_label reason))
                      (Guard.shed_count guard reason))
                  Guard.all_reasons))
    in
    let warm_json =
      match t.warm with
      | None -> "null"
      | Some _ ->
          Printf.sprintf
            {|{"cycles":%d,"candidates_ranked":%d,"prefetch_issued":%d,"prefetch_completed":%d,"prefetch_failed":%d,"prefetch_rejected":%d,"hits_after_warm":%d,"pinned_bytes":%d,"pinned_entries":%d,"tracked_paths":%d}|}
            (iv "flash_warm_cycles_total")
            (iv "flash_warm_candidates_ranked_total")
            (iv "flash_warm_prefetch_issued_total")
            (iv "flash_warm_prefetch_completed_total")
            (iv "flash_warm_prefetch_failed_total")
            (iv "flash_warm_prefetch_rejected_total")
            (iv "flash_warm_hits_after_warm_total")
            (iv "flash_warm_pinned_bytes")
            (iv "flash_warm_pinned_entries")
            (iv "flash_warm_tracked_paths")
    in
    let metrics_json =
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> Obs.Json.str k ^ ":" ^ v) kvs)
      ^ "}"
    in
    Printf.sprintf
      (* The sharding block sits at the tail (after the flat counters)
         so naive first-match scrapers — flash_bench's before/after
         delta — still find the aggregate "requests"/"backend" keys
         first, not a per-shard entry's. *)
      {|{"server":%s,"mode":%s,"uptime_s":%s,"requests":%d,"connections":%d,"active_connections":%d,"errors":%d,"responses":{"2xx":%d,"3xx":%d,"4xx":%d,"5xx":%d},"cache":{"hits":%d,"misses":%d,"evictions":%d,"bytes":%d,"mapped_bytes":%d,"entries":%d},"caches":{"file":%s},"send":{"path":%s,"writev_calls":%d,"write_calls":%d,"bytes_copied":%d,"bytes_sent":%d},"latency_ms":%s,"loop":{"backend":%s,"stalls":%d,"threshold_ms":%s,"max_stall_ms":%s,"iterations":%d,"wakeups":%d,"ready_per_wakeup":%s,"wait_s":%s,"work_s":%s,"timer_fires":%d,"timers_pending":%d,"accept_emfile":%d,"accept_paused":%b},"helper":%s,"trace":%s,"health":%s,"guard":%s,"warm":%s,"sharding":%s,"metrics":%s}|}
      (Obs.Json.str t.config.server_name)
      (Obs.Json.str (mode_string t.config.mode))
      (num uptime) requests connections active errors (by_class 0) (by_class 1)
      (by_class 2) (by_class 3) cache_hits cache_misses cache_evictions
      cache_resident mapped cache_entries file_cache_json
      (Obs.Json.str send_path_s) sv_writev sv_writes sv_copied sv_sent
      (histogram_json latency)
      (Obs.Json.str (Evio.name t.config.event_backend))
      (iv "flash_loop_stalls_total")
      (num (ms (Obs.Watchdog.threshold t.watchdog)))
      (num (fv "flash_loop_max_stall_seconds" *. 1000.))
      (iv "flash_loop_iterations_total")
      (iv "flash_loop_wakeups_total")
      (num (fv "flash_loop_ready_per_wakeup"))
      (num (fv "flash_loop_wait_seconds"))
      (num (fv "flash_loop_work_seconds"))
      (iv "flash_loop_timer_fires_total")
      (iv "flash_timers_pending")
      (iv "flash_accept_emfile_total")
      (fv "flash_accept_paused" > 0.)
      helper_json trace_json health_json guard_json warm_json sharding_json
      metrics_json
    ^ "\n"
  else begin
    let b = Buffer.create 1024 in
    let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
    line "%s status" t.config.server_name;
    line "mode:         %s" (mode_string t.config.mode);
    List.iter (fun s -> line "%s" s) sharding_lines;
    line "uptime:       %.1f s" uptime;
    line "requests:     %d (%d errors)" requests errors;
    line "responses:    %d 2xx, %d 3xx, %d 4xx, %d 5xx" (by_class 0)
      (by_class 1) (by_class 2) (by_class 3);
    line "connections:  %d total, %d active" connections active;
    line "cache:        %d hits, %d misses, %d evictions, %d bytes in %d entries"
      cache_hits cache_misses cache_evictions cache_resident cache_entries;
    line "mapped:       %d bytes" mapped;
    line
      "file cache:   %s policy, %d/%d bytes in %d entries, %d hits, %d misses, %d evictions, %d admitted, %d rejected (%s admission)"
      policy_s cache_resident cache_capacity cache_entries cache_hits
      cache_misses cache_evictions cache_admitted cache_rejected admission_s;
    line "send:         %s path, %d writev, %d write, %d bytes copied, %d bytes sent"
      send_path_s sv_writev sv_writes sv_copied sv_sent;
    line "latency:      %s" (histogram_text latency);
    line "loop:         %d stalls over %.1f ms (max %.3f ms, %d iterations)"
      (iv "flash_loop_stalls_total")
      (ms (Obs.Watchdog.threshold t.watchdog))
      (fv "flash_loop_max_stall_seconds" *. 1000.)
      (iv "flash_loop_iterations_total");
    line
      "events:       %s backend, %d wakeups (%.2f ready fds/wakeup), %.3f s waiting / %.3f s working"
      (Evio.name t.config.event_backend)
      (iv "flash_loop_wakeups_total")
      (fv "flash_loop_ready_per_wakeup")
      (fv "flash_loop_wait_seconds")
      (fv "flash_loop_work_seconds");
    line "timers:       %d fired, %d pending"
      (iv "flash_loop_timer_fires_total")
      (iv "flash_timers_pending");
    line "accept:       %d shed on EMFILE%s"
      (iv "flash_accept_emfile_total")
      (if fv "flash_accept_paused" > 0. then " (listen paused)" else "");
    (match t.tracer with
    | None -> line "tracing:      off"
    | Some _ ->
        line "tracing:      %d traces (%d evicted, ring %d)"
          (iv "flash_traces_completed_total")
          (iv "flash_traces_evicted_total")
          (iv "flash_trace_ring_capacity"));
    (match t.helper with
    | None -> line "helpers:      none"
    | Some _ ->
        line
          "helpers:      %d jobs, queue depth %d (hwm %d; %d queued + %d in \
           flight), %d rejected"
          (iv "flash_helper_jobs_total")
          (iv "flash_helper_queue_depth")
          (iv "flash_helper_queue_depth_hwm")
          (iv "flash_helper_queued")
          (iv "flash_helper_in_flight")
          (iv "flash_helper_rejected_total");
        line "helper jobs:  %s"
          (histogram_text (hist "flash_helper_job_duration_seconds")));
    (match t.slo with
    | None -> line "health:       no SLO configured"
    | Some slo ->
        line "health:       %s (burn %.2f over %d windows, p%g <= %g ms)"
          (Obs.Slo.state_string slo) (Obs.Slo.burn slo) (Obs.Slo.windows slo)
          (Obs.Slo.quantile slo) (Obs.Slo.target_ms slo));
    (match t.guard with
    | None -> line "guard:        off"
    | Some guard ->
        line "guard:        level %d, %d peers tracked, %d shed"
          (Guard.level_code (Guard.level guard))
          (Guard.tracked_peers guard) (Guard.shed_total guard);
        line "guard shed:   %s"
          (String.concat ", "
             (List.map
                (fun reason ->
                  Printf.sprintf "%d %s"
                    (Guard.shed_count guard reason)
                    (Guard.reason_label reason))
                Guard.all_reasons)));
    (match t.warm with
    | None -> line "warming:      off"
    | Some _ ->
        line
          "warming:      %d cycles, %d ranked, %d prefetches (%d done, %d \
           failed, %d rejected), %d hits after warm"
          (iv "flash_warm_cycles_total")
          (iv "flash_warm_candidates_ranked_total")
          (iv "flash_warm_prefetch_issued_total")
          (iv "flash_warm_prefetch_completed_total")
          (iv "flash_warm_prefetch_failed_total")
          (iv "flash_warm_prefetch_rejected_total")
          (iv "flash_warm_hits_after_warm_total");
        line "hot tier:     %d bytes pinned in %d entries (%d paths tracked)"
          (iv "flash_warm_pinned_bytes")
          (iv "flash_warm_pinned_entries")
          (iv "flash_warm_tracked_paths"));
    line "metrics:";
    List.iter (fun (k, v) -> line "  %s %s" k v) kvs;
    Buffer.contents b
  end

(* /metrics: the same walk, rendered as Prometheus text exposition. *)
let metrics_body t = Obs.Exposition.render (collect_samples t)

(* ?window=N: the newest N flight-recorder rollups as JSON. *)
let window_body t n =
  let rollups =
    match with_recorder t (fun r -> Obs.Recorder.window r n) with
    | Some rs -> rs
    | None -> []
  in
  Printf.sprintf {|{"window":%d,"rollups":%s}|} n
    (Obs.Recorder.rollups_json rollups)
  ^ "\n"

let wants_json (req : Http.Request.t) =
  match req.Http.Request.query with
  | Some "json" | Some "format=json" -> true
  | Some _ | None -> false

(* ?window=N on the status path selects the flight-recorder view. *)
let status_window (req : Http.Request.t) =
  match req.Http.Request.query with
  | Some q when String.length q > 7 && String.sub q 0 7 = "window=" -> (
      match int_of_string_opt (String.sub q 7 (String.length q - 7)) with
      | Some n when n > 0 -> Some n
      | _ -> None)
  | Some _ | None -> None

(* ------------------------------------------------------------------ *)
(* Registry wiring                                                     *)
(* ------------------------------------------------------------------ *)

(* Every metric is a closure reading live server state; nothing below
   may be called while holding [obs_mutex] ([collect] runs the closures,
   and the lock is not reentrant). *)
let register_metrics t =
  let r = t.registry in
  (* Sharded: stamp every series of this instance with its shard id, so
     per-shard and stripped-label aggregate rows coexist as unique
     (name, labels) pairs in the combined exposition. *)
  let sl =
    match t.role with
    | Shard_member { id; _ } -> [ ("shard", string_of_int id) ]
    | Standalone | Shard_coordinator _ -> []
  in
  let c ~name ~help ?(labels = []) read =
    Obs.Registry.counter r ~name ~help ~labels:(labels @ sl) read
  in
  let g ~name ~help ?(labels = []) read =
    Obs.Registry.gauge r ~name ~help ~labels:(labels @ sl) read
  in
  let hist ~name ~help ?(labels = []) read =
    Obs.Registry.histogram r ~name ~help ~labels:(labels @ sl) read
  in
  let inf ~name ~help ~labels =
    Obs.Registry.info r ~name ~help ~labels:(labels @ sl)
  in
  let locked f () = with_obs_lock t f in
  let cstat () = File_cache.stats t.cache in
  inf ~name:"flash_build_info"
    ~help:"Build information (constant 1)."
    ~labels:[ ("ocaml", Sys.ocaml_version); ("server", t.config.server_name) ];
  inf ~name:"flash_config_info"
    ~help:"Effective server configuration (constant 1)."
    ~labels:
      [
        ("backend", Evio.name t.config.event_backend);
        ("cache_admission", (cstat ()).Flash_cache.Store.admission);
        ("cache_policy", (cstat ()).Flash_cache.Store.policy);
        ("mode", mode_string t.config.mode);
        ("send_path", if t.gather_writes then "writev" else "copy");
      ];
  g ~name:"flash_uptime_seconds" ~help:"Seconds since server start."
    (fun () -> t.config.clock () -. t.started_at);
  c ~name:"flash_http_requests_total" ~help:"Requests parsed and answered."
    (fun () -> t.n_requests);
  c ~name:"flash_http_errors_total"
    ~help:"Requests answered with an error status." (fun () -> t.n_errors);
  Array.iteri
    (fun i cls ->
      c ~name:"flash_http_responses_total" ~help:"Responses by status class."
        ~labels:[ ("class", cls) ]
        (locked (fun () -> t.status_classes.(i))))
    status_class_names;
  c ~name:"flash_connections_total" ~help:"Connections accepted."
    (fun () -> t.n_connections);
  g ~name:"flash_active_connections"
    ~help:
      "Connections currently open (MP: summed over children at snapshot)."
    (fun () -> float_of_int (active_now t));
  c ~name:"flash_writev_calls_total" ~help:"Gather writes issued."
    (locked (fun () -> Obs.Counter.value t.writev_calls));
  c ~name:"flash_write_calls_total" ~help:"Scalar/fallback writes issued."
    (locked (fun () -> Obs.Counter.value t.write_calls));
  c ~name:"flash_bytes_copied_total"
    ~help:"Response bytes copied through userspace."
    (locked (fun () -> Obs.Counter.value t.bytes_copied));
  c ~name:"flash_bytes_sent_total"
    ~help:"Response bytes accepted by the kernel."
    (locked (fun () -> Obs.Counter.value t.bytes_sent));
  hist ~name:"flash_request_duration_seconds"
    ~help:"Per-request latency, parse completion to response generation."
    (locked (fun () -> Obs.Histogram.copy t.latency));
  let fl = [ ("cache", "file") ] in
  c ~name:"flash_cache_hits_total" ~help:"File-cache hits." ~labels:fl
    (fun () -> File_cache.hits t.cache);
  c ~name:"flash_cache_misses_total" ~help:"File-cache misses." ~labels:fl
    (fun () -> File_cache.misses t.cache);
  c ~name:"flash_cache_evictions_total"
    ~help:"File-cache evictions under capacity pressure." ~labels:fl
    (fun () -> File_cache.evictions t.cache);
  c ~name:"flash_cache_admitted_total"
    ~help:"Entries admitted by the admission policy." ~labels:fl
    (fun () -> (cstat ()).Flash_cache.Store.admitted);
  c ~name:"flash_cache_rejected_total"
    ~help:"Entries rejected by the admission policy." ~labels:fl
    (fun () -> (cstat ()).Flash_cache.Store.rejected);
  g ~name:"flash_cache_entries" ~help:"Entries resident in the file cache."
    ~labels:fl
    (fun () -> float_of_int (File_cache.entries t.cache));
  g ~name:"flash_cache_resident_bytes"
    ~help:"Bytes resident in the file cache." ~labels:fl
    (fun () -> float_of_int (File_cache.bytes t.cache));
  g ~name:"flash_cache_capacity_bytes" ~help:"Configured file-cache capacity."
    ~labels:fl
    (fun () -> float_of_int (cstat ()).Flash_cache.Store.capacity);
  g ~name:"flash_cache_mapped_bytes"
    ~help:
      "File bytes currently mmapped (MP: summed over children at snapshot)."
    (fun () -> float_of_int (mapped_now t));
  (match t.helper with
  | None -> ()
  | Some h ->
      c ~name:"flash_helper_jobs_total"
        ~help:"Disk jobs dispatched to helper processes."
        (fun () -> Helper.dispatched h);
      g ~name:"flash_helper_queue_depth"
        ~help:"Helper jobs queued or in flight."
        (fun () -> float_of_int (Helper.queue_depth h));
      g ~name:"flash_helper_queue_depth_hwm"
        ~help:"Helper queue depth high-water mark."
        (fun () -> float_of_int (Helper.queue_depth_hwm h));
      hist ~name:"flash_helper_job_duration_seconds"
        ~help:"Helper disk-job latency."
        (fun () -> Helper.job_latency h));
  c ~name:"flash_loop_iterations_total" ~help:"Event-loop iterations."
    (fun () -> Obs.Watchdog.iterations t.watchdog);
  c ~name:"flash_loop_stalls_total"
    ~help:"Loop iterations over the stall threshold."
    (fun () -> Obs.Watchdog.stalls t.watchdog);
  g ~name:"flash_loop_max_stall_seconds" ~help:"Longest loop iteration."
    (fun () ->
      let v = Obs.Watchdog.max_gap t.watchdog in
      if Float.is_finite v then v else 0.);
  c ~name:"flash_loop_wakeups_total" ~help:"Readiness waits that returned."
    (fun () -> Obs.Loopstat.wakeups t.loopstat);
  g ~name:"flash_loop_ready_per_wakeup"
    ~help:"Mean ready descriptors per wakeup."
    (fun () -> Obs.Loopstat.ready_per_wakeup t.loopstat);
  g ~name:"flash_loop_wait_seconds"
    ~help:"Cumulative seconds blocked awaiting readiness."
    (fun () -> Obs.Loopstat.wait_time t.loopstat);
  g ~name:"flash_loop_work_seconds"
    ~help:"Cumulative seconds processing ready events."
    (fun () -> Obs.Loopstat.work_time t.loopstat);
  c ~name:"flash_loop_timer_fires_total"
    ~help:"Timer-wheel expirations handled."
    (fun () -> Obs.Loopstat.timer_fires t.loopstat);
  g ~name:"flash_timers_pending" ~help:"Timers pending in the wheel."
    (fun () -> float_of_int (Evio.Timer_wheel.pending t.wheel));
  c ~name:"flash_accept_emfile_total" ~help:"Accepts shed on EMFILE/ENFILE."
    (fun () -> Obs.Counter.value t.accept_emfile);
  g ~name:"flash_accept_paused"
    ~help:"1 while the listen socket is parked by EMFILE backoff."
    (fun () -> if t.accept_paused then 1. else 0.);
  (match t.tracer with
  | None -> ()
  | Some tracer ->
      c ~name:"flash_traces_completed_total" ~help:"Request traces completed."
        (locked (fun () -> Obs.Trace.completed tracer));
      c ~name:"flash_traces_evicted_total"
        ~help:"Traces evicted from the ring."
        (locked (fun () -> Obs.Trace.evicted tracer));
      g ~name:"flash_trace_ring_capacity" ~help:"Completed-trace ring size."
        (fun () -> float_of_int (Obs.Trace.capacity tracer)));
  (match t.guard with
  | None -> ()
  | Some guard ->
      g ~name:"flash_guard_state"
        ~help:
          "Shed level: 0 normal, 1 shedding idle keep-alives, 2 also \
           refusing new connections, 3 also refusing helper-queue \
           admission."
        (fun () -> float_of_int (Guard.level_code (Guard.level guard)));
      g ~name:"flash_guard_tracked_peers"
        ~help:"Peer addresses with a live guard ledger."
        (fun () -> float_of_int (Guard.tracked_peers guard));
      List.iter
        (fun reason ->
          c ~name:"flash_guard_shed_total"
            ~help:"Connections, requests and jobs shed by the guard."
            ~labels:[ ("reason", Guard.reason_label reason) ]
            (fun () -> Guard.shed_count guard reason))
        Guard.all_reasons);
  (match t.helper with
  | None -> ()
  | Some h ->
      g ~name:"flash_helper_queued"
        ~help:"Helper jobs waiting in the queue (not yet started)."
        (fun () -> float_of_int (Helper.queued h));
      g ~name:"flash_helper_in_flight"
        ~help:"Helper jobs a worker has started but not finished."
        (fun () -> float_of_int (Helper.in_flight h));
      c ~name:"flash_helper_rejected_total"
        ~help:"Helper dispatches refused by the bounded queue."
        (fun () -> Helper.rejected h));
  (match (t.warm, t.helper) with
  | Some w, Some h ->
      c ~name:"flash_warm_cycles_total" ~help:"Mining cycles completed."
        (fun () -> Obs.Counter.value w.w_cycles);
      c ~name:"flash_warm_candidates_ranked_total"
        ~help:"Warming candidates ranked across mining cycles."
        (fun () -> Obs.Counter.value w.w_ranked);
      c ~name:"flash_warm_prefetch_issued_total"
        ~help:"Prefetch jobs dispatched on the helpers' low-priority lane."
        (fun () -> Obs.Counter.value w.w_issued);
      c ~name:"flash_warm_prefetch_completed_total"
        ~help:"Prefetches that inserted a cache entry."
        (fun () -> Obs.Counter.value w.w_completed);
      c ~name:"flash_warm_prefetch_failed_total"
        ~help:"Prefetches that found no cacheable file."
        (fun () -> Obs.Counter.value w.w_failed);
      c ~name:"flash_warm_prefetch_rejected_total"
        ~help:"Prefetch dispatches refused by the bounded low lane."
        (fun () -> Helper.low_rejected h);
      c ~name:"flash_warm_hits_after_warm_total"
        ~help:"Prefetched entries later hit by client demand."
        (fun () -> Obs.Counter.value w.w_hits_after);
      g ~name:"flash_warm_pinned_bytes"
        ~help:"Bytes pinned in the hot tier."
        (fun () -> float_of_int (File_cache.pinned_bytes t.cache));
      g ~name:"flash_warm_pinned_entries"
        ~help:"Entries pinned in the hot tier."
        (fun () -> float_of_int (File_cache.pinned_count t.cache));
      g ~name:"flash_warm_tracked_paths"
        ~help:"Distinct paths the miner is tracking."
        (fun () -> float_of_int (Flash_warm.Miner.tracked w.w_miner))
  | _ -> ());
  match t.slo with
  | None -> ()
  | Some slo ->
      g ~name:"flash_slo_state" ~help:"0 healthy, 1 degraded, 2 breached."
        (fun () -> float_of_int (Obs.Slo.state_code slo));
      g ~name:"flash_slo_burn_ratio"
        ~help:
          "Fraction of recent traffic-bearing windows violating the latency \
           target."
        (fun () -> Obs.Slo.burn slo);
      g ~name:"flash_slo_windows"
        ~help:"Traffic-bearing windows in the SLO horizon."
        (fun () -> float_of_int (Obs.Slo.windows slo));
      inf ~name:"flash_slo_info"
        ~help:"Latency SLO configuration (constant 1)."
        ~labels:
          [
            ("quantile", Printf.sprintf "%g" (Obs.Slo.quantile slo));
            ("target_ms", Printf.sprintf "%g" (Obs.Slo.target_ms slo));
          ]

(* ------------------------------------------------------------------ *)
(* Output plumbing                                                     *)
(* ------------------------------------------------------------------ *)

(* Send-path accounting, all modes.  In an MP child the deltas also ride
   the stats pipe as a framed 'v' record (tag + four 8-byte LE ints =
   33 bytes < PIPE_BUF, so writes are atomic) so the parent's
   consolidated view includes them. *)
let count_send ?(sent = 0) t ~writev ~writes ~copied =
  if writev <> 0 || writes <> 0 || copied <> 0 || sent <> 0 then begin
    (match t.stats_pipe_write with
    | Some w -> (
        let b = Bytes.create 33 in
        Bytes.set b 0 'v';
        Bytes.set_int64_le b 1 (Int64.of_int writev);
        Bytes.set_int64_le b 9 (Int64.of_int writes);
        Bytes.set_int64_le b 17 (Int64.of_int copied);
        Bytes.set_int64_le b 25 (Int64.of_int sent);
        try ignore (Unix.write w b 0 33) with Unix.Unix_error _ -> ())
    | None -> ());
    (* Mirror locally (MP children keep their own copy-on-write view,
       matching the request/connection counters). *)
    with_obs_lock t (fun () ->
        Obs.Counter.add t.writev_calls writev;
        Obs.Counter.add t.write_calls writes;
        Obs.Counter.add t.bytes_copied copied;
        Obs.Counter.add t.bytes_sent sent)
  end

(* Strings (error bodies, status/trace payloads, CGI chunks, per-request
   headers) enter the send queue by being copied once into an off-heap
   buffer — a counted copy.  Cache-hit responses bypass this entirely:
   their header and body slices come straight from the cache entry. *)
let enqueue_string t conn s =
  let copied = Sendq.push_string conn.outq s in
  count_send t ~writev:0 ~writes:0 ~copied

let enqueue_slice conn buf = Sendq.push_slice conn.outq (Iovec.slice buf)

let render_header ?last_modified ?(extra = []) t ~status ~content_type
    ~content_length ~keep =
  Http.Response.header ~status ?content_type ?content_length ?last_modified
    ~extra ~keep_alive:keep ~server:t.config.server_name
    ~date:(Unix.gettimeofday ()) ?align:(align_of t) ()

let enqueue_error ?(target = "-") ?(meth = "GET") ?extra t conn status ~keep
    ~head_only =
  t.n_errors <- t.n_errors + 1;
  count_status t (Http.Status.code status);
  log_access ~conn t ~meth ~target ~status:(Http.Status.code status) ~bytes:0;
  let body = Http.Response.error_body status in
  let header =
    render_header t ~status ?extra ~content_type:(Some "text/html")
      ~content_length:(Some (String.length body)) ~keep
  in
  enqueue_string t conn header;
  if not head_only then enqueue_string t conn body;
  if not keep then conn.close_after_flush <- true;
  conn.state <- Reading;
  record_latency t conn

let cancel_timer t slot =
  match slot with
  | Some tm ->
      Evio.Timer_wheel.cancel t.wheel tm;
      None
  | None -> None

(* Guard bookkeeping sugar: count a shed decision, and build the
   Retry-After advice carried on guard-driven 429/503 responses. *)
let guard_shed t reason =
  match t.guard with Some g -> Guard.shed g reason | None -> ()

let guard_retry t =
  [
    Http.Response.retry_after
      (match t.guard with
      | Some g -> (Guard.config g).Guard.retry_after
      | None -> 1);
  ]

(* ------------------------------------------------------------------ *)
(* HTTP/1.1 semantics: conditionals, ranges, content negotiation       *)
(* ------------------------------------------------------------------ *)

(* Does the server advertise alternate codings at all?  When it does,
   every file response carries [Vary: Accept-Encoding] — deterministic
   across requests so cached headers stay valid. *)
let vary_gzip t = t.config.gzip_precompressed || t.config.gzip_lazy

let vary_extra t = if vary_gzip t then [ ("Vary", "Accept-Encoding") ] else []

(* Did the client negotiate the gzip coding (and can we offer one)? *)
let wants_gzip t (req : Http.Request.t) =
  vary_gzip t
  && Http.Negotiate.choose ~gzip_available:true
       (Http.Request.header req "accept-encoding")
     = Http.Negotiate.Gzip

let etag_of_string s =
  match Http.Etag.parse s with
  | Some e -> e
  | None -> { Http.Etag.weak = false; opaque = s }

(* One response plan per (request, selected representation): the
   conditional evaluation (RFC 9110 §13.2.2 precedence), then — for a
   proceeding GET — If-Range gating the Range field.  [size] is the
   selected representation's length (a gzip variant plans over its
   compressed bytes). *)
type plan =
  | P_full
  | P_not_modified
  | P_slice of int * int  (* body window: off, len *)
  | P_unsatisfiable
  | P_precondition_failed

let plan_for ~(req : Http.Request.t) ~etag ~mtime ~size =
  let header = Http.Request.header req in
  match Http.Conditional.evaluate ~meth:req.Http.Request.meth ~header ~etag
          ~mtime
  with
  | Http.Conditional.Not_modified -> P_not_modified
  | Http.Conditional.Precondition_failed -> P_precondition_failed
  | Http.Conditional.Proceed -> (
      match req.Http.Request.meth with
      | Http.Request.Head -> P_full  (* Range is GET-only (§14.2) *)
      | _ -> (
          match header "range" with
          | None -> P_full
          | Some r ->
              if not (Http.Conditional.if_range_permits ~header ~etag ~mtime)
              then P_full
              else (
                match Http.Range.plan r ~size with
                | Http.Range.Whole -> P_full
                | Http.Range.Single { off; len } -> P_slice (off, len)
                | Http.Range.Unsatisfiable -> P_unsatisfiable)))

(* 304 without a cache entry (streamed files): rendered per-request. *)
let enqueue_not_modified ?etag ?last_modified ?path t conn
    (req : Http.Request.t) ~keep =
  count_status t 304;
  log_access ~conn ?path t
    ~meth:(Http.Request.meth_to_string req.Http.Request.meth)
    ~target:req.Http.Request.raw_target ~status:304 ~bytes:0;
  let extra =
    (match etag with Some e -> [ ("ETag", e) ] | None -> []) @ vary_extra t
  in
  let header =
    render_header t ~status:Http.Status.Not_modified ~content_type:None
      ~content_length:None ?last_modified ~extra ~keep
  in
  enqueue_string t conn header;
  if not keep then conn.close_after_flush <- true;
  conn.state <- Reading;
  record_latency t conn

(* The zero-copy 304: a cache hit's conditional reply is the entry's
   pre-rendered 304 header — one slice, one gather write, no copies. *)
let enqueue_not_modified_entry ?path t conn (req : Http.Request.t)
    (entry : File_cache.entry) ~keep =
  count_status t 304;
  log_access ~conn ?path t
    ~meth:(Http.Request.meth_to_string req.Http.Request.meth)
    ~target:req.Http.Request.raw_target ~status:304 ~bytes:0;
  enqueue_slice conn
    (if keep then entry.File_cache.header_304_keep
     else entry.File_cache.header_304_close);
  if not keep then conn.close_after_flush <- true;
  conn.state <- Reading;
  record_latency t conn

(* The zero-copy fast path: a cache hit queues the pre-rendered header
   and the mmap-backed body as two slices — one gather write, no
   userspace copies. *)
let enqueue_entry ?path t conn (req : Http.Request.t)
    (entry : File_cache.entry) ~keep ~head_only =
  let body_len = Bigarray.Array1.dim entry.File_cache.body in
  count_status t 200;
  log_access ~conn ?path t
    ~meth:(Http.Request.meth_to_string req.Http.Request.meth)
    ~target:req.Http.Request.raw_target ~status:200
    ~bytes:(if head_only then 0 else body_len);
  enqueue_slice conn
    (if keep then entry.File_cache.header_keep
     else entry.File_cache.header_close);
  if not head_only then enqueue_slice conn entry.File_cache.body;
  if not keep then conn.close_after_flush <- true;
  conn.state <- Reading;
  record_latency t conn

(* Deliberately bypasses the access log: a monitoring scraper polling
   every few seconds would otherwise drown the real traffic records. *)
let enqueue_status t conn (req : Http.Request.t) ~keep ~head_only =
  let body, content_type =
    match status_window req with
    | Some n -> (window_body t n, "application/json")
    | None ->
        let json = wants_json req in
        ( status_body t ~json,
          if json then "application/json" else "text/plain" )
  in
  count_status t 200;
  let header =
    render_header t ~status:Http.Status.Ok ~content_type:(Some content_type)
      ~content_length:(Some (String.length body))
      ~keep
  in
  enqueue_string t conn header;
  if not head_only then enqueue_string t conn body;
  if not keep then conn.close_after_flush <- true;
  conn.state <- Reading;
  record_latency t conn

(* Like the status endpoint, bypasses the access log. *)
let enqueue_metrics t conn ~keep ~head_only =
  let body = metrics_body t in
  count_status t 200;
  let header =
    render_header t ~status:Http.Status.Ok
      ~content_type:(Some "text/plain; version=0.0.4")
      ~content_length:(Some (String.length body))
      ~keep
  in
  enqueue_string t conn header;
  if not head_only then enqueue_string t conn body;
  if not keep then conn.close_after_flush <- true;
  conn.state <- Reading;
  record_latency t conn

(* Like the status endpoint, bypasses the access log. *)
let enqueue_trace t conn ~keep ~head_only =
  let body = trace_body t in
  count_status t 200;
  let header =
    render_header t ~status:Http.Status.Ok
      ~content_type:(Some "application/json")
      ~content_length:(Some (String.length body))
      ~keep
  in
  enqueue_string t conn header;
  if not head_only then enqueue_string t conn body;
  if not keep then conn.close_after_flush <- true;
  conn.state <- Reading;
  record_latency t conn

(* ------------------------------------------------------------------ *)
(* Serving files                                                       *)
(* ------------------------------------------------------------------ *)

let read_whole fd size =
  let buf = Bytes.create size in
  let rec loop off =
    if off >= size then Bytes.unsafe_to_string buf
    else begin
      match Unix.read fd buf off (size - off) with
      | 0 -> Bytes.sub_string buf 0 off
      | n -> loop (off + n)
    end
  in
  loop 0

(* Pre-render an entry's 200 and 304 header pairs (keep-alive and close
   variants each) around a body buffer: a fresh cache entry.  The header
   renders and (when mapping fails) the body read are the miss path's
   counted copies; a mapped body costs none. *)
let build_entry t ~body ~mapped ~mtime ~size ~content_type ~encoding =
  let body_len = Bigarray.Array1.dim body in
  let suffix =
    match encoding with
    | Some "gzip" -> "-gz"
    | Some e -> "-" ^ e
    | None -> ""
  in
  let etag = Http.Etag.make ~suffix ~mtime ~size () in
  let date = Unix.gettimeofday () in
  let extra =
    [ ("ETag", etag); ("Accept-Ranges", "bytes") ]
    @ (match encoding with
      | Some e -> [ ("Content-Encoding", e) ]
      | None -> [])
    @ vary_extra t
  in
  let hk, hc =
    Http.Response.header_pair ~status:Http.Status.Ok
      ~server:t.config.server_name ~date ~last_modified:mtime ~content_type
      ~content_length:body_len ~extra ?align:(align_of t) ()
  in
  let h304k, h304c =
    Http.Response.header_pair ~status:Http.Status.Not_modified
      ~server:t.config.server_name ~date ~last_modified:mtime
      ~extra:([ ("ETag", etag) ] @ vary_extra t)
      ?align:(align_of t) ()
  in
  count_send t ~writev:0 ~writes:0
    ~copied:
      ((if mapped then 0 else body_len)
      + String.length hk + String.length hc + String.length h304k
      + String.length h304c);
  {
    File_cache.body;
    mapped;
    mtime;
    size;
    etag;
    encoding;
    header_keep = Iovec.of_string hk;
    header_close = Iovec.of_string hc;
    header_304_keep = Iovec.of_string h304k;
    header_304_close = Iovec.of_string h304c;
  }

let make_entry t fd full ~size ~mtime =
  let body, mapped = File_cache.map_body fd ~size in
  build_entry t ~body ~mapped ~mtime ~size
    ~content_type:(Http.Mime.of_path full) ~encoding:None

(* Obtain the gzip representation of [full] for a client that
   negotiated it: the cached variant if its origin validators still
   hold, else a fresh [.gz] sibling (never one staler than the origin),
   else — when enabled — an inline stored-block compression of the
   origin body.  The variant is cached beside its origin under the same
   policy and budget; [None] means serve identity. *)
let gzip_entry t ~full ~(origin : File_cache.entry) =
  let mtime = origin.File_cache.mtime and size = origin.File_cache.size in
  match
    with_cache_lock t (fun () ->
        File_cache.find_variant t.cache full ~encoding:"gzip" ~mtime ~size)
  with
  | Some e -> Some e
  | None -> (
      let from_sibling () =
        if not t.config.gzip_precompressed then None
        else
          let sib = full ^ ".gz" in
          match Unix.stat sib with
          | exception Unix.Unix_error _ -> None
          | st
            when st.Unix.st_kind = Unix.S_REG && st.Unix.st_mtime >= mtime -> (
              match Unix.openfile sib [ Unix.O_RDONLY ] 0 with
              | exception Unix.Unix_error _ -> None
              | fd ->
                  let body, mapped =
                    File_cache.map_body fd ~size:st.Unix.st_size
                  in
                  Unix.close fd;
                  Some (body, mapped))
          | _ -> None
      in
      let from_lazy () =
        if not t.config.gzip_lazy then None
        else begin
          let n = Bigarray.Array1.dim origin.File_cache.body in
          let gz =
            Flash_util.Gzip.compress
              (Iovec.sub_string origin.File_cache.body ~off:0 ~len:n)
          in
          (* The compressor reads the body and writes a fresh buffer:
             a counted copy, like any miss-path materialisation. *)
          count_send t ~writev:0 ~writes:0 ~copied:(String.length gz);
          Some (Iovec.of_string gz, false)
        end
      in
      match (match from_sibling () with None -> from_lazy () | s -> s) with
      | None -> None
      | Some (body, mapped) ->
          let entry =
            build_entry t ~body ~mapped ~mtime ~size
              ~content_type:(Http.Mime.of_path full) ~encoding:(Some "gzip")
          in
          with_cache_lock t (fun () ->
              File_cache.insert_variant t.cache full ~encoding:"gzip" entry);
          Some entry)

(* Swap in the gzip representation when the client negotiated one and
   we can produce it; otherwise the identity entry stands. *)
let negotiate_entry t (req : Http.Request.t) ~full entry =
  if wants_gzip t req then
    match gzip_entry t ~full ~origin:entry with
    | Some gz -> gz
    | None -> entry
  else entry

(* 206: the Content-Range header varies per request so it is rendered
   here (a counted copy), but the body is still an offset window into
   the entry's mapping — one gather write, zero body copies. *)
let enqueue_partial t conn (req : Http.Request.t) ~full
    (entry : File_cache.entry) ~keep ~off ~len =
  count_status t 206;
  log_access ~conn ~path:full t
    ~meth:(Http.Request.meth_to_string req.Http.Request.meth)
    ~target:req.Http.Request.raw_target ~status:206 ~bytes:len;
  let extra =
    [
      ( "Content-Range",
        Http.Range.content_range ~off ~len ~size:(File_cache.body_length entry)
      );
      ("ETag", entry.File_cache.etag);
      ("Accept-Ranges", "bytes");
    ]
    @ (match entry.File_cache.encoding with
      | Some e -> [ ("Content-Encoding", e) ]
      | None -> [])
    @ vary_extra t
  in
  let header =
    render_header t ~status:Http.Status.Partial_content
      ~last_modified:entry.File_cache.mtime ~extra
      ~content_type:(Some (Http.Mime.of_path full))
      ~content_length:(Some len) ~keep
  in
  enqueue_string t conn header;
  Sendq.push_slice conn.outq (Iovec.slice ~off ~len entry.File_cache.body);
  if not keep then conn.close_after_flush <- true;
  conn.state <- Reading;
  record_latency t conn

(* The single dispatch point for serving a cache entry (origin or
   negotiated variant) in the event-driven modes: evaluate conditionals
   and the Range field against the selected representation, then take
   the zero-copy path the plan names. *)
let enqueue_response t conn (req : Http.Request.t) ~full
    (entry : File_cache.entry) ~keep ~head_only =
  let target = req.Http.Request.raw_target in
  let meth = Http.Request.meth_to_string req.Http.Request.meth in
  let size = File_cache.body_length entry in
  match
    plan_for ~req
      ~etag:(etag_of_string entry.File_cache.etag)
      ~mtime:entry.File_cache.mtime ~size
  with
  | P_not_modified -> enqueue_not_modified_entry ~path:full t conn req entry ~keep
  | P_precondition_failed ->
      enqueue_error t conn Http.Status.Precondition_failed ~keep ~head_only
        ~target ~meth
  | P_unsatisfiable ->
      enqueue_error t conn Http.Status.Range_not_satisfiable ~keep ~head_only
        ~target ~meth
        ~extra:[ ("Content-Range", Http.Range.content_range_unsatisfied ~size) ]
  | P_full -> enqueue_entry ~path:full t conn req entry ~keep ~head_only
  | P_slice (off, len) -> enqueue_partial t conn req ~full entry ~keep ~off ~len

(* The file is known to exist with [size]/[mtime] (from a helper's stat
   or an inline one).  Small files are cached as mmap-backed entries
   with their pre-rendered headers — even a 304 warms the cache; large
   files plan against the stat's validators and stream from the
   descriptor. *)
let serve_file t conn (req : Http.Request.t) full ~size ~mtime ~keep =
  let head_only = req.Http.Request.meth = Http.Request.Head in
  let target = req.Http.Request.raw_target in
  let meth = Http.Request.meth_to_string req.Http.Request.meth in
  match Unix.openfile full [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ ->
      enqueue_error t conn Http.Status.Not_found ~keep ~head_only ~target ~meth
  | fd ->
      if size <= t.config.max_cached_file then begin
        let entry = make_entry t fd full ~size ~mtime in
        Unix.close fd;
        with_cache_lock t (fun () -> File_cache.insert t.cache full entry);
        let entry = negotiate_entry t req ~full entry in
        enqueue_response t conn req ~full entry ~keep ~head_only
      end
      else begin
        (* Streamed: no cache entry, so validators come straight from
           the stat; gzip negotiation is skipped (no mapped origin body
           to compress, and siblings of this size would not be cached
           either). *)
        let etag_s = Http.Etag.make ~mtime ~size () in
        let finish_error status ?extra () =
          Unix.close fd;
          enqueue_error t conn status ?extra ~keep ~head_only ~target ~meth
        in
        match plan_for ~req ~etag:(etag_of_string etag_s) ~mtime ~size with
        | P_not_modified ->
            Unix.close fd;
            enqueue_not_modified ~path:full t conn req ~etag:etag_s
              ~last_modified:mtime ~keep
        | P_precondition_failed ->
            finish_error Http.Status.Precondition_failed ()
        | P_unsatisfiable ->
            finish_error Http.Status.Range_not_satisfiable
              ~extra:
                [ ("Content-Range", Http.Range.content_range_unsatisfied ~size) ]
              ()
        | P_slice (off, len) ->
            count_status t 206;
            log_access ~conn ~path:full t ~meth ~target ~status:206 ~bytes:len;
            let extra =
              [
                ("Content-Range", Http.Range.content_range ~off ~len ~size);
                ("ETag", etag_s);
                ("Accept-Ranges", "bytes");
              ]
              @ vary_extra t
            in
            let header =
              render_header t ~status:Http.Status.Partial_content
                ~last_modified:mtime ~extra
                ~content_type:(Some (Http.Mime.of_path full))
                ~content_length:(Some len) ~keep
            in
            enqueue_string t conn header;
            ignore (Unix.lseek fd off Unix.SEEK_SET);
            Sendq.push_file conn.outq fd ~len;
            if not keep then conn.close_after_flush <- true;
            conn.state <- Reading;
            record_latency t conn
        | P_full ->
            count_status t 200;
            log_access ~conn ~path:full t ~meth ~target ~status:200
              ~bytes:(if head_only then 0 else size);
            let header =
              render_header t ~status:Http.Status.Ok ~last_modified:mtime
                ~extra:([ ("ETag", etag_s); ("Accept-Ranges", "bytes") ]
                        @ vary_extra t)
                ~content_type:(Some (Http.Mime.of_path full))
                ~content_length:(Some size) ~keep
            in
            enqueue_string t conn header;
            if head_only then Unix.close fd
            else Sendq.push_file conn.outq fd ~len:size;
            if not keep then conn.close_after_flush <- true;
            conn.state <- Reading;
            record_latency t conn
      end

(* ------------------------------------------------------------------ *)
(* CGI                                                                 *)
(* ------------------------------------------------------------------ *)

let start_cgi t conn (req : Http.Request.t) full ~keep:_ =
  (* CGI output has no Content-Length: delimit by connection close. *)
  match Unix.stat full with
  | exception Unix.Unix_error _ ->
      enqueue_error t conn Http.Status.Not_found ~keep:false ~head_only:false
  | st when st.Unix.st_kind <> Unix.S_REG || st.Unix.st_perm land 0o111 = 0 ->
      enqueue_error t conn Http.Status.Forbidden ~keep:false ~head_only:false
  | _ -> (
      match Unix.pipe () with
      | exception Unix.Unix_error _ ->
          enqueue_error t conn Http.Status.Internal_server_error ~keep:false
            ~head_only:false
      | pipe_read, pipe_write ->
          let env =
            [|
              "GATEWAY_INTERFACE=CGI/1.1";
              "REQUEST_METHOD=" ^ Http.Request.meth_to_string req.Http.Request.meth;
              "QUERY_STRING=" ^ Option.value ~default:"" req.Http.Request.query;
              "SCRIPT_NAME=" ^ req.Http.Request.path;
              "SERVER_SOFTWARE=" ^ t.config.server_name;
            |]
          in
          let dev_null = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
          let pid =
            Unix.create_process_env full [| full |] env dev_null pipe_write
              Unix.stderr
          in
          Unix.close dev_null;
          Unix.close pipe_write;
          Unix.set_nonblock pipe_read;
          count_status t 200;
          let header =
            render_header t ~status:Http.Status.Ok ~content_type:None
              ~content_length:None ~keep:false
          in
          enqueue_string t conn header;
          conn.close_after_flush <- false;
          conn.state <- Streaming_cgi (pipe_read, pid);
          t.cgi_inflight <- t.cgi_inflight + 1;
          (* Wall-clock deadline: a wedged script is killed rather than
             holding the connection (and a helper-less loop's pipe slot)
             forever. *)
          if t.config.cgi_timeout > 0. then
            conn.cgi_timer <-
              Some
                (Evio.Timer_wheel.schedule t.wheel
                   ~at:(t.config.clock () +. t.config.cgi_timeout)
                   (T_cgi conn)))

(* ------------------------------------------------------------------ *)
(* Request processing                                                  *)
(* ------------------------------------------------------------------ *)

let process_request t conn (req : Http.Request.t) =
  t.n_requests <- t.n_requests + 1;
  let keep = Http.Request.keep_alive req in
  let head_only = req.Http.Request.meth = Http.Request.Head in
  match req.Http.Request.meth with
  | Http.Request.Post | Http.Request.Other _ ->
      enqueue_error t conn Http.Status.Not_implemented ~keep:false ~head_only
  | Http.Request.Get | Http.Request.Head -> (
      if is_status_request t req then enqueue_status t conn req ~keep ~head_only
      else if is_metrics_request t req then
        enqueue_metrics t conn ~keep ~head_only
      else if is_trace_request t req then
        enqueue_trace t conn ~keep ~head_only
      else begin
        (* Pathname translation + cache lookup, as its own span. *)
        let resolve_sp = ref None in
        with_tracer t (fun tracer ->
            match conn.trace with
            | Some tr ->
                resolve_sp :=
                  Some
                    (Obs.Trace.begin_span tracer tr ~track:(current_track t)
                       "resolve")
            | None -> ());
        let end_resolve () =
          with_tracer t (fun tracer ->
              match !resolve_sp with
              | Some sp ->
                  Obs.Trace.end_span tracer sp;
                  resolve_sp := None
              | None -> ())
        in
        match resolve t req with
        | Error status ->
            end_resolve ();
            enqueue_error t conn status ~keep ~head_only
        | Ok path when is_cgi path ->
            end_resolve ();
            let cgi_full =
              match t.guard with
              | Some g -> (
                  match (Guard.config g).Guard.max_cgi_inflight with
                  | Some cap -> t.cgi_inflight >= cap
                  | None -> false)
              | None -> false
            in
            if not t.config.enable_cgi then
              enqueue_error t conn Http.Status.Forbidden ~keep ~head_only
            else if cgi_full then begin
              (* Every CGI slot holds a live child process; refuse early
                 with advice rather than fork past the cap. *)
              guard_shed t Guard.Cgi_limit;
              enqueue_error ~extra:(guard_retry t) t conn
                Http.Status.Service_unavailable ~keep ~head_only
            end
            else begin
              begin_work_span t conn "cgi";
              start_cgi t conn req (t.config.docroot ^ path) ~keep
            end
        | Ok path -> (
            let full = t.config.docroot ^ path in
            match
              with_cache_lock t (fun () -> File_cache.find_trusted t.cache full)
            with
            | Some entry ->
                end_resolve ();
                (* Attribute the hit when a prefetch put this entry
                   here before any client asked for it. *)
                (match t.warm with
                | Some w when Hashtbl.mem w.w_warmed full ->
                    Hashtbl.remove w.w_warmed full;
                    Obs.Counter.incr w.w_hits_after
                | _ -> ());
                let entry = negotiate_entry t req ~full entry in
                enqueue_response t conn req ~full entry ~keep ~head_only
            | None -> (
                end_resolve ();
                match t.helper with
                | Some helper -> (
                    (* AMPED: all disk work (stat + read) in a helper.
                       The queue-wait and disk spans are stitched in when
                       the completion comes back.  Two gates first: the
                       shedder can refuse queue admission outright, and
                       the bounded queue can refuse at the door — both
                       answer an early 503 with advice instead of
                       letting the backlog grow. *)
                    let admission =
                      match t.guard with
                      | Some g -> Guard.queue_admission g
                      | None -> Guard.Admit
                    in
                    match admission with
                    | Guard.Reject _ ->
                        enqueue_error ~extra:(guard_retry t) t conn
                          Http.Status.Service_unavailable ~keep ~head_only
                    | Guard.Admit ->
                        if Helper.dispatch helper ~key:conn.key ~path:full
                        then begin
                          Hashtbl.replace t.by_helper_key conn.key conn;
                          conn.state <- Waiting_helper (req, full)
                        end
                        else begin
                          guard_shed t Guard.Helper_queue;
                          enqueue_error ~extra:(guard_retry t) t conn
                            Http.Status.Service_unavailable ~keep ~head_only
                        end)
                | None -> (
                    (* SPED: inline — the whole loop stalls on a miss,
                       and the disk span lands on the main-loop track. *)
                    begin_work_span t conn "disk-read";
                    slow_read_hook t full;
                    match Unix.stat full with
                    | exception Unix.Unix_error _ ->
                        enqueue_error t conn Http.Status.Not_found ~keep
                          ~head_only
                    | st when st.Unix.st_kind <> Unix.S_REG ->
                        enqueue_error t conn Http.Status.Forbidden ~keep
                          ~head_only
                    | st ->
                        serve_file t conn req full ~size:st.Unix.st_size
                          ~mtime:st.Unix.st_mtime ~keep)))
      end)

let rec try_parse t conn =
  if conn.state = Reading && conn.inbuf <> "" then begin
    ensure_trace t conn;
    (* Slow-header defense: from the first byte of a request head, the
       rest must arrive within the deadline.  One one-shot timer per
       head; cancelled the moment the head parses (or fails to). *)
    (match t.guard with
    | Some g
      when conn.hdr_timer = None && (Guard.config g).Guard.header_deadline > 0.
      ->
        conn.hdr_timer <-
          Some
            (Evio.Timer_wheel.schedule t.wheel
               ~at:(t.config.clock () +. (Guard.config g).Guard.header_deadline)
               (T_hdr conn))
    | _ -> ());
    match Http.Request.parse conn.inbuf with
    | Http.Request.Incomplete -> ()
    | Http.Request.Bad _ ->
        conn.hdr_timer <- cancel_timer t conn.hdr_timer;
        conn.inbuf <- "";
        conn.req_start <- t.config.clock ();
        end_parse_span t conn ~label:"bad-request";
        t.n_requests <- t.n_requests + 1;
        let body = Http.Response.error_body Http.Status.Bad_request in
        let header =
          render_header t ~status:Http.Status.Bad_request
            ~content_type:(Some "text/html")
            ~content_length:(Some (String.length body))
            ~keep:false
        in
        t.n_errors <- t.n_errors + 1;
        count_status t 400;
        enqueue_string t conn header;
        enqueue_string t conn body;
        conn.close_after_flush <- true;
        record_latency t conn
    | Http.Request.Complete (req, consumed) ->
        conn.hdr_timer <- cancel_timer t conn.hdr_timer;
        conn.inbuf <-
          String.sub conn.inbuf consumed (String.length conn.inbuf - consumed);
        conn.req_start <- t.config.clock ();
        end_parse_span t conn
          ~label:
            (Http.Request.meth_to_string req.Http.Request.meth
            ^ " " ^ req.Http.Request.raw_target);
        let rate_verdict =
          match t.guard with
          | Some g -> Guard.on_request g ~peer:conn.peer
          | None -> Guard.Admit
        in
        (match rate_verdict with
        | Guard.Reject _ ->
            (* Over the per-peer rate cap (the guard counted the shed):
               429 with advice, and drop the connection so a looping
               client can't ride keep-alive. *)
            t.n_requests <- t.n_requests + 1;
            enqueue_error ~extra:(guard_retry t) t conn
              Http.Status.Too_many_requests ~keep:false ~head_only:false
        | Guard.Admit -> process_request t conn req);
        (* Pipelined requests are handled once the response drains. *)
        if Sendq.is_empty conn.outq then try_parse t conn
  end

(* ------------------------------------------------------------------ *)
(* Connection IO                                                       *)
(* ------------------------------------------------------------------ *)

(* Forget the CGI pipe's registration (before the fd is closed, so the
   backend never holds a recycled descriptor). *)
let unregister_cgi t conn =
  match conn.cgi_fd_registered with
  | None -> ()
  | Some pfd ->
      Evio.Backend.deregister t.evio pfd;
      Hashtbl.remove t.fd_owners pfd;
      conn.cgi_fd_registered <- None

let close_conn t conn =
  if conn.alive then begin
    conn.alive <- false;
    (* A request still in flight (client hung up, error path) gets its
       trace closed here rather than lost. *)
    finish_request_trace ~closing:true t conn;
    unregister_cgi t conn;
    conn.idle_timer <- cancel_timer t conn.idle_timer;
    conn.cgi_timer <- cancel_timer t conn.cgi_timer;
    conn.hdr_timer <- cancel_timer t conn.hdr_timer;
    conn.xfer_timer <- cancel_timer t conn.xfer_timer;
    (match t.guard with
    | Some g -> Guard.on_disconnect g ~peer:conn.peer
    | None -> ());
    (match conn.state with
    | Streaming_cgi (fd, pid) ->
        t.cgi_inflight <- t.cgi_inflight - 1;
        (try Unix.close fd with Unix.Unix_error _ -> ());
        (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
    | Reading | Waiting_helper _ -> ());
    Sendq.close_files conn.outq;
    Sendq.clear conn.outq;
    Hashtbl.remove t.conns conn.key;
    Hashtbl.remove t.by_helper_key conn.key;
    if conn.registered then begin
      Evio.Backend.deregister t.evio conn.fd;
      conn.registered <- false
    end;
    Hashtbl.remove t.fd_owners conn.fd;
    with_obs_lock t (fun () -> Obs.Gauge.decr t.active);
    try Unix.close conn.fd with Unix.Unix_error _ -> ()
  end

(* Reconcile a connection's readiness interest with its state: read
   while parsing, write while the send queue has bytes, and the CGI
   pipe while streaming.  Diffed against the last pushed interest so an
   unchanged connection costs no syscall ([epoll_ctl]) and no rebuild
   (poll). *)
let sync_conn t conn =
  if conn.alive then begin
    let r = conn.state = Reading in
    let w = not (Sendq.is_empty conn.outq) in
    if (not conn.registered) || r <> conn.want_read || w <> conn.want_write
    then begin
      Evio.Backend.modify t.evio conn.fd ~read:r ~write:w;
      conn.registered <- true;
      conn.want_read <- r;
      conn.want_write <- w
    end;
    match (conn.state, conn.cgi_fd_registered) with
    | Streaming_cgi (pfd, _), None -> (
        (* The CGI pipe fd can itself land beyond select's FD_SETSIZE;
           a stream we cannot wait on must drop the connection rather
           than the loop. *)
        match Evio.Backend.register t.evio pfd ~read:true ~write:false with
        | () ->
            Hashtbl.replace t.fd_owners pfd (O_cgi conn);
            conn.cgi_fd_registered <- Some pfd
        | exception Evio.Backend_full _ -> close_conn t conn)
    | _ -> ()
  end

(* The head-request buffer: reads land in the connection's reusable
   scratch and append to [inbuf].  The cap bounds parse-buffer growth
   against a client streaming junk or very deep pipelines. *)
let max_inbuf = 262144

let handle_readable t conn =
  let cap = Bytes.length conn.readbuf in
  match Unix.read conn.fd conn.readbuf 0 cap with
  | 0 -> close_conn t conn
  | n ->
      conn.last_active <- t.config.clock ();
      conn.recv_bytes <- conn.recv_bytes + n;
      conn.inbuf <- conn.inbuf ^ Bytes.sub_string conn.readbuf 0 n;
      if String.length conn.inbuf > max_inbuf then close_conn t conn
      else try_parse t conn
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error _ -> close_conn t conn

(* Flush queued slices with gather writes: everything contiguous at the
   head of the queue — header + body of one response, or several
   pipelined responses — goes to the kernel in one [writev].  A partial
   write advances slice offsets in place and waits for the next
   writability event.  With the copying fallback the same gather is
   staged through the scratch buffer and written with one scalar
   [write] — the measured difference between the two paths. *)
let handle_writable t conn =
  conn.last_active <- t.config.clock ();
  let progress = ref true in
  (try
     while !progress && not (Sendq.is_empty conn.outq) do
       match Sendq.head conn.outq with
       | Some (Sendq.Slice _) ->
           let slices = Sendq.gather conn.outq in
           let total = Iovec.total_length slices in
           let written, partial =
             if t.gather_writes then begin
               let n = Iovec.writev conn.fd slices in
               count_send t ~writev:1 ~writes:0 ~copied:0 ~sent:n;
               (n, n < total)
             end
             else begin
               let n, copied =
                 Iovec.writev_copy ~scratch:t.send_scratch conn.fd slices
               in
               count_send t ~writev:0 ~writes:1 ~copied ~sent:n;
               (n, n < copied)
             end
           in
           Sendq.advance conn.outq written;
           conn.sent_bytes <- conn.sent_bytes + written;
           if partial then progress := false
       | Some (Sendq.File f) ->
           let chunk = min 65536 f.remaining in
           let data = read_whole f.src chunk in
           let n = Unix.write_substring conn.fd data 0 (String.length data) in
           count_send t ~writev:0 ~writes:1 ~copied:(String.length data) ~sent:n;
           conn.sent_bytes <- conn.sent_bytes + n;
           (* A short write drops the tail of this chunk; re-read it via
              the file offset by seeking back. *)
           if n < String.length data then begin
             ignore (Unix.lseek f.src (n - String.length data) Unix.SEEK_CUR);
             progress := false
           end;
           f.remaining <- f.remaining - n;
           if f.remaining <= 0 || String.length data < chunk then begin
             Unix.close f.src;
             Sendq.pop conn.outq
           end
       | None -> progress := false
     done
   with
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  | Unix.Unix_error _ -> close_conn t conn);
  if conn.alive && Sendq.is_empty conn.outq then begin
    match conn.state with
    | Streaming_cgi _ -> ()  (* more output may come from the pipe *)
    | Reading | Waiting_helper _ ->
        (* Response fully flushed: the write span (opened when the
           response was generated) closes the request's trace here. *)
        if conn.write_span <> None then finish_request_trace t conn;
        if conn.close_after_flush then close_conn t conn
        else try_parse t conn
  end

let handle_cgi_readable t conn fd pid =
  let buf = Bytes.create 16384 in
  match Unix.read fd buf 0 16384 with
  | 0 ->
      unregister_cgi t conn;
      conn.cgi_timer <- cancel_timer t conn.cgi_timer;
      t.cgi_inflight <- t.cgi_inflight - 1;
      (try Unix.close fd with Unix.Unix_error _ -> ());
      (try ignore (Unix.waitpid [ Unix.WNOHANG ] pid) with Unix.Unix_error _ -> ());
      conn.state <- Reading;
      conn.close_after_flush <- true;
      record_latency t conn;
      if Sendq.is_empty conn.outq then close_conn t conn
  | n -> enqueue_string t conn (Bytes.sub_string buf 0 n)
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error _ ->
      unregister_cgi t conn;
      conn.cgi_timer <- cancel_timer t conn.cgi_timer;
      t.cgi_inflight <- t.cgi_inflight - 1;
      (try Unix.close fd with Unix.Unix_error _ -> ());
      conn.state <- Reading;
      conn.close_after_flush <- true;
      record_latency t conn

(* A prefetch job finished: the helper already paged the file in, so
   the mmap + header rendering here never touch cold disk.  The entry
   is inserted like any miss-path fill and pinned while the hot tier
   has room — the rest of the pinning happens at the next mining
   cycle's re-rank. *)
let handle_prefetch_completion t w (c : Helper.completion) =
  match Hashtbl.find_opt w.w_prefetching c.Helper.key with
  | None -> ()
  | Some full -> (
      Hashtbl.remove w.w_prefetching c.Helper.key;
      match c.Helper.result with
      | Helper.Missing -> Obs.Counter.incr w.w_failed
      | Helper.Found { size; mtime } -> (
          if size > t.config.max_cached_file then Obs.Counter.incr w.w_failed
          else
            match Unix.openfile full [ Unix.O_RDONLY ] 0 with
            | exception Unix.Unix_error _ -> Obs.Counter.incr w.w_failed
            | fd ->
                let entry = make_entry t fd full ~size ~mtime in
                Unix.close fd;
                with_cache_lock t (fun () ->
                    File_cache.insert t.cache full entry;
                    if
                      (not (File_cache.pinned t.cache full))
                      && File_cache.pinned_bytes t.cache
                         + File_cache.entry_weight entry
                         <= w.w_pin_budget
                    then ignore (File_cache.pin t.cache full));
                if Hashtbl.length w.w_warmed >= warmed_limit then
                  Hashtbl.reset w.w_warmed;
                Hashtbl.replace w.w_warmed full ();
                Obs.Counter.incr w.w_completed))

let handle_helper_completions t =
  match t.helper with
  | None -> ()
  | Some helper ->
      let completions = Helper.drain helper in
      List.iter
        (fun (c : Helper.completion) ->
          (* Negative keys are prefetch jobs: no connection waits. *)
          if c.Helper.key < 0 then
            match t.warm with
            | Some w -> handle_prefetch_completion t w c
            | None -> ()
          else
          match Hashtbl.find_opt t.by_helper_key c.Helper.key with
          | None -> ()  (* connection died while the helper worked *)
          | Some conn -> (
              Hashtbl.remove t.by_helper_key c.Helper.key;
              match conn.state with
              | Waiting_helper (req, full) -> (
                  (* Stitch the helper's measured boundaries into the
                     waiting request's trace, attributed to the helper
                     track: queue wait, then the blocking disk work. *)
                  with_tracer t (fun tracer ->
                      match conn.trace with
                      | Some tr ->
                          Obs.Trace.add_span tracer ~track:"helper"
                            ~name:"helper-queue" ~start:c.Helper.enqueued
                            ~stop:c.Helper.started tr;
                          Obs.Trace.add_span tracer ~track:"helper"
                            ~name:"disk-read" ~start:c.Helper.started
                            ~stop:c.Helper.finished tr
                      | None -> ());
                  let keep = Http.Request.keep_alive req in
                  let head_only = req.Http.Request.meth = Http.Request.Head in
                  match c.Helper.result with
                  | Helper.Missing ->
                      enqueue_error t conn Http.Status.Not_found ~keep ~head_only
                  | Helper.Found { size; mtime } ->
                      serve_file t conn req full ~size ~mtime ~keep);
                  sync_conn t conn
              | Reading | Streaming_cgi _ -> ()))
        completions

(* ------------------------------------------------------------------ *)
(* Accepting                                                           *)
(* ------------------------------------------------------------------ *)

let accept_backoff_initial = 0.05
let accept_backoff_max = 1.0

(* EMFILE/ENFILE on accept: park the listen fd's read interest instead
   of spinning on a connection we cannot take (level-triggered
   readiness would wake the loop at full speed otherwise), and let a
   timer re-arm it after a backoff that doubles while the descriptor
   table stays full. *)
let pause_accept t =
  Obs.Counter.incr t.accept_emfile;
  if not t.accept_paused then begin
    t.accept_paused <- true;
    Evio.Backend.modify t.evio t.listen_fd ~read:false ~write:false;
    let delay = t.accept_backoff in
    t.accept_backoff <-
      Float.min accept_backoff_max (t.accept_backoff *. 2.);
    ignore
      (Evio.Timer_wheel.schedule t.wheel
         ~at:(t.config.clock () +. delay)
         T_resume_accept)
  end

(* The guard keys peers by address only (no port): every connection
   from one host shares a ledger.  [getpeername] rather than the accept
   sockaddr so the hand-off path (shard adopting a coordinator-accepted
   fd) resolves the same way. *)
let peer_of_fd fd =
  match Unix.getpeername fd with
  | Unix.ADDR_INET (addr, _) -> Unix.string_of_inet_addr addr
  | Unix.ADDR_UNIX path -> "unix:" ^ path
  | exception Unix.Unix_error _ -> "unknown"

(* Refuse a connection at the door: one best-effort write of a minimal
   error response (the socket buffer is empty, so a short write only
   truncates the refusal), then close.  No connection record is built
   and the guard ledger was never charged. *)
let refuse_fd t fd reason =
  let status =
    match reason with
    | Guard.Conn_limit | Guard.Rate_limit -> Http.Status.Too_many_requests
    | _ -> Http.Status.Service_unavailable
  in
  t.n_connections <- t.n_connections + 1;
  t.n_requests <- t.n_requests + 1;
  t.n_errors <- t.n_errors + 1;
  count_status t (Http.Status.code status);
  let retry =
    match t.guard with
    | Some g -> (Guard.config g).Guard.retry_after
    | None -> 1
  in
  let body = Http.Response.error_body status in
  let header =
    render_header t ~status
      ~extra:[ Http.Response.retry_after retry ]
      ~content_type:(Some "text/html")
      ~content_length:(Some (String.length body))
      ~keep:false
  in
  let payload = header ^ body in
  (try ignore (Unix.write_substring fd payload 0 (String.length payload))
   with Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

(* Adopt an accepted fd into this instance's event loop: create the
   connection record, register interest, arm the idle timer.  Shared by
   the direct accept path and the hand-off pop path (a shard adopting
   an fd the coordinator accepted).  Returns [false] when the backend
   refused the fd (shed; the caller decides whether to back off). *)
let adopt_fd t fd =
  Unix.set_nonblock fd;
  (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
  let peer = peer_of_fd fd in
  match
    match t.guard with
    | Some g -> Guard.on_connect g ~peer
    | None -> Guard.Admit
  with
  | Guard.Reject reason ->
      (* Refused at the door, but the listen socket is fine: keep
         accepting (return [true] so the caller doesn't back off). *)
      refuse_fd t fd reason;
      true
  | Guard.Admit ->
  let key = t.next_key in
  t.next_key <- t.next_key + 1;
  t.n_connections <- t.n_connections + 1;
  with_obs_lock t (fun () -> Obs.Gauge.incr t.active);
  let now = t.config.clock () in
  let conn =
    {
      fd;
      key;
      peer;
      inbuf = "";
      readbuf = Bytes.create 65536;
      outq = Sendq.create ();
      state = Reading;
      close_after_flush = false;
      last_active = now;
      req_start = now;
      alive = true;
      accepted_at = now;
      reqs_served = 0;
      want_read = false;
      want_write = false;
      registered = false;
      cgi_fd_registered = None;
      idle_timer = None;
      cgi_timer = None;
      hdr_timer = None;
      xfer_timer = None;
      sent_bytes = 0;
      recv_bytes = 0;
      xfer_mark = 0;
      trace = None;
      parse_span = None;
      work_span = None;
      write_span = None;
    }
  in
  Hashtbl.replace t.conns key conn;
  Hashtbl.replace t.fd_owners fd (O_client conn);
  match sync_conn t conn with
  | () ->
      if t.config.idle_timeout > 0. then
        conn.idle_timer <-
          Some
            (Evio.Timer_wheel.schedule t.wheel
               ~at:(now +. t.config.idle_timeout)
               (T_idle conn));
      (match t.guard with
      | Some g when (Guard.config g).Guard.min_byte_rate > 0. ->
          conn.xfer_timer <-
            Some
              (Evio.Timer_wheel.schedule t.wheel
                 ~at:(now +. (Guard.config g).Guard.transfer_interval)
                 (T_xfer conn))
      | _ -> ());
      true
  | exception Evio.Backend_full _ ->
      (* select cannot wait on fd numbers >= FD_SETSIZE: shed this
         connection; the caller backs off exactly as if the process
         were out of descriptors. *)
      close_conn t conn;
      false

(* Hand an accepted fd to a shard over the ring, then poke one shard's
   wake pipe round-robin.  Whoever wakes first drains the ring, so the
   rotation spreads wakeups, not strictly connections — same spirit as
   the kernel's reuseport balancing, without a lock. *)
let handoff_fd t ring fd =
  if Handoff.push ring fd then begin
    let n = Array.length t.shards in
    if n > 0 then begin
      let sh = t.shards.(t.handoff_rr mod n) in
      t.handoff_rr <- t.handoff_rr + 1;
      try ignore (Unix.write sh.wake_write (Bytes.of_string "x") 0 1)
      with Unix.Unix_error _ -> ()
    end
  end
  else begin
    (* Every shard is saturated: shed at the door, like EMFILE. *)
    Obs.Counter.incr t.handoff_shed;
    try Unix.close fd with Unix.Unix_error _ -> ()
  end

let accept_all t =
  let rec loop () =
    let injected =
      match t.config.accept_fault with Some f -> f () | None -> false
    in
    if injected then pause_accept t
    else
      match Unix.accept t.listen_fd with
      | fd, _ -> (
          t.accept_backoff <- accept_backoff_initial;
          match t.role with
          | Shard_coordinator { ring = Some ring } ->
              handoff_fd t ring fd;
              loop ()
          | _ -> if adopt_fd t fd then loop () else pause_accept t)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          ()
      | exception Unix.Unix_error ((Unix.EMFILE | Unix.ENFILE), _, _) ->
          pause_accept t
      | exception Unix.Unix_error _ -> ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* The event loop                                                      *)
(* ------------------------------------------------------------------ *)

(* Idle timers are lazy: activity only updates [last_active]; when the
   timer fires we either close a genuinely idle connection or push the
   timer out to [last_active + idle_timeout].  A busy keep-alive
   connection costs one wheel operation per idle_timeout, not one per
   request — and nothing scans every connection every iteration. *)
let handle_timer t ~now ev =
  match ev with
  | T_idle conn ->
      conn.idle_timer <- None;
      if conn.alive then
        if
          conn.state = Reading
          && Sendq.is_empty conn.outq
          && now -. conn.last_active > t.config.idle_timeout
        then close_conn t conn
        else
          let at =
            if conn.state = Reading && Sendq.is_empty conn.outq then
              conn.last_active +. t.config.idle_timeout
            else now +. t.config.idle_timeout
          in
          conn.idle_timer <-
            Some (Evio.Timer_wheel.schedule t.wheel ~at (T_idle conn))
  | T_cgi conn -> (
      conn.cgi_timer <- None;
      if conn.alive then
        match conn.state with
        | Streaming_cgi (_, pid) ->
            (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
            close_conn t conn
        | Reading | Waiting_helper _ -> ())
  | T_resume_accept ->
      if t.accept_paused then begin
        t.accept_paused <- false;
        Evio.Backend.modify t.evio t.listen_fd ~read:true ~write:false;
        accept_all t
      end
  | T_rollup ->
      (* Periodic flight-recorder tick, so windows close on an idle
         server too; request paths also tick opportunistically. *)
      tick_recorder t;
      let interval =
        match t.recorder with
        | Some r -> Obs.Recorder.interval r
        | None -> t.config.recorder_interval
      in
      ignore
        (Evio.Timer_wheel.schedule t.wheel ~at:(now +. interval) T_rollup)
  | T_hdr conn ->
      conn.hdr_timer <- None;
      (* The deadline only fires while a head is still incomplete —
         [try_parse] cancels it on Complete and Bad.  Discard the
         partial bytes and answer 408; a byte-at-a-time sender gets a
         response and a close instead of a held parse buffer. *)
      if conn.alive && conn.state = Reading && conn.inbuf <> "" then begin
        guard_shed t Guard.Slow_header;
        conn.inbuf <- "";
        t.n_requests <- t.n_requests + 1;
        enqueue_error t conn Http.Status.Request_timeout ~keep:false
          ~head_only:false;
        sync_conn t conn
      end
  | T_xfer conn -> (
      conn.xfer_timer <- None;
      if conn.alive then
        match t.guard with
        | None -> ()
        | Some g ->
            let moved = conn.sent_bytes + conn.recv_bytes - conn.xfer_mark in
            let cfg = Guard.config g in
            if
              (not (Sendq.is_empty conn.outq))
              && Guard.transfer_stalled cfg ~bytes_moved:moved
                   ~interval:cfg.Guard.transfer_interval
            then begin
              (* Mid-response and moving below the floor: the response
                 header is already on the wire, so there is nothing to
                 send but the close itself. *)
              guard_shed t Guard.Slow_client;
              close_conn t conn
            end
            else begin
              conn.xfer_mark <- conn.sent_bytes + conn.recv_bytes;
              conn.xfer_timer <-
                Some
                  (Evio.Timer_wheel.schedule t.wheel
                     ~at:(now +. cfg.Guard.transfer_interval)
                     (T_xfer conn))
            end)
  | T_guard_tick -> (
      match t.guard with
      | None -> ()
      | Some g ->
          Guard.sweep g;
          (match t.slo with
          | Some slo ->
              Guard.note_pressure g
                ~state_code:(Obs.Slo.state_code slo)
                ~burn:(Obs.Slo.burn slo)
          | None -> ());
          (* At Shed_idle and above, give back the cheapest standing
             work first: keep-alive connections that served their
             requests and have sat idle past the shed threshold. *)
          (if Guard.level g <> Guard.Normal then begin
             let cutoff = (Guard.config g).Guard.shed_idle_after in
             let victims =
               Hashtbl.fold
                 (fun _ conn acc ->
                   if
                     conn.alive && conn.state = Reading && conn.inbuf = ""
                     && Sendq.is_empty conn.outq
                     && conn.reqs_served > 0
                     && now -. conn.last_active >= cutoff
                   then conn :: acc
                   else acc)
                 t.conns []
             in
             List.iter
               (fun conn ->
                 guard_shed t Guard.Idle_reap;
                 close_conn t conn)
               victims
           end);
          ignore
            (Evio.Timer_wheel.schedule t.wheel
               ~at:(now +. t.config.recorder_interval)
               T_guard_tick))
  | T_warm -> (
      match (t.warm, t.helper) with
      | Some w, Some helper ->
          Obs.Counter.incr w.w_cycles;
          (* 1. Absorb the demand observed since the last cycle:
             per-path hit deltas plus fresh doorkeeper rejections. *)
          let stats, rejected =
            with_cache_lock t (fun () ->
                ( File_cache.fold_paths t.cache ~init:[] ~f:(fun acc p ks ->
                      (p, ks) :: acc),
                  File_cache.rejected_paths t.cache ))
          in
          Flash_warm.Warm.absorb w.w_absorber w.w_miner ~now ~stats ~rejected;
          (* 2. Re-rank within the pinned-tier byte budget. *)
          let candidates =
            Flash_warm.Miner.rank w.w_miner ~now
              ~top_k:w.w_conf.Flash_warm.Warm.top_k
              ~budget_bytes:w.w_pin_budget
          in
          Obs.Counter.add w.w_ranked (List.length candidates);
          let want = Hashtbl.create 64 in
          List.iter
            (fun (c : Flash_warm.Miner.candidate) ->
              Hashtbl.replace want c.Flash_warm.Miner.c_path ())
            candidates;
          (* 3. Re-pin the hot tier: release pins that fell out of the
             ranking, pin ranked paths already resident (never past the
             byte bound — entry weights include headers the miner does
             not see). *)
          let to_fetch =
            with_cache_lock t (fun () ->
                List.iter
                  (fun p ->
                    if not (Hashtbl.mem want p) then
                      ignore (File_cache.unpin t.cache p))
                  (File_cache.pinned_paths t.cache);
                List.filter
                  (fun (c : Flash_warm.Miner.candidate) ->
                    let p = c.Flash_warm.Miner.c_path in
                    if File_cache.resident t.cache p then begin
                      if
                        (not (File_cache.pinned t.cache p))
                        && File_cache.pinned_bytes t.cache
                           + c.Flash_warm.Miner.c_bytes
                           <= w.w_pin_budget
                      then ignore (File_cache.pin t.cache p);
                      false
                    end
                    else true)
                  candidates)
          in
          (* 4. Prefetch what is ranked but absent, on the helpers' low
             lane — never competing with client-triggered reads — and
             only while the shedder admits queue work at all. *)
          let admit =
            match t.guard with
            | Some g -> Guard.queue_admission g = Guard.Admit
            | None -> true
          in
          if admit then
            List.iter
              (fun (c : Flash_warm.Miner.candidate) ->
                let p = c.Flash_warm.Miner.c_path in
                let in_flight =
                  Hashtbl.fold
                    (fun _ q acc -> acc || String.equal p q)
                    w.w_prefetching false
                in
                if not in_flight then begin
                  let key = w.w_next_key in
                  w.w_next_key <- key - 1;
                  if Helper.dispatch_low helper ~key ~path:p then begin
                    Hashtbl.replace w.w_prefetching key p;
                    Obs.Counter.incr w.w_issued
                  end
                end)
              to_fetch;
          ignore
            (Evio.Timer_wheel.schedule t.wheel
               ~at:(now +. t.config.warm_interval)
               T_warm)
      | _ -> ())

let dispatch_event t (ev : Evio.event) =
  match Hashtbl.find_opt t.fd_owners ev.Evio.fd with
  | None -> ()  (* closed while an earlier event in this batch ran *)
  | Some O_listen -> if ev.Evio.readable then accept_all t
  | Some O_wake -> (
      let buf = Bytes.create 64 in
      (try ignore (Unix.read t.wake_read buf 0 64)
       with Unix.Unix_error _ -> ());
      (* Hand-off shards are woken by the acceptor: drain the ring.  A
         poke names no particular fd, so whoever wakes first adopts
         whatever is queued — balance is approximate by design. *)
      match t.role with
      | Shard_member { ring = Some ring; _ } ->
          let rec drain () =
            match Handoff.pop ring with
            | Some fd ->
                ignore (adopt_fd t fd);
                drain ()
            | None -> ()
          in
          drain ()
      | _ -> ())
  | Some O_helper -> handle_helper_completions t
  | Some (O_client conn) ->
      if conn.alive then begin
        if ev.Evio.readable && conn.state = Reading then
          handle_readable t conn;
        if ev.Evio.writable && conn.alive && not (Sendq.is_empty conn.outq)
        then handle_writable t conn;
        sync_conn t conn
      end
  | Some (O_cgi conn) -> (
      if conn.alive then
        match conn.state with
        | Streaming_cgi (fd, pid) ->
            handle_cgi_readable t conn fd pid;
            sync_conn t conn
        | Reading | Waiting_helper _ -> ())

let run_loop t =
  (* The loop's own fds live in the backend for its whole life.  The
     listen fd may be parked by EMFILE shedding; wake and helper
     interest never changes. *)
  if t.owns_listen then begin
    Evio.Backend.register t.evio t.listen_fd ~read:(not t.accept_paused)
      ~write:false;
    Hashtbl.replace t.fd_owners t.listen_fd O_listen
  end;
  Evio.Backend.register t.evio t.wake_read ~read:true ~write:false;
  Hashtbl.replace t.fd_owners t.wake_read O_wake;
  (match t.helper with
  | Some h ->
      let nfd = Helper.notify_fd h in
      Evio.Backend.register t.evio nfd ~read:true ~write:false;
      Hashtbl.replace t.fd_owners nfd O_helper
  | None -> ());
  (match t.recorder with
  | Some r ->
      ignore
        (Evio.Timer_wheel.schedule t.wheel
           ~at:(t.config.clock () +. Obs.Recorder.interval r)
           T_rollup)
  | None -> ());
  (match t.guard with
  | Some _ ->
      (* Guard tick: ledger sweep, SLO-pressure sampling, idle reaping.
         Rides the recorder cadence so pressure is re-read as soon as a
         window can have closed. *)
      ignore
        (Evio.Timer_wheel.schedule t.wheel
           ~at:(t.config.clock () +. t.config.recorder_interval)
           T_guard_tick)
  | None -> ());
  (match t.warm with
  | Some _ ->
      (* First mining cycle: almost at once when a startup log was
         mined (its ranking is ready to prefetch before any request),
         else after a full interval of observed demand. *)
      let first =
        match t.config.warm_log with
        | Some _ -> 0.05
        | None -> t.config.warm_interval
      in
      ignore
        (Evio.Timer_wheel.schedule t.wheel
           ~at:(t.config.clock () +. first)
           T_warm)
  | None -> ());
  while not t.stopped do
    (* Sleep exactly until the next timer deadline (forever when no
       timers are pending) — readiness and the wake pipe interrupt the
       wait, so there is no fixed tick. *)
    let timeout =
      Option.map
        (fun d -> Float.max 0. (d -. t.config.clock ()))
        (Evio.Timer_wheel.next_deadline t.wheel)
    in
    let wait_start = t.config.clock () in
    let events = Evio.Backend.wait t.evio ~timeout in
    let now = t.config.clock () in
    Obs.Loopstat.wake t.loopstat ~waited:(now -. wait_start)
      ~ready:(List.length events);
    (* Time the processing half of the iteration only — blocking in
       the readiness wait is idleness, not a stall. *)
    Obs.Watchdog.arm t.watchdog;
    List.iter (dispatch_event t) events;
    let fired = Evio.Timer_wheel.advance t.wheel ~now:(t.config.clock ()) in
    (match fired with
    | [] -> ()
    | evs ->
        Obs.Loopstat.timers_fired t.loopstat (List.length evs);
        let now = t.config.clock () in
        List.iter (handle_timer t ~now) evs);
    Obs.Loopstat.work t.loopstat ~spent:(t.config.clock () -. now);
    Obs.Watchdog.check t.watchdog
  done;
  (* Drain: close everything. *)
  Hashtbl.iter (fun _ conn -> close_conn t conn) (Hashtbl.copy t.conns)

(* ------------------------------------------------------------------ *)
(* MP mode: forked blocking workers                                    *)
(* ------------------------------------------------------------------ *)

let mp_count_event t ~tag ~latency =
  match t.stats_pipe_write with
  | Some w ->
      (try
         ignore (Unix.write w (stats_record ~tag ~latency) 0 9)
       with Unix.Unix_error _ -> ());
      (* Mirror locally so an MP child's /server-status shows its own
         view (the copy-on-write fields are private to this child). *)
      (match tag with
      | 'c' -> t.n_connections <- t.n_connections + 1
      | 'r' | 'e' ->
          t.n_requests <- t.n_requests + 1;
          if tag = 'e' then t.n_errors <- t.n_errors + 1;
          Obs.Histogram.record t.latency latency
      | _ -> ());
      tick_recorder t
  | None ->
      with_obs_lock t (fun () ->
          match tag with
          | 'c' -> t.n_connections <- t.n_connections + 1
          | 'r' | 'e' ->
              t.n_requests <- t.n_requests + 1;
              if tag = 'e' then t.n_errors <- t.n_errors + 1;
              Obs.Histogram.record t.latency latency
          | _ -> ());
      tick_recorder t

(* MP children ship each finished trace to the parent as a framed
   binary record on the stats pipe.  Oversized traces (past PIPE_BUF
   atomicity) are dropped rather than risk interleaving. *)
let ship_trace t data =
  match t.stats_pipe_write with
  | None -> ()
  | Some w ->
      let payload = Obs.Trace.to_binary data in
      let plen = String.length payload in
      if plen <= 4000 then begin
        let b = Bytes.create (3 + plen) in
        Bytes.set b 0 'T';
        Bytes.set b 1 (Char.chr (plen land 0xff));
        Bytes.set b 2 (Char.chr ((plen lsr 8) land 0xff));
        Bytes.blit_string payload 0 b 3 plen;
        try ignore (Unix.write w b 0 (3 + plen)) with Unix.Unix_error _ -> ()
      end

(* Sequential, blocking request handling for one connection — the MP
   child's whole world (§3.1).  Traces are built with explicit
   timestamps around each blocking phase; in an MP child the finished
   trace also rides the stats pipe so the parent's ring sees it. *)
let mp_serve_connection t fd =
  Unix.clear_nonblock fd;
  let peer = peer_of_fd fd in
  match
    match t.guard with
    | Some g -> Guard.on_connect g ~peer
    | None -> Guard.Admit
  with
  | Guard.Reject reason ->
      (* MP children and MT workers refuse at the door like the
         event-driven modes; in an MP child the counters are the
         child's copy-on-write view. *)
      mp_count_event t ~tag:'c' ~latency:0.;
      refuse_fd t fd reason
  | Guard.Admit ->
  (* Blocking-path approximation of the header deadline: a receive
     timeout on the socket, checked per read.  A lapse mid-head answers
     408 below. *)
  (match t.guard with
  | Some g when (Guard.config g).Guard.header_deadline > 0. -> (
      try
        Unix.setsockopt_float fd Unix.SO_RCVTIMEO
          (Guard.config g).Guard.header_deadline
      with Unix.Unix_error _ | Invalid_argument _ -> ())
  | _ -> ());
  mp_count_event t ~tag:'c' ~latency:0.;
  with_obs_lock t (fun () -> Obs.Gauge.incr t.active);
  mp_ship_gauges t;
  let accepted = t.config.clock () in
  let track = current_track t in
  let buf = Bytes.create 65536 in
  (* Copying-fallback staging buffer, allocated only if this worker ever
     takes the scalar-write path. *)
  let scratch = lazy (Bytes.create 65536) in
  (* Blocking gather-write: drain the slices with [writev] (or the
     copying fallback), resuming partial writes by advancing offsets.
     Errors (peer gone) abandon the rest, matching the old behaviour. *)
  let send_slices slices =
    try
      let rec flush () =
        let live = Array.of_seq (Seq.filter (fun s -> s.Iovec.len > 0)
                                   (Array.to_seq slices)) in
        if Array.length live > 0 then begin
          match
            if t.gather_writes then begin
              let n = Iovec.writev fd live in
              count_send t ~writev:1 ~writes:0 ~copied:0 ~sent:n;
              n
            end
            else begin
              let n, copied =
                Iovec.writev_copy ~scratch:(Lazy.force scratch) fd live
              in
              count_send t ~writev:0 ~writes:1 ~copied ~sent:n;
              n
            end
          with
          | n ->
              Iovec.advance live n;
              flush ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> flush ()
        end
      in
      flush ()
    with Unix.Unix_error _ -> ()
  in
  (* Strings (error pages, status bodies) are copied off-heap once and
     sent through the same gather path. *)
  let send_strings parts =
    let copied = List.fold_left (fun acc s -> acc + String.length s) 0 parts in
    count_send t ~writev:0 ~writes:0 ~copied;
    send_slices
      (Array.of_list
         (List.filter_map
            (fun s ->
              if s = "" then None else Some (Iovec.slice (Iovec.of_string s)))
            parts))
  in
  (* [t_first]: when the current request's first bytes arrived (parse
     span start); [nreq]: finished requests on this connection. *)
  let rec request_loop inbuf t_first nreq =
    match Http.Request.parse inbuf with
    | Http.Request.Incomplete -> (
        match Unix.read fd buf 0 (Bytes.length buf) with
        | 0 -> ()
        | n ->
            let t_first =
              if t_first = None then Some (t.config.clock ()) else t_first
            in
            request_loop (inbuf ^ Bytes.sub_string buf 0 n) t_first nreq
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          ->
            (* Only SO_RCVTIMEO produces EAGAIN on this blocking socket.
               A lapse mid-head is a slow sender (408); with no bytes
               pending it is just an idle keep-alive going away. *)
            if inbuf <> "" then begin
              guard_shed t Guard.Slow_header;
              count_status t 408;
              let body =
                Http.Response.error_body Http.Status.Request_timeout
              in
              let header =
                render_header t ~status:Http.Status.Request_timeout
                  ~content_type:(Some "text/html")
                  ~content_length:(Some (String.length body))
                  ~keep:false
              in
              send_strings [ header; body ]
            end
        | exception Unix.Unix_error _ -> ())
    | Http.Request.Bad _ ->
        count_status t 400;
        let body = Http.Response.error_body Http.Status.Bad_request in
        let header =
          render_header t ~status:Http.Status.Bad_request
            ~content_type:(Some "text/html")
            ~content_length:(Some (String.length body))
            ~keep:false
        in
        send_strings [ header; body ]
    | Http.Request.Complete (req, consumed) -> (
        let started = t.config.clock () in
        let keep = Http.Request.keep_alive req in
        let head_only = req.Http.Request.meth = Http.Request.Head in
        let tr =
          match t.tracer with
          | None -> None
          | Some tracer ->
              let label =
                Http.Request.meth_to_string req.Http.Request.meth
                ^ " " ^ req.Http.Request.raw_target
              in
              Some
                (with_obs_lock t (fun () ->
                     let tr =
                       if nreq = 0 then begin
                         let tr =
                           Obs.Trace.start tracer ~at:accepted ~label ()
                         in
                         Obs.Trace.add_span tracer ~track ~name:"accept"
                           ~start:accepted ~stop:accepted tr;
                         tr
                       end
                       else begin
                         let tr = Obs.Trace.start tracer ~label () in
                         Obs.Trace.instant tracer tr ~track "keepalive-reuse";
                         tr
                       end
                     in
                     Obs.Trace.add_span tracer ~track ~name:"parse"
                       ~start:(Option.value t_first ~default:started)
                       ~stop:started tr;
                     tr))
        in
        let add_tr_span name ~start ~stop =
          match (t.tracer, tr) with
          | Some tracer, Some tr ->
              with_obs_lock t (fun () ->
                  Obs.Trace.add_span tracer ~track ~name ~start ~stop tr)
          | _ -> ()
        in
        let send_traced f =
          let w0 = t.config.clock () in
          f ();
          add_tr_span "write" ~start:w0 ~stop:(t.config.clock ())
        in
        let send parts = send_traced (fun () -> send_strings parts) in
        let send_entry_slices slices =
          send_traced (fun () -> send_slices slices)
        in
        let respond_error ?extra ?(keep = keep) status =
          count_status t (Http.Status.code status);
          let body = Http.Response.error_body status in
          let header =
            render_header t ~status ?extra ~content_type:(Some "text/html")
              ~content_length:(Some (String.length body))
              ~keep
          in
          send (if head_only then [ header ] else [ header; body ])
        in
        let rate_limited =
          match t.guard with
          | Some g -> (
              match Guard.on_request g ~peer with
              | Guard.Reject _ -> true
              | Guard.Admit -> false)
          | None -> false
        in
        let ok =
          if rate_limited then begin
            respond_error ~extra:(guard_retry t) ~keep:false
              Http.Status.Too_many_requests;
            false
          end
          else if is_status_request t req then begin
            (* In an MP child this is the child-local view. *)
            let body, content_type =
              match status_window req with
              | Some n -> (window_body t n, "application/json")
              | None ->
                  let json = wants_json req in
                  ( status_body t ~json,
                    if json then "application/json" else "text/plain" )
            in
            count_status t 200;
            let header =
              render_header t ~status:Http.Status.Ok
                ~content_type:(Some content_type)
                ~content_length:(Some (String.length body))
                ~keep
            in
            send (if head_only then [ header ] else [ header; body ]);
            true
          end
          else if is_metrics_request t req then begin
            (* Child-local in MP children; the parent's consolidated
               exposition is served from the parent process. *)
            let body = metrics_body t in
            count_status t 200;
            let header =
              render_header t ~status:Http.Status.Ok
                ~content_type:(Some "text/plain; version=0.0.4")
                ~content_length:(Some (String.length body))
                ~keep
            in
            send (if head_only then [ header ] else [ header; body ]);
            true
          end
          else if is_trace_request t req then begin
            (* In an MP child this renders the child's own ring. *)
            let body = trace_body t in
            count_status t 200;
            let header =
              render_header t ~status:Http.Status.Ok
                ~content_type:(Some "application/json")
                ~content_length:(Some (String.length body))
                ~keep
            in
            send (if head_only then [ header ] else [ header; body ]);
            true
          end
          else
          match resolve t req with
          | Error status ->
              respond_error status;
              true
          | Ok path -> (
              let full = t.config.docroot ^ path in
              (* Each MP process has its own cache instance (copied at
                 fork): check it, else do the blocking work inline. *)
              let lookup =
                with_cache_lock t (fun () -> File_cache.find_trusted t.cache full)
              in
              add_tr_span "resolve" ~start:started ~stop:(t.config.clock ());
              (* Same plan logic as the event-driven modes, expressed as
                 one gather write per response over the blocking socket:
                 a cached 304 is the entry's pre-rendered header slice,
                 a 206 is a per-request header plus an offset window
                 into the cached body. *)
              let send_entry (entry : File_cache.entry) =
                let entry = negotiate_entry t req ~full entry in
                let size = File_cache.body_length entry in
                match
                  plan_for ~req
                    ~etag:(etag_of_string entry.File_cache.etag)
                    ~mtime:entry.File_cache.mtime ~size
                with
                | P_not_modified ->
                    count_status t 304;
                    send_entry_slices
                      [|
                        Iovec.slice
                          (if keep then entry.File_cache.header_304_keep
                           else entry.File_cache.header_304_close);
                      |]
                | P_precondition_failed ->
                    respond_error Http.Status.Precondition_failed
                | P_unsatisfiable ->
                    respond_error Http.Status.Range_not_satisfiable
                      ~extra:
                        [
                          ( "Content-Range",
                            Http.Range.content_range_unsatisfied ~size );
                        ]
                | P_slice (off, len) ->
                    count_status t 206;
                    let extra =
                      [
                        ( "Content-Range",
                          Http.Range.content_range ~off ~len ~size );
                        ("ETag", entry.File_cache.etag);
                        ("Accept-Ranges", "bytes");
                      ]
                      @ (match entry.File_cache.encoding with
                        | Some e -> [ ("Content-Encoding", e) ]
                        | None -> [])
                      @ vary_extra t
                    in
                    let header =
                      render_header t ~status:Http.Status.Partial_content
                        ~last_modified:entry.File_cache.mtime ~extra
                        ~content_type:(Some (Http.Mime.of_path full))
                        ~content_length:(Some len) ~keep
                    in
                    let hbuf = Iovec.of_string header in
                    count_send t ~writev:0 ~writes:0
                      ~copied:(String.length header);
                    send_entry_slices
                      [|
                        Iovec.slice hbuf;
                        Iovec.slice ~off ~len entry.File_cache.body;
                      |]
                | P_full ->
                    count_status t 200;
                    let header =
                      Iovec.slice
                        (if keep then entry.File_cache.header_keep
                         else entry.File_cache.header_close)
                    in
                    send_entry_slices
                      (if head_only then [| header |]
                       else [| header; Iovec.slice entry.File_cache.body |])
              in
              match lookup with
              | Some entry ->
                  send_entry entry;
                  true
              | None -> (
                  (* Cold file: the blocking disk work happens right
                     here, in the worker serving this connection — so
                     the disk span lands on this worker's track. *)
                  let disk_start = t.config.clock () in
                  let end_disk () =
                    add_tr_span "disk-read" ~start:disk_start
                      ~stop:(t.config.clock ())
                  in
                  slow_read_hook t full;
                  match Unix.stat full with
                  | exception Unix.Unix_error _ ->
                      end_disk ();
                      respond_error Http.Status.Not_found;
                      true
                  | st when st.Unix.st_kind <> Unix.S_REG ->
                      end_disk ();
                      respond_error Http.Status.Forbidden;
                      true
                  | st -> (
                      match Unix.openfile full [ Unix.O_RDONLY ] 0 with
                      | exception Unix.Unix_error _ ->
                          end_disk ();
                          respond_error Http.Status.Not_found;
                          true
                      | file_fd ->
                          (* Map the file; the mapping doubles as the
                             response body, so even an uncacheable file
                             is sent without a userspace body copy. *)
                          let entry =
                            make_entry t file_fd full ~size:st.Unix.st_size
                              ~mtime:st.Unix.st_mtime
                          in
                          Unix.close file_fd;
                          end_disk ();
                          if st.Unix.st_size <= t.config.max_cached_file then begin
                            with_cache_lock t (fun () ->
                                File_cache.insert t.cache full entry);
                            mp_ship_gauges t
                          end;
                          send_entry entry;
                          true)))
        in
        let leftover =
          String.sub inbuf consumed (String.length inbuf - consumed)
        in
        mp_count_event t ~tag:'r' ~latency:(t.config.clock () -. started);
        (match (t.tracer, tr) with
        | Some tracer, Some tr ->
            let data = with_obs_lock t (fun () -> Obs.Trace.finish tracer tr) in
            log_slow t data;
            ship_trace t data
        | _ -> ());
        if ok && keep then
          request_loop leftover
            (if leftover = "" then None else Some (t.config.clock ()))
            (nreq + 1))
  in
  request_loop "" None 0;
  (match t.guard with
  | Some g -> Guard.on_disconnect g ~peer
  | None -> ());
  with_obs_lock t (fun () -> Obs.Gauge.decr t.active);
  mp_ship_gauges t;
  try Unix.close fd with Unix.Unix_error _ -> ()

(* MP children and MT workers accept through their own backend
   instance: a kernel interest set (epoll) must not be shared across
   forked processes or mutated by several threads, and a per-worker
   backend gives the blocking architectures the same EMFILE shedding
   and the same clean wakeup-on-stop (the wake pipe is registered but
   never drained — stop is terminal, so level-triggered readiness
   rouses every parked worker at once). *)
let mp_child_loop t =
  let ev = Evio.Backend.create t.config.event_backend in
  let wheel = Evio.Timer_wheel.create ~now:(t.config.clock ()) () in
  let paused = ref false in
  let backoff = ref accept_backoff_initial in
  let pause () =
    Obs.Counter.incr t.accept_emfile;
    (match t.stats_pipe_write with
    | Some w -> (
        try ignore (Unix.write w (stats_record ~tag:'f' ~latency:0.) 0 9)
        with Unix.Unix_error _ -> ())
    | None -> ());
    if not !paused then begin
      paused := true;
      Evio.Backend.modify ev t.listen_fd ~read:false ~write:false;
      ignore
        (Evio.Timer_wheel.schedule wheel
           ~at:(t.config.clock () +. !backoff)
           ());
      backoff := Float.min accept_backoff_max (!backoff *. 2.)
    end
  in
  let try_accept () =
    let injected =
      match t.config.accept_fault with Some f -> f () | None -> false
    in
    if injected then pause ()
    else
      match Unix.accept t.listen_fd with
      | fd, _ ->
          backoff := accept_backoff_initial;
          mp_serve_connection t fd
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          ()
      | exception Unix.Unix_error ((Unix.EMFILE | Unix.ENFILE), _, _) ->
          pause ()
      | exception Unix.Unix_error _ -> ()
  in
  Evio.Backend.register ev t.listen_fd ~read:true ~write:false;
  Evio.Backend.register ev t.wake_read ~read:true ~write:false;
  (try
     while not t.stopped do
       let timeout =
         Option.map
           (fun d -> Float.max 0. (d -. t.config.clock ()))
           (Evio.Timer_wheel.next_deadline wheel)
       in
       let events = Evio.Backend.wait ev ~timeout in
       (match Evio.Timer_wheel.advance wheel ~now:(t.config.clock ()) with
       | [] -> ()
       | _ :: _ ->
           paused := false;
           Evio.Backend.modify ev t.listen_fd ~read:true ~write:false;
           if not t.stopped then try_accept ());
       if not t.stopped then
         List.iter
           (fun (e : Evio.event) ->
             if e.Evio.fd = t.listen_fd && e.Evio.readable && not !paused
             then try_accept ())
           events
     done
   with Unix.Unix_error _ -> ());
  Evio.Backend.close ev

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

(* Start one server instance.  [listen] says how it gets its listen
   socket: [`Bind] (the standalone path — bind config.port here),
   [`Fd (fd, port)] (a pre-bound socket: a shard's reuseport listener,
   or the hand-off coordinator's only listener), [`None port] (a
   hand-off shard: fds arrive over the ring; the placeholder socket is
   never bound or watched, it just gives [stop] something to close).
   [shared_budget]/[shared_cache_lock] wire budget-sharing shards to
   one pool and one cache lock. *)
let start_one ?(role = Standalone) ?(listen = `Bind) ?shared_budget
    ?shared_cache_lock ?(accept_strategy = "") config =
  (* A peer closing mid-write must surface as EPIPE, not kill the
     process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let listen_fd, bound_port, owns_listen =
    match listen with
    | `Fd (fd, port) -> (fd, port, true)
    | `None port -> (Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0, port, false)
    | `Bind ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, config.port));
        Unix.listen fd 128;
        let p =
          match Unix.getsockname fd with
          | Unix.ADDR_INET (_, p) -> p
          | Unix.ADDR_UNIX _ -> config.port
        in
        (fd, p, true)
  in
  let wake_read, wake_write = Unix.pipe () in
  Unix.set_nonblock wake_read;
  let wants_helper =
    match (config.mode, role) with
    | Amped, _ -> true
    | Sharded _, Shard_member _ -> true (* each shard is a full AMPED *)
    | _ -> false
  in
  let helper =
    if wants_helper then
      Some
        (Helper.create ~clock:config.clock ?slow_read:config.slow_read
           ?max_queued:config.guard.Guard.max_helper_queue
           ~helpers:(max 1 config.helpers) ())
    else None
  in
  (* Every mode accepts through a readiness backend now, so the listen
     fd is nonblocking everywhere (a connection that vanishes between
     readiness and accept must yield EAGAIN, not a hang). *)
  Unix.set_nonblock listen_fd;
  (* The stats pipe exists before [t]: closures created below capture
     the final record, so no [{ t with ... }] copy may follow. *)
  let stats_pipe_read, stats_pipe_write =
    match config.mode with
    | Mp _ ->
        let r, w = Unix.pipe () in
        Unix.set_nonblock r;
        (Some r, Some w)
    | Amped | Sped | Mt _ | Sharded _ -> (None, None)
  in
  let budget =
    match (shared_budget, role) with
    | Some b, _ -> Some b
    | None, Shard_coordinator _ ->
        None (* the coordinator's cache serves no requests *)
    | None, _ ->
        Option.map
          (fun bytes -> Flash_cache.Budget.create ~bytes)
          config.cache_budget_bytes
  in
  let cache_mutex = Mutex.create () in
  let cache_lock =
    match shared_cache_lock with
    | Some m -> Some m (* budget-sharing shards serialise every store *)
    | None -> ( match config.mode with Mt _ -> Some cache_mutex | _ -> None)
  in
  (* Predictive warming rides the helper pool's low-priority lane, so
     only instances with helpers (AMPED, shard members) build it; the
     sharded coordinator and SPED/MP/MT run unwarmed. *)
  let warm =
    if config.warm && wants_helper then begin
      let wconf =
        {
          Flash_warm.Warm.interval = config.warm_interval;
          budget_frac = config.warm_budget;
          top_k = config.warm_top_k;
          half_life =
            Flash_warm.Warm.default_config.Flash_warm.Warm.half_life;
        }
      in
      let miner =
        Flash_warm.Miner.create ~half_life:wconf.Flash_warm.Warm.half_life ()
      in
      (* Startup mining: fold a previous run's access log so the first
         cycle prefetches before any request arrives. *)
      (match config.warm_log with
      | Some path -> (
          match open_in path with
          | exception Sys_error _ -> ()
          | ic ->
              let now = config.clock () in
              (try
                 while true do
                   ignore
                     (Flash_warm.Miner.observe_line miner ~now (input_line ic))
                 done
               with End_of_file -> ());
              close_in ic)
      | None -> ());
      Some
        {
          w_miner = miner;
          w_absorber = Flash_warm.Warm.create_absorber ();
          w_conf = wconf;
          w_pin_budget =
            Flash_warm.Warm.pin_budget wconf
              ~capacity:config.file_cache_bytes;
          w_next_key = -1;
          w_prefetching = Hashtbl.create 16;
          w_warmed = Hashtbl.create 256;
          w_cycles = Obs.Counter.create ();
          w_ranked = Obs.Counter.create ();
          w_issued = Obs.Counter.create ();
          w_completed = Obs.Counter.create ();
          w_failed = Obs.Counter.create ();
          w_hits_after = Obs.Counter.create ();
        }
    end
    else None
  in
  let t =
    {
      config;
      listen_fd;
      bound_port;
      cache =
        File_cache.create ~policy:config.cache_policy
          ~admission:config.cache_admission ?budget
          ~capacity_bytes:config.file_cache_bytes ();
      helper;
      wake_read;
      wake_write;
      conns = Hashtbl.create 64;
      by_helper_key = Hashtbl.create 64;
      next_key = 0;
      stopped = false;
      loop_thread = None;
      children = [];
      n_requests = 0;
      n_connections = 0;
      n_errors = 0;
      log_channel =
        Option.map
          (fun path -> open_out_gen [ Open_append; Open_creat ] 0o644 path)
          config.access_log;
      stats_pipe_read;
      stats_pipe_write;
      stats_acc = Buffer.create 64;
      stats_mutex = Mutex.create ();
      cache_mutex;
      obs_mutex = Mutex.create ();
      latency = Obs.Histogram.create ();
      writev_calls = Obs.Counter.create ();
      write_calls = Obs.Counter.create ();
      bytes_copied = Obs.Counter.create ();
      bytes_sent = Obs.Counter.create ();
      status_classes = Array.make 4 0;
      owner_pid = Unix.getpid ();
      registry = Obs.Registry.create ();
      recorder = None;
      recorder_mutex = Mutex.create ();
      slo =
        Option.map
          (fun (quantile, target_ms) -> Obs.Slo.create ~quantile ~target_ms ())
          config.latency_slo;
      mp_child_gauges = Hashtbl.create 8;
      send_scratch = Bytes.create 65536;
      gather_writes = config.use_writev && Iovec.have_writev;
      watchdog =
        Obs.Watchdog.create ~clock:config.clock
          ~threshold:config.stall_threshold ();
      active = Obs.Gauge.create ();
      tracer =
        (if config.trace then
           Some
             (Obs.Trace.create ~clock:config.clock
                ~capacity:(max 1 config.trace_capacity) ())
         else None);
      slow_channel =
        Option.map
          (fun path -> open_out_gen [ Open_append; Open_creat ] 0o644 path)
          config.slow_request_log;
      started_at = config.clock ();
      worker_threads = [];
      evio = Evio.Backend.create config.event_backend;
      wheel = Evio.Timer_wheel.create ~now:(config.clock ()) ();
      fd_owners = Hashtbl.create 64;
      loopstat = Obs.Loopstat.create ();
      accept_emfile = Obs.Counter.create ();
      accept_paused = false;
      accept_backoff = accept_backoff_initial;
      role;
      shards = [||];
      coord = None;
      domains = [];
      accept_strategy;
      owns_listen;
      handoff_rr = 0;
      handoff_shed = Obs.Counter.create ();
      cache_lock;
      guard =
        (if Guard.enabled config.guard then
           Some (Guard.create ~clock:config.clock config.guard)
         else None);
      warm;
      cgi_inflight = 0;
    }
  in
  register_metrics t;
  (* Recorder after [register_metrics] (its read closure walks the same
     counters) and before forks/threads, so every worker inherits it. *)
  t.recorder <-
    Some
      (Obs.Recorder.create
         ~capacity:(max 1 config.recorder_capacity)
         ~interval:config.recorder_interval ~now:config.clock
         ~read:(recorder_read t)
         ~on_rollup:(fun r ->
           match t.slo with Some s -> Obs.Slo.observe s r | None -> ())
         ());
  (match config.mode with
  | Mp n ->
      let children =
        List.init (max 1 n) (fun _ ->
            match Unix.fork () with
            | 0 ->
                (* Child: blocking accept loop; never returns. *)
                (try mp_child_loop t with _ -> ());
                Stdlib.exit 0
            | pid -> pid)
      in
      t.children <- children
  | Mt n ->
      (* Kernel threads sharing the address space (and the cache, behind
         the mutex) — the paper's MT architecture. *)
      t.worker_threads <-
        List.init (max 1 n) (fun _ ->
            Thread.create (fun () -> try mp_child_loop t with _ -> ()) ())
  | Amped | Sped | Sharded _ -> ());
  (match role with
  | Standalone -> Log.info (fun m -> m "listening on port %d" bound_port)
  | Shard_member _ | Shard_coordinator _ -> ());
  t

(* Compile-time support is necessary but not sufficient: probe the
   running kernel with a scratch socket before committing to one
   listening socket per domain. *)
let reuseport_works () =
  Evio.have_reuseport ()
  &&
  let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  let ok =
    try
      Evio.set_reuseport s;
      true
    with Failure _ | Unix.Unix_error _ -> false
  in
  (try Unix.close s with Unix.Unix_error _ -> ());
  ok

let start_sharded config n =
  let n = max 1 n in
  let config = { config with mode = Sharded n } in
  (* One pool across every shard's cache when --cache-budget is set;
     one shared cache lock rides along, because a foreign shard's
     rebalance may shed into this shard's store. *)
  let shared_budget =
    Option.map
      (fun bytes -> Flash_cache.Budget.create ~bytes)
      config.cache_budget_bytes
  in
  let shared_cache_lock =
    Option.map (fun _ -> Mutex.create ()) shared_budget
  in
  let bind_listener ~reuseport port =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    if reuseport then Evio.set_reuseport fd;
    Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    Unix.listen fd 128;
    let p =
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, p) -> p
      | Unix.ADDR_UNIX _ -> port
    in
    (fd, p)
  in
  let reuseport = (not config.force_handoff) && reuseport_works () in
  let strategy = if reuseport then "reuseport" else "handoff" in
  let ring = if reuseport then None else Some (Handoff.create ~capacity:1024) in
  (* Bind the first listener either way: under reuseport it becomes
     shard 0's (a bound-but-never-accepted reuseport socket would
     blackhole its share of connections, so the coordinator must not
     keep one); under hand-off it is the coordinator's only listener. *)
  let fd0, bound = bind_listener ~reuseport config.port in
  let shards =
    Array.init n (fun i ->
        let listen =
          if reuseport then
            if i = 0 then `Fd (fd0, bound)
            else `Fd (fst (bind_listener ~reuseport:true bound), bound)
          else `None bound
        in
        start_one
          ~role:(Shard_member { id = i; ring })
          ~listen ?shared_budget ?shared_cache_lock ~accept_strategy:strategy
          config)
  in
  let coord =
    start_one
      ~role:(Shard_coordinator { ring })
      ~listen:(if reuseport then `None bound else `Fd (fd0, bound))
      ~accept_strategy:strategy config
  in
  coord.shards <- shards;
  coord.coord <- Some coord;
  Array.iter
    (fun sh ->
      sh.shards <- shards;
      sh.coord <- Some coord)
    shards;
  Log.info (fun m ->
      m "listening on port %d (%d domains, %s accepts)" bound n strategy);
  coord

let start config =
  match config.mode with
  | Sharded n -> start_sharded config n
  | Amped | Sped | Mp _ | Mt _ -> start_one config

let port t = t.bound_port
let mode t = t.config.mode

let sharding_info t =
  match shard_peers t with
  | None -> None
  | Some shards -> Some (Array.length shards, t.accept_strategy)

(* The MP parent's only job: consolidate children's statistics.  It
   sleeps in its backend for at most one recorder interval — the stats
   pipe or the wake pipe interrupts it sooner; the timeout closes
   flight-recorder windows on an idle server. *)
let mp_parent_loop t =
  let buf = Bytes.create 4095 in
  (match t.stats_pipe_read with
  | Some r -> Evio.Backend.register t.evio r ~read:true ~write:false
  | None -> ());
  Evio.Backend.register t.evio t.wake_read ~read:true ~write:false;
  let timeout =
    match t.recorder with
    | Some r -> Some (Obs.Recorder.interval r)
    | None -> None
  in
  while not t.stopped do
    let wait_start = t.config.clock () in
    let events = Evio.Backend.wait t.evio ~timeout in
    Obs.Loopstat.wake t.loopstat
      ~waited:(t.config.clock () -. wait_start)
      ~ready:(List.length events);
    List.iter
      (fun (e : Evio.event) ->
        if e.Evio.fd = t.wake_read then begin
          let b = Bytes.create 64 in
          try ignore (Unix.read t.wake_read b 0 64)
          with Unix.Unix_error _ -> ()
        end
        else
          match t.stats_pipe_read with
          | Some r when e.Evio.fd = r && e.Evio.readable -> (
              Mutex.lock t.stats_mutex;
              match
                Fun.protect
                  ~finally:(fun () -> Mutex.unlock t.stats_mutex)
                  (fun () ->
                    match Unix.read r buf 0 4095 with
                    | n when n > 0 -> consume_stats t buf n
                    | _ -> ())
              with
              | () -> ()
              | exception Unix.Unix_error _ -> ())
          | _ -> ())
      events;
    tick_recorder t
  done

let run t =
  match t.config.mode with
  | Mp _ -> mp_parent_loop t
  | Mt _ ->
      (* Threads update shared counters themselves; park on the wake
         pipe, waking once per recorder interval to close windows on an
         idle server. *)
      let timeout =
        match t.recorder with
        | Some r -> Obs.Recorder.interval r
        | None -> -1.
      in
      while not t.stopped do
        (match Unix.select [ t.wake_read ] [] [] timeout with
        | _ -> ()
        | exception Unix.Unix_error _ -> ());
        tick_recorder t
      done
  | Sharded _ -> (
      match t.role with
      | Shard_coordinator _ ->
          (* One domain per shard, each running a full AMPED loop; the
             coordinator's own loop accepts-and-hands-off (hand-off
             strategy) or just parks on its wake pipe (reuseport, where
             the kernel balances accepts into the shards' sockets). *)
          t.domains <-
            Array.to_list
              (Array.map
                 (fun sh -> Domain.spawn (fun () -> run_loop sh))
                 t.shards);
          run_loop t
      | Standalone | Shard_member _ -> run_loop t)
  | Amped | Sped -> run_loop t

let start_background config =
  let t = start config in
  t.loop_thread <- Some (Thread.create run t);
  t

let shutdown_flag t =
  t.stopped <- true;
  try ignore (Unix.write t.wake_write (Bytes.of_string "x") 0 1)
  with Unix.Unix_error _ -> ()

(* Release one instance's resources.  Only called once its loop has
   exited (loop thread joined / domain joined). *)
let teardown t =
  (match t.helper with Some h -> Helper.shutdown h | None -> ());
  (* MT workers park in their backend's wait with the wake pipe in
     the interest set, so the wake byte already roused them — no need
     to poke them with throwaway connections. *)
  List.iter (fun th -> try Thread.join th with _ -> ()) t.worker_threads;
  Evio.Backend.close t.evio;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (match t.log_channel with Some oc -> close_out_noerr oc | None -> ());
  (match t.slow_channel with Some oc -> close_out_noerr oc | None -> ());
  (match t.stats_pipe_read with
  | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  (match t.stats_pipe_write with
  | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  (try Unix.close t.wake_read with Unix.Unix_error _ -> ());
  try Unix.close t.wake_write with Unix.Unix_error _ -> ()

let stop t =
  if not t.stopped then begin
    shutdown_flag t;
    (* Sharded coordinator: flag every shard before joining anything so
       all the loops unwind in parallel. *)
    (match t.role with
    | Shard_coordinator _ -> Array.iter shutdown_flag t.shards
    | Standalone | Shard_member _ -> ());
    List.iter
      (fun pid ->
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
      t.children;
    (match t.loop_thread with Some th -> Thread.join th | None -> ());
    (* Shard domains were spawned by the coordinator's [run] (on the
       loop thread just joined, under [start_background]), so the list
       is final by now; join them before touching their fds. *)
    List.iter (fun d -> try Domain.join d with _ -> ()) t.domains;
    t.domains <- [];
    (match t.role with
    | Shard_coordinator _ -> Array.iter teardown t.shards
    | Standalone | Shard_member _ -> ());
    teardown t
  end

let stats_one t =
  drain_stats_pipe t;
  {
    requests = t.n_requests;
    connections = t.n_connections;
    errors = t.n_errors;
    cache_hits = File_cache.hits t.cache;
    cache_misses = File_cache.misses t.cache;
    helper_jobs = (match t.helper with Some h -> Helper.dispatched h | None -> 0);
    cache_evictions = File_cache.evictions t.cache;
    helper_queue_depth =
      (match t.helper with Some h -> Helper.queue_depth h | None -> 0);
    active_connections = active_now t;
    loop_stalls = Obs.Watchdog.stalls t.watchdog;
    loop_max_stall = Obs.Watchdog.max_gap t.watchdog;
    writev_calls = with_obs_lock t (fun () -> Obs.Counter.value t.writev_calls);
    write_calls = with_obs_lock t (fun () -> Obs.Counter.value t.write_calls);
    bytes_copied = with_obs_lock t (fun () -> Obs.Counter.value t.bytes_copied);
    mapped_bytes = mapped_now t;
    event_backend = Evio.name t.config.event_backend;
    loop_wakeups = Obs.Loopstat.wakeups t.loopstat;
    timer_fires = Obs.Loopstat.timer_fires t.loopstat;
    accept_emfile = Obs.Counter.value t.accept_emfile;
  }

(* Sharded instances report the consolidated view, summed at snapshot
   over every shard (the programmatic sibling of the /metrics
   aggregate). *)
let stats t =
  match shard_peers t with
  | None -> stats_one t
  | Some shards ->
      let per = Array.to_list (Array.map stats_one shards) in
      let sum f = List.fold_left (fun a s -> a + f s) 0 per in
      {
        requests = sum (fun s -> s.requests);
        connections = sum (fun s -> s.connections);
        errors = sum (fun s -> s.errors);
        cache_hits = sum (fun s -> s.cache_hits);
        cache_misses = sum (fun s -> s.cache_misses);
        helper_jobs = sum (fun s -> s.helper_jobs);
        cache_evictions = sum (fun s -> s.cache_evictions);
        helper_queue_depth = sum (fun s -> s.helper_queue_depth);
        active_connections = sum (fun s -> s.active_connections);
        loop_stalls = sum (fun s -> s.loop_stalls);
        loop_max_stall =
          List.fold_left (fun a s -> Float.max a s.loop_max_stall) 0. per;
        writev_calls = sum (fun s -> s.writev_calls);
        write_calls = sum (fun s -> s.write_calls);
        bytes_copied = sum (fun s -> s.bytes_copied);
        mapped_bytes = sum (fun s -> s.mapped_bytes);
        event_backend = Evio.name t.config.event_backend;
        loop_wakeups = sum (fun s -> s.loop_wakeups);
        timer_fires = sum (fun s -> s.timer_fires);
        accept_emfile =
          sum (fun s -> s.accept_emfile) + Obs.Counter.value t.handoff_shed;
      }

let latency t =
  match shard_peers t with
  | None -> with_obs_lock t (fun () -> Obs.Histogram.copy t.latency)
  | Some shards ->
      Array.fold_left
        (fun acc sh ->
          Obs.Histogram.merge acc
            (with_obs_lock sh (fun () -> Obs.Histogram.copy sh.latency)))
        (Obs.Histogram.create ()) shards

let helper_job_latency t = Option.map Helper.job_latency t.helper

let loop_iterations t = Obs.Watchdog.iterations t.watchdog

let tracing_enabled t = t.tracer <> None

(* Both drain the stats pipe first so an MP parent's view includes
   traces the children have shipped but the parent loop has not yet
   consumed. *)
let trace_snapshot t =
  drain_stats_pipe t;
  match t.tracer with
  | None -> []
  | Some tracer -> with_obs_lock t (fun () -> Obs.Trace.snapshot tracer)

let trace_chrome_json t =
  drain_stats_pipe t;
  trace_body t

(* SIGUSR1 / shutdown dump: flush the partial window, render the whole
   ring.  Drains the stats pipe first so an MP parent's dump reflects
   everything the children have shipped. *)
let recorder_dump t =
  drain_stats_pipe t;
  match with_recorder t Obs.Recorder.dump_json with
  | Some s -> s
  | None -> {|{"capacity": 0, "interval": 0, "rollups": []}|}

let recorder_window t n =
  match with_recorder t (fun r -> Obs.Recorder.window r n) with
  | Some rs -> rs
  | None -> []
