(** The live Flash web server: a real AMPED HTTP server over the [Unix]
    module.

    One process runs an event loop handling all client IO with
    non-blocking sockets; disk work for uncached files goes to
    {!Helper} threads whose completions arrive on a pipe the loop
    watches.  The same code base also runs as:
    - [Sped]: no helpers — cold files are read inline, stalling the
      loop exactly as §3.3 describes;
    - [Mp n]: [n] forked processes each running the basic steps
      sequentially on a shared listen socket;
    - [Mt n]: [n] kernel threads doing the same inside one address
      space, sharing the file cache behind a mutex.

    Conditional GET is honoured (If-Modified-Since - 304), and an
    optional Common Log Format access log can be written.

    Features: GET/HEAD, HTTP/1.0 and 1.1 keep-alive, 32-byte-aligned
    response headers (§5.5), bounded file/header cache, CGI under
    [/cgi-bin/] (fork/exec, close-delimited output), 403 on paths
    escaping the document root.

    {2 Event readiness and timers}

    Readiness comes from a pluggable {!Evio.Backend} —
    [select]/[poll]/[epoll], chosen by [event_backend] ([select] is
    the paper-faithful default) — with per-fd interest kept in sync by
    diffing, so an idle keep-alive connection costs no per-iteration
    work on epoll.  All timeouts (keep-alive idle, CGI deadlines,
    EMFILE backoff) live in a hashed {!Evio.Timer_wheel} owned by the
    loop; the wait blocks exactly until the next deadline instead of
    ticking on a fixed interval, and idle-connection reaping is a
    per-connection timer rescheduled lazily, not an O(connections)
    scan.  MP children and MT workers accept through their own backend
    instance (kernel interest sets don't share across forks/threads).
    When [accept] fails with EMFILE/ENFILE the listen fd's interest is
    parked and re-armed by a wheel timer with exponential backoff —
    load is shed without spinning on a connection the process cannot
    take.  Per-loop wakeup/ready/wait-vs-work/timer counters are
    reported by [/server-status].

    {2 Send path}

    All response bytes flow through a per-connection {!Sendq} of iovec
    slices flushed with [writev(2)] (§5.5 gather writes) — falling back
    to a copying [write] loop where the stub is unavailable or
    [use_writev] is off.  Cached files are [mmap]-backed {!File_cache}
    entries carrying both pre-rendered (keep-alive/close) headers, so a
    cache hit is one [writev] of header + mapping with zero userspace
    body copies.  Partial writes survive by advancing slice offsets in
    place; error, status and CGI responses ride the same queue.
    [writev]/[write] calls and bytes copied are counted per server (MP
    children ship deltas to the parent over the stats pipe).

    {2 Observability}

    The server is instrumented with {!Obs}: a log-bucketed per-request
    latency histogram (recorded at response generation in all four
    modes — MP children ship theirs to the parent over the stats pipe),
    an event-loop stall watchdog (any iteration whose processing
    exceeds [stall_threshold] counts as a stall — the measurable
    signature of the SPED pathology), live/total connection gauges,
    cache hit/miss/eviction counters, and helper queue-depth and
    job-latency figures.  Everything is served by a built-in
    [GET /server-status] endpoint: human-readable text by default,
    JSON with [?json].  The endpoint is matched before docroot/CGI
    resolution and never appears in the access log.

    {2 Tracing}

    With [trace] on (the default), every request is traced through its
    lifecycle with {!Obs.Trace}: accept (or keep-alive reuse), header
    parse, pathname resolution and cache lookup, the disk work —
    attributed to the ["helper"] track under AMPED, to the main loop
    under SPED, to the worker's own track under MP/MT — response write,
    and close.  Completed traces land in a bounded ring served as
    Chrome trace-event JSON by [GET /server-trace] (Perfetto-loadable,
    one track per process/helper).  MP children ship finished traces to
    the parent as compact binary records on the stats pipe, so the
    parent's ring — and its [/server-trace] — covers all children.
    Requests slower than [slow_request_ms] are additionally appended to
    a slow-request log as a one-line span breakdown. *)

type mode =
  | Amped  (** event loop + helper threads (Flash) *)
  | Sped  (** event loop only; cold files stall it *)
  | Mp of int  (** forked blocking workers *)
  | Mt of int  (** kernel threads sharing the cache behind a mutex *)
  | Sharded of int
      (** [n] OCaml domains, each a fully independent AMPED shard (own
          evio backend, timer wheel, file cache, helper pool, metrics
          registry and flight recorder).  Accepts balance via
          [SO_REUSEPORT] — one listening socket per domain — detected
          at startup; platforms without it fall back to a single
          acceptor domain feeding a bounded lock-free hand-off ring of
          accepted fds.  Caches are domain-local unless
          [cache_budget_bytes] is set, which shares one {!Flash_cache.Budget.t}
          pool (and one cache lock) across every shard.  [/server-status]
          and [/metrics] expose both per-shard series (under a [shard]
          label) and the summed-at-snapshot aggregate. *)

type config = {
  docroot : string;
  port : int;  (** 0 picks an ephemeral port *)
  mode : mode;
  helpers : int;  (** helper threads (AMPED) *)
  file_cache_bytes : int;
  max_cached_file : int;  (** larger files stream from disk, uncached *)
  enable_cgi : bool;
  align_headers : bool;
  server_name : string;
  idle_timeout : float;  (** close keep-alive connections idle this long *)
  access_log : string option;  (** write a Common Log Format file here *)
  access_log_timing : bool;
      (** append each request's service time in microseconds (measured
          from its trace start) after the CLF fields *)
  status_path : string option;
      (** built-in status endpoint (default ["/server-status"]); [None]
          disables it *)
  stall_threshold : float;
      (** seconds; loop iterations processing longer than this are
          recorded as stalls (default 50 ms) *)
  clock : unit -> float;
      (** time source for latency/watchdog/idle accounting — injectable
          so tests control it (default [Unix.gettimeofday]) *)
  slow_read : (string -> unit) option;
      (** fault injection: called with the path before every {e cold}
          file read — in AMPED helper context, inline in SPED/MP/MT —
          simulating slow media.  Tests use it to prove where each
          architecture blocks. *)
  trace : bool;  (** record request-lifecycle traces (default on) *)
  trace_capacity : int;  (** completed-trace ring size (default 256) *)
  trace_path : string option;
      (** Chrome trace-event endpoint (default ["/server-trace"]);
          [None] disables it.  With [trace = false] the path is not
          special and resolves against the docroot. *)
  slow_request_ms : float option;
      (** log the span breakdown of requests slower than this *)
  slow_request_log : string option;
      (** slow-request log file; [None] writes to stderr *)
  use_writev : bool;
      (** gather-write responses with the [writev(2)] stub (default:
          whenever the stub is available); off forces the copying
          [write] fallback — the baseline [flash_bench] compares
          against *)
  cache_policy : Flash_cache.Policy.kind;
      (** file-cache replacement policy (default LRU) *)
  cache_admission : Flash_cache.Policy.admission;
      (** file-cache admission policy (default admit-always) *)
  cache_budget_bytes : int option;
      (** when set, the file cache also answers to a shared
          {!Flash_cache.Budget} of this many bytes *)
  event_backend : Evio.kind;
      (** readiness mechanism for every loop — main, MP parent, MP/MT
          workers (default [Select], the paper-faithful baseline) *)
  gzip_precompressed : bool;
      (** serve a fresh [.gz] sibling (mtime at or after the origin's)
          to clients that negotiate gzip via Accept-Encoding (default
          on); with either gzip option on, file responses carry
          [Vary: Accept-Encoding] *)
  gzip_lazy : bool;
      (** when no sibling exists, build a stored-block gzip variant of
          a cached body inline and cache it beside its origin under the
          same policy and budget (default off) *)
  cgi_timeout : float;
      (** kill CGI children still streaming after this many seconds;
          [0.] disables the deadline (default 300 s) *)
  accept_fault : (unit -> bool) option;
      (** test seam: consulted before each [accept]; returning [true]
          makes it behave as if it failed with EMFILE, exercising the
          shedding path without exhausting real descriptors *)
  metrics_path : string option;
      (** Prometheus text exposition endpoint (default ["/metrics"]);
          [None] disables it.  In MP mode a child serves its own view
          over HTTP; the parent's consolidated exposition is
          {!metrics_body}. *)
  latency_slo : (float * float) option;
      (** [(quantile, target_ms)]: evaluate a latency SLO over the
          flight recorder's windows — e.g. [(99., 50.)] means "p99 at
          or under 50 ms".  Burn rate and health state appear in
          [/server-status] and [/metrics] (default [None]) *)
  recorder_capacity : int;
      (** flight-recorder ring size, in windows (default 120) *)
  recorder_interval : float;
      (** flight-recorder window length, seconds (default 1.0) *)
  force_handoff : bool;
      (** [Sharded] only: skip the [SO_REUSEPORT] probe and balance
          accepts through the hand-off ring, so the fallback path can
          be exercised on platforms that support reuseport (default
          [false]) *)
  guard : Flash_guard.Guard.config;
      (** admission control and load shedding (per-peer limits, slow
          client defenses, bounded queues, SLO-burn shedder).  The
          default, {!Flash_guard.Guard.default_config}, is fully inert.
          Sharded mode builds one guard per shard; MP children keep
          copy-on-write ledgers; MT workers share one locked guard. *)
  access_log_paths : bool;
      (** append the resolved filesystem path after the CLF
          status/bytes fields, making the access log machine-minable
          like the Apache [%>s %O %f] log pcache consumes (default
          [false]) *)
  warm : bool;
      (** predictive cache warming: mine observed demand each
          [warm_interval], pin the ranked hot set, prefetch ranked
          absentees through the helpers' low-priority lane.  Only
          instances with helper pools warm (AMPED; each shard in
          [Sharded]); default [false] skips all plumbing *)
  warm_interval : float;  (** seconds between mining cycles (default 5) *)
  warm_budget : float;
      (** pinned hot tier bounded to this fraction of the file cache's
          capacity (default 0.25) *)
  warm_top_k : int;
      (** candidates considered per mining cycle (default 64) *)
  warm_log : string option;
      (** access log mined once at startup, so a restarted server warms
          from the previous run's traffic before its first request *)
}

val default_config : docroot:string -> config

type stats = {
  requests : int;
  connections : int;
  errors : int;
  cache_hits : int;
  cache_misses : int;
  helper_jobs : int;
  cache_evictions : int;
  helper_queue_depth : int;  (** queued + in-flight helper jobs now *)
  active_connections : int;  (** connections currently open *)
  loop_stalls : int;  (** event-loop iterations over the threshold *)
  loop_max_stall : float;  (** longest loop iteration, seconds *)
  writev_calls : int;  (** gather writes issued *)
  write_calls : int;  (** fallback/stream [write] calls issued *)
  bytes_copied : int;  (** response bytes copied in userspace *)
  mapped_bytes : int;  (** file bytes currently mmap'd by the cache *)
  event_backend : string;  (** readiness backend name in use *)
  loop_wakeups : int;  (** times the readiness wait returned *)
  timer_fires : int;  (** timer-wheel expirations handled *)
  accept_emfile : int;  (** accepts shed on EMFILE/ENFILE *)
}

type t

(** Bind the listen socket and (AMPED) start the helper pool.  The event
    loop does not run until {!run} or {!start_background}.  [Sharded n]
    builds the whole shard set here (listeners bound, accept strategy
    probed); the shard domains themselves are spawned by {!run}. *)
val start : config -> t

(** The bound port (useful with [port = 0]). *)
val port : t -> int

(** Run the event loop in the calling thread until {!stop}. *)
val run : t -> unit

(** Run the event loop in a background thread (for tests/examples). *)
val start_background : config -> t

(** Stop the loop, close the listener, shut helpers down.  Idempotent. *)
val stop : t -> unit

val stats : t -> stats
(** Sharded servers report the consolidated view, summed at snapshot
    over every shard. *)

val mode : t -> mode

val sharding_info : t -> (int * string) option
(** [Some (domains, strategy)] for a sharded server — strategy is
    ["reuseport"] or ["handoff"] — [None] otherwise. *)

(** Snapshot of the per-request latency histogram (seconds).  In MP
    mode this is the parent's consolidated view. *)
val latency : t -> Obs.Histogram.t

(** Snapshot of the helper job-latency histogram (AMPED only). *)
val helper_job_latency : t -> Obs.Histogram.t option

(** Event-loop iterations completed (0 for MP/MT). *)
val loop_iterations : t -> int

val tracing_enabled : t -> bool

(** Completed traces in the ring, oldest first.  In MP mode this is the
    parent's consolidated view (the stats pipe is drained first). *)
val trace_snapshot : t -> Obs.Trace.trace_data list

(** The ring as Chrome trace-event JSON — what [GET /server-trace]
    serves. *)
val trace_chrome_json : t -> string

(** One walk over the unified metrics registry, rendered as Prometheus
    text exposition — what [GET /metrics] serves.  In MP mode, calling
    this on the parent drains the stats pipe first and renders the
    consolidated view (a child serving the endpoint over HTTP renders
    its own). *)
val metrics_body : t -> string

(** Flight-recorder dump: flush the partial window, render the whole
    ring as [{"capacity":…, "interval":…, "rollups":[…]}].  Wired to
    SIGUSR1 by [flash_serve]. *)
val recorder_dump : t -> string

(** Newest [n] flight-recorder rollups, oldest first — the data behind
    [GET /server-status?window=N]. *)
val recorder_window : t -> int -> Obs.Recorder.rollup list
