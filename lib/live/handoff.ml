(* Bounded lock-free hand-off ring (Vyukov's array queue).

   Used by the sharded server when SO_REUSEPORT is unavailable: one
   acceptor domain pushes accepted fds, shard domains pop them.  That
   is SPMC, but the algorithm is full MPMC — each slot carries a
   sequence number that tickets exactly one producer and one consumer
   per lap, so neither side ever spins on the other's progress.

   Memory model: [slots] is a plain array, but every write to a slot
   is published by an [Atomic.set] on that slot's sequence number and
   read only after an [Atomic.get] observes it (OCaml atomics are SC),
   so the value handed off is never stale. *)

type 'a t = {
  mask : int;
  seqs : int Atomic.t array;
  slots : 'a option array;
  head : int Atomic.t; (* next ticket to pop *)
  tail : int Atomic.t; (* next ticket to push *)
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Handoff.create: capacity <= 0";
  (* Two slots minimum (Vyukov's precondition).  With a single slot the
     sequence arithmetic degenerates: after a push the slot's ticket,
     [pos + 1], is exactly the next push position, so every push claims
     the slot and silently overwrites an unconsumed element instead of
     reporting the ring full. *)
  let cap = ref 2 in
  while !cap < capacity do
    cap := !cap * 2
  done;
  let cap = !cap in
  {
    mask = cap - 1;
    seqs = Array.init cap Atomic.make;
    slots = Array.make cap None;
    head = Atomic.make 0;
    tail = Atomic.make 0;
  }

let capacity t = t.mask + 1

let length t =
  (* Racy by nature; clamp so callers never see a negative or
     over-capacity occupancy from a torn pair of reads. *)
  let n = Atomic.get t.tail - Atomic.get t.head in
  if n < 0 then 0 else min n (t.mask + 1)

let rec push t v =
  let pos = Atomic.get t.tail in
  let i = pos land t.mask in
  let seq = Atomic.get t.seqs.(i) in
  if seq = pos then
    if Atomic.compare_and_set t.tail pos (pos + 1) then begin
      t.slots.(i) <- Some v;
      Atomic.set t.seqs.(i) (pos + 1);
      true
    end
    else push t v (* lost the ticket race; retry *)
  else if seq < pos then false (* a full lap behind: ring is full *)
  else push t v (* another producer advanced tail; reread *)

let rec pop t =
  let pos = Atomic.get t.head in
  let i = pos land t.mask in
  let seq = Atomic.get t.seqs.(i) in
  if seq = pos + 1 then
    if Atomic.compare_and_set t.head pos (pos + 1) then begin
      let v = t.slots.(i) in
      t.slots.(i) <- None;
      Atomic.set t.seqs.(i) (pos + t.mask + 1);
      match v with
      | Some _ -> v
      | None -> assert false (* slot published by seq, cannot be empty *)
    end
    else pop t
  else if seq <= pos then None (* slot not yet published: ring is empty *)
  else pop t
