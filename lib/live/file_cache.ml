type entry = {
  body : string;
  mtime : float;
  size : int;
  header : string;
}

type t = {
  lru : (string, entry) Flash_util.Lru.t;
  mutable hits : int;
  mutable misses : int;
  evicted : int ref;
}

let create ~capacity_bytes =
  let evicted = ref 0 in
  {
    lru =
      Flash_util.Lru.create
        ~on_evict:(fun _ _ -> incr evicted)
        ~capacity:(max 1 capacity_bytes) ();
    hits = 0;
    misses = 0;
    evicted;
  }

let find t path ~mtime =
  match Flash_util.Lru.find t.lru path with
  | Some entry when entry.mtime = mtime ->
      t.hits <- t.hits + 1;
      Some entry
  | Some _ ->
      ignore (Flash_util.Lru.remove t.lru path);
      t.misses <- t.misses + 1;
      None
  | None ->
      t.misses <- t.misses + 1;
      None

let find_trusted t path =
  match Flash_util.Lru.find t.lru path with
  | Some entry ->
      t.hits <- t.hits + 1;
      Some entry
  | None ->
      t.misses <- t.misses + 1;
      None

let insert t path entry =
  Flash_util.Lru.add t.lru path entry
    ~weight:(String.length entry.body + String.length entry.header)

let remove t path = ignore (Flash_util.Lru.remove t.lru path)
let bytes t = Flash_util.Lru.weight t.lru
let entries t = Flash_util.Lru.length t.lru
let hits t = t.hits
let misses t = t.misses
let evictions t = !(t.evicted)
