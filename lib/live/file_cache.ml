type entry = {
  body : Iovec.bigstring;
  mapped : bool;
  mtime : float;
  size : int;
  etag : string;
  encoding : string option;
  header_keep : Iovec.bigstring;
  header_close : Iovec.bigstring;
  header_304_keep : Iovec.bigstring;
  header_304_close : Iovec.bigstring;
}

let body_length entry = Bigarray.Array1.dim entry.body

type t = {
  store : (string, entry) Flash_cache.Store.t;
  mapped : Obs.Gauge.t;  (* file bytes currently mapped via entries *)
  (* Origin path -> variant keys living beside it in the store, so a
     variant can never outlive (or outfreshen) its origin. *)
  variants : (string, string list) Hashtbl.t;
  (* Variant keys whose origin was just evicted.  The evict hook runs
     inside store operations where re-entrant removal would corrupt the
     policy state, so it only queues; every public operation flushes. *)
  mutable pending_drop : string list;
}

(* Variant keys embed the encoding after a NUL — impossible in a
   request path, so variants and origins share one namespace, one
   policy, and one budget. *)
let variant_key path ~encoding = path ^ "\x00" ^ encoding

let origin_of_key key =
  match String.index_opt key '\x00' with
  | None -> None
  | Some i -> Some (String.sub key 0 i)

let create ?(policy = Flash_cache.Policy.Lru) ?admission ?budget
    ~capacity_bytes () =
  let mapped = Obs.Gauge.create () in
  let variants = Hashtbl.create 16 in
  let t_ref = ref None in
  let on_evict key (entry : entry) =
    if entry.mapped then Obs.Gauge.add mapped (-(body_length entry));
    match !t_ref with
    | None -> ()
    | Some t -> (
        match origin_of_key key with
        | Some origin ->
            (* A variant died: forget it under its origin. *)
            (match Hashtbl.find_opt variants origin with
            | Some keys ->
                Hashtbl.replace variants origin
                  (List.filter (fun k -> not (String.equal k key)) keys)
            | None -> ())
        | None -> (
            (* An origin died: queue its variants for removal. *)
            match Hashtbl.find_opt variants key with
            | Some keys ->
                Hashtbl.remove variants key;
                t.pending_drop <- keys @ t.pending_drop
            | None -> ()))
  in
  let t =
    {
      store =
        Flash_cache.Store.create ~policy ?admission ?budget ~name:"file"
          ~on_evict
          ~capacity:(max 1 capacity_bytes) ();
      mapped;
      variants;
      pending_drop = [];
    }
  in
  t_ref := Some t;
  t

(* Drop variants orphaned by an origin eviction.  Each removal goes
   through the evict hook (uncharging its mapping) and may queue
   nothing further — variants have no variants — so this terminates. *)
let flush_pending t =
  let rec loop () =
    match t.pending_drop with
    | [] -> ()
    | key :: rest ->
        t.pending_drop <- rest;
        ignore (Flash_cache.Store.remove ~evict:true t.store key);
        loop ()
  in
  loop ()

let validate ~mtime ~size (entry : entry) =
  entry.mtime = mtime && entry.size = size

let find t path ~mtime ~size =
  let r =
    Flash_cache.Store.find_validated t.store path ~validate:(validate ~mtime ~size)
  in
  flush_pending t;
  r

let find_trusted t path = Flash_cache.Store.find t.store path

(* A variant hit requires the *origin's* validators to still hold: the
   variant entry carries them, so a same-second rewrite of the origin
   invalidates every representation at once. *)
let find_variant t path ~encoding ~mtime ~size =
  let r =
    Flash_cache.Store.find_validated t.store (variant_key path ~encoding)
      ~validate:(validate ~mtime ~size)
  in
  flush_pending t;
  r

let entry_weight entry =
  body_length entry
  + Bigarray.Array1.dim entry.header_keep
  + Bigarray.Array1.dim entry.header_close
  + Bigarray.Array1.dim entry.header_304_keep
  + Bigarray.Array1.dim entry.header_304_close

let insert_keyed t key (entry : entry) =
  (* Replacement would bypass [on_evict]; drop the old entry through the
     hook first so its mapping is uncharged. *)
  ignore (Flash_cache.Store.remove ~evict:true t.store key);
  if Flash_cache.Store.add t.store key entry ~weight:(entry_weight entry)
  then begin
    if entry.mapped then Obs.Gauge.add t.mapped (body_length entry)
  end;
  flush_pending t

let insert t path (entry : entry) = insert_keyed t path entry

let insert_variant t path ~encoding (entry : entry) =
  let key = variant_key path ~encoding in
  insert_keyed t key entry;
  (* Register only if admitted (rejection serves without caching). *)
  if Flash_cache.Store.mem t.store key then begin
    let existing = Option.value ~default:[] (Hashtbl.find_opt t.variants path) in
    if not (List.mem key existing) then
      Hashtbl.replace t.variants path (key :: existing)
  end

let remove t path =
  ignore (Flash_cache.Store.remove ~evict:true t.store path);
  flush_pending t

let read_body fd size =
  let buf = Bytes.create size in
  let rec loop off =
    if off >= size then size
    else
      match Unix.read fd buf off (size - off) with
      | 0 -> off
      | n -> loop (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop off
  in
  let got = loop 0 in
  Iovec.of_bytes buf ~len:got

let map_body fd ~size =
  if size <= 0 then (Iovec.create 0, false)
  else
    match
      Unix.map_file fd Bigarray.char Bigarray.c_layout false [| size |]
    with
    | genarray -> (Bigarray.array1_of_genarray genarray, true)
    | exception _ -> (read_body fd size, false)

(* Pinned hot tier: pinning is by origin path; variants stay under
   normal replacement (they are re-derivable from the pinned origin). *)
let pin t path = Flash_cache.Store.pin t.store path
let unpin t path = Flash_cache.Store.unpin t.store path

let unpin_all t =
  List.iter
    (fun k -> ignore (Flash_cache.Store.unpin t.store k))
    (Flash_cache.Store.pinned_keys t.store)

let pinned t path = Flash_cache.Store.pinned t.store path
let pinned_bytes t = Flash_cache.Store.pinned_bytes t.store
let pinned_count t = Flash_cache.Store.pinned_count t.store
let pinned_paths t = Flash_cache.Store.pinned_keys t.store
let resident t path = Flash_cache.Store.mem t.store path

let is_variant_key key = String.contains key '\x00'

(* Warming inputs: per-path demand stats and doorkeeper rejections.
   Variant keys are skipped — a variant cannot be prefetched directly,
   and its demand already shows on the origin. *)
let fold_paths t ~init ~f =
  Flash_cache.Store.fold_keys t.store ~init ~f:(fun acc key ks ->
      if is_variant_key key then acc else f acc key ks)

let rejected_paths t =
  List.filter
    (fun k -> not (is_variant_key k))
    (Flash_cache.Store.rejected_keys t.store)

let bytes t = Flash_cache.Store.weight t.store
let entries t = Flash_cache.Store.length t.store
let mapped_bytes t = Obs.Gauge.value t.mapped
let hits t = Flash_cache.Store.hits t.store
let misses t = Flash_cache.Store.misses t.store
let evictions t = Flash_cache.Store.evictions t.store
let stats t = Flash_cache.Store.stats t.store
