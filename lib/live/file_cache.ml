type entry = {
  body : Iovec.bigstring;
  mapped : bool;
  mtime : float;
  size : int;
  header_keep : Iovec.bigstring;
  header_close : Iovec.bigstring;
}

type t = {
  lru : (string, entry) Flash_util.Lru.t;
  mutable hits : int;
  mutable misses : int;
  evicted : int ref;
  mapped : Obs.Gauge.t;  (* file bytes currently mapped via entries *)
}

let create ~capacity_bytes =
  let evicted = ref 0 in
  let mapped = Obs.Gauge.create () in
  {
    lru =
      Flash_util.Lru.create
        ~on_evict:(fun _ (entry : entry) ->
          incr evicted;
          if entry.mapped then Obs.Gauge.add mapped (-entry.size))
        ~capacity:(max 1 capacity_bytes) ();
    hits = 0;
    misses = 0;
    evicted;
    mapped;
  }

(* [Lru.remove] bypasses [on_evict]; every non-eviction removal goes
   through here so the mapped-bytes accounting cannot drift. *)
let forget t path =
  match Flash_util.Lru.remove t.lru path with
  | Some entry -> if entry.mapped then Obs.Gauge.add t.mapped (-entry.size)
  | None -> ()

let find t path ~mtime ~size =
  match Flash_util.Lru.find t.lru path with
  | Some entry when entry.mtime = mtime && entry.size = size ->
      t.hits <- t.hits + 1;
      Some entry
  | Some _ ->
      forget t path;
      t.misses <- t.misses + 1;
      None
  | None ->
      t.misses <- t.misses + 1;
      None

let find_trusted t path =
  match Flash_util.Lru.find t.lru path with
  | Some entry ->
      t.hits <- t.hits + 1;
      Some entry
  | None ->
      t.misses <- t.misses + 1;
      None

let entry_weight entry =
  entry.size
  + Bigarray.Array1.dim entry.header_keep
  + Bigarray.Array1.dim entry.header_close

let insert t path (entry : entry) =
  (* Replacement would bypass [on_evict]; drop the old entry first so
     its mapping is uncharged. *)
  forget t path;
  if entry.mapped then Obs.Gauge.add t.mapped entry.size;
  Flash_util.Lru.add t.lru path entry ~weight:(entry_weight entry)

let remove t path = forget t path

let read_body fd size =
  let buf = Bytes.create size in
  let rec loop off =
    if off >= size then size
    else
      match Unix.read fd buf off (size - off) with
      | 0 -> off
      | n -> loop (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop off
  in
  let got = loop 0 in
  Iovec.of_bytes buf ~len:got

let map_body fd ~size =
  if size <= 0 then (Iovec.create 0, false)
  else
    match
      Unix.map_file fd Bigarray.char Bigarray.c_layout false [| size |]
    with
    | genarray -> (Bigarray.array1_of_genarray genarray, true)
    | exception _ -> (read_body fd size, false)

let bytes t = Flash_util.Lru.weight t.lru
let entries t = Flash_util.Lru.length t.lru
let mapped_bytes t = Obs.Gauge.value t.mapped
let hits t = t.hits
let misses t = t.misses
let evictions t = !(t.evicted)
