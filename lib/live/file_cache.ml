type entry = {
  body : Iovec.bigstring;
  mapped : bool;
  mtime : float;
  size : int;
  header_keep : Iovec.bigstring;
  header_close : Iovec.bigstring;
}

type t = {
  store : (string, entry) Flash_cache.Store.t;
  mapped : Obs.Gauge.t;  (* file bytes currently mapped via entries *)
}

let create ?(policy = Flash_cache.Policy.Lru) ?admission ?budget
    ~capacity_bytes () =
  let mapped = Obs.Gauge.create () in
  {
    store =
      Flash_cache.Store.create ~policy ?admission ?budget ~name:"file"
        ~on_evict:(fun _ (entry : entry) ->
          if entry.mapped then Obs.Gauge.add mapped (-entry.size))
        ~capacity:(max 1 capacity_bytes) ();
    mapped;
  }

let find t path ~mtime ~size =
  Flash_cache.Store.find_validated t.store path ~validate:(fun entry ->
      entry.mtime = mtime && entry.size = size)

let find_trusted t path = Flash_cache.Store.find t.store path

let entry_weight entry =
  entry.size
  + Bigarray.Array1.dim entry.header_keep
  + Bigarray.Array1.dim entry.header_close

let insert t path (entry : entry) =
  (* Replacement would bypass [on_evict]; drop the old entry through the
     hook first so its mapping is uncharged. *)
  ignore (Flash_cache.Store.remove ~evict:true t.store path);
  if Flash_cache.Store.add t.store path entry ~weight:(entry_weight entry)
  then begin
    if entry.mapped then Obs.Gauge.add t.mapped entry.size
  end

let remove t path = ignore (Flash_cache.Store.remove ~evict:true t.store path)

let read_body fd size =
  let buf = Bytes.create size in
  let rec loop off =
    if off >= size then size
    else
      match Unix.read fd buf off (size - off) with
      | 0 -> off
      | n -> loop (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop off
  in
  let got = loop 0 in
  Iovec.of_bytes buf ~len:got

let map_body fd ~size =
  if size <= 0 then (Iovec.create 0, false)
  else
    match
      Unix.map_file fd Bigarray.char Bigarray.c_layout false [| size |]
    with
    | genarray -> (Bigarray.array1_of_genarray genarray, true)
    | exception _ -> (read_body fd size, false)

let bytes t = Flash_cache.Store.weight t.store
let entries t = Flash_cache.Store.length t.store
let mapped_bytes t = Obs.Gauge.value t.mapped
let hits t = Flash_cache.Store.hits t.store
let misses t = Flash_cache.Store.misses t.store
let evictions t = Flash_cache.Store.evictions t.store
let stats t = Flash_cache.Store.stats t.store
