(** Mapped-file cache for the live server — the paper's mmap'd chunk
    cache (§4) on the live side.

    Bodies are [Unix.map_file] Bigarray mappings (with a read-and-copy
    fallback for filesystems that refuse to map), so a cache hit serves
    file bytes straight from the mapping via a gather write with zero
    userspace copies.  Entries carry pre-rendered 200 {e and} 304
    headers (keep-alive and close variants, aligned per server config) —
    the header cache of §4.3 for free, extended to conditional replies
    so a cached 304 is a single gather write of one pre-built iovec.
    Bounded by total resident bytes (body + headers); replacement and
    admission are pluggable via {!Flash_cache.Policy} (LRU, always-admit
    by default), and the cache can share a {!Flash_cache.Budget} with
    others.  A mapped-bytes gauge tracks how much file data is currently
    mapped through the cache.

    {b Variants.}  Alternate representations (today: gzip) live in the
    same store under a derived key, so one policy, one capacity and one
    shared budget govern every representation.  A variant entry carries
    the {e origin's} validators ([mtime], [size]) and is dropped
    whenever its origin is evicted or invalidated — a variant can never
    outlive the plain file it encodes.

    Eviction stops charging the mapping immediately (the gauge drops);
    the [munmap] itself happens when the last reference dies — an
    in-flight response may still be sending from the mapping, so the
    unmap is delegated to the runtime finalizer rather than issued
    eagerly (documented deviation from Flash's explicit unmaps; the
    simulator's [Mmap_cache] models those faithfully). *)

type entry = {
  body : Iovec.bigstring;  (** mmap-backed when [mapped] *)
  mapped : bool;
  mtime : float;  (** origin file's mtime (also for variants) *)
  size : int;  (** origin file's byte size (also for variants) *)
  etag : string;  (** rendered strong validator, quotes included *)
  encoding : string option;  (** [Some "gzip"] for a variant entry *)
  header_keep : Iovec.bigstring;
      (** rendered 200 header, [Connection: keep-alive], aligned *)
  header_close : Iovec.bigstring;  (** same, [Connection: close] *)
  header_304_keep : Iovec.bigstring;
      (** rendered 304 reply (headers only), keep-alive *)
  header_304_close : Iovec.bigstring;  (** same, [Connection: close] *)
}

(** Length of the cached body in bytes — the origin size for plain
    entries, the compressed length for variants. *)
val body_length : entry -> int

(** Total resident weight of an entry (body plus its four pre-rendered
    headers) — what it is charged against capacity and budget. *)
val entry_weight : entry -> int

type t

val create :
  ?policy:Flash_cache.Policy.kind ->
  ?admission:Flash_cache.Policy.admission ->
  ?budget:Flash_cache.Budget.t ->
  capacity_bytes:int ->
  unit ->
  t

(** [find t path ~mtime ~size] — hit only if both the cached mtime and
    size match: a same-second rewrite that changes the length must not
    serve the stale mapping.  A stale entry is dropped through the evict
    hook, so the mapped-bytes gauge cannot drift. *)
val find : t -> string -> mtime:float -> size:int -> entry option

(** Lookup without a freshness check — how Flash's caches trust entries
    between invalidations; staleness is corrected when a helper's fresh
    stat disagrees. *)
val find_trusted : t -> string -> entry option

(** [find_variant t path ~encoding ~mtime ~size] — like {!find} but for
    an alternate representation; [mtime]/[size] are the {e origin's}
    validators, so rewriting the origin invalidates its variants. *)
val find_variant :
  t -> string -> encoding:string -> mtime:float -> size:int -> entry option

(** Insert if the admission policy accepts it (rejection is silent: the
    response is served without caching). *)
val insert : t -> string -> entry -> unit

(** Insert an alternate representation under [path]'s variant key and
    couple its lifetime to the origin: when the origin entry is evicted,
    invalidated or removed, the variant is dropped too (through the
    evict hook, so gauges stay exact). *)
val insert_variant : t -> string -> encoding:string -> entry -> unit

val remove : t -> string -> unit

(** {1 Pinned hot tier}

    The cache warmer pins its ranked hot set so the victim walk cannot
    evict it between mining cycles.  Pinning is by origin path; gzip
    variants stay under normal replacement (they are re-derivable from
    the pinned origin).  Pinned entries still count against capacity
    and any shared budget. *)

(** Pin a resident entry; [false] if [path] is not resident. *)
val pin : t -> string -> bool

(** Release a pin; [false] if [path] was not pinned.  The entry rejoins
    normal replacement order. *)
val unpin : t -> string -> bool

val unpin_all : t -> unit
val pinned : t -> string -> bool
val pinned_bytes : t -> int
val pinned_count : t -> int
val pinned_paths : t -> string list

(** Residency probe that does not touch the hit/miss counters (unlike
    {!find_trusted}) — the warmer's "already cached?" check. *)
val resident : t -> string -> bool

(** {1 Warming inputs}

    Per-path demand the miner folds into its ranking.  Variant keys are
    skipped: a variant cannot be prefetched directly and its demand
    already shows on its origin. *)

(** Fold over resident origin paths with their hit/recency/size
    stats. *)
val fold_paths :
  t -> init:'a -> f:('a -> string -> Flash_cache.Store.key_stat -> 'a) -> 'a

(** Paths the admission doorkeeper has seen and turned away — demand
    that never became resident. *)
val rejected_paths : t -> string list

(** Map [size] bytes of [fd] (position-independent; the descriptor may
    be closed afterwards, the mapping survives).  Falls back to reading
    the contents into a fresh buffer when mapping fails; the second
    component is [true] when the body is a real mapping. *)
val map_body : Unix.file_descr -> size:int -> Iovec.bigstring * bool

val bytes : t -> int
val entries : t -> int

(** File bytes currently mapped through cache entries.  Drops on
    eviction/removal — the regression signal that eviction releases
    mappings. *)
val mapped_bytes : t -> int

val hits : t -> int
val misses : t -> int

(** Entries pushed out by capacity pressure (explicit {!remove}s are not
    counted). *)
val evictions : t -> int

(** Policy name, capacity and counters for /server-status. *)
val stats : t -> Flash_cache.Store.stats
