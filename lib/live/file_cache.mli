(** Application-level file content cache for the live server.

    This is the portable stand-in for Flash's mapped-file chunk cache:
    OCaml writes to sockets from bytes, so caching file *contents* plays
    the role the mmap chunk cache plays in the paper (documented
    deviation in DESIGN.md).  Bounded by total bytes, LRU replacement;
    entries also carry the rendered response header, giving the header
    cache for free.  Entries are validated against the file's mtime. *)

type entry = {
  body : string;
  mtime : float;
  size : int;
  header : string;  (** rendered 200 header, aligned per server config *)
}

type t

val create : capacity_bytes:int -> t

(** [find t path ~mtime] — hit only if cached mtime matches. *)
val find : t -> string -> mtime:float -> entry option

(** Lookup without an mtime check — how Flash's caches trust entries
    between invalidations; staleness is corrected when a helper's fresh
    stat disagrees. *)
val find_trusted : t -> string -> entry option

val insert : t -> string -> entry -> unit
val remove : t -> string -> unit
val bytes : t -> int
val entries : t -> int
val hits : t -> int
val misses : t -> int

(** Entries pushed out by capacity pressure (explicit {!remove}s are not
    counted). *)
val evictions : t -> int
