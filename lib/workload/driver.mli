(** Experiment runner: builds a machine, installs a fileset, starts a
    server, spawns closed-loop HTTP clients, and measures steady-state
    throughput over a simulated interval.

    Clients model the paper's event-driven load generator: each issues
    requests as fast as the server completes them, over a fresh
    connection per request (HTTP/1.0) or a persistent one (HTTP/1.1,
    used by the WAN experiment).  Client work costs no server CPU. *)

type result = {
  label : string;
  os : string;
  clients : int;
  duration : float;  (** measured interval, simulated seconds *)
  completed : int;  (** responses finished during the interval *)
  errors : int;
  mbits_per_s : float;  (** response bytes delivered to clients *)
  requests_per_s : float;
  cpu_utilization : float;
  disk_utilization : float;
  disk_reads : int;
  ctx_switches_per_s : float;
  helpers_spawned : int;
  cache_capacity_bytes : int;  (** buffer cache size after reservations *)
  latency_p50_ms : float;  (** steady-state response time percentiles *)
  latency_p95_ms : float;
  timeseries : Obs.Recorder.rollup list;
      (** per-window flight-recorder rollups over the measured interval,
          on the virtual clock, oldest first — the simulated counterpart
          of the live server's [?window=N] view *)
}

val pp_result : Format.formatter -> result -> unit

(** [run ~profile ~server ~fileset ~next ()] — [next step] gives the path
    requested at global step [step] (clients share the stream, like the
    paper's log replay).

    @param clients    concurrent simulated clients (default 64)
    @param persistent reuse connections, HTTP/1.1 (default false)
    @param prewarm    preload the most popular files into the buffer
                      cache up to capacity before starting (default
                      true; the paper measures steady state)
    @param warmup     simulated seconds before measurement (default 3)
    @param duration   measured simulated seconds (default 10)
    @param recorder_interval flight-recorder window length, simulated
                      seconds (default 1) *)
val run :
  ?seed:int ->
  ?clients:int ->
  ?persistent:bool ->
  ?link_rate:float ->
  ?warmup:float ->
  ?duration:float ->
  ?prewarm:bool ->
  ?recorder_interval:float ->
  profile:Simos.Os_profile.t ->
  server:Flash.Config.t ->
  fileset:Fileset.t ->
  next:(int -> string) ->
  unit ->
  result
