(** Per-request HTTP/1.1 semantics mixed into a replayed trace: which
    fraction of requests are conditional revalidations (304, no body),
    single byte ranges (206, partial body) or gzip-negotiated (variant
    representation).  Drawn independently of the popularity stream, as
    in real logs where any document attracts all request shapes. *)

type kind = Plain | Conditional | Range | Gzip

type t

val kind_name : kind -> string

val all_kinds : kind list

(** [generate ~length ~conditional ~range ~gzip ~seed] — i.i.d. draws
    with the given fractions; the remainder is [Plain].
    @raise Invalid_argument on fractions outside [0,1] or summing past 1. *)
val generate :
  length:int ->
  conditional:float ->
  range:float ->
  gzip:float ->
  seed:int ->
  t

(** Kind for replay step [i] (wraps around, like {!Trace.request_path}). *)
val kind : t -> int -> kind

(** Requests per kind over one full pass. *)
val counts : t -> (kind * int) list
