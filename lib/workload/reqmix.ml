type kind = Plain | Conditional | Range | Gzip

type t = kind array

let kind_name = function
  | Plain -> "plain"
  | Conditional -> "conditional"
  | Range -> "range"
  | Gzip -> "gzip"

let all_kinds = [ Plain; Conditional; Range; Gzip ]

let generate ~length ~conditional ~range ~gzip ~seed =
  if length <= 0 then invalid_arg "Reqmix.generate: length <= 0";
  let check name f =
    if f < 0. || f > 1. then
      invalid_arg (Printf.sprintf "Reqmix.generate: %s not in [0,1]" name)
  in
  check "conditional" conditional;
  check "range" range;
  check "gzip" gzip;
  if conditional +. range +. gzip > 1. +. 1e-9 then
    invalid_arg "Reqmix.generate: fractions sum past 1";
  let rng = Sim.Rng.create ~seed in
  Array.init length (fun _ ->
      let u = Sim.Rng.float rng in
      if u < conditional then Conditional
      else if u < conditional +. range then Range
      else if u < conditional +. range +. gzip then Gzip
      else Plain)

let kind t i = t.(i mod Array.length t)

let counts t =
  let c = Hashtbl.create 4 in
  Array.iter
    (fun k ->
      Hashtbl.replace c k (1 + Option.value ~default:0 (Hashtbl.find_opt c k)))
    t;
  List.map (fun k -> (k, Option.value ~default:0 (Hashtbl.find_opt c k))) all_kinds
