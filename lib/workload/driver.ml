type result = {
  label : string;
  os : string;
  clients : int;
  duration : float;
  completed : int;
  errors : int;
  mbits_per_s : float;
  requests_per_s : float;
  cpu_utilization : float;
  disk_utilization : float;
  disk_reads : int;
  ctx_switches_per_s : float;
  helpers_spawned : int;
  cache_capacity_bytes : int;
  latency_p50_ms : float;
  latency_p95_ms : float;
  timeseries : Obs.Recorder.rollup list;
}

let pp_result fmt r =
  Format.fprintf fmt
    "%-10s %-8s clients=%-4d %7.2f Mb/s %8.1f req/s cpu=%4.0f%% disk=%4.0f%% \
     switches/s=%7.0f helpers=%d"
    r.label r.os r.clients r.mbits_per_s r.requests_per_s
    (100. *. r.cpu_utilization)
    (100. *. r.disk_utilization)
    r.ctx_switches_per_s r.helpers_spawned

let request_string ~persistent path =
  if persistent then
    "GET " ^ path ^ " HTTP/1.1\r\nHost: sim.example\r\nUser-Agent: loadgen\r\n\r\n"
  else
    "GET " ^ path ^ " HTTP/1.0\r\nHost: sim.example\r\nUser-Agent: loadgen\r\n\r\n"

(* One closed-loop client: request, wait for the full response, repeat.
   Response times land in [latency] (seconds). *)
let client_loop engine net ~next_path ~persistent ~link_rate ~rtt ~latency
    ~obs_latency () =
  let conn = ref None in
  let rec loop () =
    let path = next_path () in
    let c =
      match !conn with
      | Some c
        when persistent
             && (not (Simos.Net.server_closed c))
             && not (Simos.Net.client_closed c) ->
          c
      | _ ->
          let c = Simos.Net.connect net ~link_rate ~rtt in
          conn := Some c;
          c
    in
    let started = Sim.Engine.now engine in
    Simos.Net.client_send c (request_string ~persistent path);
    (match Simos.Net.client_await_response c with
    | `Ok ->
        let rt = Sim.Engine.now engine -. started in
        Sim.Stat.Histogram.add latency rt;
        Obs.Histogram.record obs_latency rt;
        if not persistent then begin
          Simos.Net.client_close c;
          conn := None
        end
    | `Closed ->
        Simos.Net.client_close c;
        conn := None);
    loop ()
  in
  loop ()

(* Preload the hottest files until the buffer cache is full — steady
   state from the first measured second. *)
let prewarm_files kernel files =
  let cache = Simos.Kernel.cache kernel in
  let fs = Simos.Kernel.fs kernel in
  let capacity = Simos.Buffer_cache.capacity_pages cache in
  let n = Array.length files in
  let rec warm i =
    if i < n && Simos.Buffer_cache.pages cache < capacity then begin
      Simos.Fs.warm_meta fs files.(i);
      Simos.Fs.warm fs files.(i);
      warm (i + 1)
    end
  in
  warm 0

let run ?(seed = 7) ?(clients = 64) ?(persistent = false) ?link_rate
    ?(warmup = 3.) ?(duration = 10.) ?(prewarm = true)
    ?(recorder_interval = 1.0) ~profile ~server ~fileset ~next () =
  let engine = Sim.Engine.create ~seed () in
  let kernel = Simos.Kernel.create engine profile in
  let files = Fileset.install fileset (Simos.Kernel.fs kernel) in
  let srv = Flash.Server.start kernel server in
  if prewarm then prewarm_files kernel files;
  let net = Simos.Kernel.net kernel in
  let link_rate =
    match link_rate with
    | Some r -> r
    | None -> profile.Simos.Os_profile.lan_rate
  in
  let rtt = profile.Simos.Os_profile.rtt in
  let step = ref (-1) in
  let next_path () =
    incr step;
    next !step
  in
  let latency = Sim.Stat.Histogram.create ~lo:0. ~hi:10. ~buckets:2000 in
  let obs_latency = Obs.Histogram.create () in
  for i = 1 to clients do
    ignore
      (Sim.Proc.spawn engine
         ~name:(Printf.sprintf "client-%d" i)
         (client_loop engine net ~next_path ~persistent ~link_rate ~rtt
            ~latency ~obs_latency))
  done;
  ignore (Sim.Engine.run ~until:warmup engine);
  (* Only measure steady-state response times. *)
  Sim.Stat.Histogram.reset latency;
  Obs.Histogram.reset obs_latency;
  let cpu = Simos.Kernel.cpu kernel in
  let disk = Simos.Kernel.disk kernel in
  (* Flight recorder on the virtual clock: the same per-window rollups
     the live server keeps, so simulated experiments produce a time
     series, not just end-state totals.  The read closure snapshots the
     sim's cumulative counters; syscall/copy counters have no simulated
     equivalent and stay zero. *)
  let recorder =
    Obs.Recorder.create
      ~capacity:(Stdlib.max 1 (int_of_float (Float.ceil (duration /. recorder_interval)) + 1))
      ~interval:recorder_interval
      ~now:(fun () -> Sim.Engine.now engine)
      ~read:(fun () ->
        ( {
            Obs.Recorder.c_requests = Flash.Server.completed srv;
            c_bytes = Simos.Net.delivered_bytes net;
            c_writev = 0;
            c_write = 0;
            c_copied = 0;
            c_cache_hits = Flash.Server.pathname_hits srv;
            c_cache_misses = Flash.Server.pathname_misses srv;
            c_errors = Flash.Server.errors srv;
            c_wait = 0.;
            c_work = Sim.Cpu.busy_time (Simos.Kernel.cpu kernel);
            c_latency = Obs.Histogram.copy obs_latency;
          },
          {
            Obs.Recorder.g_active = Simos.Net.active_drains net;
            g_helper_queue = 0;
            g_mapped = 0;
          } ))
      ()
  in
  let rec tick_loop () =
    Obs.Recorder.tick recorder;
    Sim.Engine.schedule engine ~delay:recorder_interval tick_loop
  in
  Sim.Engine.schedule engine ~delay:recorder_interval tick_loop;
  let delivered0 = Simos.Net.delivered_bytes net in
  let completed0 = Flash.Server.completed srv in
  let errors0 = Flash.Server.errors srv in
  let cpu_busy0 = Sim.Cpu.busy_time cpu in
  let disk_busy0 = Simos.Disk.busy_time disk in
  let disk_reads0 = Simos.Disk.completed disk in
  let switches0 = Sim.Cpu.switches cpu in
  ignore (Sim.Engine.run ~until:(warmup +. duration) engine);
  let delivered = Simos.Net.delivered_bytes net - delivered0 in
  let completed = Flash.Server.completed srv - completed0 in
  {
    label = server.Flash.Config.label;
    os = profile.Simos.Os_profile.name;
    clients;
    duration;
    completed;
    errors = Flash.Server.errors srv - errors0;
    mbits_per_s = float_of_int delivered *. 8. /. duration /. 1e6;
    requests_per_s = float_of_int completed /. duration;
    cpu_utilization = (Sim.Cpu.busy_time cpu -. cpu_busy0) /. duration;
    disk_utilization = (Simos.Disk.busy_time disk -. disk_busy0) /. duration;
    disk_reads = Simos.Disk.completed disk - disk_reads0;
    ctx_switches_per_s =
      float_of_int (Sim.Cpu.switches cpu - switches0) /. duration;
    helpers_spawned = Flash.Server.helpers_spawned srv;
    cache_capacity_bytes =
      Simos.Memory.cache_capacity (Simos.Kernel.memory kernel);
    latency_p50_ms = 1000. *. Sim.Stat.Histogram.percentile latency 50.;
    latency_p95_ms = 1000. *. Sim.Stat.Histogram.percentile latency 95.;
    timeseries =
      (Obs.Recorder.flush recorder;
       Obs.Recorder.all recorder);
  }
