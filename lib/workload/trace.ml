type t = { fileset : Fileset.t; requests : int array }

let generate ?locality fileset ~length ~alpha ~seed =
  if length <= 0 then invalid_arg "Trace.generate: length <= 0";
  let n = Fileset.file_count fileset in
  let zipf = Zipf.create ~n ~alpha in
  let rng = Sim.Rng.create ~seed in
  let requests =
    match locality with
    | None -> Array.init length (fun _ -> Zipf.sample zipf rng)
    | Some (p, window) ->
        if p < 0. || p > 1. then invalid_arg "Trace.generate: locality p";
        if window <= 0 then invalid_arg "Trace.generate: locality window";
        (* LRU-stack temporal locality on top of Zipf popularity: with
           probability [p], re-request one of the last [window] files. *)
        let requests = Array.make length 0 in
        for i = 0 to length - 1 do
          requests.(i) <-
            (if i > 0 && Sim.Rng.float rng < p then
               requests.(i - 1 - Sim.Rng.int rng (min i window))
             else Zipf.sample zipf rng)
        done;
        requests
  in
  { fileset; requests }

let length t = Array.length t.requests

let request_index t i = t.requests.(i mod Array.length t.requests)

let request_path t i = t.fileset.Fileset.paths.(request_index t i)

let request_size t i = t.fileset.Fileset.sizes.(request_index t i)

let distinct_files t =
  let seen = Hashtbl.create 1024 in
  Array.iter (fun idx -> Hashtbl.replace seen idx ()) t.requests;
  Hashtbl.length seen

let footprint_bytes t =
  let seen = Hashtbl.create 1024 in
  Array.iter (fun idx -> Hashtbl.replace seen idx ()) t.requests;
  Hashtbl.fold
    (fun idx () acc -> acc + t.fileset.Fileset.sizes.(idx))
    seen 0

let save_clf t ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Array.iteri
        (fun i idx ->
          (* Synthetic timestamps: one second per 100 requests. *)
          Printf.fprintf oc
            "192.168.1.%d - - [%s] \"GET %s HTTP/1.0\" 200 %d\n"
            ((i mod 254) + 1)
            (Http.Http_date.format (float_of_int (i / 100)))
            t.fileset.Fileset.paths.(idx)
            t.fileset.Fileset.sizes.(idx))
        t.requests)

(* "host - - [date] \"METH target HTTP/x.y\" status bytes [...]".
   Fields past the status/bytes pair — the live server's machine-
   minable resolved path, its timing suffix — are tolerated, so any
   flash_serve access log replays here. *)
let parse_clf_line line =
  match String.index_opt line '"' with
  | None -> None
  | Some q1 -> (
      match String.index_from_opt line (q1 + 1) '"' with
      | None -> None
      | Some q2 -> (
          let request_part = String.sub line (q1 + 1) (q2 - q1 - 1) in
          let tail = String.sub line (q2 + 1) (String.length line - q2 - 1) in
          match
            ( String.split_on_char ' ' request_part,
              List.filter (( <> ) "") (String.split_on_char ' ' tail) )
          with
          | _meth :: target :: _, _status :: bytes_str :: _rest -> (
              match int_of_string_opt bytes_str with
              | Some bytes when bytes >= 0 && String.length target > 0 ->
                  Some (target, bytes)
              | Some _ | None -> None)
          | _ -> None))

let load_clf ~path =
  let ic = open_in path in
  let entries = ref [] in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      try
        while true do
          match parse_clf_line (input_line ic) with
          | Some entry -> entries := entry :: !entries
          | None -> ()
        done
      with End_of_file -> ());
  let entries = List.rev !entries in
  if entries = [] then failwith ("Trace.load_clf: no parseable lines in " ^ path);
  (* Distinct targets, in first-appearance order, become the fileset; a
     0-byte transfer still needs a 1-byte file. *)
  let index_of = Hashtbl.create 1024 in
  let paths = ref [] and sizes = ref [] and count = ref 0 in
  let requests =
    List.map
      (fun (target, bytes) ->
        match Hashtbl.find_opt index_of target with
        | Some i -> i
        | None ->
            let i = !count in
            Hashtbl.replace index_of target i;
            incr count;
            paths := target :: !paths;
            sizes := max 1 bytes :: !sizes;
            i)
      entries
  in
  let fileset =
    {
      Fileset.spec = Fileset.ece_like ~files:(max 1 !count) ~seed:0;
      paths = Array.of_list (List.rev !paths);
      sizes = Array.of_list (List.rev !sizes);
    }
  in
  { fileset; requests = Array.of_list requests }

let mean_transfer t =
  if Array.length t.requests = 0 then 0.
  else begin
    let total =
      Array.fold_left
        (fun acc idx -> acc + t.fileset.Fileset.sizes.(idx))
        0 t.requests
    in
    float_of_int total /. float_of_int (Array.length t.requests)
  end
