(** Weighted LRU map.

    Entries carry a weight (bytes, or 1 for entry-count limits); when the
    total weight exceeds the capacity, least-recently-used entries are
    evicted through the [on_evict] hook (where the mapped-file cache
    charges its lazy [munmap]).  Backs Flash's three application caches
    and the live server's file cache. *)

type ('k, 'v) t

(** @raise Invalid_argument if [capacity <= 0]. *)
val create : ?on_evict:('k -> 'v -> unit) -> capacity:int -> unit -> ('k, 'v) t

(** Current total weight. *)
val weight : ('k, 'v) t -> int

val capacity : ('k, 'v) t -> int
val length : ('k, 'v) t -> int

(** Lookup and promote to most-recently-used. *)
val find : ('k, 'v) t -> 'k -> 'v option

(** Lookup without promoting. *)
val peek : ('k, 'v) t -> 'k -> 'v option

val mem : ('k, 'v) t -> 'k -> bool

(** Insert or replace (replacement re-weighs), then evict LRU entries
    until within capacity.  A single entry heavier than the capacity is
    admitted alone (matching page-cache behaviour for oversized chunks).
    @raise Invalid_argument on negative weight. *)
val add : ('k, 'v) t -> 'k -> 'v -> weight:int -> unit

(** Remove, returning the value if present.  By default the [on_evict]
    hook is NOT invoked; pass [~evict:true] wherever the hook releases a
    resource (gauges, deferred unmaps) so explicit invalidation cannot
    leave that accounting stale. *)
val remove : ?evict:bool -> ('k, 'v) t -> 'k -> 'v option

(** Shrink capacity (evicting as needed) or grow it. *)
val set_capacity : ('k, 'v) t -> int -> unit

(** Fold over entries from most- to least-recently used. *)
val fold : ('k, 'v) t -> init:'a -> f:('a -> 'k -> 'v -> 'a) -> 'a

val clear : ('k, 'v) t -> unit

(** Least-recently-used entry, if any (for tests). *)
val lru : ('k, 'v) t -> ('k * 'v) option
