(** Dependency-free gzip (RFC 1952) over deflate (RFC 1951).

    {!compress} frames its input in *stored* (uncompressed) deflate
    blocks — protocol-valid gzip any client inflates, produced in one
    memcpy-plus-CRC32 pass.  It exists so the live server's lazy
    variant builder can exercise Content-Encoding negotiation and
    variant caching without a real deflate implementation; deployments
    wanting actual ratios precompress [.gz] siblings offline.

    {!decompress} is a complete inflate (stored, fixed- and
    dynamic-Huffman blocks) with header and CRC/length validation,
    used as the conformance suite's reference decoder. *)

val crc32 : ?crc:int32 -> string -> int32

(** Raw DEFLATE stream of stored blocks (no gzip framing). *)
val deflate_stored : string -> string

(** A gzip member wrapping [deflate_stored] with a reproducible header
    (mtime 0) and CRC-32/ISIZE trailer. *)
val compress : string -> string

(** Inflate a raw DEFLATE stream. *)
val inflate : string -> (string, string) result

(** Parse a gzip member, inflate, and verify CRC-32 and ISIZE. *)
val decompress : string -> (string, string) result
