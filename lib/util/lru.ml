type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable node_weight : int;
  mutable prev : ('k, 'v) node option;  (* toward MRU *)
  mutable next : ('k, 'v) node option;  (* toward LRU *)
}

type ('k, 'v) t = {
  table : ('k, ('k, 'v) node) Hashtbl.t;
  on_evict : 'k -> 'v -> unit;
  mutable cap : int;
  mutable total_weight : int;
  mutable mru : ('k, 'v) node option;
  mutable lru_node : ('k, 'v) node option;
}

let create ?(on_evict = fun _ _ -> ()) ~capacity () =
  if capacity <= 0 then invalid_arg "Lru.create: capacity <= 0";
  {
    table = Hashtbl.create 256;
    on_evict;
    cap = capacity;
    total_weight = 0;
    mru = None;
    lru_node = None;
  }

let weight t = t.total_weight
let capacity t = t.cap
let length t = Hashtbl.length t.table

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.mru <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.lru_node <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.mru;
  node.prev <- None;
  (match t.mru with Some m -> m.prev <- Some node | None -> ());
  t.mru <- Some node;
  if t.lru_node = None then t.lru_node <- Some node

let promote t node =
  unlink t node;
  push_front t node

let find t key =
  match Hashtbl.find_opt t.table key with
  | None -> None
  | Some node ->
      promote t node;
      Some node.value

let peek t key =
  match Hashtbl.find_opt t.table key with
  | None -> None
  | Some node -> Some node.value

let mem t key = Hashtbl.mem t.table key

let evict_lru t =
  match t.lru_node with
  | None -> ()
  | Some node ->
      unlink t node;
      Hashtbl.remove t.table node.key;
      t.total_weight <- t.total_weight - node.node_weight;
      t.on_evict node.key node.value

(* Keep at least one entry: an oversized single entry is admitted alone. *)
let shrink_to_fit t =
  while t.total_weight > t.cap && Hashtbl.length t.table > 1 do
    evict_lru t
  done

let add t key value ~weight =
  if weight < 0 then invalid_arg "Lru.add: negative weight";
  (match Hashtbl.find_opt t.table key with
  | Some node ->
      t.total_weight <- t.total_weight - node.node_weight + weight;
      node.value <- value;
      node.node_weight <- weight;
      promote t node
  | None ->
      let node = { key; value; node_weight = weight; prev = None; next = None } in
      Hashtbl.replace t.table key node;
      t.total_weight <- t.total_weight + weight;
      push_front t node);
  shrink_to_fit t

let remove ?(evict = false) t key =
  match Hashtbl.find_opt t.table key with
  | None -> None
  | Some node ->
      unlink t node;
      Hashtbl.remove t.table key;
      t.total_weight <- t.total_weight - node.node_weight;
      if evict then t.on_evict key node.value;
      Some node.value

let set_capacity t cap =
  if cap <= 0 then invalid_arg "Lru.set_capacity: capacity <= 0";
  t.cap <- cap;
  shrink_to_fit t

let fold t ~init ~f =
  let rec loop acc = function
    | None -> acc
    | Some node -> loop (f acc node.key node.value) node.next
  in
  loop init t.mru

let clear t =
  Hashtbl.reset t.table;
  t.total_weight <- 0;
  t.mru <- None;
  t.lru_node <- None

let lru t =
  match t.lru_node with None -> None | Some n -> Some (n.key, n.value)
