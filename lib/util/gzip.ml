(* A dependency-free gzip codec (RFC 1951/1952).

   The compressor emits *stored* (uncompressed) deflate blocks: valid
   gzip that any decompressor accepts, at a one-pass memcpy-plus-CRC32
   cost.  That is the point — the server's lazy "compressor" exists to
   exercise the Content-Encoding negotiation, variant caching and
   Vary machinery, not to save bytes; sites that want real ratios
   precompress .gz siblings offline and the server maps those.

   The decompressor is a complete inflate (stored, fixed-Huffman and
   dynamic-Huffman blocks) so conformance tests can round-trip both our
   stored-block output and externally precompressed fixtures. *)

(* ---------------- CRC-32 (IEEE, reflected) ---------------- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xedb88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 ?(crc = 0l) s =
  let table = Lazy.force crc_table in
  let c = ref (Int32.logxor crc 0xffffffffl) in
  String.iter
    (fun ch ->
      let idx =
        Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xffl)
      in
      c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8))
    s;
  Int32.logxor !c 0xffffffffl

(* ---------------- stored-block compressor ---------------- *)

let add_u16 buf v =
  Buffer.add_char buf (Char.chr (v land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff))

let add_u32 buf v =
  let v = Int32.to_int (Int32.logand v 0xffffffffl) land 0xffffffff in
  Buffer.add_char buf (Char.chr (v land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xff))

let deflate_stored s =
  let n = String.length s in
  let buf = Buffer.create (n + 5 + (n / 65535 * 5) + 5) in
  if n = 0 then begin
    (* One final, empty stored block. *)
    Buffer.add_char buf '\x01';
    add_u16 buf 0;
    add_u16 buf 0xffff
  end
  else begin
    let pos = ref 0 in
    while !pos < n do
      let len = min 65535 (n - !pos) in
      let final = !pos + len >= n in
      (* Block header: BFINAL bit, BTYPE=00 (stored); byte-aligned. *)
      Buffer.add_char buf (if final then '\x01' else '\x00');
      add_u16 buf len;
      add_u16 buf (lnot len land 0xffff);
      Buffer.add_substring buf s !pos len;
      pos := !pos + len
    done
  end;
  Buffer.contents buf

let compress s =
  let buf = Buffer.create (String.length s + 32) in
  (* Header: magic, CM=deflate, no flags, mtime 0 (reproducible
     output — the variant cache keys freshness off the origin file),
     XFL 0, OS 255 (unknown). *)
  Buffer.add_string buf "\x1f\x8b\x08\x00\x00\x00\x00\x00\x00\xff";
  Buffer.add_string buf (deflate_stored s);
  add_u32 buf (crc32 s);
  add_u32 buf (Int32.of_int (String.length s land 0xffffffff));
  Buffer.contents buf

(* ---------------- inflate ---------------- *)

exception Corrupt of string

type bits = { data : string; mutable pos : int; mutable bit : int }

let bit_ensure b n =
  if b.pos >= String.length b.data && n > 0 then raise (Corrupt "truncated")

let read_bit b =
  bit_ensure b 1;
  let v = (Char.code b.data.[b.pos] lsr b.bit) land 1 in
  if b.bit = 7 then begin
    b.bit <- 0;
    b.pos <- b.pos + 1
  end
  else b.bit <- b.bit + 1;
  v

let read_bits b n =
  let v = ref 0 in
  for i = 0 to n - 1 do
    v := !v lor (read_bit b lsl i)
  done;
  !v

let align_byte b = if b.bit <> 0 then begin b.bit <- 0; b.pos <- b.pos + 1 end

(* Canonical Huffman decoding from code lengths (RFC 1951 §3.2.2):
   per-length first-code/first-symbol tables, walked bit by bit. *)
type huffman = {
  counts : int array;  (* codes of each length 0..15 *)
  symbols : int array;  (* symbols sorted by (length, symbol) *)
}

let build_huffman lengths =
  let counts = Array.make 16 0 in
  Array.iter (fun l -> if l > 0 then counts.(l) <- counts.(l) + 1) lengths;
  let offsets = Array.make 16 0 in
  for l = 1 to 15 do
    offsets.(l) <- offsets.(l - 1) + counts.(l - 1)
  done;
  let total = offsets.(15) + counts.(15) in
  let symbols = Array.make (max 1 total) 0 in
  Array.iteri
    (fun sym l ->
      if l > 0 then begin
        symbols.(offsets.(l)) <- sym;
        offsets.(l) <- offsets.(l) + 1
      end)
    lengths;
  { counts; symbols }

let decode_symbol b h =
  let code = ref 0 and first = ref 0 and index = ref 0 in
  let result = ref (-1) in
  let len = ref 1 in
  while !result < 0 do
    if !len > 15 then raise (Corrupt "bad code");
    code := !code lor read_bit b;
    let count = h.counts.(!len) in
    if !code - !first < count then result := h.symbols.(!index + !code - !first)
    else begin
      index := !index + count;
      first := (!first + count) lsl 1;
      code := !code lsl 1;
      incr len
    end
  done;
  !result

let length_base =
  [| 3; 4; 5; 6; 7; 8; 9; 10; 11; 13; 15; 17; 19; 23; 27; 31; 35; 43; 51; 59;
     67; 83; 99; 115; 131; 163; 195; 227; 258 |]

let length_extra =
  [| 0; 0; 0; 0; 0; 0; 0; 0; 1; 1; 1; 1; 2; 2; 2; 2; 3; 3; 3; 3; 4; 4; 4; 4;
     5; 5; 5; 5; 0 |]

let dist_base =
  [| 1; 2; 3; 4; 5; 7; 9; 13; 17; 25; 33; 49; 65; 97; 129; 193; 257; 385; 513;
     769; 1025; 1537; 2049; 3073; 4097; 6145; 8193; 12289; 16385; 24577 |]

let dist_extra =
  [| 0; 0; 0; 0; 1; 1; 2; 2; 3; 3; 4; 4; 5; 5; 6; 6; 7; 7; 8; 8; 9; 9; 10; 10;
     11; 11; 12; 12; 13; 13 |]

let fixed_lit_huffman =
  lazy
    (build_huffman
       (Array.init 288 (fun i ->
            if i < 144 then 8 else if i < 256 then 9 else if i < 280 then 7
            else 8)))

let fixed_dist_huffman = lazy (build_huffman (Array.make 30 5))

let inflate_block b out lit dist =
  let finished = ref false in
  while not !finished do
    let sym = decode_symbol b lit in
    if sym < 256 then Buffer.add_char out (Char.chr sym)
    else if sym = 256 then finished := true
    else begin
      let sym = sym - 257 in
      if sym >= Array.length length_base then raise (Corrupt "bad length");
      let len = length_base.(sym) + read_bits b length_extra.(sym) in
      let dsym = decode_symbol b dist in
      if dsym >= Array.length dist_base then raise (Corrupt "bad distance");
      let d = dist_base.(dsym) + read_bits b dist_extra.(dsym) in
      let from = Buffer.length out - d in
      if from < 0 then raise (Corrupt "distance too far");
      for i = 0 to len - 1 do
        Buffer.add_char out (Buffer.nth out (from + i))
      done
    end
  done

let code_length_order =
  [| 16; 17; 18; 0; 8; 7; 9; 6; 10; 5; 11; 4; 12; 3; 13; 2; 14; 1; 15 |]

let read_dynamic_tables b =
  let hlit = read_bits b 5 + 257 in
  let hdist = read_bits b 5 + 1 in
  let hclen = read_bits b 4 + 4 in
  let cl_lengths = Array.make 19 0 in
  for i = 0 to hclen - 1 do
    cl_lengths.(code_length_order.(i)) <- read_bits b 3
  done;
  let cl = build_huffman cl_lengths in
  let lengths = Array.make (hlit + hdist) 0 in
  let i = ref 0 in
  while !i < hlit + hdist do
    let sym = decode_symbol b cl in
    if sym < 16 then begin
      lengths.(!i) <- sym;
      incr i
    end
    else begin
      let repeat, value =
        match sym with
        | 16 ->
            if !i = 0 then raise (Corrupt "repeat at start");
            (read_bits b 2 + 3, lengths.(!i - 1))
        | 17 -> (read_bits b 3 + 3, 0)
        | 18 -> (read_bits b 7 + 11, 0)
        | _ -> raise (Corrupt "bad code-length symbol")
      in
      if !i + repeat > hlit + hdist then raise (Corrupt "repeat overflow");
      for _ = 1 to repeat do
        lengths.(!i) <- value;
        incr i
      done
    end
  done;
  ( build_huffman (Array.sub lengths 0 hlit),
    build_huffman (Array.sub lengths hlit hdist) )

let inflate s =
  let b = { data = s; pos = 0; bit = 0 } in
  let out = Buffer.create (String.length s * 2) in
  (try
     let final = ref false in
     while not !final do
       final := read_bit b = 1;
       match read_bits b 2 with
       | 0 ->
           (* Stored: byte-align, LEN, one's-complement check, raw copy. *)
           align_byte b;
           bit_ensure b 1;
           let len = read_bits b 16 in
           let nlen = read_bits b 16 in
           if len lxor nlen <> 0xffff then raise (Corrupt "stored length check");
           if b.pos + len > String.length s then raise (Corrupt "truncated");
           Buffer.add_substring out s b.pos len;
           b.pos <- b.pos + len
       | 1 ->
           inflate_block b out (Lazy.force fixed_lit_huffman)
             (Lazy.force fixed_dist_huffman)
       | 2 ->
           let lit, dist = read_dynamic_tables b in
           inflate_block b out lit dist
       | _ -> raise (Corrupt "bad block type")
     done;
     Ok (Buffer.contents out)
   with
  | Corrupt msg -> Error msg
  | Invalid_argument _ -> Error "truncated")

let u32_at s pos =
  Int32.logor
    (Int32.of_int
       (Char.code s.[pos]
       lor (Char.code s.[pos + 1] lsl 8)
       lor (Char.code s.[pos + 2] lsl 16)))
    (Int32.shift_left (Int32.of_int (Char.code s.[pos + 3])) 24)

let decompress s =
  let n = String.length s in
  if n < 18 then Error "too short for gzip"
  else if s.[0] <> '\x1f' || s.[1] <> '\x8b' then Error "bad magic"
  else if s.[2] <> '\x08' then Error "unknown compression method"
  else begin
    let flg = Char.code s.[3] in
    (* Skip the fixed header, then optional FEXTRA/FNAME/FCOMMENT/FHCRC. *)
    let pos = ref 10 in
    let skip_zstring () =
      while !pos < n && s.[!pos] <> '\x00' do
        incr pos
      done;
      incr pos
    in
    if flg land 0x04 <> 0 && !pos + 2 <= n then begin
      let xlen = Char.code s.[!pos] lor (Char.code s.[!pos + 1] lsl 8) in
      pos := !pos + 2 + xlen
    end;
    if flg land 0x08 <> 0 then skip_zstring ();
    if flg land 0x10 <> 0 then skip_zstring ();
    if flg land 0x02 <> 0 then pos := !pos + 2;
    if !pos + 8 > n then Error "truncated"
    else
      match inflate (String.sub s !pos (n - !pos - 8)) with
      | Error _ as e -> e
      | Ok payload ->
          let crc = u32_at s (n - 8) in
          let isize = u32_at s (n - 4) in
          if crc32 payload <> crc then Error "crc mismatch"
          else if
            Int32.of_int (String.length payload land 0xffffffff) <> isize
          then Error "length mismatch"
          else Ok payload
  end
