module Timer_wheel = Timer_wheel

external poll_available : unit -> bool = "flash_evio_poll_available"
external epoll_available : unit -> bool = "flash_evio_epoll_available"
external fd_setsize : unit -> int = "flash_evio_fd_setsize"

(* Unix.file_descr is a plain int on every non-Windows platform; only
   consulted when [fd_setsize () > 0], which rules Windows out. *)
external int_of_fd : Unix.file_descr -> int = "%identity"

exception Backend_full of string

external raw_poll :
  Unix.file_descr array -> int array -> int array -> int -> int -> int
  = "flash_evio_poll"

external epoll_create : unit -> Unix.file_descr = "flash_evio_epoll_create"

external epoll_ctl : Unix.file_descr -> int -> Unix.file_descr -> int -> unit
  = "flash_evio_epoll_ctl"

external raw_epoll_wait :
  Unix.file_descr -> Unix.file_descr array -> int array -> int -> int -> int
  = "flash_evio_epoll_wait"

external have_reuseport : unit -> bool = "flash_evio_have_reuseport"
external set_reuseport : Unix.file_descr -> unit = "flash_evio_set_reuseport"

type kind = Select | Poll | Epoll

let name = function Select -> "select" | Poll -> "poll" | Epoll -> "epoll"

let available = function
  | Select -> true
  | Poll -> poll_available ()
  | Epoll -> epoll_available ()

let best_available () =
  if available Epoll then Epoll else if available Poll then Poll else Select

let all_available () = List.filter available [ Select; Poll; Epoll ]

let valid_names = "select|poll|epoll|auto"

let of_string = function
  | "select" -> Ok Select
  | "poll" -> Ok Poll
  | "epoll" -> Ok Epoll
  | "auto" -> Ok (best_available ())
  | s ->
      Error
        (Printf.sprintf "unknown event backend %S (expected %s)" s valid_names)

type event = { fd : Unix.file_descr; readable : bool; writable : bool }

(* Result bits shared with the stubs. *)
let bit_read = 1
let bit_write = 2
let bit_invalid = 4

module Backend = struct
  type interest = {
    mutable want_read : bool;
    mutable want_write : bool;
    (* epoll: whether the fd currently lives in the kernel interest set
       (fds with no interest are deleted, not parked with a zero mask,
       so a hung-up peer cannot spin the loop with HUP events nobody
       will consume). *)
    mutable in_kernel : bool;
  }

  type t = {
    kind : kind;
    tbl : (Unix.file_descr, interest) Hashtbl.t;
    (* poll: interest arrays are rebuilt lazily, only after a
       registration change — an unchanged interest set re-polls the
       cached arrays. *)
    mutable dirty : bool;
    mutable pfds : Unix.file_descr array;
    mutable pevents : int array;
    mutable prevents : int array;
    mutable pn : int;
    (* epoll: the kernel-side instance plus reusable out-buffers. *)
    epfd : Unix.file_descr option;
    efds : Unix.file_descr array;
    erevents : int array;
    mutable interest_syscalls : int;
    mutable closed : bool;
  }

  let epoll_batch = 256

  let create kind =
    if not (available kind) then
      invalid_arg
        (Printf.sprintf "Evio.Backend.create: %s not available on this system"
           (name kind));
    {
      kind;
      tbl = Hashtbl.create 64;
      dirty = true;
      pfds = [||];
      pevents = [||];
      prevents = [||];
      pn = 0;
      epfd = (match kind with Epoll -> Some (epoll_create ()) | _ -> None);
      efds = Array.make epoll_batch Unix.stdin;
      erevents = Array.make epoll_batch 0;
      interest_syscalls = 0;
      closed = false;
    }

  let kind t = t.kind
  let name t = name t.kind
  let fd_count t = Hashtbl.length t.tbl
  let interest_syscalls t = t.interest_syscalls

  let mask_of i =
    (if i.want_read then bit_read else 0)
    lor if i.want_write then bit_write else 0

  (* Push an interest change to the kernel; the caller has already
     established that something changed. *)
  let epoll_sync t fd i =
    match t.epfd with
    | None -> ()
    | Some epfd -> (
        let mask = mask_of i in
        t.interest_syscalls <- t.interest_syscalls + 1;
        match (i.in_kernel, mask) with
        | false, 0 -> t.interest_syscalls <- t.interest_syscalls - 1
        | false, m ->
            epoll_ctl epfd 0 fd m;
            i.in_kernel <- true
        | true, 0 ->
            (try epoll_ctl epfd 2 fd 0 with Unix.Unix_error _ -> ());
            i.in_kernel <- false
        | true, m -> epoll_ctl epfd 1 fd m)

  let modify t fd ~read ~write =
    match Hashtbl.find_opt t.tbl fd with
    | Some i when i.want_read = read && i.want_write = write ->
        () (* interest diffing: unchanged fds cost nothing *)
    | Some i -> (
        i.want_read <- read;
        i.want_write <- write;
        match t.kind with
        | Select -> ()
        | Poll -> t.dirty <- true
        | Epoll -> epoll_sync t fd i)
    | None -> (
        (* select can only wait on fd numbers below FD_SETSIZE; refuse
           the registration here (where the caller can shed one
           connection) rather than letting the next wait fail with
           EINVAL and take the whole loop down. *)
        (if t.kind = Select then
           let cap = fd_setsize () in
           if cap > 0 && int_of_fd fd >= cap then
             raise
               (Backend_full
                  (Printf.sprintf "select backend: fd %d >= FD_SETSIZE %d"
                     (int_of_fd fd) cap)));
        let i = { want_read = read; want_write = write; in_kernel = false } in
        Hashtbl.replace t.tbl fd i;
        match t.kind with
        | Select -> ()
        | Poll -> t.dirty <- true
        | Epoll -> epoll_sync t fd i)

  let register = modify

  let deregister t fd =
    match Hashtbl.find_opt t.tbl fd with
    | None -> ()
    | Some i ->
        Hashtbl.remove t.tbl fd;
        (match t.kind with
        | Select -> ()
        | Poll -> t.dirty <- true
        | Epoll ->
            if i.in_kernel then (
              match t.epfd with
              | Some epfd -> (
                  (* The fd may already be closed (the kernel then
                     dropped it from the set itself). *)
                  try epoll_ctl epfd 2 fd 0 with Unix.Unix_error _ -> ())
              | None -> ()))

  (* Drop registrations whose fd the kernel no longer recognises —
     defence against a caller closing an fd before deregistering. *)
  let prune t =
    let stale =
      Hashtbl.fold
        (fun fd _ acc ->
          match Unix.fstat fd with
          | _ -> acc
          | exception Unix.Unix_error _ -> fd :: acc)
        t.tbl []
    in
    List.iter (deregister t) stale

  let timeout_ms = function
    | None -> -1
    | Some s when s <= 0. -> 0
    | Some s -> int_of_float (Float.ceil (s *. 1000.))

  let rebuild_poll t =
    let n = ref 0 in
    Hashtbl.iter
      (fun _ i -> if i.want_read || i.want_write then incr n)
      t.tbl;
    if Array.length t.pfds < !n then begin
      t.pfds <- Array.make !n Unix.stdin;
      t.pevents <- Array.make !n 0;
      t.prevents <- Array.make !n 0
    end;
    let j = ref 0 in
    Hashtbl.iter
      (fun fd i ->
        if i.want_read || i.want_write then begin
          t.pfds.(!j) <- fd;
          t.pevents.(!j) <- mask_of i;
          incr j
        end)
      t.tbl;
    t.pn <- !j;
    t.dirty <- false

  let wait_select t ~timeout =
    let reads, writes =
      Hashtbl.fold
        (fun fd i (rs, ws) ->
          ( (if i.want_read then fd :: rs else rs),
            if i.want_write then fd :: ws else ws ))
        t.tbl ([], [])
    in
    let tmo = match timeout with None -> -1. | Some s -> Float.max 0. s in
    match Unix.select reads writes [] tmo with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
    | exception Unix.Unix_error (Unix.EBADF, _, _) ->
        prune t;
        []
    | readable, writable, _ ->
        let evs = Hashtbl.create 16 in
        List.iter
          (fun fd -> Hashtbl.replace evs fd (true, false))
          readable;
        List.iter
          (fun fd ->
            match Hashtbl.find_opt evs fd with
            | Some (r, _) -> Hashtbl.replace evs fd (r, true)
            | None -> Hashtbl.replace evs fd (false, true))
          writable;
        Hashtbl.fold
          (fun fd (r, w) acc -> { fd; readable = r; writable = w } :: acc)
          evs []

  let wait_poll t ~timeout =
    if t.dirty then rebuild_poll t;
    match raw_poll t.pfds t.pevents t.prevents t.pn (timeout_ms timeout) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
    | exception Unix.Unix_error _ -> []
    | nready ->
        if nready <= 0 then []
        else begin
          let out = ref [] in
          let stale = ref [] in
          for i = 0 to t.pn - 1 do
            let bits = t.prevents.(i) in
            if bits land bit_invalid <> 0 then stale := t.pfds.(i) :: !stale
            else if bits <> 0 then
              out :=
                {
                  fd = t.pfds.(i);
                  readable = bits land bit_read <> 0;
                  writable = bits land bit_write <> 0;
                }
                :: !out
          done;
          List.iter (deregister t) !stale;
          !out
        end

  let wait_epoll t ~timeout =
    match t.epfd with
    | None -> []
    | Some epfd -> (
        match
          raw_epoll_wait epfd t.efds t.erevents epoll_batch
            (timeout_ms timeout)
        with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
        | n ->
            let out = ref [] in
            for i = 0 to n - 1 do
              let bits = t.erevents.(i) in
              out :=
                {
                  fd = t.efds.(i);
                  readable = bits land bit_read <> 0;
                  writable = bits land bit_write <> 0;
                }
                :: !out
            done;
            !out)

  let wait t ~timeout =
    match t.kind with
    | Select -> wait_select t ~timeout
    | Poll -> wait_poll t ~timeout
    | Epoll -> wait_epoll t ~timeout

  let close t =
    if not t.closed then begin
      t.closed <- true;
      match t.epfd with
      | Some epfd -> ( try Unix.close epfd with Unix.Unix_error _ -> ())
      | None -> ()
    end
end
