(** A hashed timer wheel (Varghese & Lauck) for event-loop deadlines.

    The loop owns one wheel and drives it with explicit timestamps —
    there is no clock inside, so tests inject any time base they like.
    Timers hash into [slots] buckets of [tick] seconds; scheduling,
    cancelling and per-advance bookkeeping are O(1) amortised in the
    number of armed timers, replacing the O(n) idle sweep the live
    server used to run every iteration.

    Guarantees:
    - {b no early fires}: [advance ~now] only fires timers whose
      deadline is [<= now], regardless of slot quantisation;
    - {b fire order}: one [advance] reports fires sorted by deadline
      (ties by scheduling order);
    - {b cancel} is exact — a cancelled timer never fires ([cancel] is
      O(1); the entry is purged when its slot is next traversed).

    Timers whose deadline lies beyond one wheel rotation
    ([slots * tick]) stay in their bucket and are re-examined once per
    rotation — the classic hashed-wheel trade-off. *)

type 'a t
(** A wheel of timers carrying ['a] payloads. *)

type 'a timer
(** Handle to a scheduled timer (for [cancel]/[reschedule]). *)

val create : ?slots:int -> ?tick:float -> now:float -> unit -> 'a t
(** [create ~now ()] makes an empty wheel whose cursor starts at [now].
    Defaults: 512 slots of 50 ms (a 25.6 s rotation). *)

val schedule : 'a t -> at:float -> 'a -> 'a timer
(** Arm a timer firing at absolute time [at].  Deadlines at or before
    the wheel's cursor fire on the next {!advance}. *)

val cancel : 'a t -> 'a timer -> unit
(** Disarm; idempotent.  A cancelled timer never fires. *)

val reschedule : 'a t -> 'a timer -> at:float -> 'a timer
(** [cancel] + [schedule] with the same payload; returns the new
    handle. *)

val next_deadline : 'a t -> float option
(** Earliest armed deadline — what the event loop's wait timeout should
    be derived from.  [None] when nothing is armed (the loop may block
    indefinitely on IO).  May report early (never late) right after a
    cancellation, until the affected slot is next traversed. *)

val advance : 'a t -> now:float -> 'a list
(** Move the cursor to [now] and return the payloads of every timer
    whose deadline has passed, sorted by deadline (ties by scheduling
    order).  Monotone: a [now] before the cursor fires nothing. *)

val pending : 'a t -> int
(** Armed (scheduled, not yet fired or cancelled) timers. *)

val fired_total : 'a t -> int
(** Total timers ever fired — the loop's timer-fire observability
    counter. *)

val deadline_of : 'a timer -> float
val cancelled : 'a timer -> bool
