/* Readiness-notification stubs for the evio backends.
 *
 * Two families:
 *   - poll(2): portable, no FD_SETSIZE cap.  The OCaml side keeps
 *     parallel arrays (fds, interest bits) and we fill a revents
 *     array; interest bits are 1 = read, 2 = write, and result bits
 *     add 4 = invalid fd (POLLNVAL), which the caller uses to prune
 *     stale registrations.
 *   - epoll(7), Linux only: level-triggered, interest kept in the
 *     kernel so a wait costs one syscall regardless of fd count.
 *
 * Both waits release the OCaml runtime lock around the syscall.  File
 * descriptors cross the boundary as Unix.file_descr, which the Unix
 * runtime represents as a plain int on every non-Windows platform
 * (the Windows build reports both families unavailable, so the
 * representation assumption is never exercised there).
 */

#include <caml/mlvalues.h>
#include <caml/memory.h>
#include <caml/alloc.h>
#include <caml/fail.h>
#include <caml/threads.h>

#ifndef _WIN32
#include <sys/select.h>
#endif

#define EVIO_READ 1
#define EVIO_WRITE 2
#define EVIO_INVALID 4

/* The fd-number ceiling of select(2)'s fd_set, so the select backend
 * can refuse a registration it could never wait on instead of letting
 * the wait fail with EINVAL.  0 = no numeric cap (Windows fd_sets hold
 * socket handles, not a bitmap indexed by fd number). */
CAMLprim value flash_evio_fd_setsize(value unit)
{
  (void) unit;
#ifdef _WIN32
  return Val_int(0);
#else
  return Val_int(FD_SETSIZE);
#endif
}

#ifdef _WIN32

CAMLprim value flash_evio_poll_available(value unit)
{
  (void) unit;
  return Val_false;
}

CAMLprim value flash_evio_poll(value vfds, value vevents, value vrevents,
                               value vn, value vtimeout)
{
  (void) vfds; (void) vevents; (void) vrevents; (void) vn; (void) vtimeout;
  caml_failwith("Evio.poll: not available on this platform");
}

#else /* !_WIN32 */

#include <caml/unixsupport.h>
#include <poll.h>
#include <stdlib.h>
#include <errno.h>

CAMLprim value flash_evio_poll_available(value unit)
{
  (void) unit;
  return Val_true;
}

/* poll(fds[0..n-1]) with interest bits from vevents, results into
 * vrevents (int arrays).  Returns the number of ready descriptors.
 * timeout is in milliseconds, -1 = block. */
CAMLprim value flash_evio_poll(value vfds, value vevents, value vrevents,
                               value vn, value vtimeout)
{
  CAMLparam5(vfds, vevents, vrevents, vn, vtimeout);
  long n = Long_val(vn);
  int timeout = Int_val(vtimeout);
  struct pollfd *pfds;
  long i;
  int ret;

  if (n < 0) n = 0;
  if ((uintnat) n > Wosize_val(vfds)) n = Wosize_val(vfds);
  if ((uintnat) n > Wosize_val(vevents)) n = Wosize_val(vevents);
  if ((uintnat) n > Wosize_val(vrevents)) n = Wosize_val(vrevents);

  pfds = (struct pollfd *) malloc((n > 0 ? n : 1) * sizeof(struct pollfd));
  if (pfds == NULL) caml_raise_out_of_memory();
  for (i = 0; i < n; i++) {
    int bits = Int_val(Field(vevents, i));
    pfds[i].fd = Int_val(Field(vfds, i));
    pfds[i].events = 0;
    if (bits & EVIO_READ) pfds[i].events |= POLLIN | POLLPRI;
    if (bits & EVIO_WRITE) pfds[i].events |= POLLOUT;
    pfds[i].revents = 0;
  }
  caml_release_runtime_system();
  ret = poll(pfds, (nfds_t) n, timeout);
  caml_acquire_runtime_system();
  if (ret == -1) {
    int err = errno;
    free(pfds);
    errno = err; /* free() may clobber errno before caml_uerror reads it */
    caml_uerror("poll", Nothing);
  }
  for (i = 0; i < n; i++) {
    int out = 0;
    short re = pfds[i].revents;
    if (re & (POLLIN | POLLPRI | POLLERR | POLLHUP)) out |= EVIO_READ;
    if (re & (POLLOUT | POLLERR | POLLHUP)) out |= EVIO_WRITE;
    if (re & POLLNVAL) out = EVIO_INVALID;
    /* Int stores need no write barrier. */
    Field(vrevents, i) = Val_int(out);
  }
  free(pfds);
  CAMLreturn(Val_int(ret));
}

#endif /* !_WIN32 */

#ifdef __linux__

#include <caml/unixsupport.h>
#include <sys/epoll.h>
#include <unistd.h>
#include <errno.h>

CAMLprim value flash_evio_epoll_available(value unit)
{
  (void) unit;
  return Val_true;
}

CAMLprim value flash_evio_epoll_create(value unit)
{
  int fd;
  (void) unit;
  fd = epoll_create1(0);
  if (fd == -1) caml_uerror("epoll_create1", Nothing);
  return Val_int(fd);
}

/* op: 0 = add, 1 = modify, 2 = delete; bits as above. */
CAMLprim value flash_evio_epoll_ctl(value vepfd, value vop, value vfd,
                                    value vbits)
{
  struct epoll_event ev;
  int bits = Int_val(vbits);
  int op;
  ev.events = 0;
  if (bits & EVIO_READ) ev.events |= EPOLLIN | EPOLLPRI;
  if (bits & EVIO_WRITE) ev.events |= EPOLLOUT;
  ev.data.fd = Int_val(vfd);
  switch (Int_val(vop)) {
  case 0: op = EPOLL_CTL_ADD; break;
  case 1: op = EPOLL_CTL_MOD; break;
  default: op = EPOLL_CTL_DEL; break;
  }
  if (epoll_ctl(Int_val(vepfd), op, Int_val(vfd), &ev) == -1)
    caml_uerror("epoll_ctl", Nothing);
  return Val_unit;
}

/* Wait and copy up to [max] ready events into the two out arrays
 * (ready fd, result bits).  Returns the number of events. */
CAMLprim value flash_evio_epoll_wait(value vepfd, value vfds_out,
                                     value vrevents_out, value vmax,
                                     value vtimeout)
{
  CAMLparam5(vepfd, vfds_out, vrevents_out, vmax, vtimeout);
  struct epoll_event evs[256];
  long max = Long_val(vmax);
  int n, i;

  if (max > 256) max = 256;
  if ((uintnat) max > Wosize_val(vfds_out)) max = Wosize_val(vfds_out);
  if ((uintnat) max > Wosize_val(vrevents_out)) max = Wosize_val(vrevents_out);
  caml_release_runtime_system();
  n = epoll_wait(Int_val(vepfd), evs, (int) max, Int_val(vtimeout));
  caml_acquire_runtime_system();
  if (n == -1) caml_uerror("epoll_wait", Nothing);
  for (i = 0; i < n; i++) {
    int out = 0;
    uint32_t e = evs[i].events;
    if (e & (EPOLLIN | EPOLLPRI | EPOLLERR | EPOLLHUP)) out |= EVIO_READ;
    if (e & (EPOLLOUT | EPOLLERR | EPOLLHUP)) out |= EVIO_WRITE;
    Field(vfds_out, i) = Val_int(evs[i].data.fd);
    Field(vrevents_out, i) = Val_int(out);
  }
  CAMLreturn(Val_int(n));
}

#else /* !__linux__ */

CAMLprim value flash_evio_epoll_available(value unit)
{
  (void) unit;
  return Val_false;
}

CAMLprim value flash_evio_epoll_create(value unit)
{
  (void) unit;
  caml_failwith("Evio.epoll: not available on this platform");
}

CAMLprim value flash_evio_epoll_ctl(value vepfd, value vop, value vfd,
                                    value vbits)
{
  (void) vepfd; (void) vop; (void) vfd; (void) vbits;
  caml_failwith("Evio.epoll: not available on this platform");
}

CAMLprim value flash_evio_epoll_wait(value vepfd, value vfds_out,
                                     value vrevents_out, value vmax,
                                     value vtimeout)
{
  (void) vepfd; (void) vfds_out; (void) vrevents_out; (void) vmax;
  (void) vtimeout;
  caml_failwith("Evio.epoll: not available on this platform");
}

#endif /* !__linux__ */

/* SO_REUSEPORT probe + setter, for the sharded deployment mode: one
 * listening socket per domain with the kernel balancing accepts.
 * Compile-time availability only — the OCaml side still does a
 * runtime probe at startup (a kernel can predate the option its
 * headers advertise), and falls back to the hand-off ring. */

#if !defined(_WIN32)
#include <sys/socket.h>
#include <errno.h>
#include <string.h>
#endif

CAMLprim value flash_evio_have_reuseport(value unit)
{
  (void) unit;
#if defined(SO_REUSEPORT)
  return Val_true;
#else
  return Val_false;
#endif
}

CAMLprim value flash_evio_set_reuseport(value vfd)
{
#if defined(SO_REUSEPORT)
  int one = 1;
  if (setsockopt(Int_val(vfd), SOL_SOCKET, SO_REUSEPORT, &one,
                 sizeof(one)) != 0)
    caml_failwith(strerror(errno));
  return Val_unit;
#else
  (void) vfd;
  caml_failwith("Evio.set_reuseport: SO_REUSEPORT not available");
#endif
}
