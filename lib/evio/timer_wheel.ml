type 'a entry = {
  deadline : float;
  seq : int;
  payload : 'a;
  mutable cancelled : bool;
}

type 'a timer = 'a entry

type 'a t = {
  tick : float;
  nslots : int;
  slots : 'a entry list array;
  (* Cached minimum live deadline per slot.  Cancellation leaves it
     stale-low (never stale-high), so [next_deadline] can only err on
     the early side: the loop wakes, fires nothing, and the slot is
     recomputed when [advance] traverses it. *)
  slot_min : float array;
  mutable last : float;
  mutable last_tick : int;
  mutable seq : int;
  mutable pending : int;
  mutable fired : int;
}

let create ?(slots = 512) ?(tick = 0.05) ~now () =
  if slots <= 0 then invalid_arg "Timer_wheel.create: slots <= 0";
  if not (tick > 0.) then invalid_arg "Timer_wheel.create: tick <= 0";
  {
    tick;
    nslots = slots;
    slots = Array.make slots [];
    slot_min = Array.make slots infinity;
    last = now;
    last_tick = int_of_float (floor (now /. tick));
    seq = 0;
    pending = 0;
    fired = 0;
  }

let tick_of w time = int_of_float (floor (time /. w.tick))

let schedule w ~at payload =
  let e = { deadline = at; seq = w.seq; payload; cancelled = false } in
  w.seq <- w.seq + 1;
  (* Overdue deadlines clamp to the cursor slot so the next [advance]
     always traverses them: slots strictly behind the cursor wait a
     whole rotation. *)
  let tk = max (tick_of w at) w.last_tick in
  let idx = tk mod w.nslots in
  w.slots.(idx) <- e :: w.slots.(idx);
  if at < w.slot_min.(idx) then w.slot_min.(idx) <- at;
  w.pending <- w.pending + 1;
  e

let cancel w e =
  if not e.cancelled then begin
    e.cancelled <- true;
    w.pending <- w.pending - 1
  end

let reschedule w e ~at = cancel w e; schedule w ~at e.payload

let next_deadline w =
  if w.pending = 0 then None
  else begin
    let m = ref infinity in
    for i = 0 to w.nslots - 1 do
      if w.slot_min.(i) < !m then m := w.slot_min.(i)
    done;
    if Float.is_finite !m then Some !m else None
  end

let advance w ~now =
  if now < w.last then []
  else begin
    let fired = ref [] in
    let process idx =
      let kept = ref [] and m = ref infinity in
      List.iter
        (fun e ->
          if e.cancelled then () (* purge *)
          else if e.deadline <= now then begin
            fired := e :: !fired;
            w.pending <- w.pending - 1;
            w.fired <- w.fired + 1
          end
          else begin
            kept := e :: !kept;
            if e.deadline < !m then m := e.deadline
          end)
        w.slots.(idx);
      w.slots.(idx) <- !kept;
      w.slot_min.(idx) <- !m
    in
    let now_tick = tick_of w now in
    (* Inclusive of the cursor slot: entries scheduled within the
       current tick (and overdue ones clamped onto it) live there. *)
    if now_tick - w.last_tick >= w.nslots then
      for i = 0 to w.nslots - 1 do process i done
    else
      for tk = w.last_tick to now_tick do process (tk mod w.nslots) done;
    w.last <- now;
    w.last_tick <- now_tick;
    !fired
    |> List.sort (fun a b ->
           match compare a.deadline b.deadline with
           | 0 -> compare a.seq b.seq
           | c -> c)
    |> List.map (fun e -> e.payload)
  end

let pending w = w.pending
let fired_total w = w.fired
let deadline_of e = e.deadline
let cancelled e = e.cancelled
