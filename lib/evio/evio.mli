(** Pluggable event-readiness backends for the live server's loops.

    The paper's portable baseline is [select(2)] — bounded by
    FD_SETSIZE and O(watched fds) per wait.  This module hides the
    readiness mechanism behind one interface so the same loop can run
    on:
    - {b select}: the paper-faithful default, available everywhere;
    - {b poll(2)}: no FD_SETSIZE cap, still O(n) per wait (C stubs,
      any Unix);
    - {b epoll(7)}: Linux, level-triggered; interest lives in the
      kernel so a wait costs one syscall regardless of connection
      count, and only {e changed} fds cost an [epoll_ctl] (interest-set
      diffing).

    All backends deliver level-triggered readiness with the same
    semantics: error/hang-up conditions surface as readable (and, for
    write-watched fds, writable) so the caller's normal IO path
    observes [EOF]/[EPIPE].  Waits release the OCaml runtime lock. *)

module Timer_wheel : module type of Timer_wheel
(** The loop's hashed timer wheel, re-exported so users of the wrapped
    library reach it as [Evio.Timer_wheel]. *)

type kind = Select | Poll | Epoll

val name : kind -> string
(** ["select"], ["poll"] or ["epoll"]. *)

val available : kind -> bool
(** Whether this backend works on the running system ([Select] always;
    [Poll] on any Unix; [Epoll] on Linux). *)

val best_available : unit -> kind
(** epoll > poll > select — what [--event-backend auto] picks. *)

val all_available : unit -> kind list
(** Every backend usable here (for parity test matrices). *)

val of_string : string -> (kind, string) result
(** Parse [select|poll|epoll|auto]; [auto] resolves via
    {!best_available}.  The error message lists the valid names. *)

val valid_names : string

val fd_setsize : unit -> int
(** select's fd-number ceiling (FD_SETSIZE); [0] where select carries
    no numeric cap (Windows).  poll/epoll are never capped this way. *)

val have_reuseport : unit -> bool
(** Whether this build knows [SO_REUSEPORT] (compile-time probe).  The
    sharded server additionally probes at runtime — headers can
    advertise an option the running kernel rejects — before committing
    to one listening socket per domain. *)

val set_reuseport : Unix.file_descr -> unit
(** Set [SO_REUSEPORT] on a not-yet-bound socket so several listeners
    can share one port and the kernel balances accepts across them.
    Raises [Failure] where unsupported or on [setsockopt] error. *)

type event = { fd : Unix.file_descr; readable : bool; writable : bool }

exception Backend_full of string
(** Raised by {!Backend.register} when the backend cannot wait on the
    fd at all — concretely, select with an fd number at or above
    FD_SETSIZE.  Callers treat it like fd exhaustion: shed that
    connection, keep the loop alive. *)

module Backend : sig
  type t

  val create : kind -> t
  (** Raises [Invalid_argument] if the kind is not {!available}. *)

  val kind : t -> kind
  val name : t -> string

  val register : t -> Unix.file_descr -> read:bool -> write:bool -> unit
  (** Add (or update) an fd's interest.  Alias of {!modify}. *)

  val modify : t -> Unix.file_descr -> read:bool -> write:bool -> unit
  (** Upsert interest.  A call that changes nothing costs no syscall
      and no rebuild on any backend. *)

  val deregister : t -> Unix.file_descr -> unit
  (** Forget an fd.  Call {e before} closing it; stale fds are pruned
      defensively but at the cost of a wasted wakeup. *)

  val wait : t -> timeout:float option -> event list
  (** Block until readiness or [timeout] (seconds; [None] = forever;
      [Some 0.] = non-blocking poll).  Returns one event per ready fd.
      [EINTR] returns [[]]. *)

  val fd_count : t -> int
  (** Currently registered fds. *)

  val interest_syscalls : t -> int
  (** epoll only: [epoll_ctl] calls issued so far (0 for select/poll) —
      what interest-set diffing saves is visible here. *)

  val close : t -> unit
  (** Release kernel resources (the epoll fd).  Idempotent. *)
end
