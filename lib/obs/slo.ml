(* Latency SLO evaluator over the flight recorder's rollups.  Burn is
   the fraction of recent traffic-bearing windows whose windowed
   percentile exceeded the target; empty windows are skipped so an idle
   server neither heals nor burns its budget. *)

type state = Healthy | Degraded | Breached

type t = {
  quantile : float;  (* e.g. 99. *)
  target_ms : float;
  budget : float;  (* allowed violating fraction, e.g. 0.05 *)
  horizon : int;  (* windows considered *)
  mutable recent : bool list;  (* newest first: window violated?  traffic-bearing only *)
  mutable violations : int;  (* violations within [recent] *)
}

let create ?(quantile = 99.) ?(target_ms = 50.) ?(budget = 0.05) ?(horizon = 60) () =
  if not (quantile > 0. && quantile <= 100.) then
    invalid_arg "Obs.Slo.create: quantile outside (0, 100]";
  if not (target_ms > 0.) then invalid_arg "Obs.Slo.create: target <= 0";
  if not (budget >= 0. && budget <= 1.) then
    invalid_arg "Obs.Slo.create: budget outside [0, 1]";
  if horizon < 1 then invalid_arg "Obs.Slo.create: horizon < 1";
  { quantile; target_ms; budget; horizon; recent = []; violations = 0 }

let quantile t = t.quantile
let target_ms t = t.target_ms
let budget t = t.budget

let observe t (r : Recorder.rollup) =
  if Histogram.count r.Recorder.latency > 0 then begin
    let violated = Recorder.p_ms r t.quantile > t.target_ms in
    if violated then t.violations <- t.violations + 1;
    let recent = violated :: t.recent in
    (* Evict beyond the horizon, keeping the violation count exact. *)
    let rec trim i = function
      | [] -> []
      | x :: tl when i >= t.horizon ->
          if x then t.violations <- t.violations - 1;
          trim (i + 1) tl
      | x :: tl -> x :: trim (i + 1) tl
    in
    t.recent <- trim 0 recent
  end

let windows t = List.length t.recent

let burn t =
  let n = List.length t.recent in
  if n = 0 then 0. else float_of_int t.violations /. float_of_int n

(* Up to the budget is the contract working as specified; past it the
   budget is burning (degraded); at 3x the budget or with a zero budget
   violated, the objective is simply not being met. *)
let state t =
  let b = burn t in
  if b <= t.budget then Healthy
  else if b < 3. *. t.budget then Degraded
  else Breached

let state_string t =
  match state t with
  | Healthy -> "healthy"
  | Degraded -> "degraded"
  | Breached -> "breached"

let state_code t =
  match state t with Healthy -> 0 | Degraded -> 1 | Breached -> 2
