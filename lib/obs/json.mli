(** Minimal JSON string rendering helpers.

    The observability layer emits JSON ( /server-status, the Chrome
    trace-event export) without a JSON library dependency; the one
    subtle part — escaping arbitrary byte strings into valid JSON string
    literals — lives here so every emitter agrees. *)

(** [escape s] is [s] with double quotes, backslashes and all bytes
    outside printable ASCII rendered as JSON escapes.  Bytes >= [0x7f]
    are escaped as [\u00XX] (a Latin-1 reading), which is always valid
    JSON even for byte strings that are not UTF-8. *)
val escape : string -> string

(** [str s] is [escape s] wrapped in double quotes: a complete JSON
    string literal. *)
val str : string -> string
