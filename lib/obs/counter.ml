type t = { mutable v : int }

let create () = { v = 0 }
let incr t = t.v <- t.v + 1
let add t n = t.v <- t.v + n
let value t = t.v
let reset t = t.v <- 0
