(** Flight recorder: a fixed-size ring of per-second rollups.

    The recorder is clocked externally ([now] is injected, so the
    simulator drives it from the virtual clock) and reads cumulative
    counters through a closure; every rollup is the delta between two
    cumulative snapshots, plus instantaneous gauges sampled when the
    window closes.  Windows close lazily on {!tick} — a blocked or idle
    period becomes one long window whose [r_dur] carries the truth
    rather than a backlog of empty windows. *)

(** Cumulative snapshot, as read from the server under its own lock.
    [c_latency] must be a private copy (the recorder keeps it). *)
type cum = {
  c_requests : int;
  c_bytes : int;
  c_writev : int;
  c_write : int;
  c_copied : int;
  c_cache_hits : int;
  c_cache_misses : int;
  c_errors : int;
  c_wait : float;
  c_work : float;
  c_latency : Histogram.t;
}

(** Instantaneous gauges sampled at window close. *)
type gauges = { g_active : int; g_helper_queue : int; g_mapped : int }

type rollup = {
  r_start : float;
  r_dur : float;  (** > 0; rates divide by it *)
  requests : int;
  bytes : int;
  writev : int;
  write : int;
  copied : int;
  cache_hits : int;
  cache_misses : int;
  errors : int;
  wait : float;
  work : float;
  active : int;
  helper_queue : int;
  mapped : int;
  latency : Histogram.t;
      (** windowed histogram: exact bucket/count/sum diff of the two
          snapshots, so merging every rollup in the ring plus the
          pre-ring remainder reproduces the global histogram *)
}

type t

(** [create ~now ~read ()] — [capacity] rollups are retained (default
    120), windows are [interval] seconds (default 1.0).  [read] is
    called at every window close; [on_rollup] observes each closed
    window (the SLO evaluator hooks here).
    @raise Invalid_argument if [capacity < 1] or [interval <= 0]. *)
val create :
  ?capacity:int ->
  ?interval:float ->
  now:(unit -> float) ->
  read:(unit -> cum * gauges) ->
  ?on_rollup:(rollup -> unit) ->
  unit ->
  t

val capacity : t -> int
val interval : t -> float

(** Close the current window if at least [interval] has elapsed. *)
val tick : t -> unit

(** Close the current window unconditionally (dump paths want the
    partial tail). *)
val flush : t -> unit

(** Newest [n] rollups, oldest first.  Ticks first. *)
val window : t -> int -> rollup list

(** Every retained rollup, oldest first.  Ticks first. *)
val all : t -> rollup list

(** Derived views. *)
val rps : rollup -> float

val hit_rate : rollup -> float

(** [p_ms r p] — latency percentile of the window, in milliseconds;
    [0.] when the window saw no requests. *)
val p_ms : rollup -> float -> float

(** JSON rendering shared by [?window=N], the SIGUSR1 dump and the
    bench time series. *)
val rollup_json : rollup -> string

val rollups_json : rollup list -> string

(** Flushes, then renders [{"capacity":…, "interval":…, "rollups":[…]}]. *)
val dump_json : t -> string
