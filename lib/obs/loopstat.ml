type t = {
  mutable wakeups : int;
  mutable ready_fds : int;
  mutable wait_time : float;
  mutable work_time : float;
  mutable timer_fires : int;
}

let create () =
  { wakeups = 0; ready_fds = 0; wait_time = 0.; work_time = 0.; timer_fires = 0 }

let wake t ~waited ~ready =
  t.wakeups <- t.wakeups + 1;
  t.ready_fds <- t.ready_fds + ready;
  t.wait_time <- t.wait_time +. Float.max 0. waited

let work t ~spent = t.work_time <- t.work_time +. Float.max 0. spent
let timers_fired t n = t.timer_fires <- t.timer_fires + n
let wakeups t = t.wakeups
let ready_fds t = t.ready_fds
let wait_time t = t.wait_time
let work_time t = t.work_time
let timer_fires t = t.timer_fires

let ready_per_wakeup t =
  if t.wakeups = 0 then 0.
  else float_of_int t.ready_fds /. float_of_int t.wakeups

let reset t =
  t.wakeups <- 0;
  t.ready_fds <- 0;
  t.wait_time <- 0.;
  t.work_time <- 0.;
  t.timer_fires <- 0
