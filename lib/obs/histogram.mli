(** Log-bucketed latency histogram.

    Values are assigned to geometrically sized buckets: bucket 0 holds
    everything at or below [lo], and bucket [i >= 1] covers
    [(lo * base^(i-1), lo * base^i]].  Quantile estimates return a
    bucket's upper edge (clamped to the exact observed min/max), so for
    any recorded value [v >= lo] the estimate [e] of the quantile [v]
    realises satisfies [v <= e <= v * base] — the relative error is
    bounded by the log base.

    The structure is a few hundred bytes for any realistic latency range
    (microseconds to hours), grows on demand, and records in O(1).

    Not thread-safe; callers serialise access (the live server guards it
    with its own mutex, the bench merges per-worker instances). *)

type t

(** [create ?base ?lo ()] — [base] is the bucket growth factor
    (default [2^(1/8)], ≈ 9% worst-case relative error), [lo] the
    smallest resolvable value (default [1e-6], i.e. 1µs when recording
    seconds).
    @raise Invalid_argument if [base <= 1] or [lo <= 0]. *)
val create : ?base:float -> ?lo:float -> unit -> t

val base : t -> float
val lo : t -> float

(** Record one observation.  Non-finite values are ignored. *)
val record : t -> float -> unit

val count : t -> int
val sum : t -> float

(** Arithmetic mean of recorded values; [nan] when empty. *)
val mean : t -> float

(** Exact observed extrema; [nan] when empty. *)
val min : t -> float

val max : t -> float

(** [percentile t p] for [p] in [[0, 100]]: the upper edge of the bucket
    holding the value of rank [ceil (p/100 * count)], clamped to the
    exact observed [[min t, max t]].  [nan] when empty.
    @raise Invalid_argument if [p] is outside [[0, 100]]. *)
val percentile : t -> float -> float

(** Observations at or below [x], counting whole buckets only: the
    bucket straddling [x] is excluded, so the result is a lower bound
    within one bucket's population and is monotone in [x] — the shape
    cumulative ([le]-labelled) exposition buckets need. *)
val count_le : t -> float -> int

(** Independent deep copy (snapshotting under a lock). *)
val copy : t -> t

(** [diff newer older] — the observations recorded between the [older]
    snapshot and the [newer] one.  Exact on bucket counts, count and
    sum (merging consecutive diffs reproduces the original); min/max
    are reconstructed from bucket edges, so they carry the usual
    one-bucket relative error.  @raise Invalid_argument if [base]/[lo]
    differ. *)
val diff : t -> t -> t

(** [merge a b] is a fresh histogram equivalent to recording both
    streams.  @raise Invalid_argument if [base]/[lo] differ. *)
val merge : t -> t -> t

(** Non-empty buckets as [(lower, upper, count)], lowest first.  Bucket
    counts sum to [count t]. *)
val buckets : t -> (float * float * int) list

val reset : t -> unit
