(** Event-loop wakeup accounting.

    One record per loop, updated by the loop thread only (reads from a
    status renderer race benignly against word-sized stores):
    - {b wakeups}: times the readiness wait returned;
    - {b ready_fds}: total ready descriptors across those wakeups —
      [ready_per_wakeup] is the batching factor, the number the
      backend comparison turns on (select pays O(watched) per wakeup,
      epoll O(ready));
    - {b wait_time} vs {b work_time}: seconds blocked in the wait
      versus seconds processing — an idle loop should be all wait;
    - {b timer_fires}: timer-wheel expirations handled. *)

type t

val create : unit -> t

val wake : t -> waited:float -> ready:int -> unit
(** Record one wait returning [ready] descriptors after blocking for
    [waited] seconds. *)

val work : t -> spent:float -> unit
(** Add processing time for the current iteration. *)

val timers_fired : t -> int -> unit

val wakeups : t -> int
val ready_fds : t -> int
val wait_time : t -> float
val work_time : t -> float
val timer_fires : t -> int
val ready_per_wakeup : t -> float
val reset : t -> unit
