(** Prometheus text exposition (format 0.0.4) rendered from a registry
    walk, plus a strict parser/validator shared by the tests and the CI
    lint step. *)

(** The fixed cumulative bucket ladder, in seconds.  Stable across
    scrapes regardless of how the underlying log-bucketed histogram has
    grown. *)
val le_edges : float list

(** Render collected samples as exposition text.  Histogram samples
    expand into [_bucket] (cumulative, [le]-labelled, ending at [+Inf]),
    [_sum] and [_count] series.  Label values are escaped per the
    format. *)
val render : Registry.sample list -> string

type series = {
  s_name : string;  (** full sample name, e.g. [foo_bucket] *)
  s_labels : (string * string) list;
  s_value : float;
}

type family = {
  f_name : string;  (** the [# TYPE] name *)
  f_type : string;  (** counter | gauge | histogram | untyped *)
  f_series : series list;  (** in exposition order *)
}

(** Strictly parse and validate a payload: every sample under a
    preceding [# TYPE]; families contiguous and declared once; label
    sets parseable, sorted by name and unique per series; counters
    non-negative; histograms with in-order [le] buckets, nondecreasing
    cumulative counts, a [+Inf] bucket matching [_count], and a [_sum].
    Returns the parsed families, or the first violation. *)
val validate : string -> (family list, string) result
