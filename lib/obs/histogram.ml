type t = {
  base : float;
  log_base : float;
  lo : float;
  mutable counts : int array;
  mutable used : int;  (* buckets.(0 .. used-1) may be non-zero *)
  mutable total : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
}

let default_base = Float.pow 2. 0.125
let default_lo = 1e-6

let create ?(base = default_base) ?(lo = default_lo) () =
  if not (base > 1.) then invalid_arg "Obs.Histogram.create: base <= 1";
  if not (lo > 0.) then invalid_arg "Obs.Histogram.create: lo <= 0";
  {
    base;
    log_base = Float.log base;
    lo;
    counts = Array.make 32 0;
    used = 0;
    total = 0;
    sum = 0.;
    min_v = infinity;
    max_v = neg_infinity;
  }

let base t = t.base
let lo t = t.lo

(* Bucket 0 is (-inf, lo]; bucket i >= 1 is (lo*base^(i-1), lo*base^i]. *)
let index t x =
  if x <= t.lo then 0
  else 1 + int_of_float (Float.log (x /. t.lo) /. t.log_base)

let upper_edge t i = if i = 0 then t.lo else t.lo *. Float.pow t.base (float_of_int i)
let lower_edge t i = if i = 0 then neg_infinity else upper_edge t (i - 1)

let ensure t i =
  let n = Array.length t.counts in
  if i >= n then begin
    let n' = Stdlib.max (i + 1) (2 * n) in
    let counts = Array.make n' 0 in
    Array.blit t.counts 0 counts 0 n;
    t.counts <- counts
  end

let record t x =
  if Float.is_finite x then begin
    let i = index t x in
    ensure t i;
    t.counts.(i) <- t.counts.(i) + 1;
    if i >= t.used then t.used <- i + 1;
    t.total <- t.total + 1;
    t.sum <- t.sum +. x;
    if x < t.min_v then t.min_v <- x;
    if x > t.max_v then t.max_v <- x
  end

let count t = t.total
let sum t = t.sum
let mean t = if t.total = 0 then nan else t.sum /. float_of_int t.total
let min t = if t.total = 0 then nan else t.min_v
let max t = if t.total = 0 then nan else t.max_v

let percentile t p =
  if p < 0. || p > 100. then invalid_arg "Obs.Histogram.percentile: p outside [0, 100]";
  if t.total = 0 then nan
  else begin
    let rank =
      let r = int_of_float (Float.ceil (p /. 100. *. float_of_int t.total)) in
      Stdlib.max 1 (Stdlib.min t.total r)
    in
    let rec loop i seen =
      let seen = seen + t.counts.(i) in
      if seen >= rank then upper_edge t i else loop (i + 1) seen
    in
    let edge = loop 0 0 in
    Float.min t.max_v (Float.max t.min_v edge)
  end

(* Observations at or below [x]: every bucket whose upper edge is <= x.
   Values inside the bucket straddling [x] are excluded — the estimate
   is a lower bound whose error is one bucket's width, and it is
   monotone in [x], which is what cumulative exposition needs. *)
let count_le t x =
  let acc = ref 0 in
  for i = 0 to t.used - 1 do
    if upper_edge t i <= x then acc := !acc + t.counts.(i)
  done;
  !acc

let copy t = { t with counts = Array.copy t.counts }

(* [diff newer older]: the histogram of observations recorded between
   the [older] snapshot and the [newer] one — exact on bucket counts
   (the windowed histograms the flight recorder's rollups carry, which
   is why merging all rollups reproduces the global bucket counts).
   Exact extrema are unrecoverable from counts alone, so min/max are
   reconstructed from the outermost non-empty buckets' edges. *)
let diff newer older =
  if newer.base <> older.base || newer.lo <> older.lo then
    invalid_arg "Obs.Histogram.diff: mismatched base/lo";
  let d = copy newer in
  for i = 0 to older.used - 1 do
    ensure d i;
    d.counts.(i) <- Stdlib.max 0 (d.counts.(i) - older.counts.(i))
  done;
  d.total <- Stdlib.max 0 (newer.total - older.total);
  d.sum <- Float.max 0. (newer.sum -. older.sum);
  d.min_v <- infinity;
  d.max_v <- neg_infinity;
  for i = d.used - 1 downto 0 do
    if d.counts.(i) > 0 then begin
      if Float.is_finite (lower_edge d i) then d.min_v <- lower_edge d i
      else d.min_v <- 0.;
      if d.max_v = neg_infinity then d.max_v <- upper_edge d i
    end
  done;
  d

let merge a b =
  if a.base <> b.base || a.lo <> b.lo then
    invalid_arg "Obs.Histogram.merge: mismatched base/lo";
  let m = copy a in
  ensure m (b.used - 1);
  for i = 0 to b.used - 1 do
    m.counts.(i) <- m.counts.(i) + b.counts.(i)
  done;
  m.used <- Stdlib.max a.used b.used;
  m.total <- a.total + b.total;
  m.sum <- a.sum +. b.sum;
  m.min_v <- Float.min a.min_v b.min_v;
  m.max_v <- Float.max a.max_v b.max_v;
  m

let buckets t =
  let out = ref [] in
  for i = t.used - 1 downto 0 do
    if t.counts.(i) > 0 then
      out := (lower_edge t i, upper_edge t i, t.counts.(i)) :: !out
  done;
  !out

let reset t =
  Array.fill t.counts 0 (Array.length t.counts) 0;
  t.used <- 0;
  t.total <- 0;
  t.sum <- 0.;
  t.min_v <- infinity;
  t.max_v <- neg_infinity
