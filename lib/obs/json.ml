let escape s =
  let plain = ref true in
  String.iter
    (function '"' | '\\' -> plain := false | c when c < ' ' || c > '~' -> plain := false | _ -> ())
    s;
  if !plain then s
  else begin
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when c < ' ' || c > '~' ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b
  end

let str s = "\"" ^ escape s ^ "\""
