type t = {
  clock : unit -> float;
  threshold : float;
  gaps : Histogram.t;
  mutable armed : float option;
  mutable stalls : int;
  mutable iterations : int;
  mutable max_gap : float;
  mutable last_gap : float;
}

let create ~clock ~threshold () =
  if not (threshold > 0.) then
    invalid_arg "Obs.Watchdog.create: threshold <= 0";
  {
    clock;
    threshold;
    gaps = Histogram.create ();
    armed = None;
    stalls = 0;
    iterations = 0;
    max_gap = 0.;
    last_gap = 0.;
  }

let arm t = t.armed <- Some (t.clock ())

let check t =
  match t.armed with
  | None -> ()
  | Some t0 ->
      t.armed <- None;
      let gap = t.clock () -. t0 in
      t.iterations <- t.iterations + 1;
      t.last_gap <- gap;
      if gap > t.max_gap then t.max_gap <- gap;
      Histogram.record t.gaps gap;
      if gap > t.threshold then t.stalls <- t.stalls + 1

let beat t =
  check t;
  arm t

let threshold t = t.threshold
let stalls t = t.stalls
let iterations t = t.iterations
let max_gap t = t.max_gap
let last_gap t = t.last_gap
let gaps t = t.gaps

let reset t =
  t.armed <- None;
  t.stalls <- 0;
  t.iterations <- 0;
  t.max_gap <- 0.;
  t.last_gap <- 0.;
  Histogram.reset t.gaps
