(** Event-loop stall watchdog.

    An event-driven server must never block between [select] calls; a
    single synchronous disk read freezes every connection (the SPED
    pathology of §3.3 of the Flash paper).  The watchdog times each loop
    iteration's *processing* interval: call {!arm} when [select]
    returns, {!check} just before the next [select].  Any interval
    longer than the threshold is counted as a stall; all intervals feed
    a log-bucketed histogram.

    The clock is injected at creation so tests drive it
    deterministically; the library itself never reads wall time. *)

type t

(** [create ~clock ~threshold ()] — [clock] returns monotonically
    non-decreasing seconds, [threshold] is the stall limit in seconds.
    @raise Invalid_argument if [threshold <= 0]. *)
val create : clock:(unit -> float) -> threshold:float -> unit -> t

(** Start timing an iteration.  Re-arming discards the pending one. *)
val arm : t -> unit

(** Finish the armed iteration: record its duration, counting a stall if
    it exceeded the threshold.  No-op when not armed. *)
val check : t -> unit

(** [check] then [arm]: gap-between-beats style for loops with no idle
    wait to exclude. *)
val beat : t -> unit

val threshold : t -> float
val stalls : t -> int

(** Completed iterations observed. *)
val iterations : t -> int

(** Longest iteration seen; [0.] before any. *)
val max_gap : t -> float

(** Most recent iteration; [0.] before any. *)
val last_gap : t -> float

(** Histogram of all iteration durations (live reference, not a
    copy). *)
val gaps : t -> Histogram.t

val reset : t -> unit
