(** Latency SLO evaluation over flight-recorder rollups.

    Error-budget burn is the fraction of the most recent
    traffic-bearing windows whose windowed latency percentile exceeded
    the target.  Empty windows are skipped: an idle server neither
    heals nor burns budget.  States: burn within the budget is
    [Healthy]; past it but under 3x is [Degraded]; at or past 3x (or
    any violation under a zero budget) is [Breached]. *)

type state = Healthy | Degraded | Breached

type t

(** Defaults: p99, 50 ms target, 5% budget over the last 60
    traffic-bearing windows.
    @raise Invalid_argument on a quantile outside (0, 100], a
    non-positive target, a budget outside [0, 1] or horizon < 1. *)
val create :
  ?quantile:float ->
  ?target_ms:float ->
  ?budget:float ->
  ?horizon:int ->
  unit ->
  t

val quantile : t -> float
val target_ms : t -> float
val budget : t -> float

(** Feed one closed window (hook as the recorder's [on_rollup]). *)
val observe : t -> Recorder.rollup -> unit

(** Traffic-bearing windows currently in the horizon. *)
val windows : t -> int

val burn : t -> float
val state : t -> state
val state_string : t -> string

(** 0 = healthy, 1 = degraded, 2 = breached (gauge-friendly). *)
val state_code : t -> int
