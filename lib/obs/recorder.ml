(* Flight recorder: a fixed-size ring of per-second rollups, each the
   delta between two cumulative snapshots of the server's counters plus
   instantaneous gauges sampled at window close.  Windows close lazily —
   whoever touches the recorder (a timer tick, a status read, a dump)
   calls [tick], so a quiet server simply produces one long window
   instead of a backlog of empty ones. *)

type cum = {
  c_requests : int;
  c_bytes : int;
  c_writev : int;
  c_write : int;
  c_copied : int;
  c_cache_hits : int;
  c_cache_misses : int;
  c_errors : int;
  c_wait : float;
  c_work : float;
  c_latency : Histogram.t;  (* a snapshot the reader already copied *)
}

type gauges = { g_active : int; g_helper_queue : int; g_mapped : int }

type rollup = {
  r_start : float;
  r_dur : float;
  requests : int;
  bytes : int;
  writev : int;
  write : int;
  copied : int;
  cache_hits : int;
  cache_misses : int;
  errors : int;
  wait : float;
  work : float;
  active : int;
  helper_queue : int;
  mapped : int;
  latency : Histogram.t;  (* windowed: exact diff of the snapshots *)
}

type t = {
  capacity : int;
  interval : float;
  now : unit -> float;
  read : unit -> cum * gauges;
  on_rollup : rollup -> unit;
  mutable prev : cum;
  mutable window_start : float;
  mutable ring : rollup list;  (* newest first, length <= capacity *)
}

let create ?(capacity = 120) ?(interval = 1.0) ~now ~read ?(on_rollup = fun _ -> ()) () =
  if capacity < 1 then invalid_arg "Obs.Recorder.create: capacity < 1";
  if not (interval > 0.) then invalid_arg "Obs.Recorder.create: interval <= 0";
  let prev, _ = read () in
  { capacity; interval; now; read; on_rollup; prev; window_start = now (); ring = [] }

let capacity t = t.capacity
let interval t = t.interval

let truncate n l =
  let rec go n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: tl -> x :: go (n - 1) tl
  in
  go n l

let close_window t now =
  let cum, g = t.read () in
  let p = t.prev in
  let r =
    {
      r_start = t.window_start;
      r_dur = now -. t.window_start;
      requests = cum.c_requests - p.c_requests;
      bytes = cum.c_bytes - p.c_bytes;
      writev = cum.c_writev - p.c_writev;
      write = cum.c_write - p.c_write;
      copied = cum.c_copied - p.c_copied;
      cache_hits = cum.c_cache_hits - p.c_cache_hits;
      cache_misses = cum.c_cache_misses - p.c_cache_misses;
      errors = cum.c_errors - p.c_errors;
      wait = cum.c_wait -. p.c_wait;
      work = cum.c_work -. p.c_work;
      active = g.g_active;
      helper_queue = g.g_helper_queue;
      mapped = g.g_mapped;
      latency = Histogram.diff cum.c_latency p.c_latency;
    }
  in
  t.prev <- cum;
  t.window_start <- now;
  t.ring <- truncate t.capacity (r :: t.ring);
  t.on_rollup r

let tick t =
  let now = t.now () in
  (* A window that overran (missed ticks on a blocked loop) closes as
     one long window; [r_dur] carries the truth and rates divide by it. *)
  if now -. t.window_start >= t.interval then close_window t now

(* Force the current (partial) window shut — dumps want the tail even
   when less than an interval has elapsed. *)
let flush t =
  let now = t.now () in
  if now -. t.window_start > 0. then close_window t now

let window t n =
  tick t;
  List.rev (truncate (Stdlib.max 0 n) t.ring)

let all t =
  tick t;
  List.rev t.ring

let rps r = if r.r_dur > 0. then float_of_int r.requests /. r.r_dur else 0.

let hit_rate r =
  let tot = r.cache_hits + r.cache_misses in
  if tot = 0 then 0. else float_of_int r.cache_hits /. float_of_int tot

let p_ms r p =
  if Histogram.count r.latency = 0 then 0.
  else
    let v = Histogram.percentile r.latency p in
    if Float.is_nan v then 0. else v *. 1000.

let fnum f =
  if not (Float.is_finite f) then "0"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.6g" f

let rollup_json r =
  Printf.sprintf
    "{\"t\": %s, \"dur\": %s, \"requests\": %d, \"rps\": %s, \"bytes\": %d, \
     \"writev_calls\": %d, \"write_calls\": %d, \"bytes_copied\": %d, \
     \"cache_hits\": %d, \"cache_misses\": %d, \"hit_rate\": %s, \
     \"errors\": %d, \"active\": %d, \"helper_queue\": %d, \
     \"mapped_bytes\": %d, \"wait_s\": %s, \"work_s\": %s, \
     \"latency_count\": %d, \"p50_ms\": %s, \"p99_ms\": %s}"
    (fnum r.r_start) (fnum r.r_dur) r.requests (fnum (rps r)) r.bytes r.writev
    r.write r.copied r.cache_hits r.cache_misses (fnum (hit_rate r)) r.errors
    r.active r.helper_queue r.mapped (fnum r.wait) (fnum r.work)
    (Histogram.count r.latency) (fnum (p_ms r 50.)) (fnum (p_ms r 99.))

let rollups_json rs = "[" ^ String.concat ", " (List.map rollup_json rs) ^ "]"

let dump_json t =
  flush t;
  Printf.sprintf "{\"capacity\": %d, \"interval\": %s, \"rollups\": %s}"
    t.capacity (fnum t.interval)
    (rollups_json (List.rev t.ring))
