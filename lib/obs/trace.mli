(** Request-lifecycle tracing: spans, traces, and a bounded ring buffer
    of completed traces.

    A {e span} is one timed phase of request processing (parse, pathname
    resolution, disk read, response write, ...) attributed to a {e
    track} — the process or helper that did the work ("main-loop",
    "helper", "mp-child-1234").  A {e trace} is the ordered set of spans
    for one request, correlated by a collector-assigned id.  Completed
    traces land in a fixed-size ring buffer (FIFO eviction), from which
    they can be exported as Chrome trace-event JSON — loadable in
    Perfetto or chrome://tracing, one track per process/helper — or
    rendered as a one-line breakdown for a slow-request log.

    Timestamps come from the collector's injectable clock (wall clock in
    the live server, virtual time in the simulator), so the same API
    traces both.  Spans opened with {!begin_span}/{!end_span} follow
    stack discipline per trace and are therefore always well-nested;
    {!add_span} splices in a completed span measured elsewhere — the
    seam used to stitch helper- and child-process work (carried over the
    completion/stats pipes as {!to_binary} records) into the trace of
    the request that caused it.

    Like the rest of [Obs], a collector is not thread-safe; callers
    serialise access (the live server guards it with its obs mutex). *)

type t
(** A collector: clock, ring buffer and id allocator. *)

type trace
(** One request's in-progress trace. *)

type span
(** An open span handle; close it with {!end_span}. *)

type span_data = {
  name : string;
  track : string;  (** which process/helper did the work *)
  t_start : float;  (** collector-clock seconds *)
  t_stop : float;
  depth : int;  (** nesting depth at [begin_span] time *)
}

type trace_data = {
  id : int;
  label : string;  (** e.g. ["GET /index.html"] *)
  t_begin : float;
  t_end : float;
  spans : span_data list;  (** in start order *)
  truncated : int;  (** spans dropped by the per-trace bound *)
}

(** [create ~clock ?capacity ?max_spans ?track ()] — [clock] supplies
    timestamps (wall or simulated; [Obs] has no clock of its own),
    [capacity] bounds the completed-trace ring (default 256),
    [max_spans] the spans kept per trace (default 64), [track] is the
    default attribution for spans that do not name one (default
    ["main-loop"]).
    @raise Invalid_argument if [capacity] or [max_spans] < 1. *)
val create :
  clock:(unit -> float) ->
  ?capacity:int ->
  ?max_spans:int ->
  ?track:string ->
  unit ->
  t

val capacity : t -> int
val max_spans : t -> int
val default_track : t -> string
val now : t -> float

(** [start t ?at ?label ()] opens a trace beginning at [at] (default
    now) with a fresh id. *)
val start : t -> ?at:float -> ?label:string -> unit -> trace

val id : trace -> int
val label : trace -> string
val start_of : trace -> float

(** Set the label once it is known (after the request line parses). *)
val relabel : trace -> string -> unit

(** Open a span now.  Returns a handle even when the per-trace bound is
    hit (the span is then counted in [truncated] and otherwise
    ignored). *)
val begin_span : t -> trace -> ?track:string -> string -> span

(** Close a span at the current clock.  Any spans opened inside it and
    not yet closed are closed at the same instant (nesting stays
    well-formed).  Closing a closed span is a no-op. *)
val end_span : t -> span -> unit

(** Splice in a completed span with explicit boundaries — work measured
    in another process/thread, stitched into this request's trace. *)
val add_span :
  t -> ?track:string -> name:string -> start:float -> stop:float -> trace -> unit

(** Zero-duration marker span (accept, keep-alive reuse, close). *)
val instant : t -> trace -> ?track:string -> string -> unit

(** Close the trace at [at] (default now): remaining open spans are
    closed, the trace enters the ring (evicting the oldest when full),
    and its data is returned. *)
val finish : t -> ?at:float -> trace -> trace_data

(** Push an externally assembled trace (e.g. decoded from another
    process) into the ring under a fresh id. *)
val ingest : t -> trace_data -> unit

(** Traces finished or ingested so far. *)
val completed : t -> int

(** Traces evicted from the ring. *)
val evicted : t -> int

(** Ring contents, oldest first. *)
val snapshot : t -> trace_data list

val reset : t -> unit

(** {2 Export} *)

(** The ring as a Chrome trace-event JSON document
    ([{"traceEvents":[...]}]): one complete ("ph":"X") event per span,
    timestamps in microseconds relative to the earliest trace, plus
    process-name metadata so each distinct track renders as its own
    Perfetto track. *)
val to_chrome_json : t -> string

(** One-line span breakdown, for the slow-request log: label, total
    duration, then each span as [name dur@track]. *)
val summary : trace_data -> string

(** {2 Compact binary records}

    Fixed little-endian encoding of one [trace_data], for carrying span
    boundaries across process boundaries (the MP stats pipe).  Label,
    span names and tracks are truncated to 255 bytes, spans to 255; the
    id is not carried (the receiver's {!ingest} assigns its own).  A
    typical request encodes in well under PIPE_BUF, so a single [write]
    is atomic. *)

val to_binary : trace_data -> string

(** [of_binary s ~pos] decodes one record at [pos], returning it and the
    offset just past it; [None] on malformed or short input. *)
val of_binary : string -> pos:int -> (trace_data * int) option
