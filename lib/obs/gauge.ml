type t = { mutable v : int; mutable hwm : int }

let create ?(initial = 0) () = { v = initial; hwm = initial }

let set t x =
  t.v <- x;
  if x > t.hwm then t.hwm <- x

let add t n = set t (t.v + n)
let incr t = add t 1
let decr t = add t (-1)
let value t = t.v
let high_watermark t = t.hwm

let reset t =
  t.v <- 0;
  t.hwm <- 0
