(** Monotonic event counter.  Not thread-safe; callers serialise
    access. *)

type t

val create : unit -> t
val incr : t -> unit
val add : t -> int -> unit
val value : t -> int
val reset : t -> unit
