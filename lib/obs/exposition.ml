(* Prometheus text exposition (format 0.0.4) over a registry walk, and
   a strict parser/validator for it.  Dependency-free on both sides so
   the server, the tests and the CI lint all share one notion of
   "valid exposition". *)

(* Cumulative bucket ladder (seconds).  Fixed across scrapes — a
   histogram whose log-bucket layout grows must still expose the same
   [le] series every time, or Prometheus rate() breaks. *)
let le_edges =
  [
    0.0001; 0.00025; 0.0005; 0.001; 0.0025; 0.005; 0.01; 0.025; 0.05; 0.1;
    0.25; 0.5; 1.0; 2.5; 5.0; 10.0;
  ]

let escape_help s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let escape_label_value s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let float_str f =
  if not (Float.is_finite f) then (if f > 0. then "+Inf" else "0")
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

let label_str labels =
  match labels with
  | [] -> ""
  | ls ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
             ls)
      ^ "}"

let type_of_value = function
  | Registry.Counter _ -> "counter"
  | Registry.Gauge _ -> "gauge"
  | Registry.Hist _ -> "histogram"
  | Registry.Info -> "gauge"

(* [samples] comes from [Registry.collect]: sorted by (name, labels),
   so series of one family are already contiguous. *)
let render samples =
  let b = Buffer.create 4096 in
  let last_name = ref "" in
  List.iter
    (fun (s : Registry.sample) ->
      if s.Registry.name <> !last_name then begin
        last_name := s.Registry.name;
        Buffer.add_string b
          (Printf.sprintf "# HELP %s %s\n" s.Registry.name
             (escape_help s.Registry.help));
        Buffer.add_string b
          (Printf.sprintf "# TYPE %s %s\n" s.Registry.name
             (type_of_value s.Registry.value))
      end;
      match s.Registry.value with
      | Registry.Counter n ->
          Buffer.add_string b
            (Printf.sprintf "%s%s %d\n" s.Registry.name
               (label_str s.Registry.labels) n)
      | Registry.Gauge g ->
          Buffer.add_string b
            (Printf.sprintf "%s%s %s\n" s.Registry.name
               (label_str s.Registry.labels) (float_str g))
      | Registry.Info ->
          Buffer.add_string b
            (Printf.sprintf "%s%s 1\n" s.Registry.name
               (label_str s.Registry.labels))
      | Registry.Hist h ->
          let name = s.Registry.name in
          List.iter
            (fun edge ->
              let labels =
                s.Registry.labels @ [ ("le", float_str edge) ]
              in
              Buffer.add_string b
                (Printf.sprintf "%s_bucket%s %d\n" name (label_str labels)
                   (Histogram.count_le h edge)))
            le_edges;
          Buffer.add_string b
            (Printf.sprintf "%s_bucket%s %d\n" name
               (label_str (s.Registry.labels @ [ ("le", "+Inf") ]))
               (Histogram.count h));
          Buffer.add_string b
            (Printf.sprintf "%s_sum%s %s\n" name (label_str s.Registry.labels)
               (float_str (Histogram.sum h)));
          Buffer.add_string b
            (Printf.sprintf "%s_count%s %d\n" name
               (label_str s.Registry.labels) (Histogram.count h)))
    samples;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Strict parsing and validation                                       *)
(* ------------------------------------------------------------------ *)

type series = {
  s_name : string;  (* full sample name, e.g. foo_bucket *)
  s_labels : (string * string) list;
  s_value : float;
}

type family = {
  f_name : string;  (* declared TYPE name *)
  f_type : string;
  f_series : series list;  (* in exposition order *)
}

exception Invalid of string

let fail fmt = Printf.ksprintf (fun m -> raise (Invalid m)) fmt

let is_name_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
  | _ -> false

let parse_sample_line line =
  let n = String.length line in
  let i = ref 0 in
  while !i < n && is_name_char line.[!i] do incr i done;
  if !i = 0 then fail "sample line does not start with a metric name: %S" line;
  let name = String.sub line 0 !i in
  let labels =
    if !i < n && line.[!i] = '{' then begin
      incr i;
      let labels = ref [] in
      let rec loop () =
        let k0 = !i in
        while !i < n && is_name_char line.[!i] do incr i done;
        if !i = k0 then fail "empty label name in %S" line;
        let key = String.sub line k0 (!i - k0) in
        if !i >= n || line.[!i] <> '=' then fail "expected = in %S" line;
        incr i;
        if !i >= n || line.[!i] <> '"' then fail "expected \" in %S" line;
        incr i;
        let b = Buffer.create 16 in
        let rec str () =
          if !i >= n then fail "unterminated label value in %S" line
          else
            match line.[!i] with
            | '"' -> incr i
            | '\\' ->
                incr i;
                if !i >= n then fail "bad escape in %S" line;
                (match line.[!i] with
                | 'n' -> Buffer.add_char b '\n'
                | '\\' -> Buffer.add_char b '\\'
                | '"' -> Buffer.add_char b '"'
                | c -> fail "bad escape \\%c in %S" c line);
                incr i;
                str ()
            | c ->
                Buffer.add_char b c;
                incr i;
                str ()
        in
        str ();
        labels := (key, Buffer.contents b) :: !labels;
        if !i < n && line.[!i] = ',' then begin
          incr i;
          loop ()
        end
        else if !i < n && line.[!i] = '}' then incr i
        else fail "expected , or } in %S" line
      in
      loop ();
      List.rev !labels
    end
    else []
  in
  if !i >= n || line.[!i] <> ' ' then fail "expected space before value in %S" line;
  incr i;
  let vs = String.sub line !i (n - !i) in
  let value =
    match vs with
    | "+Inf" -> infinity
    | "-Inf" -> neg_infinity
    | "NaN" -> nan
    | _ -> (
        match float_of_string_opt vs with
        | Some f -> f
        | None -> fail "unparsable value %S in %S" vs line)
  in
  { s_name = name; s_labels = labels; s_value = value }

let base_of ~ftype name =
  if ftype = "histogram" then
    if Filename.check_suffix name "_bucket" then
      String.sub name 0 (String.length name - 7)
    else if Filename.check_suffix name "_sum" then
      String.sub name 0 (String.length name - 4)
    else if Filename.check_suffix name "_count" then
      String.sub name 0 (String.length name - 6)
    else name
  else name

(* Parse an exposition payload into families, enforcing structure as we
   go: TYPE before samples, families contiguous, no duplicate series. *)
let parse text =
  let lines = String.split_on_char '\n' text in
  let families = ref [] in  (* reverse order *)
  let current = ref None in  (* (name, type, series rev) *)
  let seen_names = Hashtbl.create 16 in
  let push () =
    match !current with
    | None -> ()
    | Some (name, ftype, series) ->
        families := { f_name = name; f_type = ftype; f_series = List.rev series } :: !families;
        current := None
  in
  List.iter
    (fun line ->
      if line = "" then ()
      else if String.length line >= 7 && String.sub line 0 7 = "# TYPE " then begin
        let rest = String.sub line 7 (String.length line - 7) in
        match String.index_opt rest ' ' with
        | None -> fail "malformed TYPE line %S" line
        | Some sp ->
            let name = String.sub rest 0 sp in
            let ftype = String.sub rest (sp + 1) (String.length rest - sp - 1) in
            if not (List.mem ftype [ "counter"; "gauge"; "histogram"; "untyped" ])
            then fail "unknown type %S for %s" ftype name;
            if Hashtbl.mem seen_names name then
              fail "family %s declared twice (families must be contiguous)" name;
            Hashtbl.add seen_names name ();
            push ();
            current := Some (name, ftype, [])
      end
      else if String.length line >= 2 && String.sub line 0 2 = "# " then ()
        (* HELP and comments: free-form *)
      else begin
        let s = parse_sample_line line in
        match !current with
        | None -> fail "sample %s before any TYPE declaration" s.s_name
        | Some (name, ftype, series) ->
            if base_of ~ftype s.s_name <> name then
              fail "sample %s under family %s (families must be contiguous)"
                s.s_name name;
            current := Some (name, ftype, s :: series)
      end)
    lines;
  push ();
  List.rev !families

let le_value labels =
  match List.assoc_opt "le" labels with
  | None -> fail "histogram bucket without le label"
  | Some "+Inf" -> infinity
  | Some v -> (
      match float_of_string_opt v with
      | Some f -> f
      | None -> fail "unparsable le %S" v)

let without_le labels = List.filter (fun (k, _) -> k <> "le") labels

let validate_family f =
  (* No duplicate (name, labels) series. *)
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun s ->
      let key = (s.s_name, s.s_labels) in
      if Hashtbl.mem tbl key then
        fail "duplicate series %s%s" s.s_name (label_str s.s_labels);
      Hashtbl.add tbl key ())
    f.f_series;
  (* Labels sorted by name (our renderer's invariant; [le] lands last
     only because it sorts after our lowercase label names — enforce
     sortedness of the non-le prefix plus le last). *)
  List.iter
    (fun s ->
      let ls = List.map fst (without_le s.s_labels) in
      let sorted = List.sort compare ls in
      if ls <> sorted then
        fail "labels not sorted on %s%s" s.s_name (label_str s.s_labels))
    f.f_series;
  (match f.f_type with
  | "counter" ->
      List.iter
        (fun s ->
          if s.s_value < 0. then fail "negative counter %s" s.s_name;
          if s.s_name <> f.f_name then
            fail "counter sample %s does not match family %s" s.s_name f.f_name)
        f.f_series
  | "histogram" ->
      (* Group by label set (minus le); per group: buckets in increasing
         le order with nondecreasing cumulative counts, an +Inf bucket,
         and _count equal to it. *)
      let groups = Hashtbl.create 4 in
      List.iter
        (fun s ->
          let key = without_le s.s_labels in
          let prev = try Hashtbl.find groups key with Not_found -> [] in
          Hashtbl.replace groups key (s :: prev))
        f.f_series;
      Hashtbl.iter
        (fun key series ->
          let series = List.rev series in
          let buckets =
            List.filter (fun s -> s.s_name = f.f_name ^ "_bucket") series
          in
          if buckets = [] then
            fail "histogram %s%s has no buckets" f.f_name (label_str key);
          let last_le = ref neg_infinity and last_c = ref neg_infinity in
          List.iter
            (fun s ->
              let le = le_value s.s_labels in
              if le <= !last_le then
                fail "histogram %s buckets out of order (le %s)" f.f_name
                  (float_str le);
              if s.s_value < !last_c then
                fail "histogram %s bucket counts decreasing at le %s" f.f_name
                  (float_str le);
              last_le := le;
              last_c := s.s_value)
            buckets;
          if !last_le <> infinity then
            fail "histogram %s%s missing +Inf bucket" f.f_name (label_str key);
          let find_suffix suffix =
            List.find_opt (fun s -> s.s_name = f.f_name ^ suffix) series
          in
          (match find_suffix "_count" with
          | None -> fail "histogram %s%s missing _count" f.f_name (label_str key)
          | Some c ->
              if c.s_value <> !last_c then
                fail "histogram %s _count %s != +Inf bucket %s" f.f_name
                  (float_str c.s_value) (float_str !last_c));
          match find_suffix "_sum" with
          | None -> fail "histogram %s%s missing _sum" f.f_name (label_str key)
          | Some _ -> ())
        groups
  | _ -> ())

let validate text =
  (* The whole pipeline goes inside the scrutinee: an [exception] branch
     only covers the matched expression, and validate_family raises
     too. *)
  match
    let families = parse text in
    List.iter validate_family families;
    families
  with
  | families -> Ok families
  | exception Invalid msg -> Error msg
