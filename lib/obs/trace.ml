type span_data = {
  name : string;
  track : string;
  t_start : float;
  t_stop : float;
  depth : int;
}

type trace_data = {
  id : int;
  label : string;
  t_begin : float;
  t_end : float;
  spans : span_data list;
  truncated : int;
}

type span = {
  sp_name : string;
  sp_track : string;
  sp_start : float;
  mutable sp_stop : float;  (* nan while open *)
  sp_depth : int;
  sp_dropped : bool;  (* over the per-trace bound: a no-op handle *)
  sp_trace : trace;
}

and trace = {
  tr_id : int;
  mutable tr_label : string;
  tr_start : float;
  mutable tr_spans : span list;  (* reverse begin order *)
  mutable tr_nspans : int;
  mutable tr_truncated : int;
  mutable tr_open : span list;  (* stack, innermost first *)
  mutable tr_finished : bool;
}

type t = {
  clock : unit -> float;
  track : string;
  cap : int;
  span_cap : int;
  ring : trace_data option array;
  mutable head : int;  (* next write slot *)
  mutable len : int;
  mutable next_id : int;
  mutable n_completed : int;
}

let create ~clock ?(capacity = 256) ?(max_spans = 64) ?(track = "main-loop")
    () =
  if capacity < 1 then invalid_arg "Trace.create: capacity < 1";
  if max_spans < 1 then invalid_arg "Trace.create: max_spans < 1";
  {
    clock;
    track;
    cap = capacity;
    span_cap = max_spans;
    ring = Array.make capacity None;
    head = 0;
    len = 0;
    next_id = 0;
    n_completed = 0;
  }

let capacity t = t.cap
let max_spans t = t.span_cap
let default_track t = t.track
let now t = t.clock ()

let start t ?at ?(label = "request") () =
  let id = t.next_id in
  t.next_id <- id + 1;
  {
    tr_id = id;
    tr_label = label;
    tr_start = (match at with Some a -> a | None -> t.clock ());
    tr_spans = [];
    tr_nspans = 0;
    tr_truncated = 0;
    tr_open = [];
    tr_finished = false;
  }

let id tr = tr.tr_id
let label tr = tr.tr_label
let start_of tr = tr.tr_start
let relabel tr label = tr.tr_label <- label

let dropped_span tr name track start =
  {
    sp_name = name;
    sp_track = track;
    sp_start = start;
    sp_stop = start;
    sp_depth = 0;
    sp_dropped = true;
    sp_trace = tr;
  }

let begin_span t tr ?track name =
  let track = match track with Some s -> s | None -> t.track in
  let at = t.clock () in
  if tr.tr_finished || tr.tr_nspans >= t.span_cap then begin
    if not tr.tr_finished then tr.tr_truncated <- tr.tr_truncated + 1;
    dropped_span tr name track at
  end
  else begin
    let sp =
      {
        sp_name = name;
        sp_track = track;
        sp_start = at;
        sp_stop = Float.nan;
        sp_depth = List.length tr.tr_open;
        sp_dropped = false;
        sp_trace = tr;
      }
    in
    tr.tr_spans <- sp :: tr.tr_spans;
    tr.tr_nspans <- tr.tr_nspans + 1;
    tr.tr_open <- sp :: tr.tr_open;
    sp
  end

(* Closing a span closes any still-open spans begun inside it at the
   same instant, so begin/end pairs always produce well-nested
   intervals even when callers interleave ends out of order. *)
let end_span t sp =
  if (not sp.sp_dropped) && Float.is_nan sp.sp_stop then begin
    let at = t.clock () in
    let tr = sp.sp_trace in
    if List.memq sp tr.tr_open then begin
      let rec pop = function
        | [] -> []
        | s :: rest ->
            if Float.is_nan s.sp_stop then s.sp_stop <- at;
            if s == sp then rest else pop rest
      in
      tr.tr_open <- pop tr.tr_open
    end
    else sp.sp_stop <- at
  end

let add_span t ?track ~name ~start ~stop tr =
  let track = match track with Some s -> s | None -> t.track in
  if tr.tr_finished || tr.tr_nspans >= t.span_cap then begin
    if not tr.tr_finished then tr.tr_truncated <- tr.tr_truncated + 1
  end
  else begin
    let sp =
      {
        sp_name = name;
        sp_track = track;
        sp_start = start;
        sp_stop = stop;
        sp_depth = List.length tr.tr_open;
        sp_dropped = false;
        sp_trace = tr;
      }
    in
    tr.tr_spans <- sp :: tr.tr_spans;
    tr.tr_nspans <- tr.tr_nspans + 1
  end

let instant t tr ?track name =
  let at = t.clock () in
  add_span t ?track ~name ~start:at ~stop:at tr

let push t data =
  t.ring.(t.head) <- Some data;
  t.head <- (t.head + 1) mod t.cap;
  if t.len < t.cap then t.len <- t.len + 1;
  t.n_completed <- t.n_completed + 1

let data_of_trace tr ~t_end =
  let spans =
    List.rev_map
      (fun sp ->
        {
          name = sp.sp_name;
          track = sp.sp_track;
          t_start = sp.sp_start;
          t_stop = (if Float.is_nan sp.sp_stop then t_end else sp.sp_stop);
          depth = sp.sp_depth;
        })
      tr.tr_spans
  in
  {
    id = tr.tr_id;
    label = tr.tr_label;
    t_begin = tr.tr_start;
    t_end;
    spans;
    truncated = tr.tr_truncated;
  }

let finish t ?at tr =
  let at = match at with Some a -> a | None -> t.clock () in
  if tr.tr_finished then data_of_trace tr ~t_end:at
  else begin
    List.iter
      (fun sp -> if Float.is_nan sp.sp_stop then sp.sp_stop <- at)
      tr.tr_open;
    tr.tr_open <- [];
    tr.tr_finished <- true;
    let data = data_of_trace tr ~t_end:at in
    push t data;
    data
  end

let ingest t data =
  let id = t.next_id in
  t.next_id <- id + 1;
  push t { data with id }

let completed t = t.n_completed
let evicted t = Stdlib.max 0 (t.n_completed - t.cap)

let snapshot t =
  let out = ref [] in
  for i = t.len - 1 downto 0 do
    let slot = (t.head - 1 - i + (2 * t.cap)) mod t.cap in
    match t.ring.(slot) with
    | Some data -> out := data :: !out
    | None -> ()
  done;
  List.rev !out

let reset t =
  Array.fill t.ring 0 t.cap None;
  t.head <- 0;
  t.len <- 0;
  t.n_completed <- 0

(* ------------------------------------------------------------------ *)
(* Chrome trace-event export                                           *)
(* ------------------------------------------------------------------ *)

let to_chrome_json t =
  let traces = snapshot t in
  let base =
    List.fold_left (fun acc tr -> Float.min acc tr.t_begin) Float.infinity traces
  in
  let base = if Float.is_finite base then base else 0. in
  let us x = (x -. base) *. 1e6 in
  let pids = Hashtbl.create 8 in
  let pid_order = ref [] in
  let pid_of track =
    match Hashtbl.find_opt pids track with
    | Some p -> p
    | None ->
        let p = Hashtbl.length pids + 1 in
        Hashtbl.add pids track p;
        pid_order := (track, p) :: !pid_order;
        p
  in
  let events = Buffer.create 4096 in
  List.iter
    (fun tr ->
      List.iter
        (fun sp ->
          if Buffer.length events > 0 then Buffer.add_char events ',';
          Buffer.add_string events
            (Printf.sprintf
               {|{"name":%s,"cat":"request","ph":"X","ts":%.3f,"dur":%.3f,"pid":%d,"tid":1,"args":{"trace":%d,"label":%s,"depth":%d}}|}
               (Json.str sp.name) (us sp.t_start)
               ((sp.t_stop -. sp.t_start) *. 1e6)
               (pid_of sp.track) tr.id (Json.str tr.label) sp.depth))
        tr.spans)
    traces;
  let meta = Buffer.create 256 in
  List.iter
    (fun (track, p) ->
      if Buffer.length meta > 0 then Buffer.add_char meta ',';
      Buffer.add_string meta
        (Printf.sprintf
           {|{"name":"process_name","ph":"M","pid":%d,"args":{"name":%s}}|} p
           (Json.str track)))
    (List.rev !pid_order);
  let b = Buffer.create (Buffer.length events + Buffer.length meta + 32) in
  Buffer.add_string b {|{"traceEvents":[|};
  Buffer.add_buffer b meta;
  if Buffer.length meta > 0 && Buffer.length events > 0 then
    Buffer.add_char b ',';
  Buffer.add_buffer b events;
  Buffer.add_string b "]}";
  Buffer.contents b

let summary data =
  let b = Buffer.create 128 in
  Buffer.add_string b
    (Printf.sprintf "trace %d %S %.3f ms:" data.id data.label
       (1000. *. (data.t_end -. data.t_begin)));
  List.iteri
    (fun i sp ->
      Buffer.add_string b (if i = 0 then " " else "; ");
      Buffer.add_string b
        (Printf.sprintf "%s %.3fms@%s" sp.name
           (1000. *. (sp.t_stop -. sp.t_start))
           sp.track))
    data.spans;
  if data.truncated > 0 then
    Buffer.add_string b (Printf.sprintf " (+%d spans dropped)" data.truncated);
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Compact binary records (cross-process stitching)                    *)
(* ------------------------------------------------------------------ *)

let add_short_string b s =
  let s = if String.length s > 255 then String.sub s 0 255 else s in
  Buffer.add_char b (Char.chr (String.length s));
  Buffer.add_string b s

let add_f64 b x =
  let bytes = Bytes.create 8 in
  Bytes.set_int64_le bytes 0 (Int64.bits_of_float x);
  Buffer.add_bytes b bytes

let to_binary data =
  let b = Buffer.create 256 in
  add_short_string b data.label;
  add_f64 b data.t_begin;
  add_f64 b data.t_end;
  let spans =
    if List.length data.spans > 255 then
      List.filteri (fun i _ -> i < 255) data.spans
    else data.spans
  in
  Buffer.add_char b (Char.chr (List.length spans));
  let trunc = Stdlib.min 65535 data.truncated in
  Buffer.add_char b (Char.chr (trunc land 0xff));
  Buffer.add_char b (Char.chr ((trunc lsr 8) land 0xff));
  List.iter
    (fun sp ->
      add_short_string b sp.name;
      add_short_string b sp.track;
      Buffer.add_char b (Char.chr (Stdlib.min 255 (Stdlib.max 0 sp.depth)));
      add_f64 b sp.t_start;
      add_f64 b sp.t_stop)
    spans;
  Buffer.contents b

let of_binary s ~pos =
  let n = String.length s in
  let exception Short in
  let p = ref pos in
  let u8 () =
    if !p >= n then raise Short
    else begin
      let v = Char.code s.[!p] in
      incr p;
      v
    end
  in
  let short_string () =
    let len = u8 () in
    if !p + len > n then raise Short
    else begin
      let v = String.sub s !p len in
      p := !p + len;
      v
    end
  in
  let f64 () =
    if !p + 8 > n then raise Short
    else begin
      let v = Int64.float_of_bits (String.get_int64_le s !p) in
      p := !p + 8;
      v
    end
  in
  match
    let label = short_string () in
    let t_begin = f64 () in
    let t_end = f64 () in
    let nspans = u8 () in
    let trunc_lo = u8 () in
    let trunc_hi = u8 () in
    let spans =
      List.init nspans (fun _ -> ())
      |> List.map (fun () ->
             let name = short_string () in
             let track = short_string () in
             let depth = u8 () in
             let t_start = f64 () in
             let t_stop = f64 () in
             { name; track; t_start; t_stop; depth })
    in
    {
      id = 0;
      label;
      t_begin;
      t_end;
      spans;
      truncated = trunc_lo lor (trunc_hi lsl 8);
    }
  with
  | data -> Some (data, !p)
  | exception Short -> None
