(** The unified metrics registry.

    Every counter, gauge and histogram a server exposes is registered
    once, under a stable Prometheus-style name (e.g.
    [flash_http_requests_total]) with optional labels, together with a
    closure reading the live value.  Rendering — the human status page,
    its JSON view, and [GET /metrics] exposition — happens over one
    {!collect} walk, so the surfaces cannot drift: a metric registered
    here appears in all of them, and nothing appears anywhere else.

    Registration is not thread-safe (do it at server start); [collect]
    only calls the read closures, whose own synchronisation is the
    caller's (the live server collects under its observability lock). *)

type labels = (string * string) list

type value =
  | Counter of int  (** cumulative, monotone *)
  | Gauge of float  (** instantaneous *)
  | Hist of Histogram.t  (** snapshot of a log-bucketed histogram *)
  | Info  (** constant 1; the labels carry the payload *)

type sample = {
  name : string;
  help : string;
  labels : labels;  (** sorted by label name *)
  value : value;
}

type t

val create : unit -> t

(** Register one series.  Names must match
    [[a-zA-Z_:][a-zA-Z0-9_:]*]; label names [[a-zA-Z][a-zA-Z0-9_]*].
    @raise Invalid_argument on an invalid name, duplicate label names,
    or a (name, labels) pair already registered. *)
val counter :
  t -> name:string -> help:string -> ?labels:labels -> (unit -> int) -> unit

val gauge :
  t -> name:string -> help:string -> ?labels:labels -> (unit -> float) -> unit

val histogram :
  t ->
  name:string ->
  help:string ->
  ?labels:labels ->
  (unit -> Histogram.t) ->
  unit

(** A static info metric ([flash_build_info]-style): constant value 1,
    payload in the labels. *)
val info : t -> name:string -> help:string -> labels:labels -> unit

(** Read every registered series, sorted by (name, labels). *)
val collect : t -> sample list

(** Re-sort an assembled sample list into collection order
    (name, labels) — for callers that concatenate several collects. *)
val sort_samples : sample list -> sample list

(** [aggregate ~drop samples] folds samples that collide once the
    [drop] label is stripped (summed-at-snapshot across shards):
    counters and gauges sum, histograms merge, info series dedupe.
    Gauges whose name satisfies [gauge_max] take the max instead of the
    sum (uptime-style values that are not additive).  Result is sorted
    like {!collect}. *)
val aggregate :
  ?gauge_max:(string -> bool) -> drop:string -> sample list -> sample list

(** Renderer conveniences over a collected list. *)
val find : sample list -> ?labels:labels -> string -> sample option

val int_value : ?labels:labels -> sample list -> string -> int
val float_value : ?labels:labels -> sample list -> string -> float
val hist_value : ?labels:labels -> sample list -> string -> Histogram.t option
