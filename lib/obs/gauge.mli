(** Integer gauge with a high-watermark (queue depths, live
    connections).  Not thread-safe; callers serialise access. *)

type t

val create : ?initial:int -> unit -> t
val set : t -> int -> unit
val add : t -> int -> unit
val incr : t -> unit
val decr : t -> unit
val value : t -> int

(** Largest value ever held (including the initial value). *)
val high_watermark : t -> int

val reset : t -> unit
