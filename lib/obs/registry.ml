(* The unified metrics registry: every counter, gauge and histogram a
   server exposes is registered once, by stable name, with a closure
   that reads the live value at collection time.  Renderers
   (/server-status text, ?json, /metrics exposition) are views over one
   [collect] walk, so they cannot drift from each other. *)

type labels = (string * string) list

type value =
  | Counter of int
  | Gauge of float
  | Hist of Histogram.t
  | Info  (* the labels are the payload; samples as a constant 1 *)

type sample = {
  name : string;
  help : string;
  labels : labels;
  value : value;
}

type metric = {
  m_name : string;
  m_help : string;
  m_labels : labels;  (* sorted by key at registration *)
  m_read : unit -> value;
}

type t = { mutable metrics : metric list (* reverse registration order *) }

let create () = { metrics = [] }

let valid_name s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false)
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
         | _ -> false)
       s

let valid_label_name s =
  s <> ""
  && s.[0] <> '_'  (* reserved prefix (and [le] is ours to add) *)
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' -> true | _ -> false)
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       s

let sort_labels labels =
  List.sort_uniq (fun (a, _) (b, _) -> compare a b) labels

let register t ~name ~help ~labels read =
  if not (valid_name name) then
    invalid_arg (Printf.sprintf "Obs.Registry: invalid metric name %S" name);
  List.iter
    (fun (k, _) ->
      if not (valid_label_name k) then
        invalid_arg (Printf.sprintf "Obs.Registry: invalid label name %S" k))
    labels;
  let sorted = sort_labels labels in
  if List.length sorted <> List.length labels then
    invalid_arg "Obs.Registry: duplicate label names";
  let labels = sorted in
  if
    List.exists
      (fun m -> m.m_name = name && m.m_labels = labels)
      t.metrics
  then
    invalid_arg
      (Printf.sprintf "Obs.Registry: duplicate series %S" name);
  t.metrics <-
    { m_name = name; m_help = help; m_labels = labels; m_read = read }
    :: t.metrics

let counter t ~name ~help ?(labels = []) read =
  register t ~name ~help ~labels (fun () -> Counter (read ()))

let gauge t ~name ~help ?(labels = []) read =
  register t ~name ~help ~labels (fun () -> Gauge (read ()))

let histogram t ~name ~help ?(labels = []) read =
  register t ~name ~help ~labels (fun () -> Hist (read ()))

let info t ~name ~help ~labels =
  register t ~name ~help ~labels (fun () -> Info)

let sort_samples samples =
  List.stable_sort
    (fun a b ->
      match compare a.name b.name with 0 -> compare a.labels b.labels | c -> c)
    samples

(* One consistent walk: every renderer consumes this list.  Sorted by
   (name, labels) so exposition groups series of one metric together
   and output is deterministic. *)
let collect t =
  sort_samples
    (List.rev_map
       (fun m ->
         {
           name = m.m_name;
           help = m.m_help;
           labels = m.m_labels;
           value = m.m_read ();
         })
       t.metrics)

(* Summed-at-snapshot aggregation across shard registries: strip the
   shard label and fold series that collide.  Counters and gauges sum
   (a gauge like active connections is additive across shards); gauges
   whose name matches [gauge_max] take the max instead (uptime, SLO
   state); histograms merge; info series dedupe (same payload on every
   shard once the shard label is gone). *)
let aggregate ?(gauge_max = fun _ -> false) ~drop samples =
  let tbl = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun s ->
      let labels = List.filter (fun (k, _) -> k <> drop) s.labels in
      let key = (s.name, labels) in
      match Hashtbl.find_opt tbl key with
      | None ->
          Hashtbl.replace tbl key { s with labels };
          order := key :: !order
      | Some prev ->
          let value =
            match (prev.value, s.value) with
            | Counter a, Counter b -> Counter (a + b)
            | Gauge a, Gauge b ->
                Gauge (if gauge_max s.name then Float.max a b else a +. b)
            | Hist a, Hist b -> Hist (Histogram.merge a b)
            | Info, Info -> Info
            | v, _ -> v (* mismatched kinds: first registration wins *)
          in
          Hashtbl.replace tbl key { prev with value })
    samples;
  sort_samples (List.rev_map (fun key -> Hashtbl.find tbl key) !order)

(* Lookup helpers for renderers that still address a few values by
   name (the human status page's summary lines). *)
let find samples ?(labels = []) name =
  let labels = sort_labels labels in
  List.find_opt (fun s -> s.name = name && s.labels = labels) samples

let int_value ?labels samples name =
  match find samples ?labels name with
  | Some { value = Counter n; _ } -> n
  | Some { value = Gauge g; _ } -> int_of_float g
  | _ -> 0

let float_value ?labels samples name =
  match find samples ?labels name with
  | Some { value = Gauge g; _ } -> g
  | Some { value = Counter n; _ } -> float_of_int n
  | _ -> 0.

let hist_value ?labels samples name =
  match find samples ?labels name with
  | Some { value = Hist h; _ } -> Some h
  | _ -> None
