type obj = {
  mutable freq : float;  (* EMA-decayed access count, as of [last] *)
  mutable last : float;  (* clock of the newest observation *)
  mutable bytes : int;  (* last known object size, >= 1 *)
}

type t = { half_life : float; objects : (string, obj) Hashtbl.t }

type candidate = { c_path : string; c_score : float; c_bytes : int }

(* Objects decayed below this contribution are dead: dropping them
   bounds the table by live demand, the way the doorkeeper's periodic
   reset bounds its memory. *)
let noise_floor = 1e-6

let create ?(half_life = 60.) () =
  if half_life <= 0. then invalid_arg "Miner.create: half_life <= 0";
  { half_life; objects = Hashtbl.create 1024 }

let decay t obj ~now =
  let dt = now -. obj.last in
  if dt > 0. then begin
    obj.freq <- obj.freq *. Float.exp2 (-.dt /. t.half_life);
    obj.last <- now
  end

let observe t ~now ?(bytes = 0) ?(count = 1.0) path =
  match Hashtbl.find_opt t.objects path with
  | Some obj ->
      decay t obj ~now;
      obj.freq <- obj.freq +. count;
      if bytes > 0 then obj.bytes <- bytes
  | None ->
      Hashtbl.replace t.objects path
        { freq = count; last = now; bytes = max 1 bytes }

(* The mineable tail after the quoted request: [status bytes] is plain
   CLF; the server's machine-minable format appends the resolved
   filesystem [path]; an optional service-time field may trail it. *)
let mineable_status = function
  | 200 | 203 | 206 | 304 -> true
  | _ -> false

let observe_line t ~now line =
  match String.index_opt line '"' with
  | None -> false
  | Some q1 -> (
      match String.index_from_opt line (q1 + 1) '"' with
      | None -> false
      | Some q2 -> (
          let request = String.sub line (q1 + 1) (q2 - q1 - 1) in
          let tail = String.sub line (q2 + 1) (String.length line - q2 - 1) in
          let fields =
            List.filter (( <> ) "") (String.split_on_char ' ' tail)
          in
          match (String.split_on_char ' ' request, fields) with
          | _meth :: target :: _, status_s :: bytes_s :: rest -> (
              match (int_of_string_opt status_s, int_of_string_opt bytes_s) with
              | Some status, Some bytes when bytes >= 0 ->
                  if not (mineable_status status) then false
                  else
                    let path =
                      (* Prefer the appended filesystem path; a purely
                         numeric trailing field is the timing suffix,
                         not a path. *)
                      match rest with
                      | p :: _ when String.length p > 0 && p.[0] = '/' -> p
                      | _ -> target
                    in
                    if String.length path = 0 then false
                    else begin
                      (* A 304 confirms demand but moves no bytes: keep
                         the old size estimate. *)
                      observe t ~now ~bytes:(if status = 304 then 0 else bytes)
                        path;
                      true
                    end
              | _ -> false)
          | _ -> false))

let tracked t = Hashtbl.length t.objects

let rank t ~now ~top_k ~budget_bytes =
  let dead = ref [] in
  let scored =
    Hashtbl.fold
      (fun path obj acc ->
        decay t obj ~now;
        if obj.freq < noise_floor then begin
          dead := path :: !dead;
          acc
        end
        else
          { c_path = path;
            c_score = obj.freq /. float_of_int (max 1 obj.bytes);
            c_bytes = obj.bytes;
          }
          :: acc)
      t.objects []
  in
  List.iter (Hashtbl.remove t.objects) !dead;
  let ordered =
    List.sort
      (fun a b ->
        match compare b.c_score a.c_score with
        | 0 -> compare a.c_path b.c_path
        | c -> c)
      scored
  in
  let rec take n spent = function
    | [] -> []
    | _ when n <= 0 -> []
    | c :: rest ->
        if spent + c.c_bytes > budget_bytes then take n spent rest
        else c :: take (n - 1) (spent + c.c_bytes) rest
  in
  take top_k 0 ordered

let clear t = Hashtbl.reset t.objects
