(** Predictive-warming policy glue: store-history absorption and the
    warming configuration shared by the live server and the offline
    evaluator.

    The {!Miner} ranks; this module feeds it from a running
    {!Flash_cache.Store} without double counting.  An {!absorber}
    remembers, per key, how many hits it has already replayed into the
    miner and which doorkeeper rejections it has already seen, so each
    mining cycle contributes only the demand that arrived since the
    last one. *)

type config = {
  interval : float;  (** seconds between mining cycles *)
  budget_frac : float;  (** pinned hot tier <= this fraction of capacity *)
  top_k : int;  (** candidates considered per cycle *)
  half_life : float;  (** miner EMA half-life, seconds *)
}

(** 5 s cycles, a quarter of the cache pinnable, 64 candidates, 60 s
    half-life. *)
val default_config : config

(** The pinned-tier byte bound this config allows over [capacity]. *)
val pin_budget : config -> capacity:int -> int

type absorber

val create_absorber : unit -> absorber

(** Replay into [miner], at [now], every hit the cache has counted
    since the previous [absorb] — each key in [stats] observed with its
    hit delta and current weight — plus one observation per newly seen
    key in [rejected] (doorkeeper rejections: demand the cache turned
    away; no size is known for these).  Takes snapshots rather than the
    store itself so the caller controls locking and key filtering. *)
val absorb :
  absorber ->
  Miner.t ->
  now:float ->
  stats:(string * Flash_cache.Store.key_stat) list ->
  rejected:string list ->
  unit
