type config = {
  interval : float;
  budget_frac : float;
  top_k : int;
  half_life : float;
}

let default_config =
  { interval = 5.; budget_frac = 0.25; top_k = 64; half_life = 60. }

let pin_budget config ~capacity =
  let frac = Float.max 0. (Float.min 1. config.budget_frac) in
  int_of_float (frac *. float_of_int capacity)

type absorber = {
  hits_seen : (string, int) Hashtbl.t;
  rejected_seen : (string, unit) Hashtbl.t;
}

(* Bounded like the doorkeeper: forgetting everything at once only
   costs one cycle of re-absorbed counts. *)
let absorber_limit = 65536

let create_absorber () =
  { hits_seen = Hashtbl.create 256; rejected_seen = Hashtbl.create 256 }

let absorb a miner ~now ~stats ~rejected =
  if Hashtbl.length a.hits_seen >= absorber_limit then
    Hashtbl.reset a.hits_seen;
  if Hashtbl.length a.rejected_seen >= absorber_limit then
    Hashtbl.reset a.rejected_seen;
  List.iter
    (fun (key, (ks : Flash_cache.Store.key_stat)) ->
      let prev = Option.value ~default:0 (Hashtbl.find_opt a.hits_seen key) in
      (* The store's counter is per-entry and resets when the entry is
         dropped; a smaller reading means a fresh entry, so the whole
         count is new. *)
      let fresh =
        if ks.Flash_cache.Store.ks_hits >= prev then
          ks.Flash_cache.Store.ks_hits - prev
        else ks.Flash_cache.Store.ks_hits
      in
      Hashtbl.replace a.hits_seen key ks.Flash_cache.Store.ks_hits;
      if fresh > 0 then
        Miner.observe miner ~now ~bytes:ks.Flash_cache.Store.ks_weight
          ~count:(float_of_int fresh) key)
    stats;
  List.iter
    (fun key ->
      if not (Hashtbl.mem a.rejected_seen key) then begin
        Hashtbl.replace a.rejected_seen key ();
        Miner.observe miner ~now key
      end)
    rejected
