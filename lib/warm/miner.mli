(** Access-history mining for predictive cache warming.

    The miner folds observed demand — per-key hit/recency stats from a
    {!Flash_cache.Store}, the admission doorkeeper's rejected-key
    history, and pcache-style access-log lines — into one EMA-decayed,
    size-aware ranking.  The score is GDSF-shaped (decayed frequency
    over size), so the warmer speaks the same vocabulary as the cache's
    own replacement policy: small, persistently popular objects rank
    highest; big one-shot downloads rank last.

    Everything here is pure state folding with an injected clock:
    observations carry [now], decay happens lazily against it, and
    rankings are deterministic functions of the observation sequence —
    the property the qcheck suite pins down.  No syscalls, no wall
    clock, no threads: the prefetch side (helpers, mmap, insertion)
    lives with the server. *)

type t

(** One ranked warming candidate. *)
type candidate = {
  c_path : string;
  c_score : float;  (** decayed frequency / size; higher is hotter *)
  c_bytes : int;  (** last observed size (1 when never sized) *)
}

(** [create ~half_life ()] — an object's contribution halves every
    [half_life] seconds of silence (default 60 s).
    @raise Invalid_argument if [half_life <= 0]. *)
val create : ?half_life:float -> unit -> t

(** Record one access to [path] at [now].  [bytes] refreshes the size
    estimate when positive; [count] (default 1.0) weighs the
    observation — bulk imports from store stats use it to replay a hit
    count in one call. *)
val observe : t -> now:float -> ?bytes:int -> ?count:float -> string -> unit

(** Parse one access-log line in the server's mineable format — a
    Common Log Format request line whose tail carries
    [status bytes path] fields (the resolved filesystem path after the
    CLF [status bytes] pair, as pcache mines from Apache's
    [%>s %O %f]) — and {!observe} it at [now].  Lines without the path
    field fall back to the quoted request target; trailing numeric
    fields (the access-log timing suffix) are tolerated.  Only
    successful file responses (200/203/206/304) count.  Returns [false]
    for lines that parse but are not mineable and for unparseable
    lines. *)
val observe_line : t -> now:float -> string -> bool

(** Distinct paths currently tracked. *)
val tracked : t -> int

(** [rank t ~now ~top_k ~budget_bytes] — the hottest candidates, score
    descending (ties broken by path, so equal scores rank
    deterministically), cut to the first [top_k] whose cumulative
    [c_bytes] fit [budget_bytes].  Entries decayed below noise are
    dropped from the ranking and from the miner's state. *)
val rank : t -> now:float -> top_k:int -> budget_bytes:int -> candidate list

val clear : t -> unit
