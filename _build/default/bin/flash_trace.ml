(* flash-trace: generate and describe a synthetic workload trace.

     dune exec bin/flash_trace.exe -- --kind ece --files 9000 --requests 5000 *)

open Cmdliner

let describe fileset trace alpha =
  Format.printf "fileset:   %d files, %.2f MB total, %.1f KB mean size@."
    (Workload.Fileset.file_count fileset)
    (float_of_int (Workload.Fileset.total_bytes fileset) /. 1048576.)
    (Workload.Fileset.mean_size fileset /. 1024.);
  Format.printf "trace:     %d requests%s@."
    (Workload.Trace.length trace)
    (match alpha with
    | Some a -> Printf.sprintf ", zipf alpha %.2f" a
    | None -> " (imported log)");
  Format.printf "touched:   %d distinct files, %.2f MB footprint@."
    (Workload.Trace.distinct_files trace)
    (float_of_int (Workload.Trace.footprint_bytes trace) /. 1048576.);
  Format.printf "transfer:  %.1f KB mean@."
    (Workload.Trace.mean_transfer trace /. 1024.)

let run kind files requests alpha seed dataset_mb sample export import =
  (match import with
  | Some path ->
      let trace = Workload.Trace.load_clf ~path in
      describe trace.Workload.Trace.fileset trace None;
      if sample > 0 then begin
        Format.printf "@.first %d requests:@." sample;
        for i = 0 to sample - 1 do
          Format.printf "  GET %s  (%d bytes)@."
            (Workload.Trace.request_path trace i)
            (Workload.Trace.request_size trace i)
        done
      end;
      exit 0
  | None -> ());
  let spec =
    match String.lowercase_ascii kind with
    | "cs" -> Workload.Fileset.cs_like ~files ~seed
    | "owlnet" -> Workload.Fileset.owlnet_like ~files ~seed
    | "ece" -> Workload.Fileset.ece_like ~files ~seed
    | other ->
        Format.eprintf "unknown trace kind %S (cs|owlnet|ece)@." other;
        exit 2
  in
  let fileset = Workload.Fileset.generate spec in
  let fileset =
    match dataset_mb with
    | Some mb ->
        Workload.Fileset.truncate fileset ~dataset_bytes:(mb * 1024 * 1024)
    | None -> fileset
  in
  let trace =
    Workload.Trace.generate fileset ~length:requests ~alpha ~seed:(seed + 1)
  in
  describe fileset trace (Some alpha);
  (match export with
  | Some path ->
      Workload.Trace.save_clf trace ~path;
      Format.printf "exported:  %s (Common Log Format)@." path
  | None -> ());
  if sample > 0 then begin
    Format.printf "@.first %d requests:@." sample;
    for i = 0 to sample - 1 do
      Format.printf "  GET %s  (%d bytes)@."
        (Workload.Trace.request_path trace i)
        (Workload.Trace.request_size trace i)
    done
  end

let kind =
  Arg.(
    value & opt string "ece"
    & info [ "kind"; "k" ] ~docv:"KIND" ~doc:"Trace flavour: cs, owlnet or ece.")

let files = Arg.(value & opt int 5000 & info [ "files" ] ~docv:"N" ~doc:"Fileset size.")

let requests =
  Arg.(value & opt int 10_000 & info [ "requests"; "n" ] ~docv:"N" ~doc:"Log length.")

let alpha =
  Arg.(value & opt float 0.9 & info [ "alpha" ] ~docv:"A" ~doc:"Zipf exponent.")

let seed = Arg.(value & opt int 21 & info [ "seed" ] ~docv:"N" ~doc:"RNG seed.")

let dataset_mb =
  Arg.(
    value
    & opt (some int) None
    & info [ "dataset-mb" ] ~docv:"MB" ~doc:"Truncate the fileset to this size.")

let sample =
  Arg.(value & opt int 0 & info [ "sample" ] ~docv:"N" ~doc:"Print the first N requests.")

let export =
  Arg.(
    value
    & opt (some string) None
    & info [ "export" ] ~docv:"FILE" ~doc:"Write the trace as a CLF access log.")

let import =
  Arg.(
    value
    & opt (some string) None
    & info [ "import" ] ~docv:"FILE"
        ~doc:"Describe a trace loaded from a CLF access log instead of generating one.")

let cmd =
  let doc = "generate and describe a synthetic access-log workload" in
  Cmd.v (Cmd.info "flash-trace" ~doc)
    Term.(
      const run $ kind $ files $ requests $ alpha $ seed $ dataset_mb $ sample
      $ export $ import)

let () = exit (Cmd.eval cmd)
