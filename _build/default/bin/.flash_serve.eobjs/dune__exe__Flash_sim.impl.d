bin/flash_sim.ml: Arg Cmd Cmdliner Flash Format Simos String Term Workload
