bin/flash_serve.mli:
