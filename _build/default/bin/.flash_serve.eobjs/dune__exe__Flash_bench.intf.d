bin/flash_bench.mli:
