bin/flash_serve.ml: Arg Cmd Cmdliner Flash_live Fmt_tty Format Logs Logs_fmt Printf String Sys Term
