bin/flash_bench.ml: Arg Array Cmd Cmdliner Flash_live Float Format Fun List String Term Thread Unix
