bin/flash_trace.mli:
