bin/flash_trace.ml: Arg Cmd Cmdliner Format Printf String Term Workload
