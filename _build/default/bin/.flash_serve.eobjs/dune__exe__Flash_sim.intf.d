bin/flash_sim.mli:
