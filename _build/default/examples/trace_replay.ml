(* Replay a synthetic access log against the simulated Flash server and
   inspect what the caches and helpers did — the paper's §5 machinery at
   work.

     dune exec examples/trace_replay.exe *)

let () =
  let fileset =
    Workload.Fileset.generate (Workload.Fileset.cs_like ~files:3000 ~seed:5)
  in
  let trace = Workload.Trace.generate fileset ~length:40_000 ~alpha:0.9 ~seed:6 in
  Format.printf "Trace: %d files, %.1f MB dataset, %.1f KB mean transfer, %d requests@."
    (Workload.Fileset.file_count fileset)
    (float_of_int (Workload.Fileset.total_bytes fileset) /. 1048576.)
    (Workload.Trace.mean_transfer trace /. 1024.)
    (Workload.Trace.length trace);

  (* Drive the server directly (not via Driver) to get at cache stats. *)
  let engine = Sim.Engine.create ~seed:9 () in
  let kernel = Simos.Kernel.create engine Simos.Os_profile.freebsd in
  ignore (Workload.Fileset.install fileset (Simos.Kernel.fs kernel));
  let server = Flash.Server.start kernel Flash.Config.flash in
  let net = Simos.Kernel.net kernel in
  let step = ref (-1) in
  for i = 1 to 48 do
    ignore
      (Sim.Proc.spawn engine
         ~name:(Printf.sprintf "client-%d" i)
         (fun () ->
           let rec loop () =
             incr step;
             let path = Workload.Trace.request_path trace !step in
             let conn = Simos.Net.connect net ~link_rate:12.5e6 ~rtt:0.0003 in
             Simos.Net.client_send conn
               ("GET " ^ path ^ " HTTP/1.0\r\nHost: replay\r\n\r\n");
             (match Simos.Net.client_await_response conn with
             | `Ok | `Closed -> ());
             Simos.Net.client_close conn;
             loop ()
           in
           loop ()))
  done;
  ignore (Sim.Engine.run ~until:10. engine);

  let delivered = Simos.Net.delivered_bytes net in
  Format.printf "@.After 10 simulated seconds:@.";
  Format.printf "  responses completed   %d@." (Flash.Server.completed server);
  Format.printf "  bandwidth             %.1f Mb/s@."
    (float_of_int delivered *. 8. /. 10. /. 1e6);
  Format.printf "  pathname cache        %d hits / %d misses@."
    (Flash.Server.pathname_hits server)
    (Flash.Server.pathname_misses server);
  Format.printf "  header cache hits     %d@." (Flash.Server.header_hits server);
  Format.printf "  mmap chunk reuse      %d (fresh maps: %d)@."
    (Flash.Server.mmap_reuse_hits server)
    (Flash.Server.mmap_map_ops server);
  Format.printf "  helper dispatches     %d (helpers spawned: %d)@."
    (Flash.Server.helper_dispatches server)
    (Flash.Server.helpers_spawned server);
  Format.printf "  disk reads            %d (%.0f%% busy)@."
    (Simos.Disk.completed (Simos.Kernel.disk kernel))
    (100.
    *. Simos.Disk.busy_time (Simos.Kernel.disk kernel)
    /. Sim.Engine.now engine);
  Format.printf "  buffer cache          %d pages, %d evictions@."
    (Simos.Buffer_cache.pages (Simos.Kernel.cache kernel))
    (Simos.Buffer_cache.evictions (Simos.Kernel.cache kernel))
