(* Quickstart: run the live AMPED web server on a scratch document root
   and talk to it with the bundled client.

     dune exec examples/quickstart.exe *)

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let make_docroot () =
  let dir = Filename.temp_file "flash_quickstart" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Unix.mkdir (Filename.concat dir "cgi-bin") 0o755;
  write_file
    (Filename.concat dir "index.html")
    "<html><body><h1>Flash (OCaml) is serving.</h1></body></html>\n";
  write_file (Filename.concat dir "hello.txt") "Hello from the AMPED server!\n";
  let cgi = Filename.concat dir "cgi-bin/time.sh" in
  write_file cgi "#!/bin/sh\necho \"server time: $(date -u) query=$QUERY_STRING\"\n";
  Unix.chmod cgi 0o755;
  dir

let show label (r : Flash_live.Client.response) =
  Format.printf "--- %s -> HTTP %d@." label r.Flash_live.Client.status;
  Format.printf "%s@." (String.trim r.Flash_live.Client.body)

let () =
  let docroot = make_docroot () in
  let config =
    { (Flash_live.Server.default_config ~docroot) with Flash_live.Server.helpers = 4 }
  in
  let server = Flash_live.Server.start_background config in
  let port = Flash_live.Server.port server in
  Format.printf "Flash (AMPED) listening on http://127.0.0.1:%d/ (docroot %s)@."
    port docroot;
  Fun.protect
    ~finally:(fun () -> Flash_live.Server.stop server)
    (fun () ->
      show "GET /" (Flash_live.Client.get ~host:"127.0.0.1" ~port "/");
      show "GET /hello.txt" (Flash_live.Client.get ~host:"127.0.0.1" ~port "/hello.txt");
      show "GET /hello.txt (cached)"
        (Flash_live.Client.get ~host:"127.0.0.1" ~port "/hello.txt");
      show "GET /cgi-bin/time.sh?demo=1"
        (Flash_live.Client.get ~host:"127.0.0.1" ~port "/cgi-bin/time.sh?demo=1");
      show "GET /missing" (Flash_live.Client.get ~host:"127.0.0.1" ~port "/missing");
      let stats = Flash_live.Server.stats server in
      Format.printf
        "@.server stats: %d requests on %d connections, %d errors, cache \
         %d hits / %d misses, %d helper jobs@."
        stats.Flash_live.Server.requests stats.Flash_live.Server.connections
        stats.Flash_live.Server.errors stats.Flash_live.Server.cache_hits
        stats.Flash_live.Server.cache_misses stats.Flash_live.Server.helper_jobs)
