(* Dynamic content (§5.6) and the no-mincore fallback (§5.7) in the
   simulator: persistent CGI application processes serve generated pages
   without ever blocking the AMPED event loop, and Flash-H replaces the
   mincore test with the feedback residency predictor.

     dune exec examples/dynamic_content.exe *)

let mib n = n * 1024 * 1024

let mixed_workload_run ~server ~cgi_fraction =
  let fileset =
    Workload.Fileset.generate (Workload.Fileset.owlnet_like ~files:300 ~seed:12)
  in
  let trace = Workload.Trace.generate fileset ~length:30_000 ~alpha:1.0 ~seed:13 in
  (* Every Nth request hits a dynamic script instead of a static file. *)
  let period = max 1 (int_of_float (1. /. cgi_fraction)) in
  let next i =
    if i mod period = 0 then
      Printf.sprintf "/cgi-bin/report%d" (i / period mod 4)
    else Workload.Trace.request_path trace i
  in
  Workload.Driver.run ~clients:32 ~warmup:2. ~duration:5.
    ~profile:Simos.Os_profile.freebsd ~server ~fileset ~next ()

let () =
  Format.printf
    "Mixed static + dynamic workload (10%% CGI), FreeBSD-like machine.@.";
  Format.printf "%-8s %10s %10s %14s@." "server" "Mb/s" "req/s" "p95 latency";
  List.iter
    (fun server ->
      let server =
        {
          server with
          Flash.Config.cgi =
            Some
              { Flash.Config.cgi_cpu = 2e-3; cgi_think = 10e-3; cgi_bytes = 6000 };
        }
      in
      let r = mixed_workload_run ~server ~cgi_fraction:0.1 in
      Format.printf "%-8s %10.1f %10.1f %11.1f ms@." r.Workload.Driver.label
        r.Workload.Driver.mbits_per_s r.Workload.Driver.requests_per_s
        r.Workload.Driver.latency_p95_ms)
    [ Flash.Config.flash; Flash.Config.flash_sped; Flash.Config.flash_mp ];
  Format.printf
    "@.CGI applications are separate persistent processes: their compute\n\
     and blocking time never stall the event-driven servers (S5.6).@.";

  Format.printf
    "@.S5.7 fallback: Flash without mincore (feedback residency predictor)@.";
  Format.printf "%-8s %10s@." "server" "Mb/s";
  let base =
    Workload.Fileset.generate (Workload.Fileset.ece_like ~files:9000 ~seed:31)
  in
  let fileset = Workload.Fileset.truncate base ~dataset_bytes:(mib 130) in
  let trace = Workload.Trace.generate fileset ~length:40_000 ~alpha:0.9 ~seed:14 in
  List.iter
    (fun server ->
      let r =
        Workload.Driver.run ~clients:48 ~warmup:12. ~duration:6.
          ~profile:Simos.Os_profile.freebsd ~server ~fileset
          ~next:(fun i -> Workload.Trace.request_path trace i)
          ()
      in
      Format.printf "%-8s %10.1f@." r.Workload.Driver.label
        r.Workload.Driver.mbits_per_s)
    [ Flash.Config.flash; Flash.Config.flash_heuristic; Flash.Config.flash_sped ];
  Format.printf
    "@.Flash-H predicts residency from its own bookkeeping; mispredictions\n\
     block the loop once (like SPED) and shrink the assumed cache size, so\n\
     it lands between Flash and SPED on disk-bound sets and matches Flash\n\
     when the working set fits.@."
