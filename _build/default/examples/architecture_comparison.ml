(* The paper's headline comparison in miniature: the same server code
   base run as AMPED / SPED / MP / MT on a cached and on a disk-bound
   workload (simulated machine, deterministic).

     dune exec examples/architecture_comparison.exe *)

let run_workload ~title ~dataset_mb ~warmup =
  Format.printf "@.%s (dataset %d MB, 64 clients, FreeBSD-like machine)@."
    title dataset_mb;
  Format.printf "%-8s %10s %10s %8s %8s %12s@." "server" "Mb/s" "req/s" "cpu%"
    "disk%" "switches/s";
  let base =
    Workload.Fileset.generate (Workload.Fileset.ece_like ~files:9000 ~seed:31)
  in
  let fileset =
    Workload.Fileset.truncate base ~dataset_bytes:(dataset_mb * 1024 * 1024)
  in
  let trace = Workload.Trace.generate fileset ~length:50_000 ~alpha:0.9 ~seed:7 in
  List.iter
    (fun server ->
      let r =
        Workload.Driver.run ~clients:64 ~warmup ~duration:5.
          ~profile:Simos.Os_profile.freebsd ~server ~fileset
          ~next:(fun i -> Workload.Trace.request_path trace i)
          ()
      in
      Format.printf "%-8s %10.1f %10.1f %7.0f%% %7.0f%% %12.0f@."
        r.Workload.Driver.label r.Workload.Driver.mbits_per_s
        r.Workload.Driver.requests_per_s
        (100. *. r.Workload.Driver.cpu_utilization)
        (100. *. r.Workload.Driver.disk_utilization)
        r.Workload.Driver.ctx_switches_per_s)
    [
      Flash.Config.flash;
      Flash.Config.flash_sped;
      Flash.Config.flash_mp;
      Flash.Config.flash_mt;
    ]

let () =
  Format.printf
    "Architecture comparison: one code base, four concurrency designs.@.";
  run_workload ~title:"Cached workload" ~dataset_mb:30 ~warmup:3.;
  (* Long warmup: the cache must reach churn steady state. *)
  run_workload ~title:"Disk-bound workload" ~dataset_mb:140 ~warmup:15.;
  Format.printf
    "@.Expected shape (paper S6): on the cached set the architectures are\n\
     within a few percent (SPED slightly ahead of Flash - no mincore\n\
     checks); on the disk-bound set SPED collapses because its \"non-\n\
     blocking\" file reads block the whole event loop, while Flash's\n\
     helpers keep the disk busy without stalling request processing.@."
