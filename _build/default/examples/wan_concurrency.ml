(* Long-lived (WAN-like) connections: how each architecture holds up as
   concurrent persistent clients grow — the paper's Figure 12 scenario
   at example scale.

     dune exec examples/wan_concurrency.exe *)

let () =
  let base =
    Workload.Fileset.generate (Workload.Fileset.ece_like ~files:9000 ~seed:31)
  in
  let fileset = Workload.Fileset.truncate base ~dataset_bytes:(80 * 1024 * 1024) in
  let trace = Workload.Trace.generate fileset ~length:40_000 ~alpha:0.9 ~seed:8 in
  let servers =
    [ Flash.Config.flash; Flash.Config.flash_sped; Flash.Config.flash_mt;
      Flash.Config.flash_mp ]
  in
  Format.printf
    "Persistent connections over an 80 MB dataset (Solaris-like machine).@.";
  Format.printf "%-8s" "clients";
  List.iter
    (fun (s : Flash.Config.t) -> Format.printf " %10s" s.Flash.Config.label)
    servers;
  Format.printf "   (Mb/s)@.";
  List.iter
    (fun clients ->
      Format.printf "%-8d" clients;
      List.iter
        (fun (server : Flash.Config.t) ->
          let server =
            (* MP/MT provision one worker per concurrent connection. *)
            match server.Flash.Config.arch with
            | Flash.Config.Mp | Flash.Config.Mt ->
                { server with Flash.Config.processes = clients }
            | Flash.Config.Sped | Flash.Config.Amped -> server
          in
          let r =
            Workload.Driver.run ~clients ~persistent:true ~warmup:10.
              ~duration:5. ~profile:Simos.Os_profile.solaris ~server ~fileset
              ~next:(fun i -> Workload.Trace.request_path trace i)
              ()
          in
          Format.printf " %10.1f" r.Workload.Driver.mbits_per_s)
        servers;
      Format.printf "@.")
    [ 32; 128; 384 ];
  Format.printf
    "@.Expected shape: event-driven servers (Flash, SPED) stay flat -- a\n\
     long-lived connection costs them a descriptor and some state; MT\n\
     declines gently (a thread per connection); MP declines sharply (a\n\
     whole process per connection squeezes the file cache).@."
