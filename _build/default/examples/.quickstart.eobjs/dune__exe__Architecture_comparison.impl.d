examples/architecture_comparison.ml: Flash Format List Simos Workload
