examples/wan_concurrency.ml: Flash Format List Simos Workload
