examples/wan_concurrency.mli:
