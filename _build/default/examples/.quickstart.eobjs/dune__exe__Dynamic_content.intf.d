examples/dynamic_content.mli:
