examples/architecture_comparison.mli:
