examples/dynamic_content.ml: Flash Format List Printf Simos Workload
