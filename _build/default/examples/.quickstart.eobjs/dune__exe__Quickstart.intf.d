examples/quickstart.mli:
