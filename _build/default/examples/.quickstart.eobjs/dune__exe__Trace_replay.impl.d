examples/trace_replay.ml: Flash Format Printf Sim Simos Workload
