examples/quickstart.ml: Filename Flash_live Format Fun String Sys Unix
