(* SPECweb96-like workload generator and trace temporal locality. *)

let test_structure () =
  let spec = Workload.Specweb.generate ~directories:3 ~seed:1 in
  let fileset = Workload.Specweb.fileset spec in
  (* 3 dirs x 4 classes x 9 files *)
  Alcotest.(check int) "file count" (3 * 4 * 9)
    (Workload.Fileset.file_count fileset);
  (* Every directory holds the same ~5 MB population. *)
  let per_dir = Workload.Specweb.dataset_bytes spec / 3 in
  if per_dir < 4_500_000 || per_dir > 5_500_000 then
    Alcotest.failf "per-directory bytes %d not ~5MB" per_dir

let test_class_of_size () =
  Alcotest.(check int) "tiny" 0 (Workload.Specweb.class_of_size 500);
  Alcotest.(check int) "small" 1 (Workload.Specweb.class_of_size 5_000);
  Alcotest.(check int) "medium" 2 (Workload.Specweb.class_of_size 50_000);
  Alcotest.(check int) "large" 3 (Workload.Specweb.class_of_size 500_000)

let test_class_mix () =
  let spec = Workload.Specweb.generate ~directories:5 ~seed:2 in
  let fileset = Workload.Specweb.fileset spec in
  let size_of = Hashtbl.create 256 in
  Array.iteri
    (fun i p -> Hashtbl.replace size_of p fileset.Workload.Fileset.sizes.(i))
    fileset.Workload.Fileset.paths;
  let rng = Sim.Rng.create ~seed:3 in
  let counts = Array.make 4 0 in
  let n = 20_000 in
  for _ = 1 to n do
    let path = Workload.Specweb.sample spec rng in
    let size =
      match Hashtbl.find_opt size_of path with
      | Some s -> s
      | None -> Alcotest.failf "sampled unknown path %s" path
    in
    let cls = Workload.Specweb.class_of_size size in
    counts.(cls) <- counts.(cls) + 1
  done;
  Array.iteri
    (fun cls expected ->
      let got = float_of_int counts.(cls) /. float_of_int n in
      if Float.abs (got -. expected) > 0.03 then
        Alcotest.failf "class %d fraction %.3f, expected %.3f" cls got expected)
    Workload.Specweb.class_mix

let test_sample_paths_exist () =
  let spec = Workload.Specweb.generate ~directories:2 ~seed:4 in
  let fileset = Workload.Specweb.fileset spec in
  let rng = Sim.Rng.create ~seed:5 in
  for _ = 1 to 500 do
    let p = Workload.Specweb.sample spec rng in
    if not (Array.exists (( = ) p) fileset.Workload.Fileset.paths) then
      Alcotest.failf "sampled path %s not in fileset" p
  done

let test_specweb_servable () =
  let spec = Workload.Specweb.generate ~directories:2 ~seed:6 in
  let rng = Sim.Rng.create ~seed:7 in
  let r =
    Workload.Driver.run ~clients:8 ~warmup:0.5 ~duration:1.
      ~profile:Simos.Os_profile.freebsd ~server:Flash.Config.flash
      ~fileset:(Workload.Specweb.fileset spec)
      ~next:(fun _ -> Workload.Specweb.sample spec rng)
      ()
  in
  Alcotest.(check int) "no errors" 0 r.Workload.Driver.errors;
  Alcotest.(check bool) "throughput" true (r.Workload.Driver.requests_per_s > 0.)

(* ---------------- temporal locality ---------------- *)

let repeat_fraction requests window =
  let n = Array.length requests in
  let hits = ref 0 in
  for i = 1 to n - 1 do
    let lo = max 0 (i - window) in
    let found = ref false in
    for j = lo to i - 1 do
      if requests.(j) = requests.(i) then found := true
    done;
    if !found then incr hits
  done;
  float_of_int !hits /. float_of_int (n - 1)

let test_locality_raises_repeats () =
  let fileset =
    Workload.Fileset.generate (Workload.Fileset.ece_like ~files:2000 ~seed:8)
  in
  let plain = Workload.Trace.generate fileset ~length:4000 ~alpha:0.6 ~seed:9 in
  let local =
    Workload.Trace.generate ~locality:(0.5, 16) fileset ~length:4000 ~alpha:0.6
      ~seed:9
  in
  let base = repeat_fraction plain.Workload.Trace.requests 16 in
  let boosted = repeat_fraction local.Workload.Trace.requests 16 in
  Alcotest.(check bool)
    (Printf.sprintf "locality raises short-window repeats (%.3f -> %.3f)" base
       boosted)
    true
    (boosted > base +. 0.2)

let test_locality_validation () =
  let fileset =
    Workload.Fileset.generate (Workload.Fileset.ece_like ~files:10 ~seed:8)
  in
  Alcotest.check_raises "bad p" (Invalid_argument "Trace.generate: locality p")
    (fun () ->
      ignore
        (Workload.Trace.generate ~locality:(1.5, 4) fileset ~length:10
           ~alpha:1.0 ~seed:1));
  Alcotest.check_raises "bad window"
    (Invalid_argument "Trace.generate: locality window") (fun () ->
      ignore
        (Workload.Trace.generate ~locality:(0.5, 0) fileset ~length:10
           ~alpha:1.0 ~seed:1))

let suite =
  [
    Alcotest.test_case "specweb structure" `Quick test_structure;
    Alcotest.test_case "class_of_size" `Quick test_class_of_size;
    Alcotest.test_case "class mix matches spec" `Slow test_class_mix;
    Alcotest.test_case "sampled paths exist" `Quick test_sample_paths_exist;
    Alcotest.test_case "specweb servable end-to-end" `Slow test_specweb_servable;
    Alcotest.test_case "temporal locality raises repeats" `Quick
      test_locality_raises_repeats;
    Alcotest.test_case "locality argument validation" `Quick
      test_locality_validation;
  ]
