test/test_disk.ml: Alcotest Helpers List Printf Sim Simos
