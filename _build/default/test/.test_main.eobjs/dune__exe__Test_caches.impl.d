test/test_caches.ml: Alcotest Array Flash Helpers Printf Simos
