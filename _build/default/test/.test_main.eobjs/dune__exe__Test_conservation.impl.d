test/test_conservation.ml: Alcotest Flash Helpers List Printf QCheck Sim Simos
