test/test_engine.ml: Alcotest Helpers List Sim
