test/test_proc.ml: Alcotest Helpers Int List Sim
