test/test_net.ml: Alcotest Float Helpers Sim Simos
