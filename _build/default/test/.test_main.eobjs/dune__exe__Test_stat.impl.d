test/test_stat.ml: Alcotest Float Helpers List Sim
