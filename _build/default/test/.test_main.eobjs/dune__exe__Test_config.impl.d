test/test_config.ml: Alcotest Flash Helpers List Simos
