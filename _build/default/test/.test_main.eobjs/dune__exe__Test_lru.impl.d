test/test_lru.ml: Alcotest Flash_util Helpers List QCheck
