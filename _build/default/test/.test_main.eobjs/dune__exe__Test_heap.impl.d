test/test_heap.ml: Alcotest Helpers Int List QCheck Sim
