test/helpers.ml: Alcotest Float QCheck QCheck_alcotest Sim String
