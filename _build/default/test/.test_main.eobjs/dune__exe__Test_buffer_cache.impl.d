test/test_buffer_cache.ml: Alcotest Helpers List QCheck Simos
