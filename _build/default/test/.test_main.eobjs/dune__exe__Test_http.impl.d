test/test_http.ml: Alcotest Gen Helpers Http List Printf QCheck String
