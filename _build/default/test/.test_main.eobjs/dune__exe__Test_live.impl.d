test/test_live.ml: Alcotest Array Buffer Bytes Filename Flash_live Fun List String Sys Thread Unix
