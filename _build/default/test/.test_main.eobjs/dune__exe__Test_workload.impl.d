test/test_workload.ml: Alcotest Array Filename Flash Hashtbl Helpers Printf QCheck Sim Simos Sys Workload
