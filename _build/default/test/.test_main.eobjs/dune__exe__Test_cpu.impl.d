test/test_cpu.ml: Alcotest Float Helpers List Printf Sim
