test/test_memory.ml: Alcotest Simos
