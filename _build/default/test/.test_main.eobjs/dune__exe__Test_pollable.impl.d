test/test_pollable.ml: Alcotest Helpers List Sim Simos
