test/test_kernel.ml: Alcotest Helpers Sim Simos String
