test/test_runtime.ml: Alcotest Flash Helpers Http Sim Simos String
