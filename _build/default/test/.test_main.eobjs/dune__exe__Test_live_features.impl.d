test/test_live_features.ml: Alcotest Array Filename Flash_live Fun Gen Helpers Http List QCheck String Sys Thread Unix
