test/test_helper_pool.ml: Alcotest Flash Int List Sim Simos
