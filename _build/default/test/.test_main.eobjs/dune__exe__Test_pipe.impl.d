test/test_pipe.ml: Alcotest Helpers List Sim Simos
