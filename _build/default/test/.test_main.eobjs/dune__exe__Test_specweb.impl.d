test/test_specweb.ml: Alcotest Array Flash Float Hashtbl Printf Sim Simos Workload
