test/test_robustness.ml: Alcotest Buffer Bytes Filename Flash Flash_live Fun Helpers List Sim Simos String Sys Unix
