test/test_extensions.ml: Alcotest Flash Float Helpers List Option Printf Sim Simos
