test/test_orderings.ml: Alcotest Flash Float Printf Simos Workload
