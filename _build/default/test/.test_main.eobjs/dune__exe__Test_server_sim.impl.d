test/test_server_sim.ml: Alcotest Flash List Printf Sim Simos
