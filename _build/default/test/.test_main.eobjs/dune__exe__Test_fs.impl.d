test/test_fs.ml: Alcotest Helpers Option Sim Simos
