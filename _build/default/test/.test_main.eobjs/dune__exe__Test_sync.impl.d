test/test_sync.ml: Alcotest Helpers List Printf Sim
