test/test_lru_model.ml: Flash_util Helpers List Printf QCheck String
