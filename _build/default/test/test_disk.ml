let params = Simos.Disk.default_params

let test_single_read_timing () =
  let elapsed =
    Helpers.run_sim (fun engine ->
        let disk = Simos.Disk.create engine params in
        Simos.Disk.read disk ~start_block:0 ~nblocks:1;
        Sim.Engine.now engine)
  in
  (* head starts at 0: no seek, just overhead + rotation + transfer *)
  let expected =
    params.Simos.Disk.per_request +. params.Simos.Disk.rotational
    +. (float_of_int params.Simos.Disk.block_size
       /. params.Simos.Disk.transfer_rate)
  in
  Helpers.check_float ~msg:"service time" ~eps:1e-9 expected elapsed

let test_seek_increases_time () =
  let time_for start_block =
    Helpers.run_sim (fun engine ->
        let disk = Simos.Disk.create engine params in
        Simos.Disk.read disk ~start_block ~nblocks:1;
        Sim.Engine.now engine)
  in
  Alcotest.(check bool) "far seek slower" true (time_for 500_000 > time_for 0)

let test_transfer_scales_with_size () =
  let time_for nblocks =
    Helpers.run_sim (fun engine ->
        let disk = Simos.Disk.create engine params in
        Simos.Disk.read disk ~start_block:0 ~nblocks;
        Sim.Engine.now engine)
  in
  let t1 = time_for 1 and t8 = time_for 8 in
  let delta = t8 -. t1 in
  let expected =
    float_of_int (7 * params.Simos.Disk.block_size)
    /. params.Simos.Disk.transfer_rate
  in
  Helpers.check_float ~msg:"transfer delta" ~eps:1e-9 expected delta

let test_clook_ordering () =
  (* Three concurrent requests issued far/near/mid while the disk is busy:
     they must be served in ascending block order (C-LOOK), not FIFO. *)
  let engine = Sim.Engine.create () in
  let disk = Simos.Disk.create engine params in
  let order = ref [] in
  ignore
    (Sim.Proc.spawn engine ~name:"opener" (fun () ->
         Simos.Disk.read disk ~start_block:10 ~nblocks:1));
  let reader tag block =
    ignore
      (Sim.Proc.spawn engine ~name:tag (fun () ->
           (* Give the opener time to start service. *)
           Sim.Proc.delay 0.0001;
           Simos.Disk.read disk ~start_block:block ~nblocks:1;
           order := tag :: !order))
  in
  reader "far" 900_000;
  reader "near" 50;
  reader "mid" 400_000;
  ignore (Sim.Engine.run engine);
  Alcotest.(check (list string)) "ascending block order" [ "near"; "mid"; "far" ]
    (List.rev !order)

let test_clook_wraps () =
  (* After serving high blocks, a request below the head is still served. *)
  Helpers.run_sim (fun engine ->
      let disk = Simos.Disk.create engine params in
      Simos.Disk.read disk ~start_block:900_000 ~nblocks:1;
      Simos.Disk.read disk ~start_block:10 ~nblocks:1;
      Alcotest.(check int) "both completed" 2 (Simos.Disk.completed disk))

let test_elevator_beats_fifo_seeks () =
  (* A queued batch served C-LOOK must accumulate less seek time than the
     same requests served one at a time in an adversarial order. *)
  let blocks = [ 100_000; 800_000; 200_000; 700_000; 300_000; 600_000 ] in
  let batched =
    let engine = Sim.Engine.create () in
    let disk = Simos.Disk.create engine params in
    List.iter
      (fun b ->
        ignore
          (Sim.Proc.spawn engine ~name:"r" (fun () ->
               Simos.Disk.read disk ~start_block:b ~nblocks:1)))
      blocks;
    ignore (Sim.Engine.run engine);
    Simos.Disk.seek_time disk
  in
  let serial =
    let engine = Sim.Engine.create () in
    let disk = Simos.Disk.create engine params in
    ignore
      (Sim.Proc.spawn engine ~name:"r" (fun () ->
           List.iter (fun b -> Simos.Disk.read disk ~start_block:b ~nblocks:1) blocks));
    ignore (Sim.Engine.run engine);
    Simos.Disk.seek_time disk
  in
  Alcotest.(check bool)
    (Printf.sprintf "batched %.4f < serial %.4f" batched serial)
    true (batched < serial)

let test_invalid_reads () =
  Helpers.run_sim (fun engine ->
      let disk = Simos.Disk.create engine params in
      (match Simos.Disk.read disk ~start_block:0 ~nblocks:0 with
      | () -> Alcotest.fail "nblocks 0 accepted"
      | exception Invalid_argument _ -> ());
      match Simos.Disk.read disk ~start_block:(params.Simos.Disk.total_blocks) ~nblocks:1 with
      | () -> Alcotest.fail "out of range accepted"
      | exception Invalid_argument _ -> ())

let test_busy_accounting () =
  Helpers.run_sim (fun engine ->
      let disk = Simos.Disk.create engine params in
      Simos.Disk.read disk ~start_block:0 ~nblocks:4;
      Helpers.check_float ~msg:"busy = elapsed" (Sim.Engine.now engine)
        (Simos.Disk.busy_time disk))

let suite =
  [
    Alcotest.test_case "single read timing" `Quick test_single_read_timing;
    Alcotest.test_case "seek increases time" `Quick test_seek_increases_time;
    Alcotest.test_case "transfer scales with size" `Quick
      test_transfer_scales_with_size;
    Alcotest.test_case "C-LOOK ordering" `Quick test_clook_ordering;
    Alcotest.test_case "C-LOOK wraps" `Quick test_clook_wraps;
    Alcotest.test_case "elevator beats serial seeks" `Quick
      test_elevator_beats_fifo_seeks;
    Alcotest.test_case "invalid reads rejected" `Quick test_invalid_reads;
    Alcotest.test_case "busy time accounting" `Quick test_busy_accounting;
  ]
