let profile = Simos.Os_profile.freebsd

let with_kernel f =
  Helpers.run_sim (fun engine ->
      let kernel = Simos.Kernel.create engine profile in
      f engine kernel)

let test_charge_costs_time () =
  with_kernel (fun engine kernel ->
      let t0 = Sim.Engine.now engine in
      Simos.Kernel.charge kernel 0.01;
      Helpers.check_float ~msg:"charged" 0.01 (Sim.Engine.now engine -. t0))

let test_accept_flow () =
  with_kernel (fun engine kernel ->
      let net = Simos.Kernel.net kernel in
      Alcotest.(check bool) "no conn" true (Simos.Kernel.accept kernel = None);
      let c = Simos.Net.connect net ~link_rate:1e7 ~rtt:0.001 in
      (match Simos.Kernel.accept kernel with
      | Some c' ->
          Alcotest.(check int) "accepted" (Simos.Net.conn_id c) (Simos.Net.conn_id c')
      | None -> Alcotest.fail "expected conn");
      ignore engine)

let test_recv_charges_per_byte () =
  with_kernel (fun engine kernel ->
      let net = Simos.Kernel.net kernel in
      let c = Simos.Net.connect net ~link_rate:1e7 ~rtt:0.001 in
      Simos.Net.client_send c (String.make 1000 'x');
      Sim.Proc.delay 0.001;
      let t0 = Sim.Engine.now engine in
      (match Simos.Kernel.recv kernel c ~max_bytes:2000 with
      | `Data d -> Alcotest.(check int) "got bytes" 1000 (String.length d)
      | _ -> Alcotest.fail "expected data");
      let cost = Sim.Engine.now engine -. t0 in
      let expected =
        profile.Simos.Os_profile.syscall
        +. (1000. *. profile.Simos.Os_profile.read_byte)
      in
      Helpers.check_float ~msg:"recv cost" ~eps:1e-9 expected cost)

let test_send_misalignment_penalty () =
  let cost_of misaligned_bytes =
    with_kernel (fun engine kernel ->
        let net = Simos.Kernel.net kernel in
        let c = Simos.Net.connect net ~link_rate:1e9 ~rtt:0.001 in
        let t0 = Sim.Engine.now engine in
        ignore (Simos.Kernel.send kernel c ~len:10_000 ~misaligned_bytes);
        Sim.Engine.now engine -. t0)
  in
  let aligned = cost_of 0 and misaligned = cost_of 10_000 in
  let expected_delta = 10_000. *. profile.Simos.Os_profile.misalign_byte in
  Helpers.check_float ~msg:"misalignment delta" ~eps:1e-9 expected_delta
    (misaligned -. aligned)

let test_send_blocking_completes () =
  with_kernel (fun engine kernel ->
      let net = Simos.Kernel.net kernel in
      let c = Simos.Net.connect net ~link_rate:1e7 ~rtt:0.001 in
      (* Much larger than the 64 KB send buffer: must block and drain. *)
      Simos.Kernel.send_blocking kernel c ~len:500_000 ~misaligned_bytes:0;
      ignore (Simos.Net.client_await_bytes c 0);
      ignore engine;
      Alcotest.(check bool) "delivery in progress or done" true
        (Simos.Net.delivered_bytes net > 0))

let test_select_blocks_until_ready () =
  with_kernel (fun engine kernel ->
      let p = Simos.Pipe.create () in
      Sim.Engine.schedule engine ~delay:2. (fun () -> Simos.Pipe.write p ());
      let t0 = Sim.Engine.now engine in
      let ready =
        Simos.Kernel.select kernel [ ("pipe", Simos.Pipe.pollable p) ]
      in
      Alcotest.(check (list string)) "pipe ready" [ "pipe" ] ready;
      Alcotest.(check bool) "waited" true (Sim.Engine.now engine -. t0 >= 2.))

let test_select_immediate_and_multi () =
  with_kernel (fun _ kernel ->
      let p1 = Simos.Pipe.create () in
      let p2 = Simos.Pipe.create () in
      Simos.Pipe.write p1 ();
      Simos.Pipe.write p2 ();
      let ready =
        Simos.Kernel.select kernel
          [ ("a", Simos.Pipe.pollable p1); ("b", Simos.Pipe.pollable p2) ]
      in
      Alcotest.(check (list string)) "both ready" [ "a"; "b" ] ready)

let test_open_stat () =
  with_kernel (fun _ kernel ->
      let fs = Simos.Kernel.fs kernel in
      ignore (Simos.Fs.add_file fs ~path:"/docs/a.html" ~size:4000);
      (match Simos.Kernel.open_stat kernel "/docs/a.html" with
      | Some f -> Alcotest.(check int) "size" 4000 f.Simos.Fs.size
      | None -> Alcotest.fail "expected file");
      Alcotest.(check bool) "missing" true
        (Simos.Kernel.open_stat kernel "/docs/missing.html" = None))

let test_page_in_blocks_caller () =
  with_kernel (fun engine kernel ->
      let fs = Simos.Kernel.fs kernel in
      let f = Simos.Fs.add_file fs ~path:"/blob.bin" ~size:65536 in
      let t0 = Sim.Engine.now engine in
      Simos.Kernel.page_in kernel f ~off:0 ~len:65536;
      Alcotest.(check bool) "took disk time" true (Sim.Engine.now engine > t0);
      (* Resident now: free. *)
      let t1 = Sim.Engine.now engine in
      Simos.Kernel.page_in kernel f ~off:0 ~len:65536;
      Helpers.check_float ~msg:"hot page-in free" 0. (Sim.Engine.now engine -. t1))

let test_mincore_reports_and_charges () =
  with_kernel (fun engine kernel ->
      let fs = Simos.Kernel.fs kernel in
      let f = Simos.Fs.add_file fs ~path:"/m.bin" ~size:16384 in
      let t0 = Sim.Engine.now engine in
      Alcotest.(check bool) "cold" false
        (Simos.Kernel.mincore kernel f ~off:0 ~len:16384);
      Alcotest.(check bool) "charged" true (Sim.Engine.now engine > t0);
      Simos.Fs.warm fs f;
      Alcotest.(check bool) "warm" true
        (Simos.Kernel.mincore kernel f ~off:0 ~len:16384))

let test_fork_charge_reserves () =
  with_kernel (fun _ kernel ->
      let memory = Simos.Kernel.memory kernel in
      let before = Simos.Memory.reserved memory in
      Simos.Kernel.fork_charge kernel ~footprint:100_000;
      Alcotest.(check int) "reserved" (before + 100_000)
        (Simos.Memory.reserved memory))

let suite =
  [
    Alcotest.test_case "charge costs time" `Quick test_charge_costs_time;
    Alcotest.test_case "accept flow" `Quick test_accept_flow;
    Alcotest.test_case "recv charges per byte" `Quick test_recv_charges_per_byte;
    Alcotest.test_case "misalignment penalty" `Quick test_send_misalignment_penalty;
    Alcotest.test_case "blocking send completes" `Quick test_send_blocking_completes;
    Alcotest.test_case "select blocks until ready" `Quick
      test_select_blocks_until_ready;
    Alcotest.test_case "select immediate multi" `Quick test_select_immediate_and_multi;
    Alcotest.test_case "open_stat" `Quick test_open_stat;
    Alcotest.test_case "page_in blocks caller" `Quick test_page_in_blocks_caller;
    Alcotest.test_case "mincore reports and charges" `Quick
      test_mincore_reports_and_charges;
    Alcotest.test_case "fork_charge reserves memory" `Quick test_fork_charge_reserves;
  ]
