(* Failure-injection and protocol-edge coverage: pipelined requests and
   clients that vanish mid-response, in both the simulated and live
   servers. *)

(* ---------------- simulated server ---------------- *)

let sim_setup config files =
  let engine = Sim.Engine.create ~seed:21 () in
  let kernel = Simos.Kernel.create engine Simos.Os_profile.freebsd in
  List.iter
    (fun (path, size) ->
      ignore (Simos.Fs.add_file (Simos.Kernel.fs kernel) ~path ~size))
    files;
  let server = Flash.Server.start kernel config in
  (engine, kernel, server)

let test_sim_pipelined_requests config () =
  (* Two keep-alive requests sent back-to-back in one burst: the server
     must answer both on the same connection. *)
  let engine, kernel, server =
    sim_setup config [ ("/p1.html", 2000); ("/p2.html", 3000) ]
  in
  let responses = ref 0 in
  ignore
    (Sim.Proc.spawn engine ~name:"pipeliner" (fun () ->
         let c =
           Simos.Net.connect (Simos.Kernel.net kernel) ~link_rate:12.5e6
             ~rtt:0.0003
         in
         Simos.Net.client_send c
           ("GET /p1.html HTTP/1.1\r\nHost: t\r\n\r\n"
          ^ "GET /p2.html HTTP/1.1\r\nHost: t\r\n\r\n");
         (match Simos.Net.client_await_response c with
         | `Ok -> incr responses
         | `Closed -> ());
         (match Simos.Net.client_await_response c with
         | `Ok -> incr responses
         | `Closed -> ());
         Simos.Net.client_close c));
  ignore (Sim.Engine.run ~until:5. engine);
  Alcotest.(check int) "both pipelined responses" 2 !responses;
  Alcotest.(check int) "server completed both" 2 (Flash.Server.completed server)

let test_sim_client_aborts_midstream config () =
  (* The client disappears while a large response is draining; the server
     must keep serving others. *)
  let engine, kernel, server =
    sim_setup config [ ("/big.bin", 400_000); ("/small.html", 1000) ]
  in
  let survivor_ok = ref false in
  ignore
    (Sim.Proc.spawn engine ~name:"aborter" (fun () ->
         let c =
           Simos.Net.connect (Simos.Kernel.net kernel) ~link_rate:1e6
             ~rtt:0.0003
         in
         Simos.Net.client_send c "GET /big.bin HTTP/1.0\r\n\r\n";
         (* Take a little data, then vanish. *)
         ignore (Simos.Net.client_await_bytes c 10_000);
         Simos.Net.client_close c));
  ignore
    (Sim.Proc.spawn engine ~name:"survivor" (fun () ->
         Sim.Proc.delay 0.5;
         let c =
           Simos.Net.connect (Simos.Kernel.net kernel) ~link_rate:12.5e6
             ~rtt:0.0003
         in
         Simos.Net.client_send c "GET /small.html HTTP/1.0\r\n\r\n";
         (match Simos.Net.client_await_response c with
         | `Ok -> survivor_ok := true
         | `Closed -> ());
         Simos.Net.client_close c));
  ignore (Sim.Engine.run ~until:10. engine);
  Alcotest.(check bool) "other clients unaffected" true !survivor_ok;
  ignore server

let test_sim_empty_connection () =
  (* Connect and immediately close without sending anything. *)
  let engine, kernel, server = sim_setup Flash.Config.flash [ ("/x", 100) ] in
  ignore
    (Sim.Proc.spawn engine ~name:"ghost" (fun () ->
         let c =
           Simos.Net.connect (Simos.Kernel.net kernel) ~link_rate:12.5e6
             ~rtt:0.0003
         in
         Sim.Proc.delay 0.01;
         Simos.Net.client_close c));
  ignore (Sim.Engine.run ~until:2. engine);
  Alcotest.(check int) "nothing served, nothing broken" 0
    (Flash.Server.completed server)

let test_sim_slow_loris_partial_request () =
  (* A request head trickling in tiny fragments must still parse. *)
  let engine, kernel, server = sim_setup Flash.Config.flash [ ("/s.html", 500) ] in
  let ok = ref false in
  ignore
    (Sim.Proc.spawn engine ~name:"trickler" (fun () ->
         let c =
           Simos.Net.connect (Simos.Kernel.net kernel) ~link_rate:12.5e6
             ~rtt:0.0003
         in
         let request = "GET /s.html HTTP/1.0\r\nHost: t\r\n\r\n" in
         String.iter
           (fun ch ->
             Simos.Net.client_send c (String.make 1 ch);
             Sim.Proc.delay 0.002)
           request;
         (match Simos.Net.client_await_response c with
         | `Ok -> ok := true
         | `Closed -> ());
         Simos.Net.client_close c));
  ignore (Sim.Engine.run ~until:5. engine);
  Alcotest.(check bool) "trickled request served" true !ok;
  Alcotest.(check int) "no errors" 0 (Flash.Server.errors server)

(* ---------------- live server ---------------- *)

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let with_live_server f =
  let dir = Filename.temp_file "flash_rob" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  write_file (Filename.concat dir "a.html") "alpha";
  write_file (Filename.concat dir "b.html") "bravo";
  write_file (Filename.concat dir "big.bin") (String.make 500_000 'Z');
  let server =
    Flash_live.Server.start_background (Flash_live.Server.default_config ~docroot:dir)
  in
  Fun.protect
    ~finally:(fun () -> Flash_live.Server.stop server)
    (fun () -> f server (Flash_live.Server.port server))

let test_live_pipelined () =
  with_live_server (fun _ port ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let burst =
        "GET /a.html HTTP/1.1\r\nHost: t\r\n\r\n"
        ^ "GET /b.html HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
      in
      ignore (Unix.write_substring fd burst 0 (String.length burst));
      let buf = Bytes.create 65536 in
      let acc = Buffer.create 256 in
      let rec drain () =
        match Unix.read fd buf 0 65536 with
        | 0 -> ()
        | n ->
            Buffer.add_subbytes acc buf 0 n;
            drain ()
        | exception Unix.Unix_error _ -> ()
      in
      drain ();
      Unix.close fd;
      let raw = Buffer.contents acc in
      Alcotest.(check bool) "first body present" true
        (Helpers.contains ~affix:"alpha" raw);
      Alcotest.(check bool) "second body present" true
        (Helpers.contains ~affix:"bravo" raw))

let test_live_abort_midstream () =
  with_live_server (fun server port ->
      (* Start a large transfer and slam the socket shut. *)
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let req = "GET /big.bin HTTP/1.0\r\n\r\n" in
      ignore (Unix.write_substring fd req 0 (String.length req));
      let buf = Bytes.create 4096 in
      ignore (Unix.read fd buf 0 4096);
      Unix.close fd;
      (* The server must still answer new clients. *)
      let r = Flash_live.Client.get ~host:"127.0.0.1" ~port "/a.html" in
      Alcotest.(check int) "still serving" 200 r.Flash_live.Client.status;
      Alcotest.(check string) "body intact" "alpha" r.Flash_live.Client.body;
      ignore server)

let test_live_garbage_then_valid () =
  with_live_server (fun _ port ->
      (* A connection sending garbage gets a 400 and is closed... *)
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let junk = "\x00\x01\x02 garbage\r\n\r\n" in
      ignore (Unix.write_substring fd junk 0 (String.length junk));
      let buf = Bytes.create 4096 in
      let n = Unix.read fd buf 0 4096 in
      Alcotest.(check bool) "400 answered" true
        (n > 0 && Helpers.contains ~affix:"400" (Bytes.sub_string buf 0 n));
      Unix.close fd;
      (* ...and a fresh valid client is unaffected. *)
      let r = Flash_live.Client.get ~host:"127.0.0.1" ~port "/b.html" in
      Alcotest.(check int) "valid client fine" 200 r.Flash_live.Client.status)

let suite =
  [
    Alcotest.test_case "sim: pipelined requests (AMPED)" `Quick
      (test_sim_pipelined_requests Flash.Config.flash);
    Alcotest.test_case "sim: pipelined requests (MP)" `Quick
      (test_sim_pipelined_requests Flash.Config.flash_mp);
    Alcotest.test_case "sim: client aborts midstream (AMPED)" `Quick
      (test_sim_client_aborts_midstream Flash.Config.flash);
    Alcotest.test_case "sim: client aborts midstream (SPED)" `Quick
      (test_sim_client_aborts_midstream Flash.Config.flash_sped);
    Alcotest.test_case "sim: empty connection" `Quick test_sim_empty_connection;
    Alcotest.test_case "sim: trickled request head" `Quick
      test_sim_slow_loris_partial_request;
    Alcotest.test_case "live: pipelined requests" `Quick test_live_pipelined;
    Alcotest.test_case "live: abort midstream" `Quick test_live_abort_midstream;
    Alcotest.test_case "live: garbage then valid client" `Quick
      test_live_garbage_then_valid;
  ]
