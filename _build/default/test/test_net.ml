let make_net engine =
  Simos.Net.create engine ~nic_bandwidth:10_000_000. ~sndbuf:65536
    ~drain_chunk:8192

let lan = 12_500_000.
let rtt = 0.001

let test_connect_accept () =
  Helpers.run_sim (fun engine ->
      let net = make_net engine in
      Alcotest.(check bool) "listener idle" false
        (Simos.Pollable.is_ready (Simos.Net.listener_pollable net));
      let c = Simos.Net.connect net ~link_rate:lan ~rtt in
      (* connect blocks a full RTT; the SYN landed at rtt/2. *)
      Alcotest.(check bool) "listener ready" true
        (Simos.Pollable.is_ready (Simos.Net.listener_pollable net));
      (match Simos.Net.accept net with
      | Some c' ->
          Alcotest.(check int) "same conn" (Simos.Net.conn_id c) (Simos.Net.conn_id c')
      | None -> Alcotest.fail "accept failed");
      Alcotest.(check bool) "queue drained" false
        (Simos.Pollable.is_ready (Simos.Net.listener_pollable net));
      Alcotest.(check bool) "accept empty" true (Simos.Net.accept net = None))

let test_request_arrives_after_accept () =
  (* The client's first bytes trail the accept by about one RTT: a freshly
     accepted socket is not readable (what blocks MP workers on read). *)
  Helpers.run_sim (fun engine ->
      let net = make_net engine in
      let c = Simos.Net.connect net ~link_rate:lan ~rtt in
      Simos.Net.client_send c "GET / HTTP/1.0\r\n\r\n";
      Alcotest.(check bool) "not yet readable" false
        (Simos.Pollable.is_ready (Simos.Net.readable c));
      Sim.Proc.delay rtt;
      Alcotest.(check bool) "readable after rtt" true
        (Simos.Pollable.is_ready (Simos.Net.readable c));
      match Simos.Net.server_recv c ~max_bytes:4096 with
      | `Data d -> Alcotest.(check string) "data" "GET / HTTP/1.0\r\n\r\n" d
      | `Eof | `Would_block -> Alcotest.fail "expected data")

let test_recv_partial () =
  Helpers.run_sim (fun engine ->
      let net = make_net engine in
      let c = Simos.Net.connect net ~link_rate:lan ~rtt in
      Simos.Net.client_send c "abcdef";
      Sim.Proc.delay rtt;
      (match Simos.Net.server_recv c ~max_bytes:4 with
      | `Data d -> Alcotest.(check string) "first part" "abcd" d
      | _ -> Alcotest.fail "expected data");
      match Simos.Net.server_recv c ~max_bytes:4 with
      | `Data d -> Alcotest.(check string) "second part" "ef" d
      | _ -> Alcotest.fail "expected data")

let test_recv_would_block_and_eof () =
  Helpers.run_sim (fun engine ->
      let net = make_net engine in
      let c = Simos.Net.connect net ~link_rate:lan ~rtt in
      (match Simos.Net.server_recv c ~max_bytes:10 with
      | `Would_block -> ()
      | _ -> Alcotest.fail "expected would-block");
      Simos.Net.client_close c;
      match Simos.Net.server_recv c ~max_bytes:10 with
      | `Eof -> ()
      | _ -> Alcotest.fail "expected EOF")

let test_send_buffer_fills () =
  Helpers.run_sim (fun engine ->
      let net = make_net engine in
      let c = Simos.Net.connect net ~link_rate:lan ~rtt in
      Alcotest.(check bool) "initially writable" true
        (Simos.Pollable.is_ready (Simos.Net.writable c));
      let accepted = Simos.Net.server_send c ~len:100_000 in
      Alcotest.(check int) "bounded by sndbuf" 65536 accepted;
      Alcotest.(check bool) "not writable when full" false
        (Simos.Pollable.is_ready (Simos.Net.writable c));
      (* Drain restores writability. *)
      Sim.Proc.delay 0.05;
      Alcotest.(check bool) "writable after drain" true
        (Simos.Pollable.is_ready (Simos.Net.writable c)))

let test_drain_rate_link_limited () =
  Helpers.run_sim (fun engine ->
      let net = make_net engine in
      let slow = 10_000. (* 10 KB/s *) in
      let c = Simos.Net.connect net ~link_rate:slow ~rtt in
      let t0 = Sim.Engine.now engine in
      ignore (Simos.Net.server_send c ~len:10_000);
      ignore (Simos.Net.client_await_bytes c 10_000);
      let elapsed = Sim.Engine.now engine -. t0 in
      (* 10 KB at 10 KB/s = about 1 s *)
      if elapsed < 0.9 || elapsed > 1.2 then
        Alcotest.failf "drain took %.3f s, expected ~1 s" elapsed)

let test_nic_shared_fairly () =
  (* Two fast-link connections share the 10 MB/s NIC: each gets ~5 MB/s. *)
  let engine = Sim.Engine.create () in
  let net = make_net engine in
  let finish = ref [] in
  for i = 1 to 2 do
    ignore
      (Sim.Proc.spawn engine ~name:(string_of_int i) (fun () ->
           let c = Simos.Net.connect net ~link_rate:1e9 ~rtt in
           ignore (Simos.Net.server_send c ~len:50_000);
           ignore (Simos.Net.client_await_bytes c 50_000);
           finish := Sim.Engine.now engine :: !finish))
  done;
  ignore (Sim.Engine.run engine);
  match !finish with
  | [ a; b ] ->
      let longest = Float.max a b in
      (* 100 KB total at 10 MB/s = 10 ms + handshake *)
      if longest < 0.009 || longest > 0.02 then
        Alcotest.failf "shared drain finished at %.4f" longest
  | _ -> Alcotest.fail "expected two finishes"

let test_close_and_await () =
  Helpers.run_sim (fun engine ->
      let net = make_net engine in
      let c = Simos.Net.connect net ~link_rate:lan ~rtt in
      ignore (Simos.Net.server_send c ~len:1000);
      Simos.Net.server_close c;
      Alcotest.(check bool) "closed" true (Simos.Net.server_closed c);
      Simos.Net.client_await_close c;
      Alcotest.(check int) "all delivered" 1000 (Simos.Net.delivered_bytes net))

let test_send_after_close_rejected () =
  Helpers.run_sim (fun engine ->
      let net = make_net engine in
      let c = Simos.Net.connect net ~link_rate:lan ~rtt in
      Simos.Net.server_close c;
      match Simos.Net.server_send c ~len:10 with
      | _ -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument _ -> ())

let test_await_response_framing () =
  let engine = Sim.Engine.create () in
  let net = make_net engine in
  let got = ref None in
  ignore
    (Sim.Proc.spawn engine ~name:"client" (fun () ->
         let c = Simos.Net.connect net ~link_rate:lan ~rtt in
         ignore
           (Sim.Proc.spawn engine ~name:"server" (fun () ->
                Sim.Proc.delay 0.01;
                ignore (Simos.Net.server_send c ~len:500);
                Simos.Net.mark_response_done c));
         got := Some (Simos.Net.client_await_response c)));
  ignore (Sim.Engine.run engine);
  Alcotest.(check bool) "response observed" true (!got = Some `Ok)

let test_await_response_closed () =
  let engine = Sim.Engine.create () in
  let net = make_net engine in
  let got = ref None in
  ignore
    (Sim.Proc.spawn engine ~name:"client" (fun () ->
         let c = Simos.Net.connect net ~link_rate:lan ~rtt in
         ignore
           (Sim.Proc.spawn engine ~name:"server" (fun () ->
                Sim.Proc.delay 0.01;
                Simos.Net.server_close c));
         got := Some (Simos.Net.client_await_response c)));
  ignore (Sim.Engine.run engine);
  Alcotest.(check bool) "close observed" true (!got = Some `Closed)

let test_delivered_accounting () =
  Helpers.run_sim (fun engine ->
      let net = make_net engine in
      let c = Simos.Net.connect net ~link_rate:lan ~rtt in
      ignore (Simos.Net.server_send c ~len:12_345);
      ignore (Simos.Net.client_await_bytes c 12_345);
      Alcotest.(check int) "delivered" 12_345 (Simos.Net.delivered_bytes net);
      Alcotest.(check int) "created" 1 (Simos.Net.connections_created net))

let suite =
  [
    Alcotest.test_case "connect/accept" `Quick test_connect_accept;
    Alcotest.test_case "request trails accept by RTT" `Quick
      test_request_arrives_after_accept;
    Alcotest.test_case "partial recv" `Quick test_recv_partial;
    Alcotest.test_case "would-block and EOF" `Quick test_recv_would_block_and_eof;
    Alcotest.test_case "send buffer fills" `Quick test_send_buffer_fills;
    Alcotest.test_case "drain at link rate" `Quick test_drain_rate_link_limited;
    Alcotest.test_case "NIC shared fairly" `Quick test_nic_shared_fairly;
    Alcotest.test_case "close and await" `Quick test_close_and_await;
    Alcotest.test_case "send after close rejected" `Quick
      test_send_after_close_rejected;
    Alcotest.test_case "response framing" `Quick test_await_response_framing;
    Alcotest.test_case "close without response" `Quick test_await_response_closed;
    Alcotest.test_case "delivered accounting" `Quick test_delivered_accounting;
  ]
