(* Shared test utilities. *)

(* Run [f] inside a simulated process and drain the engine; fail the test
   if the process never finished (deadlock). *)
let run_sim ?seed f =
  let engine = Sim.Engine.create ?seed () in
  let result = ref None in
  ignore (Sim.Proc.spawn engine ~name:"test-main" (fun () -> result := Some (f engine)));
  ignore (Sim.Engine.run engine);
  match !result with
  | Some r -> r
  | None -> Alcotest.fail "simulated process did not run to completion"

(* Same, but with a time bound (for tests over never-terminating servers). *)
let run_sim_until ?seed ~until f =
  let engine = Sim.Engine.create ?seed () in
  let result = ref None in
  ignore (Sim.Proc.spawn engine ~name:"test-main" (fun () -> result := Some (f engine)));
  ignore (Sim.Engine.run ~until engine);
  !result

let qcheck_case ?(count = 200) ~name arbitrary prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arbitrary prop)

let float_eq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let check_float ~msg ?(eps = 1e-9) expected actual =
  if not (float_eq ~eps expected actual) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* Substring search, to avoid depending on astring in tests. *)
let contains ~affix s =
  let n = String.length s and m = String.length affix in
  let rec scan i = i + m <= n && (String.sub s i m = affix || scan (i + 1)) in
  m = 0 || scan 0
