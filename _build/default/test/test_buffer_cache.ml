let page_size = 8192

let make_cache ~pages =
  let memory =
    Simos.Memory.create ~total_bytes:(pages * page_size)
      ~min_cache_bytes:page_size
  in
  (memory, Simos.Buffer_cache.create ~memory ~page_size)

let fp inode page = Simos.Buffer_cache.File_page { inode; page }

let test_miss_then_hit () =
  let _, c = make_cache ~pages:4 in
  Alcotest.(check bool) "not resident" false (Simos.Buffer_cache.resident c (fp 1 0));
  (match Simos.Buffer_cache.touch c (fp 1 0) with
  | `Miss -> ()
  | `Hit -> Alcotest.fail "expected miss");
  (match Simos.Buffer_cache.touch c (fp 1 0) with
  | `Hit -> ()
  | `Miss -> Alcotest.fail "expected hit");
  Alcotest.(check bool) "resident" true (Simos.Buffer_cache.resident c (fp 1 0));
  Alcotest.(check int) "hits" 1 (Simos.Buffer_cache.hits c);
  Alcotest.(check int) "misses" 1 (Simos.Buffer_cache.misses c)

let test_capacity_bound () =
  let _, c = make_cache ~pages:4 in
  for i = 0 to 9 do
    ignore (Simos.Buffer_cache.touch c (fp 1 i))
  done;
  Alcotest.(check int) "bounded" 4 (Simos.Buffer_cache.pages c);
  Alcotest.(check int) "evictions" 6 (Simos.Buffer_cache.evictions c)

let test_clock_second_chance () =
  (* With every reference bit set, clock degenerates to FIFO: filling the
     cache and inserting once evicts the oldest page and clears the rest.
     A page re-referenced after that sweep must then outlive a page the
     sweep left clear. *)
  let _, c = make_cache ~pages:3 in
  ignore (Simos.Buffer_cache.touch c (fp 1 0));
  ignore (Simos.Buffer_cache.touch c (fp 1 1));
  ignore (Simos.Buffer_cache.touch c (fp 1 2));
  ignore (Simos.Buffer_cache.touch c (fp 1 3));
  Alcotest.(check bool) "oldest evicted" false
    (Simos.Buffer_cache.resident c (fp 1 0));
  (* Cache now holds 1 (clear), 2 (clear), 3 (referenced). *)
  ignore (Simos.Buffer_cache.touch c (fp 1 1));
  ignore (Simos.Buffer_cache.touch c (fp 1 4));
  Alcotest.(check bool) "re-referenced page survives" true
    (Simos.Buffer_cache.resident c (fp 1 1));
  Alcotest.(check bool) "unreferenced page evicted" false
    (Simos.Buffer_cache.resident c (fp 1 2));
  Alcotest.(check bool) "new page resident" true
    (Simos.Buffer_cache.resident c (fp 1 4))

let test_meta_and_file_keys_distinct () =
  let _, c = make_cache ~pages:8 in
  ignore (Simos.Buffer_cache.touch c (fp 1 0));
  ignore (Simos.Buffer_cache.touch c (Simos.Buffer_cache.Meta_page { dir = 1 }));
  Alcotest.(check int) "two pages" 2 (Simos.Buffer_cache.pages c)

let test_drop () =
  let _, c = make_cache ~pages:4 in
  ignore (Simos.Buffer_cache.touch c (fp 1 0));
  Simos.Buffer_cache.drop c (fp 1 0);
  Alcotest.(check bool) "dropped" false (Simos.Buffer_cache.resident c (fp 1 0));
  Alcotest.(check int) "count" 0 (Simos.Buffer_cache.pages c);
  (* dropping a missing key is a no-op *)
  Simos.Buffer_cache.drop c (fp 9 9)

let test_shrink_rebalance () =
  let memory, c = make_cache ~pages:8 in
  for i = 0 to 7 do
    ignore (Simos.Buffer_cache.touch c (fp 1 i))
  done;
  Alcotest.(check int) "full" 8 (Simos.Buffer_cache.pages c);
  (* Reserve half the machine: the cache must give pages back. *)
  Simos.Memory.reserve memory (4 * page_size);
  Simos.Buffer_cache.rebalance c;
  Alcotest.(check int) "shrunk" 4 (Simos.Buffer_cache.pages c)

let test_clear () =
  let _, c = make_cache ~pages:4 in
  ignore (Simos.Buffer_cache.touch c (fp 1 0));
  Simos.Buffer_cache.clear c;
  Alcotest.(check int) "empty" 0 (Simos.Buffer_cache.pages c);
  (* Insertion works again after clear. *)
  ignore (Simos.Buffer_cache.touch c (fp 1 1));
  Alcotest.(check int) "one page" 1 (Simos.Buffer_cache.pages c)

let prop_never_exceeds_capacity =
  Helpers.qcheck_case ~name:"clock cache never exceeds capacity"
    QCheck.(pair (int_range 1 16) (list (pair (int_range 0 3) (int_range 0 40))))
    (fun (pages, touches) ->
      let _, c = make_cache ~pages in
      List.iter (fun (inode, page) -> ignore (Simos.Buffer_cache.touch c (fp inode page))) touches;
      Simos.Buffer_cache.pages c <= pages)

let prop_resident_after_touch =
  Helpers.qcheck_case ~name:"touched key is resident immediately after"
    QCheck.(list (pair (int_range 0 3) (int_range 0 40)))
    (fun touches ->
      let _, c = make_cache ~pages:8 in
      List.for_all
        (fun (inode, page) ->
          ignore (Simos.Buffer_cache.touch c (fp inode page));
          Simos.Buffer_cache.resident c (fp inode page))
        touches)

let suite =
  [
    Alcotest.test_case "miss then hit" `Quick test_miss_then_hit;
    Alcotest.test_case "capacity bound" `Quick test_capacity_bound;
    Alcotest.test_case "clock second chance" `Quick test_clock_second_chance;
    Alcotest.test_case "meta/file keys distinct" `Quick
      test_meta_and_file_keys_distinct;
    Alcotest.test_case "drop" `Quick test_drop;
    Alcotest.test_case "shrink on memory pressure" `Quick test_shrink_rebalance;
    Alcotest.test_case "clear" `Quick test_clear;
    prop_never_exceeds_capacity;
    prop_resident_after_touch;
  ]
