(* Cross-module conservation invariants: bytes and events must balance
   through the network and disk models. *)

let test_net_bytes_conserved () =
  (* Everything accepted by server_send is eventually delivered once the
     buffers drain. *)
  let engine = Sim.Engine.create ~seed:2 () in
  let net =
    Simos.Net.create engine ~nic_bandwidth:5e6 ~sndbuf:65536 ~drain_chunk:8192
  in
  let accepted_total = ref 0 in
  for i = 1 to 10 do
    ignore
      (Sim.Proc.spawn engine ~name:(Printf.sprintf "pair%d" i) (fun () ->
           let c = Simos.Net.connect net ~link_rate:1e6 ~rtt:0.001 in
           (* Server side, driven from the same proc for simplicity. *)
           let to_send = 10_000 * i in
           let rec push remaining =
             if remaining > 0 then begin
               let sent = Simos.Net.server_send c ~len:remaining in
               if sent = 0 then Simos.Pollable.wait_ready (Simos.Net.writable c);
               accepted_total := !accepted_total + sent;
               push (remaining - sent)
             end
           in
           push to_send;
           Simos.Net.server_close c;
           Simos.Net.client_await_close c))
  done;
  ignore (Sim.Engine.run engine);
  Alcotest.(check int) "delivered = accepted" !accepted_total
    (Simos.Net.delivered_bytes net);
  Alcotest.(check int) "expected total" 550_000 (Simos.Net.delivered_bytes net);
  Alcotest.(check int) "no drains left" 0 (Simos.Net.active_drains net)

let test_server_bytes_match_responses () =
  (* Over a full request/response exchange, delivered bytes must equal
     header + body for each completed response. *)
  let engine = Sim.Engine.create ~seed:3 () in
  let kernel = Simos.Kernel.create engine Simos.Os_profile.freebsd in
  let sizes = [ 1_000; 25_000; 100_000 ] in
  List.iteri
    (fun i size ->
      ignore
        (Simos.Fs.add_file (Simos.Kernel.fs kernel)
           ~path:(Printf.sprintf "/c%d.bin" i)
           ~size))
    sizes;
  let server = Flash.Server.start kernel Flash.Config.flash in
  let net = Simos.Kernel.net kernel in
  ignore
    (Sim.Proc.spawn engine ~name:"client" (fun () ->
         List.iteri
           (fun i _ ->
             let c = Simos.Net.connect net ~link_rate:12.5e6 ~rtt:0.0003 in
             Simos.Net.client_send c
               (Printf.sprintf "GET /c%d.bin HTTP/1.0\r\n\r\n" i);
             (match Simos.Net.client_await_response c with _ -> ());
             Simos.Net.client_close c)
           sizes));
  ignore (Sim.Engine.run ~until:30. engine);
  Alcotest.(check int) "all served" 3 (Flash.Server.completed server);
  let delivered = Simos.Net.delivered_bytes net in
  let body_total = List.fold_left ( + ) 0 sizes in
  (* Headers are aligned to 32 bytes and bounded; three headers amount to
     between 96 and 1536 bytes. *)
  let header_total = delivered - body_total in
  Alcotest.(check bool)
    (Printf.sprintf "plausible header bytes (%d)" header_total)
    true
    (header_total >= 96 && header_total <= 1536 && header_total mod 32 = 0)

let test_disk_reads_bound_misses () =
  (* Every buffer-cache data miss is backed by at least one disk block;
     clustering means reads <= misses. *)
  let engine = Sim.Engine.create ~seed:4 () in
  let kernel = Simos.Kernel.create engine Simos.Os_profile.freebsd in
  let fs = Simos.Kernel.fs kernel in
  let files =
    List.init 10 (fun i ->
        Simos.Fs.add_file fs ~path:(Printf.sprintf "/d%d.bin" i) ~size:80_000)
  in
  ignore
    (Sim.Proc.spawn engine ~name:"reader" (fun () ->
         List.iter
           (fun f -> Simos.Fs.page_in fs f ~off:0 ~len:f.Simos.Fs.size)
           files));
  ignore (Sim.Engine.run engine);
  let cache = Simos.Kernel.cache kernel in
  let disk = Simos.Kernel.disk kernel in
  Alcotest.(check bool) "reads <= misses (clustering)" true
    (Simos.Disk.completed disk <= Simos.Buffer_cache.misses cache);
  Alcotest.(check bool) "at least one read per file" true
    (Simos.Disk.completed disk >= 10);
  (* All pages now resident: re-reading costs no disk ops. *)
  let before = Simos.Disk.completed disk in
  ignore
    (Sim.Proc.spawn engine ~name:"rereader" (fun () ->
         List.iter
           (fun f -> Simos.Fs.page_in fs f ~off:0 ~len:f.Simos.Fs.size)
           files));
  ignore (Sim.Engine.run engine);
  Alcotest.(check int) "no disk on hot re-read" before (Simos.Disk.completed disk)

let test_completed_equals_client_oks () =
  (* The server's completion counter and the clients' `Ok observations
     must agree exactly. *)
  let engine = Sim.Engine.create ~seed:5 () in
  let kernel = Simos.Kernel.create engine Simos.Os_profile.freebsd in
  ignore (Simos.Fs.add_file (Simos.Kernel.fs kernel) ~path:"/x.html" ~size:3000);
  let server = Flash.Server.start kernel Flash.Config.flash_mp in
  let net = Simos.Kernel.net kernel in
  let oks = ref 0 in
  for i = 1 to 12 do
    ignore
      (Sim.Proc.spawn engine ~name:(Printf.sprintf "c%d" i) (fun () ->
           for _ = 1 to 5 do
             let c = Simos.Net.connect net ~link_rate:12.5e6 ~rtt:0.0003 in
             Simos.Net.client_send c "GET /x.html HTTP/1.0\r\n\r\n";
             (match Simos.Net.client_await_response c with
             | `Ok -> incr oks
             | `Closed -> ());
             Simos.Net.client_close c
           done));
  done;
  ignore (Sim.Engine.run ~until:30. engine);
  Alcotest.(check int) "client oks" 60 !oks;
  Alcotest.(check int) "server completions" 60 (Flash.Server.completed server)

let prop_net_conservation =
  Helpers.qcheck_case ~count:50 ~name:"random send patterns conserve bytes"
    QCheck.(list_of_size (QCheck.Gen.int_range 1 8) (int_range 1 50_000))
    (fun payloads ->
      let engine = Sim.Engine.create ~seed:6 () in
      let net =
        Simos.Net.create engine ~nic_bandwidth:5e6 ~sndbuf:65536
          ~drain_chunk:8192
      in
      let accepted = ref 0 in
      List.iteri
        (fun i len ->
          ignore
            (Sim.Proc.spawn engine ~name:(Printf.sprintf "p%d" i) (fun () ->
                 let c = Simos.Net.connect net ~link_rate:2e6 ~rtt:0.0005 in
                 let rec push remaining =
                   if remaining > 0 then begin
                     let sent = Simos.Net.server_send c ~len:remaining in
                     if sent = 0 then
                       Simos.Pollable.wait_ready (Simos.Net.writable c);
                     accepted := !accepted + sent;
                     push (remaining - sent)
                   end
                 in
                 push len;
                 Simos.Net.server_close c;
                 Simos.Net.client_await_close c)))
        payloads;
      ignore (Sim.Engine.run engine);
      Simos.Net.delivered_bytes net = !accepted
      && !accepted = List.fold_left ( + ) 0 payloads)

let suite =
  [
    Alcotest.test_case "net bytes conserved" `Quick test_net_bytes_conserved;
    Alcotest.test_case "server bytes = headers + bodies" `Quick
      test_server_bytes_match_responses;
    Alcotest.test_case "disk reads bound misses" `Quick test_disk_reads_bound_misses;
    Alcotest.test_case "completions = client oks" `Quick
      test_completed_equals_client_oks;
    prop_net_conservation;
  ]
