(* Runtime helpers: path resolution, response construction, misalignment
   budgets and CPU charging. *)

let make_rt ?(config = Flash.Config.flash) () =
  Helpers.run_sim (fun engine ->
      let kernel = Simos.Kernel.create engine Simos.Os_profile.freebsd in
      (engine, kernel, Flash.Runtime.create kernel config))

let req ?(meth = Http.Request.Get) path =
  {
    Http.Request.meth;
    raw_target = path;
    path;
    query = None;
    version = (1, 0);
    headers = [];
  }

let test_resolve_path () =
  let _, _, rt = make_rt () in
  let resolve p = Flash.Runtime.resolve_path rt (req p) in
  Alcotest.(check (option string)) "plain" (Some "/a/b.html")
    (resolve "/a/b.html");
  Alcotest.(check (option string)) "root index" (Some "/index.html") (resolve "/");
  Alcotest.(check (option string)) "dir index" (Some "/docs/index.html")
    (resolve "/docs/");
  Alcotest.(check (option string)) "dot-dot collapse" (Some "/b") (resolve "/a/../b");
  Alcotest.(check (option string)) "escape rejected" None (resolve "/../etc/passwd")

let test_is_cgi_path () =
  Alcotest.(check bool) "cgi" true (Flash.Runtime.is_cgi_path "/cgi-bin/x");
  Alcotest.(check bool) "static" false (Flash.Runtime.is_cgi_path "/a/cgi-bin");
  Alcotest.(check bool) "short" false (Flash.Runtime.is_cgi_path "/cgi")

let test_charge_request_costs_time () =
  Helpers.run_sim (fun engine ->
      let kernel = Simos.Kernel.create engine Simos.Os_profile.freebsd in
      let rt = Flash.Runtime.create kernel Flash.Config.flash in
      let t0 = Sim.Engine.now engine in
      Flash.Runtime.charge_request rt ~bytes:100;
      let p = Simos.Os_profile.freebsd in
      Helpers.check_float ~msg:"base + parse" ~eps:1e-9
        (p.Simos.Os_profile.request_base
        +. (100. *. p.Simos.Os_profile.parse_byte))
        (Sim.Engine.now engine -. t0))

let test_apache_handicap_charged () =
  Helpers.run_sim (fun engine ->
      let kernel = Simos.Kernel.create engine Simos.Os_profile.freebsd in
      let rt = Flash.Runtime.create kernel Flash.Config.apache in
      let t0 = Sim.Engine.now engine in
      Flash.Runtime.charge_request rt ~bytes:0;
      let p = Simos.Os_profile.freebsd in
      Helpers.check_float ~msg:"base + handicap" ~eps:1e-9
        (p.Simos.Os_profile.request_base
        +. Flash.Config.apache.Flash.Config.extra_request_cpu)
        (Sim.Engine.now engine -. t0))

let test_ok_response_shape () =
  Helpers.run_sim (fun engine ->
      let kernel = Simos.Kernel.create engine Simos.Os_profile.freebsd in
      let rt = Flash.Runtime.create kernel Flash.Config.flash in
      let file =
        Simos.Fs.add_file (Simos.Kernel.fs kernel) ~path:"/p.html" ~size:4321
      in
      let resp =
        Flash.Runtime.ok_response rt rt.Flash.Runtime.shared_caches
          (req "/p.html") file ~keep:true
      in
      Alcotest.(check bool) "200" true (resp.Flash.Runtime.status = Http.Status.Ok);
      Alcotest.(check int) "body length" 4321 resp.Flash.Runtime.body_len;
      Alcotest.(check bool) "keep" true resp.Flash.Runtime.keep;
      Alcotest.(check int) "header aligned" 0
        (String.length resp.Flash.Runtime.header mod 32);
      Alcotest.(check bool) "content length present" true
        (Helpers.contains ~affix:"Content-Length: 4321" resp.Flash.Runtime.header))

let test_head_response_no_body () =
  Helpers.run_sim (fun engine ->
      let kernel = Simos.Kernel.create engine Simos.Os_profile.freebsd in
      let rt = Flash.Runtime.create kernel Flash.Config.flash in
      let file =
        Simos.Fs.add_file (Simos.Kernel.fs kernel) ~path:"/h.html" ~size:100
      in
      let resp =
        Flash.Runtime.ok_response rt rt.Flash.Runtime.shared_caches
          (req ~meth:Http.Request.Head "/h.html") file ~keep:false
      in
      Alcotest.(check bool) "head_only" true resp.Flash.Runtime.head_only)

let test_misaligned_budget () =
  let _, _, rt_aligned = make_rt ~config:Flash.Config.flash () in
  let _, _, rt_zeus = make_rt ~config:(Flash.Config.zeus ~processes:1) () in
  let resp body_len head_only =
    {
      Flash.Runtime.status = Http.Status.Ok;
      file = None;
      header = "H";
      body_len;
      head_only;
      keep = false;
    }
  in
  Alcotest.(check int) "aligned config pays nothing" 0
    (Flash.Runtime.misaligned_budget rt_aligned (resp 100_000 false));
  Alcotest.(check int) "unaligned small body all misaligned" 5_000
    (Flash.Runtime.misaligned_budget rt_zeus (resp 5_000 false));
  (* Bounded by the first writev (io_chunk / sndbuf = 64 KB). *)
  Alcotest.(check int) "unaligned large body capped" 65536
    (Flash.Runtime.misaligned_budget rt_zeus (resp 500_000 false));
  Alcotest.(check int) "HEAD pays nothing" 0
    (Flash.Runtime.misaligned_budget rt_zeus (resp 5_000 true))

let test_cgi_response () =
  Helpers.run_sim (fun engine ->
      let kernel = Simos.Kernel.create engine Simos.Os_profile.freebsd in
      let rt = Flash.Runtime.create kernel Flash.Config.flash in
      let resp = Flash.Runtime.cgi_response rt (req "/cgi-bin/x") ~bytes:777 ~keep:false in
      Alcotest.(check int) "body bytes" 777 resp.Flash.Runtime.body_len;
      Alcotest.(check bool) "no file" true (resp.Flash.Runtime.file = None);
      Alcotest.(check bool) "content length advertised" true
        (Helpers.contains ~affix:"Content-Length: 777" resp.Flash.Runtime.header))

let test_error_response () =
  Helpers.run_sim (fun engine ->
      let kernel = Simos.Kernel.create engine Simos.Os_profile.freebsd in
      let rt = Flash.Runtime.create kernel Flash.Config.flash in
      let resp =
        Flash.Runtime.error_response rt (req "/nope") Http.Status.Not_found
          ~keep:false
      in
      Alcotest.(check bool) "404" true
        (resp.Flash.Runtime.status = Http.Status.Not_found);
      Alcotest.(check bool) "has body" true (resp.Flash.Runtime.body_len > 0);
      Flash.Runtime.finished rt resp;
      Alcotest.(check int) "error counted" 1 rt.Flash.Runtime.errors;
      Alcotest.(check int) "completion counted" 1 rt.Flash.Runtime.completed)

let test_mt_gets_mutex () =
  let _, _, rt_mt = make_rt ~config:Flash.Config.flash_mt () in
  let _, _, rt_sped = make_rt ~config:Flash.Config.flash_sped () in
  Alcotest.(check bool) "MT has cache mutex" true
    (rt_mt.Flash.Runtime.cache_mutex <> None);
  Alcotest.(check bool) "SPED has none" true
    (rt_sped.Flash.Runtime.cache_mutex = None)

let test_heuristic_only_for_amped () =
  let _, _, rt_h = make_rt ~config:Flash.Config.flash_heuristic () in
  let sped_h =
    { Flash.Config.flash_sped with Flash.Config.residency_heuristic = true }
  in
  let _, _, rt_sped = make_rt ~config:sped_h () in
  Alcotest.(check bool) "Flash-H has predictor" true
    (rt_h.Flash.Runtime.residency <> None);
  Alcotest.(check bool) "SPED never has one" true
    (rt_sped.Flash.Runtime.residency = None)

let suite =
  [
    Alcotest.test_case "resolve_path" `Quick test_resolve_path;
    Alcotest.test_case "is_cgi_path" `Quick test_is_cgi_path;
    Alcotest.test_case "charge_request timing" `Quick test_charge_request_costs_time;
    Alcotest.test_case "Apache handicap charged" `Quick test_apache_handicap_charged;
    Alcotest.test_case "ok_response shape" `Quick test_ok_response_shape;
    Alcotest.test_case "HEAD carries no body" `Quick test_head_response_no_body;
    Alcotest.test_case "misaligned budget" `Quick test_misaligned_budget;
    Alcotest.test_case "cgi_response" `Quick test_cgi_response;
    Alcotest.test_case "error_response and accounting" `Quick test_error_response;
    Alcotest.test_case "MT gets a cache mutex" `Quick test_mt_gets_mutex;
    Alcotest.test_case "predictor only on AMPED" `Quick test_heuristic_only_for_amped;
  ]
