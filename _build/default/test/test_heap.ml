let test_empty () =
  let h = Sim.Heap.create ~cmp:Int.compare in
  Alcotest.(check int) "length" 0 (Sim.Heap.length h);
  Alcotest.(check bool) "is_empty" true (Sim.Heap.is_empty h);
  Alcotest.check_raises "pop raises" Not_found (fun () ->
      ignore (Sim.Heap.pop_min h));
  Alcotest.check_raises "peek raises" Not_found (fun () ->
      ignore (Sim.Heap.peek_min h))

let test_ordering () =
  let h = Sim.Heap.create ~cmp:Int.compare in
  List.iter (Sim.Heap.push h) [ 5; 1; 4; 1; 3; 9; 0; -2 ];
  let drained = List.init 8 (fun _ -> Sim.Heap.pop_min h) in
  Alcotest.(check (list int)) "sorted" [ -2; 0; 1; 1; 3; 4; 5; 9 ] drained;
  Alcotest.(check bool) "empty after drain" true (Sim.Heap.is_empty h)

let test_peek_does_not_remove () =
  let h = Sim.Heap.create ~cmp:Int.compare in
  Sim.Heap.push h 2;
  Sim.Heap.push h 1;
  Alcotest.(check int) "peek" 1 (Sim.Heap.peek_min h);
  Alcotest.(check int) "length unchanged" 2 (Sim.Heap.length h)

let test_interleaved () =
  let h = Sim.Heap.create ~cmp:Int.compare in
  Sim.Heap.push h 3;
  Sim.Heap.push h 1;
  Alcotest.(check int) "pop 1" 1 (Sim.Heap.pop_min h);
  Sim.Heap.push h 0;
  Sim.Heap.push h 2;
  Alcotest.(check int) "pop 0" 0 (Sim.Heap.pop_min h);
  Alcotest.(check int) "pop 2" 2 (Sim.Heap.pop_min h);
  Alcotest.(check int) "pop 3" 3 (Sim.Heap.pop_min h)

let test_clear () =
  let h = Sim.Heap.create ~cmp:Int.compare in
  List.iter (Sim.Heap.push h) [ 1; 2; 3 ];
  Sim.Heap.clear h;
  Alcotest.(check int) "cleared" 0 (Sim.Heap.length h)

let test_to_list () =
  let h = Sim.Heap.create ~cmp:Int.compare in
  List.iter (Sim.Heap.push h) [ 3; 1; 2 ];
  let l = List.sort Int.compare (Sim.Heap.to_list h) in
  Alcotest.(check (list int)) "contents" [ 1; 2; 3 ] l

let test_stability_via_pairs () =
  (* When keyed by (priority, seq), ties come out in insertion order. *)
  let cmp (a, sa) (b, sb) =
    let c = Int.compare a b in
    if c <> 0 then c else Int.compare sa sb
  in
  let h = Sim.Heap.create ~cmp in
  List.iteri (fun i p -> Sim.Heap.push h (p, i)) [ 1; 1; 1; 0; 1 ];
  let order = List.init 5 (fun _ -> snd (Sim.Heap.pop_min h)) in
  Alcotest.(check (list int)) "tie order" [ 3; 0; 1; 2; 4 ] order

let prop_heapsort =
  Helpers.qcheck_case ~name:"heap drains sorted"
    QCheck.(list int)
    (fun xs ->
      let h = Sim.Heap.create ~cmp:Int.compare in
      List.iter (Sim.Heap.push h) xs;
      let drained = List.init (List.length xs) (fun _ -> Sim.Heap.pop_min h) in
      drained = List.sort Int.compare xs)

let prop_size =
  Helpers.qcheck_case ~name:"heap length tracks pushes/pops"
    QCheck.(pair (list small_int) small_nat)
    (fun (xs, pops) ->
      let h = Sim.Heap.create ~cmp:Int.compare in
      List.iter (Sim.Heap.push h) xs;
      let pops = min pops (List.length xs) in
      for _ = 1 to pops do
        ignore (Sim.Heap.pop_min h)
      done;
      Sim.Heap.length h = List.length xs - pops)

let suite =
  [
    Alcotest.test_case "empty heap" `Quick test_empty;
    Alcotest.test_case "ordering" `Quick test_ordering;
    Alcotest.test_case "peek does not remove" `Quick test_peek_does_not_remove;
    Alcotest.test_case "interleaved push/pop" `Quick test_interleaved;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "to_list" `Quick test_to_list;
    Alcotest.test_case "tie-break by seq" `Quick test_stability_via_pairs;
    prop_heapsort;
    prop_size;
  ]
