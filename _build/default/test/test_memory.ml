let mib n = n * 1024 * 1024

let test_basic () =
  let m = Simos.Memory.create ~total_bytes:(mib 128) ~min_cache_bytes:(mib 1) in
  Alcotest.(check int) "total" (mib 128) (Simos.Memory.total m);
  Alcotest.(check int) "initial cache" (mib 128) (Simos.Memory.cache_capacity m);
  Simos.Memory.reserve m (mib 28);
  Alcotest.(check int) "reserved" (mib 28) (Simos.Memory.reserved m);
  Alcotest.(check int) "cache shrinks" (mib 100) (Simos.Memory.cache_capacity m);
  Simos.Memory.release m (mib 28);
  Alcotest.(check int) "cache restored" (mib 128) (Simos.Memory.cache_capacity m)

let test_min_cache_floor () =
  let m = Simos.Memory.create ~total_bytes:(mib 16) ~min_cache_bytes:(mib 2) in
  Simos.Memory.reserve m (mib 20);
  Alcotest.(check int) "floor holds" (mib 2) (Simos.Memory.cache_capacity m)

let test_invalid () =
  Alcotest.check_raises "total <= 0"
    (Invalid_argument "Memory.create: total_bytes <= 0") (fun () ->
      ignore (Simos.Memory.create ~total_bytes:0 ~min_cache_bytes:0));
  let m = Simos.Memory.create ~total_bytes:100 ~min_cache_bytes:0 in
  Alcotest.check_raises "negative reserve"
    (Invalid_argument "Memory.reserve: negative size") (fun () ->
      Simos.Memory.reserve m (-1));
  Alcotest.check_raises "over-release"
    (Invalid_argument "Memory.release: more than reserved") (fun () ->
      Simos.Memory.release m 1)

let suite =
  [
    Alcotest.test_case "reserve/release" `Quick test_basic;
    Alcotest.test_case "min-cache floor" `Quick test_min_cache_floor;
    Alcotest.test_case "invalid arguments" `Quick test_invalid;
  ]
