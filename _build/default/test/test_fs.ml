let make_fs ?(cache_pages = 1024) () =
  let engine = Sim.Engine.create () in
  let memory =
    Simos.Memory.create ~total_bytes:(cache_pages * 8192) ~min_cache_bytes:8192
  in
  let cache = Simos.Buffer_cache.create ~memory ~page_size:8192 in
  let disk = Simos.Disk.create engine Simos.Disk.default_params in
  let fs = Simos.Fs.create engine ~cache ~disk in
  (engine, cache, disk, fs)

let test_add_and_find () =
  let _, _, _, fs = make_fs () in
  let f = Simos.Fs.add_file fs ~path:"/a/b/page.html" ~size:10_000 in
  Alcotest.(check int) "size" 10_000 f.Simos.Fs.size;
  (match Simos.Fs.find fs "/a/b/page.html" with
  | Some g -> Alcotest.(check int) "same inode" f.Simos.Fs.inode g.Simos.Fs.inode
  | None -> Alcotest.fail "find failed");
  Alcotest.(check bool) "missing path" true (Simos.Fs.find fs "/nope" = None);
  Alcotest.(check int) "file count" 1 (Simos.Fs.file_count fs);
  Alcotest.(check int) "total bytes" 10_000 (Simos.Fs.total_bytes fs)

let test_duplicate_rejected () =
  let _, _, _, fs = make_fs () in
  ignore (Simos.Fs.add_file fs ~path:"/x" ~size:10);
  Alcotest.check_raises "duplicate" (Invalid_argument "Fs.add_file: duplicate path")
    (fun () -> ignore (Simos.Fs.add_file fs ~path:"/x" ~size:10))

let test_lookup_touches_metadata () =
  let engine, _, disk, fs = make_fs () in
  ignore (Simos.Fs.add_file fs ~path:"/d1/d2/f.html" ~size:5000);
  let found = ref None in
  ignore
    (Sim.Proc.spawn engine ~name:"t" (fun () ->
         found := Simos.Fs.lookup fs "/d1/d2/f.html"));
  ignore (Sim.Engine.run engine);
  Alcotest.(check bool) "found" true (!found <> None);
  (* 3 directory components + 1 inode page = 4 metadata disk reads *)
  Alcotest.(check int) "metadata reads" 4 (Simos.Disk.completed disk);
  (* Second lookup: metadata now cached, no disk. *)
  ignore
    (Sim.Proc.spawn engine ~name:"t2" (fun () ->
         ignore (Simos.Fs.lookup fs "/d1/d2/f.html")));
  ignore (Sim.Engine.run engine);
  Alcotest.(check int) "no extra reads" 4 (Simos.Disk.completed disk)

let test_lookup_missing_file () =
  let engine, _, _, fs = make_fs () in
  let result = ref (Some ()) in
  ignore
    (Sim.Proc.spawn engine ~name:"t" (fun () ->
         result := Option.map ignore (Simos.Fs.lookup fs "/ghost.html")));
  ignore (Sim.Engine.run engine);
  Alcotest.(check bool) "not found" true (!result = None)

let test_meta_resident () =
  let engine, _, _, fs = make_fs () in
  let f = Simos.Fs.add_file fs ~path:"/m/f.html" ~size:100 in
  Alcotest.(check bool) "cold" false (Simos.Fs.meta_resident fs "/m/f.html");
  Simos.Fs.warm_meta fs f;
  Alcotest.(check bool) "warm" true (Simos.Fs.meta_resident fs "/m/f.html");
  Alcotest.(check bool) "missing file" false (Simos.Fs.meta_resident fs "/nope");
  ignore engine

let test_page_in_and_residency () =
  let engine, _, disk, fs = make_fs () in
  let f = Simos.Fs.add_file fs ~path:"/big.bin" ~size:(5 * 8192) in
  Alcotest.(check bool) "cold" false
    (Simos.Fs.resident fs f ~off:0 ~len:f.Simos.Fs.size);
  ignore
    (Sim.Proc.spawn engine ~name:"t" (fun () ->
         Simos.Fs.page_in fs f ~off:0 ~len:f.Simos.Fs.size));
  ignore (Sim.Engine.run engine);
  Alcotest.(check bool) "resident" true
    (Simos.Fs.resident fs f ~off:0 ~len:f.Simos.Fs.size);
  (* Clustering: 5 contiguous missing pages = one disk request. *)
  Alcotest.(check int) "one clustered read" 1 (Simos.Disk.completed disk)

let test_page_in_partial () =
  let engine, _, _, fs = make_fs () in
  let f = Simos.Fs.add_file fs ~path:"/p.bin" ~size:(4 * 8192) in
  ignore
    (Sim.Proc.spawn engine ~name:"t" (fun () ->
         Simos.Fs.page_in fs f ~off:0 ~len:8192));
  ignore (Sim.Engine.run engine);
  Alcotest.(check bool) "first page" true (Simos.Fs.resident fs f ~off:0 ~len:8192);
  Alcotest.(check bool) "rest cold" false
    (Simos.Fs.resident fs f ~off:(2 * 8192) ~len:8192)

let test_inflight_coalescing () =
  let engine, _, disk, fs = make_fs () in
  let f = Simos.Fs.add_file fs ~path:"/c.bin" ~size:8192 in
  let completions = ref 0 in
  for i = 1 to 3 do
    ignore
      (Sim.Proc.spawn engine ~name:(string_of_int i) (fun () ->
           Simos.Fs.page_in fs f ~off:0 ~len:8192;
           incr completions))
  done;
  ignore (Sim.Engine.run engine);
  Alcotest.(check int) "all readers done" 3 !completions;
  Alcotest.(check int) "single disk read" 1 (Simos.Disk.completed disk)

let test_warm () =
  let _, _, disk, fs = make_fs () in
  let f = Simos.Fs.add_file fs ~path:"/w.bin" ~size:(3 * 8192) in
  Simos.Fs.warm fs f;
  Alcotest.(check bool) "resident" true
    (Simos.Fs.resident fs f ~off:0 ~len:f.Simos.Fs.size);
  Alcotest.(check int) "no disk" 0 (Simos.Disk.completed disk)

let test_eviction_unresidents () =
  (* A cache of 4 pages cannot hold an 8-page file. *)
  let engine, _, _, fs = make_fs ~cache_pages:4 () in
  let f = Simos.Fs.add_file fs ~path:"/e.bin" ~size:(8 * 8192) in
  ignore
    (Sim.Proc.spawn engine ~name:"t" (fun () ->
         Simos.Fs.page_in fs f ~off:0 ~len:f.Simos.Fs.size));
  ignore (Sim.Engine.run engine);
  Alcotest.(check bool) "not fully resident" false
    (Simos.Fs.resident fs f ~off:0 ~len:f.Simos.Fs.size)

let test_pages_in_range () =
  let _, _, _, fs = make_fs () in
  Alcotest.(check int) "empty" 0 (Simos.Fs.pages_in_range fs ~off:0 ~len:0);
  Alcotest.(check int) "one byte" 1 (Simos.Fs.pages_in_range fs ~off:0 ~len:1);
  Alcotest.(check int) "exactly one page" 1
    (Simos.Fs.pages_in_range fs ~off:0 ~len:8192);
  Alcotest.(check int) "straddles boundary" 2
    (Simos.Fs.pages_in_range fs ~off:8000 ~len:400)

let test_mtime () =
  let _, _, _, fs = make_fs () in
  let f = Simos.Fs.add_file fs ~path:"/t.html" ~size:10 in
  Helpers.check_float ~msg:"initial mtime" 0. f.Simos.Fs.mtime;
  Simos.Fs.touch_mtime fs f ~now:42.;
  Helpers.check_float ~msg:"updated" 42. f.Simos.Fs.mtime

let suite =
  [
    Alcotest.test_case "add and find" `Quick test_add_and_find;
    Alcotest.test_case "duplicate rejected" `Quick test_duplicate_rejected;
    Alcotest.test_case "lookup touches metadata" `Quick test_lookup_touches_metadata;
    Alcotest.test_case "lookup missing file" `Quick test_lookup_missing_file;
    Alcotest.test_case "meta_resident" `Quick test_meta_resident;
    Alcotest.test_case "page_in and residency" `Quick test_page_in_and_residency;
    Alcotest.test_case "partial page_in" `Quick test_page_in_partial;
    Alcotest.test_case "in-flight coalescing" `Quick test_inflight_coalescing;
    Alcotest.test_case "warm" `Quick test_warm;
    Alcotest.test_case "eviction un-residents" `Quick test_eviction_unresidents;
    Alcotest.test_case "pages_in_range" `Quick test_pages_in_range;
    Alcotest.test_case "mtime" `Quick test_mtime;
  ]
