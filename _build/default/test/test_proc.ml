let test_delay_advances_time () =
  let t =
    Helpers.run_sim (fun engine ->
        Sim.Proc.delay 1.5;
        Sim.Engine.now engine)
  in
  Helpers.check_float ~msg:"time after delay" 1.5 t

let test_yield_keeps_time () =
  let t =
    Helpers.run_sim (fun engine ->
        Sim.Proc.yield ();
        Sim.Engine.now engine)
  in
  Helpers.check_float ~msg:"time after yield" 0. t

let test_self_distinct () =
  let engine = Sim.Engine.create () in
  let ids = ref [] in
  let p1 = Sim.Proc.spawn engine ~name:"a" (fun () -> ids := Sim.Proc.self () :: !ids) in
  let p2 = Sim.Proc.spawn engine ~name:"b" (fun () -> ids := Sim.Proc.self () :: !ids) in
  ignore (Sim.Engine.run engine);
  Alcotest.(check bool) "ids distinct" true (p1 <> p2);
  Alcotest.(check bool) "self matches spawn ids" true
    (List.sort Int.compare !ids = List.sort Int.compare [ p1; p2 ])

let test_name_registered () =
  let engine = Sim.Engine.create () in
  let pid = Sim.Proc.spawn engine ~name:"worker-7" ignore in
  Alcotest.(check string) "name" "worker-7" (Sim.Proc.name_of pid)

let test_suspend_resume () =
  let resumer = ref None in
  let got =
    Helpers.run_sim (fun engine ->
        Sim.Engine.schedule engine ~delay:2. (fun () ->
            match !resumer with Some r -> r 42 | None -> ());
        Sim.Proc.suspend (fun resume -> resumer := Some resume))
  in
  Alcotest.(check int) "value through suspend" 42 got

let test_interleaving () =
  let engine = Sim.Engine.create () in
  let log = ref [] in
  let push tag = log := tag :: !log in
  ignore
    (Sim.Proc.spawn engine ~name:"a" (fun () ->
         push "a1";
         Sim.Proc.delay 2.;
         push "a2"));
  ignore
    (Sim.Proc.spawn engine ~name:"b" (fun () ->
         push "b1";
         Sim.Proc.delay 1.;
         push "b2"));
  ignore (Sim.Engine.run engine);
  Alcotest.(check (list string)) "interleaved by time" [ "a1"; "b1"; "b2"; "a2" ]
    (List.rev !log)

let test_negative_delay () =
  let raised =
    Helpers.run_sim (fun _ ->
        try
          Sim.Proc.delay (-1.);
          false
        with Sim.Proc.Negative_delay -> true)
  in
  Alcotest.(check bool) "Negative_delay raised inside proc" true raised

let test_double_resume_detected () =
  let engine = Sim.Engine.create () in
  let boom = ref false in
  ignore
    (Sim.Proc.spawn engine ~name:"victim" (fun () ->
         ignore
           (Sim.Proc.suspend (fun resume ->
                resume 1;
                (* The second resume must be rejected. *)
                match resume 2 with () -> () | exception Failure _ -> boom := true))));
  ignore (Sim.Engine.run engine);
  Alcotest.(check bool) "second resume rejected" true !boom

let test_many_procs () =
  let engine = Sim.Engine.create () in
  let finished = ref 0 in
  for i = 1 to 500 do
    ignore
      (Sim.Proc.spawn engine ~name:(string_of_int i) (fun () ->
           Sim.Proc.delay (float_of_int (i mod 7) /. 10.);
           incr finished))
  done;
  ignore (Sim.Engine.run engine);
  Alcotest.(check int) "all processes finished" 500 !finished

let suite =
  [
    Alcotest.test_case "delay advances time" `Quick test_delay_advances_time;
    Alcotest.test_case "yield keeps time" `Quick test_yield_keeps_time;
    Alcotest.test_case "self ids distinct" `Quick test_self_distinct;
    Alcotest.test_case "names registered" `Quick test_name_registered;
    Alcotest.test_case "suspend/resume passes value" `Quick test_suspend_resume;
    Alcotest.test_case "processes interleave by time" `Quick test_interleaving;
    Alcotest.test_case "negative delay raises" `Quick test_negative_delay;
    Alcotest.test_case "double resume detected" `Quick test_double_resume_detected;
    Alcotest.test_case "500 processes" `Quick test_many_procs;
  ]
