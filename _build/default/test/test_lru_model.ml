(* Model-based property test: the weighted LRU must agree with a naive
   reference implementation on arbitrary operation sequences. *)

type op = Add of int * int | Find of int | Remove of int

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (5, map2 (fun k w -> Add (k, w)) (int_range 0 9) (int_range 1 5));
        (3, map (fun k -> Find k) (int_range 0 9));
        (1, map (fun k -> Remove k) (int_range 0 9));
      ])

let op_print = function
  | Add (k, w) -> Printf.sprintf "Add(%d,w%d)" k w
  | Find k -> Printf.sprintf "Find(%d)" k
  | Remove k -> Printf.sprintf "Remove(%d)" k

let ops_arb =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map op_print ops))
    QCheck.Gen.(list_size (int_range 0 60) op_gen)

(* Reference: association list in MRU-to-LRU order with weights. *)
module Reference = struct
  type t = { cap : int; mutable entries : (int * int) list (* key, weight *) }

  let create cap = { cap; entries = [] }
  let weight t = List.fold_left (fun acc (_, w) -> acc + w) 0 t.entries

  let shrink t =
    (* Evict from the LRU end while over capacity with > 1 entry. *)
    let rec drop_last = function
      | [] | [ _ ] -> []
      | x :: rest -> x :: drop_last rest
    in
    while weight t > t.cap && List.length t.entries > 1 do
      t.entries <- drop_last t.entries
    done

  let add t k w =
    t.entries <- (k, w) :: List.remove_assoc k t.entries;
    shrink t

  let find t k =
    match List.assoc_opt k t.entries with
    | Some w ->
        t.entries <- (k, w) :: List.remove_assoc k t.entries;
        true
    | None -> false

  let remove t k =
    let present = List.mem_assoc k t.entries in
    t.entries <- List.remove_assoc k t.entries;
    present

  let keys_in_order t = List.map fst t.entries
end

let agree_after cap ops =
  let lru = Flash_util.Lru.create ~capacity:cap () in
  let reference = Reference.create cap in
  List.iter
    (fun op ->
      match op with
      | Add (k, w) ->
          Flash_util.Lru.add lru k k ~weight:w;
          Reference.add reference k w
      | Find k ->
          let a = Flash_util.Lru.find lru k <> None in
          let b = Reference.find reference k in
          if a <> b then failwith (Printf.sprintf "find disagreement on %d" k)
      | Remove k ->
          let a = Flash_util.Lru.remove lru k <> None in
          let b = Reference.remove reference k in
          if a <> b then failwith (Printf.sprintf "remove disagreement on %d" k))
    ops;
  let lru_keys = List.rev (Flash_util.Lru.fold lru ~init:[] ~f:(fun acc k _ -> k :: acc)) in
  lru_keys = Reference.keys_in_order reference
  && Flash_util.Lru.weight lru = Reference.weight reference

let prop_model cap =
  Helpers.qcheck_case ~count:300
    ~name:(Printf.sprintf "LRU matches reference model (cap %d)" cap)
    ops_arb
    (fun ops -> agree_after cap ops)

let suite = [ prop_model 5; prop_model 12; prop_model 1 ]
