let test_write_read () =
  let p = Simos.Pipe.create () in
  Alcotest.(check bool) "initially empty" true (Simos.Pipe.read p = None);
  Simos.Pipe.write p 1;
  Simos.Pipe.write p 2;
  Alcotest.(check int) "length" 2 (Simos.Pipe.length p);
  Alcotest.(check bool) "ready" true
    (Simos.Pollable.is_ready (Simos.Pipe.pollable p));
  Alcotest.(check (option int)) "first" (Some 1) (Simos.Pipe.read p);
  Alcotest.(check (option int)) "second" (Some 2) (Simos.Pipe.read p);
  Alcotest.(check bool) "not ready when drained" false
    (Simos.Pollable.is_ready (Simos.Pipe.pollable p));
  Alcotest.(check (option int)) "empty" None (Simos.Pipe.read p)

let test_read_blocking () =
  let engine = Sim.Engine.create () in
  let p = Simos.Pipe.create () in
  let got = ref 0 in
  ignore
    (Sim.Proc.spawn engine ~name:"reader" (fun () ->
         got := Simos.Pipe.read_blocking p));
  ignore
    (Sim.Proc.spawn engine ~name:"writer" (fun () ->
         Sim.Proc.delay 1.;
         Simos.Pipe.write p 99));
  ignore (Sim.Engine.run engine);
  Alcotest.(check int) "value" 99 !got

let test_blocked_reader_gets_value_directly () =
  let engine = Sim.Engine.create () in
  let p = Simos.Pipe.create () in
  let order = ref [] in
  let reader name =
    ignore
      (Sim.Proc.spawn engine ~name (fun () ->
           (* Bind first: [::] evaluates its right operand before the
              blocking read, which would capture a stale list. *)
           let v = Simos.Pipe.read_blocking p in
           order := (name, v) :: !order))
  in
  reader "r1";
  reader "r2";
  ignore
    (Sim.Proc.spawn engine ~name:"w" (fun () ->
         Sim.Proc.delay 0.1;
         Simos.Pipe.write p 1;
         Simos.Pipe.write p 2));
  ignore (Sim.Engine.run engine);
  Alcotest.(check (list (pair string int)))
    "FIFO readers" [ ("r1", 1); ("r2", 2) ] (List.rev !order)

let test_select_integration () =
  (* A select over the pipe's pollable wakes when a message arrives. *)
  let engine = Sim.Engine.create () in
  let p = Simos.Pipe.create () in
  let woke_at = ref 0. in
  ignore
    (Sim.Proc.spawn engine ~name:"selector" (fun () ->
         Simos.Pollable.wait_ready (Simos.Pipe.pollable p);
         woke_at := Sim.Engine.now engine));
  Sim.Engine.schedule engine ~delay:3. (fun () -> Simos.Pipe.write p ());
  ignore (Sim.Engine.run engine);
  Helpers.check_float ~msg:"woke on write" 3. !woke_at

let suite =
  [
    Alcotest.test_case "write/read FIFO" `Quick test_write_read;
    Alcotest.test_case "blocking read" `Quick test_read_blocking;
    Alcotest.test_case "blocked readers FIFO" `Quick
      test_blocked_reader_gets_value_directly;
    Alcotest.test_case "select integration" `Quick test_select_integration;
  ]
