let test_counter () =
  let c = Sim.Stat.Counter.create () in
  Alcotest.(check int) "zero" 0 (Sim.Stat.Counter.value c);
  Sim.Stat.Counter.incr c;
  Sim.Stat.Counter.add c 5;
  Alcotest.(check int) "six" 6 (Sim.Stat.Counter.value c);
  Sim.Stat.Counter.reset c;
  Alcotest.(check int) "reset" 0 (Sim.Stat.Counter.value c)

let test_tally () =
  let t = Sim.Stat.Tally.create () in
  List.iter (Sim.Stat.Tally.add t) [ 1.; 2.; 3.; 4. ];
  Alcotest.(check int) "count" 4 (Sim.Stat.Tally.count t);
  Helpers.check_float ~msg:"mean" 2.5 (Sim.Stat.Tally.mean t);
  Helpers.check_float ~msg:"min" 1. (Sim.Stat.Tally.min t);
  Helpers.check_float ~msg:"max" 4. (Sim.Stat.Tally.max t);
  Helpers.check_float ~msg:"total" 10. (Sim.Stat.Tally.total t)

let test_tally_empty_mean () =
  let t = Sim.Stat.Tally.create () in
  Helpers.check_float ~msg:"empty mean" 0. (Sim.Stat.Tally.mean t)

let test_histogram_percentiles () =
  let h = Sim.Stat.Histogram.create ~lo:0. ~hi:100. ~buckets:100 in
  for i = 1 to 100 do
    Sim.Stat.Histogram.add h (float_of_int i -. 0.5)
  done;
  let p50 = Sim.Stat.Histogram.percentile h 50. in
  let p90 = Sim.Stat.Histogram.percentile h 90. in
  if Float.abs (p50 -. 50.) > 1.5 then Alcotest.failf "p50 = %f" p50;
  if Float.abs (p90 -. 90.) > 1.5 then Alcotest.failf "p90 = %f" p90

let test_histogram_clamps () =
  let h = Sim.Stat.Histogram.create ~lo:0. ~hi:10. ~buckets:10 in
  Sim.Stat.Histogram.add h (-5.);
  Sim.Stat.Histogram.add h 50.;
  Alcotest.(check int) "both counted" 2 (Sim.Stat.Histogram.count h)

let test_histogram_empty () =
  let h = Sim.Stat.Histogram.create ~lo:0. ~hi:1. ~buckets:4 in
  Alcotest.(check bool) "nan when empty" true
    (Float.is_nan (Sim.Stat.Histogram.percentile h 50.))

let test_histogram_invalid () =
  Alcotest.check_raises "hi <= lo"
    (Invalid_argument "Stat.Histogram.create: hi <= lo") (fun () ->
      ignore (Sim.Stat.Histogram.create ~lo:1. ~hi:1. ~buckets:4))

let suite =
  [
    Alcotest.test_case "counter" `Quick test_counter;
    Alcotest.test_case "tally" `Quick test_tally;
    Alcotest.test_case "tally empty mean" `Quick test_tally_empty_mean;
    Alcotest.test_case "histogram percentiles" `Quick test_histogram_percentiles;
    Alcotest.test_case "histogram clamps outliers" `Quick test_histogram_clamps;
    Alcotest.test_case "histogram empty percentile" `Quick test_histogram_empty;
    Alcotest.test_case "histogram invalid bounds" `Quick test_histogram_invalid;
  ]
