module Mutex = Sim.Sync.Mutex
module Condition = Sim.Sync.Condition
module Semaphore = Sim.Sync.Semaphore
module Mailbox = Sim.Sync.Mailbox

let test_mutex_basic () =
  Helpers.run_sim (fun _ ->
      let m = Mutex.create () in
      Alcotest.(check bool) "unlocked" false (Mutex.locked m);
      Mutex.lock m;
      Alcotest.(check bool) "locked" true (Mutex.locked m);
      Mutex.unlock m;
      Alcotest.(check bool) "unlocked again" false (Mutex.locked m))

let test_mutex_exclusion () =
  let engine = Sim.Engine.create () in
  let m = Mutex.create () in
  let inside = ref 0 in
  let max_inside = ref 0 in
  for i = 1 to 8 do
    ignore
      (Sim.Proc.spawn engine ~name:(Printf.sprintf "locker%d" i) (fun () ->
           Mutex.lock m;
           incr inside;
           if !inside > !max_inside then max_inside := !inside;
           Sim.Proc.delay 0.1;
           decr inside;
           Mutex.unlock m))
  done;
  ignore (Sim.Engine.run engine);
  Alcotest.(check int) "never two inside" 1 !max_inside;
  Alcotest.(check int) "contention recorded" 7 (Mutex.contended_count m);
  Alcotest.(check int) "locks recorded" 8 (Mutex.lock_count m)

let test_mutex_fifo () =
  let engine = Sim.Engine.create () in
  let m = Mutex.create () in
  let order = ref [] in
  ignore
    (Sim.Proc.spawn engine ~name:"holder" (fun () ->
         Mutex.lock m;
         Sim.Proc.delay 1.;
         Mutex.unlock m));
  for i = 1 to 3 do
    ignore
      (Sim.Proc.spawn engine ~name:(string_of_int i) (fun () ->
           Sim.Proc.delay (0.1 *. float_of_int i);
           Mutex.lock m;
           order := i :: !order;
           Mutex.unlock m))
  done;
  ignore (Sim.Engine.run engine);
  Alcotest.(check (list int)) "FIFO handoff" [ 1; 2; 3 ] (List.rev !order)

let test_try_lock () =
  Helpers.run_sim (fun _ ->
      let m = Mutex.create () in
      Alcotest.(check bool) "first try succeeds" true (Mutex.try_lock m);
      Alcotest.(check bool) "second try fails" false (Mutex.try_lock m);
      Mutex.unlock m;
      Alcotest.(check bool) "after unlock succeeds" true (Mutex.try_lock m))

let test_unlock_unlocked () =
  Helpers.run_sim (fun _ ->
      let m = Mutex.create () in
      match Mutex.unlock m with
      | () -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument _ -> ())

let test_condition () =
  let engine = Sim.Engine.create () in
  let m = Mutex.create () in
  let cond = Condition.create () in
  let ready = ref false in
  let observed = ref false in
  ignore
    (Sim.Proc.spawn engine ~name:"waiter" (fun () ->
         Mutex.lock m;
         while not !ready do
           Condition.wait cond m
         done;
         observed := true;
         Mutex.unlock m));
  ignore
    (Sim.Proc.spawn engine ~name:"signaller" (fun () ->
         Sim.Proc.delay 1.;
         Mutex.lock m;
         ready := true;
         Condition.signal cond;
         Mutex.unlock m));
  ignore (Sim.Engine.run engine);
  Alcotest.(check bool) "waiter observed" true !observed

let test_condition_broadcast () =
  let engine = Sim.Engine.create () in
  let m = Mutex.create () in
  let cond = Condition.create () in
  let ready = ref false in
  let woken = ref 0 in
  for i = 1 to 5 do
    ignore
      (Sim.Proc.spawn engine ~name:(string_of_int i) (fun () ->
           Mutex.lock m;
           while not !ready do
             Condition.wait cond m
           done;
           incr woken;
           Mutex.unlock m))
  done;
  ignore
    (Sim.Proc.spawn engine ~name:"b" (fun () ->
         Sim.Proc.delay 1.;
         Mutex.lock m;
         ready := true;
         Condition.broadcast cond;
         Mutex.unlock m));
  ignore (Sim.Engine.run engine);
  Alcotest.(check int) "all woken" 5 !woken

let test_semaphore_bound () =
  let engine = Sim.Engine.create () in
  let sem = Semaphore.create 2 in
  let inside = ref 0 in
  let max_inside = ref 0 in
  for i = 1 to 6 do
    ignore
      (Sim.Proc.spawn engine ~name:(string_of_int i) (fun () ->
           Semaphore.acquire sem;
           incr inside;
           if !inside > !max_inside then max_inside := !inside;
           Sim.Proc.delay 0.5;
           decr inside;
           Semaphore.release sem))
  done;
  ignore (Sim.Engine.run engine);
  Alcotest.(check int) "at most 2 inside" 2 !max_inside

let test_semaphore_negative () =
  Alcotest.check_raises "negative create"
    (Invalid_argument "Sync.Semaphore.create: negative value") (fun () ->
      ignore (Semaphore.create (-1)))

let test_try_acquire () =
  Helpers.run_sim (fun _ ->
      let sem = Semaphore.create 1 in
      Alcotest.(check bool) "first" true (Semaphore.try_acquire sem);
      Alcotest.(check bool) "second" false (Semaphore.try_acquire sem);
      Semaphore.release sem;
      Alcotest.(check bool) "after release" true (Semaphore.try_acquire sem))

let test_mailbox_order () =
  let engine = Sim.Engine.create () in
  let mbox = Mailbox.create () in
  let received = ref [] in
  ignore
    (Sim.Proc.spawn engine ~name:"consumer" (fun () ->
         for _ = 1 to 3 do
           received := Mailbox.recv mbox :: !received
         done));
  ignore
    (Sim.Proc.spawn engine ~name:"producer" (fun () ->
         Sim.Proc.delay 0.5;
         Mailbox.send mbox 1;
         Mailbox.send mbox 2;
         Mailbox.send mbox 3));
  ignore (Sim.Engine.run engine);
  Alcotest.(check (list int)) "FIFO delivery" [ 1; 2; 3 ] (List.rev !received)

let test_mailbox_blocking_recv () =
  let engine = Sim.Engine.create () in
  let mbox = Mailbox.create () in
  let got_at = ref 0. in
  ignore
    (Sim.Proc.spawn engine ~name:"consumer" (fun () ->
         ignore (Mailbox.recv mbox);
         got_at := Sim.Engine.now engine));
  ignore
    (Sim.Proc.spawn engine ~name:"producer" (fun () ->
         Sim.Proc.delay 2.;
         Mailbox.send mbox ()));
  ignore (Sim.Engine.run engine);
  Helpers.check_float ~msg:"received when sent" 2. !got_at

let suite =
  [
    Alcotest.test_case "mutex basic" `Quick test_mutex_basic;
    Alcotest.test_case "mutex mutual exclusion" `Quick test_mutex_exclusion;
    Alcotest.test_case "mutex FIFO handoff" `Quick test_mutex_fifo;
    Alcotest.test_case "try_lock" `Quick test_try_lock;
    Alcotest.test_case "unlock unlocked rejected" `Quick test_unlock_unlocked;
    Alcotest.test_case "condition wait/signal" `Quick test_condition;
    Alcotest.test_case "condition broadcast" `Quick test_condition_broadcast;
    Alcotest.test_case "semaphore bounds concurrency" `Quick test_semaphore_bound;
    Alcotest.test_case "semaphore rejects negative" `Quick test_semaphore_negative;
    Alcotest.test_case "semaphore try_acquire" `Quick test_try_acquire;
    Alcotest.test_case "mailbox FIFO" `Quick test_mailbox_order;
    Alcotest.test_case "mailbox blocking recv" `Quick test_mailbox_blocking_recv;
  ]
