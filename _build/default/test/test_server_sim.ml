(* Integration tests: full simulated servers serving real HTTP over the
   modeled network, for every architecture. *)

let profile = Simos.Os_profile.freebsd

let setup ?(config = Flash.Config.flash) ?(files = []) () =
  let engine = Sim.Engine.create ~seed:11 () in
  let kernel = Simos.Kernel.create engine profile in
  List.iter
    (fun (path, size) ->
      ignore (Simos.Fs.add_file (Simos.Kernel.fs kernel) ~path ~size))
    files;
  let server = Flash.Server.start kernel config in
  (engine, kernel, server)

(* A scripted client: sends [requests] sequentially on fresh connections,
   recording the outcome of each. *)
let scripted_client engine kernel outcomes requests =
  ignore
    (Sim.Proc.spawn engine ~name:"client" (fun () ->
         List.iter
           (fun req ->
             let c =
               Simos.Net.connect (Simos.Kernel.net kernel) ~link_rate:12.5e6
                 ~rtt:0.0003
             in
             Simos.Net.client_send c req;
             let r = Simos.Net.client_await_response c in
             outcomes := r :: !outcomes;
             Simos.Net.client_close c)
           requests))

let test_serves_request config () =
  let engine, kernel, server =
    setup ~config ~files:[ ("/site/index.html", 4000) ] ()
  in
  let outcomes = ref [] in
  scripted_client engine kernel outcomes
    [ "GET /site/index.html HTTP/1.0\r\nHost: t\r\n\r\n" ];
  ignore (Sim.Engine.run ~until:5. engine);
  Alcotest.(check int) "one response" 1 (List.length !outcomes);
  Alcotest.(check bool) "ok" true (List.for_all (( = ) `Ok) !outcomes);
  Alcotest.(check int) "completed" 1 (Flash.Server.completed server);
  Alcotest.(check int) "no errors" 0 (Flash.Server.errors server)

let test_full_bytes_delivered () =
  let size = 200_000 in
  let engine, kernel, _ = setup ~files:[ ("/big.bin", size) ] () in
  let received = ref 0 in
  ignore
    (Sim.Proc.spawn engine ~name:"client" (fun () ->
         let c =
           Simos.Net.connect (Simos.Kernel.net kernel) ~link_rate:12.5e6
             ~rtt:0.0003
         in
         Simos.Net.client_send c "GET /big.bin HTTP/1.0\r\n\r\n";
         ignore (Simos.Net.client_await_response c);
         received := Simos.Net.delivered_bytes (Simos.Kernel.net kernel)));
  ignore (Sim.Engine.run ~until:10. engine);
  Alcotest.(check bool)
    (Printf.sprintf "got at least the file (%d >= %d)" !received size)
    true (!received >= size)

let test_not_found () =
  let engine, kernel, server = setup ~files:[ ("/exists", 100) ] () in
  let outcomes = ref [] in
  scripted_client engine kernel outcomes [ "GET /ghost.html HTTP/1.0\r\n\r\n" ];
  ignore (Sim.Engine.run ~until:5. engine);
  Alcotest.(check bool) "got a response" true (!outcomes = [ `Ok ]);
  Alcotest.(check int) "counted as error" 1 (Flash.Server.errors server)

let test_bad_request () =
  let engine, kernel, server = setup () in
  let outcomes = ref [] in
  scripted_client engine kernel outcomes [ "NONSENSE\r\n\r\n" ];
  ignore (Sim.Engine.run ~until:5. engine);
  Alcotest.(check bool) "got a response" true (!outcomes = [ `Ok ]);
  Alcotest.(check int) "400 counted" 1 (Flash.Server.errors server)

let test_dot_segment_rejected () =
  let engine, kernel, server = setup ~files:[ ("/a/secret", 10) ] () in
  let outcomes = ref [] in
  scripted_client engine kernel outcomes
    [ "GET /../../etc/passwd HTTP/1.0\r\n\r\n" ];
  ignore (Sim.Engine.run ~until:5. engine);
  Alcotest.(check bool) "got a response" true (!outcomes = [ `Ok ]);
  Alcotest.(check int) "403 counted" 1 (Flash.Server.errors server)

let test_index_resolution () =
  let engine, kernel, server =
    setup ~files:[ ("/index.html", 2000); ("/dir/index.html", 3000) ] ()
  in
  let outcomes = ref [] in
  scripted_client engine kernel outcomes
    [ "GET / HTTP/1.0\r\n\r\n"; "GET /dir/ HTTP/1.0\r\n\r\n" ];
  ignore (Sim.Engine.run ~until:5. engine);
  Alcotest.(check int) "two responses" 2 (List.length !outcomes);
  Alcotest.(check int) "no errors" 0 (Flash.Server.errors server)

let test_head_request () =
  let engine, kernel, server = setup ~files:[ ("/h.html", 50_000) ] () in
  let before = Simos.Net.delivered_bytes (Simos.Kernel.net kernel) in
  let outcomes = ref [] in
  scripted_client engine kernel outcomes [ "HEAD /h.html HTTP/1.0\r\n\r\n" ];
  ignore (Sim.Engine.run ~until:5. engine);
  let delivered = Simos.Net.delivered_bytes (Simos.Kernel.net kernel) - before in
  Alcotest.(check bool) "only the header went out" true (delivered < 1000);
  Alcotest.(check int) "completed" 1 (Flash.Server.completed server)

let test_keep_alive_pipeline () =
  let engine, kernel, server = setup ~files:[ ("/k.html", 1000) ] () in
  let responses = ref 0 in
  ignore
    (Sim.Proc.spawn engine ~name:"client" (fun () ->
         let c =
           Simos.Net.connect (Simos.Kernel.net kernel) ~link_rate:12.5e6
             ~rtt:0.0003
         in
         for _ = 1 to 3 do
           Simos.Net.client_send c "GET /k.html HTTP/1.1\r\nHost: t\r\n\r\n";
           match Simos.Net.client_await_response c with
           | `Ok -> incr responses
           | `Closed -> ()
         done;
         Simos.Net.client_close c));
  ignore (Sim.Engine.run ~until:5. engine);
  Alcotest.(check int) "three responses on one connection" 3 !responses;
  Alcotest.(check int) "server agrees" 3 (Flash.Server.completed server);
  Alcotest.(check int) "one connection" 1
    (Simos.Net.connections_created (Simos.Kernel.net kernel))

let test_amped_uses_helpers_on_cold_files () =
  (* Cold files: translations and page-ins must go through helpers. *)
  let files = List.init 30 (fun i -> (Printf.sprintf "/cold/f%d.bin" i, 100_000)) in
  let engine, kernel, server = setup ~config:Flash.Config.flash ~files () in
  let outcomes = ref [] in
  scripted_client engine kernel outcomes
    (List.map (fun (p, _) -> "GET " ^ p ^ " HTTP/1.0\r\n\r\n") files);
  ignore (Sim.Engine.run ~until:30. engine);
  Alcotest.(check int) "all served" 30 (List.length !outcomes);
  Alcotest.(check int) "no errors" 0 (Flash.Server.errors server);
  Alcotest.(check bool) "helpers dispatched" true
    (Flash.Server.helper_dispatches server > 0);
  Alcotest.(check bool) "helpers spawned" true
    (Flash.Server.helpers_spawned server > 0)

let test_sped_never_spawns_helpers () =
  let files = [ ("/cold/a.bin", 100_000) ] in
  let engine, kernel, server = setup ~config:Flash.Config.flash_sped ~files () in
  let outcomes = ref [] in
  scripted_client engine kernel outcomes [ "GET /cold/a.bin HTTP/1.0\r\n\r\n" ];
  ignore (Sim.Engine.run ~until:10. engine);
  Alcotest.(check int) "served" 1 (List.length !outcomes);
  Alcotest.(check int) "no helpers" 0 (Flash.Server.helpers_spawned server)

let test_helper_pool_bounded () =
  let config = { Flash.Config.flash with Flash.Config.max_helpers = 3 } in
  let files = List.init 40 (fun i -> (Printf.sprintf "/hb/f%d.bin" i, 200_000)) in
  let engine, kernel, server = setup ~config ~files () in
  (* Many concurrent clients to pressure the pool. *)
  for i = 0 to 19 do
    let outcomes = ref [] in
    scripted_client engine kernel outcomes
      [ Printf.sprintf "GET /hb/f%d.bin HTTP/1.0\r\n\r\n" i ]
  done;
  ignore (Sim.Engine.run ~until:30. engine);
  Alcotest.(check bool) "pool bounded" true (Flash.Server.helpers_spawned server <= 3);
  Alcotest.(check bool) "requests served" true (Flash.Server.completed server >= 20)

let test_memory_footprints () =
  let foot config =
    let _, _, server = setup ~config () in
    Flash.Server.memory_footprint server
  in
  let sped = foot Flash.Config.flash_sped in
  let mp = foot Flash.Config.flash_mp in
  let mt = foot Flash.Config.flash_mt in
  Alcotest.(check bool) "MP heaviest" true (mp > mt && mt > sped)

let test_mt_uses_lock () =
  let files = [ ("/mt.html", 1000) ] in
  let engine, kernel, server = setup ~config:Flash.Config.flash_mt ~files () in
  let outcomes = ref [] in
  scripted_client engine kernel outcomes
    (List.init 5 (fun _ -> "GET /mt.html HTTP/1.0\r\n\r\n"));
  ignore (Sim.Engine.run ~until:5. engine);
  Alcotest.(check int) "served" 5 (List.length !outcomes);
  ignore server

let test_cache_stats_accumulate () =
  let files = [ ("/s.html", 1000) ] in
  let engine, kernel, server = setup ~config:Flash.Config.flash ~files () in
  let outcomes = ref [] in
  scripted_client engine kernel outcomes
    (List.init 6 (fun _ -> "GET /s.html HTTP/1.0\r\n\r\n"));
  ignore (Sim.Engine.run ~until:5. engine);
  Alcotest.(check bool) "pathname hits after repeats" true
    (Flash.Server.pathname_hits server >= 4);
  Alcotest.(check bool) "header cache hit" true (Flash.Server.header_hits server >= 4);
  Alcotest.(check bool) "mmap reuse" true (Flash.Server.mmap_reuse_hits server >= 4)

let suite =
  [
    Alcotest.test_case "AMPED serves a request" `Quick
      (test_serves_request Flash.Config.flash);
    Alcotest.test_case "SPED serves a request" `Quick
      (test_serves_request Flash.Config.flash_sped);
    Alcotest.test_case "MP serves a request" `Quick
      (test_serves_request Flash.Config.flash_mp);
    Alcotest.test_case "MT serves a request" `Quick
      (test_serves_request Flash.Config.flash_mt);
    Alcotest.test_case "Apache model serves a request" `Quick
      (test_serves_request Flash.Config.apache);
    Alcotest.test_case "Zeus model serves a request" `Quick
      (test_serves_request (Flash.Config.zeus ~processes:1));
    Alcotest.test_case "Zeus 2-process serves a request" `Quick
      (test_serves_request (Flash.Config.zeus ~processes:2));
    Alcotest.test_case "full bytes delivered" `Quick test_full_bytes_delivered;
    Alcotest.test_case "404 for missing file" `Quick test_not_found;
    Alcotest.test_case "400 for malformed request" `Quick test_bad_request;
    Alcotest.test_case "403 for escaping path" `Quick test_dot_segment_rejected;
    Alcotest.test_case "index file resolution" `Quick test_index_resolution;
    Alcotest.test_case "HEAD sends no body" `Quick test_head_request;
    Alcotest.test_case "keep-alive serves multiple requests" `Quick
      test_keep_alive_pipeline;
    Alcotest.test_case "AMPED dispatches helpers when cold" `Quick
      test_amped_uses_helpers_on_cold_files;
    Alcotest.test_case "SPED spawns no helpers" `Quick test_sped_never_spawns_helpers;
    Alcotest.test_case "helper pool bounded" `Quick test_helper_pool_bounded;
    Alcotest.test_case "memory footprints ordered" `Quick test_memory_footprints;
    Alcotest.test_case "MT serves under shared caches" `Quick test_mt_uses_lock;
    Alcotest.test_case "cache statistics accumulate" `Quick test_cache_stats_accumulate;
  ]
