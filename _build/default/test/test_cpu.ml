let test_consume_advances_clock () =
  let t =
    Helpers.run_sim (fun engine ->
        let cpu = Sim.Cpu.create engine ~ctx_switch_cost:0. in
        Sim.Cpu.consume cpu 0.25;
        Sim.Engine.now engine)
  in
  Helpers.check_float ~msg:"time" 0.25 t

let test_serialization () =
  (* Two processes each needing 1s of CPU: total elapsed must be 2s. *)
  let engine = Sim.Engine.create () in
  let cpu = Sim.Cpu.create engine ~ctx_switch_cost:0. in
  let done_at = ref [] in
  for i = 1 to 2 do
    ignore
      (Sim.Proc.spawn engine ~name:(string_of_int i) (fun () ->
           Sim.Cpu.consume cpu 1.;
           done_at := Sim.Engine.now engine :: !done_at))
  done;
  ignore (Sim.Engine.run engine);
  match List.sort Float.compare !done_at with
  | [ a; b ] ->
      Helpers.check_float ~msg:"first finishes at 1s" 1. a;
      Helpers.check_float ~msg:"second finishes at 2s" 2. b
  | _ -> Alcotest.fail "expected two completions"

let test_switch_cost_charged () =
  let engine = Sim.Engine.create () in
  let cpu = Sim.Cpu.create engine ~ctx_switch_cost:0.5 in
  let finish = ref 0. in
  ignore
    (Sim.Proc.spawn engine ~name:"a" (fun () -> Sim.Cpu.consume cpu 1.));
  ignore
    (Sim.Proc.spawn engine ~name:"b" (fun () ->
         Sim.Cpu.consume cpu 1.;
         finish := Sim.Engine.now engine));
  ignore (Sim.Engine.run engine);
  (* a runs 1s (no switch from idle), b pays 0.5 switch + 1s. *)
  Helpers.check_float ~msg:"finish time includes switch" 2.5 !finish;
  Alcotest.(check int) "one switch" 1 (Sim.Cpu.switches cpu);
  Helpers.check_float ~msg:"busy time" 2.5 (Sim.Cpu.busy_time cpu)

let test_no_switch_same_process () =
  let engine = Sim.Engine.create () in
  let cpu = Sim.Cpu.create engine ~ctx_switch_cost:0.5 in
  ignore
    (Sim.Proc.spawn engine ~name:"a" (fun () ->
         for _ = 1 to 10 do
           Sim.Cpu.consume cpu 0.1
         done));
  ignore (Sim.Engine.run engine);
  Alcotest.(check int) "no switches" 0 (Sim.Cpu.switches cpu);
  Helpers.check_float ~msg:"busy" 1.0 (Sim.Cpu.busy_time cpu)

let test_run_to_block () =
  (* A process that keeps consuming without blocking retains the CPU even
     while another has queued work; the other runs when the first blocks. *)
  let engine = Sim.Engine.create () in
  let cpu = Sim.Cpu.create engine ~ctx_switch_cost:0.01 in
  let log = ref [] in
  ignore
    (Sim.Proc.spawn engine ~name:"hog" (fun () ->
         for i = 1 to 3 do
           Sim.Cpu.consume cpu 0.1;
           log := Printf.sprintf "hog%d" i :: !log
         done;
         Sim.Proc.delay 1.;
         Sim.Cpu.consume cpu 0.1;
         log := "hog-after-block" :: !log));
  ignore
    (Sim.Proc.spawn engine ~name:"other" (fun () ->
         Sim.Cpu.consume cpu 0.1;
         log := "other" :: !log));
  ignore (Sim.Engine.run engine);
  Alcotest.(check (list string))
    "hog runs to block, then other"
    [ "hog1"; "hog2"; "hog3"; "other"; "hog-after-block" ]
    (List.rev !log);
  Alcotest.(check int) "two switches (to other and back)" 2
    (Sim.Cpu.switches cpu)

let test_negative_rejected () =
  Helpers.run_sim (fun engine ->
      let cpu = Sim.Cpu.create engine ~ctx_switch_cost:0. in
      match Sim.Cpu.consume cpu (-0.1) with
      | () -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument _ -> ())

let test_utilization () =
  let engine = Sim.Engine.create () in
  let cpu = Sim.Cpu.create engine ~ctx_switch_cost:0. in
  ignore
    (Sim.Proc.spawn engine ~name:"a" (fun () ->
         Sim.Cpu.consume cpu 1.;
         Sim.Proc.delay 3.));
  ignore (Sim.Engine.run engine);
  Helpers.check_float ~msg:"25% busy" 0.25 (Sim.Cpu.utilization cpu ~elapsed:4.)

let test_zero_consume () =
  let t =
    Helpers.run_sim (fun engine ->
        let cpu = Sim.Cpu.create engine ~ctx_switch_cost:0. in
        Sim.Cpu.consume cpu 0.;
        Sim.Engine.now engine)
  in
  Helpers.check_float ~msg:"no time" 0. t

let suite =
  [
    Alcotest.test_case "consume advances clock" `Quick test_consume_advances_clock;
    Alcotest.test_case "FIFO serialization" `Quick test_serialization;
    Alcotest.test_case "switch cost charged" `Quick test_switch_cost_charged;
    Alcotest.test_case "same process never switches" `Quick
      test_no_switch_same_process;
    Alcotest.test_case "run-to-block scheduling" `Quick test_run_to_block;
    Alcotest.test_case "negative consume rejected" `Quick test_negative_rejected;
    Alcotest.test_case "utilization" `Quick test_utilization;
    Alcotest.test_case "zero-cost consume" `Quick test_zero_consume;
  ]
