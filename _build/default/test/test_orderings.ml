(* Qualitative reproduction invariants (DESIGN.md §4): small-scale
   versions of the paper's headline comparisons, asserted as orderings.
   These run full simulated experiments and are marked Slow. *)

let run ~profile ~server ~fileset ~trace ~warmup ~duration =
  Workload.Driver.run ~clients:48 ~warmup ~duration ~profile ~server ~fileset
    ~next:(fun i -> Workload.Trace.request_path trace i)
    ()

let cached_workload () =
  let fileset =
    Workload.Fileset.generate (Workload.Fileset.owlnet_like ~files:400 ~seed:3)
  in
  let trace = Workload.Trace.generate fileset ~length:20_000 ~alpha:1.0 ~seed:4 in
  (fileset, trace)

let disk_bound_workload () =
  let base =
    Workload.Fileset.generate (Workload.Fileset.ece_like ~files:9000 ~seed:31)
  in
  let fileset =
    Workload.Fileset.truncate base ~dataset_bytes:(145 * 1024 * 1024)
  in
  let trace = Workload.Trace.generate fileset ~length:40_000 ~alpha:0.9 ~seed:5 in
  (fileset, trace)

let mbps r = r.Workload.Driver.mbits_per_s

let test_cached_architectures_close () =
  let fileset, trace = cached_workload () in
  let go server =
    run ~profile:Simos.Os_profile.freebsd ~server ~fileset ~trace ~warmup:2.
      ~duration:3.
  in
  let flash = mbps (go Flash.Config.flash) in
  let sped = mbps (go Flash.Config.flash_sped) in
  let mp = mbps (go Flash.Config.flash_mp) in
  (* Architecture matters little when everything is cached (Figs 6/7). *)
  Alcotest.(check bool)
    (Printf.sprintf "SPED %.1f >= Flash %.1f (mincore overhead)" sped flash)
    true
    (sped >= flash *. 0.97);
  Alcotest.(check bool)
    (Printf.sprintf "Flash %.1f within 15%% of MP %.1f" flash mp)
    true
    (Float.abs (flash -. mp) /. flash < 0.15)

let test_apache_trails_cached () =
  let fileset, trace = cached_workload () in
  let go server =
    run ~profile:Simos.Os_profile.freebsd ~server ~fileset ~trace ~warmup:2.
      ~duration:3.
  in
  let flash = mbps (go Flash.Config.flash) in
  let apache = mbps (go Flash.Config.apache) in
  Alcotest.(check bool)
    (Printf.sprintf "Apache %.1f well below Flash %.1f" apache flash)
    true
    (apache < flash *. 0.7)

let test_disk_bound_sped_collapses () =
  let fileset, trace = disk_bound_workload () in
  let go server =
    run ~profile:Simos.Os_profile.freebsd ~server ~fileset ~trace ~warmup:15.
      ~duration:6.
  in
  let flash = mbps (go Flash.Config.flash) in
  let sped = mbps (go Flash.Config.flash_sped) in
  let mp = mbps (go Flash.Config.flash_mp) in
  Alcotest.(check bool)
    (Printf.sprintf "Flash %.1f > MP %.1f disk-bound" flash mp)
    true (flash > mp);
  Alcotest.(check bool)
    (Printf.sprintf "MP %.1f > SPED %.1f disk-bound" mp sped)
    true (mp > sped);
  Alcotest.(check bool)
    (Printf.sprintf "Flash %.1f >= 1.4x SPED %.1f" flash sped)
    true
    (flash >= sped *. 1.4)

let test_cache_ablation_hurts () =
  let fileset, trace = cached_workload () in
  let go server =
    run ~profile:Simos.Os_profile.freebsd ~server ~fileset ~trace ~warmup:2.
      ~duration:3.
  in
  let all = go Flash.Config.flash in
  let none =
    go
      (Flash.Config.with_caches Flash.Config.flash ~pathname:false ~mmap:false
         ~header:false)
  in
  Alcotest.(check bool)
    (Printf.sprintf "no caches %.0f req/s well below all %.0f req/s"
       none.Workload.Driver.requests_per_s all.Workload.Driver.requests_per_s)
    true
    (none.Workload.Driver.requests_per_s
    < all.Workload.Driver.requests_per_s *. 0.8)

let test_solaris_slower_than_freebsd () =
  let fileset, trace = cached_workload () in
  let go profile =
    run ~profile ~server:Flash.Config.flash ~fileset ~trace ~warmup:2.
      ~duration:3.
  in
  let freebsd = mbps (go Simos.Os_profile.freebsd) in
  let solaris = mbps (go Simos.Os_profile.solaris) in
  Alcotest.(check bool)
    (Printf.sprintf "Solaris %.1f below FreeBSD %.1f" solaris freebsd)
    true
    (solaris < freebsd *. 0.8)

let test_wan_mp_collapses () =
  let base =
    Workload.Fileset.generate (Workload.Fileset.ece_like ~files:9000 ~seed:31)
  in
  let fileset = Workload.Fileset.truncate base ~dataset_bytes:(80 * 1024 * 1024) in
  let trace = Workload.Trace.generate fileset ~length:30_000 ~alpha:0.9 ~seed:6 in
  let go server clients =
    let server =
      match server.Flash.Config.arch with
      | Flash.Config.Mp | Flash.Config.Mt ->
          { server with Flash.Config.processes = clients }
      | _ -> server
    in
    Workload.Driver.run ~clients ~persistent:true ~warmup:8. ~duration:5.
      ~profile:Simos.Os_profile.solaris ~server ~fileset
      ~next:(fun i -> Workload.Trace.request_path trace i)
      ()
  in
  let flash_small = mbps (go Flash.Config.flash 32) in
  let flash_large = mbps (go Flash.Config.flash 320) in
  let mp_small = mbps (go Flash.Config.flash_mp 32) in
  let mp_large = mbps (go Flash.Config.flash_mp 320) in
  (* Figure 12: AMPED stays flat; MP collapses with client count. *)
  Alcotest.(check bool)
    (Printf.sprintf "Flash flat: %.1f -> %.1f" flash_small flash_large)
    true
    (flash_large > flash_small *. 0.7);
  Alcotest.(check bool)
    (Printf.sprintf "MP collapses: %.1f -> %.1f" mp_small mp_large)
    true
    (mp_large < mp_small *. 0.5)

let suite =
  [
    Alcotest.test_case "cached: architectures close, SPED edges Flash" `Slow
      test_cached_architectures_close;
    Alcotest.test_case "cached: Apache trails" `Slow test_apache_trails_cached;
    Alcotest.test_case "disk-bound: Flash > MP > SPED" `Slow
      test_disk_bound_sped_collapses;
    Alcotest.test_case "caches off hurts throughput" `Slow
      test_cache_ablation_hurts;
    Alcotest.test_case "Solaris slower than FreeBSD" `Slow
      test_solaris_slower_than_freebsd;
    Alcotest.test_case "WAN: Flash flat, MP collapses" `Slow
      test_wan_mp_collapses;
  ]
