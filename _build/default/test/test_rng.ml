let test_determinism () =
  let a = Sim.Rng.create ~seed:123 in
  let b = Sim.Rng.create ~seed:123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Sim.Rng.bits64 a) (Sim.Rng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Sim.Rng.create ~seed:1 in
  let b = Sim.Rng.create ~seed:2 in
  Alcotest.(check bool) "different streams" false
    (Sim.Rng.bits64 a = Sim.Rng.bits64 b)

let test_split_independent () =
  let a = Sim.Rng.create ~seed:9 in
  let b = Sim.Rng.split a in
  let xa = Sim.Rng.bits64 a and xb = Sim.Rng.bits64 b in
  Alcotest.(check bool) "split differs" false (xa = xb)

let test_float_range () =
  let rng = Sim.Rng.create ~seed:5 in
  for _ = 1 to 10_000 do
    let f = Sim.Rng.float rng in
    if f < 0. || f >= 1. then Alcotest.failf "float out of range: %f" f
  done

let test_int_range () =
  let rng = Sim.Rng.create ~seed:6 in
  for _ = 1 to 10_000 do
    let v = Sim.Rng.int rng 17 in
    if v < 0 || v >= 17 then Alcotest.failf "int out of range: %d" v
  done

let test_int_invalid () =
  let rng = Sim.Rng.create ~seed:6 in
  Alcotest.check_raises "bound 0"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Sim.Rng.int rng 0))

let test_int_covers () =
  let rng = Sim.Rng.create ~seed:7 in
  let seen = Array.make 5 false in
  for _ = 1 to 1000 do
    seen.(Sim.Rng.int rng 5) <- true
  done;
  Alcotest.(check bool) "all values hit" true (Array.for_all Fun.id seen)

let test_uniform_range () =
  let rng = Sim.Rng.create ~seed:8 in
  for _ = 1 to 1000 do
    let v = Sim.Rng.uniform rng ~lo:3. ~hi:7. in
    if v < 3. || v >= 7. then Alcotest.failf "uniform out of range: %f" v
  done

let test_exponential_mean () =
  let rng = Sim.Rng.create ~seed:10 in
  let n = 50_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    let v = Sim.Rng.exponential rng ~mean:2.0 in
    if v < 0. then Alcotest.fail "negative exponential";
    sum := !sum +. v
  done;
  let mean = !sum /. float_of_int n in
  if mean < 1.9 || mean > 2.1 then Alcotest.failf "exponential mean %f" mean

let test_pareto_minimum () =
  let rng = Sim.Rng.create ~seed:11 in
  for _ = 1 to 10_000 do
    let v = Sim.Rng.pareto rng ~xm:100. ~alpha:1.5 in
    if v < 100. then Alcotest.failf "pareto below xm: %f" v
  done

let test_lognormal_positive () =
  let rng = Sim.Rng.create ~seed:12 in
  for _ = 1 to 10_000 do
    let v = Sim.Rng.lognormal rng ~mu:8. ~sigma:1.3 in
    if v <= 0. then Alcotest.failf "lognormal non-positive: %f" v
  done

let test_normal_moments () =
  let rng = Sim.Rng.create ~seed:13 in
  let n = 100_000 in
  let sum = ref 0. and sumsq = ref 0. in
  for _ = 1 to n do
    let v = Sim.Rng.normal rng in
    sum := !sum +. v;
    sumsq := !sumsq +. (v *. v)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sumsq /. float_of_int n) -. (mean *. mean) in
  if Float.abs mean > 0.02 then Alcotest.failf "normal mean %f" mean;
  if Float.abs (var -. 1.) > 0.05 then Alcotest.failf "normal var %f" var

let test_shuffle_permutation () =
  let rng = Sim.Rng.create ~seed:14 in
  let a = Array.init 50 Fun.id in
  Sim.Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "still a permutation" (Array.init 50 Fun.id) sorted

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "split independence" `Quick test_split_independent;
    Alcotest.test_case "float in [0,1)" `Quick test_float_range;
    Alcotest.test_case "int in range" `Quick test_int_range;
    Alcotest.test_case "int rejects bound 0" `Quick test_int_invalid;
    Alcotest.test_case "int covers range" `Quick test_int_covers;
    Alcotest.test_case "uniform range" `Quick test_uniform_range;
    Alcotest.test_case "exponential mean" `Slow test_exponential_mean;
    Alcotest.test_case "pareto minimum" `Quick test_pareto_minimum;
    Alcotest.test_case "lognormal positive" `Quick test_lognormal_positive;
    Alcotest.test_case "normal moments" `Slow test_normal_moments;
    Alcotest.test_case "shuffle is a permutation" `Quick test_shuffle_permutation;
  ]
