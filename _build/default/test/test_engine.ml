let test_schedule_order () =
  let engine = Sim.Engine.create () in
  let log = ref [] in
  Sim.Engine.schedule engine ~delay:2. (fun () -> log := 2 :: !log);
  Sim.Engine.schedule engine ~delay:1. (fun () -> log := 1 :: !log);
  Sim.Engine.schedule engine ~delay:3. (fun () -> log := 3 :: !log);
  ignore (Sim.Engine.run engine);
  Alcotest.(check (list int)) "fires by time" [ 1; 2; 3 ] (List.rev !log)

let test_same_time_fifo () =
  let engine = Sim.Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Sim.Engine.schedule engine ~delay:1. (fun () -> log := i :: !log)
  done;
  ignore (Sim.Engine.run engine);
  Alcotest.(check (list int)) "insertion order at equal time" [ 1; 2; 3; 4; 5 ]
    (List.rev !log)

let test_clock_advances () =
  let engine = Sim.Engine.create () in
  let seen = ref [] in
  Sim.Engine.schedule engine ~delay:0.5 (fun () ->
      seen := Sim.Engine.now engine :: !seen;
      Sim.Engine.schedule engine ~delay:0.25 (fun () ->
          seen := Sim.Engine.now engine :: !seen));
  ignore (Sim.Engine.run engine);
  match List.rev !seen with
  | [ a; b ] ->
      Helpers.check_float ~msg:"first" 0.5 a;
      Helpers.check_float ~msg:"second" 0.75 b
  | _ -> Alcotest.fail "expected two events"

let test_negative_delay_rejected () =
  let engine = Sim.Engine.create () in
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Engine.schedule: negative delay") (fun () ->
      Sim.Engine.schedule engine ~delay:(-1.) ignore)

let test_until_stops () =
  let engine = Sim.Engine.create () in
  let fired = ref 0 in
  for i = 1 to 10 do
    Sim.Engine.schedule engine ~delay:(float_of_int i) (fun () -> incr fired)
  done;
  let n = Sim.Engine.run ~until:5.5 engine in
  Alcotest.(check int) "events before limit" 5 n;
  Alcotest.(check int) "fired" 5 !fired;
  Helpers.check_float ~msg:"clock at limit" 5.5 (Sim.Engine.now engine);
  let n2 = Sim.Engine.run engine in
  Alcotest.(check int) "remaining events" 5 n2;
  Alcotest.(check int) "all fired" 10 !fired

let test_until_advances_clock_when_empty () =
  let engine = Sim.Engine.create () in
  ignore (Sim.Engine.run ~until:3. engine);
  Helpers.check_float ~msg:"clock" 3. (Sim.Engine.now engine)

let test_cancel () =
  let engine = Sim.Engine.create () in
  let fired = ref false in
  let ev = Sim.Engine.schedule_cancellable engine ~delay:1. (fun () -> fired := true) in
  Sim.Engine.cancel ev;
  ignore (Sim.Engine.run engine);
  Alcotest.(check bool) "cancelled event did not fire" false !fired

let test_cancel_after_fire_is_noop () =
  let engine = Sim.Engine.create () in
  let fired = ref 0 in
  let ev = Sim.Engine.schedule_cancellable engine (fun () -> incr fired) in
  ignore (Sim.Engine.run engine);
  Sim.Engine.cancel ev;
  Alcotest.(check int) "fired once" 1 !fired

let test_pending () =
  let engine = Sim.Engine.create () in
  Sim.Engine.schedule engine ~delay:1. ignore;
  Sim.Engine.schedule engine ~delay:2. ignore;
  Alcotest.(check int) "pending" 2 (Sim.Engine.pending engine)

let test_determinism_across_runs () =
  let trace seed =
    let engine = Sim.Engine.create ~seed () in
    let log = ref [] in
    let rec chain n delay =
      if n > 0 then
        Sim.Engine.schedule engine ~delay (fun () ->
            log := (n, Sim.Engine.now engine) :: !log;
            chain (n - 1) (Sim.Rng.float (Sim.Engine.rng engine)))
    in
    chain 20 0.1;
    ignore (Sim.Engine.run engine);
    !log
  in
  Alcotest.(check bool) "identical traces" true (trace 42 = trace 42)

let suite =
  [
    Alcotest.test_case "fires in time order" `Quick test_schedule_order;
    Alcotest.test_case "FIFO at equal time" `Quick test_same_time_fifo;
    Alcotest.test_case "clock advances to event time" `Quick test_clock_advances;
    Alcotest.test_case "negative delay rejected" `Quick test_negative_delay_rejected;
    Alcotest.test_case "run ~until stops and resumes" `Quick test_until_stops;
    Alcotest.test_case "run ~until advances idle clock" `Quick
      test_until_advances_clock_when_empty;
    Alcotest.test_case "cancel prevents firing" `Quick test_cancel;
    Alcotest.test_case "cancel after fire is no-op" `Quick
      test_cancel_after_fire_is_noop;
    Alcotest.test_case "pending count" `Quick test_pending;
    Alcotest.test_case "deterministic under a seed" `Quick
      test_determinism_across_runs;
  ]
