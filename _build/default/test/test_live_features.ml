(* Live-server feature tests: conditional GET, MT mode, access logs, and
   the client-side response parser. *)

(* ---------------- Response_parser (pure) ---------------- *)

module Rp = Http.Response_parser

let test_parse_head_basic () =
  let buf =
    "HTTP/1.0 200 OK\r\nServer: x\r\nContent-Length: 5\r\n\r\nhello"
  in
  match Rp.parse_head buf with
  | Rp.Head (head, consumed) ->
      Alcotest.(check int) "status" 200 head.Rp.status;
      Alcotest.(check string) "reason" "OK" head.Rp.reason;
      Alcotest.(check string) "version" "HTTP/1.0" head.Rp.version;
      Alcotest.(check (option string)) "header" (Some "5")
        (Rp.header head "Content-Length");
      Alcotest.(check string) "body follows" "hello"
        (String.sub buf consumed (String.length buf - consumed))
  | Rp.Incomplete | Rp.Bad _ -> Alcotest.fail "expected Head"

let test_parse_head_incomplete () =
  match Rp.parse_head "HTTP/1.0 200 OK\r\nServer" with
  | Rp.Incomplete -> ()
  | _ -> Alcotest.fail "expected Incomplete"

let test_parse_head_bad () =
  (match Rp.parse_head "NONSENSE\r\n\r\n" with
  | Rp.Bad _ -> ()
  | _ -> Alcotest.fail "expected Bad");
  match Rp.parse_head "HTTP/1.0 9999 Nope\r\n\r\n" with
  | Rp.Bad _ -> ()
  | _ -> Alcotest.fail "expected Bad on out-of-range code"

let test_framing () =
  let head ~status headers =
    { Rp.version = "HTTP/1.0"; status; reason = ""; headers }
  in
  (match Rp.body_framing (head ~status:200 [ ("content-length", "42") ])
           ~head_request:false with
  | Rp.Fixed 42 -> ()
  | _ -> Alcotest.fail "expected Fixed 42");
  (match Rp.body_framing (head ~status:200 []) ~head_request:false with
  | Rp.Until_close -> ()
  | _ -> Alcotest.fail "expected Until_close");
  (match Rp.body_framing (head ~status:200 [ ("content-length", "42") ])
           ~head_request:true with
  | Rp.No_body -> ()
  | _ -> Alcotest.fail "expected No_body for HEAD");
  match Rp.body_framing (head ~status:304 [ ("content-length", "42") ])
          ~head_request:false with
  | Rp.No_body -> ()
  | _ -> Alcotest.fail "expected No_body for 304"

let prop_parser_total =
  Helpers.qcheck_case ~count:300 ~name:"response parser total on bytes"
    QCheck.(string_gen_of_size (Gen.int_range 0 120) Gen.char)
    (fun s ->
      match Rp.parse_head s with
      | Rp.Head _ | Rp.Incomplete | Rp.Bad _ -> true)

(* ---------------- date parse/format roundtrip ---------------- *)

let test_date_parse_known () =
  Alcotest.(check (option (float 0.1))) "rfc example" (Some 784111777.)
    (Http.Http_date.parse "Sun, 06 Nov 1994 08:49:37 GMT")

let test_date_parse_bad () =
  Alcotest.(check (option (float 0.1))) "garbage" None
    (Http.Http_date.parse "yesterday-ish");
  Alcotest.(check (option (float 0.1))) "missing GMT" None
    (Http.Http_date.parse "Sun, 06 Nov 1994 08:49:37 PST")

let prop_date_roundtrip =
  Helpers.qcheck_case ~count:300 ~name:"format |> parse roundtrips"
    QCheck.(int_bound 2_000_000_000)
    (fun ts ->
      Http.Http_date.parse (Http.Http_date.format (float_of_int ts))
      = Some (float_of_int ts))

(* ---------------- live server features ---------------- *)

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let make_docroot () =
  let dir = Filename.temp_file "flash_feat" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  write_file (Filename.concat dir "page.html") "<html>content</html>";
  dir

let with_server ?access_log ?(mode = Flash_live.Server.Amped) f =
  let docroot = make_docroot () in
  let config =
    {
      (Flash_live.Server.default_config ~docroot) with
      Flash_live.Server.mode;
      access_log;
    }
  in
  let server = Flash_live.Server.start_background config in
  Fun.protect
    ~finally:(fun () -> Flash_live.Server.stop server)
    (fun () -> f server (Flash_live.Server.port server))

let test_conditional_get () =
  with_server (fun _ port ->
      let r1 = Flash_live.Client.get ~host:"127.0.0.1" ~port "/page.html" in
      Alcotest.(check int) "first fetch 200" 200 r1.Flash_live.Client.status;
      let last_modified =
        match List.assoc_opt "last-modified" r1.Flash_live.Client.headers with
        | Some d -> d
        | None -> Alcotest.fail "no Last-Modified header"
      in
      let r2 =
        Flash_live.Client.get
          ~headers:[ ("If-Modified-Since", last_modified) ]
          ~host:"127.0.0.1" ~port "/page.html"
      in
      Alcotest.(check int) "304 on unmodified" 304 r2.Flash_live.Client.status;
      Alcotest.(check string) "no body" "" r2.Flash_live.Client.body;
      (* A date before the mtime still yields the full entity. *)
      let r3 =
        Flash_live.Client.get
          ~headers:
            [ ("If-Modified-Since", Http.Http_date.format 0.) ]
          ~host:"127.0.0.1" ~port "/page.html"
      in
      Alcotest.(check int) "200 when modified since" 200
        r3.Flash_live.Client.status;
      (* Unparseable dates are ignored. *)
      let r4 =
        Flash_live.Client.get
          ~headers:[ ("If-Modified-Since", "not a date") ]
          ~host:"127.0.0.1" ~port "/page.html"
      in
      Alcotest.(check int) "200 on bad date" 200 r4.Flash_live.Client.status)

let test_mt_mode () =
  with_server ~mode:(Flash_live.Server.Mt 3) (fun _ port ->
      let results = Array.make 6 0 in
      let threads =
        List.init 6 (fun i ->
            Thread.create
              (fun () ->
                let r =
                  Flash_live.Client.get ~host:"127.0.0.1" ~port "/page.html"
                in
                if
                  r.Flash_live.Client.status = 200
                  && r.Flash_live.Client.body = "<html>content</html>"
                then results.(i) <- 1)
              ())
      in
      List.iter Thread.join threads;
      Alcotest.(check int) "all served by MT workers" 6
        (Array.fold_left ( + ) 0 results))

let test_access_log () =
  let log_file = Filename.temp_file "flash_access" ".log" in
  with_server ~access_log:log_file (fun _ port ->
      ignore (Flash_live.Client.get ~host:"127.0.0.1" ~port "/page.html");
      ignore (Flash_live.Client.get ~host:"127.0.0.1" ~port "/missing.html"));
  let ic = open_in log_file in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  let lines = List.rev !lines in
  Alcotest.(check int) "two log lines" 2 (List.length lines);
  (match lines with
  | [ ok_line; err_line ] ->
      Alcotest.(check bool) "200 logged" true
        (Helpers.contains ~affix:"\" 200 " ok_line);
      Alcotest.(check bool) "path logged" true
        (Helpers.contains ~affix:"GET /page.html" ok_line);
      Alcotest.(check bool) "404 logged" true
        (Helpers.contains ~affix:"\" 404 " err_line)
  | _ -> Alcotest.fail "expected exactly two lines");
  Sys.remove log_file

let suite =
  [
    Alcotest.test_case "response parser basics" `Quick test_parse_head_basic;
    Alcotest.test_case "response parser incomplete" `Quick
      test_parse_head_incomplete;
    Alcotest.test_case "response parser rejects garbage" `Quick test_parse_head_bad;
    Alcotest.test_case "body framing rules" `Quick test_framing;
    prop_parser_total;
    Alcotest.test_case "date parse known value" `Quick test_date_parse_known;
    Alcotest.test_case "date parse rejects garbage" `Quick test_date_parse_bad;
    prop_date_roundtrip;
    Alcotest.test_case "conditional GET / 304" `Quick test_conditional_get;
    Alcotest.test_case "MT mode serves concurrently" `Quick test_mt_mode;
    Alcotest.test_case "access log written" `Quick test_access_log;
  ]
