(* ---------------- Zipf ---------------- *)

let test_zipf_probabilities_sum () =
  let z = Workload.Zipf.create ~n:100 ~alpha:0.9 in
  let total = ref 0. in
  for r = 0 to 99 do
    total := !total +. Workload.Zipf.probability z r
  done;
  Helpers.check_float ~msg:"sums to 1" ~eps:1e-9 1.0 !total

let test_zipf_monotone () =
  let z = Workload.Zipf.create ~n:50 ~alpha:1.0 in
  for r = 1 to 49 do
    if Workload.Zipf.probability z r > Workload.Zipf.probability z (r - 1) then
      Alcotest.failf "rank %d more popular than %d" r (r - 1)
  done

let test_zipf_sampling_skew () =
  let z = Workload.Zipf.create ~n:1000 ~alpha:1.0 in
  let rng = Sim.Rng.create ~seed:3 in
  let top10 = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Workload.Zipf.sample z rng < 10 then incr top10
  done;
  let frac = float_of_int !top10 /. float_of_int n in
  (* With alpha=1 over 1000 ranks, the top 10 carry ~39% of requests. *)
  if frac < 0.3 || frac > 0.5 then Alcotest.failf "top-10 fraction %f" frac

let test_zipf_alpha_zero_uniform () =
  let z = Workload.Zipf.create ~n:4 ~alpha:0. in
  for r = 0 to 3 do
    Helpers.check_float ~msg:"uniform" ~eps:1e-9 0.25 (Workload.Zipf.probability z r)
  done

let prop_zipf_sample_range =
  Helpers.qcheck_case ~name:"zipf samples within range"
    QCheck.(pair (int_range 1 200) (float_range 0. 2.))
    (fun (n, alpha) ->
      let z = Workload.Zipf.create ~n ~alpha in
      let rng = Sim.Rng.create ~seed:1 in
      let ok = ref true in
      for _ = 1 to 100 do
        let s = Workload.Zipf.sample z rng in
        if s < 0 || s >= n then ok := false
      done;
      !ok)

(* ---------------- Fileset ---------------- *)

let test_fileset_deterministic () =
  let a = Workload.Fileset.generate (Workload.Fileset.cs_like ~files:100 ~seed:5) in
  let b = Workload.Fileset.generate (Workload.Fileset.cs_like ~files:100 ~seed:5) in
  Alcotest.(check bool) "same sizes" true (a.Workload.Fileset.sizes = b.Workload.Fileset.sizes);
  Alcotest.(check bool) "same paths" true (a.Workload.Fileset.paths = b.Workload.Fileset.paths)

let test_fileset_sizes_bounded () =
  let spec = Workload.Fileset.ece_like ~files:500 ~seed:6 in
  let fs = Workload.Fileset.generate spec in
  Array.iter
    (fun s ->
      if s < spec.Workload.Fileset.min_size || s > spec.Workload.Fileset.max_size
      then Alcotest.failf "size %d out of bounds" s)
    fs.Workload.Fileset.sizes

let test_fileset_unique_paths () =
  let fs =
    Workload.Fileset.generate (Workload.Fileset.owlnet_like ~files:300 ~seed:7)
  in
  let seen = Hashtbl.create 300 in
  Array.iter
    (fun p ->
      if Hashtbl.mem seen p then Alcotest.failf "duplicate path %s" p;
      Hashtbl.replace seen p ())
    fs.Workload.Fileset.paths

let test_fileset_truncate () =
  let fs =
    Workload.Fileset.generate (Workload.Fileset.ece_like ~files:1000 ~seed:8)
  in
  let target = Workload.Fileset.total_bytes fs / 3 in
  let truncated = Workload.Fileset.truncate fs ~dataset_bytes:target in
  Alcotest.(check bool) "within target" true
    (Workload.Fileset.total_bytes truncated <= target);
  Alcotest.(check bool) "non-empty" true (Workload.Fileset.file_count truncated > 0);
  (* Prefix property: kept files are the head of the original. *)
  Alcotest.(check string) "prefix kept"
    fs.Workload.Fileset.paths.(0)
    truncated.Workload.Fileset.paths.(0)

let prop_truncate_monotone =
  Helpers.qcheck_case ~count:50 ~name:"larger targets keep more files"
    QCheck.(pair (int_range 10_000 5_000_000) (int_range 10_000 5_000_000))
    (fun (t1, t2) ->
      let fs =
        Workload.Fileset.generate (Workload.Fileset.ece_like ~files:300 ~seed:9)
      in
      let small = min t1 t2 and large = max t1 t2 in
      Workload.Fileset.file_count (Workload.Fileset.truncate fs ~dataset_bytes:small)
      <= Workload.Fileset.file_count
           (Workload.Fileset.truncate fs ~dataset_bytes:large))

let test_fileset_install () =
  Helpers.run_sim (fun engine ->
      let kernel = Simos.Kernel.create engine Simos.Os_profile.freebsd in
      let fs =
        Workload.Fileset.generate (Workload.Fileset.owlnet_like ~files:50 ~seed:10)
      in
      let files = Workload.Fileset.install fs (Simos.Kernel.fs kernel) in
      Alcotest.(check int) "all installed" 50 (Array.length files);
      Alcotest.(check int) "fs agrees" 50
        (Simos.Fs.file_count (Simos.Kernel.fs kernel)))

(* ---------------- Trace ---------------- *)

let test_trace_deterministic () =
  let fs = Workload.Fileset.generate (Workload.Fileset.cs_like ~files:100 ~seed:1) in
  let a = Workload.Trace.generate fs ~length:1000 ~alpha:1.0 ~seed:2 in
  let b = Workload.Trace.generate fs ~length:1000 ~alpha:1.0 ~seed:2 in
  Alcotest.(check bool) "same stream" true
    (a.Workload.Trace.requests = b.Workload.Trace.requests)

let test_trace_paths_valid () =
  let fs = Workload.Fileset.generate (Workload.Fileset.cs_like ~files:100 ~seed:1) in
  let t = Workload.Trace.generate fs ~length:500 ~alpha:0.9 ~seed:3 in
  for i = 0 to 499 do
    let p = Workload.Trace.request_path t i in
    Alcotest.(check bool) "path exists in fileset" true
      (Array.exists (( = ) p) fs.Workload.Fileset.paths)
  done

let test_trace_wraps () =
  let fs = Workload.Fileset.generate (Workload.Fileset.cs_like ~files:10 ~seed:1) in
  let t = Workload.Trace.generate fs ~length:7 ~alpha:1.0 ~seed:4 in
  Alcotest.(check string) "wraparound" (Workload.Trace.request_path t 0)
    (Workload.Trace.request_path t 7)

let test_trace_footprint_bounds () =
  let fs = Workload.Fileset.generate (Workload.Fileset.cs_like ~files:50 ~seed:1) in
  let t = Workload.Trace.generate fs ~length:2000 ~alpha:0.8 ~seed:5 in
  let fp = Workload.Trace.footprint_bytes t in
  Alcotest.(check bool) "positive" true (fp > 0);
  Alcotest.(check bool) "at most total" true
    (fp <= Workload.Fileset.total_bytes fs);
  Alcotest.(check bool) "distinct at most files" true
    (Workload.Trace.distinct_files t <= 50);
  Alcotest.(check bool) "mean transfer positive" true
    (Workload.Trace.mean_transfer t > 0.)

(* ---------------- CLF export / import ---------------- *)

let test_clf_line_parse () =
  Alcotest.(check (option (pair string int)))
    "well-formed"
    (Some ("/a/b.html", 1234))
    (Workload.Trace.parse_clf_line
       "10.0.0.1 - - [Sun, 06 Nov 1994 08:49:37 GMT] \"GET /a/b.html HTTP/1.0\" 200 1234");
  Alcotest.(check (option (pair string int))) "garbage" None
    (Workload.Trace.parse_clf_line "not a log line");
  Alcotest.(check (option (pair string int))) "bad bytes" None
    (Workload.Trace.parse_clf_line
       "10.0.0.1 - - [d] \"GET /x HTTP/1.0\" 200 many")

let test_clf_roundtrip () =
  let fileset =
    Workload.Fileset.generate (Workload.Fileset.owlnet_like ~files:50 ~seed:17)
  in
  let trace = Workload.Trace.generate fileset ~length:500 ~alpha:1.0 ~seed:18 in
  let path = Filename.temp_file "flash_clf" ".log" in
  Workload.Trace.save_clf trace ~path;
  let loaded = Workload.Trace.load_clf ~path in
  Sys.remove path;
  Alcotest.(check int) "same length" (Workload.Trace.length trace)
    (Workload.Trace.length loaded);
  (* Same request sequence (paths and sizes). *)
  for i = 0 to 499 do
    Alcotest.(check string)
      (Printf.sprintf "path %d" i)
      (Workload.Trace.request_path trace i)
      (Workload.Trace.request_path loaded i);
    Alcotest.(check int)
      (Printf.sprintf "size %d" i)
      (Workload.Trace.request_size trace i)
      (Workload.Trace.request_size loaded i)
  done

let test_clf_load_replayable () =
  (* A loaded trace must install and replay against a simulated server. *)
  let fileset =
    Workload.Fileset.generate (Workload.Fileset.owlnet_like ~files:20 ~seed:19)
  in
  let trace = Workload.Trace.generate fileset ~length:200 ~alpha:1.0 ~seed:20 in
  let path = Filename.temp_file "flash_clf2" ".log" in
  Workload.Trace.save_clf trace ~path;
  let loaded = Workload.Trace.load_clf ~path in
  Sys.remove path;
  let r =
    Workload.Driver.run ~clients:4 ~warmup:0.5 ~duration:1.
      ~profile:Simos.Os_profile.freebsd ~server:Flash.Config.flash
      ~fileset:loaded.Workload.Trace.fileset
      ~next:(fun i -> Workload.Trace.request_path loaded i)
      ()
  in
  Alcotest.(check int) "no errors replaying imported log" 0
    r.Workload.Driver.errors;
  Alcotest.(check bool) "throughput positive" true
    (r.Workload.Driver.requests_per_s > 0.)

(* ---------------- Driver ---------------- *)

let test_driver_single_file_run () =
  let fileset =
    {
      Workload.Fileset.spec = Workload.Fileset.owlnet_like ~files:1 ~seed:1;
      paths = [| "/one.html" |];
      sizes = [| 8192 |];
    }
  in
  let r =
    Workload.Driver.run ~clients:8 ~warmup:0.5 ~duration:1.5
      ~profile:Simos.Os_profile.freebsd ~server:Flash.Config.flash ~fileset
      ~next:(fun _ -> "/one.html")
      ()
  in
  Alcotest.(check bool) "throughput positive" true (r.Workload.Driver.mbits_per_s > 0.);
  Alcotest.(check bool) "requests positive" true
    (r.Workload.Driver.requests_per_s > 100.);
  Alcotest.(check int) "no errors" 0 r.Workload.Driver.errors;
  Alcotest.(check string) "label" "Flash" r.Workload.Driver.label;
  Alcotest.(check bool) "latency percentiles sane" true
    (r.Workload.Driver.latency_p50_ms > 0.
    && r.Workload.Driver.latency_p50_ms <= r.Workload.Driver.latency_p95_ms)

let test_driver_deterministic () =
  let fileset =
    Workload.Fileset.generate (Workload.Fileset.owlnet_like ~files:20 ~seed:2)
  in
  let trace = Workload.Trace.generate fileset ~length:1000 ~alpha:1.0 ~seed:3 in
  let go () =
    Workload.Driver.run ~seed:42 ~clients:8 ~warmup:0.5 ~duration:1.
      ~profile:Simos.Os_profile.freebsd ~server:Flash.Config.flash_sped ~fileset
      ~next:(fun i -> Workload.Trace.request_path trace i)
      ()
  in
  let a = go () and b = go () in
  Alcotest.(check int) "identical completions" a.Workload.Driver.completed
    b.Workload.Driver.completed

let test_driver_persistent_mode () =
  let fileset =
    Workload.Fileset.generate (Workload.Fileset.owlnet_like ~files:10 ~seed:4)
  in
  let trace = Workload.Trace.generate fileset ~length:500 ~alpha:1.0 ~seed:5 in
  let r =
    Workload.Driver.run ~clients:4 ~persistent:true ~warmup:0.5 ~duration:1.
      ~profile:Simos.Os_profile.freebsd ~server:Flash.Config.flash ~fileset
      ~next:(fun i -> Workload.Trace.request_path trace i)
      ()
  in
  Alcotest.(check bool) "served" true (r.Workload.Driver.completed > 0)

let suite =
  [
    Alcotest.test_case "zipf probabilities sum to 1" `Quick test_zipf_probabilities_sum;
    Alcotest.test_case "zipf monotone" `Quick test_zipf_monotone;
    Alcotest.test_case "zipf sampling skew" `Quick test_zipf_sampling_skew;
    Alcotest.test_case "zipf alpha=0 uniform" `Quick test_zipf_alpha_zero_uniform;
    prop_zipf_sample_range;
    Alcotest.test_case "fileset deterministic" `Quick test_fileset_deterministic;
    Alcotest.test_case "fileset sizes bounded" `Quick test_fileset_sizes_bounded;
    Alcotest.test_case "fileset unique paths" `Quick test_fileset_unique_paths;
    Alcotest.test_case "fileset truncate" `Quick test_fileset_truncate;
    prop_truncate_monotone;
    Alcotest.test_case "fileset install" `Quick test_fileset_install;
    Alcotest.test_case "trace deterministic" `Quick test_trace_deterministic;
    Alcotest.test_case "trace paths valid" `Quick test_trace_paths_valid;
    Alcotest.test_case "trace wraps around" `Quick test_trace_wraps;
    Alcotest.test_case "trace footprint bounds" `Quick test_trace_footprint_bounds;
    Alcotest.test_case "CLF line parsing" `Quick test_clf_line_parse;
    Alcotest.test_case "CLF roundtrip" `Quick test_clf_roundtrip;
    Alcotest.test_case "imported log replayable" `Slow test_clf_load_replayable;
    Alcotest.test_case "driver single-file run" `Slow test_driver_single_file_run;
    Alcotest.test_case "driver deterministic" `Slow test_driver_deterministic;
    Alcotest.test_case "driver persistent mode" `Slow test_driver_persistent_mode;
  ]
