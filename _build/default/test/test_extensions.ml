(* Tests for the paper's §5.6 (dynamic content) and §5.7 (residency
   heuristic) features, plus the scheduler/ref-bit details they rely on. *)

(* ---------------- Residency predictor (§5.7) ---------------- *)

let make_file kernel path size =
  Simos.Fs.add_file (Simos.Kernel.fs kernel) ~path ~size

let test_residency_basic () =
  Helpers.run_sim (fun engine ->
      let kernel = Simos.Kernel.create engine Simos.Os_profile.freebsd in
      let p =
        Flash.Residency.create ~initial_bytes:(1 lsl 20) ~min_bytes:65536
          ~max_bytes:(1 lsl 22)
      in
      let f = make_file kernel "/r.bin" 200_000 in
      Alcotest.(check bool) "unknown range not believed" false
        (Flash.Residency.predict_resident p f ~off:0 ~len:65536);
      Flash.Residency.note_access p f ~off:0 ~len:65536;
      Alcotest.(check bool) "accessed range believed" true
        (Flash.Residency.predict_resident p f ~off:0 ~len:65536);
      Alcotest.(check bool) "other range still unknown" false
        (Flash.Residency.predict_resident p f ~off:130_000 ~len:65536))

let test_residency_fault_shrinks () =
  Helpers.run_sim (fun engine ->
      let kernel = Simos.Kernel.create engine Simos.Os_profile.freebsd in
      let p =
        Flash.Residency.create ~initial_bytes:(1 lsl 20) ~min_bytes:65536
          ~max_bytes:(1 lsl 22)
      in
      let f = make_file kernel "/s.bin" 200_000 in
      Flash.Residency.note_access p f ~off:0 ~len:65536;
      let before = Flash.Residency.assumed_bytes p in
      Flash.Residency.note_fault p f ~off:0 ~len:65536;
      Alcotest.(check bool) "assumed size shrank" true
        (Flash.Residency.assumed_bytes p < before);
      Alcotest.(check bool) "faulted range forgotten" false
        (Flash.Residency.predict_resident p f ~off:0 ~len:65536);
      Alcotest.(check int) "fault counted" 1 (Flash.Residency.faults p))

let test_residency_correct_grows () =
  Helpers.run_sim (fun _ ->
      let p =
        Flash.Residency.create ~initial_bytes:(1 lsl 20) ~min_bytes:65536
          ~max_bytes:(1 lsl 22)
      in
      let before = Flash.Residency.assumed_bytes p in
      Flash.Residency.note_correct p;
      Alcotest.(check bool) "assumed size grew" true
        (Flash.Residency.assumed_bytes p > before))

let test_residency_bounds () =
  Helpers.run_sim (fun engine ->
      let kernel = Simos.Kernel.create engine Simos.Os_profile.freebsd in
      let min_bytes = 65536 in
      let p =
        Flash.Residency.create ~initial_bytes:131072 ~min_bytes
          ~max_bytes:262144
      in
      let f = make_file kernel "/b.bin" 65536 in
      for _ = 1 to 50 do
        Flash.Residency.note_access p f ~off:0 ~len:65536;
        Flash.Residency.note_fault p f ~off:0 ~len:65536
      done;
      Alcotest.(check int) "floor respected" min_bytes
        (Flash.Residency.assumed_bytes p);
      for _ = 1 to 100 do
        Flash.Residency.note_correct p
      done;
      Alcotest.(check bool) "ceiling respected" true
        (Flash.Residency.assumed_bytes p <= 262144))

let test_residency_lru_forgetting () =
  Helpers.run_sim (fun engine ->
      let kernel = Simos.Kernel.create engine Simos.Os_profile.freebsd in
      (* Capacity for two 64 KB slots only. *)
      let p =
        Flash.Residency.create ~initial_bytes:131072 ~min_bytes:65536
          ~max_bytes:131072
      in
      let a = make_file kernel "/a.bin" 65536 in
      let b = make_file kernel "/bb.bin" 65536 in
      let c = make_file kernel "/cc.bin" 65536 in
      Flash.Residency.note_access p a ~off:0 ~len:65536;
      Flash.Residency.note_access p b ~off:0 ~len:65536;
      Flash.Residency.note_access p c ~off:0 ~len:65536;
      Alcotest.(check bool) "oldest belief evicted" false
        (Flash.Residency.predict_resident p a ~off:0 ~len:65536);
      Alcotest.(check bool) "newest belief kept" true
        (Flash.Residency.predict_resident p c ~off:0 ~len:65536))

(* Flash-H end-to-end: serves correctly, never spawns helpers for data
   it believes resident, and still works when beliefs are wrong. *)
let test_flash_heuristic_serves () =
  let engine = Sim.Engine.create ~seed:11 () in
  let kernel = Simos.Kernel.create engine Simos.Os_profile.freebsd in
  let files =
    List.init 20 (fun i ->
        Simos.Fs.add_file (Simos.Kernel.fs kernel)
          ~path:(Printf.sprintf "/h/f%d.bin" i)
          ~size:100_000)
  in
  ignore files;
  let server = Flash.Server.start kernel Flash.Config.flash_heuristic in
  let net = Simos.Kernel.net kernel in
  let done_count = ref 0 in
  for i = 0 to 19 do
    ignore
      (Sim.Proc.spawn engine ~name:(Printf.sprintf "cl%d" i) (fun () ->
           let c = Simos.Net.connect net ~link_rate:12.5e6 ~rtt:0.0003 in
           Simos.Net.client_send c
             (Printf.sprintf "GET /h/f%d.bin HTTP/1.0\r\n\r\n" i);
           (match Simos.Net.client_await_response c with
           | `Ok -> incr done_count
           | `Closed -> ());
           Simos.Net.client_close c))
  done;
  ignore (Sim.Engine.run ~until:20. engine);
  Alcotest.(check int) "all served" 20 !done_count;
  Alcotest.(check int) "no errors" 0 (Flash.Server.errors server)

(* ---------------- CGI (§5.6) ---------------- *)

let cgi_config = { Flash.Config.cgi_cpu = 1e-3; cgi_think = 5e-3; cgi_bytes = 2048 }

let run_cgi_request config =
  let engine = Sim.Engine.create ~seed:3 () in
  let kernel = Simos.Kernel.create engine Simos.Os_profile.freebsd in
  let config = { config with Flash.Config.cgi = Some cgi_config } in
  let server = Flash.Server.start kernel config in
  let net = Simos.Kernel.net kernel in
  let outcome = ref None in
  let bytes = ref 0 in
  ignore
    (Sim.Proc.spawn engine ~name:"client" (fun () ->
         let c = Simos.Net.connect net ~link_rate:12.5e6 ~rtt:0.0003 in
         Simos.Net.client_send c "GET /cgi-bin/report?x=1 HTTP/1.0\r\n\r\n";
         outcome := Some (Simos.Net.client_await_response c);
         bytes := Simos.Net.delivered_bytes net;
         Simos.Net.client_close c));
  ignore (Sim.Engine.run ~until:5. engine);
  (server, !outcome, !bytes)

let test_cgi_served_by_arch config () =
  let server, outcome, bytes = run_cgi_request config in
  Alcotest.(check bool) "response completed" true (outcome = Some `Ok);
  Alcotest.(check bool)
    (Printf.sprintf "body at least cgi_bytes (%d)" bytes)
    true
    (bytes >= cgi_config.Flash.Config.cgi_bytes);
  Alcotest.(check int) "no errors" 0 (Flash.Server.errors server);
  Alcotest.(check int) "completed" 1 (Flash.Server.completed server)

let test_cgi_disabled_forbidden () =
  let engine = Sim.Engine.create ~seed:3 () in
  let kernel = Simos.Kernel.create engine Simos.Os_profile.freebsd in
  let config = { Flash.Config.flash with Flash.Config.cgi = None } in
  let server = Flash.Server.start kernel config in
  let net = Simos.Kernel.net kernel in
  let outcome = ref None in
  ignore
    (Sim.Proc.spawn engine ~name:"client" (fun () ->
         let c = Simos.Net.connect net ~link_rate:12.5e6 ~rtt:0.0003 in
         Simos.Net.client_send c "GET /cgi-bin/x HTTP/1.0\r\n\r\n";
         outcome := Some (Simos.Net.client_await_response c);
         Simos.Net.client_close c));
  ignore (Sim.Engine.run ~until:5. engine);
  Alcotest.(check bool) "got a response" true (!outcome = Some `Ok);
  Alcotest.(check int) "403 counted" 1 (Flash.Server.errors server)

(* The AMPED loop must keep serving static content while a CGI app is
   blocked in its think time. *)
let test_cgi_does_not_block_amped () =
  let engine = Sim.Engine.create ~seed:5 () in
  let kernel = Simos.Kernel.create engine Simos.Os_profile.freebsd in
  let slow_cgi =
    { Flash.Config.cgi_cpu = 1e-4; cgi_think = 0.5; cgi_bytes = 1024 }
  in
  let config = { Flash.Config.flash with Flash.Config.cgi = Some slow_cgi } in
  let server = Flash.Server.start kernel config in
  ignore server;
  ignore (Simos.Fs.add_file (Simos.Kernel.fs kernel) ~path:"/fast.html" ~size:2000);
  Simos.Fs.warm (Simos.Kernel.fs kernel)
    (Option.get (Simos.Fs.find (Simos.Kernel.fs kernel) "/fast.html"));
  let net = Simos.Kernel.net kernel in
  let static_done_at = ref nan in
  let cgi_done_at = ref nan in
  ignore
    (Sim.Proc.spawn engine ~name:"cgi-client" (fun () ->
         let c = Simos.Net.connect net ~link_rate:12.5e6 ~rtt:0.0003 in
         Simos.Net.client_send c "GET /cgi-bin/slow HTTP/1.0\r\n\r\n";
         (match Simos.Net.client_await_response c with _ -> ());
         cgi_done_at := Sim.Engine.now engine;
         Simos.Net.client_close c));
  ignore
    (Sim.Proc.spawn engine ~name:"static-client" (fun () ->
         (* Arrive while the CGI app is thinking. *)
         Sim.Proc.delay 0.05;
         let c = Simos.Net.connect net ~link_rate:12.5e6 ~rtt:0.0003 in
         Simos.Net.client_send c "GET /fast.html HTTP/1.0\r\n\r\n";
         (match Simos.Net.client_await_response c with _ -> ());
         static_done_at := Sim.Engine.now engine;
         Simos.Net.client_close c));
  ignore (Sim.Engine.run ~until:3. engine);
  Alcotest.(check bool) "both completed" true
    ((not (Float.is_nan !static_done_at)) && not (Float.is_nan !cgi_done_at));
  Alcotest.(check bool)
    (Printf.sprintf "static (%.3fs) finished before cgi (%.3fs)"
       !static_done_at !cgi_done_at)
    true
    (!static_done_at < !cgi_done_at)

let test_cgi_app_persistent () =
  let engine = Sim.Engine.create ~seed:5 () in
  let kernel = Simos.Kernel.create engine Simos.Os_profile.freebsd in
  let config = { Flash.Config.flash with Flash.Config.cgi = Some cgi_config } in
  let server = Flash.Server.start kernel config in
  let net = Simos.Kernel.net kernel in
  for i = 1 to 5 do
    ignore
      (Sim.Proc.spawn engine ~name:(Printf.sprintf "c%d" i) (fun () ->
           Sim.Proc.delay (0.1 *. float_of_int i);
           let c = Simos.Net.connect net ~link_rate:12.5e6 ~rtt:0.0003 in
           Simos.Net.client_send c "GET /cgi-bin/same HTTP/1.0\r\n\r\n";
           (match Simos.Net.client_await_response c with _ -> ());
           Simos.Net.client_close c))
  done;
  ignore (Sim.Engine.run ~until:5. engine);
  Alcotest.(check int) "five responses" 5 (Flash.Server.completed server)

(* ---------------- scheduler / ref-bit details ---------------- *)

let test_cpu_reschedule_charges_switch () =
  let engine = Sim.Engine.create () in
  let cpu = Sim.Cpu.create engine ~ctx_switch_cost:0.5 in
  ignore
    (Sim.Proc.spawn engine ~name:"a" (fun () ->
         Sim.Cpu.consume cpu 1.;
         Sim.Cpu.reschedule cpu;
         Sim.Cpu.consume cpu 1.));
  ignore (Sim.Engine.run engine);
  Alcotest.(check int) "switch charged after reschedule" 1
    (Sim.Cpu.switches cpu);
  Helpers.check_float ~msg:"busy includes switch" 2.5 (Sim.Cpu.busy_time cpu)

let test_buffer_cache_reference () =
  let memory =
    Simos.Memory.create ~total_bytes:(3 * 8192) ~min_cache_bytes:8192
  in
  let cache = Simos.Buffer_cache.create ~memory ~page_size:8192 in
  let fp page = Simos.Buffer_cache.File_page { inode = 1; page } in
  ignore (Simos.Buffer_cache.touch cache (fp 0));
  ignore (Simos.Buffer_cache.touch cache (fp 1));
  ignore (Simos.Buffer_cache.touch cache (fp 2));
  (* One insert clears all bits and evicts page 0 (FIFO when all set). *)
  ignore (Simos.Buffer_cache.touch cache (fp 3));
  (* reference page 1 without touch: it must survive the next sweep. *)
  Simos.Buffer_cache.reference cache (fp 1);
  ignore (Simos.Buffer_cache.touch cache (fp 4));
  Alcotest.(check bool) "referenced page survives" true
    (Simos.Buffer_cache.resident cache (fp 1));
  Alcotest.(check bool) "unreferenced page evicted" false
    (Simos.Buffer_cache.resident cache (fp 2));
  (* referencing an absent key is a no-op *)
  Simos.Buffer_cache.reference cache (fp 99)

let suite =
  [
    Alcotest.test_case "residency: basic belief tracking" `Quick
      test_residency_basic;
    Alcotest.test_case "residency: fault shrinks estimate" `Quick
      test_residency_fault_shrinks;
    Alcotest.test_case "residency: correct grows estimate" `Quick
      test_residency_correct_grows;
    Alcotest.test_case "residency: bounds respected" `Quick test_residency_bounds;
    Alcotest.test_case "residency: LRU forgetting" `Quick
      test_residency_lru_forgetting;
    Alcotest.test_case "Flash-H serves end-to-end" `Quick
      test_flash_heuristic_serves;
    Alcotest.test_case "CGI on AMPED" `Quick
      (test_cgi_served_by_arch Flash.Config.flash);
    Alcotest.test_case "CGI on SPED" `Quick
      (test_cgi_served_by_arch Flash.Config.flash_sped);
    Alcotest.test_case "CGI on MP" `Quick
      (test_cgi_served_by_arch Flash.Config.flash_mp);
    Alcotest.test_case "CGI on MT" `Quick
      (test_cgi_served_by_arch Flash.Config.flash_mt);
    Alcotest.test_case "CGI disabled yields 403" `Quick test_cgi_disabled_forbidden;
    Alcotest.test_case "CGI think time does not block AMPED" `Quick
      test_cgi_does_not_block_amped;
    Alcotest.test_case "CGI app persists across requests" `Quick
      test_cgi_app_persistent;
    Alcotest.test_case "Cpu.reschedule charges a switch" `Quick
      test_cpu_reschedule_charges_switch;
    Alcotest.test_case "buffer cache reference bit" `Quick
      test_buffer_cache_reference;
  ]
