(* Config presets and Os_profile sanity. *)

let test_presets_sane () =
  List.iter
    (fun (c : Flash.Config.t) ->
      if c.Flash.Config.processes < 1 then
        Alcotest.failf "%s: processes < 1" c.Flash.Config.label;
      if c.Flash.Config.io_chunk <= 0 then
        Alcotest.failf "%s: io_chunk <= 0" c.Flash.Config.label;
      if c.Flash.Config.mmap_chunk_bytes <= 0 then
        Alcotest.failf "%s: mmap_chunk_bytes <= 0" c.Flash.Config.label)
    Flash.Config.all_servers

let test_architectures () =
  Alcotest.(check bool) "flash is AMPED" true
    (Flash.Config.flash.Flash.Config.arch = Flash.Config.Amped);
  Alcotest.(check bool) "sped has no helpers" true
    (Flash.Config.flash_sped.Flash.Config.max_helpers = 0);
  Alcotest.(check int) "MP runs 32 processes" 32
    Flash.Config.flash_mp.Flash.Config.processes;
  Alcotest.(check int) "MT runs 32 threads" 32
    Flash.Config.flash_mt.Flash.Config.processes;
  Alcotest.(check bool) "MP private caches smaller" true
    (Flash.Config.flash_mp.Flash.Config.mmap_cache_bytes
    < Flash.Config.flash.Flash.Config.mmap_cache_bytes)

let test_apache_model () =
  let a = Flash.Config.apache in
  Alcotest.(check bool) "MP architecture" true (a.Flash.Config.arch = Flash.Config.Mp);
  Alcotest.(check int) "no pathname cache" 0 a.Flash.Config.pathname_cache_entries;
  Alcotest.(check bool) "no header cache" false a.Flash.Config.header_cache;
  Alcotest.(check int) "no mmap cache" 0 a.Flash.Config.mmap_cache_bytes;
  Alcotest.(check bool) "unaligned headers" false a.Flash.Config.align_headers;
  Alcotest.(check bool) "double-buffered IO" true a.Flash.Config.double_buffered_io

let test_zeus_model () =
  let z = Flash.Config.zeus ~processes:2 in
  Alcotest.(check bool) "SPED architecture" true (z.Flash.Config.arch = Flash.Config.Sped);
  Alcotest.(check int) "two processes" 2 z.Flash.Config.processes;
  Alcotest.(check bool) "unaligned headers" false z.Flash.Config.align_headers;
  Alcotest.(check bool) "small-request priority" true
    z.Flash.Config.small_request_priority;
  (* Zeus keeps the caches — its gap is not about optimizations. *)
  Alcotest.(check bool) "caches on" true (z.Flash.Config.pathname_cache_entries > 0)

let test_with_caches () =
  let c =
    Flash.Config.with_caches Flash.Config.flash ~pathname:false ~mmap:true
      ~header:false
  in
  Alcotest.(check int) "pathname off" 0 c.Flash.Config.pathname_cache_entries;
  Alcotest.(check bool) "mmap on" true (c.Flash.Config.mmap_cache_bytes > 0);
  Alcotest.(check bool) "header off" false c.Flash.Config.header_cache

let test_scale_cpu () =
  let p = Simos.Os_profile.freebsd in
  let scaled = Simos.Os_profile.scale_cpu p 2.0 in
  Helpers.check_float ~msg:"syscall doubled"
    (2. *. p.Simos.Os_profile.syscall)
    scaled.Simos.Os_profile.syscall;
  Helpers.check_float ~msg:"write_byte doubled"
    (2. *. p.Simos.Os_profile.write_byte)
    scaled.Simos.Os_profile.write_byte;
  (* Machine parameters are not CPU costs and must not scale. *)
  Alcotest.(check int) "ram unchanged" p.Simos.Os_profile.ram_bytes
    scaled.Simos.Os_profile.ram_bytes;
  Helpers.check_float ~msg:"nic unchanged" p.Simos.Os_profile.nic_bandwidth
    scaled.Simos.Os_profile.nic_bandwidth

let test_profiles_ordered () =
  let f = Simos.Os_profile.freebsd and s = Simos.Os_profile.solaris in
  Alcotest.(check bool) "solaris syscalls dearer" true
    (s.Simos.Os_profile.syscall > f.Simos.Os_profile.syscall);
  Alcotest.(check bool) "solaris data path dearer" true
    (s.Simos.Os_profile.write_byte > f.Simos.Os_profile.write_byte);
  Alcotest.(check bool) "alignment anomaly FreeBSD-only" true
    (f.Simos.Os_profile.misalign_byte > 0.
    && s.Simos.Os_profile.misalign_byte = 0.)

let suite =
  [
    Alcotest.test_case "presets sane" `Quick test_presets_sane;
    Alcotest.test_case "architecture presets" `Quick test_architectures;
    Alcotest.test_case "Apache model shape" `Quick test_apache_model;
    Alcotest.test_case "Zeus model shape" `Quick test_zeus_model;
    Alcotest.test_case "with_caches" `Quick test_with_caches;
    Alcotest.test_case "scale_cpu" `Quick test_scale_cpu;
    Alcotest.test_case "OS profiles ordered" `Quick test_profiles_ordered;
  ]
