let test_initial_state () =
  let p = Simos.Pollable.create () in
  Alcotest.(check bool) "not ready" false (Simos.Pollable.is_ready p);
  let q = Simos.Pollable.create ~ready:true () in
  Alcotest.(check bool) "ready" true (Simos.Pollable.is_ready q)

let test_watcher_fires_on_transition () =
  let p = Simos.Pollable.create () in
  let fired = ref 0 in
  Simos.Pollable.add_watcher p (fun () -> incr fired);
  Simos.Pollable.set_ready p false;
  Alcotest.(check int) "no fire on false" 0 !fired;
  Simos.Pollable.set_ready p true;
  Alcotest.(check int) "fires on true" 1 !fired;
  Simos.Pollable.set_ready p true;
  Alcotest.(check int) "no fire when already true" 1 !fired

let test_watcher_immediate_when_ready () =
  let p = Simos.Pollable.create ~ready:true () in
  let fired = ref false in
  Simos.Pollable.add_watcher p (fun () -> fired := true);
  Alcotest.(check bool) "immediate" true !fired

let test_watchers_one_shot () =
  let p = Simos.Pollable.create () in
  let fired = ref 0 in
  Simos.Pollable.add_watcher p (fun () -> incr fired);
  Simos.Pollable.set_ready p true;
  Simos.Pollable.set_ready p false;
  Simos.Pollable.set_ready p true;
  Alcotest.(check int) "only once" 1 !fired;
  Alcotest.(check int) "no watchers left" 0 (Simos.Pollable.watcher_count p)

let test_watcher_order () =
  let p = Simos.Pollable.create () in
  let log = ref [] in
  Simos.Pollable.add_watcher p (fun () -> log := 1 :: !log);
  Simos.Pollable.add_watcher p (fun () -> log := 2 :: !log);
  Simos.Pollable.set_ready p true;
  Alcotest.(check (list int)) "registration order" [ 1; 2 ] (List.rev !log)

let test_wait_ready () =
  let engine = Sim.Engine.create () in
  let p = Simos.Pollable.create () in
  let woke_at = ref 0. in
  ignore
    (Sim.Proc.spawn engine ~name:"waiter" (fun () ->
         Simos.Pollable.wait_ready p;
         woke_at := Sim.Engine.now engine));
  Sim.Engine.schedule engine ~delay:2. (fun () -> Simos.Pollable.set_ready p true);
  ignore (Sim.Engine.run engine);
  Helpers.check_float ~msg:"woke when ready" 2. !woke_at

let test_wait_ready_immediate () =
  let t =
    Helpers.run_sim (fun engine ->
        let p = Simos.Pollable.create ~ready:true () in
        Simos.Pollable.wait_ready p;
        Sim.Engine.now engine)
  in
  Helpers.check_float ~msg:"no wait" 0. t

let suite =
  [
    Alcotest.test_case "initial state" `Quick test_initial_state;
    Alcotest.test_case "fires on false->true" `Quick test_watcher_fires_on_transition;
    Alcotest.test_case "immediate when ready" `Quick test_watcher_immediate_when_ready;
    Alcotest.test_case "watchers are one-shot" `Quick test_watchers_one_shot;
    Alcotest.test_case "watcher order" `Quick test_watcher_order;
    Alcotest.test_case "wait_ready blocks" `Quick test_wait_ready;
    Alcotest.test_case "wait_ready immediate" `Quick test_wait_ready_immediate;
  ]
