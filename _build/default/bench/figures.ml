(* Reproduction harnesses: one per figure of the paper's evaluation
   (USENIX '99, §6).  Each prints the series the paper plots; shapes —
   orderings, gaps, knees — are the comparison target, not absolute
   numbers (see EXPERIMENTS.md). *)

let fast_mode = Sys.getenv_opt "FLASH_BENCH_FAST" <> None

(* Time scale: full mode uses longer measured intervals for smoother
   steady-state numbers. *)
let scale x = if fast_mode then x /. 4. else x

let kb n = n * 1024
let mib n = n * 1024 * 1024

let pf = Format.printf

let print_header title detail =
  pf "@.============================================================@.";
  pf "%s@." title;
  pf "%s@." detail;
  pf "============================================================@."

let series_line ~first_col values =
  pf "%-10s" first_col;
  List.iter (fun v -> pf " %10.1f" v) values;
  pf "@."

let label_line ~first_col labels =
  pf "%-10s" first_col;
  List.iter (fun l -> pf " %10s" l) labels;
  pf "@."

(* ------------------------------------------------------------------ *)
(* Single-file test (figures 6, 7, 11)                                 *)
(* ------------------------------------------------------------------ *)

let single_file_fileset size =
  {
    Workload.Fileset.spec = Workload.Fileset.owlnet_like ~files:1 ~seed:1;
    paths = [| "/www/data/set0/file.html" |];
    sizes = [| size |];
  }

let single_file_run ~profile ~server ~size =
  Workload.Driver.run ~clients:64 ~warmup:(scale 2.) ~duration:(scale 6.)
    ~profile ~server
    ~fileset:(single_file_fileset size)
    ~next:(fun _ -> "/www/data/set0/file.html")
    ()

(* The two panels of the single-file figures: output bandwidth over the
   full size range, connection rate for small files. *)
let single_file_figure ~profile ~servers =
  let bandwidth_sizes = [ 10; 20; 35; 50; 75; 100; 150; 200 ] in
  let rate_sizes = [ 1; 2; 4; 6; 8; 10; 14; 17; 20 ] in
  let all_sizes =
    List.sort_uniq Int.compare (rate_sizes @ bandwidth_sizes)
  in
  let results =
    List.map
      (fun size_kb ->
        ( size_kb,
          List.map
            (fun server -> single_file_run ~profile ~server ~size:(kb size_kb))
            servers ))
      all_sizes
  in
  let labels = List.map (fun (s : Flash.Config.t) -> s.Flash.Config.label) servers in
  pf "@.(a) Output bandwidth (Mb/s) vs file size (KB)@.";
  label_line ~first_col:"size_kb" labels;
  List.iter
    (fun (size_kb, row) ->
      if List.mem size_kb bandwidth_sizes then
        series_line
          ~first_col:(string_of_int size_kb)
          (List.map (fun r -> r.Workload.Driver.mbits_per_s) row))
    results;
  pf "@.(b) Connection rate (req/s) vs file size (KB)@.";
  label_line ~first_col:"size_kb" labels;
  List.iter
    (fun (size_kb, row) ->
      if List.mem size_kb rate_sizes then
        series_line
          ~first_col:(string_of_int size_kb)
          (List.map (fun r -> r.Workload.Driver.requests_per_s) row))
    results

let fig6 () =
  print_header "Figure 6 - Solaris single file test"
    "64 clients repeatedly request one cached file; architecture matters\n\
     little, Apache trails (missing optimizations), SPED edges out Flash\n\
     (no mincore check).";
  single_file_figure ~profile:Simos.Os_profile.solaris
    ~servers:
      [
        Flash.Config.flash_sped;
        Flash.Config.flash;
        Flash.Config.zeus ~processes:1;
        Flash.Config.flash_mt;
        Flash.Config.flash_mp;
        Flash.Config.apache;
      ]

let fig7 () =
  print_header "Figure 7 - FreeBSD single file test"
    "Same test on the faster network stack (no MT: FreeBSD 2.2.6 lacks\n\
     kernel threads).  Zeus dips for 32-100 KB files: unpadded headers\n\
     misalign the writev copy (S5.5).";
  single_file_figure ~profile:Simos.Os_profile.freebsd
    ~servers:
      [
        Flash.Config.flash_sped;
        Flash.Config.flash;
        Flash.Config.zeus ~processes:1;
        Flash.Config.flash_mp;
        Flash.Config.apache;
      ]

(* ------------------------------------------------------------------ *)
(* Trace workloads (figure 8)                                          *)
(* ------------------------------------------------------------------ *)

let cs_trace () =
  let fileset =
    Workload.Fileset.generate (Workload.Fileset.cs_like ~files:4000 ~seed:21)
  in
  Workload.Trace.generate fileset ~length:60_000 ~alpha:0.95 ~seed:22

let owlnet_trace () =
  let fileset =
    Workload.Fileset.generate (Workload.Fileset.owlnet_like ~files:5000 ~seed:23)
  in
  Workload.Trace.generate fileset ~length:60_000 ~alpha:1.1 ~seed:24

let trace_run ~profile ~server ~trace ~persistent ~clients ~duration =
  Workload.Driver.run ~clients ~persistent ~warmup:(scale 16.) ~duration
    ~profile ~server ~fileset:trace.Workload.Trace.fileset
    ~next:(fun i -> Workload.Trace.request_path trace i)
    ()

let fig8 () =
  print_header "Figure 8 - Performance on Rice server traces (Solaris)"
    "Bandwidth per server on two real-log-like workloads.  CS: large\n\
     dataset, disk-bound - MP beats SPED.  Owlnet: small dataset, high\n\
     locality - SPED shines.  Flash highest on both; Apache lowest.";
  let servers =
    [
      Flash.Config.apache;
      Flash.Config.flash_mp;
      Flash.Config.flash_mt;
      Flash.Config.flash_sped;
      Flash.Config.flash;
    ]
  in
  let run_one name trace =
    pf "@.%s trace (dataset %.1f MB, mean transfer %.1f KB)@." name
      (float_of_int (Workload.Fileset.total_bytes trace.Workload.Trace.fileset)
      /. 1048576.)
      (Workload.Trace.mean_transfer trace /. 1024.);
    pf "%-10s %10s@." "server" "Mb/s";
    List.iter
      (fun server ->
        let r =
          trace_run ~profile:Simos.Os_profile.solaris ~server ~trace
            ~persistent:false ~clients:64 ~duration:(scale 10.)
        in
        pf "%-10s %10.1f@." r.Workload.Driver.label r.Workload.Driver.mbits_per_s)
      servers
  in
  run_one "CS" (cs_trace ());
  run_one "Owlnet" (owlnet_trace ())

(* ------------------------------------------------------------------ *)
(* Dataset-size sweeps (figures 9, 10)                                 *)
(* ------------------------------------------------------------------ *)

let ece_fileset () =
  Workload.Fileset.generate (Workload.Fileset.ece_like ~files:9000 ~seed:31)

let sweep_points =
  if fast_mode then [ 30; 90; 150 ] else [ 15; 30; 45; 60; 75; 90; 105; 120; 135; 150 ]

let dataset_sweep ~profile ~servers =
  let base = ece_fileset () in
  let labels = List.map (fun (s : Flash.Config.t) -> s.Flash.Config.label) servers in
  label_line ~first_col:"mb" labels;
  List.iter
    (fun dataset_mb ->
      let fileset = Workload.Fileset.truncate base ~dataset_bytes:(mib dataset_mb) in
      let trace =
        Workload.Trace.generate fileset ~length:60_000 ~alpha:0.9
          ~seed:(32 + dataset_mb)
      in
      let row =
        List.map
          (fun server ->
            let r =
              (* Long warmup: the buffer cache must reach churn steady
                 state even for the slowest (SPED) server, or transients
                 flatter it. *)
              Workload.Driver.run ~clients:64 ~warmup:(scale 20.)
                ~duration:(scale 10.) ~profile ~server ~fileset
                ~next:(fun i -> Workload.Trace.request_path trace i)
                ()
            in
            r.Workload.Driver.mbits_per_s)
          servers
      in
      series_line ~first_col:(string_of_int dataset_mb) row)
    sweep_points

let fig9 () =
  print_header "Figure 9 - FreeBSD real workload (bandwidth vs dataset size)"
    "ECE-like logs truncated to each dataset size.  All decline as the\n\
     working set passes the cache; beyond the knee Flash >= MP > SPED;\n\
     Zeus's knee comes later (small-request priority shrinks its\n\
     effective working set).";
  dataset_sweep ~profile:Simos.Os_profile.freebsd
    ~servers:
      [
        Flash.Config.flash_sped;
        Flash.Config.flash;
        Flash.Config.zeus ~processes:2;
        Flash.Config.flash_mp;
        Flash.Config.apache;
      ]

let fig10 () =
  print_header "Figure 10 - Solaris real workload (bandwidth vs dataset size)"
    "Same sweep on Solaris, with MT: carefully-locked MT tracks Flash\n\
     on both cached and disk-bound regions.";
  dataset_sweep ~profile:Simos.Os_profile.solaris
    ~servers:
      [
        Flash.Config.flash_sped;
        Flash.Config.flash;
        Flash.Config.zeus ~processes:2;
        Flash.Config.flash_mt;
        Flash.Config.flash_mp;
        Flash.Config.apache;
      ]

(* ------------------------------------------------------------------ *)
(* Flash performance breakdown (figure 11)                             *)
(* ------------------------------------------------------------------ *)

let fig11 () =
  print_header "Figure 11 - Flash performance breakdown (FreeBSD)"
    "Connection rate for all 8 combinations of {pathname, mmap,\n\
     response-header} caching on the cached single-file test.  Pathname\n\
     caching contributes most; with nothing cached, small-file\n\
     throughput roughly halves.";
  let variants =
    [
      ("all", true, true, true);
      ("path+mmap", true, true, false);
      ("path+resp", true, false, true);
      ("path", true, false, false);
      ("mmap+resp", false, true, true);
      ("mmap", false, true, false);
      ("resp", false, false, true);
      ("none", false, false, false);
    ]
  in
  let sizes = [ 1; 2; 4; 6; 8; 10; 14; 17; 20 ] in
  label_line ~first_col:"size_kb" (List.map (fun (n, _, _, _) -> n) variants);
  List.iter
    (fun size_kb ->
      let row =
        List.map
          (fun (_, pathname, mmap, header) ->
            let server =
              Flash.Config.with_caches Flash.Config.flash ~pathname ~mmap ~header
            in
            let r =
              single_file_run ~profile:Simos.Os_profile.freebsd ~server
                ~size:(kb size_kb)
            in
            r.Workload.Driver.requests_per_s)
          variants
      in
      series_line ~first_col:(string_of_int size_kb) row)
    sizes

(* ------------------------------------------------------------------ *)
(* WAN / concurrent-connection test (figure 12)                        *)
(* ------------------------------------------------------------------ *)

let fig12 () =
  print_header "Figure 12 - Adding clients (persistent connections, Solaris)"
    "90 MB ECE-like dataset over long-lived connections.  SPED/AMPED\n\
     stay flat as clients grow (select batching amortizes); MT declines\n\
     gradually (per-thread overhead); MP declines sharply (per-process\n\
     memory squeezes the file cache).";
  let base = ece_fileset () in
  let fileset = Workload.Fileset.truncate base ~dataset_bytes:(mib 90) in
  let trace = Workload.Trace.generate fileset ~length:60_000 ~alpha:0.9 ~seed:41 in
  let servers =
    [
      Flash.Config.flash_sped;
      Flash.Config.flash;
      Flash.Config.flash_mt;
      Flash.Config.flash_mp;
    ]
  in
  let client_counts =
    if fast_mode then [ 32; 200; 500 ]
    else [ 16; 32; 64; 100; 150; 200; 300; 400; 500 ]
  in
  let labels = List.map (fun (s : Flash.Config.t) -> s.Flash.Config.label) servers in
  label_line ~first_col:"clients" labels;
  List.iter
    (fun clients ->
      let row =
        List.map
          (fun (server : Flash.Config.t) ->
            (* MP/MT provision a worker per concurrent connection, as the
               paper's servers do. *)
            let server =
              match server.Flash.Config.arch with
              | Flash.Config.Mp | Flash.Config.Mt ->
                  { server with Flash.Config.processes = clients }
              | Flash.Config.Sped | Flash.Config.Amped -> server
            in
            let r =
              Workload.Driver.run ~clients ~persistent:true
                ~warmup:(scale 16.) ~duration:(scale 10.)
                ~profile:Simos.Os_profile.solaris ~server
                ~fileset
                ~next:(fun i -> Workload.Trace.request_path trace i)
                ()
            in
            r.Workload.Driver.mbits_per_s)
          servers
      in
      series_line ~first_col:(string_of_int clients) row)
    client_counts
