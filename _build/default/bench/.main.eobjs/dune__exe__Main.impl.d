bench/main.ml: Ablate Array Figures Format List Micro String Sys Unix
