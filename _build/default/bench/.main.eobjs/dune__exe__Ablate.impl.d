bench/ablate.ml: Flash Format List Printf Sim Simos Sys Workload
