bench/main.mli:
