bench/micro.ml: Analyze Bechamel Benchmark Flash_util Format Gc Hashtbl Http Instance List Measure Sim Simos Staged String Test Time Toolkit Workload
