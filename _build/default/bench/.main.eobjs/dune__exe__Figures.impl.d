bench/figures.ml: Flash Format Int List Simos Sys Workload
