(* Ablations of design choices DESIGN.md calls out (beyond the paper's
   own figures). *)

let fast_mode = Sys.getenv_opt "FLASH_BENCH_FAST" <> None
let scale x = if fast_mode then x /. 4. else x
let mib n = n * 1024 * 1024
let kib n = n * 1024
let pf = Format.printf

let disk_bound () =
  let base =
    Workload.Fileset.generate (Workload.Fileset.ece_like ~files:9000 ~seed:31)
  in
  let fileset = Workload.Fileset.truncate base ~dataset_bytes:(mib 140) in
  let trace = Workload.Trace.generate fileset ~length:50_000 ~alpha:0.9 ~seed:61 in
  (fileset, trace)

let run_trace ~profile ~server (fileset, trace) =
  Workload.Driver.run ~clients:64 ~warmup:(scale 16.) ~duration:(scale 10.)
    ~profile ~server ~fileset
    ~next:(fun i -> Workload.Trace.request_path trace i)
    ()

(* 1. Helper-pool size: §4.1 "disk utilization" — AMPED can keep one
   disk request outstanding per helper; more helpers = deeper disk queue
   = better head scheduling, until the disk saturates. *)
let helpers () =
  pf "@.(1) AMPED helper-pool size, disk-bound 140 MB workload (FreeBSD)@.";
  pf "%-8s %10s %10s %10s@." "helpers" "Mb/s" "req/s" "disk%";
  let wl = disk_bound () in
  List.iter
    (fun max_helpers ->
      let server = { Flash.Config.flash with Flash.Config.max_helpers } in
      let r = run_trace ~profile:Simos.Os_profile.freebsd ~server wl in
      pf "%-8d %10.1f %10.1f %9.0f%%@." max_helpers
        r.Workload.Driver.mbits_per_s r.Workload.Driver.requests_per_s
        (100. *. r.Workload.Driver.disk_utilization))
    [ 1; 2; 4; 8; 16; 32 ]

(* 2. Byte-position alignment (§5.5): the padding only pays off where
   the kernel's copy path penalizes misalignment (the FreeBSD profile);
   on the Solaris profile it is modeled as free, so the lines overlap. *)
let alignment () =
  pf "@.(2) Header alignment on vs off, cached single-file test@.";
  pf "%-10s %-8s %12s %12s@." "os" "size_kb" "aligned" "unaligned";
  let sizes = [ 4; 16; 32; 64; 128 ] in
  List.iter
    (fun (os_name, profile) ->
      List.iter
        (fun size_kb ->
          let fileset =
            {
              Workload.Fileset.spec = Workload.Fileset.ece_like ~files:1 ~seed:1;
              paths = [| "/www/data/set0/file.html" |];
              sizes = [| kib size_kb |];
            }
          in
          let go align_headers =
            let server = { Flash.Config.flash with Flash.Config.align_headers } in
            Workload.Driver.run ~clients:64 ~warmup:(scale 2.)
              ~duration:(scale 6.) ~profile ~server ~fileset
              ~next:(fun _ -> "/www/data/set0/file.html")
              ()
          in
          let a = go true and u = go false in
          pf "%-10s %-8d %12.1f %12.1f@." os_name size_kb
            a.Workload.Driver.mbits_per_s u.Workload.Driver.mbits_per_s)
        sizes)
    [ ("FreeBSD", Simos.Os_profile.freebsd); ("Solaris", Simos.Os_profile.solaris) ]

(* 3. IO/mapping chunk size: smaller chunks mean more syscalls per
   request and, cold, less effective disk read clustering (the Apache
   model's 16 KB buffers are the extreme). *)
let chunk_size () =
  pf "@.(3) IO chunk size, disk-bound 140 MB workload (FreeBSD, Flash)@.";
  pf "%-10s %10s %10s@." "chunk_kb" "Mb/s" "req/s";
  let wl = disk_bound () in
  List.iter
    (fun chunk_kb ->
      let server =
        {
          Flash.Config.flash with
          Flash.Config.mmap_chunk_bytes = kib chunk_kb;
          io_chunk = kib chunk_kb;
        }
      in
      let r = run_trace ~profile:Simos.Os_profile.freebsd ~server wl in
      pf "%-10d %10.1f %10.1f@." chunk_kb r.Workload.Driver.mbits_per_s
        r.Workload.Driver.requests_per_s)
    [ 8; 16; 32; 64; 128 ]

(* 4. The mincore test AMPED pays on cached workloads (why Flash-SPED
   edges out Flash in Figs 6/7): measure Flash vs SPED on a fully cached
   set at several file sizes. *)
let mincore_cost () =
  pf "@.(4) Residency-test overhead: Flash (mincore) vs SPED, cached@.";
  pf "%-8s %12s %12s %8s@." "size_kb" "Flash req/s" "SPED req/s" "gap";
  List.iter
    (fun size_kb ->
      let fileset =
        {
          Workload.Fileset.spec = Workload.Fileset.ece_like ~files:1 ~seed:1;
          paths = [| "/www/data/set0/file.html" |];
          sizes = [| kib size_kb |];
        }
      in
      let go server =
        Workload.Driver.run ~clients:64 ~warmup:(scale 2.) ~duration:(scale 6.)
          ~profile:Simos.Os_profile.freebsd ~server ~fileset
          ~next:(fun _ -> "/www/data/set0/file.html")
          ()
      in
      let flash = go Flash.Config.flash in
      let sped = go Flash.Config.flash_sped in
      pf "%-8d %12.1f %12.1f %7.1f%%@." size_kb
        flash.Workload.Driver.requests_per_s sped.Workload.Driver.requests_per_s
        (100.
        *. (sped.Workload.Driver.requests_per_s
            -. flash.Workload.Driver.requests_per_s)
        /. sped.Workload.Driver.requests_per_s))
    [ 1; 4; 16 ]

(* 5. §5.7 fallback: Flash with the feedback residency predictor instead
   of mincore, vs real-mincore Flash and SPED, cached and disk-bound.
   The predictor should track Flash closely when the working set fits
   (few mispredictions) and land between Flash and SPED when it does not
   (each misprediction blocks the loop once, then teaches the
   estimator). *)
let residency_heuristic () =
  pf "@.(5) Residency strategies: mincore vs S5.7 predictor vs SPED@.";
  pf "%-12s %12s %12s %12s@." "dataset" "Flash" "Flash-H" "SPED";
  List.iter
    (fun dataset_mb ->
      let base =
        Workload.Fileset.generate (Workload.Fileset.ece_like ~files:9000 ~seed:31)
      in
      let fileset = Workload.Fileset.truncate base ~dataset_bytes:(mib dataset_mb) in
      let trace =
        Workload.Trace.generate fileset ~length:50_000 ~alpha:0.9 ~seed:71
      in
      let go server =
        (run_trace ~profile:Simos.Os_profile.freebsd ~server (fileset, trace))
          .Workload.Driver.mbits_per_s
      in
      pf "%-12s %12.1f %12.1f %12.1f@."
        (Printf.sprintf "%d MB" dataset_mb)
        (go Flash.Config.flash)
        (go Flash.Config.flash_heuristic)
        (go Flash.Config.flash_sped))
    [ 60; 120; 150 ]

(* 6. SPECweb96-like workload — the era's standard benchmark, as a
   sanity point alongside the paper's own workloads.  Dataset scales
   with directory count; 35/50/14/1% class mix. *)
let specweb () =
  pf "@.(6) SPECweb96-like workload (FreeBSD)@.";
  pf "%-6s %10s %-8s %10s %10s %10s@." "dirs" "dataset" "" "Flash" "SPED" "MP";
  List.iter
    (fun directories ->
      let spec = Workload.Specweb.generate ~directories ~seed:81 in
      let fileset = Workload.Specweb.fileset spec in
      let rng = Sim.Rng.create ~seed:82 in
      let go server =
        let r =
          Workload.Driver.run ~clients:64 ~warmup:(scale 16.)
            ~duration:(scale 10.) ~profile:Simos.Os_profile.freebsd ~server
            ~fileset
            ~next:(fun _ -> Workload.Specweb.sample spec rng)
            ()
        in
        r.Workload.Driver.mbits_per_s
      in
      pf "%-6d %7.0f MB %-8s %10.1f %10.1f %10.1f@." directories
        (float_of_int (Workload.Specweb.dataset_bytes spec) /. 1048576.)
        ""
        (go Flash.Config.flash)
        (go Flash.Config.flash_sped)
        (go Flash.Config.flash_mp))
    [ 10; 25; 40 ]

let run () =
  pf "@.============================================================@.";
  pf "Ablations - design-choice sweeps beyond the paper's figures@.";
  pf "============================================================@.";
  helpers ();
  alignment ();
  chunk_size ();
  mincore_cost ();
  residency_heuristic ();
  specweb ()
