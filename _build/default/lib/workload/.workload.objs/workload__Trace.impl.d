lib/workload/trace.ml: Array Fileset Fun Hashtbl Http List Printf Sim String Zipf
