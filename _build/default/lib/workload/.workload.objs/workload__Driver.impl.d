lib/workload/driver.ml: Array Fileset Flash Format Printf Sim Simos
