lib/workload/driver.mli: Fileset Flash Format Simos
