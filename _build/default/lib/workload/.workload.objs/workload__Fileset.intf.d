lib/workload/fileset.mli: Simos
