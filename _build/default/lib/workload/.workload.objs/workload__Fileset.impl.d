lib/workload/fileset.ml: Array List Printf Sim Simos String
