lib/workload/zipf.mli: Sim
