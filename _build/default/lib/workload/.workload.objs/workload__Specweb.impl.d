lib/workload/specweb.ml: Array Fileset Printf Sim
