lib/workload/specweb.mli: Fileset Sim
