lib/workload/trace.mli: Fileset
