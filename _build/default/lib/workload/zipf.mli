(** Zipf-like popularity distribution over [n] ranks.

    Web server request popularity follows a Zipf distribution (Arlitt &
    Williamson; the paper's trace workloads inherit it).  Rank [r]
    (0-based) has probability proportional to [1 / (r+1)^alpha]. *)

type t

(** @raise Invalid_argument unless [n > 0] and [alpha >= 0]. *)
val create : n:int -> alpha:float -> t

val size : t -> int
val alpha : t -> float

(** Sample a rank in [\[0, n)]. *)
val sample : t -> Sim.Rng.t -> int

(** Probability of rank [r] (for tests). *)
val probability : t -> int -> float
