type t = { cdf : float array; alpha : float }

let create ~n ~alpha =
  if n <= 0 then invalid_arg "Zipf.create: n <= 0";
  if alpha < 0. then invalid_arg "Zipf.create: alpha < 0";
  let cdf = Array.make n 0. in
  let total = ref 0. in
  for r = 0 to n - 1 do
    total := !total +. (1. /. Float.pow (float_of_int (r + 1)) alpha);
    cdf.(r) <- !total
  done;
  for r = 0 to n - 1 do
    cdf.(r) <- cdf.(r) /. !total
  done;
  { cdf; alpha }

let size t = Array.length t.cdf
let alpha t = t.alpha

let sample t rng =
  let u = Sim.Rng.float rng in
  (* First index with cdf >= u. *)
  let rec search lo hi =
    if lo >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      if t.cdf.(mid) >= u then search lo mid else search (mid + 1) hi
    end
  in
  search 0 (Array.length t.cdf - 1)

let probability t r =
  if r < 0 || r >= Array.length t.cdf then
    invalid_arg "Zipf.probability: rank out of range";
  if r = 0 then t.cdf.(0) else t.cdf.(r) -. t.cdf.(r - 1)
