type spec = {
  files : int;
  body_mu : float;
  body_sigma : float;
  tail_fraction : float;
  tail_xm : float;
  tail_alpha : float;
  min_size : int;
  max_size : int;
  dirs : int;
  depth : int;
  seed : int;
}

let cs_like ~files ~seed =
  {
    files;
    body_mu = log 6000.;
    body_sigma = 1.4;
    tail_fraction = 0.08;
    tail_xm = 40_000.;
    tail_alpha = 1.1;
    min_size = 120;
    max_size = 2_000_000;
    dirs = 40;
    depth = 3;
    seed;
  }

let owlnet_like ~files ~seed =
  {
    files;
    body_mu = log 2500.;
    body_sigma = 1.2;
    tail_fraction = 0.05;
    tail_xm = 25_000.;
    tail_alpha = 1.3;
    min_size = 80;
    max_size = 500_000;
    dirs = 120;
    depth = 3;
    seed;
  }

let ece_like ~files ~seed =
  {
    files;
    body_mu = log 4500.;
    body_sigma = 1.35;
    tail_fraction = 0.07;
    tail_xm = 35_000.;
    tail_alpha = 1.15;
    min_size = 100;
    max_size = 1_500_000;
    dirs = 60;
    depth = 3;
    seed;
  }

type t = { spec : spec; paths : string array; sizes : int array }

let clamp spec size =
  let s = int_of_float size in
  if s < spec.min_size then spec.min_size
  else if s > spec.max_size then spec.max_size
  else s

let sample_size spec rng =
  if Sim.Rng.float rng < spec.tail_fraction then
    clamp spec (Sim.Rng.pareto rng ~xm:spec.tail_xm ~alpha:spec.tail_alpha)
  else
    clamp spec (Sim.Rng.lognormal rng ~mu:spec.body_mu ~sigma:spec.body_sigma)

let path_of spec rng index =
  let dir = Sim.Rng.int rng spec.dirs in
  let components =
    List.init (max 1 (spec.depth - 1)) (fun level ->
        Printf.sprintf "d%d_%d" level (if level = 0 then dir else dir mod 7))
  in
  Printf.sprintf "/%s/f%06d.html" (String.concat "/" components) index

let generate spec =
  if spec.files <= 0 then invalid_arg "Fileset.generate: files <= 0";
  let rng = Sim.Rng.create ~seed:spec.seed in
  let paths = Array.init spec.files (fun i -> path_of spec rng i) in
  let sizes = Array.init spec.files (fun _ -> sample_size spec rng) in
  { spec; paths; sizes }

let file_count t = Array.length t.paths
let total_bytes t = Array.fold_left ( + ) 0 t.sizes

let truncate t ~dataset_bytes =
  if dataset_bytes <= 0 then invalid_arg "Fileset.truncate: dataset <= 0";
  let n = Array.length t.paths in
  let rec count i acc =
    if i >= n then i
    else begin
      let acc = acc + t.sizes.(i) in
      if acc > dataset_bytes then i else count (i + 1) acc
    end
  in
  let keep = max 1 (count 0 0) in
  {
    t with
    paths = Array.sub t.paths 0 keep;
    sizes = Array.sub t.sizes 0 keep;
  }

let install t fs =
  Array.init (Array.length t.paths) (fun i ->
      Simos.Fs.add_file fs ~path:t.paths.(i) ~size:t.sizes.(i))

let mean_size t =
  if Array.length t.sizes = 0 then 0.
  else float_of_int (total_bytes t) /. float_of_int (Array.length t.sizes)
