(** A SPECweb96-like synthetic workload.

    SPECweb96 was the standard web-server benchmark of the paper's era:
    requests fall into four file classes — class 0 (≤1 KB, 35 % of
    accesses), class 1 (1–10 KB, 50 %), class 2 (10–100 KB, 14 %) and
    class 3 (100 KB–1 MB, 1 %) — over a directory set whose size scales
    with the target throughput.  Within a class, nine discrete sizes are
    accessed with a Zipf-like bias.  This module reproduces that
    structure so the simulator can be driven by the same workload shape
    the industry used alongside the paper. *)

type t

(** [generate ~directories ~seed] builds the file population:
    [directories] scales the dataset (SPECweb96 used
    [(expected ops/s) / 5] directories, ~5 MB each). *)
val generate : directories:int -> seed:int -> t

val fileset : t -> Fileset.t

(** Sample the next request path (class mix + within-class bias). *)
val sample : t -> Sim.Rng.t -> string

(** Total bytes of the file population. *)
val dataset_bytes : t -> int

(** Access fraction of each class, [| c0; c1; c2; c3 |] (for tests). *)
val class_mix : float array

(** Class of a file size in bytes, 0–3 (for tests). *)
val class_of_size : int -> int
