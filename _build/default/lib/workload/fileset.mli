(** Synthetic file populations standing in for the paper's server
    document trees.

    Sizes follow the classic web model: a lognormal body with a Pareto
    tail (Crovella & Bestavros; Arlitt & Williamson).  Files are spread
    over a directory tree so pathname translation walks several
    components.  Generation is deterministic in the seed. *)

type spec = {
  files : int;
  body_mu : float;  (** lognormal mu of the body, log bytes *)
  body_sigma : float;
  tail_fraction : float;  (** fraction of files drawn from the tail *)
  tail_xm : float;  (** Pareto scale, bytes *)
  tail_alpha : float;
  min_size : int;
  max_size : int;
  dirs : int;  (** number of leaf directories *)
  depth : int;  (** path components per file *)
  seed : int;
}

(** A CS-departmental-server flavour: bigger files, bigger footprint. *)
val cs_like : files:int -> seed:int -> spec

(** Personal-pages flavour: smaller files, high locality datasets. *)
val owlnet_like : files:int -> seed:int -> spec

(** ECE-server flavour used for the dataset-size sweeps. *)
val ece_like : files:int -> seed:int -> spec

type t = { spec : spec; paths : string array; sizes : int array }

val generate : spec -> t

val file_count : t -> int
val total_bytes : t -> int

(** Keep only the first files whose cumulative size stays within
    [dataset_bytes] (the paper truncates logs to vary the dataset size;
    request streams over a truncated set follow). *)
val truncate : t -> dataset_bytes:int -> t

(** Register every file with the simulated filesystem. *)
val install : t -> Simos.Fs.t -> Simos.Fs.file array

(** Mean file size, bytes. *)
val mean_size : t -> float
