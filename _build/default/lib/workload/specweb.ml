(* SPECweb96 structure: per directory, 4 classes x 9 files.  Class sizes
   are the midpoints SPECweb96 uses: class i, file j has size
   (j+1) * base_i where base_0 = 0.1 KB ... base_3 = 100 KB. *)

let class_mix = [| 0.35; 0.50; 0.14; 0.01 |]

let files_per_class = 9

let class_base_bytes = [| 102; 1024; 10_240; 102_400 |]

let class_of_size size =
  if size <= 1024 then 0
  else if size <= 10_240 then 1
  else if size <= 102_400 then 2
  else 3

(* SPECweb96's within-class access weights for the 9 files (file 4 and
   neighbours are the most popular; a fixed empirical table). *)
let file_weights = [| 3.9; 5.9; 8.8; 17.7; 35.3; 11.8; 7.1; 5.0; 4.5 |]

type t = {
  fileset : Fileset.t;
  directories : int;
  class_cdf : float array;
  file_cdf : float array;
}

let cdf_of weights =
  let total = Array.fold_left ( +. ) 0. weights in
  let acc = ref 0. in
  Array.map
    (fun w ->
      acc := !acc +. (w /. total);
      !acc)
    weights

let path ~dir ~cls ~file =
  Printf.sprintf "/specweb/dir%05d/class%d/file%d.html" dir cls file

let generate ~directories ~seed =
  if directories <= 0 then invalid_arg "Specweb.generate: directories <= 0";
  let count = directories * 4 * files_per_class in
  let paths = Array.make count "" in
  let sizes = Array.make count 0 in
  let i = ref 0 in
  for dir = 0 to directories - 1 do
    for cls = 0 to 3 do
      for file = 0 to files_per_class - 1 do
        paths.(!i) <- path ~dir ~cls ~file;
        sizes.(!i) <- (file + 1) * class_base_bytes.(cls);
        incr i
      done
    done
  done;
  {
    fileset =
      {
        Fileset.spec = Fileset.ece_like ~files:count ~seed;
        paths;
        sizes;
      };
    directories;
    class_cdf = cdf_of class_mix;
    file_cdf = cdf_of file_weights;
  }

let fileset t = t.fileset

let dataset_bytes t = Fileset.total_bytes t.fileset

let pick_cdf cdf u =
  let n = Array.length cdf in
  let rec scan i = if i >= n - 1 || u <= cdf.(i) then i else scan (i + 1) in
  scan 0

let sample t rng =
  let dir = Sim.Rng.int rng t.directories in
  let cls = pick_cdf t.class_cdf (Sim.Rng.float rng) in
  let file = pick_cdf t.file_cdf (Sim.Rng.float rng) in
  path ~dir ~cls ~file
