(** Request streams (access-log replays) over a {!Fileset}.

    Popularity is Zipf over the file population (rank = file index), the
    invariant real server logs show.  Dataset-size sweeps truncate the
    fileset first — the equivalent of the paper's log-prefix truncation,
    which keeps the most popular documents — and generate the stream
    over the truncated population. *)

type t = {
  fileset : Fileset.t;
  requests : int array;  (** file indices, replayed as a loop *)
}

(** [generate ?locality fileset ~length ~alpha ~seed] — [locality
    (p, window)] adds LRU-stack temporal locality: with probability [p]
    a request repeats one of the previous [window] requests instead of a
    fresh popularity draw. *)
val generate :
  ?locality:float * int -> Fileset.t -> length:int -> alpha:float -> seed:int -> t

(** Path for replay step [i] (wraps around). *)
val request_path : t -> int -> string

(** File size for replay step [i]. *)
val request_size : t -> int -> int

val length : t -> int

(** Distinct files touched by the stream. *)
val distinct_files : t -> int

(** Bytes of distinct content touched (the working set upper bound). *)
val footprint_bytes : t -> int

(** Mean transferred size over the stream (popularity-weighted). *)
val mean_transfer : t -> float

(** Write the stream as a Common Log Format access log, one line per
    request — the format the paper's real traces come in. *)
val save_clf : t -> path:string -> unit

(** Reconstruct a replayable trace from a Common Log Format access log:
    distinct request targets become the fileset (sized by the logged
    byte counts), the line sequence becomes the request stream.
    Unparseable lines are skipped.
    @raise Failure if no line parses. *)
val load_clf : path:string -> t

(** Parse one CLF line into (target, bytes); [None] if malformed.
    Exposed for tests. *)
val parse_clf_line : string -> (string * int) option
