(** File extension to content-type mapping (the handful of types that
    dominate 1990s web workloads, plus a safe default). *)

(** [of_path "/a/b.html"] is ["text/html"]; unknown extensions map to
    ["application/octet-stream"]. *)
val of_path : string -> string
