(** HTTP request parsing.

    The parser is incremental-friendly: [parse buf] either consumes one
    complete request head (everything through the blank line) or reports
    that more bytes are needed.  It never raises on arbitrary input —
    malformed requests yield [`Bad].  Request bodies are not consumed
    (the servers here serve static content and CGI GET). *)

type meth = Get | Head | Post | Other of string

val meth_to_string : meth -> string

type t = {
  meth : meth;
  raw_target : string;  (** exactly as sent *)
  path : string;  (** percent-decoded, before normalization *)
  query : string option;
  version : int * int;  (** e.g. [(1, 0)] *)
  headers : (string * string) list;  (** names lowercased *)
}

val header : t -> string -> string option

(** HTTP/1.1 defaults to persistent; HTTP/1.0 requires
    ["Connection: keep-alive"]; ["Connection: close"] always wins. *)
val keep_alive : t -> bool

type result =
  | Complete of t * int  (** parsed request and bytes consumed *)
  | Incomplete  (** no blank line yet *)
  | Bad of string  (** malformed; connection should be rejected *)

val parse : string -> result

(** [decode_target "/a%20b?x=1"] is [("/a b", Some "x=1")].  Invalid
    percent escapes are left verbatim. *)
val decode_target : string -> string * string option

(** Resolve ["."] and [".."] segments; [None] when the path escapes the
    root or is not absolute. *)
val normalize_path : string -> string option
