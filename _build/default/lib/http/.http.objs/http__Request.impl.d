lib/http/request.ml: Buffer Char List String
