lib/http/status.ml: Printf
