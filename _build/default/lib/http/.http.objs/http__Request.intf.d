lib/http/request.mli:
