lib/http/response.ml: Buffer Http_date List Printf Status String
