lib/http/response_parser.ml: List String
