lib/http/http_date.mli:
