lib/http/status.mli:
