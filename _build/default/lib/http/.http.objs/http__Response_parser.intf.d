lib/http/response_parser.mli:
