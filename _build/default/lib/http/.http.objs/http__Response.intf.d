lib/http/response.mli: Status
