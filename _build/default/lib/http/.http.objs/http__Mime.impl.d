lib/http/mime.ml: List String
