lib/http/mime.mli:
