lib/http/http_date.ml: Array Printf String
