(** RFC 1123 date formatting ("Sun, 06 Nov 1994 08:49:37 GMT") from a
    POSIX timestamp, implemented without [Unix] so the library stays
    pure (and usable inside the simulator). *)

val format : float -> string

(** Parse an RFC 1123 date back to a POSIX timestamp.  Returns [None] on
    anything malformed (including the obsolete RFC 850 / asctime forms —
    conditional requests with unparseable dates are simply not
    conditional). *)
val parse : string -> float option

(** Calendar conversion exposed for tests: days since 1970-01-01 to
    (year, month 1-12, day 1-31). *)
val civil_of_days : int -> int * int * int

(** Day of week for days since epoch; 0 = Sunday. *)
val weekday_of_days : int -> int
