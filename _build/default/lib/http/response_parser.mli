(** Client-side HTTP response parsing (pure; used by the live client and
    the load generator).

    [parse_head buf] consumes the status line and headers through the
    blank line; body framing is then decided by {!body_framing}. *)

type head = {
  version : string;
  status : int;
  reason : string;
  headers : (string * string) list;  (** names lowercased *)
}

type head_result =
  | Head of head * int  (** parsed head and bytes consumed *)
  | Incomplete
  | Bad of string

val parse_head : string -> head_result

val header : head -> string -> string option

(** How the body of a response with this head is delimited. *)
type framing =
  | Fixed of int  (** Content-Length *)
  | Until_close  (** no length: read to EOF (CGI-style) *)
  | No_body  (** HEAD responses, 204/304 *)

(** [body_framing head ~head_request] — [head_request] marks responses
    to HEAD, which carry no body regardless of Content-Length. *)
val body_framing : head -> head_request:bool -> framing
