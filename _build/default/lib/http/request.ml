type meth = Get | Head | Post | Other of string

let meth_to_string = function
  | Get -> "GET"
  | Head -> "HEAD"
  | Post -> "POST"
  | Other s -> s

type t = {
  meth : meth;
  raw_target : string;
  path : string;
  query : string option;
  version : int * int;
  headers : (string * string) list;
}

type result = Complete of t * int | Incomplete | Bad of string

let header t name =
  List.assoc_opt (String.lowercase_ascii name) t.headers

let keep_alive t =
  match header t "connection" with
  | Some v when String.lowercase_ascii v = "close" -> false
  | Some v when String.lowercase_ascii v = "keep-alive" -> true
  | _ -> t.version >= (1, 1)

let meth_of_string = function
  | "GET" -> Get
  | "HEAD" -> Head
  | "POST" -> Post
  | s -> Other s

let hex_value c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

let percent_decode s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec loop i =
    if i >= n then Buffer.contents buf
    else if s.[i] = '%' && i + 2 < n then begin
      match (hex_value s.[i + 1], hex_value s.[i + 2]) with
      | Some hi, Some lo ->
          Buffer.add_char buf (Char.chr ((hi * 16) + lo));
          loop (i + 3)
      | _ ->
          Buffer.add_char buf s.[i];
          loop (i + 1)
    end
    else begin
      Buffer.add_char buf s.[i];
      loop (i + 1)
    end
  in
  loop 0

let decode_target target =
  match String.index_opt target '?' with
  | None -> (percent_decode target, None)
  | Some q ->
      let path = String.sub target 0 q in
      let query = String.sub target (q + 1) (String.length target - q - 1) in
      (percent_decode path, Some query)

let normalize_path path =
  if String.length path = 0 || path.[0] <> '/' then None
  else begin
    let segments = String.split_on_char '/' path in
    let rec resolve acc = function
      | [] -> Some (List.rev acc)
      | "" :: rest | "." :: rest -> resolve acc rest
      | ".." :: rest -> (
          match acc with [] -> None | _ :: up -> resolve up rest)
      | seg :: rest -> resolve (seg :: acc) rest
    in
    match resolve [] segments with
    | None -> None
    | Some [] -> Some "/"
    | Some segs -> Some ("/" ^ String.concat "/" segs)
  end

let parse_version s =
  if String.length s = 8 && String.sub s 0 5 = "HTTP/" && s.[6] = '.' then
    match (s.[5], s.[7]) with
    | ('0' .. '9' as major), ('0' .. '9' as minor) ->
        Some (Char.code major - Char.code '0', Char.code minor - Char.code '0')
    | _ -> None
  else None

(* Find the end of the request head: CRLFCRLF or LFLF.  Returns the
   offset one past the blank line. *)
let head_end buf =
  let n = String.length buf in
  let rec scan i =
    if i >= n then None
    else if buf.[i] = '\n' then begin
      if i + 1 < n && buf.[i + 1] = '\n' then Some (i + 2)
      else if i + 2 < n && buf.[i + 1] = '\r' && buf.[i + 2] = '\n' then
        Some (i + 3)
      else scan (i + 1)
    end
    else scan (i + 1)
  in
  scan 0

let strip_cr line =
  let n = String.length line in
  if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

let parse_header_line line =
  match String.index_opt line ':' with
  | None -> None
  | Some colon ->
      let name = String.lowercase_ascii (String.sub line 0 colon) in
      let value =
        String.trim
          (String.sub line (colon + 1) (String.length line - colon - 1))
      in
      if name = "" then None else Some (name, value)

let parse buf =
  match head_end buf with
  | None ->
      (* An over-long head with no terminator is an attack, not a slow
         client. *)
      if String.length buf > 16384 then Bad "request head too large"
      else Incomplete
  | Some consumed -> (
      let head = String.sub buf 0 consumed in
      let lines = String.split_on_char '\n' head in
      let lines = List.map strip_cr lines in
      match lines with
      | [] -> Bad "empty request"
      | request_line :: rest -> (
          match String.split_on_char ' ' request_line with
          | [ meth; target; version ] -> (
              match parse_version version with
              | None -> Bad ("bad version: " ^ version)
              | Some version ->
                  if target = "" || target.[0] <> '/' then
                    Bad ("bad target: " ^ target)
                  else begin
                    let headers = List.filter_map parse_header_line rest in
                    let path, query = decode_target target in
                    Complete
                      ( {
                          meth = meth_of_string meth;
                          raw_target = target;
                          path;
                          query;
                          version;
                          headers;
                        },
                        consumed )
                  end)
          | [ meth; target ] ->
              (* HTTP/0.9 simple request *)
              if target = "" || target.[0] <> '/' then
                Bad ("bad target: " ^ target)
              else begin
                let path, query = decode_target target in
                Complete
                  ( {
                      meth = meth_of_string meth;
                      raw_target = target;
                      path;
                      query;
                      version = (0, 9);
                      headers = [];
                    },
                    consumed )
              end
          | _ -> Bad ("bad request line: " ^ request_line)))
