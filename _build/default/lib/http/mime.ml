let table =
  [
    ("html", "text/html");
    ("htm", "text/html");
    ("txt", "text/plain");
    ("css", "text/css");
    ("gif", "image/gif");
    ("jpg", "image/jpeg");
    ("jpeg", "image/jpeg");
    ("png", "image/png");
    ("ps", "application/postscript");
    ("pdf", "application/pdf");
    ("gz", "application/gzip");
    ("tar", "application/x-tar");
    ("zip", "application/zip");
    ("mpg", "video/mpeg");
    ("mpeg", "video/mpeg");
    ("au", "audio/basic");
    ("wav", "audio/x-wav");
    ("js", "text/javascript");
    ("xml", "text/xml");
  ]

let extension path =
  match String.rindex_opt path '.' with
  | None -> None
  | Some dot ->
      let after_slash =
        match String.rindex_opt path '/' with
        | Some slash -> dot > slash
        | None -> true
      in
      if after_slash && dot < String.length path - 1 then
        Some
          (String.lowercase_ascii
             (String.sub path (dot + 1) (String.length path - dot - 1)))
      else None

let of_path path =
  match extension path with
  | None -> "application/octet-stream"
  | Some ext -> (
      match List.assoc_opt ext table with
      | Some ct -> ct
      | None -> "application/octet-stream")
