type head = {
  version : string;
  status : int;
  reason : string;
  headers : (string * string) list;
}

type head_result = Head of head * int | Incomplete | Bad of string

let strip_cr line =
  let n = String.length line in
  if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

let head_end buf =
  let n = String.length buf in
  let rec scan i =
    if i >= n then None
    else if buf.[i] = '\n' then begin
      if i + 1 < n && buf.[i + 1] = '\n' then Some (i + 2)
      else if i + 2 < n && buf.[i + 1] = '\r' && buf.[i + 2] = '\n' then
        Some (i + 3)
      else scan (i + 1)
    end
    else scan (i + 1)
  in
  scan 0

let parse_header_line line =
  match String.index_opt line ':' with
  | None -> None
  | Some colon ->
      let name = String.lowercase_ascii (String.sub line 0 colon) in
      let value =
        String.trim
          (String.sub line (colon + 1) (String.length line - colon - 1))
      in
      if name = "" then None else Some (name, value)

let parse_status_line line =
  match String.index_opt line ' ' with
  | None -> Error ("no status code in: " ^ line)
  | Some sp -> (
      let version = String.sub line 0 sp in
      let rest = String.sub line (sp + 1) (String.length line - sp - 1) in
      let code_str, reason =
        match String.index_opt rest ' ' with
        | None -> (rest, "")
        | Some sp2 ->
            ( String.sub rest 0 sp2,
              String.sub rest (sp2 + 1) (String.length rest - sp2 - 1) )
      in
      match int_of_string_opt code_str with
      | Some status when status >= 100 && status <= 599 ->
          Ok (version, status, reason)
      | Some _ | None -> Error ("bad status code in: " ^ line))

let parse_head buf =
  match head_end buf with
  | None -> if String.length buf > 65536 then Bad "head too large" else Incomplete
  | Some consumed -> (
      let head_str = String.sub buf 0 consumed in
      let lines = List.map strip_cr (String.split_on_char '\n' head_str) in
      match lines with
      | [] -> Bad "empty response"
      | status_line :: rest -> (
          match parse_status_line status_line with
          | Error e -> Bad e
          | Ok (version, status, reason) ->
              Head
                ( {
                    version;
                    status;
                    reason;
                    headers = List.filter_map parse_header_line rest;
                  },
                  consumed )))

let header head name = List.assoc_opt (String.lowercase_ascii name) head.headers

type framing = Fixed of int | Until_close | No_body

let body_framing head ~head_request =
  if head_request || head.status = 204 || head.status = 304 then No_body
  else begin
    match header head "content-length" with
    | Some len_str -> (
        match int_of_string_opt (String.trim len_str) with
        | Some len when len >= 0 -> Fixed len
        | Some _ | None -> Until_close)
    | None -> Until_close
  end
