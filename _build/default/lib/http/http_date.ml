(* Howard Hinnant's civil-from-days algorithm. *)
let civil_of_days z =
  let z = z + 719468 in
  let era = (if z >= 0 then z else z - 146096) / 146097 in
  let doe = z - (era * 146097) in
  let yoe = (doe - (doe / 1460) + (doe / 36524) - (doe / 146096)) / 365 in
  let y = yoe + (era * 400) in
  let doy = doe - ((365 * yoe) + (yoe / 4) - (yoe / 100)) in
  let mp = ((5 * doy) + 2) / 153 in
  let d = doy - (((153 * mp) + 2) / 5) + 1 in
  let m = if mp < 10 then mp + 3 else mp - 9 in
  let y = if m <= 2 then y + 1 else y in
  (y, m, d)

let weekday_of_days days = (((days mod 7) + 7) mod 7 + 4) mod 7

let weekday_names = [| "Sun"; "Mon"; "Tue"; "Wed"; "Thu"; "Fri"; "Sat" |]

let month_names =
  [| "Jan"; "Feb"; "Mar"; "Apr"; "May"; "Jun";
     "Jul"; "Aug"; "Sep"; "Oct"; "Nov"; "Dec" |]

(* Days from civil date (inverse of civil_of_days; same source). *)
let days_of_civil y m d =
  let y = if m <= 2 then y - 1 else y in
  let era = (if y >= 0 then y else y - 399) / 400 in
  let yoe = y - (era * 400) in
  let mp = if m > 2 then m - 3 else m + 9 in
  let doy = (((153 * mp) + 2) / 5) + d - 1 in
  let doe = (yoe * 365) + (yoe / 4) - (yoe / 100) + doy in
  (era * 146097) + doe - 719468

let month_of_name name =
  let rec scan i =
    if i >= 12 then None
    else if month_names.(i) = name then Some (i + 1)
    else scan (i + 1)
  in
  scan 0

(* "Sun, 06 Nov 1994 08:49:37 GMT" *)
let parse s =
  let s = String.trim s in
  match String.split_on_char ' ' s with
  | [ _weekday; day; month; year; time; "GMT" ] -> (
      match
        ( int_of_string_opt day,
          month_of_name month,
          int_of_string_opt year,
          String.split_on_char ':' time )
      with
      | Some d, Some m, Some y, [ hh; mm; ss ] -> (
          match
            (int_of_string_opt hh, int_of_string_opt mm, int_of_string_opt ss)
          with
          | Some hh, Some mm, Some ss
            when d >= 1 && d <= 31 && hh < 24 && mm < 60 && ss < 61 ->
              Some
                (float_of_int
                   ((days_of_civil y m d * 86400) + (hh * 3600) + (mm * 60) + ss))
          | _ -> None)
      | _ -> None)
  | _ -> None

let format ts =
  let total = int_of_float (floor ts) in
  let days = if total >= 0 then total / 86400 else (total - 86399) / 86400 in
  let secs = total - (days * 86400) in
  let year, month, day = civil_of_days days in
  let hh = secs / 3600 in
  let mm = secs mod 3600 / 60 in
  let ss = secs mod 60 in
  Printf.sprintf "%s, %02d %s %04d %02d:%02d:%02d GMT"
    weekday_names.(weekday_of_days days)
    day
    month_names.(month - 1)
    year hh mm ss
