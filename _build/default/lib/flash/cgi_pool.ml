type app = { mailbox : (unit -> unit) Sim.Sync.Mailbox.t }

type t = {
  kernel : Simos.Kernel.t;
  cpu : float;
  think : float;
  response_bytes : int;
  footprint : int;
  by_script : (string, app) Hashtbl.t;
  mutable requests : int;
}

let create kernel ~cpu ~think ~response_bytes ~footprint =
  if cpu < 0. || think < 0. then invalid_arg "Cgi_pool.create: negative cost";
  if response_bytes <= 0 then
    invalid_arg "Cgi_pool.create: response_bytes <= 0";
  {
    kernel;
    cpu;
    think;
    response_bytes;
    footprint;
    by_script = Hashtbl.create 16;
    requests = 0;
  }

(* The persistent application: wait for a forwarded request, compute,
   possibly block, deliver.  All charges land on this process. *)
let app_loop t mailbox () =
  let rec loop () =
    let job = Sim.Sync.Mailbox.recv mailbox in
    Simos.Kernel.charge t.kernel t.cpu;
    if t.think > 0. then Sim.Proc.delay t.think;
    job ();
    loop ()
  in
  loop ()

let app_for t script =
  match Hashtbl.find_opt t.by_script script with
  | Some app -> app
  | None ->
      (* First request for this script: the server forks the app. *)
      Simos.Kernel.fork_charge t.kernel ~footprint:t.footprint;
      let app = { mailbox = Sim.Sync.Mailbox.create () } in
      Hashtbl.replace t.by_script script app;
      ignore
        (Sim.Proc.spawn
           (Simos.Kernel.engine t.kernel)
           ~name:("cgi:" ^ script)
           (app_loop t app.mailbox));
      app

let dispatch t ~script ~on_done =
  t.requests <- t.requests + 1;
  let app = app_for t script in
  (* Forward the request over the app's pipe. *)
  Simos.Kernel.charge t.kernel
    (Simos.Kernel.profile t.kernel).Simos.Os_profile.ipc_send;
  let bytes = t.response_bytes in
  Sim.Sync.Mailbox.send app.mailbox (fun () -> on_done ~bytes)

let apps t = Hashtbl.length t.by_script
let requests t = t.requests
