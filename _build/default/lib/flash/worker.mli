(** The process-per-request architectures: MP and MT.

    Each worker runs the basic steps sequentially for one connection at a
    time, with blocking kernel calls; the OS overlaps disk, CPU and
    network by switching among workers (§3.1/§3.2).  MP workers get
    private caches ([caches] differs per worker) and need no locks; MT
    workers share the runtime's caches and serialize on its mutex,
    paying the lock CPU cost. *)

(** [run rt caches ()] is the body of one worker process; it never
    returns. *)
val run : Runtime.t -> Runtime.caches -> unit -> unit
