(** Feedback-based memory-residency predictor (§5.7).

    On operating systems with neither [mincore] nor [mlock], the paper
    proposes that Flash run its own clock-like algorithm to *predict*
    which cached file pages are resident, adapting the assumed cache
    size with feedback from page-fault counters.  This module implements
    that fallback: an application-level LRU over recently transmitted
    chunks, bounded by an assumed resident-set size that grows on
    confirmed predictions and shrinks multiplicatively whenever an
    inline access actually blocked (a page fault the predictor failed to
    anticipate). *)

type t

(** [create ~initial_bytes ~min_bytes ~max_bytes] *)
val create : initial_bytes:int -> min_bytes:int -> max_bytes:int -> t

(** Would the predictor transmit this range inline (believing it
    resident)? *)
val predict_resident : t -> Simos.Fs.file -> off:int -> len:int -> bool

(** Record that the range was (re)loaded or transmitted — it is now
    believed resident. *)
val note_access : t -> Simos.Fs.file -> off:int -> len:int -> unit

(** An inline access the predictor approved actually blocked on disk:
    shrink the assumed resident set and forget the range. *)
val note_fault : t -> Simos.Fs.file -> off:int -> len:int -> unit

(** An inline access the predictor approved completed without blocking:
    grow the assumed resident set slowly. *)
val note_correct : t -> unit

val assumed_bytes : t -> int
val faults : t -> int
val correct_predictions : t -> int
