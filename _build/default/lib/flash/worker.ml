(* MT serializes cache access on the shared mutex; MP/single-process
   configurations pass through. *)
let with_cache_lock rt f =
  match rt.Runtime.cache_mutex with
  | None -> f ()
  | Some mutex ->
      Simos.Kernel.lock_charge rt.Runtime.kernel;
      Sim.Sync.Mutex.lock mutex;
      let result = f () in
      Sim.Sync.Mutex.unlock mutex;
      result

let translate rt caches path =
  let cached =
    with_cache_lock rt (fun () -> Runtime.translate_cached rt caches path)
  in
  match cached with
  | Some file -> Some file
  | None -> (
      (* The disk-touching part runs outside the lock — the paper notes
         MT only matches Flash when lock holding is minimized. *)
      match Simos.Kernel.open_stat rt.Runtime.kernel path with
      | Some file ->
          with_cache_lock rt (fun () ->
              Pathname_cache.insert caches.Runtime.pathname path file);
          Some file
      | None -> None)

let send_response rt caches conn (resp : Runtime.response) =
  let kernel = rt.Runtime.kernel in
  let hlen = String.length resp.Runtime.header in
  let misalign = Runtime.misaligned_budget rt resp in
  (match resp.Runtime.file with
  | None ->
      let len =
        hlen + if resp.Runtime.head_only then 0 else resp.Runtime.body_len
      in
      Simos.Kernel.send_blocking kernel conn ~len ~misaligned_bytes:misalign
  | Some _ when resp.Runtime.head_only ->
      Simos.Kernel.send_blocking kernel conn ~len:hlen ~misaligned_bytes:0
  | Some file ->
      let chunk_bytes = rt.Runtime.config.Config.mmap_chunk_bytes in
      let body = resp.Runtime.body_len in
      let rec send_chunk off ~first =
        if off < body then begin
          let index = off / chunk_bytes in
          let clen = min chunk_bytes (body - off) in
          let chunk =
            with_cache_lock rt (fun () ->
                Mmap_cache.acquire caches.Runtime.mmap file ~index)
          in
          (* Blocking read: only this worker stalls on a miss. *)
          Simos.Kernel.page_in kernel file ~off ~len:clen;
          Runtime.charge_body_copy rt clen;
          let len = clen + if first then hlen else 0 in
          let mis = if first then misalign else 0 in
          Simos.Kernel.send_blocking kernel conn ~len ~misaligned_bytes:mis;
          with_cache_lock rt (fun () ->
              Mmap_cache.release caches.Runtime.mmap chunk);
          send_chunk (off + clen) ~first:false
        end
      in
      send_chunk 0 ~first:true);
  Runtime.finished rt resp;
  Simos.Net.mark_response_done conn

let build_response rt caches (req : Http.Request.t) ~keep =
  match Runtime.resolve_path rt req with
  | None -> Runtime.error_response rt req Http.Status.Forbidden ~keep
  | Some path -> (
      match translate rt caches path with
      | Some file ->
          with_cache_lock rt (fun () ->
              Runtime.ok_response rt caches req file ~keep)
      | None -> Runtime.error_response rt req Http.Status.Not_found ~keep)

(* Serve every request arriving on one connection, then loop to accept. *)
let serve_connection rt caches conn =
  let kernel = rt.Runtime.kernel in
  let rec request_loop rbuf =
    match Http.Request.parse rbuf with
    | Http.Request.Incomplete -> (
        match Simos.Kernel.recv_blocking kernel conn ~max_bytes:8192 with
        | `Eof -> Simos.Kernel.close kernel conn
        | `Data data -> request_loop (rbuf ^ data))
    | Http.Request.Bad _ ->
        let fake =
          {
            Http.Request.meth = Http.Request.Get;
            raw_target = "/";
            path = "/";
            query = None;
            version = (1, 0);
            headers = [];
          }
        in
        let resp =
          Runtime.error_response rt fake Http.Status.Bad_request ~keep:false
        in
        send_response rt caches conn resp;
        Simos.Kernel.close kernel conn
    | Http.Request.Complete (req, consumed) ->
        Runtime.charge_request rt ~bytes:consumed;
        let keep = Http.Request.keep_alive req in
        let resp =
          match Runtime.resolve_path rt req with
          | Some path when Runtime.is_cgi_path path -> (
              (* §5.6: forward to the application process and block this
                 worker for the reply — only this worker waits. *)
              match rt.Runtime.cgi with
              | Some cgi_pool ->
                  let reply = Sim.Sync.Mailbox.create () in
                  Cgi_pool.dispatch cgi_pool ~script:path
                    ~on_done:(fun ~bytes -> Sim.Sync.Mailbox.send reply bytes);
                  let bytes = Sim.Sync.Mailbox.recv reply in
                  Runtime.cgi_response rt req ~bytes ~keep
              | None ->
                  Runtime.error_response rt req Http.Status.Forbidden ~keep)
          | Some _ | None -> build_response rt caches req ~keep
        in
        send_response rt caches conn resp;
        let leftover =
          String.sub rbuf consumed (String.length rbuf - consumed)
        in
        if resp.Runtime.keep && not (Simos.Net.client_closed conn) then
          request_loop leftover
        else Simos.Kernel.close kernel conn
  in
  request_loop ""

let run rt caches () =
  let kernel = rt.Runtime.kernel in
  let rec accept_loop () =
    let conn = Simos.Kernel.accept_blocking kernel in
    serve_connection rt caches conn;
    accept_loop ()
  in
  accept_loop ()
