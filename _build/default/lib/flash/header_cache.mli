(** Response header cache (§5.3): inode → rendered HTTP response header.

    The header is derived from the file, so the cache needs no separate
    invalidation: an entry is valid only while the file's mtime matches
    what it was rendered against; a changed mtime regenerates it. *)

type t

val create : enabled:bool -> t

val enabled : t -> bool

(** [find t file] returns the cached header when present and still valid
    for [file.mtime]. *)
val find : t -> Simos.Fs.file -> string option

val insert : t -> Simos.Fs.file -> string -> unit
val length : t -> int
val hits : t -> int
val misses : t -> int

(** Stale entries dropped because the file changed. *)
val invalidations : t -> int
