(** Dynamic content via persistent CGI application processes (§5.6).

    A request for a dynamic document is forwarded over a pipe to the
    auxiliary application process for that script — forked on first use
    and kept alive afterwards (FastCGI-style persistence, amortizing the
    fork).  The application computes (its own CPU slice) and may block
    (simulated think time) without affecting the server, then posts its
    output length back through the supplied completion.  Completions run
    in the application's process context: event loops hand them a pipe
    write, blocking workers a mailbox send. *)

type t

val create :
  Simos.Kernel.t ->
  cpu:float ->
  think:float ->
  response_bytes:int ->
  footprint:int ->
  t

(** [dispatch t ~script ~on_done] forwards a request to [script]'s
    process (forking it first if needed — charged to the caller, as the
    server does the fork).  [on_done ~bytes] later runs in the app's
    context.  Must run in process context. *)
val dispatch : t -> script:string -> on_done:(bytes:int -> unit) -> unit

(** Distinct application processes alive. *)
val apps : t -> int

(** Requests forwarded so far. *)
val requests : t -> int
