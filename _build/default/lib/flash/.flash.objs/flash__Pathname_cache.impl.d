lib/flash/pathname_cache.ml: Flash_util Simos
