lib/flash/pathname_cache.mli: Simos
