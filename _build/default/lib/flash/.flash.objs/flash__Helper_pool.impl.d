lib/flash/helper_pool.ml: List Printf Queue Sim Simos
