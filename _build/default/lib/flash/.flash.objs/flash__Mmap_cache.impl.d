lib/flash/mmap_cache.ml: Flash_util Hashtbl Simos
