lib/flash/residency.mli: Simos
