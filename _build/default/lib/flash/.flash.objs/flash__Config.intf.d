lib/flash/config.mli:
