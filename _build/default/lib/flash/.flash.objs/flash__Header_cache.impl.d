lib/flash/header_cache.ml: Hashtbl Simos
