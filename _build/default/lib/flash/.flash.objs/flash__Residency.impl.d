lib/flash/residency.ml: Flash_util List Simos
