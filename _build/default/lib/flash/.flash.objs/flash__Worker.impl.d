lib/flash/worker.ml: Cgi_pool Config Http Mmap_cache Pathname_cache Runtime Sim Simos String
