lib/flash/header_cache.mli: Simos
