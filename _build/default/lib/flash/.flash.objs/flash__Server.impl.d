lib/flash/server.ml: Config Event_loop Header_cache Helper_pool Mmap_cache Pathname_cache Printf Runtime Sim Simos Worker
