lib/flash/config.ml:
