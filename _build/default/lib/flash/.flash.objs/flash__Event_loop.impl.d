lib/flash/event_loop.ml: Cgi_pool Config Helper_pool Http List Mmap_cache Pathname_cache Residency Runtime Simos String
