lib/flash/helper_pool.mli: Simos
