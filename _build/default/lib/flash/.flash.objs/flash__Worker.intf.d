lib/flash/worker.mli: Runtime
