lib/flash/server.mli: Config Simos
