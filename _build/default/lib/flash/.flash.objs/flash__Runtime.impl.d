lib/flash/runtime.ml: Cgi_pool Config Header_cache Http Mmap_cache Pathname_cache Residency Sim Simos String
