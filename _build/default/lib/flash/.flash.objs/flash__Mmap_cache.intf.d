lib/flash/mmap_cache.mli: Simos
