lib/flash/cgi_pool.mli: Simos
