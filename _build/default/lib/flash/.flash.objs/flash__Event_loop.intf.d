lib/flash/event_loop.mli: Helper_pool Runtime
