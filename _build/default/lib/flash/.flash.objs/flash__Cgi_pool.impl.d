lib/flash/cgi_pool.ml: Hashtbl Sim Simos
