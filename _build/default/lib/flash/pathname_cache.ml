type t = {
  lru : (string, Simos.Fs.file) Flash_util.Lru.t option;
  mutable hits : int;
  mutable misses : int;
}

let create ~entries =
  if entries < 0 then invalid_arg "Pathname_cache.create: negative entries";
  let lru =
    if entries = 0 then None
    else Some (Flash_util.Lru.create ~capacity:entries ())
  in
  { lru; hits = 0; misses = 0 }

let enabled t = t.lru <> None

let find t path =
  match t.lru with
  | None ->
      t.misses <- t.misses + 1;
      None
  | Some lru -> (
      match Flash_util.Lru.find lru path with
      | Some file ->
          t.hits <- t.hits + 1;
          Some file
      | None ->
          t.misses <- t.misses + 1;
          None)

let insert t path file =
  match t.lru with
  | None -> ()
  | Some lru -> Flash_util.Lru.add lru path file ~weight:1

let invalidate t path =
  match t.lru with
  | None -> ()
  | Some lru -> ignore (Flash_util.Lru.remove lru path)

let length t =
  match t.lru with None -> 0 | Some lru -> Flash_util.Lru.length lru

let hits t = t.hits
let misses t = t.misses
