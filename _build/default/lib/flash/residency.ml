(* Chunks are tracked at a fixed granularity independent of the mmap
   cache's chunking so the predictor is self-contained. *)
let granularity = 65536

type key = { inode : int; slot : int }

type t = {
  min_bytes : int;
  max_bytes : int;
  mutable assumed : int;
  believed : (key, unit) Flash_util.Lru.t;
  mutable faults : int;
  mutable correct : int;
}

let create ~initial_bytes ~min_bytes ~max_bytes =
  if min_bytes <= 0 || initial_bytes < min_bytes || max_bytes < initial_bytes
  then invalid_arg "Residency.create: need 0 < min <= initial <= max";
  {
    min_bytes;
    max_bytes;
    assumed = initial_bytes;
    believed = Flash_util.Lru.create ~capacity:initial_bytes ();
    faults = 0;
    correct = 0;
  }

let slots_of file ~off ~len =
  ignore file;
  if len <= 0 then []
  else begin
    let first = off / granularity and last = (off + len - 1) / granularity in
    List.init (last - first + 1) (fun i -> first + i)
  end

let key (file : Simos.Fs.file) slot = { inode = file.Simos.Fs.inode; slot }

let predict_resident t file ~off ~len =
  List.for_all
    (fun slot -> Flash_util.Lru.mem t.believed (key file slot))
    (slots_of file ~off ~len)

let note_access t file ~off ~len =
  List.iter
    (fun slot ->
      let bytes = min granularity (file.Simos.Fs.size - (slot * granularity)) in
      Flash_util.Lru.add t.believed (key file slot) () ~weight:(max 1 bytes))
    (slots_of file ~off ~len)

let resize t bytes =
  let clamped = min t.max_bytes (max t.min_bytes bytes) in
  t.assumed <- clamped;
  Flash_util.Lru.set_capacity t.believed clamped

let note_fault t file ~off ~len =
  t.faults <- t.faults + 1;
  List.iter
    (fun slot -> ignore (Flash_util.Lru.remove t.believed (key file slot)))
    (slots_of file ~off ~len);
  (* Multiplicative decrease: the cache is smaller than we thought. *)
  resize t (t.assumed * 9 / 10)

let note_correct t =
  t.correct <- t.correct + 1;
  (* Additive increase, one page at a time. *)
  if t.assumed < t.max_bytes then resize t (t.assumed + 8192)

let assumed_bytes t = t.assumed
let faults t = t.faults
let correct_predictions t = t.correct
