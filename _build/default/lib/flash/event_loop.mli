(** The event-driven architectures: SPED, AMPED (Flash) and the Zeus
    model.

    One process multiplexes every connection through [select].  The
    difference between the variants is confined to how potentially
    blocking disk work is performed (§3.3/§3.4):
    - SPED/Zeus run pathname translation and page faults inline — the
      whole server stalls when they miss in the buffer cache;
    - AMPED tests residency with [mincore] first and ships misses to
      {!Helper_pool} helpers, parking only that connection until the
      completion arrives on the notification pipe.

    The Zeus model additionally handles ready events for small responses
    first ([small_request_priority]) and sends unaligned headers. *)

(** Completion messages helpers post back to the event loop. *)
type helper_result

(** [run rt ~pool ()] is the body of one event-loop process; it never
    returns (the simulation's time bound ends it).  [pool] must be
    [Some _] exactly for the AMPED architecture. *)
val run :
  Runtime.t -> pool:helper_result Helper_pool.t option -> unit -> unit

(** Connections this loop is currently tracking (diagnostics). *)
val live_connections : Runtime.t -> int
