type entry = { header : string; mtime : float }

type t = {
  table : (int, entry) Hashtbl.t option;
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;
}

let create ~enabled =
  {
    table = (if enabled then Some (Hashtbl.create 1024) else None);
    hits = 0;
    misses = 0;
    invalidations = 0;
  }

let enabled t = t.table <> None

let find t (file : Simos.Fs.file) =
  match t.table with
  | None ->
      t.misses <- t.misses + 1;
      None
  | Some table -> (
      match Hashtbl.find_opt table file.Simos.Fs.inode with
      | Some entry when entry.mtime = file.Simos.Fs.mtime ->
          t.hits <- t.hits + 1;
          Some entry.header
      | Some _ ->
          Hashtbl.remove table file.Simos.Fs.inode;
          t.invalidations <- t.invalidations + 1;
          t.misses <- t.misses + 1;
          None
      | None ->
          t.misses <- t.misses + 1;
          None)

let insert t (file : Simos.Fs.file) header =
  match t.table with
  | None -> ()
  | Some table ->
      Hashtbl.replace table file.Simos.Fs.inode
        { header; mtime = file.Simos.Fs.mtime }

let length t = match t.table with None -> 0 | Some tbl -> Hashtbl.length tbl
let hits t = t.hits
let misses t = t.misses
let invalidations t = t.invalidations
