lib/util/lru.mli:
