type waiter = { pid : Proc.id; dt : float; resume : unit -> unit }

type t = {
  engine : Engine.t;
  ctx_switch_cost : float;
  mutable queue : waiter list;  (* FIFO: append at tail *)
  mutable busy : bool;
  mutable last_pid : Proc.id;
  mutable busy_time : float;
  mutable switches : int;
}

let create engine ~ctx_switch_cost =
  {
    engine;
    ctx_switch_cost;
    queue = [];
    busy = false;
    last_pid = -1;
    busy_time = 0.;
    switches = 0;
  }

(* Non-preemptive run-to-block scheduling: the process holding the CPU
   keeps it as long as it has more work queued (its next consume is
   granted ahead of FIFO order); a context switch is charged only when
   the CPU really passes to a different process.  The grant decision is
   deferred one event so that a just-resumed process gets to enqueue its
   next slice before the scheduler picks. *)
let pick t =
  let rec extract acc = function
    | [] -> None
    | w :: rest when w.pid = t.last_pid -> Some (w, List.rev_append acc rest)
    | w :: rest -> extract (w :: acc) rest
  in
  match extract [] t.queue with
  | Some (w, rest) ->
      t.queue <- rest;
      Some w
  | None -> (
      match t.queue with
      | [] -> None
      | w :: rest ->
          t.queue <- rest;
          Some w)

let rec grant t =
  match pick t with
  | None -> t.busy <- false
  | Some w ->
      let switching = t.last_pid <> -1 && w.pid <> t.last_pid in
      let cost = w.dt +. (if switching then t.ctx_switch_cost else 0.) in
      if switching then t.switches <- t.switches + 1;
      t.last_pid <- w.pid;
      t.busy_time <- t.busy_time +. cost;
      Engine.schedule t.engine ~delay:cost (fun () ->
          w.resume ();
          (* Defer the next pick so the resumed process can requeue. *)
          Engine.schedule t.engine (fun () -> grant t))

let consume t dt =
  if dt < 0. then invalid_arg "Cpu.consume: negative time";
  let pid = Proc.self () in
  Proc.suspend (fun resume ->
      t.queue <- t.queue @ [ { pid; dt; resume } ];
      if not t.busy then begin
        t.busy <- true;
        grant t
      end)

(* Forget CPU affinity: the next grant pays a context switch even if it
   goes to the same process.  Models a scheduler dispatch point (e.g. a
   worker passing through accept). *)
let reschedule t = if t.last_pid >= 0 then t.last_pid <- -2

let busy_time t = t.busy_time
let switches t = t.switches

let utilization t ~elapsed = if elapsed <= 0. then 0. else t.busy_time /. elapsed

let queue_length t = List.length t.queue + if t.busy then 1 else 0
