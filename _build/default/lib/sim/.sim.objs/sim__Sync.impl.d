lib/sim/sync.ml: Proc Queue
