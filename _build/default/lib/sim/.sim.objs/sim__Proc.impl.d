lib/sim/proc.ml: Effect Engine Hashtbl Printf
