lib/sim/sync.mli:
