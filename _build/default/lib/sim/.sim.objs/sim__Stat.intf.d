lib/sim/stat.mli:
