lib/sim/rng.mli:
