lib/sim/heap.mli:
