lib/sim/cpu.ml: Engine List Proc
