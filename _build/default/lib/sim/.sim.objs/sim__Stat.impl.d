lib/sim/stat.ml: Array
