type id = int

exception Negative_delay

type _ Effect.t +=
  | Delay : float -> unit Effect.t
  | Suspend : (('a -> unit) -> unit) -> 'a Effect.t
  | Self : id Effect.t

let next_pid = ref 0

let names : (id, string) Hashtbl.t = Hashtbl.create 64

let name_of pid =
  match Hashtbl.find_opt names pid with Some n -> n | None -> "?"

let spawned_count () = !next_pid

let spawn engine ?(name = "proc") f =
  let pid = !next_pid in
  incr next_pid;
  Hashtbl.replace names pid name;
  let handler : (unit, unit) Effect.Deep.handler =
    {
      retc = (fun () -> ());
      exnc = (fun e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Delay dt ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  if dt < 0. then Effect.Deep.discontinue k Negative_delay
                  else
                    Engine.schedule engine ~delay:dt (fun () ->
                        Effect.Deep.continue k ()))
          | Suspend register ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  let resumed = ref false in
                  let resume v =
                    if !resumed then
                      failwith
                        (Printf.sprintf "Proc %s: resumed twice" (name_of pid));
                    resumed := true;
                    Engine.schedule engine (fun () -> Effect.Deep.continue k v)
                  in
                  register resume)
          | Self ->
              Some (fun (k : (a, unit) Effect.Deep.continuation) ->
                  Effect.Deep.continue k pid)
          | _ -> None);
    }
  in
  Engine.schedule engine (fun () -> Effect.Deep.match_with f () handler);
  pid

let self () = Effect.perform Self

let delay dt = Effect.perform (Delay dt)

let yield () = delay 0.

let suspend register = Effect.perform (Suspend register)
