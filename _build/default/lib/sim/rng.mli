(** Deterministic pseudo-random number generation (splitmix64).

    Every simulation carries its own generator so that experiments are
    reproducible from a seed and independent of global state.  The
    distribution helpers cover what the workload generators need. *)

type t

val create : seed:int -> t

(** [split t] derives an independent generator (for parallel streams). *)
val split : t -> t

(** Next raw 64-bit value. *)
val bits64 : t -> int64

(** Uniform float in [\[0, 1)]. *)
val float : t -> float

(** Uniform int in [\[0, bound)]; [bound] must be positive. *)
val int : t -> int -> int

(** Uniform float in [\[lo, hi)]. *)
val uniform : t -> lo:float -> hi:float -> float

(** Exponential with the given [mean]. *)
val exponential : t -> mean:float -> float

(** Lognormal with parameters [mu] and [sigma] of the underlying normal. *)
val lognormal : t -> mu:float -> sigma:float -> float

(** Pareto with scale [xm] and shape [alpha]. *)
val pareto : t -> xm:float -> alpha:float -> float

(** Standard normal via Box-Muller. *)
val normal : t -> float

(** In-place Fisher-Yates shuffle. *)
val shuffle : t -> 'a array -> unit
