type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed64 = bits64 t in
  { state = seed64 }

(* 53 random bits scaled into [0,1). *)
let float t =
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let mask = Int64.of_int max_int in
  let v = Int64.to_int (Int64.logand (bits64 t) mask) in
  v mod bound

let uniform t ~lo ~hi = lo +. ((hi -. lo) *. float t)

let exponential t ~mean =
  let u = 1.0 -. float t in
  -.mean *. log u

let normal t =
  let u1 = 1.0 -. float t in
  let u2 = float t in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let lognormal t ~mu ~sigma = exp (mu +. (sigma *. normal t))

let pareto t ~xm ~alpha =
  let u = 1.0 -. float t in
  xm /. (u ** (1.0 /. alpha))

let shuffle t a =
  let n = Array.length a in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
