(** Blocking synchronization primitives for simulated processes.

    All operations that can block must run inside a {!Proc.spawn}ed
    process.  Wake-ups go through the engine queue, so ordering is FIFO
    and deterministic.  [Mutex] counts contended acquisitions: the MT
    server architecture charges CPU for them, which is how the paper's
    "fine-grained synchronization" cost appears in the model. *)

module Mutex : sig
  type t

  val create : unit -> t
  val lock : t -> unit
  val try_lock : t -> bool

  (** @raise Invalid_argument if the mutex is not locked. *)
  val unlock : t -> unit

  val locked : t -> bool

  (** Number of [lock] calls that had to wait. *)
  val contended_count : t -> int

  (** Total [lock] calls. *)
  val lock_count : t -> int
end

module Condition : sig
  type t

  val create : unit -> t

  (** Atomically release the mutex, wait for a signal, reacquire. *)
  val wait : t -> Mutex.t -> unit

  val signal : t -> unit
  val broadcast : t -> unit
  val waiters : t -> int
end

module Semaphore : sig
  type t

  (** @raise Invalid_argument if [value] is negative. *)
  val create : int -> t

  val acquire : t -> unit
  val try_acquire : t -> bool
  val release : t -> unit
  val value : t -> int
end

(** Unbounded FIFO channel; [recv] blocks while empty. *)
module Mailbox : sig
  type 'a t

  val create : unit -> 'a t
  val send : 'a t -> 'a -> unit
  val recv : 'a t -> 'a
  val length : 'a t -> int

  (** Number of processes blocked in [recv]. *)
  val waiting : 'a t -> int
end
