module Mutex = struct
  type t = {
    mutable locked : bool;
    waiters : (unit -> unit) Queue.t;
    mutable contended : int;
    mutable locks : int;
  }

  let create () = { locked = false; waiters = Queue.create (); contended = 0; locks = 0 }

  let lock t =
    t.locks <- t.locks + 1;
    if not t.locked then t.locked <- true
    else begin
      t.contended <- t.contended + 1;
      Proc.suspend (fun resume -> Queue.push resume t.waiters)
    end

  let try_lock t =
    if t.locked then false
    else begin
      t.locks <- t.locks + 1;
      t.locked <- true;
      true
    end

  (* Ownership passes directly to the first waiter, so [locked] stays true. *)
  let unlock t =
    if not t.locked then invalid_arg "Sync.Mutex.unlock: not locked";
    match Queue.take_opt t.waiters with
    | Some resume -> resume ()
    | None -> t.locked <- false

  let locked t = t.locked
  let contended_count t = t.contended
  let lock_count t = t.locks
end

module Condition = struct
  type t = { waiters : (unit -> unit) Queue.t }

  let create () = { waiters = Queue.create () }

  let wait t mutex =
    Proc.suspend (fun resume ->
        Queue.push resume t.waiters;
        Mutex.unlock mutex);
    Mutex.lock mutex

  let signal t =
    match Queue.take_opt t.waiters with Some resume -> resume () | None -> ()

  let broadcast t =
    let pending = Queue.length t.waiters in
    for _ = 1 to pending do
      signal t
    done

  let waiters t = Queue.length t.waiters
end

module Semaphore = struct
  type t = { mutable count : int; waiters : (unit -> unit) Queue.t }

  let create value =
    if value < 0 then invalid_arg "Sync.Semaphore.create: negative value";
    { count = value; waiters = Queue.create () }

  let acquire t =
    if t.count > 0 then t.count <- t.count - 1
    else Proc.suspend (fun resume -> Queue.push resume t.waiters)

  let try_acquire t =
    if t.count > 0 then begin
      t.count <- t.count - 1;
      true
    end
    else false

  (* A released unit goes straight to a waiter when one exists. *)
  let release t =
    match Queue.take_opt t.waiters with
    | Some resume -> resume ()
    | None -> t.count <- t.count + 1

  let value t = t.count
end

module Mailbox = struct
  type 'a t = { items : 'a Queue.t; readers : ('a -> unit) Queue.t }

  let create () = { items = Queue.create (); readers = Queue.create () }

  let send t v =
    match Queue.take_opt t.readers with
    | Some resume -> resume v
    | None -> Queue.push v t.items

  let recv t =
    match Queue.take_opt t.items with
    | Some v -> v
    | None -> Proc.suspend (fun resume -> Queue.push resume t.readers)

  let length t = Queue.length t.items
  let waiting t = Queue.length t.readers
end
