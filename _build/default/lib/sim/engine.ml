type event = {
  time : float;
  seq : int;
  fn : unit -> unit;
  mutable cancelled : bool;
}

type t = {
  mutable now : float;
  heap : event Heap.t;
  mutable seq : int;
  rng : Rng.t;
}

let compare_events a b =
  let c = Float.compare a.time b.time in
  if c <> 0 then c else Int.compare a.seq b.seq

let create ?(seed = 42) () =
  { now = 0.; heap = Heap.create ~cmp:compare_events; seq = 0; rng = Rng.create ~seed }

let now t = t.now

let rng t = t.rng

let schedule_cancellable t ?(delay = 0.) fn =
  if delay < 0. then invalid_arg "Engine.schedule: negative delay";
  let ev = { time = t.now +. delay; seq = t.seq; fn; cancelled = false } in
  t.seq <- t.seq + 1;
  Heap.push t.heap ev;
  ev

let schedule t ?delay fn = ignore (schedule_cancellable t ?delay fn)

let cancel ev = ev.cancelled <- true

let pending t = Heap.length t.heap

let run ?until t =
  let fired = ref 0 in
  let stop = ref false in
  while (not !stop) && not (Heap.is_empty t.heap) do
    let ev = Heap.peek_min t.heap in
    let past_deadline =
      match until with Some limit -> ev.time > limit | None -> false
    in
    if past_deadline then stop := true
    else begin
      ignore (Heap.pop_min t.heap);
      if not ev.cancelled then begin
        t.now <- ev.time;
        incr fired;
        ev.fn ()
      end
    end
  done;
  (match until with
  | Some limit when t.now < limit && Heap.is_empty t.heap -> t.now <- limit
  | Some limit when !stop -> t.now <- limit
  | _ -> ());
  !fired
