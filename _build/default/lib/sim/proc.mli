(** Simulated processes.

    A simulated process is an OCaml function run under an effect handler:
    blocking operations ({!delay}, {!suspend}, and everything in {!Sync}
    and {!Cpu} built on them) capture the continuation and hand control
    back to the {!Engine}, which resumes it when the virtual time or the
    awaited condition arrives.  This lets the MP/MT server architectures
    be written as straight-line blocking code while SPED/AMPED run as a
    single event-loop process — mirroring how the paper's four servers
    share one code base. *)

type id = int

(** Raised inside a process on [delay] with a negative duration. *)
exception Negative_delay

(** [spawn engine ~name f] schedules process [f] to start at the current
    virtual time and returns its id.  An exception escaping [f] is
    re-raised out of the engine's [run] (a simulation bug, not a modeled
    condition). *)
val spawn : Engine.t -> ?name:string -> (unit -> unit) -> id

(** Id of the running process.  Must be called from process context. *)
val self : unit -> id

(** Name given at [spawn] time, for diagnostics. *)
val name_of : id -> string

(** Advance virtual time by [dt] without consuming any modeled resource. *)
val delay : float -> unit

(** Reschedule at the same virtual time, letting other ready events run. *)
val yield : unit -> unit

(** [suspend register] parks the process.  [register] receives a one-shot
    [resume] function; calling it schedules the process to continue with
    the provided value.  All blocking primitives reduce to this. *)
val suspend : (('a -> unit) -> unit) -> 'a

(** Number of processes spawned so far (across all engines; ids are
    globally unique). *)
val spawned_count : unit -> int
