(** Discrete-event simulation engine.

    The engine owns a virtual clock and a pending-event heap.  Events fire
    in (time, insertion-order) order, which makes runs fully deterministic
    for a given seed.  All simulated OS components and processes schedule
    their work through an engine. *)

type t

(** A handle to a scheduled event, used for cancellation (timeouts). *)
type event

val create : ?seed:int -> unit -> t

(** Current virtual time, in seconds. *)
val now : t -> float

(** The engine's random stream. *)
val rng : t -> Rng.t

(** [schedule t ~delay f] runs [f] at [now t +. delay] (default [0.]).
    @raise Invalid_argument if [delay] is negative. *)
val schedule : t -> ?delay:float -> (unit -> unit) -> unit

(** Like {!schedule} but returns a handle that {!cancel} accepts. *)
val schedule_cancellable : t -> ?delay:float -> (unit -> unit) -> event

(** Cancelling a fired or already-cancelled event is a no-op. *)
val cancel : event -> unit

(** [run ?until t] fires events until the heap is empty or the clock
    would pass [until].  Returns the number of events fired. *)
val run : ?until:float -> t -> int

(** Number of events waiting in the queue (including cancelled ones not
    yet reaped). *)
val pending : t -> int
