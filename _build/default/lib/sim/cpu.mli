(** The simulated uniprocessor.

    Every modeled computation charges time here through a FIFO queue.
    When the CPU passes from one process to another it additionally
    charges [ctx_switch_cost] — the mechanism behind the paper's claim
    that SPED/AMPED avoid the context-switch overhead MP/MT pay: a
    single-process server keeps the CPU on one pid, while 32 processes
    interleaving on a shared CPU switch constantly. *)

type t

val create : Engine.t -> ctx_switch_cost:float -> t

(** [consume t dt] blocks the calling process until the CPU has executed
    [dt] seconds of its work (plus a context switch if the CPU was last
    held by a different process).  Must run in process context.
    @raise Invalid_argument on negative [dt]. *)
val consume : t -> float -> unit

(** Forget which process last held the CPU, so the next grant is charged
    as a context switch regardless of who gets it.  Called at scheduler
    dispatch points — e.g. a blocking [accept] handing a connection to a
    worker process. *)
val reschedule : t -> unit

(** Total seconds the CPU has spent executing (including switches). *)
val busy_time : t -> float

(** Number of context switches charged. *)
val switches : t -> int

(** [utilization t ~elapsed] is [busy_time /. elapsed] (0 if [elapsed <= 0]). *)
val utilization : t -> elapsed:float -> float

(** Processes queued or executing right now. *)
val queue_length : t -> int
