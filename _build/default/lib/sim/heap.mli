(** Array-based binary min-heap.

    The comparison function is supplied at creation time; the element with
    the smallest key (according to [cmp]) is returned first.  Used by
    {!Engine} as the pending-event queue, where determinism requires a
    total order on events. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

(** [pop_min h] removes and returns the minimum element.
    @raise Not_found if the heap is empty. *)
val pop_min : 'a t -> 'a

(** [peek_min h] returns the minimum element without removing it.
    @raise Not_found if the heap is empty. *)
val peek_min : 'a t -> 'a

val clear : 'a t -> unit

(** [to_list h] returns all elements in unspecified order (for tests). *)
val to_list : 'a t -> 'a list
