(** The live Flash web server: a real AMPED HTTP server over the [Unix]
    module.

    One process runs a [select] event loop handling all client IO with
    non-blocking sockets; disk work for uncached files goes to
    {!Helper} threads whose completions arrive on a pipe the loop
    selects on.  The same code base also runs as:
    - [Sped]: no helpers — cold files are read inline, stalling the
      loop exactly as §3.3 describes;
    - [Mp n]: [n] forked processes each running the basic steps
      sequentially on a shared listen socket;
    - [Mt n]: [n] kernel threads doing the same inside one address
      space, sharing the file cache behind a mutex.

    Conditional GET is honoured (If-Modified-Since - 304), and an
    optional Common Log Format access log can be written.

    Features: GET/HEAD, HTTP/1.0 and 1.1 keep-alive, 32-byte-aligned
    response headers (§5.5), bounded file/header cache, CGI under
    [/cgi-bin/] (fork/exec, close-delimited output), 403 on paths
    escaping the document root. *)

type mode =
  | Amped  (** event loop + helper threads (Flash) *)
  | Sped  (** event loop only; cold files stall it *)
  | Mp of int  (** forked blocking workers *)
  | Mt of int  (** kernel threads sharing the cache behind a mutex *)

type config = {
  docroot : string;
  port : int;  (** 0 picks an ephemeral port *)
  mode : mode;
  helpers : int;  (** helper threads (AMPED) *)
  file_cache_bytes : int;
  max_cached_file : int;  (** larger files stream from disk, uncached *)
  enable_cgi : bool;
  align_headers : bool;
  server_name : string;
  idle_timeout : float;  (** close keep-alive connections idle this long *)
  access_log : string option;  (** write a Common Log Format file here *)
}

val default_config : docroot:string -> config

type stats = {
  requests : int;
  connections : int;
  errors : int;
  cache_hits : int;
  cache_misses : int;
  helper_jobs : int;
}

type t

(** Bind the listen socket and (AMPED) start the helper pool.  The event
    loop does not run until {!run} or {!start_background}. *)
val start : config -> t

(** The bound port (useful with [port = 0]). *)
val port : t -> int

(** Run the event loop in the calling thread until {!stop}. *)
val run : t -> unit

(** Run the event loop in a background thread (for tests/examples). *)
val start_background : config -> t

(** Stop the loop, close the listener, shut helpers down.  Idempotent. *)
val stop : t -> unit

val stats : t -> stats
val mode : t -> mode
