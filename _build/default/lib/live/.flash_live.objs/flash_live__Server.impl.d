lib/live/server.ml: Bytes File_cache Fun Hashtbl Helper Http List Logs Mutex Option Printf Queue Stdlib String Sys Thread Unix
