lib/live/server.mli:
