lib/live/file_cache.mli:
