lib/live/helper.ml: Bytes Condition Hashtbl List Mutex Queue Thread Unix
