lib/live/client.mli:
