lib/live/client.ml: Array Bytes Fun Http List Printf String Unix
