lib/live/helper.mli: Unix
