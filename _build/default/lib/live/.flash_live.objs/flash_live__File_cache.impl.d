lib/live/file_cache.ml: Flash_util String
