(** Disk helpers for the live AMPED server.

    Helpers execute the potentially blocking disk work — [stat] plus
    reading the file (which also warms the OS page cache) — so the main
    select loop never blocks on disk.  Following §3.4, helpers here are
    kernel threads inside the server process: OCaml's threads release
    the runtime lock during blocking syscalls, giving exactly the
    asymmetric structure the paper describes, without the fork/threads
    interaction hazards of child processes.  Completion notifications
    are written to a pipe so the main loop picks them up in [select] —
    like any other IO event. *)

type result = Found of { size : int; mtime : float } | Missing

type t

(** [create ~helpers ~on_idle_spawned] starts the pool. *)
val create : helpers:int -> t

(** File descriptor the main loop should select for readability. *)
val notify_fd : t -> Unix.file_descr

(** [dispatch t ~key ~path] queues the job; a completion tagged [key]
    will appear on the notify pipe. *)
val dispatch : t -> key:int -> path:string -> unit

(** Drain all completions currently readable (non-blocking). *)
val drain : t -> (int * result) list

val dispatched : t -> int
val shutdown : t -> unit
