type params = {
  min_seek : float;
  max_seek : float;
  rotational : float;
  per_request : float;
  transfer_rate : float;
  total_blocks : int;
  block_size : int;
}

let default_params =
  {
    min_seek = 0.002;
    max_seek = 0.018;
    rotational = 0.005;
    per_request = 0.001;
    transfer_rate = 8_000_000.;
    total_blocks = 1_048_576;
    (* 8 GB at 8 KB blocks *)
    block_size = 8192;
  }

type request = { start_block : int; nblocks : int; resume : unit -> unit }

type t = {
  engine : Sim.Engine.t;
  p : params;
  mutable queue : request list;
  mutable busy : bool;
  mutable head : int;
  mutable completed : int;
  mutable seek_time : float;
  mutable busy_time : float;
}

let create engine p =
  {
    engine;
    p;
    queue = [];
    busy = false;
    head = 0;
    completed = 0;
    seek_time = 0.;
    busy_time = 0.;
  }

let params t = t.p
let completed t = t.completed
let seek_time t = t.seek_time
let busy_time t = t.busy_time
let queue_length t = List.length t.queue + if t.busy then 1 else 0

let seek_cost t distance =
  if distance = 0 then 0.
  else
    t.p.min_seek
    +. (t.p.max_seek -. t.p.min_seek)
       *. sqrt (float_of_int distance /. float_of_int t.p.total_blocks)

(* C-LOOK: serve the queued request with the smallest start block at or
   beyond the head position; when none, sweep back to the smallest start
   block overall. *)
let pick_next t =
  let ahead =
    List.filter (fun r -> r.start_block >= t.head) t.queue
  in
  let candidates = if ahead = [] then t.queue else ahead in
  match candidates with
  | [] -> None
  | first :: rest ->
      let best =
        List.fold_left
          (fun acc r -> if r.start_block < acc.start_block then r else acc)
          first rest
      in
      Some best

let rec service t =
  match pick_next t with
  | None -> t.busy <- false
  | Some req ->
      t.busy <- true;
      t.queue <- List.filter (fun r -> r != req) t.queue;
      let seek = seek_cost t (abs (req.start_block - t.head)) in
      let bytes = req.nblocks * t.p.block_size in
      let service_time =
        t.p.per_request +. seek +. t.p.rotational
        +. (float_of_int bytes /. t.p.transfer_rate)
      in
      t.seek_time <- t.seek_time +. seek;
      t.busy_time <- t.busy_time +. service_time;
      t.head <- req.start_block + req.nblocks;
      Sim.Engine.schedule t.engine ~delay:service_time (fun () ->
          t.completed <- t.completed + 1;
          req.resume ();
          service t)

let read t ~start_block ~nblocks =
  if nblocks <= 0 then invalid_arg "Disk.read: nblocks <= 0";
  if start_block < 0 || start_block + nblocks > t.p.total_blocks then
    invalid_arg "Disk.read: extent out of range";
  Sim.Proc.suspend (fun resume ->
      t.queue <- { start_block; nblocks; resume } :: t.queue;
      if not t.busy then service t)
