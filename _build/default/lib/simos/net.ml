type t = {
  engine : Sim.Engine.t;
  nic_bandwidth : float;
  sndbuf : int;
  drain_chunk : int;
  accept_queue : conn Queue.t;
  listener : Pollable.t;
  mutable nic_active : int;
  mutable delivered : int;
  mutable created : int;
}

and conn = {
  id : int;
  net : t;
  link_rate : float;
  rtt : float;
  mutable inbox : string list;  (** received request fragments, FIFO *)
  mutable inbox_bytes : int;
  conn_readable : Pollable.t;
  conn_writable : Pollable.t;
  mutable sndbuf_used : int;
  mutable draining : bool;
  mutable delivered_here : int;
  mutable await_resume : (unit -> unit) option;
  mutable close_resume : (unit -> unit) option;
  mutable srv_closed : bool;
  mutable cli_closed : bool;
  mutable responses_done : int;
}

let create engine ~nic_bandwidth ~sndbuf ~drain_chunk =
  if nic_bandwidth <= 0. then invalid_arg "Net.create: nic_bandwidth <= 0";
  if sndbuf <= 0 then invalid_arg "Net.create: sndbuf <= 0";
  if drain_chunk <= 0 then invalid_arg "Net.create: drain_chunk <= 0";
  {
    engine;
    nic_bandwidth;
    sndbuf;
    drain_chunk;
    accept_queue = Queue.create ();
    listener = Pollable.create ();
    nic_active = 0;
    delivered = 0;
    created = 0;
  }

let listener_pollable t = t.listener
let delivered_bytes t = t.delivered
let connections_created t = t.created
let active_drains t = t.nic_active
let conn_id c = c.id
let readable c = c.conn_readable
let writable c = c.conn_writable
let server_closed c = c.srv_closed
let client_closed c = c.cli_closed
let send_space c = c.net.sndbuf - c.sndbuf_used

let connect t ~link_rate ~rtt =
  if link_rate <= 0. then invalid_arg "Net.connect: link_rate <= 0";
  let c =
    {
      id = t.created;
      net = t;
      link_rate;
      rtt;
      inbox = [];
      inbox_bytes = 0;
      conn_readable = Pollable.create ();
      conn_writable = Pollable.create ~ready:true ();
      sndbuf_used = 0;
      draining = false;
      delivered_here = 0;
      await_resume = None;
      close_resume = None;
      srv_closed = false;
      cli_closed = false;
      responses_done = 0;
    }
  in
  t.created <- t.created + 1;
  (* TCP handshake: the SYN reaches the listen queue after half an RTT;
     the client learns the connection is established a full RTT after
     initiating — so its first data trails the server-side accept by one
     RTT, which is what makes freshly accepted sockets unreadable (and
     blocks an MP/MT worker right after accept). *)
  Sim.Engine.schedule t.engine ~delay:(rtt /. 2.) (fun () ->
      Queue.push c t.accept_queue;
      Pollable.set_ready t.listener true);
  Sim.Proc.delay rtt;
  c

let accept t =
  match Queue.take_opt t.accept_queue with
  | None ->
      Pollable.set_ready t.listener false;
      None
  | Some c ->
      if Queue.is_empty t.accept_queue then Pollable.set_ready t.listener false;
      Some c

let client_send c s =
  Sim.Engine.schedule c.net.engine ~delay:(c.rtt /. 2.) (fun () ->
      if not c.srv_closed then begin
        c.inbox <- c.inbox @ [ s ];
        c.inbox_bytes <- c.inbox_bytes + String.length s;
        Pollable.set_ready c.conn_readable true
      end)

let server_recv c ~max_bytes =
  match c.inbox with
  | [] ->
      if c.cli_closed then `Eof
      else begin
        Pollable.set_ready c.conn_readable false;
        `Would_block
      end
  | frag :: rest ->
      let take = min max_bytes (String.length frag) in
      let data = String.sub frag 0 take in
      let remainder = String.length frag - take in
      c.inbox <-
        (if remainder = 0 then rest
         else String.sub frag take remainder :: rest);
      c.inbox_bytes <- c.inbox_bytes - take;
      if c.inbox = [] && not c.cli_closed then
        Pollable.set_ready c.conn_readable false;
      `Data data

let wake_client_if_due c =
  match c.await_resume with
  | Some resume ->
      c.await_resume <- None;
      resume ()
  | None -> ()

let wake_close_waiter c =
  match c.close_resume with
  | Some resume ->
      c.close_resume <- None;
      resume ()
  | None -> ()

(* Drain loop: one chunk per event, at the fair-share rate recomputed per
   chunk.  Runs as plain engine events, not a process. *)
let rec drain c =
  let t = c.net in
  if c.sndbuf_used = 0 then begin
    c.draining <- false;
    t.nic_active <- t.nic_active - 1;
    if c.srv_closed then begin
      wake_close_waiter c;
      wake_client_if_due c
    end
  end
  else begin
    let chunk = min c.sndbuf_used t.drain_chunk in
    let share = t.nic_bandwidth /. float_of_int (max 1 t.nic_active) in
    let rate = Float.min c.link_rate share in
    let dt = float_of_int chunk /. rate in
    Sim.Engine.schedule t.engine ~delay:dt (fun () ->
        c.sndbuf_used <- c.sndbuf_used - chunk;
        c.delivered_here <- c.delivered_here + chunk;
        t.delivered <- t.delivered + chunk;
        if (not c.srv_closed) && send_space c > 0 then
          Pollable.set_ready c.conn_writable true;
        wake_client_if_due c;
        drain c)
  end

let start_drain c =
  if not c.draining then begin
    c.draining <- true;
    c.net.nic_active <- c.net.nic_active + 1;
    drain c
  end

let server_send c ~len =
  if len < 0 then invalid_arg "Net.server_send: negative length";
  if c.srv_closed then invalid_arg "Net.server_send: connection closed";
  let accepted = min len (send_space c) in
  if accepted > 0 then begin
    c.sndbuf_used <- c.sndbuf_used + accepted;
    if send_space c = 0 then Pollable.set_ready c.conn_writable false;
    start_drain c
  end
  else if send_space c = 0 then Pollable.set_ready c.conn_writable false;
  accepted

let server_close c =
  if not c.srv_closed then begin
    c.srv_closed <- true;
    Pollable.set_ready c.conn_writable false;
    if c.sndbuf_used = 0 then wake_close_waiter c;
    (* A blocked reader sees EOF once in-flight data is consumed. *)
    wake_client_if_due c
  end

let client_close c =
  c.cli_closed <- true;
  Pollable.set_ready c.conn_readable true

let client_await_bytes c n =
  if n < 0 then invalid_arg "Net.client_await_bytes: negative count";
  let start = c.delivered_here in
  let target = start + n in
  let rec wait () =
    if c.delivered_here >= target then n
    else if c.srv_closed && c.sndbuf_used = 0 then c.delivered_here - start
    else begin
      Sim.Proc.suspend (fun resume ->
          if c.await_resume <> None then
            failwith "Net.client_await_bytes: concurrent waiters";
          c.await_resume <- Some resume);
      wait ()
    end
  in
  wait ()

let client_await_close c =
  if not (c.srv_closed && c.sndbuf_used = 0) then
    Sim.Proc.suspend (fun resume ->
        if c.close_resume <> None then
          failwith "Net.client_await_close: concurrent waiters";
        c.close_resume <- Some resume)

(* Response framing: the server marks each response fully written; the
   client additionally waits for the bytes to drain, which models its
   parser consuming the body. *)
let mark_response_done c =
  c.responses_done <- c.responses_done + 1;
  wake_client_if_due c

let responses_done c = c.responses_done

let client_await_response c =
  let target = c.responses_done + 1 in
  let rec wait () =
    if c.responses_done >= target && c.sndbuf_used = 0 then `Ok
    else if
      c.srv_closed && c.sndbuf_used = 0 && c.responses_done >= target
    then `Ok
    else if c.srv_closed && c.sndbuf_used = 0 then `Closed
    else begin
      Sim.Proc.suspend (fun resume ->
          if c.await_resume <> None then
            failwith "Net.client_await_response: concurrent waiters";
          c.await_resume <- Some resume);
      wait ()
    end
  in
  wait ()
