(** Cost model of an operating system + machine, in the spirit of the
    paper's testbed (333 MHz Pentium II, 128 MB RAM, multiple 100 Mbit
    Ethernets, SCSI disk; FreeBSD 2.2.6 and Solaris 2.6).

    All costs are in seconds of simulated CPU time unless noted.  Two
    presets are provided: {!freebsd} (fast network path, cheap syscalls)
    and {!solaris} (the paper measures it up to ~50% slower, with the
    writev misalignment penalty masked).  Constants were calibrated so
    the single-file test lands in the paper's range (≈1000–3500
    connections/s for small files, 100–240 Mbit/s peak bandwidth). *)

type t = {
  name : string;
  (* syscall and data-path costs *)
  syscall : float;
  accept_cost : float;
  close_cost : float;
  read_byte : float;
  write_byte : float;
  misalign_byte : float;  (** extra per byte copied from a misaligned writev *)
  select_base : float;
  select_per_fd : float;
  translate_component : float;  (** CPU per pathname component *)
  mmap_cost : float;
  munmap_cost : float;
  mincore_base : float;
  mincore_per_page : float;
  fork_cost : float;
  ipc_send : float;
  ipc_recv : float;
  lock_cost : float;  (** mutex acquire/release pair *)
  ctx_switch : float;
  (* application-level request costs *)
  parse_byte : float;
  request_base : float;
  header_build : float;
  cache_lookup : float;
  (* machine *)
  nic_bandwidth : float;  (** bytes/second aggregate *)
  ram_bytes : int;
  kernel_reserve : int;  (** RAM the kernel and server text occupy *)
  min_cache : int;
  process_footprint : int;
  thread_footprint : int;
  helper_footprint : int;
  sndbuf : int;
  net_chunk : int;
  rtt : float;
  lan_rate : float;  (** per-client link, bytes/second *)
  disk : Disk.params;
}

val freebsd : t
val solaris : t

(** Scale every CPU cost by [factor] (sensitivity studies). *)
val scale_cpu : t -> float -> t
