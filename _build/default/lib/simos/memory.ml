type t = {
  total : int;
  min_cache : int;
  mutable reserved : int;
}

let create ~total_bytes ~min_cache_bytes =
  if total_bytes <= 0 then invalid_arg "Memory.create: total_bytes <= 0";
  if min_cache_bytes < 0 then invalid_arg "Memory.create: min_cache_bytes < 0";
  { total = total_bytes; min_cache = min_cache_bytes; reserved = 0 }

let total t = t.total
let reserved t = t.reserved

let reserve t n =
  if n < 0 then invalid_arg "Memory.reserve: negative size";
  t.reserved <- t.reserved + n

let release t n =
  if n < 0 then invalid_arg "Memory.release: negative size";
  if n > t.reserved then invalid_arg "Memory.release: more than reserved";
  t.reserved <- t.reserved - n

let cache_capacity t = max t.min_cache (t.total - t.reserved)
