lib/simos/buffer_cache.mli: Memory
