lib/simos/pipe.ml: Pollable Queue Sim
