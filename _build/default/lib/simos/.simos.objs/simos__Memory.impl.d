lib/simos/memory.ml:
