lib/simos/net.mli: Pollable Sim
