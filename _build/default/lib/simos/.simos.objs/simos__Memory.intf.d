lib/simos/memory.mli:
