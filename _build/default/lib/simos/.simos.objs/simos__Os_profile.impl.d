lib/simos/os_profile.ml: Disk
