lib/simos/pollable.mli:
