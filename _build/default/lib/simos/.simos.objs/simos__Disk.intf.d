lib/simos/disk.mli: Sim
