lib/simos/kernel.mli: Buffer_cache Disk Fs Memory Net Os_profile Pipe Pollable Sim
