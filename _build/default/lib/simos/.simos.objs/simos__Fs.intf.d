lib/simos/fs.mli: Buffer_cache Disk Sim
