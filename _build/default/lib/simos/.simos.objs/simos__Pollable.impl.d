lib/simos/pollable.ml: List Sim
