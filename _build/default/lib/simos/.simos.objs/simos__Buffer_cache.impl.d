lib/simos/buffer_cache.ml: Hashtbl Memory
