lib/simos/os_profile.mli: Disk
