lib/simos/kernel.ml: Buffer_cache Disk Fs List Memory Net Os_profile Pipe Pollable Sim String
