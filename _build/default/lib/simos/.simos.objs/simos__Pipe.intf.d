lib/simos/pipe.mli: Pollable
