lib/simos/disk.ml: List Sim
