lib/simos/fs.ml: Buffer_cache Disk Hashtbl List Sim String
