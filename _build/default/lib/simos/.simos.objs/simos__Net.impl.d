lib/simos/net.ml: Float Pollable Queue Sim String
