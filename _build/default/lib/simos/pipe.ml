type 'a t = {
  items : 'a Queue.t;
  p : Pollable.t;
  readers : ('a -> unit) Queue.t;
}

let create () =
  { items = Queue.create (); p = Pollable.create (); readers = Queue.create () }

let write t v =
  match Queue.take_opt t.readers with
  | Some resume -> resume v
  | None ->
      Queue.push v t.items;
      Pollable.set_ready t.p true

let read t =
  match Queue.take_opt t.items with
  | None ->
      Pollable.set_ready t.p false;
      None
  | Some v ->
      if Queue.is_empty t.items then Pollable.set_ready t.p false;
      Some v

let read_blocking t =
  match read t with
  | Some v -> v
  | None -> Sim.Proc.suspend (fun resume -> Queue.push resume t.readers)

let pollable t = t.p
let length t = Queue.length t.items
