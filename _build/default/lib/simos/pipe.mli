(** Unidirectional IPC message pipe with select integration.

    This is AMPED's helper channel: helpers write completion
    notifications; the main server process sees the read end become
    ready in [select] like any other IO completion.  CPU costs for
    pipe operations are charged by the kernel layer. *)

type 'a t

val create : unit -> 'a t

val write : 'a t -> 'a -> unit

(** Non-blocking read. *)
val read : 'a t -> 'a option

(** Blocking read (for helper processes waiting for work). *)
val read_blocking : 'a t -> 'a

val pollable : 'a t -> Pollable.t
val length : 'a t -> int
