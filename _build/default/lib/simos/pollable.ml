type t = {
  mutable ready : bool;
  mutable watchers : (unit -> unit) list;
}

let create ?(ready = false) () = { ready; watchers = [] }

let is_ready t = t.ready

let fire_watchers t =
  let ws = List.rev t.watchers in
  t.watchers <- [];
  List.iter (fun f -> f ()) ws

let set_ready t v =
  let was = t.ready in
  t.ready <- v;
  if v && not was then fire_watchers t

let add_watcher t f = if t.ready then f () else t.watchers <- f :: t.watchers

let wait_ready t =
  if not t.ready then Sim.Proc.suspend (fun resume -> add_watcher t resume)

let watcher_count t = List.length t.watchers
