(** The machine: CPU, memory, buffer cache, disk, filesystem and network
    assembled behind a UNIX-flavoured syscall interface.

    Two semantic points the paper turns on are encoded here:
    - sockets honour non-blocking semantics ({!recv} and {!send} return
      [`Would_block]/short counts), but {!page_in} — a file read — always
      blocks the calling process on a buffer-cache miss, no matter how
      the caller configured its descriptors;
    - {!select} covers sockets, the listen queue and pipes, so helper
      completions can be multiplexed with client IO, but cannot report
      file-read readiness.

    All calls must run inside a simulated process; each charges the CPU
    according to the {!Os_profile}. *)

type t

val create : Sim.Engine.t -> Os_profile.t -> t

val engine : t -> Sim.Engine.t
val profile : t -> Os_profile.t
val cpu : t -> Sim.Cpu.t
val memory : t -> Memory.t
val cache : t -> Buffer_cache.t
val disk : t -> Disk.t
val fs : t -> Fs.t
val net : t -> Net.t
val now : t -> float

(** Charge raw CPU time to the calling process (application work:
    parsing, cache management, dispatch). *)
val charge : t -> float -> unit

(* ---------------- sockets ---------------- *)

val listener_pollable : t -> Pollable.t

(** Non-blocking accept. *)
val accept : t -> Net.conn option

(** Blocking accept (MP/MT processes park here). *)
val accept_blocking : t -> Net.conn

val recv : t -> Net.conn -> max_bytes:int -> [ `Data of string | `Eof | `Would_block ]

(** Blocking receive: waits for readability first. *)
val recv_blocking : t -> Net.conn -> max_bytes:int -> [ `Data of string | `Eof ]

(** Non-blocking send of [len] bytes; [misaligned_bytes] of them pay the
    writev misalignment copy penalty.  Returns bytes accepted. *)
val send : t -> Net.conn -> len:int -> misaligned_bytes:int -> int

(** Blocking send of the full [len] bytes. *)
val send_blocking : t -> Net.conn -> len:int -> misaligned_bytes:int -> unit

val close : t -> Net.conn -> unit

(* ---------------- select ---------------- *)

(** [select t entries] waits until at least one pollable is ready and
    returns the tags of all ready ones, charging the per-fd scan cost. *)
val select : t -> ('a * Pollable.t) list -> 'a list

(* ---------------- files ---------------- *)

(** [stat]/[open]: pathname translation.  Charges CPU per component and
    blocks on metadata misses. *)
val open_stat : t -> string -> Fs.file option

(** Block until the byte range is resident (the disk read a "non-blocking"
    file read secretly performs). *)
val page_in : t -> Fs.file -> off:int -> len:int -> unit

(** mincore: charges base + per-page CPU, returns residency. *)
val mincore : t -> Fs.file -> off:int -> len:int -> bool

(** Record a CPU access to a resident mapped range (sets page reference
    bits; free — the hardware does it). *)
val mark_accessed : t -> Fs.file -> off:int -> len:int -> unit

val mmap : t -> unit
val munmap : t -> unit

(* ---------------- processes & IPC ---------------- *)

(** Charge a fork and reserve the child's footprint.  The caller then
    spawns the child with {!Sim.Proc.spawn}. *)
val fork_charge : t -> footprint:int -> unit

val pipe_write : t -> 'a Pipe.t -> 'a -> unit
val pipe_read : t -> 'a Pipe.t -> 'a option
val pipe_read_blocking : t -> 'a Pipe.t -> 'a

(** Mutex lock/unlock pair cost (MT architecture). *)
val lock_charge : t -> unit
