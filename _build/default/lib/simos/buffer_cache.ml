type key =
  | File_page of { inode : int; page : int }
  | Meta_page of { dir : int }

type entry = {
  key : key;
  mutable referenced : bool;
  mutable prev : entry;
  mutable next : entry;
}

type t = {
  memory : Memory.t;
  page_size : int;
  table : (key, entry) Hashtbl.t;
  (* Circular doubly-linked ring of resident pages; [hand] is the clock
     hand, None iff the ring is empty. *)
  mutable hand : entry option;
  mutable count : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ~memory ~page_size =
  if page_size <= 0 then invalid_arg "Buffer_cache.create: page_size <= 0";
  {
    memory;
    page_size;
    table = Hashtbl.create 4096;
    hand = None;
    count = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let page_size t = t.page_size
let pages t = t.count
let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions

let capacity_pages t = max 1 (Memory.cache_capacity t.memory / t.page_size)

let resident t key = Hashtbl.mem t.table key

let ring_insert t entry =
  match t.hand with
  | None ->
      entry.prev <- entry;
      entry.next <- entry;
      t.hand <- Some entry
  | Some hand ->
      (* Insert just behind the hand, i.e. at the position the clock will
         reach last — the newest page gets a full sweep of protection. *)
      let tail = hand.prev in
      tail.next <- entry;
      entry.prev <- tail;
      entry.next <- hand;
      hand.prev <- entry

let ring_remove t entry =
  if entry.next == entry then t.hand <- None
  else begin
    entry.prev.next <- entry.next;
    entry.next.prev <- entry.prev;
    (match t.hand with
    | Some hand when hand == entry -> t.hand <- Some entry.next
    | _ -> ())
  end

let evict_one t =
  match t.hand with
  | None -> ()
  | Some _ ->
      let rec sweep () =
        match t.hand with
        | None -> ()
        | Some hand ->
            if hand.referenced then begin
              hand.referenced <- false;
              t.hand <- Some hand.next;
              sweep ()
            end
            else begin
              ring_remove t hand;
              Hashtbl.remove t.table hand.key;
              t.count <- t.count - 1;
              t.evictions <- t.evictions + 1
            end
      in
      sweep ()

let rebalance t =
  let cap = capacity_pages t in
  while t.count > cap do
    evict_one t
  done

let touch t key =
  match Hashtbl.find_opt t.table key with
  | Some entry ->
      entry.referenced <- true;
      t.hits <- t.hits + 1;
      `Hit
  | None ->
      t.misses <- t.misses + 1;
      let cap = capacity_pages t in
      while t.count >= cap do
        evict_one t
      done;
      let rec entry = { key; referenced = true; prev = entry; next = entry } in
      ring_insert t entry;
      Hashtbl.replace t.table key entry;
      t.count <- t.count + 1;
      `Miss

(* Set the hardware reference bit if the page is resident: the effect of
   actually accessing a mapped page (e.g. writev from it), as opposed to
   the non-intrusive mincore probe. *)
let reference t key =
  match Hashtbl.find_opt t.table key with
  | Some entry -> entry.referenced <- true
  | None -> ()

let drop t key =
  match Hashtbl.find_opt t.table key with
  | None -> ()
  | Some entry ->
      ring_remove t entry;
      Hashtbl.remove t.table key;
      t.count <- t.count - 1

let clear t =
  Hashtbl.reset t.table;
  t.hand <- None;
  t.count <- 0
