type t = {
  name : string;
  syscall : float;
  accept_cost : float;
  close_cost : float;
  read_byte : float;
  write_byte : float;
  misalign_byte : float;
  select_base : float;
  select_per_fd : float;
  translate_component : float;
  mmap_cost : float;
  munmap_cost : float;
  mincore_base : float;
  mincore_per_page : float;
  fork_cost : float;
  ipc_send : float;
  ipc_recv : float;
  lock_cost : float;
  ctx_switch : float;
  parse_byte : float;
  request_base : float;
  header_build : float;
  cache_lookup : float;
  nic_bandwidth : float;
  ram_bytes : int;
  kernel_reserve : int;
  min_cache : int;
  process_footprint : int;
  thread_footprint : int;
  helper_footprint : int;
  sndbuf : int;
  net_chunk : int;
  rtt : float;
  lan_rate : float;
  disk : Disk.params;
}

let mib n = n * 1024 * 1024
let kib n = n * 1024

let freebsd =
  {
    name = "FreeBSD";
    syscall = 10e-6;
    accept_cost = 45e-6;
    close_cost = 10e-6;
    read_byte = 20e-9;
    write_byte = 20e-9;
    misalign_byte = 14e-9;
    select_base = 15e-6;
    select_per_fd = 0.8e-6;
    translate_component = 25e-6;
    mmap_cost = 25e-6;
    munmap_cost = 20e-6;
    mincore_base = 8e-6;
    mincore_per_page = 0.3e-6;
    fork_cost = 3e-3;
    ipc_send = 12e-6;
    ipc_recv = 12e-6;
    lock_cost = 2e-6;
    ctx_switch = 8e-6;
    parse_byte = 40e-9;
    request_base = 60e-6;
    header_build = 50e-6;
    cache_lookup = 4e-6;
    nic_bandwidth = 30e6;
    (* ~240 Mbit/s: multiple 100 Mbit interfaces *)
    ram_bytes = mib 128;
    kernel_reserve = mib 24;
    min_cache = mib 2;
    process_footprint = kib 400;
    thread_footprint = kib 120;
    helper_footprint = kib 80;
    sndbuf = kib 64;
    net_chunk = kib 8;
    rtt = 0.3e-3;
    lan_rate = 12.5e6;
    disk = Disk.default_params;
  }

(* The paper reports Solaris results up to ~50% below FreeBSD and does not
   observe the alignment anomaly there; syscalls and the network data path
   are proportionally more expensive. *)
let solaris =
  {
    freebsd with
    name = "Solaris";
    syscall = 22e-6;
    accept_cost = 100e-6;
    close_cost = 22e-6;
    read_byte = 45e-9;
    write_byte = 75e-9;
    misalign_byte = 0.;
    select_base = 30e-6;
    select_per_fd = 1.6e-6;
    translate_component = 55e-6;
    mmap_cost = 55e-6;
    munmap_cost = 45e-6;
    mincore_base = 18e-6;
    mincore_per_page = 0.6e-6;
    fork_cost = 6e-3;
    ipc_send = 25e-6;
    ipc_recv = 25e-6;
    lock_cost = 4e-6;
    ctx_switch = 11e-6;
    parse_byte = 80e-9;
    request_base = 130e-6;
    header_build = 100e-6;
    cache_lookup = 8e-6;
    nic_bandwidth = 30e6;
  }

let scale_cpu t factor =
  {
    t with
    syscall = t.syscall *. factor;
    accept_cost = t.accept_cost *. factor;
    close_cost = t.close_cost *. factor;
    read_byte = t.read_byte *. factor;
    write_byte = t.write_byte *. factor;
    misalign_byte = t.misalign_byte *. factor;
    select_base = t.select_base *. factor;
    select_per_fd = t.select_per_fd *. factor;
    translate_component = t.translate_component *. factor;
    mmap_cost = t.mmap_cost *. factor;
    munmap_cost = t.munmap_cost *. factor;
    mincore_base = t.mincore_base *. factor;
    mincore_per_page = t.mincore_per_page *. factor;
    fork_cost = t.fork_cost *. factor;
    ipc_send = t.ipc_send *. factor;
    ipc_recv = t.ipc_recv *. factor;
    lock_cost = t.lock_cost *. factor;
    ctx_switch = t.ctx_switch *. factor;
    parse_byte = t.parse_byte *. factor;
    request_base = t.request_base *. factor;
    header_build = t.header_build *. factor;
    cache_lookup = t.cache_lookup *. factor;
  }
