(** Physical memory accounting.

    The machine has a fixed amount of RAM.  Kernel structures, process and
    thread footprints, and application-level caches [reserve] bytes; what
    remains backs the filesystem buffer cache.  This is the mechanism
    behind the paper's "memory effects": an MP server's 32 process images
    shrink the file cache, helpers cost little, SPED costs least. *)

type t

(** [create ~total_bytes ~min_cache_bytes] — the buffer cache never drops
    below [min_cache_bytes] even if reservations exceed RAM. *)
val create : total_bytes:int -> min_cache_bytes:int -> t

val total : t -> int
val reserved : t -> int

(** @raise Invalid_argument on negative size. *)
val reserve : t -> int -> unit

(** @raise Invalid_argument on negative size or when releasing more than
    is reserved. *)
val release : t -> int -> unit

(** Bytes currently available to the buffer cache. *)
val cache_capacity : t -> int
