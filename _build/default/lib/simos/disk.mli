(** The disk: one head, a seek-time model, and C-LOOK scheduling of the
    request queue.

    Concurrency architecture determines how many requests can be
    outstanding here at once (paper §4.1 "Disk utilization"): SPED issues
    one at a time, so it always pays a cold seek; MP/MT/AMPED keep the
    queue populated, letting C-LOOK shorten seeks — the simulator
    reproduces that advantage mechanically. *)

type params = {
  min_seek : float;  (** settle time for a 1-block move, seconds *)
  max_seek : float;  (** full-stroke seek, seconds *)
  rotational : float;  (** average rotational latency, seconds *)
  per_request : float;  (** controller/command overhead, seconds *)
  transfer_rate : float;  (** bytes per second *)
  total_blocks : int;  (** disk geometry, for seek scaling *)
  block_size : int;  (** bytes *)
}

(** A late-1990s SCSI disk, in the spirit of the paper's testbed. *)
val default_params : params

type t

val create : Sim.Engine.t -> params -> t

val params : t -> params

(** [read t ~start_block ~nblocks] blocks the calling process until the
    transfer completes.  Concurrent calls are served in C-LOOK order.
    @raise Invalid_argument on empty or out-of-range extents. *)
val read : t -> start_block:int -> nblocks:int -> unit

(** Completed requests. *)
val completed : t -> int

(** Total seconds spent seeking (queue-ordering quality measure). *)
val seek_time : t -> float

(** Total busy seconds. *)
val busy_time : t -> float

(** Requests currently queued or in service. *)
val queue_length : t -> int
