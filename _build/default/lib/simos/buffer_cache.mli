(** The filesystem buffer cache (unified page cache).

    Pages are replaced with the clock (second-chance) algorithm, matching
    the paper's description of the OS page cache that Flash's mapped-file
    LRU tries to approximate.  Capacity is whatever {!Memory} leaves after
    reservations, re-checked on every insertion, so growing process
    footprints evict file pages. *)

(** Cache key: a data page of a file, or the metadata page consulted when
    translating one pathname component. *)
type key =
  | File_page of { inode : int; page : int }
  | Meta_page of { dir : int }

type t

val create : memory:Memory.t -> page_size:int -> t

val page_size : t -> int

(** Non-intrusive residency test — the model's [mincore]. *)
val resident : t -> key -> bool

(** [touch t key] references the page, inserting it (and evicting as
    needed) when absent.  [`Miss] means the caller must perform the disk
    read that fills it. *)
val touch : t -> key -> [ `Hit | `Miss ]

(** Set the reference bit if resident, without inserting — the effect of
    a CPU access to a mapped page (mincore itself is non-intrusive, but
    the writev that follows it is not). *)
val reference : t -> key -> unit

(** Remove a page if present (used by tests and invalidation). *)
val drop : t -> key -> unit

val pages : t -> int
val capacity_pages : t -> int
val hits : t -> int
val misses : t -> int
val evictions : t -> int

(** Re-check capacity and evict if {!Memory} shrank. *)
val rebalance : t -> unit

val clear : t -> unit
