(** The network: a listen queue, per-connection TCP-like send buffers,
    per-client link rates, and an aggregate NIC capacity shared fairly by
    draining connections.

    Server-side writes copy into a bounded send buffer (returning a short
    count when full — the would-block condition that drives [select]);
    the buffer drains toward the client at
    [min (client link rate) (NIC capacity / active connections)].
    Clients are load generators on separate machines: their actions cost
    no server CPU and go through the client-side calls below. *)

type t

type conn

val create :
  Sim.Engine.t ->
  nic_bandwidth:float ->
  sndbuf:int ->
  drain_chunk:int ->
  t

(* ------------------------------------------------------------------ *)
(** {1 Client side (load generator)} *)

(** Establish a connection: the SYN reaches the listen queue after
    [rtt/2]; the call blocks the client for the full handshake [rtt].
    Must run in (client) process context. *)
val connect : t -> link_rate:float -> rtt:float -> conn

(** Deliver request bytes to the server's socket after the link RTT. *)
val client_send : conn -> string -> unit

(** Block the calling (client) process until [n] more response bytes have
    arrived than had arrived when the call was made.  Returns the number
    actually received, which is less than [n] only if the server closed
    first. *)
val client_await_bytes : conn -> int -> int

(** Block until the server has closed and the send buffer fully drained. *)
val client_await_close : conn -> unit

(** Block until one more complete response (as framed by
    {!mark_response_done}) has fully arrived.  [`Closed] means the server
    closed the connection without completing another response. *)
val client_await_response : conn -> [ `Ok | `Closed ]

val client_close : conn -> unit

(* ------------------------------------------------------------------ *)
(** {1 Server side (used via the Kernel)} *)

(** Readiness of the listen queue. *)
val listener_pollable : t -> Pollable.t

(** Pop a pending connection, if any. *)
val accept : t -> conn option

val readable : conn -> Pollable.t
val writable : conn -> Pollable.t

(** Consume up to [max_bytes] of received request data. *)
val server_recv : conn -> max_bytes:int -> [ `Data of string | `Eof | `Would_block ]

(** Copy [len] response bytes into the send buffer; returns bytes
    accepted (0 when full). *)
val server_send : conn -> len:int -> int

val server_close : conn -> unit
val server_closed : conn -> bool
val client_closed : conn -> bool

(** Application-level response framing: the server calls this when a
    response has been fully handed to the socket; clients observe the
    boundary through {!client_await_response} (standing in for parsing
    Content-Length). *)
val mark_response_done : conn -> unit

val responses_done : conn -> int

(** Send-buffer free space. *)
val send_space : conn -> int

(* ------------------------------------------------------------------ *)
(** {1 Accounting} *)

(** Response bytes that have reached clients, across all connections. *)
val delivered_bytes : t -> int

val connections_created : t -> int
val conn_id : conn -> int

(** Connections currently draining (for NIC fair-share inspection). *)
val active_drains : t -> int
