type t = {
  engine : Sim.Engine.t;
  profile : Os_profile.t;
  cpu : Sim.Cpu.t;
  memory : Memory.t;
  cache : Buffer_cache.t;
  disk : Disk.t;
  fs : Fs.t;
  net : Net.t;
}

let create engine (p : Os_profile.t) =
  let cpu = Sim.Cpu.create engine ~ctx_switch_cost:p.ctx_switch in
  let memory =
    Memory.create ~total_bytes:p.ram_bytes ~min_cache_bytes:p.min_cache
  in
  Memory.reserve memory p.kernel_reserve;
  let cache = Buffer_cache.create ~memory ~page_size:p.disk.Disk.block_size in
  let disk = Disk.create engine p.disk in
  let fs = Fs.create engine ~cache ~disk in
  let net =
    Net.create engine ~nic_bandwidth:p.nic_bandwidth ~sndbuf:p.sndbuf
      ~drain_chunk:p.net_chunk
  in
  { engine; profile = p; cpu; memory; cache; disk; fs; net }

let engine t = t.engine
let profile t = t.profile
let cpu t = t.cpu
let memory t = t.memory
let cache t = t.cache
let disk t = t.disk
let fs t = t.fs
let net t = t.net
let now t = Sim.Engine.now t.engine

let charge t dt = Sim.Cpu.consume t.cpu dt

(* ---------------- sockets ---------------- *)

let listener_pollable t = Net.listener_pollable t.net

let accept t =
  charge t t.profile.accept_cost;
  Net.accept t.net

let rec accept_blocking t =
  match accept t with
  | Some conn ->
      (* Handing a connection to a blocking worker is a scheduler
         dispatch: the next CPU grant pays a switch.  This is the "extra
         kernel overhead, context switching etc." the paper cites as the
         MP/MT lag on cached workloads. *)
      Sim.Cpu.reschedule t.cpu;
      conn
  | None ->
      Pollable.wait_ready (Net.listener_pollable t.net);
      accept_blocking t

let recv t conn ~max_bytes =
  match Net.server_recv conn ~max_bytes with
  | `Would_block ->
      charge t t.profile.syscall;
      `Would_block
  | `Eof ->
      charge t t.profile.syscall;
      `Eof
  | `Data data ->
      charge t
        (t.profile.syscall
        +. (float_of_int (String.length data) *. t.profile.read_byte));
      `Data data

let rec recv_blocking t conn ~max_bytes =
  Pollable.wait_ready (Net.readable conn);
  match recv t conn ~max_bytes with
  | `Would_block -> recv_blocking t conn ~max_bytes
  | (`Data _ | `Eof) as r -> r

let send t conn ~len ~misaligned_bytes =
  let accepted = Net.server_send conn ~len in
  let mis = min misaligned_bytes accepted in
  charge t
    (t.profile.syscall
    +. (float_of_int accepted *. t.profile.write_byte)
    +. (float_of_int mis *. t.profile.misalign_byte));
  accepted

let send_blocking t conn ~len ~misaligned_bytes =
  let rec loop remaining mis =
    if remaining > 0 then begin
      if Net.send_space conn = 0 then Pollable.wait_ready (Net.writable conn);
      let sent = send t conn ~len:remaining ~misaligned_bytes:mis in
      loop (remaining - sent) (max 0 (mis - sent))
    end
  in
  loop len misaligned_bytes

let close t conn =
  charge t t.profile.close_cost;
  Net.server_close conn

(* ---------------- select ---------------- *)

(* Watchers registered by an unfired select linger on their pollables
   until the next false->true transition clears them; the [fired] flag
   makes them no-ops.  Between transitions their number is bounded by the
   loop iterations since the pollable last fired. *)
let select t entries =
  let ready () =
    List.filter_map
      (fun (tag, p) -> if Pollable.is_ready p then Some tag else None)
      entries
  in
  let first = ready () in
  let result =
    if first <> [] then first
    else begin
      Sim.Proc.suspend (fun resume ->
          let fired = ref false in
          let wake () =
            if not !fired then begin
              fired := true;
              resume ()
            end
          in
          List.iter (fun (_, p) -> Pollable.add_watcher p wake) entries);
      ready ()
    end
  in
  charge t
    (t.profile.select_base
    +. (float_of_int (List.length entries) *. t.profile.select_per_fd));
  result

(* ---------------- files ---------------- *)

let open_stat t path =
  let components =
    List.length (String.split_on_char '/' path) - 1
  in
  charge t (float_of_int (max 1 components) *. t.profile.translate_component);
  Fs.lookup t.fs path

let page_in t file ~off ~len = Fs.page_in t.fs file ~off ~len

let mincore t file ~off ~len =
  let pages = Fs.pages_in_range t.fs ~off ~len in
  charge t
    (t.profile.mincore_base
    +. (float_of_int pages *. t.profile.mincore_per_page));
  Fs.resident t.fs file ~off ~len

let mark_accessed t file ~off ~len = Fs.reference_range t.fs file ~off ~len

let mmap t = charge t t.profile.mmap_cost
let munmap t = charge t t.profile.munmap_cost

(* ---------------- processes & IPC ---------------- *)

let fork_charge t ~footprint =
  charge t t.profile.fork_cost;
  Memory.reserve t.memory footprint;
  Buffer_cache.rebalance t.cache

let pipe_write t pipe v =
  charge t t.profile.ipc_send;
  Pipe.write pipe v

let pipe_read t pipe =
  charge t t.profile.ipc_recv;
  Pipe.read pipe

let pipe_read_blocking t pipe =
  charge t t.profile.ipc_recv;
  Pipe.read_blocking pipe

let lock_charge t = charge t t.profile.lock_cost
