type file = {
  inode : int;
  path : string;
  size : int;
  start_block : int;
  mutable mtime : float;
  dir_chain : int list;
}

type t = {
  engine : Sim.Engine.t;
  cache : Buffer_cache.t;
  disk : Disk.t;
  by_path : (string, file) Hashtbl.t;
  dirs : (string, int) Hashtbl.t;
  mutable next_inode : int;
  mutable next_dir : int;
  mutable next_block : int;
  mutable total_bytes : int;
  rng : Sim.Rng.t;
  inflight : (Buffer_cache.key, (unit -> unit) list ref) Hashtbl.t;
}

let create engine ~cache ~disk =
  let t =
    {
      engine;
      cache;
      disk;
      by_path = Hashtbl.create 4096;
      dirs = Hashtbl.create 256;
      next_inode = 1;
      next_dir = 1;
      next_block = 64;
      total_bytes = 0;
      rng = Sim.Rng.split (Sim.Engine.rng engine);
      inflight = Hashtbl.create 64;
    }
  in
  Hashtbl.replace t.dirs "/" 0;
  t

let page_size t = Buffer_cache.page_size t.cache
let file_count t = Hashtbl.length t.by_path
let total_bytes t = t.total_bytes

let pages_in_range t ~off ~len =
  if len <= 0 then 0
  else begin
    let ps = page_size t in
    let first = off / ps and last = (off + len - 1) / ps in
    last - first + 1
  end

(* Directory prefixes of "/a/b/c.html" are "/", "/a", "/a/b". *)
let dir_prefixes path =
  let rec split_positions i acc =
    if i >= String.length path then List.rev acc
    else if path.[i] = '/' then split_positions (i + 1) (i :: acc)
    else split_positions (i + 1) acc
  in
  let positions = split_positions 0 [] in
  List.map (fun pos -> if pos = 0 then "/" else String.sub path 0 pos) positions

let dir_id t prefix =
  match Hashtbl.find_opt t.dirs prefix with
  | Some id -> id
  | None ->
      let id = t.next_dir in
      t.next_dir <- t.next_dir + 1;
      Hashtbl.replace t.dirs prefix id;
      id

let blocks_for t size =
  let bs = (Disk.params t.disk).Disk.block_size in
  max 1 ((size + bs - 1) / bs)

let add_file t ~path ~size =
  if size <= 0 then invalid_arg "Fs.add_file: size <= 0";
  if Hashtbl.mem t.by_path path then invalid_arg "Fs.add_file: duplicate path";
  let dir_chain = List.map (dir_id t) (dir_prefixes path) in
  let nblocks = blocks_for t size in
  (* Randomized inter-file gap: an aged, fragmented layout. *)
  let gap = Sim.Rng.int t.rng 16 in
  let total = (Disk.params t.disk).Disk.total_blocks in
  let start_block =
    if t.next_block + nblocks + gap >= total then 64 else t.next_block + gap
  in
  t.next_block <- start_block + nblocks;
  let file =
    {
      inode = t.next_inode;
      path;
      size;
      start_block;
      mtime = 0.;
      dir_chain;
    }
  in
  t.next_inode <- t.next_inode + 1;
  t.total_bytes <- t.total_bytes + size;
  Hashtbl.replace t.by_path path file;
  file

let find t path = Hashtbl.find_opt t.by_path path

(* Metadata blocks are scattered over the disk, as inodes are. *)
let meta_block t dir =
  let total = (Disk.params t.disk).Disk.total_blocks in
  (dir * 2654435761) land max_int mod total

(* Fault a run of cache keys in with one disk read.  Every key of the run
   is registered in-flight so concurrent faulters coalesce onto this read
   instead of issuing their own. *)
let fault_run t keys ~start_block ~nblocks =
  let waiters = ref [] in
  List.iter (fun key -> Hashtbl.replace t.inflight key waiters) keys;
  Disk.read t.disk ~start_block ~nblocks;
  List.iter (fun key -> Hashtbl.remove t.inflight key) keys;
  List.iter (fun resume -> resume ()) (List.rev !waiters)

let wait_inflight waiters =
  Sim.Proc.suspend (fun resume -> waiters := resume :: !waiters)

let touch_meta t dir =
  let key = Buffer_cache.Meta_page { dir } in
  match Hashtbl.find_opt t.inflight key with
  | Some waiters -> wait_inflight waiters
  | None -> (
      match Buffer_cache.touch t.cache key with
      | `Hit -> ()
      | `Miss -> fault_run t [ key ] ~start_block:(meta_block t dir) ~nblocks:1)

(* Inode metadata is keyed in a disjoint id space, packed 64 inodes per
   page as on-disk inode tables are. *)
let inode_meta_id inode = -((inode / 64) + 1)

let lookup t path =
  let file = find t path in
  let chain =
    match file with
    | Some f -> f.dir_chain
    | None -> List.map (dir_id t) (dir_prefixes path)
  in
  List.iter (touch_meta t) chain;
  (match file with
  | Some f -> touch_meta t (inode_meta_id f.inode)
  | None -> ());
  file

let meta_resident t path =
  match find t path with
  | None -> false
  | Some f ->
      let key dir = Buffer_cache.Meta_page { dir } in
      List.for_all
        (fun dir ->
          Buffer_cache.resident t.cache (key dir)
          && not (Hashtbl.mem t.inflight (key dir)))
        (inode_meta_id f.inode :: f.dir_chain)

let page_key file page = Buffer_cache.File_page { inode = file.inode; page }

let page_range t ~off ~len =
  let ps = page_size t in
  (off / ps, (off + len - 1) / ps)

let page_in t file ~off ~len =
  if len <= 0 then ()
  else begin
    let first, last = page_range t ~off ~len in
    let bs = (Disk.params t.disk).Disk.block_size in
    let ps = page_size t in
    let blocks_per_page = max 1 (ps / bs) in
    (* Scan for runs of missing pages; read each run in one disk op
       (filesystem clustering / read-ahead within the request).  Pages
       already being read by someone else are waited on, not re-read. *)
    let page = ref first in
    while !page <= last do
      let key = page_key file !page in
      match Hashtbl.find_opt t.inflight key with
      | Some waiters ->
          wait_inflight waiters;
          incr page
      | None -> (
          match Buffer_cache.touch t.cache key with
          | `Hit -> incr page
          | `Miss ->
              let run_start = !page in
              incr page;
              let continue = ref true in
              while !continue && !page <= last do
                let k = page_key file !page in
                if Hashtbl.mem t.inflight k then continue := false
                else
                  match Buffer_cache.touch t.cache k with
                  | `Hit -> continue := false
                  | `Miss -> incr page
              done;
              let run_len = !page - run_start in
              let keys =
                List.init run_len (fun i -> page_key file (run_start + i))
              in
              let start_block =
                file.start_block + (run_start * blocks_per_page)
              in
              fault_run t keys ~start_block
                ~nblocks:(run_len * blocks_per_page))
    done
  end

let resident t file ~off ~len =
  if len <= 0 then true
  else begin
    let first, last = page_range t ~off ~len in
    let rec check page =
      if page > last then true
      else begin
        let key = page_key file page in
        Buffer_cache.resident t.cache key
        && (not (Hashtbl.mem t.inflight key))
        && check (page + 1)
      end
    in
    check first
  end

let reference_range t file ~off ~len =
  if len > 0 then begin
    let first, last = page_range t ~off ~len in
    for page = first to last do
      Buffer_cache.reference t.cache (page_key file page)
    done
  end

let warm t file =
  let last = (file.size - 1) / page_size t in
  for page = 0 to last do
    ignore (Buffer_cache.touch t.cache (page_key file page))
  done

let warm_meta t file =
  List.iter
    (fun dir -> ignore (Buffer_cache.touch t.cache (Buffer_cache.Meta_page { dir })))
    (inode_meta_id file.inode :: file.dir_chain)

let touch_mtime _t file ~now = file.mtime <- now
