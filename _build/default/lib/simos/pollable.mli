(** A boolean readiness source, the building block of [select].

    Listeners, connection read/write sides and pipe read ends each carry a
    pollable.  Watchers are one-shot callbacks fired when readiness
    transitions from false to true (or immediately if added while
    ready). *)

type t

val create : ?ready:bool -> unit -> t

val is_ready : t -> bool

(** Set readiness; a false-to-true transition fires and clears all
    watchers. *)
val set_ready : t -> bool -> unit

(** [add_watcher t f] — [f] runs once, when [t] becomes (or already is)
    ready. *)
val add_watcher : t -> (unit -> unit) -> unit

(** Block the calling process until ready (returns immediately if already
    ready). *)
val wait_ready : t -> unit

val watcher_count : t -> int
