(** Simulated filesystem namespace and page-in machinery.

    Files occupy contiguous block extents placed with randomized gaps
    (an aged on-disk layout).  Pathname translation touches one metadata
    page per path component plus the file's inode page — each a potential
    buffer-cache miss and disk read, which is why Flash sends uncached
    translations to helper processes.  Data faults coalesce: concurrent
    requests for a page under IO wait for the one disk read. *)

type file = {
  inode : int;
  path : string;
  size : int;  (** bytes *)
  start_block : int;
  mutable mtime : float;
  dir_chain : int list;  (** metadata dir inodes walked by translation *)
}

type t

val create : Sim.Engine.t -> cache:Buffer_cache.t -> disk:Disk.t -> t

(** Register a file; contents are implicit (only sizes matter).
    @raise Invalid_argument on duplicate path or non-positive size. *)
val add_file : t -> path:string -> size:int -> file

(** Namespace lookup with no simulated cost (for tests and drivers). *)
val find : t -> string -> file option

(** Full pathname translation: touches each component's metadata page and
    the inode page, reading from disk on misses.  Blocks the calling
    process; CPU costs are charged by the kernel layer, not here. *)
val lookup : t -> string -> file option

(** Would {!lookup} complete without disk IO right now? *)
val meta_resident : t -> string -> bool

(** Fault in all pages covering [\[off, off+len)], clustering contiguous
    missing pages into single disk reads.  Blocks until resident. *)
val page_in : t -> file -> off:int -> len:int -> unit

(** [mincore]: are all pages of the range resident (and not mid-fault)? *)
val resident : t -> file -> off:int -> len:int -> bool

(** Set reference bits on the resident pages of a range: the effect of
    transmitting from a mapped file after a successful residency check. *)
val reference_range : t -> file -> off:int -> len:int -> unit

(** Mark every page of the file resident without disk activity (warm-up
    for tests/benches that want a hot cache). *)
val warm : t -> file -> unit

(** Mark the file's translation metadata pages resident without disk
    activity. *)
val warm_meta : t -> file -> unit

val page_size : t -> int
val file_count : t -> int
val total_bytes : t -> int

(** Bump the file's mtime (invalidation tests). *)
val touch_mtime : t -> file -> now:float -> unit

(** Pages needed to cover a byte range. *)
val pages_in_range : t -> off:int -> len:int -> int
