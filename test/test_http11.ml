(* HTTP/1.1 semantics conformance: conditional GET (If-Modified-Since,
   If-None-Match, If-Match, If-Unmodified-Since, their RFC 9110 §13.2.2
   precedence), byte ranges (single, suffix, clamped, unsatisfiable,
   If-Range gating) and Accept-Encoding negotiation of precompressed
   and lazily built gzip variants.

   Everything is driven over raw sockets by the table below, and the
   same table is replayed against all four architectures (AMPED, SPED,
   MP, MT) with the responses required to be byte-for-byte identical
   after masking the Date header — the protocol surface must not
   depend on the concurrency architecture.  Property tests then cover
   what a table cannot: random range windows reassembling to the exact
   body, 304s never leaking payload bytes, the gzip codec
   round-tripping, and the three accepted date formats re-parsing.
   Finally the /server-status?json send counters prove the cheap
   responses are cheap: a cached 304 and a cached single-range 206
   each cost exactly one writev with zero copied body bytes. *)

module Server = Flash_live.Server
module Raw = Helpers.Raw
module Etag = Http.Etag
module Http_date = Http.Http_date
module Gzip = Flash_util.Gzip

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let patterned n =
  String.init n (fun i -> Char.chr ((i * 31 + ((i lsr 8) * 7) + 13) land 0xff))

(* ------------------------------------------------------------------ *)
(* Shared fixture                                                      *)
(* ------------------------------------------------------------------ *)

(* One docroot reused by every server in the suite, so validator-bearing
   headers (ETag, Last-Modified) are identical across architectures and
   across the separate server runs being compared. *)
type fixture = {
  docroot : string;
  body_a : string;  (* /a.txt: identity representation *)
  size_a : int;
  mtime_a : float;
  etag_a : string;
  etag_a_gz : string;
  gz_a : string;  (* what the lazy compressor will build for it *)
  date_a : string;  (* exact Last-Modified as IMF-fixdate *)
  body_z : string;  (* /z.txt: has a .gz sibling on disk *)
  gz_z : string;
  etag_z_gz : string;
}

let fixture =
  lazy
    (let docroot = Filename.temp_file "flash_http11" "" in
     Sys.remove docroot;
     Unix.mkdir docroot 0o755;
     let body_a = "The_quick_brown_fox_jumps_over" in
     let body_z =
       String.concat "" (List.init 40 (fun i -> Printf.sprintf "zebra-%02d|" i))
     in
     let gz_z = Gzip.compress body_z in
     write_file (Filename.concat docroot "a.txt") body_a;
     write_file (Filename.concat docroot "z.txt") body_z;
     (* Sibling written after the origin so its mtime is not staler. *)
     write_file (Filename.concat docroot "z.txt.gz") gz_z;
     let st_a = Unix.stat (Filename.concat docroot "a.txt") in
     let st_z = Unix.stat (Filename.concat docroot "z.txt") in
     let mtime_a = st_a.Unix.st_mtime and size_a = st_a.Unix.st_size in
     {
       docroot;
       body_a;
       size_a;
       mtime_a;
       etag_a = Etag.make ~mtime:mtime_a ~size:size_a ();
       etag_a_gz = Etag.make ~suffix:"-gz" ~mtime:mtime_a ~size:size_a ();
       gz_a = Gzip.compress body_a;
       date_a = Http_date.format (floor mtime_a);
       body_z;
       gz_z;
       etag_z_gz =
         Etag.make ~suffix:"-gz" ~mtime:st_z.Unix.st_mtime
           ~size:st_z.Unix.st_size ();
     })

let config_for mode =
  let fx = Lazy.force fixture in
  {
    (Server.default_config ~docroot:fx.docroot) with
    Server.mode;
    (* Exercise both variant sources: the on-disk sibling for /z.txt and
       the inline stored-block compressor for /a.txt. *)
    gzip_lazy = true;
  }

let with_mode_server mode f =
  let server = Server.start_background (config_for mode) in
  Fun.protect
    ~finally:(fun () -> Server.stop server)
    (fun () -> f (Server.port server))

(* ------------------------------------------------------------------ *)
(* The conformance table                                               *)
(* ------------------------------------------------------------------ *)

type expect_body = Exact of string | Empty | Any

type case = {
  label : string;
  meth : string;
  target : string;
  req_headers : (string * string) list;
  status : int;
  has : (string * string) list;  (* response headers, exact values *)
  absent : string list;
  body : expect_body;
}

let case ?(meth = "GET") ?(target = "/a.txt") ?(headers = []) ?(has = [])
    ?(absent = []) ?(body = Any) label status =
  { label; meth; target; req_headers = headers; status; has; absent; body }

(* ~40 torture cases.  Order matters only in that it is identical for
   every architecture (so per-case cache state is too); each case is an
   independent close-delimited connection. *)
let table () =
  let fx = Lazy.force fixture in
  let n = fx.size_a in
  let sub off len = String.sub fx.body_a off len in
  let future = Http_date.format (floor fx.mtime_a +. 86_400.) in
  let epoch = Http_date.format 0. in
  let gz_n = String.length fx.gz_a in
  [
    (* Baseline: the validators and range/negotiation advertisements. *)
    case "baseline 200" 200
      ~has:
        [
          ("etag", fx.etag_a);
          ("last-modified", fx.date_a);
          ("accept-ranges", "bytes");
          ("vary", "Accept-Encoding");
          ("content-length", string_of_int n);
        ]
      ~body:(Exact fx.body_a);
    case "HEAD has identical headers, empty body" 200 ~meth:"HEAD"
      ~has:[ ("etag", fx.etag_a); ("content-length", string_of_int n) ]
      ~body:Empty;
    (* If-Modified-Since. *)
    case "IMS exact date is 304" 304
      ~headers:[ ("If-Modified-Since", fx.date_a) ]
      ~has:[ ("etag", fx.etag_a); ("last-modified", fx.date_a) ]
      ~absent:[ "content-length"; "content-type" ]
      ~body:Empty;
    case "IMS future date is 304" 304
      ~headers:[ ("If-Modified-Since", future) ]
      ~body:Empty;
    case "IMS epoch is 200" 200
      ~headers:[ ("If-Modified-Since", epoch) ]
      ~body:(Exact fx.body_a);
    case "IMS accepts RFC 850 dates" 304
      ~headers:[ ("If-Modified-Since", Http_date.format_rfc850 (floor fx.mtime_a)) ]
      ~body:Empty;
    case "IMS accepts asctime dates" 304
      ~headers:
        [ ("If-Modified-Since", Http_date.format_asctime (floor fx.mtime_a)) ]
      ~body:Empty;
    case "IMS malformed date is vacuous" 200
      ~headers:[ ("If-Modified-Since", "a fortnight ago") ]
      ~body:(Exact fx.body_a);
    case "IMS trailing garbage is vacuous" 200
      ~headers:[ ("If-Modified-Since", fx.date_a ^ " tomorrow") ]
      ~body:(Exact fx.body_a);
    (* If-None-Match. *)
    case "INM matching strong tag is 304" 304
      ~headers:[ ("If-None-Match", fx.etag_a) ]
      ~has:[ ("etag", fx.etag_a) ]
      ~body:Empty;
    case "INM weak form of our tag still matches" 304
      ~headers:[ ("If-None-Match", "W/" ^ fx.etag_a) ]
      ~body:Empty;
    case "INM star is 304" 304
      ~headers:[ ("If-None-Match", "*") ]
      ~body:Empty;
    case "INM tag list scans to a match" 304
      ~headers:[ ("If-None-Match", "\"zzz\", " ^ fx.etag_a ^ ", \"yyy\"") ]
      ~body:Empty;
    case "INM miss is 200" 200
      ~headers:[ ("If-None-Match", "\"deadbeef\"") ]
      ~body:(Exact fx.body_a);
    case "INM miss consumes a 304-worthy IMS" 200
      ~headers:
        [ ("If-None-Match", "\"deadbeef\""); ("If-Modified-Since", fx.date_a) ]
      ~body:(Exact fx.body_a);
    (* If-Match / If-Unmodified-Since. *)
    case "If-Match star proceeds" 200
      ~headers:[ ("If-Match", "*") ]
      ~body:(Exact fx.body_a);
    case "If-Match our tag proceeds" 200
      ~headers:[ ("If-Match", fx.etag_a) ]
      ~body:(Exact fx.body_a);
    case "If-Match miss is 412" 412 ~headers:[ ("If-Match", "\"deadbeef\"") ];
    case "If-Match weak tag fails strong comparison" 412
      ~headers:[ ("If-Match", "W/" ^ fx.etag_a) ];
    case "IUS epoch is 412" 412
      ~headers:[ ("If-Unmodified-Since", epoch) ];
    case "IUS exact date proceeds" 200
      ~headers:[ ("If-Unmodified-Since", fx.date_a) ]
      ~body:(Exact fx.body_a);
    (* Ranges. *)
    case "range 0-3" 206
      ~headers:[ ("Range", "bytes=0-3") ]
      ~has:
        [
          ("content-range", Printf.sprintf "bytes 0-3/%d" n);
          ("content-length", "4");
          ("etag", fx.etag_a);
          ("accept-ranges", "bytes");
        ]
      ~body:(Exact (sub 0 4));
    case "range open end 4-" 206
      ~headers:[ ("Range", "bytes=4-") ]
      ~has:[ ("content-range", Printf.sprintf "bytes 4-%d/%d" (n - 1) n) ]
      ~body:(Exact (sub 4 (n - 4)));
    case "range suffix -5" 206
      ~headers:[ ("Range", "bytes=-5") ]
      ~has:
        [ ("content-range", Printf.sprintf "bytes %d-%d/%d" (n - 5) (n - 1) n) ]
      ~body:(Exact (sub (n - 5) 5));
    case "range end clamps to size" 206
      ~headers:[ ("Range", "bytes=10-9999") ]
      ~has:[ ("content-range", Printf.sprintf "bytes 10-%d/%d" (n - 1) n) ]
      ~body:(Exact (sub 10 (n - 10)));
    case "range past the end is 416" 416
      ~headers:[ ("Range", "bytes=100-") ]
      ~has:[ ("content-range", Printf.sprintf "bytes */%d" n) ];
    case "range junk digits ignored" 200
      ~headers:[ ("Range", "bytes=abc") ]
      ~body:(Exact fx.body_a);
    case "range backwards ignored" 200
      ~headers:[ ("Range", "bytes=5-2") ]
      ~body:(Exact fx.body_a);
    case "range wrong unit ignored" 200
      ~headers:[ ("Range", "lines=0-3") ]
      ~body:(Exact fx.body_a);
    case "multi-range degrades to the full body" 200
      ~headers:[ ("Range", "bytes=0-1,5-6") ]
      ~has:[ ("content-length", string_of_int n) ]
      ~absent:[ "content-range" ]
      ~body:(Exact fx.body_a);
    case "multi-range with no satisfiable member is 416" 416
      ~headers:[ ("Range", "bytes=100-,200-300") ]
      ~has:[ ("content-range", Printf.sprintf "bytes */%d" n) ];
    case "HEAD ignores range" 200 ~meth:"HEAD"
      ~headers:[ ("Range", "bytes=0-3") ]
      ~has:[ ("content-length", string_of_int n) ]
      ~absent:[ "content-range" ]
      ~body:Empty;
    (* If-Range gating the Range field. *)
    case "If-Range fresh etag applies the range" 206
      ~headers:[ ("Range", "bytes=0-3"); ("If-Range", fx.etag_a) ]
      ~body:(Exact (sub 0 4));
    case "If-Range stale etag sends the full body" 200
      ~headers:[ ("Range", "bytes=0-3"); ("If-Range", "\"deadbeef\"") ]
      ~body:(Exact fx.body_a);
    case "If-Range weak etag never matches" 200
      ~headers:[ ("Range", "bytes=0-3"); ("If-Range", "W/" ^ fx.etag_a) ]
      ~body:(Exact fx.body_a);
    case "If-Range exact date applies the range" 206
      ~headers:[ ("Range", "bytes=0-3"); ("If-Range", fx.date_a) ]
      ~body:(Exact (sub 0 4));
    case "If-Range stale date sends the full body" 200
      ~headers:[ ("Range", "bytes=0-3"); ("If-Range", epoch) ]
      ~body:(Exact fx.body_a);
    (* Accept-Encoding negotiation; /a.txt variants come from the lazy
       stored-block compressor, /z.txt's from its on-disk sibling. *)
    case "AE gzip gets the lazily built variant" 200
      ~headers:[ ("Accept-Encoding", "gzip") ]
      ~has:
        [
          ("content-encoding", "gzip");
          ("etag", fx.etag_a_gz);
          ("vary", "Accept-Encoding");
          ("content-length", string_of_int gz_n);
        ]
      ~body:(Exact fx.gz_a);
    case "AE gzip;q=0 forbids the variant" 200
      ~headers:[ ("Accept-Encoding", "gzip;q=0") ]
      ~absent:[ "content-encoding" ]
      ~body:(Exact fx.body_a);
    case "AE identity;q=0 prefers gzip" 200
      ~headers:[ ("Accept-Encoding", "identity;q=0, gzip") ]
      ~has:[ ("content-encoding", "gzip") ]
      ~body:(Exact fx.gz_a);
    case "AE higher identity preference wins" 200
      ~headers:[ ("Accept-Encoding", "identity, gzip;q=0.5") ]
      ~absent:[ "content-encoding" ]
      ~body:(Exact fx.body_a);
    case "AE tiny positive q still negotiates gzip" 200
      ~headers:[ ("Accept-Encoding", "gzip;q=0.001") ]
      ~has:[ ("content-encoding", "gzip") ]
      ~body:(Exact fx.gz_a);
    case "INM revalidates the gzip variant" 304
      ~headers:
        [ ("If-None-Match", fx.etag_a_gz); ("Accept-Encoding", "gzip") ]
      ~has:[ ("etag", fx.etag_a_gz) ]
      ~body:Empty;
    case "range slices the gzip representation" 206
      ~headers:[ ("Range", "bytes=0-9"); ("Accept-Encoding", "gzip") ]
      ~has:
        [
          ("content-encoding", "gzip");
          ("content-range", Printf.sprintf "bytes 0-9/%d" gz_n);
        ]
      ~body:(Exact (String.sub fx.gz_a 0 10));
    case "precompressed sibling is served" 200 ~target:"/z.txt"
      ~headers:[ ("Accept-Encoding", "gzip") ]
      ~has:
        [
          ("content-encoding", "gzip");
          ("etag", fx.etag_z_gz);
          ("content-length", string_of_int (String.length fx.gz_z));
        ]
      ~body:(Exact fx.gz_z);
    case "sibling not served without negotiation" 200 ~target:"/z.txt"
      ~absent:[ "content-encoding" ]
      ~body:(Exact fx.body_z);
    case "conditionals do not rescue a 404" 404 ~target:"/missing.txt"
      ~headers:[ ("If-None-Match", "*") ]
      ~absent:[ "etag" ];
  ]

let run_case port c =
  Raw.request ~port ~meth:c.meth ~headers:c.req_headers c.target

let check_case port c =
  let r = run_case port c in
  Alcotest.(check int) (c.label ^ ": status") c.status r.Raw.status;
  List.iter
    (fun (k, v) ->
      match List.assoc_opt k r.Raw.headers with
      | Some got -> Alcotest.(check string) (c.label ^ ": " ^ k) v got
      | None -> Alcotest.failf "%s: missing header %s" c.label k)
    c.has;
  List.iter
    (fun k ->
      if List.mem_assoc k r.Raw.headers then
        Alcotest.failf "%s: header %s must be absent" c.label k)
    c.absent;
  match c.body with
  | Any -> ()
  | Empty ->
      Alcotest.(check string) (c.label ^ ": body must be empty") "" r.Raw.body
  | Exact b ->
      if not (String.equal r.Raw.body b) then
        Alcotest.failf "%s: body mismatch (%d bytes, wanted %d)" c.label
          (String.length r.Raw.body) (String.length b)

(* Every case's expectations, against the paper's canonical AMPED mode. *)
let test_table_amped () =
  with_mode_server Server.Amped (fun port ->
      List.iter (check_case port) (table ()))

(* The same wire bytes from every architecture.  Responses are compared
   to AMPED's after masking the Date header (the only legitimately
   volatile byte range: ETag/Last-Modified derive from the shared
   docroot, header padding is deterministic).  Exposed with the mode
   list as a parameter because Sharded must run from the last suite in
   the binary: OCaml 5 forbids Unix.fork once any domain has ever been
   spawned, so every MP (fork) test must precede the first
   domain-spawning one — test_sharded.ml supplies the SHARDED entry. *)
let byte_identity_against_amped modes =
  let cases = table () in
  let run mode = with_mode_server mode (fun port -> List.map (run_case port) cases) in
  let base = run Server.Amped in
  List.iter
    (fun (name, mode) ->
      let got = run mode in
      List.iteri
        (fun i (r : Raw.response) ->
          let want = (List.nth base i).Raw.raw in
          if
            not
              (String.equal (Raw.mask_dates want) (Raw.mask_dates r.Raw.raw))
          then
            Alcotest.failf "%s: %s response differs from AMPED" name
              (List.nth cases i).label)
        got)
    modes

let test_byte_identity () =
  byte_identity_against_amped
    [ ("SPED", Server.Sped); ("MP", Server.Mp 2); ("MT", Server.Mt 2) ]

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

(* Random partitions of a binary file: every window must come back 206
   with the exact Content-Range, and the windows must reassemble to the
   exact body — any off-by-one in slice bookkeeping breaks the equality. *)
let test_range_reassembly () =
  let body = patterned 1987 in
  let fx = Lazy.force fixture in
  let path = Filename.concat fx.docroot "r.bin" in
  write_file path body;
  with_mode_server Server.Amped (fun port ->
      let n = String.length body in
      let prop cuts =
        let cuts =
          List.sort_uniq compare (0 :: n :: List.map (fun c -> c mod n) cuts)
        in
        let rec windows = function
          | a :: (b :: _ as rest) when b > a -> (a, b - a) :: windows rest
          | _ :: rest -> windows rest
          | [] -> []
        in
        let pieces =
          List.map
            (fun (off, len) ->
              let r =
                Raw.request ~port
                  ~headers:
                    [ ("Range", Printf.sprintf "bytes=%d-%d" off (off + len - 1)) ]
                  "/r.bin"
              in
              if r.Raw.status <> 206 then
                QCheck.Test.fail_reportf "window %d+%d: status %d" off len
                  r.Raw.status;
              let want_cr = Printf.sprintf "bytes %d-%d/%d" off (off + len - 1) n in
              if List.assoc_opt "content-range" r.Raw.headers <> Some want_cr
              then QCheck.Test.fail_reportf "window %d+%d: bad Content-Range" off len;
              r.Raw.body)
            (windows cuts)
        in
        String.equal (String.concat "" pieces) body
      in
      QCheck.Test.check_exn
        (QCheck.Test.make ~count:15 ~name:"206 windows reassemble the body"
           QCheck.(small_list small_nat)
           prop))

(* However the conditional headers land, a 304 must be a bare head:
   zero payload bytes on the wire before the close. *)
let test_304_never_carries_body () =
  let fx = Lazy.force fixture in
  let pool =
    [|
      [ ("If-None-Match", fx.etag_a) ];
      [ ("If-None-Match", "*") ];
      [ ("If-None-Match", "\"miss\"") ];
      [ ("If-Modified-Since", fx.date_a) ];
      [ ("If-Modified-Since", Http_date.format 0.) ];
      [ ("If-Modified-Since", "garbage") ];
      [ ("If-None-Match", fx.etag_a); ("If-Modified-Since", "garbage") ];
      [ ("If-None-Match", fx.etag_a_gz); ("Accept-Encoding", "gzip") ];
      [ ("If-Modified-Since", fx.date_a); ("Accept-Encoding", "gzip;q=0") ];
    |]
  in
  with_mode_server Server.Amped (fun port ->
      let prop i =
        let headers = pool.(i mod Array.length pool) in
        let r = Raw.request ~port ~headers "/a.txt" in
        (match r.Raw.status with
        | 304 ->
            if r.Raw.body <> "" then
              QCheck.Test.fail_reportf "304 carried %d payload bytes"
                (String.length r.Raw.body);
            if List.mem_assoc "content-length" r.Raw.headers then
              QCheck.Test.fail_report "304 carried Content-Length"
        | 200 -> ()
        | s -> QCheck.Test.fail_reportf "unexpected status %d" s);
        true
      in
      QCheck.Test.check_exn
        (QCheck.Test.make ~count:40 ~name:"304 is always a bare head"
           QCheck.small_nat prop))

(* The stored-block compressor and the reference inflate are exact
   inverses on arbitrary bytes (including runs longer than one stored
   block's 65535-byte limit, via a large generator case). *)
let gzip_roundtrip_prop s =
  match Gzip.decompress (Gzip.compress s) with
  | Ok s' -> String.equal s s'
  | Error e -> QCheck.Test.fail_reportf "inflate rejected our gzip: %s" e

let test_gzip_roundtrip =
  Helpers.qcheck_case ~count:200 ~name:"gzip compress/decompress round-trips"
    QCheck.(string_gen_of_size Gen.(frequency [ (9, small_nat); (1, return 70_000) ]) Gen.char)
    gzip_roundtrip_prop

(* All three RFC 9110 date formats re-parse to the second they encode,
   and trailing garbage after a valid date is rejected. *)
let date_roundtrip_prop ts =
  let t = float_of_int ts in
  Http_date.parse (Http_date.format t) = Some t
  && Http_date.parse (Http_date.format_rfc850 t) = Some t
  && Http_date.parse (Http_date.format_asctime t) = Some t
  && Http_date.parse (Http_date.format t ^ " x") = None

let test_date_roundtrip =
  (* format_rfc850's two-digit year pivots at 70: stay inside 1970-2069. *)
  Helpers.qcheck_case ~count:500 ~name:"all three date formats round-trip"
    QCheck.(int_range 0 2_000_000_000)
    date_roundtrip_prop

(* ------------------------------------------------------------------ *)
(* Send-path cost of the new responses, via /server-status?json        *)
(* ------------------------------------------------------------------ *)

let json_int key s =
  let needle = Printf.sprintf "\"%s\":" key in
  let nl = String.length needle in
  let rec find i =
    if i + nl > String.length s then
      Alcotest.failf "status JSON has no %s" key
    else if String.sub s i nl = needle then i + nl
    else find (i + 1)
  in
  let start = find 0 in
  let rec stop i =
    if i < String.length s && (match s.[i] with '0' .. '9' -> true | _ -> false)
    then stop (i + 1)
    else i
  in
  int_of_string (String.sub s start (stop start - start))

(* Scrape the counters over the same keep-alive connection as the
   request under test: the single event loop processes the connection's
   requests strictly in order, so the second scrape's body includes
   exactly the sends of the first scrape and of the request under test.
   The first scrape's own cost is known — one writev, and its copied
   bytes are precisely the response bytes we received for it — so the
   request's cost falls out by subtraction, deterministically. *)
let measure_over_session port ~warm ~request:(meth, target, headers) =
  let s = Raw.open_session ~port in
  Fun.protect
    ~finally:(fun () -> Raw.close_session s)
    (fun () ->
      List.iter (fun t -> ignore (Raw.session_request s t)) warm;
      let s0 = Raw.session_request s "/server-status?json" in
      let r = Raw.session_request s ~meth ~headers target in
      let s1 = Raw.session_request s "/server-status?json" in
      let delta key = json_int key s1.Raw.body - json_int key s0.Raw.body in
      let writev = delta "writev_calls" - 1 (* scrape s0's own send *) in
      let copied = delta "bytes_copied" - String.length s0.Raw.raw in
      (r, writev, delta "write_calls", copied))

let test_cached_304_costs_one_writev () =
  if not Iovec.have_writev then ()
  else
    with_mode_server Server.Amped (fun port ->
        let fx = Lazy.force fixture in
        let r, writev, writes, copied =
          measure_over_session port ~warm:[ "/a.txt" ]
            ~request:("GET", "/a.txt", [ ("If-None-Match", fx.etag_a) ])
        in
        Alcotest.(check int) "304" 304 r.Raw.status;
        Alcotest.(check int) "exactly one writev" 1 writev;
        Alcotest.(check int) "no scalar writes" 0 writes;
        Alcotest.(check int) "zero bytes copied" 0 copied)

let test_cached_206_copies_only_the_header () =
  if not Iovec.have_writev then ()
  else
    with_mode_server Server.Amped (fun port ->
        let fx = Lazy.force fixture in
        let r, writev, writes, copied =
          measure_over_session port ~warm:[ "/a.txt" ]
            ~request:("GET", "/a.txt", [ ("Range", "bytes=5-14") ])
        in
        Alcotest.(check int) "206" 206 r.Raw.status;
        Alcotest.(check string) "slice body" (String.sub fx.body_a 5 10)
          r.Raw.body;
        Alcotest.(check int) "exactly one writev" 1 writev;
        Alcotest.(check int) "no scalar writes" 0 writes;
        (* The per-request Content-Range header is the only copy; the
           ten body bytes ride the cached mapping untouched. *)
        Alcotest.(check int) "copied exactly the header bytes"
          (String.length r.Raw.raw - String.length r.Raw.body)
          copied)

let suite =
  [
    Alcotest.test_case "conformance table (AMPED)" `Quick test_table_amped;
    Alcotest.test_case "byte-identity across SPED/MP/MT" `Quick
      test_byte_identity;
    Alcotest.test_case "random 206 windows reassemble" `Quick
      test_range_reassembly;
    Alcotest.test_case "304 never carries payload bytes" `Quick
      test_304_never_carries_body;
    test_gzip_roundtrip;
    test_date_roundtrip;
    Alcotest.test_case "cached 304 = 1 writev, 0 copies" `Quick
      test_cached_304_costs_one_writev;
    Alcotest.test_case "cached 206 copies only its header" `Quick
      test_cached_206_copies_only_the_header;
  ]
