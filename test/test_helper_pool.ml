(* AMPED helper pool unit tests. *)

module Pool = Flash.Helper_pool

let with_kernel f =
  let engine = Sim.Engine.create () in
  let kernel = Simos.Kernel.create engine Simos.Os_profile.freebsd in
  f engine kernel;
  ignore (Sim.Engine.run ~until:60. engine)

let test_dispatch_executes_work () =
  let results = ref [] in
  with_kernel (fun engine kernel ->
      let pool = Pool.create kernel ~max:4 ~footprint:1000 ~name:"t" in
      ignore
        (Sim.Proc.spawn engine ~name:"main" (fun () ->
             for i = 1 to 3 do
               assert (Pool.dispatch pool ~work:(fun () -> i * 10))
             done;
             (* Collect completions off the notify pipe. *)
             let pipe = Pool.notify_pipe pool in
             let rec collect n =
               if n < 3 then begin
                 Simos.Pollable.wait_ready (Simos.Pipe.pollable pipe);
                 let rec drain n =
                   match Simos.Kernel.pipe_read kernel pipe with
                   | Some v ->
                       results := v :: !results;
                       drain (n + 1)
                   | None -> n
                 in
                 collect (drain n)
               end
             in
             collect 0)));
  Alcotest.(check (list int)) "all completions arrived" [ 10; 20; 30 ]
    (List.sort Int.compare !results)

let test_pool_spawns_on_demand () =
  with_kernel (fun engine kernel ->
      let pool = Pool.create kernel ~max:8 ~footprint:1000 ~name:"t" in
      Alcotest.(check int) "none at start" 0 (Pool.spawned pool);
      ignore
        (Sim.Proc.spawn engine ~name:"main" (fun () ->
             assert (Pool.dispatch pool ~work:(fun () -> 0));
             Alcotest.(check int) "one spawned" 1 (Pool.spawned pool))))

let test_pool_bounded_and_queues () =
  let completions = ref 0 in
  with_kernel (fun engine kernel ->
      let pool = Pool.create kernel ~max:2 ~footprint:1000 ~name:"t" in
      ignore
        (Sim.Proc.spawn engine ~name:"main" (fun () ->
             (* Six slow jobs through a pool of two. *)
             for _ = 1 to 6 do
               assert
                 (Pool.dispatch pool ~work:(fun () ->
                      Sim.Proc.delay 0.1;
                      1))
             done;
             Alcotest.(check int) "capped at max" 2
               (Pool.spawned pool);
             Alcotest.(check bool) "backlog queued" true
               (Pool.queued pool > 0);
             let pipe = Pool.notify_pipe pool in
             let rec collect n =
               if n < 6 then begin
                 Simos.Pollable.wait_ready (Simos.Pipe.pollable pipe);
                 let rec drain n =
                   match Simos.Kernel.pipe_read kernel pipe with
                   | Some _ ->
                       incr completions;
                       drain (n + 1)
                   | None -> n
                 in
                 collect (drain n)
               end
             in
             collect 0)));
  Alcotest.(check int) "all six completed" 6 !completions

let test_helpers_reserve_memory () =
  with_kernel (fun engine kernel ->
      let memory = Simos.Kernel.memory kernel in
      let before = Simos.Memory.reserved memory in
      let pool =
        Pool.create kernel ~max:4 ~footprint:50_000 ~name:"t"
      in
      ignore
        (Sim.Proc.spawn engine ~name:"main" (fun () ->
             assert (Pool.dispatch pool ~work:(fun () -> 0));
             assert (Pool.dispatch pool ~work:(fun () -> 0));
             Alcotest.(check int) "footprint per helper"
               (before + (2 * 50_000))
               (Simos.Memory.reserved memory))))

let test_bound_refuses_excess () =
  (* Regression for the unbounded-backlog bug: with [max_queued] set,
     the pending queue can never grow past the cap — excess dispatches
     are refused at the door, and the queued-vs-in-flight split stays
     visible while the pool is saturated. *)
  let completions = ref 0 in
  with_kernel (fun engine kernel ->
      let pool =
        Pool.create ~max_queued:2 kernel ~max:1 ~footprint:1000 ~name:"t"
      in
      ignore
        (Sim.Proc.spawn engine ~name:"main" (fun () ->
             let admitted = ref 0 and refused = ref 0 in
             for _ = 1 to 10 do
               if
                 Pool.dispatch pool ~work:(fun () ->
                     Sim.Proc.delay 0.1;
                     1)
               then incr admitted
               else incr refused;
               Alcotest.(check bool) "backlog never exceeds the bound" true
                 (Pool.queued pool <= 2)
             done;
             (* One in flight, two queued, the other seven refused. *)
             Alcotest.(check int) "admitted" 3 !admitted;
             Alcotest.(check int) "refused" 7 !refused;
             Alcotest.(check int) "refusals counted" 7 (Pool.rejected pool);
             Alcotest.(check int) "in flight" 1 (Pool.in_flight pool);
             Alcotest.(check int) "queued" 2 (Pool.queued pool);
             Alcotest.(check int) "depth = queued + in-flight" 3
               (Pool.queue_depth pool);
             let pipe = Pool.notify_pipe pool in
             let rec collect n =
               if n < 3 then begin
                 Simos.Pollable.wait_ready (Simos.Pipe.pollable pipe);
                 let rec drain n =
                   match Simos.Kernel.pipe_read kernel pipe with
                   | Some _ ->
                       incr completions;
                       drain (n + 1)
                   | None -> n
                 in
                 collect (drain n)
               end
             in
             collect 0)));
  Alcotest.(check int) "every admitted job completed" 3 !completions;
  ()

let test_idle_helpers_reused () =
  with_kernel (fun engine kernel ->
      let pool = Pool.create kernel ~max:8 ~footprint:1000 ~name:"t" in
      ignore
        (Sim.Proc.spawn engine ~name:"main" (fun () ->
             let pipe = Pool.notify_pipe pool in
             for _ = 1 to 5 do
               assert (Pool.dispatch pool ~work:(fun () -> 0));
               Simos.Pollable.wait_ready (Simos.Pipe.pollable pipe);
               ignore (Simos.Kernel.pipe_read kernel pipe)
             done;
             (* Sequential jobs reuse the single idle helper. *)
             Alcotest.(check int) "one helper for serial jobs" 1
               (Pool.spawned pool))))

let suite =
  [
    Alcotest.test_case "dispatch executes work" `Quick test_dispatch_executes_work;
    Alcotest.test_case "spawns on demand" `Quick test_pool_spawns_on_demand;
    Alcotest.test_case "bounded pool queues backlog" `Quick
      test_pool_bounded_and_queues;
    Alcotest.test_case "max_queued refuses excess" `Quick
      test_bound_refuses_excess;
    Alcotest.test_case "helpers reserve memory" `Quick test_helpers_reserve_memory;
    Alcotest.test_case "idle helpers reused" `Quick test_idle_helpers_reused;
  ]
