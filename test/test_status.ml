(* Integration tests for the live server's observability: the
   /server-status endpoint across all four architectures, the loop-stall
   watchdog separating SPED from AMPED, and the keep-alive idle-timeout
   accounting.  Runs over real loopback sockets. *)

module Server = Flash_live.Server
module Client = Flash_live.Client

(* ------------------------------------------------------------------ *)
(* A tiny JSON reader — just enough to check /server-status?json
   without adding a dependency.                                        *)
(* ------------------------------------------------------------------ *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad_json of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    let m = String.length word in
    if !pos + m <= n && String.sub s !pos m = word then begin
      pos := !pos + m;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some 'n' -> Buffer.add_char b '\n'; advance (); loop ()
          | Some 't' -> Buffer.add_char b '\t'; advance (); loop ()
          | Some 'r' -> Buffer.add_char b '\r'; advance (); loop ()
          | Some 'b' -> Buffer.add_char b '\b'; advance (); loop ()
          | Some 'f' -> Buffer.add_char b '\012'; advance (); loop ()
          | Some 'u' ->
              (* Escaped code point: not needed for status output; keep a
                 placeholder so offsets stay sane. *)
              pos := Stdlib.min n (!pos + 5);
              Buffer.add_char b '?';
              loop ()
          | Some c -> Buffer.add_char b c; advance (); loop ()
          | None -> fail "bad escape")
      | Some c ->
          Buffer.add_char b c;
          advance ();
          loop ()
    in
    loop ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((key, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((key, v) :: acc))
            | _ -> fail "expected , or }"
          in
          members []
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elems (v :: acc)
            | Some ']' ->
                advance ();
                Arr (List.rev (v :: acc))
            | _ -> fail "expected , or ]"
          in
          elems []
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
    | None -> fail "empty input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member key = function
  | Obj kv -> (
      match List.assoc_opt key kv with
      | Some v -> v
      | None -> Alcotest.failf "JSON object missing key %S" key)
  | _ -> Alcotest.failf "expected JSON object looking up %S" key

let to_int = function
  | Num f -> int_of_float f
  | _ -> Alcotest.fail "expected JSON number"

let to_num = function
  | Num f -> f
  | _ -> Alcotest.fail "expected JSON number"

let to_str = function
  | Str s -> s
  | _ -> Alcotest.fail "expected JSON string"

(* ------------------------------------------------------------------ *)
(* Harness                                                             *)
(* ------------------------------------------------------------------ *)

let with_config config f =
  let server = Server.start_background config in
  Fun.protect
    ~finally:(fun () -> Server.stop server)
    (fun () -> f server (Server.port server))

let with_mode mode f =
  let docroot = Test_live.make_docroot () in
  with_config { (Server.default_config ~docroot) with Server.mode } f

let get port path = Client.get ~host:"127.0.0.1" ~port path

(* Poll until [pred (stats server)] holds — MP consolidation and MT
   request accounting happen just after the response bytes go out, so
   the client can observe the response before the counters move. *)
let await_stats ?(tries = 60) server pred =
  let rec loop tries =
    let stats = Server.stats server in
    if pred stats || tries = 0 then stats
    else begin
      Thread.delay 0.05;
      loop (tries - 1)
    end
  in
  loop tries

let get_status_json port =
  let r = get port "/server-status?json" in
  Alcotest.(check int) "status endpoint 200" 200 r.Client.status;
  Alcotest.(check (option string))
    "content type" (Some "application/json")
    (List.assoc_opt "content-type" r.Client.headers);
  parse_json r.Client.body

(* ------------------------------------------------------------------ *)
(* /server-status across the four architectures                        *)
(* ------------------------------------------------------------------ *)

(* Event loop modes render status inside the loop with full visibility
   of the counters: the JSON must agree exactly with [stats]. *)
let test_status_event_loop mode () =
  with_mode mode (fun server port ->
      ignore (get port "/hello.txt");
      ignore (get port "/hello.txt");
      ignore (get port "/index.html");
      let j = get_status_json port in
      Alcotest.(check string)
        "mode"
        (match mode with Server.Sped -> "sped" | _ -> "amped")
        (to_str (member "mode" j));
      (* The status request increments the counter before rendering, so
         the JSON includes itself. *)
      Alcotest.(check int) "requests" 4 (to_int (member "requests" j));
      Alcotest.(check int) "connections" 4 (to_int (member "connections" j));
      Alcotest.(check int) "errors" 0 (to_int (member "errors" j));
      let cache = member "cache" j in
      Alcotest.(check bool) "cache hits" true (to_int (member "hits" cache) >= 1);
      Alcotest.(check bool) "cache misses" true
        (to_int (member "misses" cache) >= 2);
      (* The structured per-cache view agrees with the legacy summary. *)
      let file = member "file" (member "caches" j) in
      Alcotest.(check string) "file cache policy" "lru"
        (to_str (member "policy" file));
      Alcotest.(check string) "file cache admission" "always"
        (to_str (member "admission" file));
      Alcotest.(check bool) "file cache capacity" true
        (to_int (member "capacity" file) > 0);
      Alcotest.(check int) "file cache hits agree" (to_int (member "hits" cache))
        (to_int (member "hits" file));
      Alcotest.(check int) "file cache misses agree"
        (to_int (member "misses" cache))
        (to_int (member "misses" file));
      Alcotest.(check int) "no evictions yet" 0
        (to_int (member "evictions" file));
      (* Latency histogram covers the three file requests (the status
         request's own latency is recorded after rendering). *)
      let lat = member "latency_ms" j in
      Alcotest.(check int) "latency samples" 3 (to_int (member "count" lat));
      Alcotest.(check bool) "p99 sane" true (to_num (member "p99" lat) >= 0.);
      let loop = member "loop" j in
      Alcotest.(check bool) "loop iterations" true
        (to_int (member "iterations" loop) >= 1);
      (match mode with
      | Server.Amped ->
          let helper = member "helper" j in
          Alcotest.(check bool) "helper jobs" true
            (to_int (member "jobs" helper) >= 1)
      | _ -> Alcotest.(check bool) "no helper" true (member "helper" j = Null));
      (* The JSON agrees with the programmatic stats. *)
      let stats = Server.stats server in
      Alcotest.(check int) "stats.requests matches" stats.Server.requests
        (to_int (member "requests" j));
      Alcotest.(check int) "stats.connections matches" stats.Server.connections
        (to_int (member "connections" j));
      Alcotest.(check int) "stats.cache_hits matches" stats.Server.cache_hits
        (to_int (member "hits" cache)))

(* MT: worker threads share the parent's counters; the request event is
   recorded just after the response is written, so the JSON may lag by
   the in-flight status request. *)
let test_status_mt () =
  with_mode (Server.Mt 2) (fun server port ->
      ignore (get port "/hello.txt");
      ignore (get port "/hello.txt");
      let j = get_status_json port in
      Alcotest.(check string) "mode" "mt:2" (to_str (member "mode" j));
      let json_requests = to_int (member "requests" j) in
      Alcotest.(check bool) "json sees prior requests" true (json_requests >= 2);
      let stats = await_stats server (fun s -> s.Server.requests >= 3) in
      Alcotest.(check int) "all requests counted" 3 stats.Server.requests;
      Alcotest.(check bool) "json within one of stats" true
        (stats.Server.requests - json_requests <= 1))

(* MP: children mirror counters copy-on-write and ship events to the
   parent over the stats pipe (§4.2) — the parent's [stats] must
   consolidate every child's requests. *)
let test_status_mp () =
  with_mode (Server.Mp 2) (fun server port ->
      ignore (get port "/hello.txt");
      ignore (get port "/index.html");
      let j = get_status_json port in
      Alcotest.(check string) "mode" "mp:2" (to_str (member "mode" j));
      Alcotest.(check bool) "JSON well-formed" true
        (to_int (member "requests" j) >= 0);
      let stats = await_stats server (fun s -> s.Server.requests >= 3) in
      Alcotest.(check int) "parent consolidated over pipe" 3
        stats.Server.requests;
      let lat = Server.latency server in
      Alcotest.(check bool) "latency consolidated over pipe" true
        (Obs.Histogram.count lat >= 3))

let test_status_text () =
  with_mode Server.Amped (fun _server port ->
      ignore (get port "/hello.txt");
      let r = get port "/server-status" in
      Alcotest.(check int) "200" 200 r.Client.status;
      Alcotest.(check (option string))
        "plain text" (Some "text/plain")
        (List.assoc_opt "content-type" r.Client.headers);
      Alcotest.(check bool) "mode line" true
        (Helpers.contains ~affix:"mode:" r.Client.body);
      Alcotest.(check bool) "latency line" true
        (Helpers.contains ~affix:"latency:" r.Client.body))

(* ------------------------------------------------------------------ *)
(* Path-resolution isolation of the endpoint                           *)
(* ------------------------------------------------------------------ *)

(* The endpoint is matched on the raw request path before docroot
   resolution: a docroot file with the same name is shadowed while the
   endpoint is enabled and served normally when it is disabled. *)
let test_status_shadows_docroot_file () =
  let docroot = Test_live.make_docroot () in
  Test_live.write_file (Filename.concat docroot "server-status") "DECOY";
  with_config (Server.default_config ~docroot) (fun _server port ->
      let r = get port "/server-status" in
      Alcotest.(check bool) "endpoint wins" true
        (Helpers.contains ~affix:"mode:" r.Client.body);
      Alcotest.(check bool) "decoy not served" false
        (Helpers.contains ~affix:"DECOY" r.Client.body);
      (* Traversal cannot reach the endpoint by another spelling. *)
      let r403 = get port "/../server-status" in
      Alcotest.(check int) "escape still 403" 403 r403.Client.status)

let test_status_disabled_serves_docroot () =
  let docroot = Test_live.make_docroot () in
  Test_live.write_file (Filename.concat docroot "server-status") "DECOY";
  with_config
    { (Server.default_config ~docroot) with Server.status_path = None }
    (fun _server port ->
      let r = get port "/server-status" in
      Alcotest.(check int) "200" 200 r.Client.status;
      Alcotest.(check string) "docroot file served" "DECOY" r.Client.body)

let test_status_custom_path () =
  let docroot = Test_live.make_docroot () in
  with_config
    {
      (Server.default_config ~docroot) with
      Server.status_path = Some "/_flash/metrics";
    }
    (fun _server port ->
      let r = get port "/_flash/metrics?json" in
      Alcotest.(check int) "custom path serves status" 200 r.Client.status;
      ignore (parse_json r.Client.body);
      let r404 = get port "/server-status" in
      Alcotest.(check int) "default path is plain 404 now" 404
        r404.Client.status)

let test_status_not_in_access_log () =
  let docroot = Test_live.make_docroot () in
  let log = Filename.temp_file "flash_access" ".log" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove log with Sys_error _ -> ())
    (fun () ->
      with_config
        { (Server.default_config ~docroot) with Server.access_log = Some log }
        (fun _server port ->
          ignore (get port "/hello.txt");
          ignore (get port "/server-status");
          ignore (get port "/server-status?json");
          ignore (get port "/hello.txt"));
      let ic = open_in log in
      let len = in_channel_length ic in
      let contents = really_input_string ic len in
      close_in ic;
      Alcotest.(check bool) "real traffic logged" true
        (Helpers.contains ~affix:"/hello.txt" contents);
      Alcotest.(check bool) "status requests excluded" false
        (Helpers.contains ~affix:"server-status" contents))

(* ------------------------------------------------------------------ *)
(* The watchdog separates the architectures (§3.3)                     *)
(* ------------------------------------------------------------------ *)

(* Identical traffic, identical injected disk slowness; only the mode
   differs.  SPED does the cold read inline and the loop stalls; AMPED
   ships it to a helper and the loop keeps spinning. *)
let stall_config ~docroot mode =
  {
    (Server.default_config ~docroot) with
    Server.mode;
    stall_threshold = 0.1;
    slow_read = Some (fun _path -> Thread.delay 0.3);
  }

let test_sped_stalls_on_cold_read () =
  let docroot = Test_live.make_docroot () in
  with_config (stall_config ~docroot Server.Sped) (fun server port ->
      let r = get port "/hello.txt" in
      Alcotest.(check int) "served despite the stall" 200 r.Client.status;
      let stats = Server.stats server in
      Alcotest.(check bool) "loop stalled" true (stats.Server.loop_stalls >= 1);
      Alcotest.(check bool) "stall spans the injected delay" true
        (stats.Server.loop_max_stall >= 0.25))

let test_amped_does_not_stall () =
  let docroot = Test_live.make_docroot () in
  with_config (stall_config ~docroot Server.Amped) (fun server port ->
      let r = get port "/hello.txt" in
      Alcotest.(check int) "served" 200 r.Client.status;
      let stats = Server.stats server in
      (* The same 300 ms of disk slowness happened — but in a helper. *)
      Alcotest.(check int) "loop never stalled" 0 stats.Server.loop_stalls;
      Alcotest.(check bool) "helper did the slow work" true
        (stats.Server.helper_jobs >= 1);
      match Server.helper_job_latency server with
      | None -> Alcotest.fail "AMPED should expose helper job latency"
      | Some h ->
          Alcotest.(check bool) "job latency spans the injected delay" true
            (Obs.Histogram.max h >= 0.25))

(* ------------------------------------------------------------------ *)
(* Keep-alive idle timeout accounting                                  *)
(* ------------------------------------------------------------------ *)

let test_idle_timeout_closes_and_accounts () =
  let docroot = Test_live.make_docroot () in
  with_config
    { (Server.default_config ~docroot) with Server.idle_timeout = 0.3 }
    (fun server port ->
      let session = Client.Session.connect ~host:"127.0.0.1" ~port () in
      let r = Client.Session.request session "/hello.txt" in
      Alcotest.(check int) "first request ok" 200 r.Client.status;
      let live = Server.stats server in
      Alcotest.(check int) "connection active" 1 live.Server.active_connections;
      (* The sweep runs each loop iteration (select wakes at least every
         0.5 s), so the idle connection must be reaped shortly after the
         timeout. *)
      let stats =
        await_stats ~tries:80 server (fun s -> s.Server.active_connections = 0)
      in
      Alcotest.(check int) "idle connection reaped" 0
        stats.Server.active_connections;
      Alcotest.(check int) "still one connection total" 1
        stats.Server.connections;
      Alcotest.(check int) "still one request" 1 stats.Server.requests;
      (* The socket really was closed server-side. *)
      (match Client.Session.request session "/hello.txt" with
      | _ -> Alcotest.fail "request on a reaped connection should fail"
      | exception _ -> ());
      Client.Session.close session;
      (* A fresh connection works and the accounting keeps going. *)
      let r2 = get port "/hello.txt" in
      Alcotest.(check int) "server still serving" 200 r2.Client.status;
      let stats2 = Server.stats server in
      Alcotest.(check int) "second connection counted" 2
        stats2.Server.connections)

(* Per-request latency lands in the histogram in every mode. *)
let test_latency_recorded mode () =
  with_mode mode (fun server port ->
      ignore (get port "/hello.txt");
      ignore (get port "/hello.txt");
      let rec await tries =
        if Obs.Histogram.count (Server.latency server) >= 2 || tries = 0 then ()
        else begin
          Thread.delay 0.05;
          await (tries - 1)
        end
      in
      await 40;
      let lat = Server.latency server in
      Alcotest.(check int) "two samples" 2 (Obs.Histogram.count lat);
      Alcotest.(check bool) "latencies positive" true (Obs.Histogram.min lat >= 0.))

let suite =
  [
    Alcotest.test_case "AMPED /server-status JSON" `Quick
      (test_status_event_loop Server.Amped);
    Alcotest.test_case "SPED /server-status JSON" `Quick
      (test_status_event_loop Server.Sped);
    Alcotest.test_case "MT /server-status JSON" `Quick test_status_mt;
    Alcotest.test_case "MP /server-status JSON" `Quick test_status_mp;
    Alcotest.test_case "text status" `Quick test_status_text;
    Alcotest.test_case "endpoint shadows docroot file" `Quick
      test_status_shadows_docroot_file;
    Alcotest.test_case "disabled endpoint serves docroot" `Quick
      test_status_disabled_serves_docroot;
    Alcotest.test_case "custom status path" `Quick test_status_custom_path;
    Alcotest.test_case "status excluded from access log" `Quick
      test_status_not_in_access_log;
    Alcotest.test_case "SPED stalls on cold read" `Quick
      test_sped_stalls_on_cold_read;
    Alcotest.test_case "AMPED does not stall" `Quick test_amped_does_not_stall;
    Alcotest.test_case "idle timeout reaps and accounts" `Quick
      test_idle_timeout_closes_and_accounts;
    Alcotest.test_case "latency recorded (AMPED)" `Quick
      (test_latency_recorded Server.Amped);
    Alcotest.test_case "latency recorded (SPED)" `Quick
      (test_latency_recorded Server.Sped);
    Alcotest.test_case "latency recorded (MT)" `Quick
      (test_latency_recorded (Server.Mt 2));
    Alcotest.test_case "latency recorded (MP)" `Quick
      (test_latency_recorded (Server.Mp 2));
  ]
