(* Property and unit tests for the observability library: the
   log-bucketed histogram's quantile guarantees, gauges, and the
   loop-stall watchdog driven by a fake clock. *)

module H = Obs.Histogram

let record_all h xs = List.iter (H.record h) xs

(* Positive observations spanning six decades — exercises many buckets. *)
let samples =
  QCheck.make
    ~print:QCheck.Print.(list float)
    QCheck.Gen.(list_size (int_range 1 200) (float_range 1e-6 1000.))

let two_sample_sets =
  QCheck.make
    ~print:QCheck.Print.(pair (list float) (list float))
    QCheck.Gen.(
      pair
        (list_size (int_range 0 100) (float_range 1e-6 1000.))
        (list_size (int_range 1 100) (float_range 1e-6 1000.)))

(* p50 <= p90 <= p99 <= max, always. *)
let prop_quantile_monotone =
  Helpers.qcheck_case ~count:300 ~name:"quantiles monotone" samples (fun xs ->
      let h = H.create () in
      record_all h xs;
      let p50 = H.percentile h 50. in
      let p90 = H.percentile h 90. in
      let p99 = H.percentile h 99. in
      p50 <= p90 && p90 <= p99 && p99 <= H.max h)

(* Every observation lands in exactly one bucket. *)
let prop_count_conserved =
  Helpers.qcheck_case ~count:300 ~name:"bucket counts conserve count" samples
    (fun xs ->
      let h = H.create () in
      record_all h xs;
      let bucket_sum =
        List.fold_left (fun acc (_, _, c) -> acc + c) 0 (H.buckets h)
      in
      H.count h = List.length xs && bucket_sum = H.count h)

(* merge a b is indistinguishable from having recorded both streams. *)
let prop_merge_equiv =
  Helpers.qcheck_case ~count:300 ~name:"merge == recording both streams"
    two_sample_sets (fun (xs, ys) ->
      let a = H.create () and b = H.create () and both = H.create () in
      record_all a xs;
      record_all b ys;
      record_all both (xs @ ys);
      let m = H.merge a b in
      let same_p p = H.percentile m p = H.percentile both p in
      H.count m = H.count both
      && Helpers.float_eq ~eps:1e-6 (H.sum m) (H.sum both)
      && H.min m = H.min both
      && H.max m = H.max both
      && List.for_all same_p [ 0.; 25.; 50.; 90.; 99.; 100. ]
      && H.buckets m = H.buckets both)

(* The estimate for the quantile a value realises is off by at most one
   log bucket: v <= estimate <= v * base.  (The tiny slack absorbs
   floating-point rounding in the log-index computation.) *)
let prop_relative_error_bounded =
  Helpers.qcheck_case ~count:300 ~name:"relative error bounded by base" samples
    (fun xs ->
      let h = H.create () in
      record_all h xs;
      let sorted = List.sort Float.compare xs in
      let n = List.length sorted in
      let slack = 1. +. 1e-9 in
      List.for_all2
        (fun v rank ->
          let p = 100. *. (float_of_int rank -. 0.5) /. float_of_int n in
          let est = H.percentile h p in
          v <= est *. slack && est <= v *. H.base h *. slack)
        sorted
        (List.init n (fun i -> i + 1)))

let test_histogram_basics () =
  let h = H.create () in
  Alcotest.(check int) "empty count" 0 (H.count h);
  Alcotest.(check bool) "empty percentile nan" true
    (Float.is_nan (H.percentile h 50.));
  Alcotest.(check bool) "empty mean nan" true (Float.is_nan (H.mean h));
  H.record h 0.010;
  H.record h 0.020;
  H.record h 0.030;
  Alcotest.(check int) "count" 3 (H.count h);
  Helpers.check_float ~msg:"min" 0.010 (H.min h);
  Helpers.check_float ~msg:"max" 0.030 (H.max h);
  Helpers.check_float ~msg:"mean" 0.020 ~eps:1e-12 (H.mean h);
  Alcotest.(check bool) "p100 = max exactly" true (H.percentile h 100. = 0.030);
  H.record h nan;
  H.record h infinity;
  Alcotest.(check int) "non-finite ignored" 3 (H.count h);
  H.reset h;
  Alcotest.(check int) "reset" 0 (H.count h)

let test_histogram_copy_independent () =
  let h = H.create () in
  H.record h 1.;
  let c = H.copy h in
  H.record h 2.;
  Alcotest.(check int) "copy frozen" 1 (H.count c);
  Alcotest.(check int) "original grew" 2 (H.count h)

let test_histogram_invalid () =
  Alcotest.check_raises "base <= 1"
    (Invalid_argument "Obs.Histogram.create: base <= 1") (fun () ->
      ignore (H.create ~base:1. ()));
  Alcotest.check_raises "lo <= 0"
    (Invalid_argument "Obs.Histogram.create: lo <= 0") (fun () ->
      ignore (H.create ~lo:0. ()));
  Alcotest.check_raises "merge mismatch"
    (Invalid_argument "Obs.Histogram.merge: mismatched base/lo") (fun () ->
      ignore (H.merge (H.create ~base:2. ()) (H.create ~base:4. ())));
  let h = H.create () in
  H.record h 1.;
  Alcotest.check_raises "percentile range"
    (Invalid_argument "Obs.Histogram.percentile: p outside [0, 100]") (fun () ->
      ignore (H.percentile h 101.))

let test_gauge () =
  let g = Obs.Gauge.create () in
  Obs.Gauge.incr g;
  Obs.Gauge.incr g;
  Obs.Gauge.decr g;
  Obs.Gauge.incr g;
  Obs.Gauge.incr g;
  Alcotest.(check int) "value" 3 (Obs.Gauge.value g);
  Alcotest.(check int) "hwm" 3 (Obs.Gauge.high_watermark g);
  Obs.Gauge.set g 0;
  Alcotest.(check int) "hwm survives set" 3 (Obs.Gauge.high_watermark g);
  Obs.Gauge.reset g;
  Alcotest.(check int) "reset" 0 (Obs.Gauge.high_watermark g)

let test_counter () =
  let c = Obs.Counter.create () in
  Obs.Counter.incr c;
  Obs.Counter.add c 4;
  Alcotest.(check int) "value" 5 (Obs.Counter.value c)

(* The watchdog must attribute time correctly with no wall clock at all:
   everything below is driven by a hand-cranked fake clock. *)
let test_watchdog_fake_clock () =
  let now = ref 0. in
  let wd = Obs.Watchdog.create ~clock:(fun () -> !now) ~threshold:0.05 () in
  (* Fast iteration: no stall. *)
  Obs.Watchdog.arm wd;
  now := !now +. 0.01;
  Obs.Watchdog.check wd;
  Alcotest.(check int) "no stall yet" 0 (Obs.Watchdog.stalls wd);
  (* Idle time between iterations is NOT counted: the clock advances a
     lot while disarmed. *)
  now := !now +. 10.;
  Obs.Watchdog.arm wd;
  now := !now +. 0.02;
  Obs.Watchdog.check wd;
  Alcotest.(check int) "idle gap ignored" 0 (Obs.Watchdog.stalls wd);
  (* A slow iteration is a stall. *)
  Obs.Watchdog.arm wd;
  now := !now +. 0.30;
  Obs.Watchdog.check wd;
  Alcotest.(check int) "stall recorded" 1 (Obs.Watchdog.stalls wd);
  Helpers.check_float ~msg:"max gap" 0.30 ~eps:1e-9 (Obs.Watchdog.max_gap wd);
  Helpers.check_float ~msg:"last gap" 0.30 ~eps:1e-9 (Obs.Watchdog.last_gap wd);
  Alcotest.(check int) "iterations" 3 (Obs.Watchdog.iterations wd);
  Alcotest.(check int) "gap histogram fed" 3
    (H.count (Obs.Watchdog.gaps wd));
  (* check without arm is a no-op. *)
  Obs.Watchdog.check wd;
  Alcotest.(check int) "unarmed check ignored" 3 (Obs.Watchdog.iterations wd);
  Obs.Watchdog.reset wd;
  Alcotest.(check int) "reset" 0 (Obs.Watchdog.stalls wd)

let test_watchdog_beat () =
  let now = ref 0. in
  let wd = Obs.Watchdog.create ~clock:(fun () -> !now) ~threshold:0.1 () in
  Obs.Watchdog.beat wd;
  now := !now +. 0.2;
  Obs.Watchdog.beat wd;
  now := !now +. 0.05;
  Obs.Watchdog.beat wd;
  Alcotest.(check int) "beats measure gaps between beats" 2
    (Obs.Watchdog.iterations wd);
  Alcotest.(check int) "one stall" 1 (Obs.Watchdog.stalls wd)

(* The sim's Stat.Quantile is the very same type — a value built there
   interoperates with Obs.Histogram directly. *)
let test_sim_quantile_is_obs_histogram () =
  let q = Sim.Stat.Quantile.create () in
  Sim.Stat.Quantile.record q 0.5;
  let merged = H.merge q (H.create ()) in
  Alcotest.(check int) "shared code path" 1 (H.count merged)

let suite =
  [
    prop_quantile_monotone;
    prop_count_conserved;
    prop_merge_equiv;
    prop_relative_error_bounded;
    Alcotest.test_case "histogram basics" `Quick test_histogram_basics;
    Alcotest.test_case "copy is independent" `Quick
      test_histogram_copy_independent;
    Alcotest.test_case "invalid arguments" `Quick test_histogram_invalid;
    Alcotest.test_case "gauge high-watermark" `Quick test_gauge;
    Alcotest.test_case "counter" `Quick test_counter;
    Alcotest.test_case "watchdog with fake clock" `Quick
      test_watchdog_fake_clock;
    Alcotest.test_case "watchdog beat mode" `Quick test_watchdog_beat;
    Alcotest.test_case "Stat.Quantile = Obs.Histogram" `Quick
      test_sim_quantile_is_obs_histogram;
  ]
