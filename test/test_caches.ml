(* Flash's three application caches. *)

let with_kernel f =
  Helpers.run_sim (fun engine ->
      let kernel = Simos.Kernel.create engine Simos.Os_profile.freebsd in
      f kernel)

let add_file kernel path size =
  Simos.Fs.add_file (Simos.Kernel.fs kernel) ~path ~size

(* ---------------- pathname cache ---------------- *)

let test_pathname_basic () =
  with_kernel (fun kernel ->
      let c = Flash.Pathname_cache.create ~entries:10 () in
      Alcotest.(check bool) "enabled" true (Flash.Pathname_cache.enabled c);
      let f = add_file kernel "/a.html" 100 in
      Alcotest.(check bool) "miss" true (Flash.Pathname_cache.find c "/a.html" = None);
      Flash.Pathname_cache.insert c "/a.html" f;
      (match Flash.Pathname_cache.find c "/a.html" with
      | Some g -> Alcotest.(check int) "hit" f.Simos.Fs.inode g.Simos.Fs.inode
      | None -> Alcotest.fail "expected hit");
      Alcotest.(check int) "hits" 1 (Flash.Pathname_cache.hits c);
      Alcotest.(check int) "misses" 1 (Flash.Pathname_cache.misses c))

let test_pathname_bounded () =
  with_kernel (fun kernel ->
      let c = Flash.Pathname_cache.create ~entries:5 () in
      for i = 1 to 20 do
        let f = add_file kernel (Printf.sprintf "/f%d" i) 100 in
        Flash.Pathname_cache.insert c f.Simos.Fs.path f
      done;
      Alcotest.(check int) "bounded" 5 (Flash.Pathname_cache.length c);
      Alcotest.(check bool) "most recent kept" true
        (Flash.Pathname_cache.find c "/f20" <> None);
      Alcotest.(check bool) "oldest evicted" true
        (Flash.Pathname_cache.find c "/f1" = None))

let test_pathname_disabled () =
  with_kernel (fun kernel ->
      let c = Flash.Pathname_cache.create ~entries:0 () in
      Alcotest.(check bool) "disabled" false (Flash.Pathname_cache.enabled c);
      let f = add_file kernel "/x" 10 in
      Flash.Pathname_cache.insert c "/x" f;
      Alcotest.(check bool) "never hits" true
        (Flash.Pathname_cache.find c "/x" = None))

let test_pathname_invalidate () =
  with_kernel (fun kernel ->
      let c = Flash.Pathname_cache.create ~entries:5 () in
      let f = add_file kernel "/inv" 10 in
      Flash.Pathname_cache.insert c "/inv" f;
      Flash.Pathname_cache.invalidate c "/inv";
      Alcotest.(check bool) "gone" true (Flash.Pathname_cache.find c "/inv" = None))

(* ---------------- header cache ---------------- *)

let test_header_basic () =
  with_kernel (fun kernel ->
      let c = Flash.Header_cache.create ~enabled:true () in
      let f = add_file kernel "/h.html" 500 in
      Alcotest.(check bool) "miss" true (Flash.Header_cache.find c f = None);
      Flash.Header_cache.insert c f "HTTP/1.0 200 OK\r\n\r\n";
      Alcotest.(check (option string)) "hit" (Some "HTTP/1.0 200 OK\r\n\r\n")
        (Flash.Header_cache.find c f);
      Alcotest.(check int) "length" 1 (Flash.Header_cache.length c))

let test_header_invalidated_by_mtime () =
  with_kernel (fun kernel ->
      let c = Flash.Header_cache.create ~enabled:true () in
      let f = add_file kernel "/h2.html" 500 in
      Flash.Header_cache.insert c f "old-header";
      (* The file changes: the cached header is stale and dropped. *)
      Simos.Fs.touch_mtime (Simos.Kernel.fs kernel) f ~now:123.;
      Alcotest.(check bool) "stale dropped" true (Flash.Header_cache.find c f = None);
      Alcotest.(check int) "invalidations" 1 (Flash.Header_cache.invalidations c);
      (* Re-inserting against the new mtime works. *)
      Flash.Header_cache.insert c f "new-header";
      Alcotest.(check (option string)) "fresh hit" (Some "new-header")
        (Flash.Header_cache.find c f))

let test_header_disabled () =
  with_kernel (fun kernel ->
      let c = Flash.Header_cache.create ~enabled:false () in
      let f = add_file kernel "/h3.html" 500 in
      Flash.Header_cache.insert c f "x";
      Alcotest.(check bool) "never hits" true (Flash.Header_cache.find c f = None))

(* ---------------- mmap cache ---------------- *)

let chunk_bytes = 65536

let test_mmap_reuse () =
  with_kernel (fun kernel ->
      let c =
        Flash.Mmap_cache.create kernel ~chunk_bytes ~max_bytes:(10 * chunk_bytes)
      in
      let f = add_file kernel "/m.bin" (2 * chunk_bytes) in
      let ch = Flash.Mmap_cache.acquire c f ~index:0 in
      Alcotest.(check int) "one map op" 1 (Flash.Mmap_cache.map_ops c);
      Flash.Mmap_cache.release c ch;
      (* Released chunk lingers: the next acquire reuses the mapping. *)
      let ch2 = Flash.Mmap_cache.acquire c f ~index:0 in
      Alcotest.(check int) "still one map op" 1 (Flash.Mmap_cache.map_ops c);
      Alcotest.(check int) "reuse hit" 1 (Flash.Mmap_cache.reuse_hits c);
      Flash.Mmap_cache.release c ch2;
      Alcotest.(check int) "no unmaps yet" 0 (Flash.Mmap_cache.unmap_ops c))

let test_mmap_lazy_unmap () =
  with_kernel (fun kernel ->
      let c =
        Flash.Mmap_cache.create kernel ~chunk_bytes ~max_bytes:(2 * chunk_bytes)
      in
      let files =
        Array.init 4 (fun i ->
            add_file kernel (Printf.sprintf "/mm%d.bin" i) chunk_bytes)
      in
      Array.iter
        (fun f ->
          let ch = Flash.Mmap_cache.acquire c f ~index:0 in
          Flash.Mmap_cache.release c ch)
        files;
      (* Free-list capacity is 2 chunks: two oldest were lazily unmapped. *)
      Alcotest.(check int) "unmaps" 2 (Flash.Mmap_cache.unmap_ops c);
      Alcotest.(check int) "mapped bytes bounded" (2 * chunk_bytes)
        (Flash.Mmap_cache.mapped_bytes c))

let test_mmap_active_not_unmapped () =
  with_kernel (fun kernel ->
      let c =
        Flash.Mmap_cache.create kernel ~chunk_bytes ~max_bytes:(1 * chunk_bytes)
      in
      let f1 = add_file kernel "/a1.bin" chunk_bytes in
      let f2 = add_file kernel "/a2.bin" chunk_bytes in
      let ch1 = Flash.Mmap_cache.acquire c f1 ~index:0 in
      (* Budget exceeded but ch1 is active: must not be unmapped. *)
      let ch2 = Flash.Mmap_cache.acquire c f2 ~index:0 in
      Alcotest.(check int) "no unmaps of active chunks" 0
        (Flash.Mmap_cache.unmap_ops c);
      Flash.Mmap_cache.release c ch1;
      Flash.Mmap_cache.release c ch2)

let test_mmap_refcount_sharing () =
  with_kernel (fun kernel ->
      let c =
        Flash.Mmap_cache.create kernel ~chunk_bytes ~max_bytes:(10 * chunk_bytes)
      in
      let f = add_file kernel "/rc.bin" chunk_bytes in
      let a = Flash.Mmap_cache.acquire c f ~index:0 in
      let b = Flash.Mmap_cache.acquire c f ~index:0 in
      Alcotest.(check int) "one mapping, shared" 1 (Flash.Mmap_cache.map_ops c);
      Flash.Mmap_cache.release c a;
      Flash.Mmap_cache.release c b;
      Alcotest.(check int) "no unmap while cached" 0 (Flash.Mmap_cache.unmap_ops c))

let test_mmap_disabled () =
  with_kernel (fun kernel ->
      let c = Flash.Mmap_cache.create kernel ~chunk_bytes ~max_bytes:0 in
      Alcotest.(check bool) "disabled" false (Flash.Mmap_cache.enabled c);
      let f = add_file kernel "/d.bin" chunk_bytes in
      let ch = Flash.Mmap_cache.acquire c f ~index:0 in
      Flash.Mmap_cache.release c ch;
      let ch2 = Flash.Mmap_cache.acquire c f ~index:0 in
      Flash.Mmap_cache.release c ch2;
      Alcotest.(check int) "map per acquire" 2 (Flash.Mmap_cache.map_ops c);
      Alcotest.(check int) "unmap per release" 2 (Flash.Mmap_cache.unmap_ops c))

let test_mmap_chunk_extent () =
  with_kernel (fun kernel ->
      let c =
        Flash.Mmap_cache.create kernel ~chunk_bytes ~max_bytes:(10 * chunk_bytes)
      in
      let f = add_file kernel "/ce.bin" (chunk_bytes + 100) in
      let off0, len0 = Flash.Mmap_cache.chunk_extent c f ~index:0 in
      Alcotest.(check (pair int int)) "first chunk" (0, chunk_bytes) (off0, len0);
      let off1, len1 = Flash.Mmap_cache.chunk_extent c f ~index:1 in
      Alcotest.(check (pair int int)) "tail chunk" (chunk_bytes, 100) (off1, len1);
      Alcotest.(check int) "index of offset" 1
        (Flash.Mmap_cache.chunk_index c ~off:(chunk_bytes + 50));
      match Flash.Mmap_cache.chunk_extent c f ~index:5 with
      | _ -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument _ -> ())

let test_mmap_release_unheld_rejected () =
  with_kernel (fun kernel ->
      let c =
        Flash.Mmap_cache.create kernel ~chunk_bytes ~max_bytes:(10 * chunk_bytes)
      in
      let f = add_file kernel "/ru.bin" chunk_bytes in
      let ch = Flash.Mmap_cache.acquire c f ~index:0 in
      Flash.Mmap_cache.release c ch;
      match Flash.Mmap_cache.release c ch with
      | () -> Alcotest.fail "double release accepted"
      | exception Invalid_argument _ -> ())

let suite =
  [
    Alcotest.test_case "pathname basic" `Quick test_pathname_basic;
    Alcotest.test_case "pathname bounded LRU" `Quick test_pathname_bounded;
    Alcotest.test_case "pathname disabled" `Quick test_pathname_disabled;
    Alcotest.test_case "pathname invalidate" `Quick test_pathname_invalidate;
    Alcotest.test_case "header basic" `Quick test_header_basic;
    Alcotest.test_case "header mtime invalidation" `Quick
      test_header_invalidated_by_mtime;
    Alcotest.test_case "header disabled" `Quick test_header_disabled;
    Alcotest.test_case "mmap reuse avoids map ops" `Quick test_mmap_reuse;
    Alcotest.test_case "mmap lazy unmap on pressure" `Quick test_mmap_lazy_unmap;
    Alcotest.test_case "mmap active chunks pinned" `Quick
      test_mmap_active_not_unmapped;
    Alcotest.test_case "mmap refcount sharing" `Quick test_mmap_refcount_sharing;
    Alcotest.test_case "mmap disabled maps every time" `Quick test_mmap_disabled;
    Alcotest.test_case "mmap chunk extents" `Quick test_mmap_chunk_extent;
    Alcotest.test_case "mmap double release rejected" `Quick
      test_mmap_release_unheld_rejected;
  ]
