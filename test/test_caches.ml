(* Flash's three application caches. *)

let with_kernel f =
  Helpers.run_sim (fun engine ->
      let kernel = Simos.Kernel.create engine Simos.Os_profile.freebsd in
      f kernel)

let add_file kernel path size =
  Simos.Fs.add_file (Simos.Kernel.fs kernel) ~path ~size

(* ---------------- pathname cache ---------------- *)

let test_pathname_basic () =
  with_kernel (fun kernel ->
      let c = Flash.Pathname_cache.create ~entries:10 () in
      Alcotest.(check bool) "enabled" true (Flash.Pathname_cache.enabled c);
      let f = add_file kernel "/a.html" 100 in
      Alcotest.(check bool) "miss" true (Flash.Pathname_cache.find c "/a.html" = None);
      Flash.Pathname_cache.insert c "/a.html" f;
      (match Flash.Pathname_cache.find c "/a.html" with
      | Some g -> Alcotest.(check int) "hit" f.Simos.Fs.inode g.Simos.Fs.inode
      | None -> Alcotest.fail "expected hit");
      Alcotest.(check int) "hits" 1 (Flash.Pathname_cache.hits c);
      Alcotest.(check int) "misses" 1 (Flash.Pathname_cache.misses c))

let test_pathname_bounded () =
  with_kernel (fun kernel ->
      let c = Flash.Pathname_cache.create ~entries:5 () in
      for i = 1 to 20 do
        let f = add_file kernel (Printf.sprintf "/f%d" i) 100 in
        Flash.Pathname_cache.insert c f.Simos.Fs.path f
      done;
      Alcotest.(check int) "bounded" 5 (Flash.Pathname_cache.length c);
      Alcotest.(check bool) "most recent kept" true
        (Flash.Pathname_cache.find c "/f20" <> None);
      Alcotest.(check bool) "oldest evicted" true
        (Flash.Pathname_cache.find c "/f1" = None))

let test_pathname_disabled () =
  with_kernel (fun kernel ->
      let c = Flash.Pathname_cache.create ~entries:0 () in
      Alcotest.(check bool) "disabled" false (Flash.Pathname_cache.enabled c);
      let f = add_file kernel "/x" 10 in
      Flash.Pathname_cache.insert c "/x" f;
      Alcotest.(check bool) "never hits" true
        (Flash.Pathname_cache.find c "/x" = None))

let test_pathname_invalidate () =
  with_kernel (fun kernel ->
      let c = Flash.Pathname_cache.create ~entries:5 () in
      let f = add_file kernel "/inv" 10 in
      Flash.Pathname_cache.insert c "/inv" f;
      Flash.Pathname_cache.invalidate c "/inv";
      Alcotest.(check bool) "gone" true (Flash.Pathname_cache.find c "/inv" = None))

(* ---------------- header cache ---------------- *)

let test_header_basic () =
  with_kernel (fun kernel ->
      let c = Flash.Header_cache.create ~enabled:true () in
      let f = add_file kernel "/h.html" 500 in
      Alcotest.(check bool) "miss" true (Flash.Header_cache.find c f = None);
      Flash.Header_cache.insert c f "HTTP/1.0 200 OK\r\n\r\n";
      Alcotest.(check (option string)) "hit" (Some "HTTP/1.0 200 OK\r\n\r\n")
        (Flash.Header_cache.find c f);
      Alcotest.(check int) "length" 1 (Flash.Header_cache.length c))

let test_header_invalidated_by_mtime () =
  with_kernel (fun kernel ->
      let c = Flash.Header_cache.create ~enabled:true () in
      let f = add_file kernel "/h2.html" 500 in
      Flash.Header_cache.insert c f "old-header";
      (* The file changes: the cached header is stale and dropped. *)
      Simos.Fs.touch_mtime (Simos.Kernel.fs kernel) f ~now:123.;
      Alcotest.(check bool) "stale dropped" true (Flash.Header_cache.find c f = None);
      Alcotest.(check int) "invalidations" 1 (Flash.Header_cache.invalidations c);
      (* Re-inserting against the new mtime works. *)
      Flash.Header_cache.insert c f "new-header";
      Alcotest.(check (option string)) "fresh hit" (Some "new-header")
        (Flash.Header_cache.find c f))

let test_header_disabled () =
  with_kernel (fun kernel ->
      let c = Flash.Header_cache.create ~enabled:false () in
      let f = add_file kernel "/h3.html" 500 in
      Flash.Header_cache.insert c f "x";
      Alcotest.(check bool) "never hits" true (Flash.Header_cache.find c f = None))

(* ---------------- mmap cache ---------------- *)

let chunk_bytes = 65536

let test_mmap_reuse () =
  with_kernel (fun kernel ->
      let c =
        Flash.Mmap_cache.create kernel ~chunk_bytes ~max_bytes:(10 * chunk_bytes)
      in
      let f = add_file kernel "/m.bin" (2 * chunk_bytes) in
      let ch = Flash.Mmap_cache.acquire c f ~index:0 in
      Alcotest.(check int) "one map op" 1 (Flash.Mmap_cache.map_ops c);
      Flash.Mmap_cache.release c ch;
      (* Released chunk lingers: the next acquire reuses the mapping. *)
      let ch2 = Flash.Mmap_cache.acquire c f ~index:0 in
      Alcotest.(check int) "still one map op" 1 (Flash.Mmap_cache.map_ops c);
      Alcotest.(check int) "reuse hit" 1 (Flash.Mmap_cache.reuse_hits c);
      Flash.Mmap_cache.release c ch2;
      Alcotest.(check int) "no unmaps yet" 0 (Flash.Mmap_cache.unmap_ops c))

let test_mmap_lazy_unmap () =
  with_kernel (fun kernel ->
      let c =
        Flash.Mmap_cache.create kernel ~chunk_bytes ~max_bytes:(2 * chunk_bytes)
      in
      let files =
        Array.init 4 (fun i ->
            add_file kernel (Printf.sprintf "/mm%d.bin" i) chunk_bytes)
      in
      Array.iter
        (fun f ->
          let ch = Flash.Mmap_cache.acquire c f ~index:0 in
          Flash.Mmap_cache.release c ch)
        files;
      (* Free-list capacity is 2 chunks: two oldest were lazily unmapped. *)
      Alcotest.(check int) "unmaps" 2 (Flash.Mmap_cache.unmap_ops c);
      Alcotest.(check int) "mapped bytes bounded" (2 * chunk_bytes)
        (Flash.Mmap_cache.mapped_bytes c))

let test_mmap_active_not_unmapped () =
  with_kernel (fun kernel ->
      let c =
        Flash.Mmap_cache.create kernel ~chunk_bytes ~max_bytes:(1 * chunk_bytes)
      in
      let f1 = add_file kernel "/a1.bin" chunk_bytes in
      let f2 = add_file kernel "/a2.bin" chunk_bytes in
      let ch1 = Flash.Mmap_cache.acquire c f1 ~index:0 in
      (* Budget exceeded but ch1 is active: must not be unmapped. *)
      let ch2 = Flash.Mmap_cache.acquire c f2 ~index:0 in
      Alcotest.(check int) "no unmaps of active chunks" 0
        (Flash.Mmap_cache.unmap_ops c);
      Flash.Mmap_cache.release c ch1;
      Flash.Mmap_cache.release c ch2)

let test_mmap_refcount_sharing () =
  with_kernel (fun kernel ->
      let c =
        Flash.Mmap_cache.create kernel ~chunk_bytes ~max_bytes:(10 * chunk_bytes)
      in
      let f = add_file kernel "/rc.bin" chunk_bytes in
      let a = Flash.Mmap_cache.acquire c f ~index:0 in
      let b = Flash.Mmap_cache.acquire c f ~index:0 in
      Alcotest.(check int) "one mapping, shared" 1 (Flash.Mmap_cache.map_ops c);
      Flash.Mmap_cache.release c a;
      Flash.Mmap_cache.release c b;
      Alcotest.(check int) "no unmap while cached" 0 (Flash.Mmap_cache.unmap_ops c))

let test_mmap_disabled () =
  with_kernel (fun kernel ->
      let c = Flash.Mmap_cache.create kernel ~chunk_bytes ~max_bytes:0 in
      Alcotest.(check bool) "disabled" false (Flash.Mmap_cache.enabled c);
      let f = add_file kernel "/d.bin" chunk_bytes in
      let ch = Flash.Mmap_cache.acquire c f ~index:0 in
      Flash.Mmap_cache.release c ch;
      let ch2 = Flash.Mmap_cache.acquire c f ~index:0 in
      Flash.Mmap_cache.release c ch2;
      Alcotest.(check int) "map per acquire" 2 (Flash.Mmap_cache.map_ops c);
      Alcotest.(check int) "unmap per release" 2 (Flash.Mmap_cache.unmap_ops c))

let test_mmap_chunk_extent () =
  with_kernel (fun kernel ->
      let c =
        Flash.Mmap_cache.create kernel ~chunk_bytes ~max_bytes:(10 * chunk_bytes)
      in
      let f = add_file kernel "/ce.bin" (chunk_bytes + 100) in
      let off0, len0 = Flash.Mmap_cache.chunk_extent c f ~index:0 in
      Alcotest.(check (pair int int)) "first chunk" (0, chunk_bytes) (off0, len0);
      let off1, len1 = Flash.Mmap_cache.chunk_extent c f ~index:1 in
      Alcotest.(check (pair int int)) "tail chunk" (chunk_bytes, 100) (off1, len1);
      Alcotest.(check int) "index of offset" 1
        (Flash.Mmap_cache.chunk_index c ~off:(chunk_bytes + 50));
      match Flash.Mmap_cache.chunk_extent c f ~index:5 with
      | _ -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument _ -> ())

let test_mmap_release_unheld_rejected () =
  with_kernel (fun kernel ->
      let c =
        Flash.Mmap_cache.create kernel ~chunk_bytes ~max_bytes:(10 * chunk_bytes)
      in
      let f = add_file kernel "/ru.bin" chunk_bytes in
      let ch = Flash.Mmap_cache.acquire c f ~index:0 in
      Flash.Mmap_cache.release c ch;
      match Flash.Mmap_cache.release c ch with
      | () -> Alcotest.fail "double release accepted"
      | exception Invalid_argument _ -> ())

(* ---------------- live file-cache variants ---------------- *)

(* Encoded variants (gzip bodies) live in the same store as their origin
   under a NUL-separated key; the accounting contract is that a variant
   never outlives its origin and that every drop — explicit, evicted, or
   stale — uncharges the mapped-bytes gauge exactly once. *)
module File_cache = Flash_live.File_cache

(* Headers are one byte each, so an entry's store weight is its body
   length + 4 — the arithmetic the capacity checks below rely on. *)
let fc_entry ?encoding ?size body mtime =
  {
    File_cache.body = Iovec.of_string body;
    mapped = true;
    mtime;
    size = (match size with Some s -> s | None -> String.length body);
    etag = "\"t\"";
    encoding;
    header_keep = Iovec.of_string "K";
    header_close = Iovec.of_string "C";
    header_304_keep = Iovec.of_string "k";
    header_304_close = Iovec.of_string "c";
  }

(* A 100-byte origin with a 40-byte gzip variant carrying the origin's
   validators (mtime 5, size 100), as the server builds them. *)
let fc_pair c =
  File_cache.insert c "/f" (fc_entry (String.make 100 'o') 5.);
  File_cache.insert_variant c "/f" ~encoding:"gzip"
    (fc_entry ~encoding:"gzip" ~size:100 (String.make 40 'g') 5.)

let test_variant_removed_with_origin () =
  let c = File_cache.create ~capacity_bytes:10_000 () in
  fc_pair c;
  Alcotest.(check int) "two entries" 2 (File_cache.entries c);
  Alcotest.(check int) "gauge charges both bodies" 140
    (File_cache.mapped_bytes c);
  Alcotest.(check int) "weight includes headers" 148 (File_cache.bytes c);
  Alcotest.(check bool) "variant hit" true
    (File_cache.find_variant c "/f" ~encoding:"gzip" ~mtime:5. ~size:100
    <> None);
  File_cache.remove c "/f";
  Alcotest.(check bool) "variant gone with origin" true
    (File_cache.find_variant c "/f" ~encoding:"gzip" ~mtime:5. ~size:100
    = None);
  Alcotest.(check int) "store empty" 0 (File_cache.entries c);
  Alcotest.(check int) "gauge uncharged exactly once each" 0
    (File_cache.mapped_bytes c)

let test_origin_eviction_drags_variant () =
  (* 200 bytes holds origin (104) + variant (44); the 104-byte filler
     forces the LRU origin out, and the variant must follow. *)
  let c = File_cache.create ~capacity_bytes:200 () in
  fc_pair c;
  File_cache.insert c "/g" (fc_entry (String.make 100 'f') 9.);
  Alcotest.(check bool) "filler resident" true
    (File_cache.find c "/g" ~mtime:9. ~size:100 <> None);
  Alcotest.(check bool) "origin evicted" true
    (File_cache.find c "/f" ~mtime:5. ~size:100 = None);
  Alcotest.(check bool) "variant followed its origin" true
    (File_cache.find_variant c "/f" ~encoding:"gzip" ~mtime:5. ~size:100
    = None);
  Alcotest.(check int) "gauge = filler only" 100 (File_cache.mapped_bytes c)

let test_variant_evicts_alone () =
  (* 220 bytes: after touching the origin, the filler evicts only the
     LRU variant; the origin must survive, stay findable, and a later
     explicit removal must not double-uncharge. *)
  let c = File_cache.create ~capacity_bytes:220 () in
  fc_pair c;
  ignore (File_cache.find c "/f" ~mtime:5. ~size:100);
  File_cache.insert c "/g" (fc_entry (String.make 100 'f') 9.);
  Alcotest.(check bool) "origin survives" true
    (File_cache.find c "/f" ~mtime:5. ~size:100 <> None);
  Alcotest.(check bool) "variant evicted" true
    (File_cache.find_variant c "/f" ~encoding:"gzip" ~mtime:5. ~size:100
    = None);
  Alcotest.(check int) "gauge = origin + filler" 200
    (File_cache.mapped_bytes c);
  File_cache.remove c "/f";
  Alcotest.(check int) "no double uncharge on removal" 100
    (File_cache.mapped_bytes c)

let test_stale_origin_invalidates_variants () =
  let c = File_cache.create ~capacity_bytes:10_000 () in
  fc_pair c;
  (* The file was rewritten: the origin lookup detects staleness and
     every representation must go with it. *)
  Alcotest.(check bool) "stale origin misses" true
    (File_cache.find c "/f" ~mtime:6. ~size:100 = None);
  Alcotest.(check bool) "variant invalidated too" true
    (File_cache.find_variant c "/f" ~encoding:"gzip" ~mtime:5. ~size:100
    = None);
  Alcotest.(check int) "store empty" 0 (File_cache.entries c);
  Alcotest.(check int) "gauge fully uncharged" 0 (File_cache.mapped_bytes c)

let test_variant_validates_origin_key () =
  let c = File_cache.create ~capacity_bytes:10_000 () in
  fc_pair c;
  (* A variant hit is keyed on the origin's (mtime, size): a mismatch
     drops the variant but leaves the still-valid origin alone. *)
  Alcotest.(check bool) "mismatched size misses" true
    (File_cache.find_variant c "/f" ~encoding:"gzip" ~mtime:5. ~size:101
    = None);
  Alcotest.(check bool) "origin untouched" true
    (File_cache.find c "/f" ~mtime:5. ~size:100 <> None);
  Alcotest.(check int) "gauge = origin only" 100 (File_cache.mapped_bytes c)

let suite =
  [
    Alcotest.test_case "pathname basic" `Quick test_pathname_basic;
    Alcotest.test_case "pathname bounded LRU" `Quick test_pathname_bounded;
    Alcotest.test_case "pathname disabled" `Quick test_pathname_disabled;
    Alcotest.test_case "pathname invalidate" `Quick test_pathname_invalidate;
    Alcotest.test_case "header basic" `Quick test_header_basic;
    Alcotest.test_case "header mtime invalidation" `Quick
      test_header_invalidated_by_mtime;
    Alcotest.test_case "header disabled" `Quick test_header_disabled;
    Alcotest.test_case "mmap reuse avoids map ops" `Quick test_mmap_reuse;
    Alcotest.test_case "mmap lazy unmap on pressure" `Quick test_mmap_lazy_unmap;
    Alcotest.test_case "mmap active chunks pinned" `Quick
      test_mmap_active_not_unmapped;
    Alcotest.test_case "mmap refcount sharing" `Quick test_mmap_refcount_sharing;
    Alcotest.test_case "mmap disabled maps every time" `Quick test_mmap_disabled;
    Alcotest.test_case "mmap chunk extents" `Quick test_mmap_chunk_extent;
    Alcotest.test_case "mmap double release rejected" `Quick
      test_mmap_release_unheld_rejected;
    Alcotest.test_case "variant removed with origin" `Quick
      test_variant_removed_with_origin;
    Alcotest.test_case "origin eviction drags variant" `Quick
      test_origin_eviction_drags_variant;
    Alcotest.test_case "variant evicts alone, origin stays" `Quick
      test_variant_evicts_alone;
    Alcotest.test_case "stale origin invalidates variants" `Quick
      test_stale_origin_invalidates_variants;
    Alcotest.test_case "variant hit validates origin key" `Quick
      test_variant_validates_origin_key;
  ]
