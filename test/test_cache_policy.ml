(* The lib/cache subsystem: model-based policy checks against naive
   references, admission gates, budget sharing, and deterministic
   hit-rate fixtures separating the policies. *)

module Policy = Flash_cache.Policy
module Store = Flash_cache.Store
module Budget = Flash_cache.Budget

(* ------------------------------------------------------------------ *)
(* Model-based: every policy vs a naive reference                      *)
(* ------------------------------------------------------------------ *)

(* Naive references recompute victims by scanning all resident keys —
   no heaps, no linked lists — so agreement on arbitrary operation
   sequences exercises the real implementations' incremental machinery
   (stale heap records, segment demotion) against obviously-correct
   arithmetic. *)
type model = {
  m_insert : int -> int -> unit;  (* key, weight *)
  m_access : int -> unit;
  m_remove : int -> unit;
  m_victim : unit -> int option;
}

let naive_lru () =
  (* MRU-first key list. *)
  let order = ref [] in
  {
    m_insert = (fun k _w -> order := k :: !order);
    m_access =
      (fun k -> order := k :: List.filter (fun x -> x <> k) !order);
    m_remove = (fun k -> order := List.filter (fun x -> x <> k) !order);
    m_victim =
      (fun () ->
        match List.rev !order with [] -> None | last :: _ -> Some last);
  }

let naive_slru ~capacity () =
  let probation = ref [] and protected_ = ref [] in
  let weights = Hashtbl.create 16 in
  let pcap = capacity / 5 * 4 in
  let weight_of k = Option.value ~default:0 (Hashtbl.find_opt weights k) in
  let pweight () = List.fold_left (fun a k -> a + weight_of k) 0 !protected_ in
  let drop l k = List.filter (fun x -> x <> k) l in
  let rec demote () =
    if pweight () > pcap then
      match List.rev !protected_ with
      | [] -> ()
      | last :: _ ->
          protected_ := drop !protected_ last;
          probation := last :: !probation;
          demote ()
  in
  {
    m_insert =
      (fun k w ->
        Hashtbl.replace weights k w;
        probation := k :: !probation);
    m_access =
      (fun k ->
        if List.mem k !probation then begin
          probation := drop !probation k;
          protected_ := k :: !protected_;
          demote ()
        end
        else protected_ := k :: drop !protected_ k);
    m_remove =
      (fun k ->
        probation := drop !probation k;
        protected_ := drop !protected_ k;
        Hashtbl.remove weights k);
    m_victim =
      (fun () ->
        match List.rev !probation with
        | last :: _ -> Some last
        | [] -> (
            match List.rev !protected_ with
            | last :: _ -> Some last
            | [] -> None));
  }

(* Decayed-LFU reference: bump [j] (1-indexed, global) contributes
   [decay^-j], identical to the implementation's growing multiplier;
   victims minimise (score, last-bump seq). *)
let naive_lfu () =
  let scores = Hashtbl.create 16 and seqs = Hashtbl.create 16 in
  let n = ref 0 in
  let mult = ref 1.0 in
  let bump k =
    incr n;
    mult := !mult /. 0.999;
    Hashtbl.replace scores k
      (Option.value ~default:0.0 (Hashtbl.find_opt scores k) +. !mult);
    Hashtbl.replace seqs k !n
  in
  let victim () =
    Hashtbl.fold
      (fun k s best ->
        let q = Hashtbl.find seqs k in
        match best with
        | None -> Some (k, s, q)
        | Some (_, bs, bq) when s < bs || (s = bs && q < bq) -> Some (k, s, q)
        | Some _ -> best)
      scores None
    |> Option.map (fun (k, _, _) -> k)
  in
  {
    m_insert = (fun k _w -> bump k);
    m_access = bump;
    m_remove =
      (fun k ->
        Hashtbl.remove scores k;
        Hashtbl.remove seqs k);
    m_victim = victim;
  }

let naive_gdsf () =
  let pris = Hashtbl.create 16
  and seqs = Hashtbl.create 16
  and freqs = Hashtbl.create 16
  and sizes = Hashtbl.create 16 in
  let aging = ref 0.0 in
  let n = ref 0 in
  let rescore k =
    incr n;
    let f = Option.value ~default:0 (Hashtbl.find_opt freqs k) + 1 in
    Hashtbl.replace freqs k f;
    let size = max 1 (Option.value ~default:1 (Hashtbl.find_opt sizes k)) in
    Hashtbl.replace pris k (!aging +. (float_of_int f /. float_of_int size));
    Hashtbl.replace seqs k !n
  in
  let victim () =
    Hashtbl.fold
      (fun k p best ->
        let q = Hashtbl.find seqs k in
        match best with
        | None -> Some (k, p, q)
        | Some (_, bp, bq) when p < bp || (p = bp && q < bq) -> Some (k, p, q)
        | Some _ -> best)
      pris None
    |> Option.map (fun (k, p, _) ->
           aging := p;
           k)
  in
  {
    m_insert =
      (fun k w ->
        Hashtbl.replace sizes k w;
        Hashtbl.remove freqs k;
        rescore k);
    m_access = rescore;
    m_remove =
      (fun k ->
        Hashtbl.remove pris k;
        Hashtbl.remove seqs k;
        Hashtbl.remove freqs k;
        Hashtbl.remove sizes k);
    m_victim = victim;
  }

let naive_of kind ~capacity =
  match kind with
  | Policy.Lru -> naive_lru ()
  | Policy.Slru -> naive_slru ~capacity ()
  | Policy.Lfu -> naive_lfu ()
  | Policy.Gdsf -> naive_gdsf ()

type op = Touch of int * int  (* key, weight: insert if fresh else access *)
        | Evict

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (6, map2 (fun k w -> Touch (k, w)) (int_range 0 11) (int_range 1 9));
        (2, return Evict);
      ])

let op_print = function
  | Touch (k, w) -> Printf.sprintf "Touch(%d,w%d)" k w
  | Evict -> "Evict"

let ops_arb =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map op_print ops))
    QCheck.Gen.(list_size (int_range 0 80) op_gen)

let policy_matches_model kind capacity ops =
  let impl = Policy.make kind ~capacity () in
  let model = naive_of kind ~capacity in
  let resident = Hashtbl.create 16 in
  List.iter
    (fun op ->
      match op with
      | Touch (k, w) ->
          if Hashtbl.mem resident k then begin
            impl.Policy.access k;
            model.m_access k
          end
          else begin
            Hashtbl.replace resident k ();
            impl.Policy.insert k ~weight:w;
            model.m_insert k w
          end
      | Evict -> (
          let a = impl.Policy.victim () in
          let b = model.m_victim () in
          if a <> b then
            failwith
              (Printf.sprintf "victim disagreement: impl %s, model %s"
                 (match a with Some k -> string_of_int k | None -> "none")
                 (match b with Some k -> string_of_int k | None -> "none"));
          match a with
          | Some k ->
              impl.Policy.remove k;
              model.m_remove k;
              Hashtbl.remove resident k
          | None -> ()))
    ops;
  true

let prop_policy kind =
  Helpers.qcheck_case ~count:300
    ~name:(Printf.sprintf "%s matches naive reference" (Policy.name kind))
    ops_arb
    (fun ops -> policy_matches_model kind 20 ops)

(* ------------------------------------------------------------------ *)
(* Store invariants under admit/reject                                 *)
(* ------------------------------------------------------------------ *)

type sop = Sadd of int * int | Sfind of int | Sremove of int

let sop_gen =
  QCheck.Gen.(
    frequency
      [
        (5, map2 (fun k w -> Sadd (k, w)) (int_range 0 9) (int_range 1 8));
        (3, map (fun k -> Sfind k) (int_range 0 9));
        (1, map (fun k -> Sremove k) (int_range 0 9));
      ])

let sop_print = function
  | Sadd (k, w) -> Printf.sprintf "Add(%d,w%d)" k w
  | Sfind k -> Printf.sprintf "Find(%d)" k
  | Sremove k -> Printf.sprintf "Remove(%d)" k

let sops_arb =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map sop_print ops))
    QCheck.Gen.(list_size (int_range 0 80) sop_gen)

(* Weight conservation: the store's weight equals the sum of resident
   weights after every operation, whatever the policy and admission
   gate decide, and admitted + rejected counts every fresh insertion
   attempt. *)
let store_conserves_weight (kind, ops) =
  let store =
    Store.create ~policy:kind ~admission:(Policy.Admit_min_size 3)
      ~capacity:20 ()
  in
  let weights = Hashtbl.create 16 in
  let attempts = ref 0 in
  List.iter
    (fun op ->
      (match op with
      | Sadd (k, w) ->
          let fresh = not (Store.mem store k) in
          if fresh then incr attempts;
          if Store.add store k w ~weight:w then Hashtbl.replace weights k w
      | Sfind k -> ignore (Store.find store k)
      | Sremove k -> ignore (Store.remove store k));
      (* Resync the model with evictions the store performed. *)
      Hashtbl.iter
        (fun k _ -> if not (Store.mem store k) then Hashtbl.remove weights k)
        (Hashtbl.copy weights);
      let expected = Hashtbl.fold (fun _ w acc -> acc + w) weights 0 in
      if Store.weight store <> expected then
        failwith
          (Printf.sprintf "weight %d, resident sum %d" (Store.weight store)
             expected);
      if Store.weight store > Store.capacity store && Store.length store > 1
      then failwith "over capacity with multiple entries")
    ops;
  let s = Store.stats store in
  s.Store.admitted + s.Store.rejected = !attempts

let prop_store_weights =
  Helpers.qcheck_case ~count:300 ~name:"store conserves weight, counts admission"
    (QCheck.make
       ~print:(fun (kind, ops) ->
         Policy.name kind ^ ": "
         ^ String.concat "; " (List.map sop_print ops))
       QCheck.Gen.(
         pair
           (oneofl [ Policy.Lru; Policy.Slru; Policy.Lfu; Policy.Gdsf ])
           (list_size (int_range 0 80) sop_gen)))
    store_conserves_weight

(* ------------------------------------------------------------------ *)
(* Deterministic hit-rate fixtures                                     *)
(* ------------------------------------------------------------------ *)

(* Replay (path, size) requests; returns (hits, byte_hits, total_bytes). *)
let replay policy ~capacity reqs =
  let store = Store.create ~policy ~capacity () in
  let hits = ref 0 and byte_hits = ref 0 and total = ref 0 in
  List.iter
    (fun (key, size) ->
      total := !total + size;
      match Store.find store key with
      | Some () ->
          incr hits;
          byte_hits := !byte_hits + size
      | None -> ignore (Store.add store key () ~weight:size))
    reqs;
  (!hits, !byte_hits, !total)

(* Hot set + one-touch scan stream.  LRU churns: every scan burst pushes
   hot entries out; LFU's frequency ranking keeps the hot set resident. *)
let scan_fixture =
  let hot = List.init 8 (fun i -> (i, 1)) in
  let warmup = List.concat (List.init 5 (fun _ -> hot)) in
  let rounds =
    List.concat
      (List.init 30 (fun r ->
           let scans = List.init 4 (fun j -> (100 + (4 * r) + j, 1)) in
           scans @ hot))
  in
  warmup @ rounds

let test_lfu_beats_lru_on_scans () =
  let lru_hits, _, _ = replay Policy.Lru ~capacity:10 scan_fixture in
  let lfu_hits, _, _ = replay Policy.Lfu ~capacity:10 scan_fixture in
  Alcotest.(check bool)
    (Printf.sprintf "lfu hits (%d) > lru hits (%d)" lfu_hits lru_hits)
    true (lfu_hits > lru_hits);
  (* And the scan stream really does hurt LRU. *)
  Alcotest.(check bool) "scan stream defeats plain LRU" true
    (lru_hits < 30 * 8)

(* Heavy-tailed byte-hit fixture: 50 hot 1 KB files plus a 60 KB
   one-touch scan file per round, 100 KB capacity.  LRU lets each big
   file push out hot entries; GDSF gives the big one-touch file the
   lowest priority (freq 1 / size 60000) and evicts it first, keeping
   the hot set — higher byte hit rate on fewer resident bytes. *)
let heavy_tail_fixture =
  let hot = List.init 50 (fun i -> (i, 1000)) in
  let warmup = List.concat (List.init 2 (fun _ -> hot)) in
  let rounds =
    List.concat (List.init 40 (fun r -> hot @ [ (1000 + r, 60_000) ]))
  in
  warmup @ rounds

let test_gdsf_beats_lru_on_byte_hit_rate () =
  let _, lru_bytes, total = replay Policy.Lru ~capacity:100_000 heavy_tail_fixture in
  let _, gdsf_bytes, _ = replay Policy.Gdsf ~capacity:100_000 heavy_tail_fixture in
  let rate b = float_of_int b /. float_of_int total in
  Alcotest.(check bool)
    (Printf.sprintf "gdsf byte-hit %.3f > lru byte-hit %.3f" (rate gdsf_bytes)
       (rate lru_bytes))
    true
    (gdsf_bytes > lru_bytes)

(* SLRU protects the hot set from the same scan stream. *)
let test_slru_beats_lru_on_scans () =
  let lru_hits, _, _ = replay Policy.Lru ~capacity:10 scan_fixture in
  let slru_hits, _, _ = replay Policy.Slru ~capacity:10 scan_fixture in
  Alcotest.(check bool)
    (Printf.sprintf "slru hits (%d) > lru hits (%d)" slru_hits lru_hits)
    true (slru_hits > lru_hits)

(* ------------------------------------------------------------------ *)
(* Admission gates                                                     *)
(* ------------------------------------------------------------------ *)

let test_min_size_admission () =
  let store =
    Store.create ~admission:(Policy.Admit_min_size 10) ~capacity:100 ()
  in
  Alcotest.(check bool) "small rejected" false (Store.add store 1 () ~weight:5);
  Alcotest.(check bool) "large admitted" true (Store.add store 2 () ~weight:10);
  let s = Store.stats store in
  Alcotest.(check int) "rejected count" 1 s.Store.rejected;
  Alcotest.(check int) "admitted count" 1 s.Store.admitted;
  Alcotest.(check int) "only the big entry resident" 10 (Store.weight store)

let test_freq_admission_doorkeeper () =
  (* p = 0: first-timers always rejected; the doorkeeper remembers the
     rejection, so the second attempt admits. *)
  let store = Store.create ~admission:(Policy.Admit_freq 0.0) ~capacity:100 () in
  Alcotest.(check bool) "first attempt rejected" false
    (Store.add store 1 () ~weight:1);
  Alcotest.(check bool) "second attempt admitted" true
    (Store.add store 1 () ~weight:1);
  (* p = 1: everything admitted outright. *)
  let store = Store.create ~admission:(Policy.Admit_freq 1.0) ~capacity:100 () in
  Alcotest.(check bool) "p=1 admits first-timers" true
    (Store.add store 2 () ~weight:1)

let test_replacement_bypasses_admission () =
  let store = Store.create ~admission:(Policy.Admit_freq 0.0) ~capacity:100 () in
  ignore (Store.add store 1 () ~weight:1);
  ignore (Store.add store 1 () ~weight:1);
  (* Resident: replacing re-weighs without consulting the gate. *)
  Alcotest.(check bool) "replacement admitted" true
    (Store.add store 1 () ~weight:7);
  Alcotest.(check int) "re-weighed" 7 (Store.weight store)

(* ------------------------------------------------------------------ *)
(* Budget sharing                                                      *)
(* ------------------------------------------------------------------ *)

let test_budget_sheds_largest () =
  let budget = Budget.create ~bytes:100 in
  let a = Store.create ~budget ~name:"a" ~capacity:1000 () in
  let b = Store.create ~budget ~name:"b" ~capacity:1000 () in
  ignore (Store.add a "x" () ~weight:70);
  Alcotest.(check int) "pool charged" 70 (Budget.used budget);
  (* B's insertion overflows the shared pool; the budget sheds from the
     largest member (A), even though A is under its own capacity — and
     even though it empties A. *)
  ignore (Store.add b "y" () ~weight:60);
  Alcotest.(check bool) "pool back within budget" true
    (Budget.used budget <= 100);
  Alcotest.(check int) "A shed its entry" 0 (Store.weight a);
  Alcotest.(check int) "B kept its entry" 60 (Store.weight b);
  Alcotest.(check int) "shed counts as eviction" 1 (Store.evictions a)

let test_budget_clear_releases () =
  let budget = Budget.create ~bytes:100 in
  let a = Store.create ~budget ~capacity:1000 () in
  ignore (Store.add a 1 () ~weight:40);
  ignore (Store.add a 2 () ~weight:40);
  Store.clear a;
  Alcotest.(check int) "clear releases the pool" 0 (Budget.used budget)

(* ------------------------------------------------------------------ *)
(* Parsing and validation                                              *)
(* ------------------------------------------------------------------ *)

let test_of_string () =
  List.iter
    (fun kind ->
      match Policy.of_string (Policy.name kind) with
      | Ok k -> Alcotest.(check bool) "round-trips" true (k = kind)
      | Error e -> Alcotest.fail e)
    Policy.all;
  let contains msg name =
    let n = String.length name and m = String.length msg in
    let rec go i = i + n <= m && (String.sub msg i n = name || go (i + 1)) in
    go 0
  in
  (match Policy.of_string "bogus" with
  | Ok _ -> Alcotest.fail "accepted bogus policy"
  | Error msg ->
      Alcotest.(check bool) "error lists valid names" true
        (List.for_all (fun k -> contains msg (Policy.name k)) Policy.all));
  match Policy.admission_of_string "nope" with
  | Ok _ -> Alcotest.fail "accepted bogus admission"
  | Error _ -> ()

let test_admission_of_string () =
  (match Policy.admission_of_string "always" with
  | Ok Policy.Admit_always -> ()
  | _ -> Alcotest.fail "always");
  (match Policy.admission_of_string "size:4096" with
  | Ok (Policy.Admit_min_size 4096) -> ()
  | _ -> Alcotest.fail "size:4096");
  (match Policy.admission_of_string "freq" with
  | Ok (Policy.Admit_freq p) ->
      Alcotest.(check (float 1e-9)) "default prob" 0.1 p
  | _ -> Alcotest.fail "freq");
  match Policy.admission_of_string "freq:1.5" with
  | Ok _ -> Alcotest.fail "accepted out-of-range probability"
  | Error _ -> ()

let test_store_rejects_bad_args () =
  (match Store.create ~capacity:0 () with
  | _ -> Alcotest.fail "accepted zero capacity"
  | exception Invalid_argument _ -> ());
  let store = Store.create ~capacity:10 () in
  match Store.add store 1 () ~weight:(-1) with
  | _ -> Alcotest.fail "accepted negative weight"
  | exception Invalid_argument _ -> ()

(* Oversized single entry admitted alone — the seed LRU contract. *)
let test_oversized_entry_admitted_alone () =
  List.iter
    (fun policy ->
      let store = Store.create ~policy ~capacity:10 () in
      ignore (Store.add store 1 () ~weight:50);
      Alcotest.(check int)
        (Policy.name policy ^ ": oversized entry resident")
        1 (Store.length store);
      (* A second entry forces the oversized one out: every policy ranks
         the cold oversized entry as the victim. *)
      ignore (Store.add store 2 () ~weight:5);
      Alcotest.(check int)
        (Policy.name policy ^ ": oversized entry evicted")
        5 (Store.weight store))
    Policy.all

let suite =
  [
    prop_policy Policy.Lru;
    prop_policy Policy.Slru;
    prop_policy Policy.Lfu;
    prop_policy Policy.Gdsf;
    prop_store_weights;
    Alcotest.test_case "LFU keeps hot set under scans" `Quick
      test_lfu_beats_lru_on_scans;
    Alcotest.test_case "SLRU keeps hot set under scans" `Quick
      test_slru_beats_lru_on_scans;
    Alcotest.test_case "GDSF beats LRU byte-hit on heavy tail" `Quick
      test_gdsf_beats_lru_on_byte_hit_rate;
    Alcotest.test_case "min-size admission" `Quick test_min_size_admission;
    Alcotest.test_case "freq admission doorkeeper" `Quick
      test_freq_admission_doorkeeper;
    Alcotest.test_case "replacement bypasses admission" `Quick
      test_replacement_bypasses_admission;
    Alcotest.test_case "budget sheds largest member" `Quick
      test_budget_sheds_largest;
    Alcotest.test_case "budget released on clear" `Quick
      test_budget_clear_releases;
    Alcotest.test_case "policy of_string" `Quick test_of_string;
    Alcotest.test_case "admission of_string" `Quick test_admission_of_string;
    Alcotest.test_case "store argument validation" `Quick
      test_store_rejects_bad_args;
    Alcotest.test_case "oversized entry admitted alone" `Quick
      test_oversized_entry_admitted_alone;
  ]
